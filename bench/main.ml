(* bench/main.exe — the reproduction's benchmark harness.

   Part 1 (Bechamel): one Test.make per experiment E1..E15, timing that
   experiment's computational kernel at a fixed representative size, plus
   a group of substrate micro-benchmarks (process steps, spectral matvec,
   generator). Estimates are OLS fits of wall time vs iterations.

   Part 2 (tables): regenerates every experiment table at Quick scale —
   the same tables EXPERIMENTS.md records at Standard/Full scale. Set
   COBRA_SCALE=standard|full and re-run for the big versions. *)

open Bechamel
module B = Cobra.Branching

let master = Simkit.Seeds.master ~default:1 ()

let rng_of tag = Simkit.Seeds.tagged_rng ~master ~tag

(* Workloads are built once, outside the timed closures. *)
let expander_1k = Graph.Gen.random_regular (rng_of "bench:rr1k") ~n:1024 ~r:3
let expander_4k = Graph.Gen.random_regular (rng_of "bench:rr4k") ~n:4096 ~r:3
let complete_256 = Graph.Gen.complete 256
let circulant_1k = Graph.Gen.circulant 1025 [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let torus_32 = Graph.Gen.torus [| 32; 32 |]
let petersen = Graph.Gen.petersen ()
let herd_graph = Graph.Gen.ring_of_cliques ~cliques:6 ~clique_size:8

let cover g branching tag =
  let rng = rng_of tag in
  Staged.stage (fun () ->
      ignore (Cobra.Process.cover_time g ~branching ~start:0 rng))

let experiment_kernels =
  [
    Test.make ~name:"E1/cover-3reg-n1024" (cover expander_1k B.cobra_k2 "e1");
    Test.make ~name:"E2/cover-complete-n256" (cover complete_256 B.cobra_k2 "e2");
    Test.make ~name:"E3/bips-3reg-n1024"
      (let rng = rng_of "e3" in
       Staged.stage (fun () ->
           ignore
             (Cobra.Bips.infection_time expander_1k ~branching:B.cobra_k2 ~source:0 rng)));
    Test.make ~name:"E4/exact-duality-petersen"
      (let engine = Cobra.Exact.Cobra_engine.create petersen ~branching:B.cobra_k2 in
       (* Warm the transition memo so the OLS fit measures steady-state
          evolution, not the one-time convolution setup. *)
       ignore (Cobra.Exact.Cobra_engine.hit_survival engine ~start:[ 0 ] ~target:7 ~t_max:8);
       Staged.stage (fun () ->
           ignore
             (Cobra.Exact.Cobra_engine.hit_survival engine ~start:[ 0 ] ~target:7 ~t_max:8)));
    Test.make ~name:"E5/cover-frac-rho0.3-n1024" (cover expander_1k (B.one_plus 0.3) "e5");
    Test.make ~name:"E6/cover-circulant-n1025" (cover circulant_1k B.cobra_k2 "e6");
    Test.make ~name:"E7/cover-torus-32x32" (cover torus_32 B.cobra_k2 "e7");
    Test.make ~name:"E8/walk-cover-3reg-n256"
      (let g = Graph.Gen.random_regular (rng_of "bench:rr256") ~n:256 ~r:3 in
       let rng = rng_of "e8" in
       Staged.stage (fun () -> ignore (Cobra.Rwalk.cover_time g ~start:0 rng)));
    Test.make ~name:"E9/growth-formula-n1024"
      (let rng = rng_of "e9" in
       let set = Cobra.Growth.random_infected_set rng expander_1k ~source:0 ~size:256 in
       Staged.stage (fun () ->
           ignore
             (Cobra.Growth.expected_next_size expander_1k ~branching:B.cobra_k2 ~source:0
                ~infected:set)));
    Test.make ~name:"E10/herd-run-6x8"
      (let rng = rng_of "e10" in
       let params =
         { Epidemic.Herd.contacts = B.cobra_k2; infectious_rounds = 2; immune_rounds = 4 }
       in
       Staged.stage (fun () ->
           ignore
             (Epidemic.Herd.run ~cap:50_000 herd_graph params ~pi:[ 0 ] ~index_cases:[] rng)));
    Test.make ~name:"E11/push-complete-n256"
      (let rng = rng_of "e11" in
       Staged.stage (fun () -> ignore (Cobra.Push.push complete_256 ~start:0 rng)));
    Test.make ~name:"E12/contact-supercrit-n1024"
      (let rng = rng_of "e12" in
       Staged.stage (fun () ->
           ignore
             (Epidemic.Contact.run ~horizon:50.0 expander_1k ~infection_rate:1.0
                ~persistent:(Some 0) ~start:[] rng)));
    Test.make ~name:"E13/first-visits-n1024"
      (let rng = rng_of "e13" in
       Staged.stage (fun () ->
           ignore
             (Cobra.Process.first_visit_times expander_1k ~branching:B.cobra_k2 ~start:0 rng)));
    Test.make ~name:"E14/bips-trajectory-n1024"
      (let rng = rng_of "e14" in
       Staged.stage (fun () ->
           ignore
             (Cobra.Bips.size_trajectory expander_1k ~branching:B.cobra_k2 ~source:0 rng)));
    Test.make ~name:"E15/cover-distinct-n1024" (cover expander_1k (B.distinct 2) "e15");
  ]

let substrate_kernels =
  [
    Test.make ~name:"substrate/cobra-step-n4096"
      (let rng = rng_of "s1" in
       let p = Cobra.Process.create expander_4k ~branching:B.cobra_k2 ~start:[ 0 ] in
       Staged.stage (fun () ->
           (* keep the frontier warm: restart when covered *)
           if Cobra.Process.is_covered p then Cobra.Process.reset p ~start:[ 0 ];
           Cobra.Process.step p rng));
    Test.make ~name:"substrate/bips-step-n4096"
      (let rng = rng_of "s2" in
       let p = Cobra.Bips.create expander_4k ~branching:B.cobra_k2 ~source:0 in
       Staged.stage (fun () -> Cobra.Bips.step p rng));
    Test.make ~name:"substrate/walk-matvec-n4096"
      (let op = Spectral.Op.walk_matrix expander_4k in
       let x = Array.make 4096 1.0 in
       let y = Array.make 4096 0.0 in
       Staged.stage (fun () -> op.Spectral.Op.apply ~x ~y));
    Test.make ~name:"substrate/random-regular-n1024"
      (let rng = rng_of "s4" in
       Staged.stage (fun () -> ignore (Graph.Gen.random_regular rng ~n:1024 ~r:3)));
    Test.make ~name:"substrate/lanczos-lambda-n1024"
      (let rng = rng_of "s5" in
       Staged.stage (fun () ->
           ignore (Spectral.Lanczos.lambda_max ~steps:40 rng expander_1k)));
    Test.make ~name:"substrate/bitset-card-n65536"
      (let s = Dstruct.Bitset.create 65536 in
       Dstruct.Bitset.fill s;
       Staged.stage (fun () -> ignore (Dstruct.Bitset.cardinal s)));
  ]

let run_benchmarks () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let table =
    Stats.Table.create
      ~aligns:[ Stats.Table.Left; Stats.Table.Right; Stats.Table.Right ]
      [ "benchmark"; "time/run"; "r²" ]
  in
  let pretty_time ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let bench_one test =
    let raw = Benchmark.all cfg [ instance ] test in
    let results = Analyze.all ols instance raw in
    let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
    List.iter
      (fun (name, o) ->
        let est =
          match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> Float.nan
        in
        let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square o) in
        Stats.Table.add_row table [ name; pretty_time est; Printf.sprintf "%.4f" r2 ])
      (List.sort compare rows)
  in
  print_endline "== Bechamel kernels: one per experiment, plus substrates ==";
  List.iter bench_one experiment_kernels;
  List.iter bench_one substrate_kernels;
  Stats.Table.print table

let () =
  Printf.printf "COBRA/BIPS reproduction benchmark harness (master seed %d)\n" master;
  run_benchmarks ();
  let scale = Simkit.Scale.of_env ~default:Simkit.Scale.Quick () in
  Printf.printf
    "\n== Experiment tables (scale: %s; set COBRA_SCALE=standard|full for the \
     EXPERIMENTS.md versions) ==\n"
    (Simkit.Scale.to_string scale);
  Experiments.Registry.run_all ~scale ~master
