(* bench/main.exe — the reproduction's benchmark harness.

   Part 1 (Bechamel): one Test.make per experiment E1..E16, timing that
   experiment's computational kernel at a fixed representative size, plus
   a group of substrate micro-benchmarks (process steps, spectral matvec,
   generator) and a group of before/after kernel pairs: each hot-path
   optimisation is benchmarked against a bench-local copy of the code it
   replaced (checked vs unchecked CSR accessors, polymorphic vs
   monomorphic sort/equality, edge-list vs direct relabel). Estimates
   are OLS fits of wall time vs iterations.

   Part 2 (parallel engine): wall-clock of the same trial batch through
   Trial.collect and Trial.collect_par, asserting the results identical.

   Part 3 (tables): regenerates every experiment table at Quick scale —
   the same tables EXPERIMENTS.md records at Standard/Full scale. Set
   COBRA_SCALE=standard|full and re-run for the big versions.

   Part 4 (scale): `bench/main.exe -- scale [--smoke] [--json FILE]`
   skips Bechamel and instead wall-clocks generation plus one full COBRA
   cover on million-vertex-class instances (random 4-regular and
   hypercube at n = 10^4, 10^5, 10^6; --smoke keeps only n = 10^4),
   reporting peak RSS from /proc. These rows land in the "scale/"
   section of the JSON file, so `make bench-compare` gates them like any
   other section.

   Part 5 (lanes): `bench/main.exe -- lanes [--smoke] [--json FILE]`
   wall-clocks the same 64-trial batch of BIPS and SIS through the
   scalar engine and the bit-sliced lane engine on random 4-regular and
   hypercube instances at n = 2^10, 2^14, 2^17 (--smoke keeps only
   2^10), emitting "lanes/" rows and failing when the sliced engine's
   speedup on the rr4 instances drops below the floor (8x full, 2x
   smoke).

   Flags: --json FILE     write a cobra.bench/1 file for perf tracking
                          across PRs (see `make bench-json` and
                          `make bench-compare`)
          --kernels-only  skip part 3 (the experiment tables) *)

open Bechamel
module B = Cobra.Branching

let master = Simkit.Seeds.master ~default:1 ()

let rng_of tag = Simkit.Seeds.tagged_rng ~master ~tag

(* Workloads are built once, outside the timed closures. Processes and
   kernels consume Graph.View; the raw CSR fixtures stay around for the
   substrate pairs that benchmark Csr accessors themselves, and for the
   exact engine (dense DP, heap-only by design). *)
let expander_1k_csr = Graph.Gen.random_regular (rng_of "bench:rr1k") ~n:1024 ~r:3
let expander_1k = Graph.View.of_csr expander_1k_csr
let expander_4k_csr = Graph.Gen.random_regular (rng_of "bench:rr4k") ~n:4096 ~r:3
let expander_4k = Graph.View.of_csr expander_4k_csr
let complete_256 = Graph.View.of_csr (Graph.Gen.complete 256)
let circulant_1k = Graph.View.of_csr (Graph.Gen.circulant 1025 [ 1; 2; 3; 4; 5; 6; 7; 8 ])
let torus_32 = Graph.View.of_csr (Graph.Gen.torus [| 32; 32 |])
let petersen = Graph.Gen.petersen ()
let herd_graph = Graph.View.of_csr (Graph.Gen.ring_of_cliques ~cliques:6 ~clique_size:8)

let cover g branching tag =
  let rng = rng_of tag in
  Staged.stage (fun () ->
      ignore (Cobra.Process.cover_time g ~branching ~start:0 rng))

let experiment_kernels =
  [
    Test.make ~name:"E1/cover-3reg-n1024" (cover expander_1k B.cobra_k2 "e1");
    Test.make ~name:"E2/cover-complete-n256" (cover complete_256 B.cobra_k2 "e2");
    Test.make ~name:"E3/bips-3reg-n1024"
      (let rng = rng_of "e3" in
       Staged.stage (fun () ->
           ignore
             (Cobra.Bips.infection_time expander_1k ~branching:B.cobra_k2 ~source:0 rng)));
    Test.make ~name:"E4/exact-duality-petersen"
      (let engine = Cobra.Exact.Cobra_engine.create petersen ~branching:B.cobra_k2 in
       (* Warm the transition memo so the OLS fit measures steady-state
          evolution, not the one-time convolution setup. *)
       ignore (Cobra.Exact.Cobra_engine.hit_survival engine ~start:[ 0 ] ~target:7 ~t_max:8);
       Staged.stage (fun () ->
           ignore
             (Cobra.Exact.Cobra_engine.hit_survival engine ~start:[ 0 ] ~target:7 ~t_max:8)));
    Test.make ~name:"E5/cover-frac-rho0.3-n1024" (cover expander_1k (B.one_plus 0.3) "e5");
    Test.make ~name:"E6/cover-circulant-n1025" (cover circulant_1k B.cobra_k2 "e6");
    Test.make ~name:"E7/cover-torus-32x32" (cover torus_32 B.cobra_k2 "e7");
    Test.make ~name:"E8/walk-cover-3reg-n256"
      (let g = Graph.View.of_csr (Graph.Gen.random_regular (rng_of "bench:rr256") ~n:256 ~r:3) in
       let rng = rng_of "e8" in
       Staged.stage (fun () -> ignore (Cobra.Rwalk.cover_time g ~start:0 rng)));
    Test.make ~name:"E9/growth-formula-n1024"
      (let rng = rng_of "e9" in
       let set = Cobra.Growth.random_infected_set rng expander_1k ~source:0 ~size:256 in
       Staged.stage (fun () ->
           ignore
             (Cobra.Growth.expected_next_size expander_1k ~branching:B.cobra_k2 ~source:0
                ~infected:set)));
    Test.make ~name:"E10/herd-run-6x8"
      (let rng = rng_of "e10" in
       let params =
         { Epidemic.Herd.contacts = B.cobra_k2; infectious_rounds = 2; immune_rounds = 4 }
       in
       Staged.stage (fun () ->
           ignore
             (Epidemic.Herd.run ~cap:50_000 herd_graph params ~pi:[ 0 ] ~index_cases:[] rng)));
    Test.make ~name:"E11/push-complete-n256"
      (let rng = rng_of "e11" in
       Staged.stage (fun () -> ignore (Cobra.Push.push complete_256 ~start:0 rng)));
    Test.make ~name:"E12/contact-supercrit-n1024"
      (let rng = rng_of "e12" in
       Staged.stage (fun () ->
           ignore
             (Epidemic.Contact.run ~horizon:50.0 expander_1k ~infection_rate:1.0
                ~persistent:(Some 0) ~start:[] rng)));
    Test.make ~name:"E13/first-visits-n1024"
      (let rng = rng_of "e13" in
       Staged.stage (fun () ->
           ignore
             (Cobra.Process.first_visit_times expander_1k ~branching:B.cobra_k2 ~start:0 rng)));
    Test.make ~name:"E14/bips-trajectory-n1024"
      (let rng = rng_of "e14" in
       Staged.stage (fun () ->
           ignore
             (Cobra.Bips.size_trajectory expander_1k ~branching:B.cobra_k2 ~source:0 rng)));
    Test.make ~name:"E15/cover-distinct-n1024" (cover expander_1k (B.distinct 2) "e15");
    Test.make ~name:"E16/pushpull-n1024"
      (let rng = rng_of "e16" in
       Staged.stage (fun () -> ignore (Cobra.Push.push_pull expander_1k ~start:0 rng)));
  ]

let substrate_kernels =
  [
    Test.make ~name:"substrate/cobra-step-n4096"
      (let rng = rng_of "s1" in
       let p = Cobra.Process.create expander_4k ~branching:B.cobra_k2 ~start:[ 0 ] in
       Staged.stage (fun () ->
           (* keep the frontier warm: restart when covered *)
           if Cobra.Process.is_covered p then Cobra.Process.reset p ~start:[ 0 ];
           Cobra.Process.step p rng));
    Test.make ~name:"substrate/bips-step-n4096"
      (let rng = rng_of "s2" in
       let p = Cobra.Bips.create expander_4k ~branching:B.cobra_k2 ~source:0 in
       Staged.stage (fun () -> Cobra.Bips.step p rng));
    Test.make ~name:"substrate/walk-matvec-n4096"
      (let op = Spectral.Op.walk_matrix expander_4k in
       let x = Array.make 4096 1.0 in
       let y = Array.make 4096 0.0 in
       Staged.stage (fun () -> op.Spectral.Op.apply ~x ~y));
    Test.make ~name:"substrate/random-regular-n1024"
      (let rng = rng_of "s4" in
       Staged.stage (fun () -> ignore (Graph.Gen.random_regular rng ~n:1024 ~r:3)));
    Test.make ~name:"substrate/lanczos-lambda-n1024"
      (let rng = rng_of "s5" in
       Staged.stage (fun () ->
           ignore (Spectral.Lanczos.lambda_max ~steps:40 rng expander_1k)));
    Test.make ~name:"substrate/bitset-card-n65536"
      (let s = Dstruct.Bitset.create 65536 in
       Dstruct.Bitset.fill s;
       Staged.stage (fun () -> ignore (Dstruct.Bitset.cardinal s)));
  ]

(* Before/after pairs for this PR's hot-path pass. The "-before" variant
   of each pair is a bench-local reimplementation of the code that was
   replaced, so the table keeps measuring the delta as the library moves
   on. *)
let kernel_pairs =
  let g = expander_4k_csr in
  let n = Graph.Csr.n_vertices g in
  [
    Test.make ~name:"kernel/degree-sum-checked-n4096"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for v = 0 to n - 1 do
             acc := !acc + Graph.Csr.degree g v
           done;
           ignore !acc));
    Test.make ~name:"kernel/degree-sum-unsafe-n4096"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for v = 0 to n - 1 do
             acc := !acc + Graph.Csr.unsafe_degree g v
           done;
           ignore !acc));
    Test.make ~name:"kernel/iter-neighbours-checked-n4096"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for v = 0 to n - 1 do
             Graph.Csr.iter_neighbours g v ~f:(fun w -> acc := !acc + w)
           done;
           ignore !acc));
    Test.make ~name:"kernel/iter-neighbours-unsafe-n4096"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for v = 0 to n - 1 do
             Graph.Csr.unsafe_iter_neighbours g v ~f:(fun w -> acc := !acc + w)
           done;
           ignore !acc));
    Test.make ~name:"kernel/random-neighbour-checked-x1024"
      (let rng = rng_of "k1" in
       Staged.stage (fun () ->
           for _ = 1 to 1024 do
             ignore (Graph.Csr.random_neighbour g rng 0)
           done));
    Test.make ~name:"kernel/random-neighbour-unsafe-x1024"
      (let rng = rng_of "k2" in
       Staged.stage (fun () ->
           for _ = 1 to 1024 do
             ignore (Graph.Csr.unsafe_random_neighbour g rng 0)
           done));
    (* Adjacency-slice sort inside Csr.of_edge_iter: polymorphic compare
       (before) vs Int.compare (after). *)
    Test.make ~name:"kernel/slice-sort-poly-n12288"
      (let master_arr = Array.copy (Graph.Csr.unsafe_adjacency g) in
       let scratch = Array.copy master_arr in
       Staged.stage (fun () ->
           Array.blit master_arr 0 scratch 0 (Array.length master_arr);
           Array.sort compare scratch));
    Test.make ~name:"kernel/slice-sort-int-n12288"
      (let master_arr = Array.copy (Graph.Csr.unsafe_adjacency g) in
       let scratch = Array.copy master_arr in
       Staged.stage (fun () ->
           Array.blit master_arr 0 scratch 0 (Array.length master_arr);
           Array.sort Int.compare scratch));
    Test.make ~name:"kernel/csr-equal-poly-n4096"
      (let a = Graph.Csr.unsafe_adjacency g and o = Graph.Csr.unsafe_offsets g in
       let a' = Array.copy a and o' = Array.copy o in
       Staged.stage (fun () -> ignore (o = o' && a = a')));
    Test.make ~name:"kernel/csr-equal-mono-n4096"
      (let h =
         Graph.Csr.relabel g (Array.init n Fun.id)
         (* identity relabel: equal but not physically shared *)
       in
       Staged.stage (fun () -> ignore (Graph.Csr.equal g h)));
    Test.make ~name:"kernel/relabel-edgelist-n1024"
      (let g1 = expander_1k_csr in
       let n1 = Graph.Csr.n_vertices g1 in
       let perm = Array.init n1 (fun v -> (v + 17) mod n1) in
       Staged.stage (fun () ->
           let mapped = ref [] in
           Graph.Csr.iter_edges g1 ~f:(fun u v ->
               mapped := (perm.(u), perm.(v)) :: !mapped);
           ignore (Graph.Csr.of_edges ~n:n1 !mapped)));
    Test.make ~name:"kernel/relabel-direct-n1024"
      (let g1 = expander_1k_csr in
       let n1 = Graph.Csr.n_vertices g1 in
       let perm = Array.init n1 (fun v -> (v + 17) mod n1) in
       Staged.stage (fun () -> ignore (Graph.Csr.relabel g1 perm)));
    Test.make ~name:"kernel/process-active-n4096"
      (let p = Cobra.Process.create expander_4k ~branching:B.cobra_k2 ~start:[ 0 ] in
       Staged.stage (fun () ->
           let acc = ref 0 in
           for v = 0 to n - 1 do
             if Cobra.Process.active p v then incr acc
           done;
           ignore !acc));
  ]

let run_benchmarks () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let table =
    Stats.Table.create
      ~aligns:[ Stats.Table.Left; Stats.Table.Right; Stats.Table.Right ]
      [ "benchmark"; "time/run"; "r²" ]
  in
  let pretty_time ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let collected = ref [] in
  let bench_one test =
    let raw = Benchmark.all cfg [ instance ] test in
    let results = Analyze.all ols instance raw in
    let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
    List.iter
      (fun (name, o) ->
        let est =
          match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> Float.nan
        in
        let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square o) in
        collected := (name, est) :: !collected;
        Stats.Table.add_row table [ name; pretty_time est; Printf.sprintf "%.4f" r2 ])
      (List.sort compare rows)
  in
  print_endline
    "== Bechamel kernels: one per experiment, substrates, before/after pairs ==";
  List.iter bench_one experiment_kernels;
  List.iter bench_one substrate_kernels;
  List.iter bench_one kernel_pairs;
  Stats.Table.print table;
  List.rev !collected

(* Machine-readable perf trajectory: a cobra.bench/1 file mapping
   benchmark names to ns/run. Later PRs diff these files with
   `make bench-compare` to catch regressions. *)
let emit_json path rows =
  Simkit.Benchfile.write path
    { Simkit.Benchfile.rows =
        List.map (fun (name, ns) -> { Simkit.Benchfile.name; ns }) rows };
  Printf.printf "wrote %s (%d benchmarks)\n" path (List.length rows)

(* --- Part 4: large-n scaling rows. ---------------------------------- *)

(* Peak RSS in KiB from /proc/self/status (Linux); None elsewhere. *)
let peak_rss_kib () =
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
              (fun k -> Some k)
          else scan ()
        in
        scan ())
  with _ -> None

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One-shot wall-clock rows: at these sizes a single run takes seconds,
   so OLS over many iterations is neither needed nor affordable. *)
let run_scale ~smoke ~json_path =
  let sizes = if smoke then [ 10_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  let rows = ref [] in
  let rss_note () =
    match peak_rss_kib () with
    | Some kib -> Printf.printf "    (peak RSS so far: %.1f MiB)\n%!" (float_of_int kib /. 1024.0)
    | None -> ()
  in
  let row name seconds =
    Printf.printf "  %-36s %8.3f s\n%!" name seconds;
    rows := (name, seconds *. 1e9) :: !rows
  in
  let cover_rows ?(prefix = "scale/cover-") name g tag =
    let rng = rng_of tag in
    let (covered, dt) =
      timed (fun () -> Cobra.Process.cover_time g ~branching:B.cobra_k2 ~start:0 rng)
    in
    (match covered with
    | Some _ -> ()
    | None -> failwith (name ^ ": COBRA failed to cover within the round cap"));
    row (prefix ^ name) dt
  in
  Printf.printf "== Scaling rows (%s) ==\n%!"
    (if smoke then "smoke: n = 10^4" else "n = 10^4, 10^5, 10^6");
  List.iter
    (fun n ->
      let label = Printf.sprintf "rr4-n%d" n in
      let (g, dt) =
        timed (fun () ->
            Graph.View.of_csr
              (Graph.Gen.random_regular (rng_of ("scale:" ^ label)) ~n ~r:4))
      in
      row ("scale/gen-" ^ label) dt;
      cover_rows label g ("scale:cover:" ^ label);
      (* Hypercube of comparable size: d = log2 n rounded to the grid
         14 / 17 / 20 used in EXPERIMENTS.md. *)
      let d =
        if n <= 10_000 then 14 else if n <= 100_000 then 17 else 20
      in
      let hlabel = Printf.sprintf "hypercube-d%d" d in
      let (h, dth) = timed (fun () -> Graph.View.of_csr (Graph.Gen.hypercube d)) in
      row ("scale/gen-" ^ hlabel) dth;
      cover_rows hlabel h ("scale:cover:" ^ hlabel);
      (* Preferential attachment at the same n: generation streams the
         recorded endpoint array through of_edge_iter (two passes, no
         intermediate edge list beyond the 2m endpoints), and the cover
         row prices COBRA against the heavy degree tail. *)
      let balabel = Printf.sprintf "ba2-n%d" n in
      let (ba, dtba) =
        timed (fun () ->
            Graph.View.of_csr
              (Graph.Gen.barabasi_albert
                 (rng_of ("scale:" ^ balabel))
                 ~n ~m:2 ~prob_unbiased:0.0))
      in
      row ("scale/gen-" ^ balabel) dtba;
      cover_rows balabel ba ("scale:cover:" ^ balabel))
    sizes;
  (* Backend rows: the same E1-style workload through the off-heap and
     closed-form topology layers. Full scale runs the 2 GiB-class
     acceptance instances — random 4-regular at n = 10^7 on Bigarray
     int32 CSR (the GC never scans the adjacency) and the d = 24
     hypercube with no materialised topology at all; smoke shrinks them
     to n = 10^4 / d = 14 so CI exercises both code paths cheaply. *)
  Printf.printf "== Backend rows (%s) ==\n%!"
    (if smoke then "smoke: bigarray n = 10^4, implicit d = 14"
     else "bigarray n = 10^7, implicit d = 24");
  let big_n = if smoke then 10_000 else 10_000_000 in
  let blabel = Printf.sprintf "rr4-n%d" big_n in
  let (gb, dtb) =
    timed (fun () ->
        let heap =
          Graph.Gen.random_regular (rng_of ("scale:big:" ^ blabel)) ~n:big_n ~r:4
        in
        Graph.View.of_bigcsr (Graph.Bigcsr.of_csr heap))
  in
  row ("scale/bigarray-gen-" ^ blabel) dtb;
  (* Drop the heap copy before covering so the cover row's RSS reflects
     the off-heap representation. *)
  Gc.compact ();
  cover_rows ~prefix:"scale/bigarray-cover-" blabel gb ("scale:big:cover:" ^ blabel);
  (* Spectral premise check at full scale, through the same view: a few
     Lanczos steps pin lambda to ~1e-3 on an expander, and the matvec
     runs straight off the int32 arrays. *)
  let (lam_b, dtlb) =
    timed (fun () ->
        Spectral.Lanczos.lambda_max ~steps:12 (rng_of ("scale:lambda:" ^ blabel)) gb)
  in
  row ("scale/lanczos12-bigarray-" ^ blabel) dtlb;
  Printf.printf "    (lambda ~ %.4f from 12 Lanczos steps on the bigarray view)\n%!"
    lam_b;
  rss_note ();
  let d_imp = if smoke then 14 else 24 in
  let ilabel = Printf.sprintf "hypercube-d%d" d_imp in
  let (gi, dti) =
    timed (fun () -> Graph.View.of_implicit (Graph.Implicit.hypercube d_imp))
  in
  row ("scale/implicit-gen-" ^ ilabel) dti;
  cover_rows ~prefix:"scale/implicit-cover-" ilabel gi ("scale:big:cover:" ^ ilabel);
  (* The hypercube is bipartite (lambda_min = -1), so report lambda_2
     against its closed form 1 - 2/d rather than max(|l2|, |ln|). *)
  let (ext_i, dtli) =
    timed (fun () ->
        Spectral.Lanczos.extremes ~steps:12 (rng_of ("scale:lambda:" ^ ilabel)) gi)
  in
  row ("scale/lanczos12-implicit-" ^ ilabel) dtli;
  Printf.printf
    "    (lambda_2 ~ %.4f from 12 Lanczos steps on the implicit view; closed \
     form 1 - 2/d = %.4f; lambda_min ~ %.4f)\n%!"
    ext_i.Spectral.Lanczos.lambda_2
    (1.0 -. (2.0 /. float_of_int d_imp))
    ext_i.Spectral.Lanczos.lambda_min;
  rss_note ();
  (match peak_rss_kib () with
  | Some kib -> Printf.printf "peak RSS: %.1f MiB\n" (float_of_int kib /. 1024.0)
  | None -> print_endline "peak RSS: unavailable (no /proc)");
  Option.iter (fun path -> emit_json path (List.rev !rows)) json_path

(* --- Part 5: bit-sliced lane engine rows. --------------------------- *)

(* One 64-trial batch per engine: exactly the workload a sweep cell with
   trials=64 runs, so the scalar side is the historical per-trial loop
   and the lanes side is one bit-sliced batch. Both draw from the same
   derived trial streams; the gate is on wall-clock, not on agreement
   (the conformance and sweep suites own correctness). *)
let run_lanes ~smoke ~json_path =
  let sizes =
    if smoke then [ (1_024, 10) ] else [ (1_024, 10); (16_384, 14); (131_072, 17) ]
  in
  let trials = 64 in
  let min_speedup = if smoke then 2.0 else 8.0 in
  let gate_n = if smoke then 1_024 else 16_384 in
  let rows = ref [] and failures = ref [] in
  let base = Cobra.Kernel.default_params in
  let kernels =
    [
      ("bips", Cobra.Kernel.bips, base);
      ( "sis",
        Epidemic.Kernels.sis,
        (* Persistent source: saturation, not extinction, ends a trial,
           so every lane runs the full epidemic. *)
        { base with Cobra.Kernel.recovery = 0.25; persistent = true } );
    ]
  in
  Printf.printf "== Lane engine: 64-trial batches, scalar vs bit-sliced (%s) ==\n%!"
    (if smoke then "smoke: n = 2^10" else "n = 2^10, 2^14, 2^17");
  List.iter
    (fun (n, d) ->
      let graphs =
        [
          ( Printf.sprintf "rr4-n%d" n,
            Graph.View.of_csr
              (Graph.Gen.random_regular
                 (rng_of (Printf.sprintf "lanes:rr4-n%d" n))
                 ~n ~r:4) );
          ( Printf.sprintf "hypercube-d%d" d,
            Graph.View.of_csr (Graph.Gen.hypercube d) );
        ]
      in
      List.iter
        (fun (glabel, g) ->
          List.iter
            (fun (kname, kernel, params) ->
              let label = Printf.sprintf "%s-%s" kname glabel in
              let salt0 = Simkit.Seeds.salt_of_tag ("lanes:" ^ label) in
              let time engine =
                let _, dt =
                  timed (fun () ->
                      Sweep.Kernels.run_trials ~engine kernel g params ~trials
                        ~master ~salt0)
                in
                dt
              in
              let t_scalar = time `Scalar in
              let t_lanes = time `Lanes in
              let speedup = t_scalar /. t_lanes in
              Printf.printf
                "  %-28s scalar %8.3f s   lanes %8.3f s   speedup %6.2fx\n%!"
                label t_scalar t_lanes speedup;
              rows :=
                (Printf.sprintf "lanes/%s-lanes64" label, t_lanes *. 1e9)
                :: (Printf.sprintf "lanes/%s-scalar64" label, t_scalar *. 1e9)
                :: !rows;
              (* The acceptance floor is pinned on the expander rows:
                 hypercubes are reported but not gated (their structure
                 is a scaling reference, not the paper's regime). *)
              if n = gate_n && String.length glabel >= 3 && String.sub glabel 0 3 = "rr4"
                 && speedup < min_speedup
              then
                failures :=
                  Printf.sprintf "%s: speedup %.2fx below the %.0fx floor" label
                    speedup min_speedup
                  :: !failures)
            kernels)
        graphs)
    sizes;
  Option.iter (fun path -> emit_json path (List.rev !rows)) json_path;
  match !failures with
  | [] -> ()
  | fs ->
    List.iter (fun f -> Printf.printf "LANES GATE FAILED: %s\n" f) fs;
    exit 1

(* Wall-clock of the same trial batch, sequential vs the domain pool, with
   the determinism guarantee checked on the spot. *)
let parallel_engine_check () =
  let domains = Simkit.Pool.default_domains () in
  Printf.printf "\n== Parallel trial engine (COBRA_DOMAINS=%d) ==\n" domains;
  let trials = 24 in
  let measure rng =
    match
      Cobra.Process.cover_time expander_4k ~branching:B.cobra_k2 ~start:0 rng
    with
    | Some t -> t
    | None -> -1
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq =
    time (fun () -> Simkit.Trial.collect ~trials ~master ~salt0:0 measure)
  in
  let par, t_par =
    time (fun () -> Simkit.Trial.collect_par ~trials ~master ~salt0:0 measure)
  in
  Printf.printf
    "E1-style batch (cover, n=4096, %d trials): sequential %.3f s, parallel %.3f s \
     (speedup %.2fx), results %s\n"
    trials t_seq t_par (t_seq /. t_par)
    (if seq = par then "IDENTICAL" else "DIFFER (BUG!)");
  if seq <> par then exit 1

let () =
  Printf.printf "COBRA/BIPS reproduction benchmark harness (master seed %d)\n" master;
  let argv = Array.to_list Sys.argv in
  let kernels_only = List.mem "--kernels-only" argv in
  let json_path =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  if List.mem "scale" argv then begin
    run_scale ~smoke:(List.mem "--smoke" argv) ~json_path;
    exit 0
  end;
  if List.mem "lanes" argv then begin
    run_lanes ~smoke:(List.mem "--smoke" argv) ~json_path;
    exit 0
  end;
  let rows = run_benchmarks () in
  Option.iter (fun path -> emit_json path rows) json_path;
  parallel_engine_check ();
  if not kernels_only then begin
    let scale = Simkit.Scale.of_env ~default:Simkit.Scale.Quick () in
    Printf.printf
      "\n== Experiment tables (scale: %s; set COBRA_SCALE=standard|full for the \
       EXPERIMENTS.md versions) ==\n"
      (Simkit.Scale.to_string scale);
    Experiments.Registry.run_all ~scale ~master
  end
