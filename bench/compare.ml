(* bench/compare.exe — regression gate over two cobra.bench/1 files.

   usage: compare.exe OLD.json NEW.json [--threshold RATIO]

   Sections are row-name prefixes before the first '/'. For every
   section of OLD that shares rows with NEW, the median new/old time
   ratio is printed together with the full per-row ratio table (on
   success too); the run fails when any median exceeds the threshold
   (default 1.25 = +25%).

   Exit codes: 0 no regression (improvements included)
               1 median regression in at least one section
               2 a section of OLD has no rows in NEW
               3 parse error or bad usage *)

module Benchfile = Simkit.Benchfile

let usage () =
  prerr_endline "usage: compare.exe OLD.json NEW.json [--threshold RATIO]";
  exit 3

let () =
  let threshold = ref 1.25 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t > 0.0 -> threshold := t
      | _ -> usage ());
      parse rest
    | "--threshold" :: [] -> usage ()
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with [ o; n ] -> (o, n) | _ -> usage ()
  in
  let load label path =
    match Benchfile.load path with
    | Ok t -> t
    | Error e ->
      Printf.eprintf "bench-compare: cannot read %s file %s: %s\n" label path e;
      exit 3
    | exception Sys_error e ->
      Printf.eprintf "bench-compare: cannot read %s file: %s\n" label e;
      exit 3
  in
  let old_ = load "OLD" old_path and new_ = load "NEW" new_path in
  let r = Benchfile.compare ~threshold:!threshold ~old_ ~new_ () in
  Printf.printf "bench-compare: %s -> %s (threshold %+.0f%%)\n" old_path new_path
    ((!threshold -. 1.0) *. 100.0);
  List.iter
    (fun s ->
      let open Benchfile in
      Printf.printf "  %-12s median x%.3f over %d rows  %s\n" s.section
        s.median_ratio (List.length s.ratios)
        (if s.regressed then "REGRESSED"
         else if s.median_ratio < 1.0 then "improved"
         else "ok");
      (* Every shared row, pass or fail: a section median can hide a
         single row drifting toward the threshold, and the per-row
         table is what makes two CI artifacts diffable at a glance. *)
      List.iter
        (fun (name, ratio) ->
          Printf.printf "    %-40s x%.3f%s\n" name ratio
            (if ratio > !threshold then "  <-- over threshold" else ""))
        s.ratios)
    r.sections;
  List.iter
    (fun s -> Printf.printf "  %-12s MISSING from %s\n" s new_path)
    r.missing_sections;
  exit (Benchfile.exit_code r)
