(* Duality check: Theorem 4, three ways.

   For a small graph we can compute the exact distribution of both
   set-valued Markov chains, so the identity

     P(Hit_u(v) > t | C_0 = {u}) = P(u not in A_t | A_0 = {v})

   can be checked to machine precision for every (u, v, t). We then
   confirm the same identity statistically on a 500-vertex graph where
   exact computation is impossible, and show it also holds for the
   fractional branching factors of Theorem 3.

   Run with: dune exec examples/duality_check.exe *)

let () =
  let k2 = Cobra.Branching.cobra_k2 in

  (* 1. Exact, every pair, Petersen graph. *)
  let p = Graph.Gen.petersen () in
  let gap = Cobra.Exact.duality_gap p ~branching:k2 ~t_max:10 in
  Format.printf "Petersen, k=2:      max |LHS - RHS| over all (u,v,t<=10) = %.3e@." gap;

  (* 2. Exact with fractional branching (Theorem 3's process). *)
  let gap_rho =
    Cobra.Exact.duality_gap p ~branching:(Cobra.Branching.one_plus 0.3) ~t_max:10
  in
  Format.printf "Petersen, 1+0.3:    max |LHS - RHS|                    = %.3e@." gap_rho;

  (* 3. One concrete survival curve, side by side. *)
  let survival = Cobra.Exact.cobra_hit_survival p ~branching:k2 ~start:[ 2 ] ~target:9 ~t_max:6 in
  let absent = Cobra.Exact.bips_avoid p ~branching:k2 ~source:9 ~avoid:[ 2 ] ~t_max:6 in
  Format.printf "@. t   COBRA P(Hit_2(9) > t)   BIPS P(2 not in A_t)@.";
  Array.iteri
    (fun t s -> Format.printf "%2d        %.10f         %.10f@." t s absent.(t))
    survival;

  (* 4. Monte-Carlo on a graph far beyond exact reach. *)
  let rng = Prng.Rng.create 99 in
  let g = Graph.View.of_csr (Graph.Gen.random_regular rng ~n:500 ~r:4) in
  Format.printf "@.Monte-Carlo on %a:@." Graph.View.pp g;
  List.iter
    (fun t ->
      let c = Cobra.Duality.compare_at ~trials:40_000 g ~branching:k2 ~u:3 ~v:77 ~t rng in
      let cobra_rate, bips_rate = Cobra.Duality.estimated_rates c in
      Format.printf "  t=%2d: COBRA %.4f vs BIPS %.4f (40k trials each)@." t cobra_rate
        bips_rate)
    [ 2; 4; 6; 8 ]
