(* Growth curves: watch the proof happen.

   One COBRA run and one BIPS run on the same expander, rendered as
   terminal sparklines. The BIPS curve shows the three phases the proof
   of Theorem 2 formalises (Lemmas 2-4): a slow burn while |A| is small,
   clean exponential growth through the bulk, and a coupon-collector
   endgame; the COBRA frontier curve shows the doubling launch and the
   ~0.8n equilibrium occupancy of the coalescing frontier.

   Run with: dune exec examples/growth_curves.exe *)

let n = 16_384
let r = 4

let () =
  let rng = Prng.Rng.create 77 in
  let g = Graph.View.of_csr (Graph.Gen.random_regular rng ~n ~r) in
  let gap = Spectral.Gap.estimate rng g in
  Format.printf "graph: %a, %a@.@." Graph.View.pp g Spectral.Gap.pp gap;

  let frontier =
    Cobra.Process.frontier_trajectory g ~branching:Cobra.Branching.cobra_k2 ~start:0 rng
  in
  Format.printf "COBRA frontier |C_t|, %d rounds to cover:@." (Array.length frontier - 1);
  Format.printf "  %s@." (Stats.Sparkline.render_ints frontier);
  let peak = Array.fold_left max 0 frontier in
  Format.printf "  range %s; equilibrium occupancy %.2fn (theory: 1 - e^-2 ~ 0.86 of@."
    (Stats.Sparkline.scale_line ~lo:1.0 ~hi:(Float.of_int peak))
    (Float.of_int peak /. Float.of_int n);
  Format.printf "  reachable mass under double uniform pushes)@.@.";

  let infected =
    Cobra.Bips.size_trajectory g ~branching:Cobra.Branching.cobra_k2 ~source:0 rng
  in
  Format.printf "BIPS infected |A_t|, %d rounds to saturation:@."
    (Array.length infected - 1);
  Format.printf "  %s@." (Stats.Sparkline.render_ints infected);
  (* Locate the proof's phase boundaries on this trajectory. *)
  let first_at threshold =
    let t = ref 0 in
    (try
       Array.iteri
         (fun i s ->
           if s >= threshold then begin
             t := i;
             raise Exit
           end)
         infected
     with Exit -> ());
    !t
  in
  let t1 = first_at (n / 10) and t2 = first_at (9 * n / 10) in
  Format.printf
    "  phases: 1 -> n/10 in %d rounds (Lemma 2) | n/10 -> 9n/10 in %d (Lemma 3) | \
     endgame %d (Lemma 4)@."
    t1 (t2 - t1)
    (Array.length infected - 1 - t2);
  Format.printf
    "@.The log-scale view of the middle phase is a straight line — the@.\
     per-round growth factor Lemma 1 bounds from below:@.";
  let log_infected = Array.map (fun s -> log (Float.of_int s)) infected in
  Format.printf "  %s@." (Stats.Sparkline.render log_infected)
