(* Broadcast race: the scenario from the paper's introduction.

   A rumour must reach every node of a sparse peer-to-peer overlay. We
   race four protocols on the same random 3-regular network and account
   both for latency (rounds) and bandwidth (total transmissions):

   - COBRA k=2: informed nodes push to 2 random neighbours, then go
     quiet until pushed to again;
   - push: every informed node pushes to 1 random neighbour every round;
   - push-pull: every node contacts 1 random neighbour, rumours cross
     the contact both ways;
   - simple random walk: a single token wanders (COBRA with k=1);
   - flooding: everyone repeats the rumour to all neighbours (the
     latency optimum and bandwidth worst case).

   Run with: dune exec examples/broadcast_race.exe *)

let n = 50_000
let trials = 5

let mean xs = Array.fold_left ( +. ) 0.0 xs /. Float.of_int (Array.length xs)

let () =
  let rng = Prng.Rng.create 7 in
  let g = Graph.View.of_csr (Graph.Gen.random_regular rng ~n ~r:3) in
  Format.printf "network: %a@.@." Graph.View.pp g;
  let table = Stats.Table.create [ "protocol"; "rounds"; "transmissions"; "tx/node" ] in
  let row name rounds tx =
    Stats.Table.add_row table
      [
        name;
        Printf.sprintf "%.1f" rounds;
        Printf.sprintf "%.3g" tx;
        Printf.sprintf "%.2f" (tx /. Float.of_int n);
      ]
  in

  (* COBRA k=2 *)
  let cobra_rounds = Array.make trials 0.0 and cobra_tx = Array.make trials 0.0 in
  for i = 0 to trials - 1 do
    let p = Cobra.Process.create g ~branching:Cobra.Branching.cobra_k2 ~start:[ 0 ] in
    while not (Cobra.Process.is_covered p) do
      Cobra.Process.step p rng
    done;
    cobra_rounds.(i) <- Float.of_int (Cobra.Process.round p);
    cobra_tx.(i) <- Float.of_int (Cobra.Process.transmissions p)
  done;
  row "COBRA k=2" (mean cobra_rounds) (mean cobra_tx);

  (* push and push-pull *)
  let run_protocol f =
    let rounds = Array.make trials 0.0 and tx = Array.make trials 0.0 in
    for i = 0 to trials - 1 do
      match f g ~start:0 rng with
      | Some o ->
        rounds.(i) <- Float.of_int o.Cobra.Push.rounds;
        tx.(i) <- Float.of_int o.Cobra.Push.transmissions
      | None -> assert false
    done;
    (mean rounds, mean tx)
  in
  let pr, pt = run_protocol (fun g -> Cobra.Push.push g) in
  row "push" pr pt;
  let qr, qt = run_protocol (fun g -> Cobra.Push.push_pull g) in
  row "push-pull" qr qt;

  (* single random walk — the k = 1 degenerate case; steps = transmissions *)
  (match Cobra.Rwalk.cover_time g ~start:0 rng with
  | Some steps -> row "random walk (k=1)" (Float.of_int steps) (Float.of_int steps)
  | None -> row "random walk (k=1)" Float.nan Float.nan);

  (* flooding *)
  let flood = Cobra.Push.flood g ~start:0 in
  row "flooding"
    (Float.of_int flood.Cobra.Push.rounds)
    (Float.of_int flood.Cobra.Push.transmissions);

  Stats.Table.print table;
  Format.printf
    "@.COBRA matches the randomized-broadcast latency class while every@.\
     node sends at most 2 messages per round and only while active;@.\
     the walk is ~1000x slower; flooding pays maximal bandwidth.@."
