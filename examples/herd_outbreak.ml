(* Herd outbreak: the epidemic story behind BIPS (Section 1, ref [9]).

   A dairy herd of 12 pens x 15 animals. Pens are dense contact cliques
   joined in a ring by fence-line contacts. We compare three scenarios:

   1. a persistently infected (PI) animal joins the herd — the BVDV
      phenomenon the paper cites: the whole herd is eventually exposed;
   2. a single transiently infected animal joins — the infection usually
      burns out before reaching everyone;
   3. the BIPS abstraction of scenario 1 (no immunity, memoryless
      re-sampling): the paper's clean model of the same dynamics.

   Run with: dune exec examples/herd_outbreak.exe *)

let pens = 12
let pen_size = 15
let trials = 40

let () =
  let g = Graph.View.of_csr (Graph.Gen.ring_of_cliques ~cliques:pens ~clique_size:pen_size) in
  let n = Graph.View.n_vertices g in
  Format.printf "herd: %d pens x %d animals — %a@.@." pens pen_size Graph.View.pp g;
  let params =
    { Epidemic.Herd.contacts = Cobra.Branching.cobra_k2;
      infectious_rounds = 2; immune_rounds = 8 }
  in
  let scenario name ~pi ~index =
    let full = ref 0 and extinct = ref 0 in
    let rounds = Stats.Summary.create () in
    for i = 0 to trials - 1 do
      let rng = Prng.Rng.create (1000 + i) in
      match Epidemic.Herd.run ~cap:200_000 g params ~pi ~index_cases:index rng with
      | Epidemic.Herd.Herd_fully_exposed t ->
        incr full;
        Stats.Summary.add_int rounds t
      | Epidemic.Herd.Infection_extinct _ -> incr extinct
      | Epidemic.Herd.No_resolution _ -> ()
    done;
    Format.printf "%-28s full exposure %2d/%d, extinct %2d/%d%s@." name !full trials
      !extinct trials
      (if Stats.Summary.count rounds > 0 then
         Format.asprintf ", rounds to full exposure %a" Stats.Summary.pp rounds
       else "")
  in
  scenario "1 PI animal:" ~pi:[ 0 ] ~index:[];
  scenario "1 transient index case:" ~pi:[] ~index:[ 0 ];
  let bips = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    let rng = Prng.Rng.create (2000 + i) in
    match Cobra.Bips.infection_time g ~branching:Cobra.Branching.cobra_k2 ~source:0 rng with
    | Some t -> Stats.Summary.add_int bips t
    | None -> ()
  done;
  Format.printf "%-28s full infection in %a@." "BIPS abstraction:"
    Stats.Summary.pp bips;
  Format.printf
    "@.The persistent source is what makes eventual full exposure certain —@.\
     exactly the property the paper isolates in the BIPS process (and,@.\
     through Theorem 4, the reason COBRA covers fast). n = %d.@."
    n
