(* Grid scaling: where COBRA is NOT fast.

   Theorem 1 is about expanders. On lattices the active set can only
   advance its boundary O(1) per round, so cover time is polynomial —
   ~ n on the cycle, ~ sqrt(n) on the 2-d torus (Dutta et al.). This
   example measures the contrast against an expander of the same size.

   Run with: dune exec examples/grid_scaling.exe *)

let trials = 10

let mean_cover g rng =
  let s = Stats.Summary.create () in
  for _ = 1 to trials do
    match Cobra.Process.cover_time g ~branching:Cobra.Branching.cobra_k2 ~start:0 rng with
    | Some t -> Stats.Summary.add_int s t
    | None -> ()
  done;
  Stats.Summary.mean s

let () =
  let rng = Prng.Rng.create 5 in
  let table =
    Stats.Table.create [ "graph"; "n"; "cover (mean)"; "ln n"; "n^(1/2)"; "n" ]
  in
  let row name gc =
    let g = Graph.View.of_csr gc in
    let n = Graph.View.n_vertices g in
    let c = mean_cover g rng in
    Stats.Table.add_row table
      [
        name;
        string_of_int n;
        Printf.sprintf "%.1f" c;
        Printf.sprintf "%.1f" (log (Float.of_int n));
        Printf.sprintf "%.1f" (sqrt (Float.of_int n));
        string_of_int n;
      ]
  in
  List.iter
    (fun side ->
      row (Printf.sprintf "cycle %d" side) (Graph.Gen.cycle side);
      row (Printf.sprintf "torus %dx%d" side side) (Graph.Gen.torus [| side; side |]);
      let n2 = side * side in
      row
        (Printf.sprintf "3-regular expander n=%d" n2)
        (Graph.Gen.random_regular rng ~n:n2 ~r:3))
    [ 32; 64; 128 ];
  Stats.Table.print table;
  Format.printf
    "@.Cycle cover tracks n, torus cover tracks sqrt(n), and the expander@.\
     of identical size tracks ln n — the paper's dichotomy in one table.@."
