(* Quickstart: the five-minute tour of the library.

   Build an expander, check its spectral gap, run the COBRA process to
   cover, run the dual BIPS epidemic to saturation, and verify on a small
   graph that the two processes really are duals (Theorem 4).

   Run with: dune exec examples/quickstart.exe *)

let () =
  let rng = Prng.Rng.create 2016 in

  (* 1. A random 3-regular graph on 10'000 vertices: an expander w.h.p. *)
  let gc = Graph.Gen.random_regular rng ~n:10_000 ~r:3 in
  let g = Graph.View.of_csr gc in
  Format.printf "graph: %a, connected: %b@." Graph.View.pp g (Graph.Algo.is_connected gc);

  (* 2. Its spectral gap, and what Theorem 1 predicts from it. *)
  let gap = Spectral.Gap.estimate rng g in
  Format.printf "spectrum: %a@." Spectral.Gap.pp gap;
  Format.printf "Theorem 1 scale, log n / gap^3: %.0f rounds (the hidden constant is small)@."
    (Spectral.Gap.theorem1_bound ~n:10_000 gap);

  (* 3. COBRA with branching factor 2: how many rounds to visit everyone? *)
  let branching = Cobra.Branching.cobra_k2 in
  (match Cobra.Process.cover_time g ~branching ~start:0 rng with
  | Some rounds ->
    Format.printf "COBRA covered all %d vertices in %d rounds (log2 n = %.1f)@."
      10_000 rounds (log (10_000.0) /. log 2.0)
  | None -> Format.printf "COBRA hit the round cap — should not happen here@.");

  (* 4. The dual epidemic: one persistently infected vertex infects all. *)
  (match Cobra.Bips.infection_time g ~branching ~source:0 rng with
  | Some rounds -> Format.printf "BIPS infected the whole graph in %d rounds@." rounds
  | None -> Format.printf "BIPS hit the round cap — should not happen here@.");

  (* 5. Theorem 4, exactly: on the Petersen graph, the probability that
     COBRA from u has not hit v by round t equals the probability that
     the BIPS epidemic sourced at v has not infected u at round t. *)
  let petersen = Graph.Gen.petersen () in
  let survival =
    Cobra.Exact.cobra_hit_survival petersen ~branching ~start:[ 0 ] ~target:7 ~t_max:5
  in
  let absent = Cobra.Exact.bips_avoid petersen ~branching ~source:7 ~avoid:[ 0 ] ~t_max:5 in
  Format.printf "@.Petersen graph, u=0, v=7 (exact distributions):@.";
  Format.printf " t | P(Hit_u(v) > t) | P(u not in A_t) @.";
  Array.iteri
    (fun t s -> Format.printf "%2d |      %.8f |      %.8f@." t s absent.(t))
    survival
