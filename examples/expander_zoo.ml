(* Expander zoo: one table through the whole library.

   For a menagerie of graph families this prints everything the paper
   cares about: the degree, the numerically estimated λ and gap (checked
   against closed forms where they exist), the Cheeger conductance range,
   whether the Theorem 1 premise gap >> sqrt(log n / n) holds, the
   measured COBRA k=2 cover time, and the theory scale log n / gap³.

   Run with: dune exec examples/expander_zoo.exe *)

let trials = 15

let mean_cover g rng =
  let s = Stats.Summary.create () in
  for _ = 1 to trials do
    match
      Cobra.Process.cover_time ~cap:(200 * Graph.View.n_vertices g) g
        ~branching:Cobra.Branching.cobra_k2 ~start:0 rng
    with
    | Some t -> Stats.Summary.add_int s t
    | None -> ()
  done;
  if Stats.Summary.count s = 0 then Float.nan else Stats.Summary.mean s

let () =
  let rng = Prng.Rng.create 2016 in
  let zoo =
    [
      ("complete:512", None);
      ("random-regular:1024x3", None);
      ("random-regular:1024x8", None);
      ("folded-hypercube:10", Some (Spectral.Closed_form.folded_hypercube 10));
      ("petersen", Some (2.0 /. 3.0));
      ("circulant:1023:1+2+3+4+5+6+7+8", None);
      ("torus:32x32", None);
      ("cycle:1023", Some (Spectral.Closed_form.cycle 1023));
      ("ring-of-cliques:16x8", None);
    ]
  in
  let table =
    Stats.Table.create
      ~aligns:
        [ Stats.Table.Left; Stats.Table.Right; Stats.Table.Right; Stats.Table.Right;
          Stats.Table.Right; Stats.Table.Right; Stats.Table.Right ]
      [ "graph"; "n"; "r"; "lambda"; "premise"; "cover k=2"; "ln n/gap^3" ]
  in
  List.iter
    (fun (desc, closed_form) ->
      let spec = Result.get_ok (Graph.Spec.parse desc) in
      let g =
        Result.get_ok (Graph.Spec.build_view spec ~backend:`Heap (Prng.Rng.split rng))
      in
      let n = Graph.View.n_vertices g in
      let lambda_cell, premise_cell, bound_cell =
        match Graph.View.regularity g with
        | Some r when r > 0 ->
          let gap = Spectral.Gap.estimate (Prng.Rng.split rng) g in
          (match closed_form with
          | Some expected ->
            assert (Float.abs (expected -. gap.Spectral.Gap.lambda) < 1e-3)
          | None -> ());
          ( Printf.sprintf "%.4f" gap.Spectral.Gap.lambda,
            Printf.sprintf "%.1fx" (Spectral.Gap.satisfies_gap_condition ~n gap),
            (if gap.Spectral.Gap.gap > 1e-9 then
               Printf.sprintf "%.3g" (Spectral.Gap.theorem1_bound ~n gap)
             else "inf") )
        | _ -> ("(irregular)", "-", "-")
      in
      let r_cell =
        match Graph.View.regularity g with
        | Some r -> string_of_int r
        | None ->
          Printf.sprintf "%d-%d" (Graph.View.min_degree g) (Graph.View.max_degree g)
      in
      Stats.Table.add_row table
        [
          desc;
          string_of_int n;
          r_cell;
          lambda_cell;
          premise_cell;
          Printf.sprintf "%.1f" (mean_cover g (Prng.Rng.split rng));
          bound_cell;
        ])
    zoo;
  Stats.Table.print table;
  Format.printf
    "@.premise = gap / sqrt(ln n / n); Theorem 1 applies when it is >> 1.@.\
     Constant-gap families cover in ~4 ln n rounds regardless of degree;@.\
     the cycle and the clique ring pay for their vanishing gaps.@."
