(** The registry of every sweepable process kernel: the four from
    [Cobra.Kernel] (cobra, bips, rwalk, push) plus the three from
    [Epidemic.Kernels] (sis, contact, herd). Grids refer to kernels by
    name through {!find}. *)

val all : Cobra.Kernel.t list

(** [find name] looks a kernel up by its [name] field. *)
val find : string -> Cobra.Kernel.t option

(** [names ()] lists the registered kernel names, registry order. *)
val names : unit -> string list
