(** The registry of every sweepable process kernel: the eight from
    [Cobra.Kernel] (cobra, bips, rwalk, push, pull, push-pull, coalesce,
    explore) plus the three from [Epidemic.Kernels] (sis, contact,
    herd). Grids refer to kernels by name through {!find} /
    {!find_res}.

    {!run_trials} is the shared trial driver behind sweep cells: one
    call plays [trials] independent trials of a kernel under either
    execution engine. [`Scalar] runs each trial on its own stream
    exactly as the historical per-trial loop. [`Lanes] runs them 64 per
    batch on the bit-sliced engine ([Cobra.Lanes] / [Epidemic.Lanes]),
    lane [j] of batch [b] drawing from precisely trial [b * 64 + j]'s
    derived stream; kernels or parameters without a sliced stepper
    (rwalk, pull, push-pull, coalesce, explore, contact, herd,
    [Distinct] branching) silently fall back to the scalar loop, so
    sweeps and campaigns can request [`Lanes] uniformly. *)

val all : Cobra.Kernel.t list

(** [find name] looks a kernel up by its [name] field. *)
val find : string -> Cobra.Kernel.t option

(** [names ()] lists the registered kernel names, registry order. *)
val names : unit -> string list

(** [find_res name] is {!find} with an error message listing the valid
    kernel names — the form grid parsing and the CLI report. *)
val find_res : string -> (Cobra.Kernel.t, string) result

(** {1 Execution engines} *)

type engine = [ `Scalar | `Lanes ]

val engine_to_string : engine -> string

(** [engine_of_string s] parses ["scalar"] / ["lanes"]
    (case-insensitive). *)
val engine_of_string : string -> (engine, string) result

(** [sliced kernel] is the kernel's bit-sliced counterpart, when one
    exists (cobra, bips, push, sis). *)
val sliced : Cobra.Kernel.t -> Cobra.Lanes.t option

(** [lanes_capable kernel params] says whether [`Lanes] would actually
    slice these runs ([false] means the fallback scalar loop runs). *)
val lanes_capable : Cobra.Kernel.t -> Cobra.Kernel.params -> bool

(** [run_trials ?engine kernel g params ~trials ~master ~salt0] plays
    trials [0 .. trials - 1] on the streams derived from
    [salt0 + 0 .. salt0 + trials - 1] and returns their outcomes in
    trial order. With [`Scalar] (the default) the result is
    draw-for-draw identical to the historical per-trial loop; with
    [`Lanes] each trial's outcome is drawn from the same per-trial
    stream through the sliced engine (distributionally equal per trial,
    deterministic in [(master, salt0)], but not draw-for-draw equal to
    scalar). *)
val run_trials :
  ?engine:engine ->
  Cobra.Kernel.t ->
  Graph.View.t ->
  Cobra.Kernel.params ->
  trials:int ->
  master:int ->
  salt0:int ->
  Cobra.Kernel.outcome array
