let all =
  [
    Cobra.Kernel.cobra;
    Cobra.Kernel.bips;
    Cobra.Kernel.rwalk;
    Cobra.Kernel.push;
    Cobra.Kernel.pull;
    Cobra.Kernel.push_pull;
    Cobra.Kernel.coalesce;
    Cobra.Kernel.explore;
    Epidemic.Kernels.sis;
    Epidemic.Kernels.contact;
    Epidemic.Kernels.herd;
    Epidemic.Kernels.seir;
  ]

let find name = List.find_opt (fun k -> k.Cobra.Kernel.name = name) all

let names () = List.map (fun k -> k.Cobra.Kernel.name) all

let find_res name =
  match find name with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown kernel %S (available: %s)" name
         (String.concat ", " (names ())))

(* ---------- engines ---------- *)

type engine = [ `Scalar | `Lanes ]

let engine_to_string = function `Scalar -> "scalar" | `Lanes -> "lanes"

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "scalar" -> Ok `Scalar
  | "lanes" -> Ok `Lanes
  | s -> Error (Printf.sprintf "unknown engine %S (available: scalar, lanes)" s)

(* The sliced-stepper registry: bips/cobra/push from Cobra.Lanes, sis
   from Epidemic.Lanes. Everything else (rwalk, contact, herd, seir)
   runs scalar under every engine. *)
let sliced kernel =
  let name = kernel.Cobra.Kernel.name in
  match Cobra.Lanes.find name with
  | Some s -> Some s
  | None -> Epidemic.Lanes.find name

let lanes_capable kernel params =
  match sliced kernel with
  | None -> false
  | Some s -> s.Cobra.Lanes.supports params

let batch = Dstruct.Lanemat.lanes

(* [trials] scalar kernel runs on the per-trial streams
   [salt0 + 0 .. salt0 + trials - 1] — the exact loop every sweep cell
   historically ran, factored out so both engines share one entry
   point. *)
let run_scalar kernel g params ~trials ~master ~salt0 =
  Array.init trials (fun i ->
      let rng = Simkit.Seeds.trial_rng ~master ~salt:(salt0 + i) in
      Cobra.Kernel.run kernel g params rng)

(* The lane engine: trials advance 64 per batch, lane [j] of batch [b]
   being trial [b * 64 + j] on its own derived stream. A short final
   batch masks its unused lanes out of every reduction. *)
let run_lanes s g params ~trials ~master ~salt0 =
  let out = Array.make trials None in
  let b = ref 0 in
  while !b * batch < trials do
    let base = !b * batch in
    let n_active = min batch (trials - base) in
    let seeds =
      Array.init batch (fun j ->
          Simkit.Seeds.trial_seed ~master ~salt:(salt0 + base + j))
    in
    let gen = Prng.Lanes.create seeds in
    let outcomes = Cobra.Lanes.run_batch s g params gen ~n_active in
    Array.iteri (fun j o -> out.(base + j) <- Some o) outcomes;
    incr b
  done;
  Array.map Option.get out

let run_trials ?(engine = `Scalar) kernel g params ~trials ~master ~salt0 =
  if trials < 0 then invalid_arg "Kernels.run_trials: negative trials";
  match engine with
  | `Scalar -> run_scalar kernel g params ~trials ~master ~salt0
  | `Lanes -> (
    match sliced kernel with
    | Some s when s.Cobra.Lanes.supports params ->
      run_lanes s g params ~trials ~master ~salt0
    | Some _ | None ->
      (* No sliced stepper for this kernel (or these params): fall back
         to the scalar engine rather than failing the whole sweep. *)
      run_scalar kernel g params ~trials ~master ~salt0)
