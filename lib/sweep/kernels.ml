let all =
  [
    Cobra.Kernel.cobra;
    Cobra.Kernel.bips;
    Cobra.Kernel.rwalk;
    Cobra.Kernel.push;
    Epidemic.Kernels.sis;
    Epidemic.Kernels.contact;
    Epidemic.Kernels.herd;
  ]

let find name = List.find_opt (fun k -> k.Cobra.Kernel.name = name) all

let names () = List.map (fun k -> k.Cobra.Kernel.name) all
