module K = Cobra.Kernel
module Json = Simkit.Json

type t = {
  name : string;
  graphs : Graph.Spec.t list;
  kernels : K.t list;
  branchings : Cobra.Branching.t list;
  trials : int;
  base : K.params;
  engine : Kernels.engine;
  backend : Graph.View.backend;
}

let schema = "cobra.sweep-grid/1"

let ( let* ) = Result.bind

(* ---------- parsing ---------- *)

(* Both grid forms (JSON file, inline string) funnel their scalar
   parameters through this string-typed setter, so the two accept
   exactly the same keys. *)
let set_param p key v =
  let int f =
    match int_of_string_opt v with
    | Some i -> Ok (f i)
    | None -> Error (Printf.sprintf "%s: expected an integer, got %S" key v)
  in
  let flt f =
    match float_of_string_opt v with
    | Some x -> Ok (f x)
    | None -> Error (Printf.sprintf "%s: expected a number, got %S" key v)
  in
  let bool f =
    match String.lowercase_ascii v with
    | "true" -> Ok (f true)
    | "false" -> Ok (f false)
    | _ -> Error (Printf.sprintf "%s: expected true or false, got %S" key v)
  in
  match key with
  | "start" -> int (fun i -> { p with K.start = i })
  | "walkers" -> int (fun i -> { p with K.walkers = i })
  | "rate" -> flt (fun x -> { p with K.rate = x })
  | "horizon" -> flt (fun x -> { p with K.horizon = x })
  | "recovery" -> flt (fun x -> { p with K.recovery = x })
  | "persistent" -> bool (fun b -> { p with K.persistent = b })
  | "infectious_rounds" -> int (fun i -> { p with K.infectious_rounds = i })
  | "immune_rounds" -> int (fun i -> { p with K.immune_rounds = i })
  | "latent_rounds" -> int (fun i -> { p with K.latent_rounds = i })
  | "cap" -> int (fun i -> { p with K.cap = Some i })
  | _ -> Error (Printf.sprintf "unknown parameter %S" key)

let param_keys =
  [ "start"; "walkers"; "rate"; "horizon"; "recovery"; "persistent";
    "infectious_rounds"; "immune_rounds"; "latent_rounds"; "cap" ]

let parse_graphs strs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match Graph.Spec.parse s with
      | Ok spec -> go (spec :: acc) rest
      | Error msg -> Error (Printf.sprintf "graph %S: %s" s msg))
  in
  go [] strs

let parse_kernels strs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match Kernels.find_res s with
      | Ok k -> go (k :: acc) rest
      | Error msg -> Error msg)
  in
  go [] strs

let parse_branchings strs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match Cobra.Branching.of_string s with
      | Ok b -> go (b :: acc) rest
      | Error msg -> Error (Printf.sprintf "branching %S: %s" s msg))
  in
  go [] strs

let validate grid =
  if grid.graphs = [] then Error "grid needs at least one graph"
  else if grid.kernels = [] then Error "grid needs at least one kernel"
  else if grid.branchings = [] then Error "grid needs at least one branching"
  else if grid.trials < 1 then Error "trials must be >= 1"
  else Ok grid

let of_json doc =
  let str_field key = Option.bind (Json.member key doc) Json.to_string_opt in
  let str_list key =
    match Json.member key doc with
    | None -> Ok None
    | Some v -> (
      match Json.to_list v with
      | None -> Error (Printf.sprintf "%s: expected a list of strings" key)
      | Some items ->
        let strs = List.filter_map Json.to_string_opt items in
        if List.length strs <> List.length items then
          Error (Printf.sprintf "%s: expected a list of strings" key)
        else Ok (Some strs))
  in
  let* () =
    match str_field "schema" with
    | None -> Ok ()
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "unsupported grid schema %S (want %S)" s schema)
  in
  let* graphs_s = str_list "graphs" in
  let* kernels_s = str_list "kernels" in
  let* branchings_s = str_list "branching" in
  let* graphs = parse_graphs (Option.value graphs_s ~default:[]) in
  let* kernels = parse_kernels (Option.value kernels_s ~default:[]) in
  let* branchings = parse_branchings (Option.value branchings_s ~default:[ "k=2" ]) in
  let* trials =
    match Json.member "trials" doc with
    | None -> Ok 10
    | Some (Json.Int i) -> Ok i
    | Some _ -> Error "trials: expected an integer"
  in
  let* engine =
    match str_field "engine" with
    | None -> Ok `Scalar
    | Some s -> Kernels.engine_of_string s
  in
  let* backend =
    match str_field "backend" with
    | None -> Ok `Heap
    | Some s -> Graph.View.backend_of_string s
  in
  let* base =
    match Json.member "params" doc with
    | None -> Ok K.default_params
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (key, v) ->
          let* p = acc in
          let* s =
            match v with
            | Json.Int i -> Ok (string_of_int i)
            | Json.Float x -> Ok (Json.float_repr x)
            | Json.Bool b -> Ok (string_of_bool b)
            | Json.String s -> Ok s
            | _ -> Error (Printf.sprintf "params.%s: expected a scalar" key)
          in
          set_param p key s)
        (Ok K.default_params) fields
    | Some _ -> Error "params: expected an object"
  in
  validate
    {
      name = Option.value (str_field "name") ~default:"sweep";
      graphs;
      kernels;
      branchings;
      trials;
      base;
      engine;
      backend;
    }

let of_inline s =
  let fields =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let split_kv f =
    match String.index_opt f '=' with
    | None -> Error (Printf.sprintf "%S: expected key=value" f)
    | Some i ->
      Ok (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))
  in
  let commas v = String.split_on_char ',' v |> List.map String.trim in
  List.fold_left
    (fun acc f ->
      let* grid = acc in
      let* key, v = split_kv f in
      match key with
      | "name" -> Ok { grid with name = v }
      | "graphs" ->
        let* graphs = parse_graphs (commas v) in
        Ok { grid with graphs }
      | "kernels" ->
        let* kernels = parse_kernels (commas v) in
        Ok { grid with kernels }
      | "branching" ->
        let* branchings = parse_branchings (commas v) in
        Ok { grid with branchings }
      | "trials" -> (
        match int_of_string_opt v with
        | Some i -> Ok { grid with trials = i }
        | None -> Error (Printf.sprintf "trials: expected an integer, got %S" v))
      | "engine" ->
        let* engine = Kernels.engine_of_string v in
        Ok { grid with engine }
      | "backend" ->
        let* backend = Graph.View.backend_of_string v in
        Ok { grid with backend }
      | key when List.mem key param_keys ->
        let* base = set_param grid.base key v in
        Ok { grid with base }
      | key -> Error (Printf.sprintf "unknown grid key %S" key))
    (Ok
       {
         name = "sweep";
         graphs = [];
         kernels = [];
         branchings = [ Cobra.Branching.cobra_k2 ];
         trials = 10;
         base = K.default_params;
         engine = `Scalar;
         backend = `Heap;
       })
    fields
  |> fun r -> Result.bind r validate

let load s =
  if Sys.file_exists s then
    match Json.of_file s with
    | Error msg -> Error (Printf.sprintf "%s: %s" s msg)
    | Ok doc -> (
      match of_json doc with
      | Error msg -> Error (Printf.sprintf "%s: %s" s msg)
      | Ok _ as ok -> ok)
  else if Filename.check_suffix s ".json" || not (String.contains s '=') then
    (* Every inline grid contains at least one '='; anything without one
       (or ending in .json) is a file path — report the missing file
       rather than a baffling inline-parse error. *)
    Error
      (Printf.sprintf
         "%s: no such file (inline grids look like \"graphs=...;kernels=...\")" s)
  else of_inline s

(* ---------- expansion ---------- *)

(* The execution engine and the topology backend are part of the
   campaign identity (lanes and scalar results differ draw-for-draw;
   backends produce identical streams but belong to distinct campaign
   configurations, and mixing them in one checkpoint would hide a
   backend regression), so both join the cell meta and a resume under a
   different engine or backend refuses to mix checkpoints. Scalar/heap
   grids omit the keys, keeping their meta — and thus their existing
   checkpoints — byte-identical to earlier versions. *)
let params_meta ?(engine = `Scalar) ?(backend = `Heap) trials base =
  let engine_field =
    match engine with
    | `Scalar -> []
    | `Lanes -> [ ("engine", Json.String (Kernels.engine_to_string engine)) ]
  in
  let backend_field =
    match backend with
    | `Heap -> []
    | (`Bigarray | `Implicit) as b ->
      [ ("backend", Json.String (Graph.View.backend_to_string b)) ]
  in
  (* [latent_rounds] arrived with the SEIR kernel, after checkpoints of
     the earlier meta shape already existed; grids at the default omit
     the key so those checkpoints keep their meta digests (the same
     convention engine/backend follow above). *)
  let latent_field =
    if base.K.latent_rounds = K.default_params.K.latent_rounds then []
    else [ ("latent_rounds", Json.Int base.K.latent_rounds) ]
  in
  Json.Obj
    (engine_field @ backend_field @ latent_field
    @ [
      ("trials", Json.Int trials);
      ("start", Json.Int base.K.start);
      ("walkers", Json.Int base.K.walkers);
      ("rate", Json.Float base.K.rate);
      ("horizon", Json.Float base.K.horizon);
      ("recovery", Json.Float base.K.recovery);
      ("persistent", Json.Bool base.K.persistent);
      ("infectious_rounds", Json.Int base.K.infectious_rounds);
      ("immune_rounds", Json.Int base.K.immune_rounds);
      ("cap", (match base.K.cap with Some c -> Json.Int c | None -> Json.Null));
    ])

(* One cell's payload: [trials] kernel runs on the streams
   [salt + 0 .. salt + trials - 1] — pure in [(master, salt)], which is
   what makes checkpoints reusable across interrupted runs. The engine
   only changes how those trials execute ([Kernels.run_trials]);
   aggregation walks the outcomes in trial order either way, so the
   scalar path reproduces the historical per-trial loop draw-for-draw. *)
let run_cell ~spec ~kernel ~branching ~trials ~base ~engine ~backend ~address
    ~master ~salt =
  let spec_str = Graph.Spec.to_string spec in
  let grng = Simkit.Seeds.tagged_rng ~master ~tag:("sweep:graph:" ^ spec_str) in
  match Graph.Spec.build_view spec ~backend grng with
  | Error msg -> failwith (Printf.sprintf "%s: graph build failed: %s" address msg)
  | Ok g ->
    let params = { base with K.branching } in
    let completed = ref 0 in
    let rounds = Stats.Summary.create () in
    let obs_keys = ref [] in
    let obs : (string, Stats.Summary.t) Hashtbl.t = Hashtbl.create 8 in
    let outcomes =
      Kernels.run_trials ~engine kernel g params ~trials ~master ~salt0:salt
    in
    Array.iter
      (fun o ->
        if o.K.completed then begin
          incr completed;
          Stats.Summary.add_int rounds o.K.rounds
        end;
        List.iter
          (fun (key, v) ->
            let s =
              match Hashtbl.find_opt obs key with
              | Some s -> s
              | None ->
                let s = Stats.Summary.create () in
                Hashtbl.add obs key s;
                obs_keys := key :: !obs_keys;
                s
            in
            Stats.Summary.add s v)
          o.K.observations)
      outcomes;
    let rounds_json =
      if !completed = 0 then Json.Null
      else
        Json.Obj
          [
            ("mean", Json.Float (Stats.Summary.mean rounds));
            ("min", Json.Float (Stats.Summary.min rounds));
            ("max", Json.Float (Stats.Summary.max rounds));
            ( "sd",
              Json.Float
                (if Stats.Summary.count rounds >= 2 then Stats.Summary.stddev rounds
                 else 0.0) );
          ]
    in
    let obs_json =
      List.sort compare !obs_keys
      |> List.map (fun key ->
             (key, Json.Float (Stats.Summary.mean (Hashtbl.find obs key))))
    in
    Json.Obj
      [
        ("graph", Json.String spec_str);
        ("n", Json.Int (Graph.View.n_vertices g));
        ("kernel", Json.String kernel.K.name);
        ("branching", Json.String (Cobra.Branching.to_arg branching));
        ("trials", Json.Int trials);
        ("completed", Json.Int !completed);
        ("censored", Json.Int (trials - !completed));
        ("rounds", rounds_json);
        ("observations", Json.Obj obs_json);
      ]

let cells grid =
  let cells = ref [] in
  let index = ref 0 in
  List.iter
    (fun spec ->
      List.iter
        (fun kernel ->
          List.iter
            (fun branching ->
              (* Canonical address via Cellid so reserved characters are
                 rejected rather than silently producing an ambiguous
                 address; renders as "g=<spec>;k=<kernel>;b=<branching>",
                 byte-identical to the historical sprintf. *)
              let address =
                Simkit.Cellid.address_of_parts
                  [
                    ("g", Graph.Spec.to_string spec);
                    ("k", kernel.K.name);
                    ("b", Cobra.Branching.to_arg branching);
                  ]
              in
              let meta =
                [
                  ("graph", Json.String (Graph.Spec.to_string spec));
                  ("kernel", Json.String kernel.K.name);
                  ("branching", Json.String (Cobra.Branching.to_arg branching));
                  ( "params",
                    params_meta ~engine:grid.engine ~backend:grid.backend
                      grid.trials grid.base );
                ]
              in
              let cell =
                {
                  Simkit.Campaign.index = !index;
                  address;
                  meta;
                  run =
                    (fun ~master ~salt ->
                      run_cell ~spec ~kernel ~branching ~trials:grid.trials
                        ~base:grid.base ~engine:grid.engine
                        ~backend:grid.backend ~address ~master ~salt);
                }
              in
              incr index;
              cells := cell :: !cells)
            grid.branchings)
        grid.kernels)
    grid.graphs;
  List.rev !cells
