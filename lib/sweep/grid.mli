(** Declarative sweep grids: graph family x process kernel x branching,
    with shared trial counts and kernel parameters.

    A grid expands ({!cells}) into the cartesian product of its three
    axes, in a fixed order (graphs outermost, then kernels, then
    branchings), each point becoming one [Simkit.Campaign] cell whose
    address is the canonical ["g=<spec>;k=<kernel>;b=<branching>"]
    string. Cell payloads are deterministic functions of
    [(master, salt)]: the cell builds its graph from the stream tagged
    by the graph description (so every cell of the same spec sees the
    same graph), then runs [trials] kernel trials on the streams
    [salt + 0 .. salt + trials - 1].

    Grids are written as JSON documents (schema {!schema}) or as inline
    [key=value;...] strings; {!load} accepts either (a path that exists
    on disk is parsed as a file). *)

type t = {
  name : string;  (** campaign name; default ["sweep"] *)
  graphs : Graph.Spec.t list;
  kernels : Cobra.Kernel.t list;
  branchings : Cobra.Branching.t list;
  trials : int;
  base : Cobra.Kernel.params;
      (** shared kernel parameters; [branching] is overridden per cell *)
  engine : Kernels.engine;
      (** trial execution engine ([key engine=scalar|lanes]; default
          scalar). [`Lanes] runs lanes-capable kernels 64 trials per
          word via [Kernels.run_trials], falling back to scalar per
          kernel; it is part of the campaign identity, so checkpoints
          written under one engine refuse to resume under the other. *)
  backend : Graph.View.backend;
      (** topology backend the cells build their graph behind
          ([key backend=heap|bigarray|implicit]; default heap). All
          three produce bit-identical RNG streams for the same
          topology, but the backend is still part of the campaign
          identity — a checkpoint written under one backend refuses to
          resume under another, so a cross-backend divergence can never
          hide inside a mixed checkpoint. Heap grids omit the meta key,
          keeping pre-existing checkpoints valid. *)
}

(** The grid-file schema identifier, ["cobra.sweep-grid/1"]. *)
val schema : string

(** [of_json doc] parses a grid document:
    [{"schema"?, "name"?, "graphs": [...], "kernels": [...],
      "branching"?: [...], "trials"?, "params"?: {...}}].
    [params] accepts [start], [walkers], [rate], [horizon], [recovery],
    [persistent], [infectious_rounds], [immune_rounds], [cap]. *)
val of_json : Simkit.Json.t -> (t, string) result

(** [of_inline s] parses the compact CLI form, e.g.
    ["name=smoke;graphs=cycle:12,complete:8;kernels=cobra,bips;branching=k=2;trials=3;rate=1.5"]
    — the same keys as the JSON form, with [params] flattened. *)
val of_inline : string -> (t, string) result

(** [load s] reads [s] as a file when it exists on disk, otherwise
    parses it as an inline grid. A non-existent [s] that looks like a
    file path (ends in [.json], or contains no ['=']) is reported as a
    missing file instead of being fed to the inline parser. *)
val load : string -> (t, string) result

(** [cells grid] expands the grid into campaign cells (addresses unique,
    indices positional). *)
val cells : t -> Simkit.Campaign.cell list
