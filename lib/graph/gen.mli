(** Graph families used throughout the reproduction.

    The paper's statements quantify over r-regular graphs with spectral gap
    [1 - λ]; the generators below provide concrete families spanning the
    relevant regimes:

    - constant gap, any degree: {!complete}, {!random_regular},
      {!circulant} with spread offsets, {!petersen};
    - shrinking gap: {!circulant} with few offsets, {!ring_of_cliques},
      {!torus};
    - non-expanders (the Dutta et al. comparison): {!cycle}, {!grid},
      {!torus}, {!path}, {!barbell}, {!lollipop};
    - spectral test oracles (closed-form eigenvalues): {!complete},
      {!cycle}, {!hypercube}, {!complete_bipartite}, {!circulant},
      {!torus}.

    All generators return simple connected graphs unless documented
    otherwise, and raise [Invalid_argument] on parameters outside their
    stated domain. *)

(** [complete n] is K_n, (n-1)-regular; [n >= 1]. *)
val complete : int -> Csr.t

(** [cycle n] is C_n, 2-regular; [n >= 3]. Bipartite iff [n] even. *)
val cycle : int -> Csr.t

(** [path n] is the path on [n >= 1] vertices. *)
val path : int -> Csr.t

(** [star n] is the star with centre 0 and [n - 1] leaves; [n >= 2]. *)
val star : int -> Csr.t

(** [complete_bipartite a b] is K_{a,b} with parts [0..a-1] and
    [a..a+b-1]; [a, b >= 1]. Bipartite, hence λ = 1. *)
val complete_bipartite : int -> int -> Csr.t

(** [hypercube d] is the d-dimensional cube on 2^d vertices, d-regular and
    bipartite; [0 <= d <= 20]. Vertex x is adjacent to [x lxor (1 lsl i)]. *)
val hypercube : int -> Csr.t

(** [folded_hypercube d] is Q_d plus an edge from every vertex to its
    bitwise complement: (d+1)-regular on 2^d vertices, diameter ⌈d/2⌉,
    walk eigenvalues [((d - 2k) + (-1)^k) / (d+1)]. For {e even} [d] the
    complement edge joins same-parity vertices, so the graph is
    non-bipartite with λ = (d-1)/(d+1) — an explicit deterministic
    expander family with closed-form gap [2/(d+1)] (odd [d] stays
    bipartite, λ = 1). Requires [2 <= d <= 20]. *)
val folded_hypercube : int -> Csr.t

(** [torus dims] is the product of cycles with side lengths [dims]
    (non-trivial dims must be [>= 2]; a side of 2 contributes a single edge,
    not a doubled one). 2d-regular when all sides are [>= 3]. Vertex
    numbering is row-major. *)
val torus : int array -> Csr.t

(** [grid dims] is the non-wrapping product of paths, row-major. *)
val grid : int array -> Csr.t

(** [binary_tree depth] is the complete binary tree with
    [2^(depth+1) - 1] vertices; root 0, children of [v] at [2v+1], [2v+2];
    [0 <= depth <= 25]. *)
val binary_tree : int -> Csr.t

(** [circulant n offsets] has vertex [i] adjacent to [i ± o mod n] for each
    [o] in [offsets]. Offsets must be distinct, in [1 .. n/2]. Degree is
    [2 * |offsets|], minus one per vertex if [n/2] is an offset (and n
    even). Eigenvalues of the walk matrix are
    [(Σ_o 2cos(2π o j / n)) / r], which makes this the tunable-gap regular
    family of experiment E6. *)
val circulant : int -> int list -> Csr.t

(** [petersen ()] is the Petersen graph: 10 vertices, 3-regular,
    λ = max(|1/3|, |−2/3|) = 2/3. *)
val petersen : unit -> Csr.t

(** [ring_of_cliques ~cliques ~clique_size] joins [cliques >= 3] copies of
    K_{clique_size} ([clique_size >= 3]) in a ring, one bridge edge between
    consecutive cliques. Connected, non-regular (bridge endpoints have one
    extra edge), with a spectral gap shrinking as the ring grows — a
    bottleneck family. *)
val ring_of_cliques : cliques:int -> clique_size:int -> Csr.t

(** [barbell ~clique_size ~path_len] is two K_{clique_size} joined by a
    path of [path_len] extra vertices ([path_len >= 0];
    [clique_size >= 3]). *)
val barbell : clique_size:int -> path_len:int -> Csr.t

(** [lollipop ~clique_size ~path_len] is K_{clique_size} with a pendant
    path of [path_len >= 1] vertices. *)
val lollipop : clique_size:int -> path_len:int -> Csr.t

(** [wheel n] is C_{n-1} plus a hub adjacent to every rim vertex;
    [n >= 4]. *)
val wheel : int -> Csr.t

(** [random_regular rng ~n ~r] draws a simple connected r-regular graph on
    [n] vertices via the configuration model with pairwise edge-swap repair
    of self-loops and multi-edges, retrying until connected. Requires
    [3 <= r < n] and [n * r] even (the paper's degree range; [r = 2] is
    special-cased to a uniformly labelled cycle). For [r >= 3] the result
    is an expander with high probability. *)
val random_regular : Prng.Rng.t -> n:int -> r:int -> Csr.t

(** [erdos_renyi rng ~n ~p] draws G(n, p) by geometric edge skipping,
    O(n + m) expected. Not necessarily connected. *)
val erdos_renyi : Prng.Rng.t -> n:int -> p:float -> Csr.t

(** [barabasi_albert rng ~n ~m ~prob_unbiased] draws a preferential-
    attachment graph (Barabási–Albert): a seed clique on [m + 1]
    vertices, then each new vertex attaches to [m] distinct existing
    vertices, each pick being degree-proportional with probability
    [1 - prob_unbiased] and uniform over existing vertices with
    probability [prob_unbiased] (so 0 is pure BA with a power-law degree
    tail and 1 is uniform attachment with an exponential tail — the knob
    interpolates degree-tail heaviness). Simple, connected, min degree
    [>= m]. Streaming build: the repeated-endpoint sampling array doubles
    as the edge list fed to [Csr.of_edge_iter], so memory is one int
    array of [2 m (n - m) + m (m + 1)] words plus the CSR. Requires
    [m >= 1], [n >= m + 1], [prob_unbiased] in [0, 1]. *)
val barabasi_albert : Prng.Rng.t -> n:int -> m:int -> prob_unbiased:float -> Csr.t

(** [gnm rng ~n ~m] draws a uniform graph with exactly [m] distinct edges;
    requires [0 <= m <= n(n-1)/2]. Not necessarily connected. *)
val gnm : Prng.Rng.t -> n:int -> m:int -> Csr.t

(** [rewire rng g ~swaps] applies [swaps] random double-edge swaps
    ({a,b},{c,d} → {a,c},{b,d}), each accepted only if it keeps the graph
    simple. Degrees are preserved exactly; enough accepted swaps
    randomise the graph towards a uniform one with the same degree
    sequence — an interpolation between structured and random used by the
    gap experiments and by tests. Connectivity is {e not} guaranteed. *)
val rewire : Prng.Rng.t -> Csr.t -> swaps:int -> Csr.t
