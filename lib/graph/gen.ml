module Rng = Prng.Rng

let complete n =
  if n < 1 then invalid_arg "Gen.complete: n >= 1 required";
  let b = Build.create ~n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Build.add_edge b u v
    done
  done;
  Build.finish b

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: n >= 3 required";
  let b = Build.create ~n in
  for v = 0 to n - 1 do
    Build.add_edge b v ((v + 1) mod n)
  done;
  Build.finish b

let path n =
  if n < 1 then invalid_arg "Gen.path: n >= 1 required";
  let b = Build.create ~n in
  for v = 0 to n - 2 do
    Build.add_edge b v (v + 1)
  done;
  Build.finish b

let star n =
  if n < 2 then invalid_arg "Gen.star: n >= 2 required";
  let b = Build.create ~n in
  for v = 1 to n - 1 do
    Build.add_edge b 0 v
  done;
  Build.finish b

let complete_bipartite a bb =
  if a < 1 || bb < 1 then invalid_arg "Gen.complete_bipartite: parts >= 1";
  let b = Build.create ~n:(a + bb) in
  for u = 0 to a - 1 do
    for v = a to a + bb - 1 do
      Build.add_edge b u v
    done
  done;
  Build.finish b

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Gen.hypercube: 0 <= d <= 20";
  let n = 1 lsl d in
  let b = Build.create ~n in
  for x = 0 to n - 1 do
    for i = 0 to d - 1 do
      let y = x lxor (1 lsl i) in
      if x < y then Build.add_edge b x y
    done
  done;
  Build.finish b

let folded_hypercube d =
  if d < 2 || d > 20 then invalid_arg "Gen.folded_hypercube: 2 <= d <= 20";
  let n = 1 lsl d in
  let full = n - 1 in
  let b = Build.create ~n in
  for x = 0 to n - 1 do
    for i = 0 to d - 1 do
      let y = x lxor (1 lsl i) in
      if x < y then Build.add_edge b x y
    done;
    let y = x lxor full in
    if x < y then Build.add_edge b x y
  done;
  Build.finish b

(* Row-major product of paths/cycles. [wrap] adds the closing edge of each
   cycle; a side of length 2 never wraps (that would duplicate the edge),
   and a side of length 1 contributes nothing. *)
let lattice ~wrap dims =
  Array.iter
    (fun d -> if d < 1 then invalid_arg "Gen.lattice: sides must be >= 1")
    dims;
  let n = Array.fold_left ( * ) 1 dims in
  let k = Array.length dims in
  (* stride.(i) = product of dims.(i+1 ..) *)
  let stride = Array.make k 1 in
  for i = k - 2 downto 0 do
    stride.(i) <- stride.(i + 1) * dims.(i + 1)
  done;
  let b = Build.create ~n in
  let coord = Array.make k 0 in
  for v = 0 to n - 1 do
    (* Decode v into coordinates. *)
    let rest = ref v in
    for i = 0 to k - 1 do
      coord.(i) <- !rest / stride.(i);
      rest := !rest mod stride.(i)
    done;
    for i = 0 to k - 1 do
      let side = dims.(i) in
      if coord.(i) + 1 < side then Build.add_edge b v (v + stride.(i))
      else if wrap && side > 2 then
        (* Closing edge from the last layer back to layer 0. *)
        Build.add_edge b v (v - ((side - 1) * stride.(i)))
    done
  done;
  Build.finish b

let torus dims = lattice ~wrap:true dims
let grid dims = lattice ~wrap:false dims

let binary_tree depth =
  if depth < 0 || depth > 25 then invalid_arg "Gen.binary_tree: 0 <= depth <= 25";
  let n = (1 lsl (depth + 1)) - 1 in
  let b = Build.create ~n in
  for v = 0 to n - 1 do
    let left = (2 * v) + 1 and right = (2 * v) + 2 in
    if left < n then Build.add_edge b v left;
    if right < n then Build.add_edge b v right
  done;
  Build.finish b

let circulant n offsets =
  if n < 3 then invalid_arg "Gen.circulant: n >= 3 required";
  let sorted = List.sort_uniq compare offsets in
  if List.length sorted <> List.length offsets then
    invalid_arg "Gen.circulant: duplicate offsets";
  List.iter
    (fun o ->
      if o < 1 || o > n / 2 then
        invalid_arg "Gen.circulant: offsets must lie in 1 .. n/2")
    sorted;
  let b = Build.create ~n in
  List.iter
    (fun o ->
      if 2 * o = n then
        (* Antipodal offset: each edge {i, i + n/2} exists once. *)
        for i = 0 to (n / 2) - 1 do
          Build.add_edge b i (i + o)
        done
      else
        for i = 0 to n - 1 do
          Build.add_edge b i ((i + o) mod n)
        done)
    sorted;
  Build.finish b

let petersen () =
  (* Outer 5-cycle 0-4, inner pentagram 5-9, spokes i -- i+5. *)
  let b = Build.create ~n:10 in
  for i = 0 to 4 do
    Build.add_edge b i ((i + 1) mod 5);
    Build.add_edge b (5 + i) (5 + ((i + 2) mod 5));
    Build.add_edge b i (i + 5)
  done;
  Build.finish b

let add_clique b ~first ~size =
  for u = first to first + size - 1 do
    for v = u + 1 to first + size - 1 do
      Build.add_edge b u v
    done
  done

let ring_of_cliques ~cliques ~clique_size =
  if cliques < 3 then invalid_arg "Gen.ring_of_cliques: cliques >= 3";
  if clique_size < 3 then invalid_arg "Gen.ring_of_cliques: clique_size >= 3";
  let n = cliques * clique_size in
  let b = Build.create ~n in
  for c = 0 to cliques - 1 do
    let first = c * clique_size in
    add_clique b ~first ~size:clique_size;
    (* Bridge: second vertex of this clique to first vertex of the next. *)
    let next_first = (c + 1) mod cliques * clique_size in
    Build.add_edge b (first + 1) next_first
  done;
  Build.finish b

let barbell ~clique_size ~path_len =
  if clique_size < 3 then invalid_arg "Gen.barbell: clique_size >= 3";
  if path_len < 0 then invalid_arg "Gen.barbell: path_len >= 0";
  let n = (2 * clique_size) + path_len in
  let b = Build.create ~n in
  add_clique b ~first:0 ~size:clique_size;
  add_clique b ~first:(clique_size + path_len) ~size:clique_size;
  (* Path through vertices clique_size .. clique_size + path_len - 1. *)
  let left_port = clique_size - 1 in
  let right_port = clique_size + path_len in
  let prev = ref left_port in
  for v = clique_size to clique_size + path_len - 1 do
    Build.add_edge b !prev v;
    prev := v
  done;
  Build.add_edge b !prev right_port;
  Build.finish b

let lollipop ~clique_size ~path_len =
  if clique_size < 3 then invalid_arg "Gen.lollipop: clique_size >= 3";
  if path_len < 1 then invalid_arg "Gen.lollipop: path_len >= 1";
  let n = clique_size + path_len in
  let b = Build.create ~n in
  add_clique b ~first:0 ~size:clique_size;
  let prev = ref (clique_size - 1) in
  for v = clique_size to n - 1 do
    Build.add_edge b !prev v;
    prev := v
  done;
  Build.finish b

let wheel n =
  if n < 4 then invalid_arg "Gen.wheel: n >= 4 required";
  let b = Build.create ~n in
  let rim = n - 1 in
  for i = 0 to rim - 1 do
    Build.add_edge b (1 + i) (1 + ((i + 1) mod rim));
    Build.add_edge b 0 (1 + i)
  done;
  Build.finish b

(* --- Random regular graphs: configuration model with repair. --------- *)

(* The pairing is stored as two endpoint arrays. Edge multiplicities live
   in a sorted int-array multiset of keys min*n+max (self-loops key
   v*n+v): one machine word per pair instead of a hashtable entry, which
   on a million-vertex 4-regular instance is the difference between tens
   of megabytes and a 16 MB array. "Is this pair bad" and "would this
   swap create a duplicate" are O(log m) binary searches; the few
   inserts/removals during repair shift the tail with [Array.blit]. A
   swap replaces pairs (u1,v1),(u2,v2) by (u1,u2),(v1,v2) or
   (u1,v2),(v1,u2); we commit only when both replacement edges are simple
   and new, so the number of bad pairs strictly decreases and the loop
   terminates (with a bounded-retry restart as a safety net). *)
module Pairing = struct
  type t = {
    n : int;
    e1 : int array;
    e2 : int array;
    keys : int array; (* sorted multiset of the m pair keys *)
    mutable len : int;
  }

  let key t u v = if u <= v then (u * t.n) + v else (v * t.n) + u

  (* First index whose key is [>= k] (lower bound). *)
  let lower_bound t k =
    let lo = ref 0 and hi = ref t.len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Array.unsafe_get t.keys mid < k then lo := mid + 1 else hi := mid
    done;
    !lo

  let count_key t k =
    let i = lower_bound t k in
    let c = ref 0 in
    while i + !c < t.len && Array.unsafe_get t.keys (i + !c) = k do
      incr c
    done;
    !c

  let count t u v = count_key t (key t u v)

  let incr_edge t u v =
    let k = key t u v in
    let i = lower_bound t k in
    Array.blit t.keys i t.keys (i + 1) (t.len - i);
    t.keys.(i) <- k;
    t.len <- t.len + 1

  let decr_edge t u v =
    (* The key is present: repair only removes pairs it has counted. *)
    let i = lower_bound t (key t u v) in
    Array.blit t.keys (i + 1) t.keys i (t.len - i - 1);
    t.len <- t.len - 1

  let of_stubs n stubs =
    let m = Array.length stubs / 2 in
    let e1 = Array.init m (fun i -> stubs.(2 * i)) in
    let e2 = Array.init m (fun i -> stubs.((2 * i) + 1)) in
    (* One slack slot (held at [max_int] so a whole-array sort keeps it
       last) lets [incr_edge] blit without an overflow case. *)
    let keys = Array.make (m + 1) max_int in
    let t = { n; e1; e2; keys; len = m } in
    for i = 0 to m - 1 do
      keys.(i) <- key t e1.(i) e2.(i)
    done;
    Array.sort Int.compare keys;
    t

  let is_bad t i =
    let u = t.e1.(i) and v = t.e2.(i) in
    u = v || count t u v > 1

  (* A candidate replacement edge must not be a loop and must not already
     exist after the two old pairs are conceptually removed. *)
  let fresh t ~removed1 ~removed2 u v =
    u <> v
    &&
    let k = key t u v in
    let existing = count t u v in
    let discount =
      (if key t (fst removed1) (snd removed1) = k then 1 else 0)
      + if key t (fst removed2) (snd removed2) = k then 1 else 0
    in
    existing - discount = 0

  let try_swap t rng i =
    let m = Array.length t.e1 in
    let j = Rng.int rng m in
    if j = i then false
    else begin
      let u1 = t.e1.(i) and v1 = t.e2.(i) in
      let u2 = t.e1.(j) and v2 = t.e2.(j) in
      let removed1 = (u1, v1) and removed2 = (u2, v2) in
      let commit a1 b1 a2 b2 =
        decr_edge t u1 v1;
        decr_edge t u2 v2;
        t.e1.(i) <- a1;
        t.e2.(i) <- b1;
        t.e1.(j) <- a2;
        t.e2.(j) <- b2;
        incr_edge t a1 b1;
        incr_edge t a2 b2;
        true
      in
      let ok a1 b1 a2 b2 =
        fresh t ~removed1 ~removed2 a1 b1
        && fresh t ~removed1 ~removed2 a2 b2
        && key t a1 b1 <> key t a2 b2
      in
      if ok u1 u2 v1 v2 then commit u1 u2 v1 v2
      else if ok u1 v2 v1 u2 then commit u1 v2 v1 u2
      else false
    end
end

let random_cycle rng n =
  (* A uniformly labelled n-cycle: the connected 2-regular graph. *)
  let order = Array.init n (fun i -> i) in
  Prng.Sample.shuffle rng order;
  let b = Build.create ~n in
  for i = 0 to n - 1 do
    Build.add_edge b order.(i) order.((i + 1) mod n)
  done;
  Build.finish b

let random_regular rng ~n ~r =
  if r < 2 || r >= n then invalid_arg "Gen.random_regular: need 2 <= r < n";
  if n * r mod 2 <> 0 then invalid_arg "Gen.random_regular: n * r must be even";
  if r = 2 then random_cycle rng n
  else begin
    let attempt () =
      let stubs = Array.init (n * r) (fun i -> i / r) in
      Prng.Sample.shuffle rng stubs;
      let t = Pairing.of_stubs n stubs in
      let m = Array.length t.Pairing.e1 in
      (* Repair: one ascending sweep over the pairs. A committed swap
         fixes its own pair, fixes or preserves its partner, and can only
         lower other keys' multiplicities — badness never spreads to an
         index already passed — so this sweep visits exactly the indices
         the old rescan-from-zero loop visited, in the same order, and
         performs the identical sequence of [try_swap] draws. Give up
         (None) after too many failed swaps. *)
      let budget = ref (200 * m) in
      let rec fix_from i =
        i >= m
        ||
        if not (Pairing.is_bad t i) then fix_from (i + 1)
        else begin
          let rec attempt_swap () =
            if !budget <= 0 then false
            else begin
              decr budget;
              if Pairing.try_swap t rng i then true else attempt_swap ()
            end
          in
          attempt_swap () && fix_from (i + 1)
        end
      in
      if not (fix_from 0) then None
      else begin
        let g = Csr.of_edge_arrays ~n ~us:t.Pairing.e1 ~vs:t.Pairing.e2 in
        if Algo.is_connected g then Some g else None
      end
    in
    let rec loop tries =
      if tries > 1000 then
        failwith "Gen.random_regular: could not produce a connected simple graph"
      else
        match attempt () with Some g -> g | None -> loop (tries + 1)
    in
    loop 0
  end

let erdos_renyi rng ~n ~p =
  if n < 0 then invalid_arg "Gen.erdos_renyi: n >= 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.erdos_renyi: p outside [0,1]";
  let b = Build.create ~n in
  if p > 0.0 then begin
    (* Batagelj–Brandes skipping over the linearised strict upper
       triangle: jump geometric(p) non-edges between successive edges. *)
    let total = n * (n - 1) / 2 in
    let row_of = Array.make n 0 in
    (* prefix.(u) = number of pairs (u', v) with u' < u. *)
    let prefix = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      prefix.(u + 1) <- prefix.(u) + (n - 1 - u);
      row_of.(u) <- prefix.(u)
    done;
    let decode idx =
      (* Binary search for the row containing linear index idx. *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if prefix.(mid) <= idx then lo := mid else hi := mid - 1
      done;
      let u = !lo in
      (u, u + 1 + (idx - prefix.(u)))
    in
    if p >= 1.0 then
      for idx = 0 to total - 1 do
        let u, v = decode idx in
        Build.add_edge b u v
      done
    else begin
      let idx = ref (Prng.Dist.geometric rng p) in
      while !idx < total do
        let u, v = decode !idx in
        Build.add_edge b u v;
        idx := !idx + 1 + Prng.Dist.geometric rng p
      done
    end
  end;
  Build.finish b

let rewire rng g ~swaps =
  if swaps < 0 then invalid_arg "Gen.rewire: swaps >= 0";
  let n = Csr.n_vertices g in
  let edges = Array.of_list (Csr.edges g) in
  let m = Array.length edges in
  if m >= 2 then begin
    let key u v = if u < v then (u * n) + v else (v * n) + u in
    let present = Hashtbl.create (2 * m) in
    Array.iter (fun (u, v) -> Hashtbl.replace present (key u v) ()) edges;
    for _ = 1 to swaps do
      let i = Rng.int rng m and j = Rng.int rng m in
      if i <> j then begin
        let a, b = edges.(i) and c, d = edges.(j) in
        (* Orient the second edge at random so both pairings are
           reachable. *)
        let c, d = if Rng.bool rng then (c, d) else (d, c) in
        let ok =
          a <> c && a <> d && b <> c && b <> d
          && (not (Hashtbl.mem present (key a c)))
          && not (Hashtbl.mem present (key b d))
        in
        if ok then begin
          Hashtbl.remove present (key a b);
          Hashtbl.remove present (key c d);
          Hashtbl.replace present (key a c) ();
          Hashtbl.replace present (key b d) ();
          edges.(i) <- (min a c, max a c);
          edges.(j) <- (min b d, max b d)
        end
      end
    done
  end;
  Csr.of_edge_arrays ~n ~us:(Array.map fst edges) ~vs:(Array.map snd edges)

let barabasi_albert rng ~n ~m ~prob_unbiased =
  if m < 1 then invalid_arg "Gen.barabasi_albert: m >= 1 required";
  if n < m + 1 then invalid_arg "Gen.barabasi_albert: n >= m + 1 required";
  if prob_unbiased < 0.0 || prob_unbiased > 1.0 then
    invalid_arg "Gen.barabasi_albert: prob_unbiased outside [0, 1]";
  (* The repeated-endpoint array IS both the sampling distribution and
     the edge list: each edge contributes its two endpoints, so a uniform
     element of the filled prefix is a degree-proportional vertex draw,
     and streaming consecutive pairs through [Csr.of_edge_iter] replays
     the exact same edges on both construction passes without a second
     accumulator. Total footprint: one int array of 2m(n - m) + m(m+1)
     words. *)
  let seed = m + 1 in
  let total_edges = (seed * m / 2) + ((n - seed) * m) in
  let ends = Array.make (2 * total_edges) 0 in
  let len = ref 0 in
  let push u v =
    ends.(!len) <- u;
    ends.(!len + 1) <- v;
    len := !len + 2
  in
  (* Seed clique on m + 1 vertices: every early vertex already has
     degree m, so min-degree >= m holds from the start. *)
  for u = 0 to seed - 1 do
    for v = u + 1 to seed - 1 do
      push u v
    done
  done;
  let picks = Array.make m 0 in
  for v = seed to n - 1 do
    (* m distinct targets among 0 .. v-1: with probability
       [prob_unbiased] a uniform existing vertex, otherwise a uniform
       element of the endpoint prefix (degree-proportional). Rejection on
       duplicates terminates a.s. — every existing vertex appears in the
       prefix, and v - 1 >= m choices exist. *)
    let chosen = ref 0 in
    while !chosen < m do
      let t =
        if prob_unbiased > 0.0 && Rng.float rng < prob_unbiased then
          Rng.int rng v
        else ends.(Rng.int rng !len)
      in
      let dup = ref false in
      for i = 0 to !chosen - 1 do
        if picks.(i) = t then dup := true
      done;
      if not !dup then begin
        picks.(!chosen) <- t;
        incr chosen
      end
    done;
    for i = 0 to m - 1 do
      push v picks.(i)
    done
  done;
  Csr.of_edge_iter ~n (fun f ->
      let i = ref 0 in
      while !i < !len do
        f ends.(!i) ends.(!i + 1);
        i := !i + 2
      done)

let gnm rng ~n ~m =
  let total = n * (n - 1) / 2 in
  if m < 0 || m > total then invalid_arg "Gen.gnm: m outside [0, n(n-1)/2]";
  let b = Build.create ~n in
  let added = ref 0 in
  while !added < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Build.mem_edge b u v) then begin
      Build.add_edge b u v;
      incr added
    end
  done;
  Build.finish b
