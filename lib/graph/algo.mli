(** Classical graph algorithms over {!Csr.t}: traversal, connectivity,
    distances, bipartiteness. *)

(** [bfs g src] is the array of BFS distances from [src]; unreachable
    vertices get [-1]. *)
val bfs : Csr.t -> int -> int array

(** [is_connected g] tests connectivity ([true] for the empty and the
    one-vertex graph). *)
val is_connected : Csr.t -> bool

(** [components g] is [(comp, count)]: [comp.(v)] is the id (in
    [0 .. count-1]) of [v]'s connected component. *)
val components : Csr.t -> int array * int

(** [eccentricity g v] is the largest BFS distance from [v]; raises
    [Invalid_argument] if [g] is disconnected. *)
val eccentricity : Csr.t -> int -> int

(** [diameter g] is the exact diameter by all-pairs BFS (O(n·m); intended
    for n up to a few thousand). Raises on disconnected input. *)
val diameter : Csr.t -> int

(** [pseudo_diameter g] is a lower bound on the diameter obtained by a
    double BFS sweep; O(m). Raises on disconnected input. *)
val pseudo_diameter : Csr.t -> int

(** [is_bipartite g] tests 2-colourability. Relevant because the paper's
    theorems require [λ < 1], which excludes bipartite graphs. *)
val is_bipartite : Csr.t -> bool

(** [average_distance g src] is the mean BFS distance from [src] to all
    vertices. Raises on disconnected input. *)
val average_distance : Csr.t -> int -> float
