(** Mutable accumulator for constructing {!Csr.t} graphs edge by edge.

    Generators push undirected edges into a builder and finalise once; the
    builder stores endpoints in growable int vectors, so construction is
    O(m) with no intermediate lists. *)

type t

(** [create ~n] starts an empty graph on [n] vertices. *)
val create : n:int -> t

(** [n_vertices b] is the vertex count fixed at creation. *)
val n_vertices : t -> int

(** [n_edges b] is the number of edges added so far. *)
val n_edges : t -> int

(** [add_edge b u v] records the undirected edge {u, v}. Endpoint range,
    self-loops and duplicates are validated at {!finish} (duplicates cannot
    be caught cheaply during accumulation). *)
val add_edge : t -> int -> int -> unit

(** [mem_edge b u v] tests whether {u, v} was already added. O(1) expected
    (hash lookup); available to generators that must avoid duplicates. *)
val mem_edge : t -> int -> int -> bool

(** [finish b] validates and produces the immutable graph. The builder may
    not be reused afterwards (subsequent operations raise). *)
val finish : t -> Csr.t
