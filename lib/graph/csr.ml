type t = {
  n : int;
  offsets : int array; (* length n + 1; adjacency of v at [offsets.(v), offsets.(v+1)) *)
  adjacency : int array; (* sorted within each vertex's slice *)
}

let n_vertices g = g.n
let n_edges g = Array.length g.adjacency / 2

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Csr: vertex out of range"

let degree g v =
  check_vertex g v;
  g.offsets.(v + 1) - g.offsets.(v)

let nth_neighbour g v i =
  let off = g.offsets.(v) in
  if i < 0 || off + i >= g.offsets.(v + 1) then
    invalid_arg "Csr.nth_neighbour: index out of range";
  g.adjacency.(off + i)

let random_neighbour g rng v =
  let d = degree g v in
  if d = 0 then invalid_arg "Csr.random_neighbour: isolated vertex";
  Array.unsafe_get g.adjacency (g.offsets.(v) + Prng.Rng.int rng d)

let mem_edge g u v =
  check_vertex g u;
  check_vertex g v;
  let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.adjacency.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_neighbours g v ~f =
  check_vertex g v;
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f g.adjacency.(i)
  done

let fold_neighbours g v ~init ~f =
  let acc = ref init in
  iter_neighbours g v ~f:(fun w -> acc := f !acc w);
  !acc

let neighbours g v =
  check_vertex g v;
  Array.sub g.adjacency g.offsets.(v) (g.offsets.(v + 1) - g.offsets.(v))

let iter_edges g ~f =
  for u = 0 to g.n - 1 do
    iter_neighbours g u ~f:(fun v -> if u < v then f u v)
  done

let edges g =
  let acc = ref [] in
  iter_edges g ~f:(fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let regularity g =
  if g.n = 0 then Some 0
  else begin
    let r = degree g 0 in
    let rec go v = v >= g.n || (degree g v = r && go (v + 1)) in
    if go 1 then Some r else None
  end

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let min_degree g =
  if g.n = 0 then 0
  else begin
    let best = ref (degree g 0) in
    for v = 1 to g.n - 1 do
      if degree g v < !best then best := degree g v
    done;
    !best
  end

let degree_counts g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to g.n - 1 do
    let d = degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare

(* Monomorphic comparison loops: polymorphic [=] on the int arrays walks
   the runtime representation word by word through [caml_compare]; on a
   million-edge graph that is the difference between microseconds and
   milliseconds. *)
let int_arrays_equal (a : int array) (b : int array) =
  Array.length a = Array.length b
  &&
  let len = Array.length a in
  let rec go i =
    i >= len || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  go 0

let equal a b =
  a.n = b.n && int_arrays_equal a.offsets b.offsets
  && int_arrays_equal a.adjacency b.adjacency

let unsafe_offsets g = g.offsets
let unsafe_adjacency g = g.adjacency

(* Unchecked accessors for the simulation inner loops (Process.step,
   Bips.step, Rwalk): same results as the checked versions whenever
   [0 <= v < n], undefined behaviour otherwise. *)
let unsafe_degree g v =
  Array.unsafe_get g.offsets (v + 1) - Array.unsafe_get g.offsets v

let unsafe_nth_neighbour g v i =
  Array.unsafe_get g.adjacency (Array.unsafe_get g.offsets v + i)

let unsafe_random_neighbour g rng v =
  let off = Array.unsafe_get g.offsets v in
  let d = Array.unsafe_get g.offsets (v + 1) - off in
  Array.unsafe_get g.adjacency (off + Prng.Rng.int rng d)

let unsafe_iter_neighbours g v ~f =
  let adjacency = g.adjacency in
  for i = Array.unsafe_get g.offsets v to Array.unsafe_get g.offsets (v + 1) - 1 do
    f (Array.unsafe_get adjacency i)
  done

(* In-place sort of [a.(lo) .. a.(hi - 1)]: median-of-three quicksort
   down to short runs, then one insertion-sort finishing pass. Replaces
   the per-vertex [Array.sub]/[Array.sort]/[Array.blit] round trip, whose
   slice copies dominated allocation when building million-vertex
   graphs. *)
let sort_range (a : int array) lo hi =
  let swap i j =
    let tmp = Array.unsafe_get a i in
    Array.unsafe_set a i (Array.unsafe_get a j);
    Array.unsafe_set a j tmp
  in
  let rec qsort lo hi =
    (* Sorts the half-open range [lo, hi). *)
    if hi - lo > 16 then begin
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi - 1) < a.(lo) then swap (hi - 1) lo;
      if a.(hi - 1) < a.(mid) then swap (hi - 1) mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while Array.unsafe_get a !i < pivot do incr i done;
        while Array.unsafe_get a !j > pivot do decr j done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo (!j + 1);
      qsort !i hi
    end
  in
  qsort lo hi;
  for i = lo + 1 to hi - 1 do
    let x = Array.unsafe_get a i in
    let j = ref (i - 1) in
    while !j >= lo && Array.unsafe_get a !j > x do
      Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
      decr j
    done;
    Array.unsafe_set a (!j + 1) x
  done

(* Shared constructor: counting sort of undirected edges into CSR slices
   (each edge contributing two arcs), then per-vertex sort and simplicity
   validation. [iter_given_edges f] must enumerate each undirected edge
   exactly once. *)
let of_edge_iter ~n iter_given_edges =
  if n < 0 then invalid_arg "Csr: negative vertex count";
  let deg = Array.make n 0 in
  let m = ref 0 in
  iter_given_edges (fun u v ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Csr: edge endpoint out of range";
      if u = v then invalid_arg "Csr: self-loop";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      incr m);
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adjacency = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  (* Pass 2 must replay pass 1's census exactly: an iterator that drifts
     between invocations (extra, missing or moved edges) would silently
     scatter arcs into the wrong slices. Every placement is checked
     against the slice the census allotted, and the final sweep catches
     under-filled slices. *)
  let unstable () =
    invalid_arg
      "Csr.of_edge_iter: iterator is not replay-stable (pass 2 disagrees \
       with the pass-1 degree census)"
  in
  let place u v =
    if u < 0 || u >= n || v < 0 || v >= n then unstable ();
    if cursor.(u) >= offsets.(u + 1) then unstable ();
    adjacency.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1
  in
  iter_given_edges (fun u v ->
      place u v;
      place v u);
  for v = 0 to n - 1 do
    if cursor.(v) <> offsets.(v + 1) then unstable ()
  done;
  for v = 0 to n - 1 do
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    sort_range adjacency lo hi;
    for i = lo to hi - 2 do
      if adjacency.(i) = adjacency.(i + 1) then
        invalid_arg "Csr: duplicate edge"
    done
  done;
  { n; offsets; adjacency }

let of_edges ~n edges =
  of_edge_iter ~n (fun f -> List.iter (fun (u, v) -> f u v) edges)

let of_edge_arrays ~n ~us ~vs =
  if Array.length us <> Array.length vs then
    invalid_arg "Csr.of_edge_arrays: length mismatch";
  of_edge_iter ~n (fun f -> Array.iteri (fun i u -> f u vs.(i)) us)

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Csr.relabel: size mismatch";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= g.n || seen.(p) then
        invalid_arg "Csr.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  (* Direct CSR-to-CSR relabel: new vertex [perm.(v)] inherits [v]'s
     degree, its arcs are [perm] applied to [v]'s adjacency, and each
     slice is re-sorted. No intermediate edge list, no simplicity
     re-validation (a permutation of a simple graph is simple). *)
  let offsets = Array.make (g.n + 1) 0 in
  for v = 0 to g.n - 1 do
    offsets.(perm.(v) + 1) <- g.offsets.(v + 1) - g.offsets.(v)
  done;
  for p = 0 to g.n - 1 do
    offsets.(p + 1) <- offsets.(p) + offsets.(p + 1)
  done;
  let adjacency = Array.make (Array.length g.adjacency) 0 in
  for v = 0 to g.n - 1 do
    let dst = ref offsets.(perm.(v)) in
    for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
      adjacency.(!dst) <- perm.(g.adjacency.(i));
      incr dst
    done
  done;
  for p = 0 to g.n - 1 do
    sort_range adjacency offsets.(p) offsets.(p + 1)
  done;
  { n = g.n; offsets; adjacency }

let pp ppf g =
  match regularity g with
  | Some r -> Format.fprintf ppf "graph(n=%d, m=%d, %d-regular)" g.n (n_edges g) r
  | None ->
    Format.fprintf ppf "graph(n=%d, m=%d, deg %d..%d)" g.n (n_edges g)
      (min_degree g) (max_degree g)
