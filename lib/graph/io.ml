let to_edge_list g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Csr.n_vertices g) (Csr.n_edges g));
  Csr.iter_edges g ~f:(fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let parse_error line msg = failwith (Printf.sprintf "edge list, line %d: %s" line msg)

let of_edge_list s =
  let lines = String.split_on_char '\n' s in
  let header = ref None in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ a; b ] -> begin
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some x, Some y ->
            if !header = None then header := Some (x, y)
            else edges := (x, y) :: !edges
          | _ -> parse_error lineno "expected two integers"
        end
        | _ -> parse_error lineno "expected two fields")
    lines;
  match !header with
  | None -> failwith "edge list: missing header line"
  | Some (n, m) ->
    let edges = List.rev !edges in
    if List.length edges <> m then
      failwith
        (Printf.sprintf "edge list: header declares %d edges, found %d" m
           (List.length edges));
    Csr.of_edges ~n edges

let write_edge_list out g = output_string out (to_edge_list g)

let read_edge_list inc =
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf inc 1
     done
   with End_of_file -> ());
  of_edge_list (Buffer.contents buf)

let to_dot ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Csr.n_vertices g - 1 do
    if Csr.degree g v = 0 then Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Csr.iter_edges g ~f:(fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
