(** Plain-text interchange for graphs.

    Edge-list format: first line [n m], then one [u v] pair per line with
    [0 <= u < v < n]. Lines starting with [#] and blank lines are ignored
    on input. *)

(** [to_edge_list g] renders the graph in edge-list format. *)
val to_edge_list : Csr.t -> string

(** [of_edge_list s] parses edge-list format; raises [Failure] with a
    line-numbered message on malformed input. *)
val of_edge_list : string -> Csr.t

(** [write_edge_list out g] writes edge-list format to a channel. *)
val write_edge_list : out_channel -> Csr.t -> unit

(** [read_edge_list inc] reads edge-list format from a channel. *)
val read_edge_list : in_channel -> Csr.t

(** [to_dot ?name g] renders Graphviz [graph] syntax. *)
val to_dot : ?name:string -> Csr.t -> string
