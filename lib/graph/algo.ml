let bfs g src =
  let n = Csr.n_vertices g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Csr.iter_neighbours g u ~f:(fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let is_connected g =
  let n = Csr.n_vertices g in
  n <= 1 || Array.for_all (fun d -> d >= 0) (bfs g 0)

let components g =
  let n = Csr.n_vertices g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for src = 0 to n - 1 do
    if comp.(src) < 0 then begin
      let id = !count in
      incr count;
      comp.(src) <- id;
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Csr.iter_neighbours g u ~f:(fun v ->
            if comp.(v) < 0 then begin
              comp.(v) <- id;
              Queue.add v queue
            end)
      done
    end
  done;
  (comp, !count)

let farthest g v =
  (* (vertex, distance) pair maximising BFS distance from v. *)
  let dist = bfs g v in
  let best = ref v and best_d = ref 0 in
  Array.iteri
    (fun u d ->
      if d < 0 then invalid_arg "Algo: graph is disconnected";
      if d > !best_d then begin
        best := u;
        best_d := d
      end)
    dist;
  (!best, !best_d)

let eccentricity g v = snd (farthest g v)

let diameter g =
  let n = Csr.n_vertices g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    for v = 0 to n - 1 do
      let e = eccentricity g v in
      if e > !best then best := e
    done;
    !best
  end

let pseudo_diameter g =
  if Csr.n_vertices g = 0 then 0
  else begin
    let far, _ = farthest g 0 in
    snd (farthest g far)
  end

let is_bipartite g =
  let n = Csr.n_vertices g in
  let colour = Array.make n (-1) in
  let queue = Queue.create () in
  let ok = ref true in
  for src = 0 to n - 1 do
    if !ok && colour.(src) < 0 then begin
      colour.(src) <- 0;
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Csr.iter_neighbours g u ~f:(fun v ->
            if colour.(v) < 0 then begin
              colour.(v) <- 1 - colour.(u);
              Queue.add v queue
            end
            else if colour.(v) = colour.(u) then ok := false)
      done
    end
  done;
  !ok

let average_distance g src =
  let dist = bfs g src in
  let n = Array.length dist in
  if n = 0 then 0.0
  else begin
    let total = ref 0 in
    Array.iter
      (fun d ->
        if d < 0 then invalid_arg "Algo: graph is disconnected";
        total := !total + d)
      dist;
    Float.of_int !total /. Float.of_int n
  end
