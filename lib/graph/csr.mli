(** Immutable undirected graphs in compressed sparse row form.

    Vertices are [0 .. n_vertices - 1]. Each undirected edge {u, v} is
    stored twice (once per endpoint); adjacency lists are sorted. The
    representation is two int arrays, so a million-edge graph costs a few
    megabytes and neighbour access is one index. This is the only graph
    type in the repository; every process engine and every generator
    produces or consumes it. *)

type t

(** [of_edges ~n edges] builds the graph on [n] vertices with the given
    undirected edges. Raises [Invalid_argument] on out-of-range endpoints,
    self-loops, or duplicate edges (the processes in this repository are
    defined on simple graphs). *)
val of_edges : n:int -> (int * int) list -> t

(** [of_edge_arrays ~n ~us ~vs] is [of_edges] over the edges
    [(us.(i), vs.(i))], avoiding intermediate lists for large graphs. The
    arrays must have equal length. *)
val of_edge_arrays : n:int -> us:int array -> vs:int array -> t

(** [of_edge_iter ~n iter] is the streaming constructor underlying
    {!of_edges} and {!of_edge_arrays}: [iter f] must call [f u v] exactly
    once per undirected edge, and must enumerate the same edges in the
    same order each time it is invoked (it is run twice — once to count
    degrees, once to place arcs). No intermediate edge array is
    materialised, so builders can stream edges straight out of their
    accumulators. Validation is as for {!of_edges}; in addition, an
    iterator that does not replay the pass-1 census exactly (extra,
    missing or moved edges on the second run) raises [Invalid_argument]
    instead of silently producing a corrupt graph. *)
val of_edge_iter : n:int -> ((int -> int -> unit) -> unit) -> t

(** [n_vertices g] is the number of vertices. *)
val n_vertices : t -> int

(** [n_edges g] is the number of undirected edges. *)
val n_edges : t -> int

(** [degree g v] is the number of neighbours of [v]. *)
val degree : t -> int -> int

(** [nth_neighbour g v i] is the [i]-th neighbour of [v] in sorted order,
    [0 <= i < degree g v]. O(1); this is the hot path of every simulator. *)
val nth_neighbour : t -> int -> int -> int

(** [random_neighbour g rng v] draws a uniform neighbour of [v]; raises
    [Invalid_argument] if [v] is isolated. *)
val random_neighbour : t -> Prng.Rng.t -> int -> int

(** [mem_edge g u v] tests adjacency by binary search: O(log degree). *)
val mem_edge : t -> int -> int -> bool

(** [iter_neighbours g v ~f] applies [f] to each neighbour of [v] in sorted
    order. *)
val iter_neighbours : t -> int -> f:(int -> unit) -> unit

(** [fold_neighbours g v ~init ~f] folds over the neighbours of [v]. *)
val fold_neighbours : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [neighbours g v] is a fresh array of [v]'s neighbours. *)
val neighbours : t -> int -> int array

(** [edges g] lists each undirected edge once, as [(u, v)] with [u < v],
    in lexicographic order. *)
val edges : t -> (int * int) list

(** [iter_edges g ~f] applies [f u v] to each undirected edge once,
    with [u < v]. *)
val iter_edges : t -> f:(int -> int -> unit) -> unit

(** [regularity g] is [Some r] if every vertex has degree [r], else
    [None]. A graph with no vertices is [Some 0]. *)
val regularity : t -> int option

(** [max_degree g] and [min_degree g]; both 0 on the empty graph. *)
val max_degree : t -> int

val min_degree : t -> int

(** [degree_counts g] maps degree [d] to the number of vertices of degree
    [d], as a sorted association list. *)
val degree_counts : t -> (int * int) list

(** [equal a b] is structural equality (same vertex count, same edge
    set). *)
val equal : t -> t -> bool

(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. n-1]. Used by tests for invariance properties. *)
val relabel : t -> int array -> t

(** [unsafe_offsets g] and [unsafe_adjacency g] expose the underlying CSR
    arrays for read-only use by performance-critical callers (spectral
    matvec). Mutating them is undefined behaviour. *)
val unsafe_offsets : t -> int array

val unsafe_adjacency : t -> int array

(** {1 Unchecked accessors}

    Bounds-check-free variants of {!degree}, {!nth_neighbour},
    {!random_neighbour} and {!iter_neighbours} for the simulation inner
    loops ([Process.step], [Bips.step], [Rwalk]). They return exactly the
    same results as the checked versions whenever the vertex (and
    neighbour index) is in range; out-of-range arguments are undefined
    behaviour. Callers must have validated [v] on entry — the process
    engines only ever pass frontier members and adjacency entries, which
    are in range by construction. *)

val unsafe_degree : t -> int -> int

val unsafe_nth_neighbour : t -> int -> int -> int

val unsafe_random_neighbour : t -> Prng.Rng.t -> int -> int

val unsafe_iter_neighbours : t -> int -> f:(int -> unit) -> unit

(** [pp] prints a short [n=..., m=..., r=...] summary. *)
val pp : Format.formatter -> t -> unit

(** [sort_range a lo hi] sorts [a.(lo) .. a.(hi - 1)] in place. Exposed
    for the sibling CSR builder ({!Bigcsr}); not part of the graph API. *)
val sort_range : int array -> int -> int -> unit
