(* Off-heap CSR: the same two-array representation as {!Csr}, stored in
   int32 Bigarrays outside the OCaml heap. The GC never scans the edge
   arrays, so a 10^7-vertex instance costs neither major-heap residency
   nor mark-time — the enabler for the large-n scale tier. Arc order is
   identical to {!Csr} (sorted within each vertex's slice), so every
   consumer that enumerates or samples neighbours sees the same sequence
   and draws the same RNG stream on either representation. *)

type arr = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  offsets : arr; (* length n + 1 *)
  adjacency : arr; (* sorted within each vertex's slice *)
}

let max_arcs = Int32.to_int Int32.max_int

let make_arr len : arr = Bigarray.Array1.create Int32 Bigarray.c_layout len

let n_vertices g = g.n

let n_edges g = Bigarray.Array1.dim g.adjacency / 2

(* All vertex ids and arc counts are validated to fit int32 at
   construction, so the unsafe conversions below cannot truncate. *)
let get (a : arr) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)
let set (a : arr) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Bigcsr: vertex out of range"

let unsafe_degree g v = get g.offsets (v + 1) - get g.offsets v

let unsafe_nth_neighbour g v i = get g.adjacency (get g.offsets v + i)

let unsafe_random_neighbour g rng v =
  let off = get g.offsets v in
  let d = get g.offsets (v + 1) - off in
  get g.adjacency (off + Prng.Rng.int rng d)

let unsafe_iter_neighbours g v ~f =
  for i = get g.offsets v to get g.offsets (v + 1) - 1 do
    f (get g.adjacency i)
  done

(* The raw arrays, for consumers that specialise their inner loop per
   representation (the spectral matvec). *)
let unsafe_offsets g = g.offsets
let unsafe_adjacency g = g.adjacency

let degree g v =
  check_vertex g v;
  unsafe_degree g v

let nth_neighbour g v i =
  check_vertex g v;
  if i < 0 || i >= unsafe_degree g v then
    invalid_arg "Bigcsr.nth_neighbour: index out of range";
  unsafe_nth_neighbour g v i

let random_neighbour g rng v =
  check_vertex g v;
  if unsafe_degree g v = 0 then
    invalid_arg "Bigcsr.random_neighbour: isolated vertex";
  unsafe_random_neighbour g rng v

let iter_neighbours g v ~f =
  check_vertex g v;
  unsafe_iter_neighbours g v ~f

let check_capacity ~n ~arcs =
  if n > max_arcs || arcs > max_arcs then
    invalid_arg "Bigcsr: graph exceeds the int32 index range"

let of_csr c =
  let n = Csr.n_vertices c in
  let offs = Csr.unsafe_offsets c in
  let adj = Csr.unsafe_adjacency c in
  let arcs = Array.length adj in
  check_capacity ~n ~arcs;
  let offsets = make_arr (n + 1) in
  let adjacency = make_arr arcs in
  for v = 0 to n do
    set offsets v (Array.unsafe_get offs v)
  done;
  for i = 0 to arcs - 1 do
    set adjacency i (Array.unsafe_get adj i)
  done;
  { n; offsets; adjacency }

let to_csr g =
  let arcs = Bigarray.Array1.dim g.adjacency in
  let us = Array.make (arcs / 2) 0 and vs = Array.make (arcs / 2) 0 in
  let k = ref 0 in
  for u = 0 to g.n - 1 do
    unsafe_iter_neighbours g u ~f:(fun v ->
        if u < v then begin
          us.(!k) <- u;
          vs.(!k) <- v;
          incr k
        end)
  done;
  Csr.of_edge_arrays ~n:g.n ~us ~vs

(* Streaming double-pass construction, mirroring [Csr.of_edge_iter]:
   census, placement (with the same replay-stability checks), per-slice
   sort, simplicity validation. The only heap allocations are the O(n)
   cursor array and a max-degree scratch buffer for sorting. *)
let of_edge_iter ~n iter_given_edges =
  if n < 0 then invalid_arg "Bigcsr: negative vertex count";
  let deg = Array.make n 0 in
  iter_given_edges (fun u v ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Bigcsr: edge endpoint out of range";
      if u = v then invalid_arg "Bigcsr: self-loop";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1);
  let offsets = make_arr (n + 1) in
  set offsets 0 0;
  let max_deg = ref 0 in
  for v = 0 to n - 1 do
    if deg.(v) > !max_deg then max_deg := deg.(v);
    set offsets (v + 1) (get offsets v + deg.(v))
  done;
  let arcs = get offsets n in
  check_capacity ~n ~arcs;
  let adjacency = make_arr arcs in
  let cursor = deg in
  for v = 0 to n - 1 do
    cursor.(v) <- get offsets v
  done;
  let unstable () =
    invalid_arg
      "Bigcsr.of_edge_iter: iterator is not replay-stable (pass 2 \
       disagrees with the pass-1 degree census)"
  in
  let g = { n; offsets; adjacency } in
  let place u v =
    if u < 0 || u >= n || v < 0 || v >= n then unstable ();
    if cursor.(u) >= get offsets (u + 1) then unstable ();
    set adjacency cursor.(u) v;
    cursor.(u) <- cursor.(u) + 1
  in
  iter_given_edges (fun u v ->
      place u v;
      place v u);
  for v = 0 to n - 1 do
    if cursor.(v) <> get offsets (v + 1) then unstable ()
  done;
  let scratch = Array.make (max 1 !max_deg) 0 in
  for v = 0 to n - 1 do
    let lo = get offsets v and hi = get offsets (v + 1) in
    let d = hi - lo in
    for i = 0 to d - 1 do
      scratch.(i) <- get adjacency (lo + i)
    done;
    Csr.sort_range scratch 0 d;
    for i = 0 to d - 2 do
      if scratch.(i) = scratch.(i + 1) then invalid_arg "Bigcsr: duplicate edge"
    done;
    for i = 0 to d - 1 do
      set adjacency (lo + i) scratch.(i)
    done
  done;
  g

let of_edges ~n edges =
  of_edge_iter ~n (fun f -> List.iter (fun (u, v) -> f u v) edges)

(* Direct fill from a per-vertex enumeration that is already sorted and
   simple (the implicit closed-form families): no census pass over edges,
   no sort, no duplicate check. [degree v] and [iter v f] must agree. *)
let of_sorted_arcs ~n ~degree ~iter =
  if n < 0 then invalid_arg "Bigcsr: negative vertex count";
  let offsets = make_arr (n + 1) in
  set offsets 0 0;
  for v = 0 to n - 1 do
    set offsets (v + 1) (get offsets v + degree v)
  done;
  let arcs = get offsets n in
  check_capacity ~n ~arcs;
  let adjacency = make_arr arcs in
  let k = ref 0 in
  for v = 0 to n - 1 do
    iter v (fun w ->
        set adjacency !k w;
        incr k)
  done;
  if !k <> arcs then invalid_arg "Bigcsr.of_sorted_arcs: degree/iter mismatch";
  { n; offsets; adjacency }
