type t = {
  n : int;
  us : Dstruct.Intvec.t;
  vs : Dstruct.Intvec.t;
  seen : (int, unit) Hashtbl.t; (* key: u * n + v with u < v *)
  mutable finished : bool;
}

let create ~n =
  if n < 0 then invalid_arg "Build.create: negative vertex count";
  {
    n;
    us = Dstruct.Intvec.create ();
    vs = Dstruct.Intvec.create ();
    seen = Hashtbl.create 64;
    finished = false;
  }

let check_live b = if b.finished then invalid_arg "Build: already finished"

let n_vertices b = b.n
let n_edges b = Dstruct.Intvec.length b.us

let key b u v = if u < v then (u * b.n) + v else (v * b.n) + u

let add_edge b u v =
  check_live b;
  if u < 0 || u >= b.n || v < 0 || v >= b.n then
    invalid_arg "Build.add_edge: endpoint out of range";
  if u = v then invalid_arg "Build.add_edge: self-loop";
  Hashtbl.replace b.seen (key b u v) ();
  Dstruct.Intvec.push b.us u;
  Dstruct.Intvec.push b.vs v

let mem_edge b u v =
  check_live b;
  Hashtbl.mem b.seen (key b u v)

let finish b =
  check_live b;
  b.finished <- true;
  Csr.of_edge_arrays ~n:b.n
    ~us:(Dstruct.Intvec.to_array b.us)
    ~vs:(Dstruct.Intvec.to_array b.vs)
