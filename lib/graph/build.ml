type t = {
  n : int;
  us : Dstruct.Intvec.t;
  vs : Dstruct.Intvec.t;
  (* Duplicate-lookup table keyed by [u * n + v] with [u < v]. Built
     lazily on the first [mem_edge] call: deterministic generators never
     ask, and on million-vertex instances the table would cost more
     memory than the edges themselves. *)
  mutable seen : (int, unit) Hashtbl.t option;
  mutable finished : bool;
}

let create ~n =
  if n < 0 then invalid_arg "Build.create: negative vertex count";
  {
    n;
    us = Dstruct.Intvec.create ();
    vs = Dstruct.Intvec.create ();
    seen = None;
    finished = false;
  }

let check_live b = if b.finished then invalid_arg "Build: already finished"

let n_vertices b = b.n
let n_edges b = Dstruct.Intvec.length b.us

let key b u v = if u < v then (u * b.n) + v else (v * b.n) + u

let add_edge b u v =
  check_live b;
  if u < 0 || u >= b.n || v < 0 || v >= b.n then
    invalid_arg "Build.add_edge: endpoint out of range";
  if u = v then invalid_arg "Build.add_edge: self-loop";
  (match b.seen with
  | Some tbl -> Hashtbl.replace tbl (key b u v) ()
  | None -> ());
  Dstruct.Intvec.push b.us u;
  Dstruct.Intvec.push b.vs v

let mem_edge b u v =
  check_live b;
  let tbl =
    match b.seen with
    | Some tbl -> tbl
    | None ->
      let m = n_edges b in
      let tbl = Hashtbl.create (2 * m) in
      for i = 0 to m - 1 do
        let u = Dstruct.Intvec.unsafe_get b.us i
        and v = Dstruct.Intvec.unsafe_get b.vs i in
        Hashtbl.replace tbl (key b u v) ()
      done;
      b.seen <- Some tbl;
      tbl
  in
  Hashtbl.mem tbl (key b u v)

let finish b =
  check_live b;
  b.finished <- true;
  b.seen <- None;
  (* Stream the accumulated endpoints straight into the CSR constructor:
     no [to_array] copies of the two edge vectors. *)
  let m = n_edges b in
  Csr.of_edge_iter ~n:b.n (fun f ->
      for i = 0 to m - 1 do
        f (Dstruct.Intvec.unsafe_get b.us i) (Dstruct.Intvec.unsafe_get b.vs i)
      done)
