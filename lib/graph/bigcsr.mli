(** Off-heap CSR on int32 Bigarrays.

    Same representation contract as {!Csr} — vertices [0 .. n-1], each
    undirected edge stored as two arcs, adjacency sorted within each
    vertex's slice — but the row-offset and arc arrays live outside the
    OCaml heap, so the GC neither scans nor moves them. At 4 bytes per
    arc a 10^7-vertex 4-regular instance costs ~160 MB of untracked
    memory and zero mark time, which is what makes the large-n scale
    tier affordable. Neighbour order is identical to {!Csr}, so RNG draw
    sequences match arc for arc across the two representations. *)

type t

(** The storage element type, exposed for consumers that walk the raw
    arrays (the spectral matvec specialises its inner loop on it). *)
type arr = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [of_csr g] copies a heap CSR into off-heap storage. Raises
    [Invalid_argument] if a vertex id or the arc count exceeds the int32
    range. *)
val of_csr : Csr.t -> t

(** [to_csr g] materialises the graph back on the OCaml heap (used by
    consumers that need the dense exact paths). *)
val to_csr : t -> Csr.t

(** [of_edge_iter ~n iter] is the streaming double-pass constructor,
    mirroring {!Csr.of_edge_iter}: [iter f] must call [f u v] exactly
    once per undirected edge and replay the same sequence on both
    passes; a non-replay-stable iterator raises [Invalid_argument].
    Validation (range, self-loops, duplicates) is as for {!Csr}. *)
val of_edge_iter : n:int -> ((int -> int -> unit) -> unit) -> t

(** [of_edges ~n edges] is {!of_edge_iter} over a list. *)
val of_edges : n:int -> (int * int) list -> t

(** [of_sorted_arcs ~n ~degree ~iter] fills the arrays directly from a
    per-vertex enumeration that is already sorted and simple — the
    closed-form families — skipping the census, sort and duplicate
    passes. [degree v] must equal the number of calls [iter v] makes. *)
val of_sorted_arcs :
  n:int -> degree:(int -> int) -> iter:(int -> (int -> unit) -> unit) -> t

val n_vertices : t -> int
val n_edges : t -> int
val degree : t -> int -> int
val nth_neighbour : t -> int -> int -> int
val random_neighbour : t -> Prng.Rng.t -> int -> int
val iter_neighbours : t -> int -> f:(int -> unit) -> unit

(** Unchecked variants, as in {!Csr}: same results for in-range
    arguments, undefined behaviour otherwise. *)

val unsafe_degree : t -> int -> int

(** The row-offset array (length [n+1]) and arc array, raw. Read-only by
    convention. *)
val unsafe_offsets : t -> arr

val unsafe_adjacency : t -> arr

val unsafe_nth_neighbour : t -> int -> int -> int
val unsafe_random_neighbour : t -> Prng.Rng.t -> int -> int
val unsafe_iter_neighbours : t -> int -> f:(int -> unit) -> unit
