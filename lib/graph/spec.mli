(** Textual graph descriptions, the CLI's [--graph] argument.

    Grammar (sizes are positive integers):
    - ["complete:N"], ["cycle:N"], ["path:N"], ["star:N"], ["wheel:N"]
    - ["hypercube:D"], ["folded-hypercube:D"], ["binary-tree:D"]
    - ["petersen"]
    - ["torus:AxB"], ["torus:AxBxC"], ["grid:AxB..."]
    - ["circulant:N:o1+o2+..."]
    - ["complete-bipartite:AxB"]
    - ["ring-of-cliques:CxS"], ["barbell:SxP"], ["lollipop:SxP"]
    - ["random-regular:NxR"], ["er:N:P"], ["gnm:NxM"],
      ["ba:N,M"], ["ba:N,M,P"] (randomised — they consume the provided
      stream; [ba] also accepts the comma-free spelling ["ba:NxM[xP]"]
      for contexts that split lists on commas, e.g. inline sweep
      grids) *)

type t

(** [parse s] validates the description without building the graph. *)
val parse : string -> (t, string) result

(** [is_random spec] — whether building consumes randomness. *)
val is_random : t -> bool

(** [build spec rng] constructs the graph ([rng] is unused for
    deterministic families). Generator preconditions (e.g. [n*r] even)
    surface as [Error _]. *)
val build : t -> Prng.Rng.t -> (Csr.t, string) result

(** [implicit spec] is the closed-form {!Implicit} graph for the
    families that have one (complete, cycle, path, hypercube,
    folded-hypercube, torus, grid, circulant); [Error _] for the rest. *)
val implicit : t -> (Implicit.t, string) result

(** [build_view spec ~backend rng] builds the graph behind the requested
    topology backend:
    - [`Heap]: {!build}, wrapped.
    - [`Bigarray]: closed-form families stream straight into the
      off-heap arrays without heap materialisation (a d=24 hypercube
      never allocates its 4*10^8 arcs on the heap); other families build
      the heap CSR first and copy out.
    - [`Implicit]: closed-form families only; everything else errors.

    All three produce views with bit-identical RNG draw behaviour for
    the same topology. *)
val build_view :
  t -> backend:View.backend -> Prng.Rng.t -> (View.t, string) result

(** [to_string spec] re-renders the canonical description. *)
val to_string : t -> string

(** [syntax_help] is a short usage text listing the grammar. Derived
    from the same family registry as {!parse}, so the menu cannot omit a
    parseable family. *)
val syntax_help : string

(** [families] lists the family head tokens (["complete"], ["ba"], ...)
    in menu order — one entry per registry row, exactly the set of heads
    {!parse} accepts. *)
val families : string list
