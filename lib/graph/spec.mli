(** Textual graph descriptions, the CLI's [--graph] argument.

    Grammar (sizes are positive integers):
    - ["complete:N"], ["cycle:N"], ["path:N"], ["star:N"], ["wheel:N"]
    - ["hypercube:D"], ["folded-hypercube:D"], ["binary-tree:D"]
    - ["petersen"]
    - ["torus:AxB"], ["torus:AxBxC"], ["grid:AxB..."]
    - ["circulant:N:o1+o2+..."]
    - ["complete-bipartite:AxB"]
    - ["ring-of-cliques:CxS"], ["barbell:SxP"], ["lollipop:SxP"]
    - ["random-regular:NxR"], ["er:N:P"], ["gnm:NxM"] (randomised — they
      consume the provided stream) *)

type t

(** [parse s] validates the description without building the graph. *)
val parse : string -> (t, string) result

(** [is_random spec] — whether building consumes randomness. *)
val is_random : t -> bool

(** [build spec rng] constructs the graph ([rng] is unused for
    deterministic families). Generator preconditions (e.g. [n*r] even)
    surface as [Error _]. *)
val build : t -> Prng.Rng.t -> (Csr.t, string) result

(** [to_string spec] re-renders the canonical description. *)
val to_string : t -> string

(** [syntax_help] is a short usage text listing the grammar. *)
val syntax_help : string
