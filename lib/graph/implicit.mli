(** Implicit graphs for the closed-form families: [nth_neighbour] is
    arithmetic and no adjacency is ever stored, so memory is O(1) in the
    edge count. Neighbour enumeration order is pinned to the sorted
    order the materialised {!Csr} slice would hold — this is what keeps
    RNG draw sequences bit-identical across backends, and the
    cross-backend suite in test/graph checks it family by family.

    Constructors validate exactly as the matching [Gen] builders, except
    the hypercubes: their materialised d <= 20 cap exists only to bound
    heap size and is lifted to d <= 30 here. *)

type t

val complete : int -> t
val cycle : int -> t
val path : int -> t
val hypercube : int -> t
val folded_hypercube : int -> t
val torus : int array -> t
val grid : int array -> t
val circulant : int -> int list -> t

val n_vertices : t -> int
val n_edges : t -> int

(** [degree t v] for [0 <= v < n_vertices t]; out-of-range vertices are
    undefined behaviour (the {!View} layer performs the range checks). *)
val degree : t -> int -> int

(** [nth t v i] is the [i]-th neighbour of [v] in sorted order,
    [0 <= i < degree t v]; O(degree) worst case, O(1) for the families
    with a direct formula. *)
val nth : t -> int -> int -> int

(** [iter t v ~f] applies [f] to [v]'s neighbours in ascending order. *)
val iter : t -> int -> f:(int -> unit) -> unit

val min_degree : t -> int
val max_degree : t -> int
val regularity : t -> int option
