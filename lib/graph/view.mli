(** The pluggable topology layer: one read-only value every process
    engine, kernel, lane stepper and spectral operator consumes, backed
    by any of three representations:

    - the heap {!Csr} (wrapped — the historical default),
    - the off-heap int32 {!Bigcsr} (GC-invisible edge arrays),
    - an {!Implicit} closed-form family (no stored adjacency at all).

    Two contracts hold on every backend. {b Order}: each vertex's
    neighbours enumerate in ascending order, matching the sorted CSR
    slice. {b Draws}: {!unsafe_random_neighbour} consumes exactly one
    [Prng.Rng.int rng degree] draw. Together these make simulation RNG
    streams bit-identical across backends — the property the golden
    tests and campaign checkpoints rely on.

    Views are immutable and safe to share across domains; accessors
    perform no allocation and no mutation. Degree statistics
    ({!max_degree}, {!min_degree}, {!regularity}) are computed once at
    construction. *)

type t

(** The underlying representation, exposed so performance-critical
    consumers (the spectral matvec) can specialise their inner loop per
    backend after a single dispatch. *)
type repr = Heap of Csr.t | Big of Bigcsr.t | Implicit of Implicit.t

(** Backend selector for construction sites (CLI flags, sweep grids). *)
type backend = [ `Heap | `Bigarray | `Implicit ]

val backend_of_string : string -> (backend, string) result
val backend_to_string : backend -> string

val of_csr : Csr.t -> t
val of_bigcsr : Bigcsr.t -> t
val of_implicit : Implicit.t -> t

val repr : t -> repr

(** [backend t] names the representation actually backing [t]. *)
val backend : t -> backend

(** [to_csr t] materialises the graph on the OCaml heap: free for the
    heap backend, a copy for the others. The dense exact paths
    ([Cobra.Exact], graph I/O) use it. *)
val to_csr : t -> Csr.t

val n_vertices : t -> int
val n_edges : t -> int
val degree : t -> int -> int
val nth_neighbour : t -> int -> int -> int
val random_neighbour : t -> Prng.Rng.t -> int -> int
val iter_neighbours : t -> int -> f:(int -> unit) -> unit
val fold_neighbours : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
val neighbours : t -> int -> int array
val mem_edge : t -> int -> int -> bool

(** [iter_edges t ~f] applies [f u v] to each undirected edge once, with
    [u < v], in lexicographic order. *)
val iter_edges : t -> f:(int -> int -> unit) -> unit

val regularity : t -> int option
val max_degree : t -> int
val min_degree : t -> int

(** [bfs t src] is the array of BFS distances from [src]; unreachable
    vertices get [-1]. [Algo.bfs] over a view. *)
val bfs : t -> int -> int array

(** {1 Unchecked accessors}

    As {!Csr}'s: identical results for in-range arguments, undefined
    behaviour otherwise. These are the simulation inner loops. *)

val unsafe_degree : t -> int -> int

val unsafe_nth_neighbour : t -> int -> int -> int
val unsafe_random_neighbour : t -> Prng.Rng.t -> int -> int
val unsafe_iter_neighbours : t -> int -> f:(int -> unit) -> unit

(** [pp] prints the same [graph(n=..., m=..., ...)] summary as
    [Csr.pp], independent of backend. *)
val pp : Format.formatter -> t -> unit
