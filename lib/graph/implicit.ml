(* Closed-form graph families where the i-th neighbour of a vertex is
   arithmetic: no adjacency is ever stored, so a d=24 hypercube (1.6e7
   vertices, 2e8 edges) costs a few words of memory. The one contract
   that matters is neighbour ORDER: [nth t v i] enumerates exactly the
   sorted adjacency slice the materialised {!Csr} would hold, so a
   simulation's [Prng.Rng.int rng degree] draw selects the same vertex
   on either backend and RNG streams stay bit-identical. The
   cross-backend equivalence suite in test/graph pins this for every
   family. *)

type t =
  | Complete of int
  | Cycle of int
  | Path of int
  | Hypercube of int
  | Folded_hypercube of int
  | Lattice of { dims : int array; stride : int array; wrap : bool; n : int }
  | Circulant of { n : int; offsets : int array }

(* Validation mirrors [Gen]'s so a family rejects the same inputs under
   every backend — except the hypercubes, whose materialised cap (d <=
   20) exists only to bound heap size and is lifted to d <= 30 here. *)

let complete n =
  if n < 1 then invalid_arg "Gen.complete: n >= 1 required";
  Complete n

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: n >= 3 required";
  Cycle n

let path n =
  if n < 1 then invalid_arg "Gen.path: n >= 1 required";
  Path n

let hypercube d =
  if d < 0 || d > 30 then invalid_arg "Implicit.hypercube: 0 <= d <= 30";
  Hypercube d

let folded_hypercube d =
  if d < 2 || d > 30 then invalid_arg "Implicit.folded_hypercube: 2 <= d <= 30";
  Folded_hypercube d

let lattice ~wrap dims =
  Array.iter
    (fun d -> if d < 1 then invalid_arg "Gen.lattice: sides must be >= 1")
    dims;
  let n = Array.fold_left ( * ) 1 dims in
  let k = Array.length dims in
  let stride = Array.make k 1 in
  for i = k - 2 downto 0 do
    stride.(i) <- stride.(i + 1) * dims.(i + 1)
  done;
  Lattice { dims = Array.copy dims; stride; wrap; n }

let torus dims = lattice ~wrap:true dims
let grid dims = lattice ~wrap:false dims

let circulant n offsets =
  if n < 3 then invalid_arg "Gen.circulant: n >= 3 required";
  let sorted = List.sort_uniq compare offsets in
  if List.length sorted <> List.length offsets then
    invalid_arg "Gen.circulant: duplicate offsets";
  List.iter
    (fun o ->
      if o < 1 || o > n / 2 then
        invalid_arg "Gen.circulant: offsets must lie in 1 .. n/2")
    sorted;
  Circulant { n; offsets = Array.of_list sorted }

let n_vertices = function
  | Complete n | Cycle n | Path n -> n
  | Hypercube d -> 1 lsl d
  | Folded_hypercube d -> 1 lsl d
  | Lattice { n; _ } -> n
  | Circulant { n; _ } -> n

let n_edges = function
  | Complete n -> n * (n - 1) / 2
  | Cycle n -> n
  | Path n -> n - 1
  | Hypercube d -> (1 lsl d) * d / 2
  | Folded_hypercube d -> (1 lsl d) * (d + 1) / 2
  | Lattice { dims; wrap; n; _ } ->
    Array.fold_left
      (fun acc side ->
        if side = 1 then acc
        else begin
          let lines = n / side in
          let per_line = side - 1 + if wrap && side > 2 then 1 else 0 in
          acc + (lines * per_line)
        end)
      0 dims
  | Circulant { n; offsets } ->
    Array.fold_left (fun acc o -> acc + if 2 * o = n then n / 2 else n) 0 offsets

(* Per-axis degree contribution of a lattice coordinate. *)
let axis_degree ~wrap ~side c =
  if side = 1 then 0
  else if side = 2 then 1
  else if wrap then 2
  else (if c > 0 then 1 else 0) + if c + 1 < side then 1 else 0

let degree t v =
  match t with
  | Complete n -> n - 1
  | Cycle _ -> 2
  | Path n -> if n = 1 then 0 else if v = 0 || v = n - 1 then 1 else 2
  | Hypercube d -> d
  | Folded_hypercube d -> d + 1
  | Lattice { dims; stride; wrap; _ } ->
    let acc = ref 0 in
    for i = 0 to Array.length dims - 1 do
      let side = dims.(i) in
      let c = v / stride.(i) mod side in
      acc := !acc + axis_degree ~wrap ~side c
    done;
    !acc
  | Circulant { n; offsets } ->
    Array.fold_left (fun acc o -> acc + if 2 * o = n then 1 else 2) 0 offsets

let min_degree t =
  match t with
  | Complete n -> n - 1
  | Cycle _ -> 2
  | Path n -> if n = 1 then 0 else 1
  | Hypercube d -> d
  | Folded_hypercube d -> d + 1
  | Lattice { dims; wrap; _ } ->
    (* Vertex 0 sits at the low corner of every axis simultaneously. *)
    Array.fold_left (fun acc side -> acc + axis_degree ~wrap ~side 0) 0 dims
  | Circulant _ as c -> degree c 0

let max_degree t =
  match t with
  | Complete n -> n - 1
  | Cycle _ -> 2
  | Path n -> if n = 1 then 0 else if n = 2 then 1 else 2
  | Hypercube d -> d
  | Folded_hypercube d -> d + 1
  | Lattice { dims; wrap; _ } ->
    (* An interior coordinate (c = 1 on a side >= 3) maximises every
       axis; sides < 3 contribute the same on every coordinate. *)
    Array.fold_left
      (fun acc side -> acc + axis_degree ~wrap ~side (if side >= 3 then 1 else 0))
      0 dims
  | Circulant _ as c -> degree c 0

let regularity t =
  let lo = min_degree t and hi = max_degree t in
  if lo = hi then Some lo else None

(* ------------------------------------------------------------------ *)
(* Sorted neighbour enumeration                                        *)

(* Hypercube neighbours of [v] in ascending order: clearing a set bit
   yields a smaller value (the higher the bit, the smaller the result),
   setting a clear bit a larger one (the lower the bit, the smaller the
   result). So: set bits from high to low, then clear bits from low to
   high. *)
let iter_hypercube d v f =
  for b = d - 1 downto 0 do
    if (v lsr b) land 1 = 1 then f (v lxor (1 lsl b))
  done;
  for b = 0 to d - 1 do
    if (v lsr b) land 1 = 0 then f (v lor (1 lsl b))
  done

let popcount x =
  let x = x - ((x lsr 1) land 0x5555_5555) in
  let x = (x land 0x3333_3333) + ((x lsr 2) land 0x3333_3333) in
  let x = (x + (x lsr 4)) land 0x0F0F_0F0F in
  (x * 0x0101_0101) lsr 24 land 0x3F

(* Bit position of the (k+1)-th set bit of [v] scanning down from
   [b]; total number of set bits below [b]+1 must exceed [k]. *)
let rec kth_set_below v b k =
  if (v lsr b) land 1 = 1 then
    if k = 0 then b else kth_set_below v (b - 1) (k - 1)
  else kth_set_below v (b - 1) k

(* Bit position of the (k+1)-th clear bit of [v] scanning up from [b]. *)
let rec kth_clear_above v b k =
  if (v lsr b) land 1 = 0 then
    if k = 0 then b else kth_clear_above v (b + 1) (k - 1)
  else kth_clear_above v (b + 1) k

let nth_hypercube d v i =
  let s = popcount v in
  if i < s then v lxor (1 lsl kth_set_below v (d - 1) i)
  else v lor (1 lsl kth_clear_above v 0 (i - s))

(* Rank of the complement neighbour among the folded hypercube's sorted
   slice: how many dimension-flip neighbours precede it. *)
let folded_rank d v =
  let y = v lxor ((1 lsl d) - 1) in
  let r = ref 0 in
  for b = 0 to d - 1 do
    if v lxor (1 lsl b) < y then incr r
  done;
  !r

(* Candidate enumeration (unordered) for the families whose neighbours
   are not monotone in any single scan: each candidate is distinct, so
   an ascending pass just repeatedly selects the least candidate above
   the previous one. Degrees are O(dims), so the quadratic selection is
   a handful of operations. *)
let iter_candidates t v f =
  match t with
  | Lattice { dims; stride; wrap; _ } ->
    for i = 0 to Array.length dims - 1 do
      let side = dims.(i) and st = stride.(i) in
      if side = 2 then begin
        let c = v / st mod side in
        f (if c = 0 then v + st else v - st)
      end
      else if side > 2 then begin
        let c = v / st mod side in
        if c > 0 then f (v - st) else if wrap then f (v + ((side - 1) * st));
        if c + 1 < side then f (v + st)
        else if wrap then f (v - ((side - 1) * st))
      end
    done
  | Circulant { n; offsets } ->
    Array.iter
      (fun o ->
        f ((v + o) mod n);
        if 2 * o <> n then f ((v - o + n) mod n))
      offsets
  | Complete _ | Cycle _ | Path _ | Hypercube _ | Folded_hypercube _ ->
    invalid_arg "Implicit.iter_candidates: family has a direct enumeration"

let select_nth t v i =
  let prev = ref (-1) in
  let best = ref max_int in
  for _ = 0 to i do
    best := max_int;
    iter_candidates t v (fun w -> if w > !prev && w < !best then best := w);
    prev := !best
  done;
  !best

let nth t v i =
  match t with
  | Complete _ -> if i < v then i else i + 1
  | Cycle n ->
    if v = 0 then if i = 0 then 1 else n - 1
    else if v = n - 1 then if i = 0 then 0 else n - 2
    else if i = 0 then v - 1
    else v + 1
  | Path n ->
    if v = 0 then 1
    else if v = n - 1 then n - 2
    else if i = 0 then v - 1
    else v + 1
  | Hypercube d -> nth_hypercube d v i
  | Folded_hypercube d ->
    let r = folded_rank d v in
    if i < r then nth_hypercube d v i
    else if i = r then v lxor ((1 lsl d) - 1)
    else nth_hypercube d v (i - 1)
  | Lattice _ | Circulant _ -> select_nth t v i

let iter t v ~f =
  match t with
  | Complete n ->
    for w = 0 to v - 1 do
      f w
    done;
    for w = v + 1 to n - 1 do
      f w
    done
  | Cycle n ->
    if v = 0 then begin
      f 1;
      f (n - 1)
    end
    else if v = n - 1 then begin
      f 0;
      f (n - 2)
    end
    else begin
      f (v - 1);
      f (v + 1)
    end
  | Path n ->
    if n = 1 then ()
    else if v = 0 then f 1
    else if v = n - 1 then f (n - 2)
    else begin
      f (v - 1);
      f (v + 1)
    end
  | Hypercube d -> iter_hypercube d v f
  | Folded_hypercube d ->
    let y = v lxor ((1 lsl d) - 1) in
    let emitted = ref false in
    iter_hypercube d v (fun w ->
        if (not !emitted) && y < w then begin
          f y;
          emitted := true
        end;
        f w);
    if not !emitted then f y
  | Lattice _ | Circulant _ ->
    let deg = degree t v in
    let prev = ref (-1) in
    for _ = 1 to deg do
      let best = ref max_int in
      iter_candidates t v (fun w -> if w > !prev && w < !best then best := w);
      f !best;
      prev := !best
    done
