(* The topology abstraction every process engine consumes: one value
   that answers degree / nth-neighbour / iteration queries over any of
   three representations. Accessors dispatch on the representation with
   a single match — no closure indirection — so the heap-CSR path
   compiles to the same loads the engines performed when they took
   [Csr.t] directly, and golden streams are preserved bit for bit.

   The neighbour-order contract is global: every backend enumerates each
   vertex's neighbours in ascending order, so [unsafe_random_neighbour]
   (one [Prng.Rng.int rng degree] draw, then an order-[i] lookup)
   selects the same vertex on every backend and RNG streams are
   backend-independent. Degree statistics are computed once at view
   construction (closed-form for implicit families, one O(n) sweep for
   the CSRs) so hot paths never rescan. *)

type repr = Heap of Csr.t | Big of Bigcsr.t | Implicit of Implicit.t

type t = {
  repr : repr;
  n : int;
  m : int;
  min_deg : int;
  max_deg : int;
}

type backend = [ `Heap | `Bigarray | `Implicit ]

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "heap" -> Ok `Heap
  | "bigarray" -> Ok `Bigarray
  | "implicit" -> Ok `Implicit
  | s ->
    Error
      (Printf.sprintf "unknown backend %S (available: heap, bigarray, implicit)" s)

let backend_to_string = function
  | `Heap -> "heap"
  | `Bigarray -> "bigarray"
  | `Implicit -> "implicit"

let repr t = t.repr

let backend t : backend =
  match t.repr with Heap _ -> `Heap | Big _ -> `Bigarray | Implicit _ -> `Implicit

let of_csr g =
  let n = Csr.n_vertices g in
  { repr = Heap g; n; m = Csr.n_edges g;
    min_deg = Csr.min_degree g; max_deg = Csr.max_degree g }

let of_bigcsr g =
  let n = Bigcsr.n_vertices g in
  let min_deg = ref (if n = 0 then 0 else max_int) and max_deg = ref 0 in
  for v = 0 to n - 1 do
    let d = Bigcsr.unsafe_degree g v in
    if d < !min_deg then min_deg := d;
    if d > !max_deg then max_deg := d
  done;
  { repr = Big g; n; m = Bigcsr.n_edges g; min_deg = !min_deg; max_deg = !max_deg }

let of_implicit g =
  {
    repr = Implicit g;
    n = Implicit.n_vertices g;
    m = Implicit.n_edges g;
    min_deg = Implicit.min_degree g;
    max_deg = Implicit.max_degree g;
  }

let n_vertices t = t.n
let n_edges t = t.m
let max_degree t = t.max_deg
let min_degree t = t.min_deg

let regularity t =
  if t.n = 0 then Some 0
  else if t.min_deg = t.max_deg then Some t.min_deg
  else None

(* ---------- unchecked accessors (simulation inner loops) ---------- *)

let unsafe_degree t v =
  match t.repr with
  | Heap g -> Csr.unsafe_degree g v
  | Big g -> Bigcsr.unsafe_degree g v
  | Implicit g -> Implicit.degree g v

let unsafe_nth_neighbour t v i =
  match t.repr with
  | Heap g -> Csr.unsafe_nth_neighbour g v i
  | Big g -> Bigcsr.unsafe_nth_neighbour g v i
  | Implicit g -> Implicit.nth g v i

let unsafe_random_neighbour t rng v =
  match t.repr with
  | Heap g -> Csr.unsafe_random_neighbour g rng v
  | Big g -> Bigcsr.unsafe_random_neighbour g rng v
  | Implicit g ->
    (* Same single draw as the CSR paths; ascending order makes the
       selected vertex identical. *)
    Implicit.nth g v (Prng.Rng.int rng (Implicit.degree g v))

let unsafe_iter_neighbours t v ~f =
  match t.repr with
  | Heap g -> Csr.unsafe_iter_neighbours g v ~f
  | Big g -> Bigcsr.unsafe_iter_neighbours g v ~f
  | Implicit g -> Implicit.iter g v ~f

(* ---------- checked accessors ---------- *)

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "View: vertex out of range"

let degree t v =
  check_vertex t v;
  unsafe_degree t v

let nth_neighbour t v i =
  check_vertex t v;
  if i < 0 || i >= unsafe_degree t v then
    invalid_arg "View.nth_neighbour: index out of range";
  unsafe_nth_neighbour t v i

let random_neighbour t rng v =
  check_vertex t v;
  if unsafe_degree t v = 0 then invalid_arg "View.random_neighbour: isolated vertex";
  unsafe_random_neighbour t rng v

let iter_neighbours t v ~f =
  check_vertex t v;
  unsafe_iter_neighbours t v ~f

let fold_neighbours t v ~init ~f =
  let acc = ref init in
  iter_neighbours t v ~f:(fun w -> acc := f !acc w);
  !acc

let neighbours t v =
  check_vertex t v;
  let d = unsafe_degree t v in
  Array.init d (fun i -> unsafe_nth_neighbour t v i)

let mem_edge t u v =
  check_vertex t u;
  check_vertex t v;
  (* Binary search over the sorted slice; O(log degree) on every
     backend ([nth] is O(degree) worst case for implicit families, but
     their degrees are small or their nth is O(1)). *)
  let lo = ref 0 and hi = ref (unsafe_degree t u - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = unsafe_nth_neighbour t u mid in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_edges t ~f =
  for u = 0 to t.n - 1 do
    unsafe_iter_neighbours t u ~f:(fun v -> if u < v then f u v)
  done

(* ---------- conversion ---------- *)

let to_csr t =
  match t.repr with
  | Heap g -> g
  | Big g -> Bigcsr.to_csr g
  | Implicit g ->
    let n = Implicit.n_vertices g in
    Csr.of_edge_iter ~n (fun f ->
        for u = 0 to n - 1 do
          Implicit.iter g u ~f:(fun v -> if u < v then f u v)
        done)

(* ---------- traversal ---------- *)

(* BFS distances, as [Algo.bfs] but over a view (the flood baseline and
   connectivity checks need it on every backend). *)
let bfs t src =
  check_vertex t src;
  let dist = Array.make t.n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    unsafe_iter_neighbours t u ~f:(fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

(* ---------- printing ---------- *)

(* Same rendering as [Csr.pp] on every backend, so transcripts do not
   depend on the representation. *)
let pp ppf t =
  match regularity t with
  | Some r -> Format.fprintf ppf "graph(n=%d, m=%d, %d-regular)" t.n t.m r
  | None ->
    Format.fprintf ppf "graph(n=%d, m=%d, deg %d..%d)" t.n t.m t.min_deg t.max_deg
