type t =
  | Complete of int
  | Cycle of int
  | Path of int
  | Star of int
  | Wheel of int
  | Hypercube of int
  | Folded_hypercube of int
  | Binary_tree of int
  | Petersen
  | Torus of int array
  | Grid of int array
  | Circulant of int * int list
  | Complete_bipartite of int * int
  | Ring_of_cliques of int * int
  | Barbell of int * int
  | Lollipop of int * int
  | Random_regular of int * int
  | Erdos_renyi of int * float
  | Gnm of int * int
  | Ba of int * int * float

let ( let* ) = Result.bind

let int_field name s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> Ok v
  | _ -> Error (Printf.sprintf "%s: expected a non-negative integer, got %S" name s)

let float_field name s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" name s)

let dims_of name s =
  let parts = String.split_on_char 'x' s in
  if parts = [] then Error (name ^ ": empty dimension list")
  else begin
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest ->
        let* v = int_field name p in
        go (v :: acc) rest
    in
    go [] parts
  end

let pair_of name s =
  let* dims = dims_of name s in
  if Array.length dims = 2 then Ok (dims.(0), dims.(1))
  else Error (Printf.sprintf "%s: expected AxB, got %S" name s)

let offsets_of s =
  let parts = String.split_on_char '+' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      let* v = int_field "circulant offset" p in
      go (v :: acc) rest
  in
  go [] parts

(* The single source of truth for the family menu: each entry owns its
   head token, the syntax shown in error messages and --help, and the
   parser for everything after the first ':'. [parse_rest] returns
   [None] on an arity mismatch (wrong number of ':' fields), which falls
   through to the generic cannot-parse error; adding a family here is
   the whole job — the menu, the parser and the [families] list cannot
   drift apart. *)
type entry = {
  family : string;
  syntax : string;
  parse_rest : string list -> (t, string) result option;
}

(* [ba] accepts both "ba:N,M[,P]" (canonical) and "ba:NxM[xP]" — inline
   sweep grids split graph lists on commas, so the x-spelling keeps BA
   addressable there. *)
let ba_fields s =
  let parts =
    if String.contains s ',' then String.split_on_char ',' s
    else String.split_on_char 'x' s
  in
  match parts with
  | [ n; m ] ->
    Some
      (let* n = int_field "ba" n in
       let* m = int_field "ba" m in
       Ok (Ba (n, m, 0.0)))
  | [ n; m; p ] ->
    Some
      (let* n = int_field "ba" n in
       let* m = int_field "ba" m in
       let* p = float_field "ba" p in
       Ok (Ba (n, m, p)))
  | _ -> None

let registry =
  [
    {
      family = "complete";
      syntax = "complete:N";
      parse_rest =
        (function
        | [ n ] ->
          Some
            (let* n = int_field "complete" n in
             Ok (Complete n))
        | _ -> None);
    };
    {
      family = "cycle";
      syntax = "cycle:N";
      parse_rest =
        (function
        | [ n ] ->
          Some
            (let* n = int_field "cycle" n in
             Ok (Cycle n))
        | _ -> None);
    };
    {
      family = "path";
      syntax = "path:N";
      parse_rest =
        (function
        | [ n ] ->
          Some
            (let* n = int_field "path" n in
             Ok (Path n))
        | _ -> None);
    };
    {
      family = "star";
      syntax = "star:N";
      parse_rest =
        (function
        | [ n ] ->
          Some
            (let* n = int_field "star" n in
             Ok (Star n))
        | _ -> None);
    };
    {
      family = "wheel";
      syntax = "wheel:N";
      parse_rest =
        (function
        | [ n ] ->
          Some
            (let* n = int_field "wheel" n in
             Ok (Wheel n))
        | _ -> None);
    };
    {
      family = "hypercube";
      syntax = "hypercube:D";
      parse_rest =
        (function
        | [ d ] ->
          Some
            (let* d = int_field "hypercube" d in
             Ok (Hypercube d))
        | _ -> None);
    };
    {
      family = "folded-hypercube";
      syntax = "folded-hypercube:D";
      parse_rest =
        (function
        | [ d ] ->
          Some
            (let* d = int_field "folded-hypercube" d in
             Ok (Folded_hypercube d))
        | _ -> None);
    };
    {
      family = "binary-tree";
      syntax = "binary-tree:D";
      parse_rest =
        (function
        | [ d ] ->
          Some
            (let* d = int_field "binary-tree" d in
             Ok (Binary_tree d))
        | _ -> None);
    };
    {
      family = "petersen";
      syntax = "petersen";
      parse_rest = (function [] -> Some (Ok Petersen) | _ -> None);
    };
    {
      family = "torus";
      syntax = "torus:AxB[xC..]";
      parse_rest =
        (function
        | [ dims ] ->
          Some
            (let* dims = dims_of "torus" dims in
             Ok (Torus dims))
        | _ -> None);
    };
    {
      family = "grid";
      syntax = "grid:AxB[xC..]";
      parse_rest =
        (function
        | [ dims ] ->
          Some
            (let* dims = dims_of "grid" dims in
             Ok (Grid dims))
        | _ -> None);
    };
    {
      family = "circulant";
      syntax = "circulant:N:o1+o2+..";
      parse_rest =
        (function
        | [ n; offs ] ->
          Some
            (let* n = int_field "circulant" n in
             let* offs = offsets_of offs in
             Ok (Circulant (n, offs)))
        | _ -> None);
    };
    {
      family = "complete-bipartite";
      syntax = "complete-bipartite:AxB";
      parse_rest =
        (function
        | [ ab ] ->
          Some
            (let* a, b = pair_of "complete-bipartite" ab in
             Ok (Complete_bipartite (a, b)))
        | _ -> None);
    };
    {
      family = "ring-of-cliques";
      syntax = "ring-of-cliques:CxS";
      parse_rest =
        (function
        | [ cs ] ->
          Some
            (let* c, s = pair_of "ring-of-cliques" cs in
             Ok (Ring_of_cliques (c, s)))
        | _ -> None);
    };
    {
      family = "barbell";
      syntax = "barbell:SxP";
      parse_rest =
        (function
        | [ sp ] ->
          Some
            (let* s, p = pair_of "barbell" sp in
             Ok (Barbell (s, p)))
        | _ -> None);
    };
    {
      family = "lollipop";
      syntax = "lollipop:SxP";
      parse_rest =
        (function
        | [ sp ] ->
          Some
            (let* s, p = pair_of "lollipop" sp in
             Ok (Lollipop (s, p)))
        | _ -> None);
    };
    {
      family = "random-regular";
      syntax = "random-regular:NxR";
      parse_rest =
        (function
        | [ nr ] ->
          Some
            (let* n, r = pair_of "random-regular" nr in
             Ok (Random_regular (n, r)))
        | _ -> None);
    };
    {
      family = "er";
      syntax = "er:N:P";
      parse_rest =
        (function
        | [ n; p ] ->
          Some
            (let* n = int_field "er" n in
             let* p = float_field "er" p in
             Ok (Erdos_renyi (n, p)))
        | _ -> None);
    };
    {
      family = "gnm";
      syntax = "gnm:NxM";
      parse_rest =
        (function
        | [ nm ] ->
          Some
            (let* n, m = pair_of "gnm" nm in
             Ok (Gnm (n, m)))
        | _ -> None);
    };
    {
      family = "ba";
      syntax = "ba:N,M[,P]";
      parse_rest = (function [ fields ] -> ba_fields fields | _ -> None);
    };
  ]

let families = List.map (fun e -> e.family) registry

let syntax_help =
  "graph descriptions: "
  ^ String.concat " " (List.map (fun e -> e.syntax) registry)

let parse s =
  let s = String.trim (String.lowercase_ascii s) in
  let fail () = Error (Printf.sprintf "cannot parse graph description %S; %s" s syntax_help) in
  match String.split_on_char ':' s with
  | [] -> fail ()
  | head :: rest -> (
    match List.find_opt (fun e -> e.family = head) registry with
    | None -> fail ()
    | Some e -> ( match e.parse_rest rest with Some r -> r | None -> fail ()))

let is_random = function
  | Random_regular _ | Erdos_renyi _ | Gnm _ | Ba _ -> true
  | Complete _ | Cycle _ | Path _ | Star _ | Wheel _ | Hypercube _
  | Folded_hypercube _ | Binary_tree _
  | Petersen | Torus _ | Grid _ | Circulant _ | Complete_bipartite _
  | Ring_of_cliques _ | Barbell _ | Lollipop _ ->
    false

let build spec rng =
  try
    Ok
      (match spec with
      | Complete n -> Gen.complete n
      | Cycle n -> Gen.cycle n
      | Path n -> Gen.path n
      | Star n -> Gen.star n
      | Wheel n -> Gen.wheel n
      | Hypercube d -> Gen.hypercube d
      | Folded_hypercube d -> Gen.folded_hypercube d
      | Binary_tree d -> Gen.binary_tree d
      | Petersen -> Gen.petersen ()
      | Torus dims -> Gen.torus dims
      | Grid dims -> Gen.grid dims
      | Circulant (n, offs) -> Gen.circulant n offs
      | Complete_bipartite (a, b) -> Gen.complete_bipartite a b
      | Ring_of_cliques (c, s) -> Gen.ring_of_cliques ~cliques:c ~clique_size:s
      | Barbell (s, p) -> Gen.barbell ~clique_size:s ~path_len:p
      | Lollipop (s, p) -> Gen.lollipop ~clique_size:s ~path_len:p
      | Random_regular (n, r) -> Gen.random_regular rng ~n ~r
      | Erdos_renyi (n, p) -> Gen.erdos_renyi rng ~n ~p
      | Gnm (n, m) -> Gen.gnm rng ~n ~m
      | Ba (n, m, p) -> Gen.barabasi_albert rng ~n ~m ~prob_unbiased:p)
  with Invalid_argument msg | Failure msg -> Error msg

let to_string = function
  | Complete n -> Printf.sprintf "complete:%d" n
  | Cycle n -> Printf.sprintf "cycle:%d" n
  | Path n -> Printf.sprintf "path:%d" n
  | Star n -> Printf.sprintf "star:%d" n
  | Wheel n -> Printf.sprintf "wheel:%d" n
  | Hypercube d -> Printf.sprintf "hypercube:%d" d
  | Folded_hypercube d -> Printf.sprintf "folded-hypercube:%d" d
  | Binary_tree d -> Printf.sprintf "binary-tree:%d" d
  | Petersen -> "petersen"
  | Torus dims ->
    "torus:" ^ String.concat "x" (Array.to_list (Array.map string_of_int dims))
  | Grid dims ->
    "grid:" ^ String.concat "x" (Array.to_list (Array.map string_of_int dims))
  | Circulant (n, offs) ->
    Printf.sprintf "circulant:%d:%s" n
      (String.concat "+" (List.map string_of_int offs))
  | Complete_bipartite (a, b) -> Printf.sprintf "complete-bipartite:%dx%d" a b
  | Ring_of_cliques (c, s) -> Printf.sprintf "ring-of-cliques:%dx%d" c s
  | Barbell (s, p) -> Printf.sprintf "barbell:%dx%d" s p
  | Lollipop (s, p) -> Printf.sprintf "lollipop:%dx%d" s p
  | Random_regular (n, r) -> Printf.sprintf "random-regular:%dx%d" n r
  | Erdos_renyi (n, p) -> Printf.sprintf "er:%d:%g" n p
  | Gnm (n, m) -> Printf.sprintf "gnm:%dx%d" n m
  | Ba (n, m, p) ->
    if p = 0.0 then Printf.sprintf "ba:%d,%d" n m
    else Printf.sprintf "ba:%d,%d,%g" n m p

(* The closed-form subset: families whose neighbourhoods are arithmetic.
   Everything else must be materialised. *)
let implicit spec =
  try
    match spec with
    | Complete n -> Ok (Implicit.complete n)
    | Cycle n -> Ok (Implicit.cycle n)
    | Path n -> Ok (Implicit.path n)
    | Hypercube d -> Ok (Implicit.hypercube d)
    | Folded_hypercube d -> Ok (Implicit.folded_hypercube d)
    | Torus dims -> Ok (Implicit.torus dims)
    | Grid dims -> Ok (Implicit.grid dims)
    | Circulant (n, offs) -> Ok (Implicit.circulant n offs)
    | Star _ | Wheel _ | Binary_tree _ | Petersen | Complete_bipartite _
    | Ring_of_cliques _ | Barbell _ | Lollipop _ | Random_regular _
    | Erdos_renyi _ | Gnm _ | Ba _ ->
      Error "family has no closed form"
  with Invalid_argument msg | Failure msg -> Error msg

let build_view spec ~backend rng =
  match (backend : View.backend) with
  | `Heap -> Result.map View.of_csr (build spec rng)
  | `Implicit -> (
    match implicit spec with
    | Ok imp -> Ok (View.of_implicit imp)
    | Error msg -> Error (Printf.sprintf "backend=implicit: %s: %s" (to_string spec) msg))
  | `Bigarray -> (
    (* Closed-form families stream straight into the off-heap arrays
       (already sorted, already simple) without ever materialising on
       the heap; everything else builds the heap CSR first and copies
       out. *)
    match implicit spec with
    | Ok imp ->
      Ok
        (View.of_bigcsr
           (Bigcsr.of_sorted_arcs
              ~n:(Implicit.n_vertices imp)
              ~degree:(Implicit.degree imp)
              ~iter:(fun v f -> Implicit.iter imp v ~f)))
    | Error _ -> Result.map (fun g -> View.of_bigcsr (Bigcsr.of_csr g)) (build spec rng))
