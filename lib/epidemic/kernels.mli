(** {!Cobra.Kernel} instances for the epidemic substrates, completing the
    unified process set: COBRA, BIPS, random walk and push live in
    [Cobra.Kernel]; SIS, the contact process and the herd model live
    here (they depend on the [epidemic] library). All seven are
    registered for sweeping in [Sweep.Kernels]. *)

(** Discrete SIS with recovery probability [params.recovery] and
    contacts [params.branching]. [params.persistent] makes [params.start]
    a never-recovering source, otherwise it is a transient seed. Complete
    on extinction or once every vertex has been infected at least once.
    Observes ["rounds"; "infected"; "ever"; "extinct"]. *)
val sis : Cobra.Kernel.t

(** Continuous-time contact process at rate [params.rate] up to time
    [params.horizon]. Event-driven, so a single kernel step runs the
    whole simulation (default cap 1); complete iff the run absorbed
    (died out or fully exposed) rather than hitting the horizon.
    Observes ["rounds"; "outcome"] (0 died out, 1 fully exposed,
    2 still active), ["time"; "ever"; "events"]. *)
val contact : Cobra.Kernel.t

(** BVDV-style herd model with [params.branching] contacts,
    [params.infectious_rounds] and [params.immune_rounds];
    [params.persistent] makes [params.start] a PI animal, otherwise a
    transient index case. Complete on full exposure or extinction.
    Observes ["rounds"; "ever"; "infectious"; "extinct"]. *)
val herd : Cobra.Kernel.t
