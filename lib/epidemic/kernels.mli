(** {!Cobra.Kernel} instances for the epidemic substrates, completing the
    unified process set: COBRA, BIPS, random walk, the rumor protocols,
    coalescing walks and the explorer live in [Cobra.Kernel]; SIS, the
    contact process, the herd model and SEIR live here (they depend on
    the [epidemic] library). All twelve are registered for sweeping in
    [Sweep.Kernels]. *)

(** Discrete SIS with recovery probability [params.recovery] and
    contacts [params.branching]. [params.persistent] makes [params.start]
    a never-recovering source, otherwise it is a transient seed. Complete
    on extinction or once every vertex has been infected at least once.
    Observes ["rounds"; "infected"; "ever"; "extinct"]. *)
val sis : Cobra.Kernel.t

(** Continuous-time contact process at rate [params.rate] up to time
    [params.horizon]. Event-driven, so a single kernel step runs the
    whole simulation (default cap 1); complete iff the run absorbed
    (died out or fully exposed) rather than hitting the horizon.
    Observes ["rounds"; "outcome"] (0 died out, 1 fully exposed,
    2 still active), ["time"; "ever"; "events"]. *)
val contact : Cobra.Kernel.t

(** BVDV-style herd model with [params.branching] contacts,
    [params.infectious_rounds] and [params.immune_rounds];
    [params.persistent] makes [params.start] a PI animal, otherwise a
    transient index case. Complete on full exposure or extinction.
    Observes ["rounds"; "ever"; "infectious"; "extinct"]. *)
val herd : Cobra.Kernel.t

(** Discrete SEIR epidemic ({!Seir}) with [params.branching] contacts,
    [params.latent_rounds] latency and [params.infectious_rounds]
    infectious window; [params.start] is the index case (initially
    infectious). Complete at absorption — no Exposed or Infectious
    vertex left — which is always reached (no reinfection). Observes
    ["rounds"; "ever"; "attack"; "peak"; "gen_r"; "extinct"]. *)
val seir : Cobra.Kernel.t
