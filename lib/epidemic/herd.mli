(** A BVDV-style herd transmission model (Innocent et al. [9], the paper's
    motivating reference for persistent sources).

    Bovine viral diarrhoea virus produces two kinds of infected animals:
    {e transiently} infected ones, which shed virus briefly and then gain
    immunity, and {e persistently} infected (PI) ones — infected in utero —
    which shed virus for life. Reference [9] simulates introducing one PI
    animal into an infection-free herd; the paper abstracts exactly this
    structure into BIPS. This module reproduces the qualitative model:

    - state machine per animal:
      Susceptible → Transient (for [infectious_rounds]) →
      Immune (for [immune_rounds]) → Susceptible; PI animals are
      permanently infectious;
    - contact structure: per round each susceptible animal contacts
      [contacts] random neighbours in the herd graph (pens are modelled by
      the graph itself, e.g. {!Graph.Gen.ring_of_cliques});
    - infection: contacting any currently infectious animal (transient or
      PI).

    The headline measurement, matching [9]: with a PI animal present, how
    long until every animal has been exposed; without one, whether the
    infection from a transient index case dies out. *)

type status = Susceptible | Transient | Immune | Persistent

type params = {
  contacts : Cobra.Branching.t;  (** contacts per susceptible per round *)
  infectious_rounds : int;  (** duration of a transient infection, >= 1 *)
  immune_rounds : int;  (** duration of post-infection immunity, >= 0 *)
}

type t

(** [create g params ~pi ~index_cases] — [pi] animals become persistently
    infected; [index_cases] start transiently infected. At least one of
    the two must be non-empty. *)
val create : Graph.View.t -> params -> pi:int list -> index_cases:int list -> t

(** [step h rng] plays one round. *)
val step : t -> Prng.Rng.t -> unit

(** [round h] is the number of completed rounds. *)
val round : t -> int

(** [status h v] is animal [v]'s current state. *)
val status : t -> int -> status

(** [count h s] counts animals currently in state [s]. *)
val count : t -> status -> int

(** [infectious_count h] is [count Transient + count Persistent]. *)
val infectious_count : t -> int

(** [ever_exposed_count h] counts animals that have been infected at least
    once (including PI and index cases). *)
val ever_exposed_count : t -> int

(** [is_extinct h] — no infectious animal remains (impossible with a PI
    animal present). *)
val is_extinct : t -> bool

type outcome =
  | Herd_fully_exposed of int  (** all animals exposed by the given round *)
  | Infection_extinct of int
      (** infection died with some animals never exposed *)
  | No_resolution of int  (** cap reached *)

(** [run ?cap g params ~pi ~index_cases rng] steps to full exposure or
    extinction (default cap [10_000 + 100 * n]). *)
val run :
  ?cap:int ->
  Graph.View.t ->
  params ->
  pi:int list ->
  index_cases:int list ->
  Prng.Rng.t ->
  outcome
