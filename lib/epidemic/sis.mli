(** A discrete SIS (susceptible–infected–susceptible) contact process.

    The paper situates BIPS among epidemic models: the classical contact
    process can die out, while BIPS cannot because of its persistent
    source. This module provides that classical counterpoint. Per round:
    infected vertices first recover with probability [recovery]; then
    every vertex that is now susceptible (including same-round
    recoverers) samples [contacts] random neighbours and becomes infected
    iff any sample was infected in the previous round. An optional
    persistent source never recovers.

    With [recovery = 1.0] and a persistent source, every non-source
    vertex re-samples each round against the previous infected set — the
    process {e is} BIPS. With no persistent source the process can (and,
    when subcritical, does) die out, which is the paper's contrast.

    The round semantics above are pinned by an exact oracle:
    [Cobra.Exact.sis_step_dist] enumerates the one-round transition on
    small graphs and [test/conformance] checks {!step} samples it. *)

type params = {
  contacts : Cobra.Branching.t;  (** contacts sampled per susceptible per round *)
  recovery : float;  (** per-round recovery probability, in [0, 1] *)
}

type outcome =
  | Extinct of int  (** no infected vertices remain, at the given round *)
  | Everyone_infected_once of int
      (** every vertex has been infected at least once, at the given
          round *)
  | Censored of int  (** neither happened within the cap *)

type t

(** [create g params ~persistent ~start] initialises with the vertices of
    [start] infected; [persistent], if given, is added to the infected set
    and never recovers. *)
val create : Graph.View.t -> params -> persistent:int option -> start:int list -> t

(** [step p rng] plays one synchronous round (infection then recovery). *)
val step : t -> Prng.Rng.t -> unit

(** [round p] is the number of completed rounds. *)
val round : t -> int

(** [infected p v] — is [v] currently infected? *)
val infected : t -> int -> bool

(** [infected_count p] is the current number of infected vertices. *)
val infected_count : t -> int

(** [ever_infected_count p] counts vertices infected at least once. *)
val ever_infected_count : t -> int

(** [is_extinct p] is [infected_count p = 0]. *)
val is_extinct : t -> bool

(** [run ?cap g params ~persistent ~start rng] steps until extinction or
    full exposure, whichever first (default cap [10_000 + 100 * n]). *)
val run :
  ?cap:int ->
  Graph.View.t ->
  params ->
  persistent:int option ->
  start:int list ->
  Prng.Rng.t ->
  outcome

(** [prevalence_trajectory ?cap g params ~persistent ~start rng] records
    the infected count per round until extinction/full exposure/cap. *)
val prevalence_trajectory :
  ?cap:int ->
  Graph.View.t ->
  params ->
  persistent:int option ->
  start:int list ->
  Prng.Rng.t ->
  int array
