(** A discrete SEIR epidemic with fixed latencies.

    The latency-structured counterpart of {!Sis}, modelled on the
    Gro-Tsen [run-epidemic.pl] / Priesemann contact-pattern designs
    (SNIPPETS.md §2, where infections traverse a fixed latent period
    [T_lat] before a fixed infectious window): each vertex moves
    Susceptible → Exposed (for [latent_rounds]) → Infectious (for
    [infectious_rounds]) → Recovered, and Recovered is absorbing — no
    reinfection, so the process always terminates within
    [n * (latent_rounds + infectious_rounds)] rounds.

    Round structure matches {!Sis.step}/{!Herd.step}: timers advance
    first (Infectious vertices whose window ends recover, Exposed
    vertices whose latency ends turn infectious), then every {e still
    susceptible} vertex draws its [contacts] picks in increasing vertex
    order against the infectious set {e snapshotted at the start of the
    round}, and new exposures apply synchronously after the scan. A
    vertex infected with [latent_rounds = 0] skips Exposed and becomes
    infectious for the {e next} round (it is never in its own round's
    snapshot).

    Headline observables, following the epidemic-script tradition:
    attack rate (fraction ever infected), peak infectious load, and a
    generational reproduction number R — each new infection is
    attributed to generation [g + 1] where [g] is the earliest
    generation among the infectious contacts drawn, and R is the mean
    successive generation-size ratio. *)

type status = Susceptible | Exposed | Infectious | Recovered

type params = {
  contacts : Cobra.Branching.t;  (** contact picks per susceptible per round *)
  latent_rounds : int;  (** Exposed duration, >= 0 (0 skips Exposed) *)
  infectious_rounds : int;  (** Infectious duration, >= 1 *)
}

type t

(** [create g params ~index_cases] starts the given vertices Infectious
    with a full timer (generation 0); everyone else is Susceptible.
    [index_cases] must be non-empty. *)
val create : Graph.View.t -> params -> index_cases:int list -> t

(** [step p rng] plays one synchronous round. *)
val step : t -> Prng.Rng.t -> unit

val round : t -> int

val status : t -> int -> status

(** [infectious_count p] — vertices currently Infectious. *)
val infectious_count : t -> int

(** [exposed_count p] — vertices currently Exposed. *)
val exposed_count : t -> int

(** [ever_infected_count p] — vertices ever infected (the attack count),
    index cases included. *)
val ever_infected_count : t -> int

(** [peak_infectious p] — the maximum of [infectious_count] over all
    round boundaries so far. *)
val peak_infectious : t -> int

(** [is_absorbed p] — no Exposed or Infectious vertex remains. Always
    reached: recovered vertices never rejoin the susceptible pool. *)
val is_absorbed : t -> bool

(** [generational_r p] is the mean of |generation g+1| / |generation g|
    over the non-empty generations so far; 0.0 while only generation 0
    exists. *)
val generational_r : t -> float

val default_cap : Graph.View.t -> int

type outcome = {
  rounds : int;
  ever : int;  (** attack count *)
  peak : int;  (** peak infectious load *)
  gen_r : float;  (** generational R *)
}

(** [run ?cap g params ~index_cases rng] steps to absorption (default
    cap [10_000 + 100 * n], never binding in practice — absorption is
    deterministic in at most [n * (latent + infectious)] rounds). *)
val run :
  ?cap:int -> Graph.View.t -> params -> index_cases:int list -> Prng.Rng.t -> outcome
