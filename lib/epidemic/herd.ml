module Bitset = Dstruct.Bitset

type status = Susceptible | Transient | Immune | Persistent

type params = {
  contacts : Cobra.Branching.t;
  infectious_rounds : int;
  immune_rounds : int;
}

(* Per-animal state: status plus a countdown for the timed states. *)
type t = {
  graph : Graph.View.t;
  params : params;
  status : status array;
  timer : int array; (* rounds remaining in Transient/Immune *)
  infectious : Bitset.t; (* Transient or Persistent, kept in sync *)
  ever : Bitset.t;
  mutable ever_count : int;
  mutable infectious_count : int;
  mutable round : int;
}

type outcome = Herd_fully_exposed of int | Infection_extinct of int | No_resolution of int

let create g params ~pi ~index_cases =
  let n = Graph.View.n_vertices g in
  if n = 0 then invalid_arg "Herd.create: empty graph";
  if params.infectious_rounds < 1 then invalid_arg "Herd.create: infectious_rounds >= 1";
  if params.immune_rounds < 0 then invalid_arg "Herd.create: immune_rounds >= 0";
  if pi = [] && index_cases = [] then invalid_arg "Herd.create: nobody infected";
  let check v = if v < 0 || v >= n then invalid_arg "Herd: animal out of range" in
  List.iter check pi;
  List.iter check index_cases;
  let h =
    {
      graph = g;
      params;
      status = Array.make n Susceptible;
      timer = Array.make n 0;
      infectious = Bitset.create n;
      ever = Bitset.create n;
      ever_count = 0;
      infectious_count = 0;
      round = 0;
    }
  in
  let expose v =
    if not (Bitset.mem h.ever v) then begin
      Bitset.add h.ever v;
      h.ever_count <- h.ever_count + 1
    end
  in
  List.iter
    (fun v ->
      if h.status.(v) = Susceptible then begin
        h.status.(v) <- Persistent;
        Bitset.add h.infectious v;
        h.infectious_count <- h.infectious_count + 1;
        expose v
      end)
    pi;
  List.iter
    (fun v ->
      if h.status.(v) = Susceptible then begin
        h.status.(v) <- Transient;
        h.timer.(v) <- params.infectious_rounds;
        Bitset.add h.infectious v;
        h.infectious_count <- h.infectious_count + 1;
        expose v
      end)
    index_cases;
  h

let round h = h.round
let status h v = h.status.(v)

let count h s =
  let c = ref 0 in
  Array.iter (fun x -> if x = s then incr c) h.status;
  !c

let infectious_count h = h.infectious_count
let ever_exposed_count h = h.ever_count
let is_extinct h = h.infectious_count = 0

let step h rng =
  let g = h.graph in
  let n = Graph.View.n_vertices g in
  (* Exposure is evaluated against the infectious set at the start of the
     round (synchronous update, matching the BIPS round structure). *)
  let snapshot = Bitset.copy h.infectious in
  let newly_infected = ref [] in
  for v = 0 to n - 1 do
    match h.status.(v) with
    | Persistent -> ()
    | Transient ->
      h.timer.(v) <- h.timer.(v) - 1;
      if h.timer.(v) = 0 then begin
        Bitset.remove h.infectious v;
        h.infectious_count <- h.infectious_count - 1;
        if h.params.immune_rounds > 0 then begin
          h.status.(v) <- Immune;
          h.timer.(v) <- h.params.immune_rounds
        end
        else h.status.(v) <- Susceptible
      end
    | Immune ->
      h.timer.(v) <- h.timer.(v) - 1;
      if h.timer.(v) = 0 then h.status.(v) <- Susceptible
    | Susceptible ->
      let hit = ref false in
      let check w = if Bitset.mem snapshot w then hit := true in
      ignore (Cobra.Branching.iter_picks h.params.contacts rng g v ~f:check);
      if !hit then newly_infected := v :: !newly_infected
  done;
  List.iter
    (fun v ->
      h.status.(v) <- Transient;
      h.timer.(v) <- h.params.infectious_rounds;
      Bitset.add h.infectious v;
      h.infectious_count <- h.infectious_count + 1;
      if not (Bitset.mem h.ever v) then begin
        Bitset.add h.ever v;
        h.ever_count <- h.ever_count + 1
      end)
    !newly_infected;
  h.round <- h.round + 1

let default_cap g = 10_000 + (100 * Graph.View.n_vertices g)

let run ?cap g params ~pi ~index_cases rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let h = create g params ~pi ~index_cases in
  let n = Graph.View.n_vertices g in
  let rec go () =
    if h.ever_count = n then Herd_fully_exposed h.round
    else if is_extinct h then Infection_extinct h.round
    else if h.round >= cap then No_resolution h.round
    else begin
      step h rng;
      go ()
    end
  in
  go ()
