module Bitset = Dstruct.Bitset

type status = Susceptible | Exposed | Infectious | Recovered

type params = {
  contacts : Cobra.Branching.t;
  latent_rounds : int;
  infectious_rounds : int;
}

(* Per-vertex state: status plus a countdown for the timed states, plus
   the infection generation for R estimation. *)
type t = {
  graph : Graph.View.t;
  params : params;
  status : status array;
  timer : int array; (* rounds remaining in Exposed/Infectious *)
  gen : int array; (* infection generation; -1 while never infected *)
  infectious : Bitset.t; (* status = Infectious, kept in sync *)
  mutable infectious_count : int;
  mutable exposed_count : int;
  mutable ever_count : int;
  mutable peak_infectious : int;
  mutable gen_sizes : int array; (* gen_sizes.(g) = |generation g| *)
  mutable max_gen : int;
  mutable round : int;
}

let create g params ~index_cases =
  let n = Graph.View.n_vertices g in
  if n = 0 then invalid_arg "Seir.create: empty graph";
  if params.latent_rounds < 0 then invalid_arg "Seir.create: latent_rounds >= 0";
  if params.infectious_rounds < 1 then
    invalid_arg "Seir.create: infectious_rounds >= 1";
  if index_cases = [] then invalid_arg "Seir.create: nobody infected";
  List.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Seir: vertex out of range")
    index_cases;
  let p =
    {
      graph = g;
      params;
      status = Array.make n Susceptible;
      timer = Array.make n 0;
      gen = Array.make n (-1);
      infectious = Bitset.create n;
      infectious_count = 0;
      exposed_count = 0;
      ever_count = 0;
      peak_infectious = 0;
      gen_sizes = Array.make 8 0;
      max_gen = 0;
      round = 0;
    }
  in
  (* Index cases start infectious with a full timer: generation 0. *)
  List.iter
    (fun v ->
      if p.status.(v) = Susceptible then begin
        p.status.(v) <- Infectious;
        p.timer.(v) <- params.infectious_rounds;
        p.gen.(v) <- 0;
        Bitset.add p.infectious v;
        p.infectious_count <- p.infectious_count + 1;
        p.ever_count <- p.ever_count + 1;
        p.gen_sizes.(0) <- p.gen_sizes.(0) + 1
      end)
    index_cases;
  p.peak_infectious <- p.infectious_count;
  p

let round p = p.round
let status p v = p.status.(v)
let infectious_count p = p.infectious_count
let exposed_count p = p.exposed_count
let ever_infected_count p = p.ever_count
let peak_infectious p = p.peak_infectious
let is_absorbed p = p.infectious_count = 0 && p.exposed_count = 0

let record_gen p g =
  if g >= Array.length p.gen_sizes then begin
    let bigger = Array.make (2 * (g + 1)) 0 in
    Array.blit p.gen_sizes 0 bigger 0 (Array.length p.gen_sizes);
    p.gen_sizes <- bigger
  end;
  p.gen_sizes.(g) <- p.gen_sizes.(g) + 1;
  if g > p.max_gen then p.max_gen <- g

(* Mean of the successive generation-size ratios |gen g+1| / |gen g|:
   a finite-population estimate of the reproduction number R. Non-empty
   generations are prefix-contiguous (generation g+1 needs an infectious
   generation-g vertex), so the ratios are well defined; 0.0 when the
   seeds infected nobody. *)
let generational_r p =
  if p.max_gen = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for g = 0 to p.max_gen - 1 do
      acc :=
        !acc +. (float_of_int p.gen_sizes.(g + 1) /. float_of_int p.gen_sizes.(g))
    done;
    !acc /. float_of_int p.max_gen
  end

let expose p v gen =
  p.gen.(v) <- gen;
  p.ever_count <- p.ever_count + 1;
  record_gen p gen;
  if p.params.latent_rounds > 0 then begin
    p.status.(v) <- Exposed;
    p.timer.(v) <- p.params.latent_rounds;
    p.exposed_count <- p.exposed_count + 1
  end
  else begin
    (* Zero latency: newly infected vertices are immediately infectious
       (for rounds after this one — they are not in this round's
       snapshot). *)
    p.status.(v) <- Infectious;
    p.timer.(v) <- p.params.infectious_rounds;
    Bitset.add p.infectious v;
    p.infectious_count <- p.infectious_count + 1
  end

let step p rng =
  let g = p.graph in
  let n = Graph.View.n_vertices g in
  (* Exposure is evaluated against the infectious set at the start of
     the round (synchronous update, matching the SIS/herd round
     structure): timers advance first per vertex, susceptibles draw
     against the snapshot in increasing vertex order, and new exposures
     apply after the scan. *)
  let snapshot = Bitset.copy p.infectious in
  let newly_exposed = ref [] in
  for v = 0 to n - 1 do
    match p.status.(v) with
    | Recovered -> ()
    | Infectious ->
      p.timer.(v) <- p.timer.(v) - 1;
      if p.timer.(v) = 0 then begin
        p.status.(v) <- Recovered;
        Bitset.remove p.infectious v;
        p.infectious_count <- p.infectious_count - 1
      end
    | Exposed ->
      p.timer.(v) <- p.timer.(v) - 1;
      if p.timer.(v) = 0 then begin
        p.status.(v) <- Infectious;
        p.timer.(v) <- p.params.infectious_rounds;
        p.exposed_count <- p.exposed_count - 1;
        Bitset.add p.infectious v;
        p.infectious_count <- p.infectious_count + 1
      end
    | Susceptible ->
      (* Attribute the infection to the earliest-generation infectious
         contact drawn this round. *)
      let src = ref max_int in
      let check w =
        if Bitset.mem snapshot w && p.gen.(w) < !src then src := p.gen.(w)
      in
      ignore (Cobra.Branching.iter_picks p.params.contacts rng g v ~f:check);
      if !src < max_int then newly_exposed := (v, !src + 1) :: !newly_exposed
  done;
  List.iter (fun (v, gen) -> expose p v gen) !newly_exposed;
  if p.infectious_count > p.peak_infectious then
    p.peak_infectious <- p.infectious_count;
  p.round <- p.round + 1

let default_cap g = 10_000 + (100 * Graph.View.n_vertices g)

type outcome = { rounds : int; ever : int; peak : int; gen_r : float }

let run ?cap g params ~index_cases rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let p = create g params ~index_cases in
  while (not (is_absorbed p)) && p.round < cap do
    step p rng
  done;
  {
    rounds = p.round;
    ever = p.ever_count;
    peak = p.peak_infectious;
    gen_r = generational_r p;
  }
