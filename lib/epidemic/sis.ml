module Bitset = Dstruct.Bitset

type params = { contacts : Cobra.Branching.t; recovery : float }

type outcome = Extinct of int | Everyone_infected_once of int | Censored of int

type t = {
  graph : Graph.View.t;
  params : params;
  persistent : int option;
  mutable infected : Bitset.t;
  mutable next : Bitset.t;
  ever : Bitset.t;
  mutable infected_count : int;
  mutable ever_count : int;
  mutable round : int;
}

let validate g params ~persistent ~start =
  let n = Graph.View.n_vertices g in
  if n = 0 then invalid_arg "Sis.create: empty graph";
  if params.recovery < 0.0 || params.recovery > 1.0 then
    invalid_arg "Sis.create: recovery outside [0, 1]";
  let check v = if v < 0 || v >= n then invalid_arg "Sis: vertex out of range" in
  List.iter check start;
  Option.iter check persistent;
  if start = [] && persistent = None then invalid_arg "Sis.create: nobody infected"

let create g params ~persistent ~start =
  validate g params ~persistent ~start;
  let n = Graph.View.n_vertices g in
  let infected = Bitset.create n and ever = Bitset.create n in
  let seed_list = match persistent with Some v -> v :: start | None -> start in
  List.iter
    (fun v ->
      Bitset.add infected v;
      Bitset.add ever v)
    seed_list;
  let count = Bitset.cardinal infected in
  {
    graph = g;
    params;
    persistent;
    infected;
    next = Bitset.create n;
    ever;
    infected_count = count;
    ever_count = count;
    round = 0;
  }

let round p = p.round
let infected p v = Bitset.mem p.infected v
let infected_count p = p.infected_count
let ever_infected_count p = p.ever_count
let is_extinct p = p.infected_count = 0

let step p rng =
  let g = p.graph in
  let n = Graph.View.n_vertices g in
  Bitset.clear p.next;
  let count = ref 0 in
  (* All indices below are loop counters in [0, n) or adjacency entries,
     so the unchecked bitset operations are safe. *)
  let infect u =
    Bitset.unsafe_add p.next u;
    incr count;
    if not (Bitset.unsafe_mem p.ever u) then begin
      Bitset.unsafe_add p.ever u;
      p.ever_count <- p.ever_count + 1
    end
  in
  let pers = match p.persistent with Some v -> v | None -> -1 in
  (* Round order: recovery first, then exposure of everyone currently
     susceptible (including same-round recoverers) against the *previous*
     infected set. With [recovery = 1.0] and a persistent source this is
     exactly the BIPS process — the embedding the tests check. *)
  for u = 0 to n - 1 do
    if pers = u then infect u
    else begin
      let stays =
        Bitset.unsafe_mem p.infected u
        && not (Prng.Rng.bernoulli rng p.params.recovery)
      in
      if stays then infect u
      else begin
        let hit = ref false in
        let check w = if Bitset.unsafe_mem p.infected w then hit := true in
        ignore (Cobra.Branching.iter_picks p.params.contacts rng g u ~f:check);
        if !hit then infect u
      end
    end
  done;
  let old = p.infected in
  p.infected <- p.next;
  p.next <- old;
  p.infected_count <- !count;
  p.round <- p.round + 1

let default_cap g = 10_000 + (100 * Graph.View.n_vertices g)

let finished p n =
  if is_extinct p then Some (Extinct p.round)
  else if p.ever_count = n then Some (Everyone_infected_once p.round)
  else None

let run ?cap g params ~persistent ~start rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let p = create g params ~persistent ~start in
  let n = Graph.View.n_vertices g in
  let rec go () =
    match finished p n with
    | Some outcome -> outcome
    | None ->
      if p.round >= cap then Censored p.round
      else begin
        step p rng;
        go ()
      end
  in
  go ()

let prevalence_trajectory ?cap g params ~persistent ~start rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let p = create g params ~persistent ~start in
  let n = Graph.View.n_vertices g in
  let sizes = Dstruct.Intvec.create () in
  Dstruct.Intvec.push sizes p.infected_count;
  while finished p n = None && p.round < cap do
    step p rng;
    Dstruct.Intvec.push sizes p.infected_count
  done;
  Dstruct.Intvec.to_array sizes
