(** The continuous-time contact process (Harris 1974) on finite graphs.

    The paper positions COBRA as "a discrete version of the contact
    process": each infected vertex recovers at rate 1 and transmits along
    each incident edge at rate [infection_rate]; a transmission infects
    the other endpoint if it is susceptible. Unlike BIPS/COBRA, the
    contact process {e can die out} — on finite graphs it a.s. does
    eventually — and the paper's cited literature (Pemantle, Liggett,
    Madras–Schinazi) studies exactly when survival is long. An optional
    persistent source reproduces the BIPS twist: that vertex never
    recovers, so extinction becomes impossible.

    Simulation is event-driven (exponential clocks, binary-heap queue)
    with lazy invalidation: each vertex carries an infection generation,
    and events scheduled for an older generation are discarded when
    popped. The event machinery is validated end-to-end in
    [test/conformance]: the empirical full-exposure probability must
    match [Cobra.Exact.contact_absorption]'s jump-chain value. *)

type outcome =
  | Died_out of float  (** no infected vertex remains, at the given time *)
  | Fully_exposed of float
      (** every vertex has been infected at least once, at the given
          time *)
  | Still_active of float  (** horizon reached with infection alive *)

type result = {
  outcome : outcome;
  ever_infected : int;  (** vertices infected at least once *)
  events : int;  (** events processed (scheduling granularity) *)
}

(** [run ?horizon g ~infection_rate ~persistent ~start rng] simulates
    until extinction, full exposure, or [horizon] time units (default
    [1e4]). [infection_rate >= 0]; recovery rate is normalised to 1.
    At least one vertex must start infected ([persistent] counts). *)
val run :
  ?horizon:float ->
  Graph.View.t ->
  infection_rate:float ->
  persistent:int option ->
  start:int list ->
  Prng.Rng.t ->
  result

(** [survival_probability ?horizon ?trials g ~infection_rate ~start rng]
    estimates the probability that the process (no persistent source)
    is still alive — or has fully exposed the graph — at the horizon:
    the finite-graph proxy for the supercritical/subcritical dichotomy.
    Returns [(survived, trials)]. *)
val survival_probability :
  ?horizon:float ->
  ?trials:int ->
  Graph.View.t ->
  infection_rate:float ->
  start:int list ->
  Prng.Rng.t ->
  int * int
