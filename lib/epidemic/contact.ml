module Heap = Dstruct.Heap
module Bitset = Dstruct.Bitset

type outcome = Died_out of float | Fully_exposed of float | Still_active of float

type result = { outcome : outcome; ever_infected : int; events : int }

(* Events are stored out-of-heap in parallel growable arrays; the heap
   payload is an index into them. An event is valid only if its [gen]
   matches the current infection generation of its source vertex — this
   is the lazy invalidation that replaces decrease-key. *)
type kind = Recovery | Transmission

type event_store = {
  mutable kinds : kind array;
  mutable sources : int array;
  mutable targets : int array;
  mutable gens : int array;
  mutable len : int;
}

let store_create () =
  {
    kinds = Array.make 64 Recovery;
    sources = Array.make 64 0;
    targets = Array.make 64 0;
    gens = Array.make 64 0;
    len = 0;
  }

let store_add st kind ~source ~target ~gen =
  if st.len = Array.length st.kinds then begin
    let cap = 2 * st.len in
    let grow_int a = let b = Array.make cap 0 in Array.blit a 0 b 0 st.len; b in
    let kinds = Array.make cap Recovery in
    Array.blit st.kinds 0 kinds 0 st.len;
    st.kinds <- kinds;
    st.sources <- grow_int st.sources;
    st.targets <- grow_int st.targets;
    st.gens <- grow_int st.gens
  end;
  let id = st.len in
  st.kinds.(id) <- kind;
  st.sources.(id) <- source;
  st.targets.(id) <- target;
  st.gens.(id) <- gen;
  st.len <- st.len + 1;
  id

let run ?(horizon = 1e4) g ~infection_rate ~persistent ~start rng =
  if infection_rate < 0.0 then invalid_arg "Contact.run: infection_rate >= 0";
  if horizon <= 0.0 then invalid_arg "Contact.run: horizon > 0";
  let n = Graph.View.n_vertices g in
  if n = 0 then invalid_arg "Contact.run: empty graph";
  let check v = if v < 0 || v >= n then invalid_arg "Contact.run: vertex out of range" in
  List.iter check start;
  Option.iter check persistent;
  if start = [] && persistent = None then invalid_arg "Contact.run: nobody infected";
  let infected = Bitset.create n in
  let ever = Bitset.create n in
  let gen = Array.make n 0 in
  let queue = Heap.create ~capacity:1024 () in
  let store = store_create () in
  let infected_count = ref 0 in
  let ever_count = ref 0 in
  let events = ref 0 in
  let exp_draw rate = Prng.Dist.exponential rng ~rate in
  let schedule time kind ~source ~target =
    let id = store_add store kind ~source ~target ~gen:gen.(source) in
    Heap.push queue ~priority:time ~payload:id
  in
  let infect time v =
    if not (Bitset.mem infected v) then begin
      Bitset.add infected v;
      incr infected_count;
      gen.(v) <- gen.(v) + 1;
      if not (Bitset.mem ever v) then begin
        Bitset.add ever v;
        incr ever_count
      end;
      if persistent <> Some v then
        schedule (time +. exp_draw 1.0) Recovery ~source:v ~target:v;
      if infection_rate > 0.0 then
        Graph.View.iter_neighbours g v ~f:(fun u ->
            schedule (time +. exp_draw infection_rate) Transmission ~source:v ~target:u)
    end
  in
  let recover v =
    if Bitset.mem infected v then begin
      Bitset.remove infected v;
      decr infected_count;
      (* Invalidate all of v's outstanding events. *)
      gen.(v) <- gen.(v) + 1
    end
  in
  (match persistent with Some v -> infect 0.0 v | None -> ());
  List.iter (infect 0.0) start;
  let finished time =
    if !ever_count = n then Some (Fully_exposed time)
    else if !infected_count = 0 then Some (Died_out time)
    else None
  in
  let rec loop () =
    match finished 0.0 with
    | Some _ as r -> (r, 0.0)
    | None -> (
      match Heap.min queue with
      | None -> (Some (Died_out 0.0), 0.0) (* unreachable: infected => events *)
      | Some (time, _) when time > horizon -> (None, horizon)
      | Some _ ->
        let time, id = Heap.pop queue in
        incr events;
        let v = store.sources.(id) in
        if store.gens.(id) = gen.(v) && Bitset.mem infected v then begin
          match store.kinds.(id) with
          | Recovery -> recover v
          | Transmission ->
            let u = store.targets.(id) in
            infect time u;
            (* next transmission attempt along the same edge *)
            if infection_rate > 0.0 then
              schedule (time +. exp_draw infection_rate) Transmission ~source:v ~target:u
        end;
        (match finished time with Some o -> (Some o, time) | None -> loop ()))
  in
  let outcome =
    match loop () with
    | Some o, _ -> o
    | None, t -> Still_active t
  in
  { outcome; ever_infected = !ever_count; events = !events }

let survival_probability ?horizon ?(trials = 100) g ~infection_rate ~start rng =
  if trials < 1 then invalid_arg "Contact.survival_probability: trials >= 1";
  let survived = ref 0 in
  for _ = 1 to trials do
    let r = run ?horizon g ~infection_rate ~persistent:None ~start rng in
    match r.outcome with
    | Died_out _ -> ()
    | Fully_exposed _ | Still_active _ -> incr survived
  done;
  (!survived, trials)
