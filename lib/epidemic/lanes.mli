(** Lane-engine steppers for the epidemic kernels.

    Only the discrete SIS epidemic slices well (pure per-vertex
    Bernoulli recovery plus branching exposure); the event-driven
    contact process and the multi-compartment herd model stay on the
    scalar engine. *)

(** Sliced SIS: complete per lane at extinction or full exposure.
    Observes ["rounds"; "infected"; "ever"; "extinct"], like the scalar
    kernel. Round order matches [Sis.step] (recovery first, then
    exposure against the previous infected set), so the BIPS embedding
    at [recovery = 1] holds lane-wise. *)
val sis : Cobra.Lanes.t

val all : Cobra.Lanes.t list

val find : string -> Cobra.Lanes.t option
