module K = Cobra.Kernel

let fi = float_of_int

let round_cap g = 10_000 + (100 * Graph.View.n_vertices g)

let sis =
  {
    K.name = "sis";
    doc = "discrete SIS epidemic, run to extinction or full exposure";
    default_cap = round_cap;
    create =
      (fun g params ->
        let n = Graph.View.n_vertices g in
        let p =
          Sis.create g
            { Sis.contacts = params.K.branching; recovery = params.K.recovery }
            ~persistent:(if params.K.persistent then Some params.K.start else None)
            ~start:(if params.K.persistent then [] else [ params.K.start ])
        in
        {
          K.step = (fun rng -> Sis.step p rng);
          is_complete =
            (fun () -> Sis.is_extinct p || Sis.ever_infected_count p = n);
          rounds = (fun () -> Sis.round p);
          observe =
            (fun () ->
              [
                ("rounds", fi (Sis.round p));
                ("infected", fi (Sis.infected_count p));
                ("ever", fi (Sis.ever_infected_count p));
                ("extinct", if Sis.is_extinct p then 1.0 else 0.0);
              ]);
        });
  }

(* The contact process is event-driven with no round structure: one
   kernel step performs the entire simulation (to absorption or the
   horizon) on the given stream, consuming exactly [Contact.run]'s
   draws; further steps are draw-free no-ops. [Still_active] maps to
   "capped", matching the discrete kernels' censoring semantics.
   [rounds] counts step invocations — not the single run — so the
   driver loop's [rounds < cap] test reaches any caller-supplied cap
   and terminates even when a [Still_active] outcome keeps
   [is_complete] false. *)
let contact =
  {
    K.name = "contact";
    doc = "continuous-time contact process (one step = whole run)";
    default_cap = (fun _ -> 1);
    create =
      (fun g params ->
        let result = ref None in
        let steps = ref 0 in
        let persistent = if params.K.persistent then Some params.K.start else None in
        let start = if params.K.persistent then [] else [ params.K.start ] in
        {
          K.step =
            (fun rng ->
              incr steps;
              if !result = None then
                result :=
                  Some
                    (Contact.run ~horizon:params.K.horizon g
                       ~infection_rate:params.K.rate ~persistent ~start rng));
          is_complete =
            (fun () ->
              match !result with
              | Some { Contact.outcome = Contact.Died_out _ | Contact.Fully_exposed _; _ }
                ->
                true
              | Some { Contact.outcome = Contact.Still_active _; _ } | None -> false);
          rounds = (fun () -> !steps);
          observe =
            (fun () ->
              match !result with
              | None -> [ ("rounds", 0.0) ]
              | Some r ->
                let code, time =
                  match r.Contact.outcome with
                  | Contact.Died_out t -> (0.0, t)
                  | Contact.Fully_exposed t -> (1.0, t)
                  | Contact.Still_active t -> (2.0, t)
                in
                [
                  ("rounds", fi !steps);
                  ("outcome", code);
                  ("time", time);
                  ("ever", fi r.Contact.ever_infected);
                  ("events", fi r.Contact.events);
                ]);
        });
  }

let seir =
  {
    K.name = "seir";
    doc = "discrete SEIR epidemic with fixed latencies, run to absorption";
    default_cap = round_cap;
    create =
      (fun g params ->
        let p =
          Seir.create g
            {
              Seir.contacts = params.K.branching;
              latent_rounds = params.K.latent_rounds;
              infectious_rounds = params.K.infectious_rounds;
            }
            ~index_cases:[ params.K.start ]
        in
        let n = Graph.View.n_vertices g in
        {
          K.step = (fun rng -> Seir.step p rng);
          is_complete = (fun () -> Seir.is_absorbed p);
          rounds = (fun () -> Seir.round p);
          observe =
            (fun () ->
              [
                ("rounds", fi (Seir.round p));
                ("ever", fi (Seir.ever_infected_count p));
                ("attack", fi (Seir.ever_infected_count p) /. fi n);
                ("peak", fi (Seir.peak_infectious p));
                ("gen_r", Seir.generational_r p);
                ("extinct", if Seir.is_absorbed p then 1.0 else 0.0);
              ]);
        });
  }

let herd =
  {
    K.name = "herd";
    doc = "BVDV-style herd model, run to full exposure or extinction";
    default_cap = round_cap;
    create =
      (fun g params ->
        let n = Graph.View.n_vertices g in
        let hp =
          {
            Herd.contacts = params.K.branching;
            infectious_rounds = params.K.infectious_rounds;
            immune_rounds = params.K.immune_rounds;
          }
        in
        let pi = if params.K.persistent then [ params.K.start ] else [] in
        let index_cases = if params.K.persistent then [] else [ params.K.start ] in
        let h = Herd.create g hp ~pi ~index_cases in
        {
          K.step = (fun rng -> Herd.step h rng);
          is_complete =
            (fun () -> Herd.ever_exposed_count h = n || Herd.is_extinct h);
          rounds = (fun () -> Herd.round h);
          observe =
            (fun () ->
              [
                ("rounds", fi (Herd.round h));
                ("ever", fi (Herd.ever_exposed_count h));
                ("infectious", fi (Herd.infectious_count h));
                ("extinct", if Herd.is_extinct h then 1.0 else 0.0);
              ]);
        });
  }
