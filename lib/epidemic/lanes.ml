(* Sliced SIS: the lane-engine stepper for the discrete SIS epidemic,
   built on Cobra.Lanes' batch driver and pick toolkit. Round order
   matches Sis.step — recovery first, then exposure of every
   now-susceptible vertex against the previous infected set — so with
   recovery = 1 and a persistent source the sliced process embeds BIPS
   exactly as the scalar one does. *)

module Lanemat = Dstruct.Lanemat
module Slice = Cobra.Lanes.Slice

let full = 0xFFFFFFFF
let fi = float_of_int
let round_cap g = 10_000 + (100 * Graph.View.n_vertices g)

let sis =
  {
    Cobra.Lanes.name = "sis";
    default_cap = round_cap;
    supports = (fun p -> Slice.supported p.Cobra.Kernel.branching);
    create =
      (fun g params gen ->
        let n = Graph.View.n_vertices g in
        let start = params.Cobra.Kernel.start in
        if start < 0 || start >= n then invalid_arg "Lanes.sis: start out of range";
        let recovery = params.Cobra.Kernel.recovery in
        if recovery < 0.0 || recovery > 1.0 then
          invalid_arg "Lanes.sis: recovery outside [0, 1]";
        let pers = if params.Cobra.Kernel.persistent then start else -1 in
        let cur = ref (Lanemat.create n) and nxt = ref (Lanemat.create n) in
        let ever = Lanemat.create n in
        Lanemat.unsafe_set_lo !cur start full;
        Lanemat.unsafe_set_hi !cur start full;
        Lanemat.unsafe_set_lo ever start full;
        Lanemat.unsafe_set_hi ever start full;
        let picker = Slice.picker g params.Cobra.Kernel.branching in
        (* done = extinct OR everyone-ever-infected, per lane. *)
        let mask () =
          let or_lo, or_hi = Lanemat.fold_or !cur in
          let ev_lo, ev_hi = Lanemat.fold_and ever in
          ((lnot or_lo lor ev_lo) land full, (lnot or_hi lor ev_hi) land full)
        in
        let dmask = ref (mask ()) in
        let icounts = ref None and ecounts = ref None in
        {
          Cobra.Lanes.step =
            (fun ~live_lo ~live_hi ->
              let or_lo = ref 0 and or_hi = ref 0 in
              let evf_lo = ref full and evf_hi = ref full in
              for u = 0 to n - 1 do
                let old_lo = Lanemat.unsafe_lo !cur u in
                let old_hi = Lanemat.unsafe_hi !cur u in
                let comp_lo = ref full and comp_hi = ref full in
                if u <> pers then begin
                  (* Recovery: one Bernoulli mask, applied only to the
                     infected lanes; skipped when no live lane has [u]
                     infected. *)
                  let stays_lo = ref old_lo and stays_hi = ref old_hi in
                  if (old_lo land live_lo) lor (old_hi land live_hi) <> 0 then begin
                    Prng.Lanes.bernoulli gen recovery;
                    stays_lo := old_lo land lnot (Prng.Lanes.lo gen);
                    stays_hi := old_hi land lnot (Prng.Lanes.hi gen)
                  end;
                  (* Exposure against A_t for the lanes not staying:
                     skipped when no live candidate lane has an
                     infected neighbour. *)
                  let hit_lo = ref 0 and hit_hi = ref 0 in
                  (* Candidate lanes whose whole neighbourhood is
                     infected hit for sure, ones with no infected
                     neighbour miss for sure; the pick draw only runs
                     when some candidate lane sits strictly in between
                     (skipped draws are fresh bits with a deterministic
                     outcome, so the distribution is unchanged). *)
                  let and_lo, and_hi = Slice.nb_or_and picker !cur ~v:u in
                  if
                    (Slice.lo picker land lnot and_lo
                    land lnot !stays_lo land live_lo)
                    lor
                    (Slice.hi picker land lnot and_hi
                    land lnot !stays_hi land live_hi)
                    = 0
                  then begin
                    hit_lo := and_lo;
                    hit_hi := and_hi
                  end
                  else begin
                    Slice.hit picker gen !cur ~v:u;
                    hit_lo := Slice.lo picker;
                    hit_hi := Slice.hi picker
                  end;
                  comp_lo := !stays_lo lor !hit_lo;
                  comp_hi := !stays_hi lor !hit_hi
                end;
                let new_lo = (!comp_lo land live_lo) lor (old_lo land lnot live_lo) in
                let new_hi = (!comp_hi land live_hi) lor (old_hi land lnot live_hi) in
                Lanemat.unsafe_set_lo !nxt u new_lo;
                Lanemat.unsafe_set_hi !nxt u new_hi;
                let ev_lo = Lanemat.unsafe_lo ever u lor new_lo in
                let ev_hi = Lanemat.unsafe_hi ever u lor new_hi in
                Lanemat.unsafe_set_lo ever u ev_lo;
                Lanemat.unsafe_set_hi ever u ev_hi;
                or_lo := !or_lo lor new_lo;
                or_hi := !or_hi lor new_hi;
                evf_lo := !evf_lo land ev_lo;
                evf_hi := !evf_hi land ev_hi
              done;
              let old = !cur in
              cur := !nxt;
              nxt := old;
              dmask :=
                ( (lnot !or_lo lor !evf_lo) land full,
                  (lnot !or_hi lor !evf_hi) land full );
              icounts := None;
              ecounts := None);
          done_mask = (fun () -> !dmask);
          observe =
            (fun ~lane ->
              let inf =
                match !icounts with
                | Some c -> c
                | None ->
                  let c = Lanemat.counts !cur in
                  icounts := Some c;
                  c
              and ev =
                match !ecounts with
                | Some c -> c
                | None ->
                  let c = Lanemat.counts ever in
                  ecounts := Some c;
                  c
              in
              [
                ("infected", fi inf.(lane));
                ("ever", fi ev.(lane));
                ("extinct", if inf.(lane) = 0 then 1.0 else 0.0);
              ]);
          state = (fun () -> !cur);
        });
  }

let all = [ sis ]
let find name = List.find_opt (fun t -> t.Cobra.Lanes.name = name) all
