type align = Left | Right

type line = Row of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable lines : line list; (* reversed *)
  mutable data_rows : int;
}

let create ?aligns headers =
  if headers = [] then invalid_arg "Table.create: no columns";
  let aligns =
    match aligns with
    | None -> List.map (fun _ -> Right) headers
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/header count mismatch";
      a
  in
  { headers; aligns; lines = []; data_rows = 0 }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.lines <- Row cells :: t.lines;
  t.data_rows <- t.data_rows + 1

let add_rule t = t.lines <- Rule :: t.lines

let rows t = t.data_rows

let render t =
  let lines = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Rule -> ()
      | Row cells ->
        List.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cells)
    lines;
  let buf = Buffer.create 256 in
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let emit_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total =
      Array.fold_left ( + ) 0 widths + (2 * (Array.length widths - 1))
    in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  rule ();
  List.iter (function Rule -> rule () | Row cells -> emit_row cells) lines;
  Buffer.contents buf

let print t = print_string (render t)
