type fit = {
  intercept : float;
  slope : float;
  r2 : float;
  residual_std : float;
  n : int;
}

let ols xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regress.ols: length mismatch";
  if n < 2 then invalid_arg "Regress.ols: need at least two points";
  let fn = Float.of_int n in
  let mean a = Array.fold_left ( +. ) 0.0 a /. fn in
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Regress.ols: xs are all identical";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res = ref 0.0 in
  for i = 0 to n - 1 do
    let e = ys.(i) -. (intercept +. (slope *. xs.(i))) in
    ss_res := !ss_res +. (e *. e)
  done;
  let r2 = if !syy = 0.0 then 1.0 else 1.0 -. (!ss_res /. !syy) in
  let residual_std = if n > 2 then sqrt (!ss_res /. Float.of_int (n - 2)) else 0.0 in
  { intercept; slope; r2; residual_std; n }

let check_positive name a =
  Array.iter (fun x -> if x <= 0.0 then invalid_arg (name ^ ": values must be positive")) a

let semilog xs ys =
  check_positive "Regress.semilog" xs;
  ols (Array.map log xs) ys

let loglog xs ys =
  check_positive "Regress.loglog" xs;
  check_positive "Regress.loglog" ys;
  ols (Array.map log xs) (Array.map log ys)

let predict fit x = fit.intercept +. (fit.slope *. x)

let pp ppf f =
  Format.fprintf ppf "slope=%.4g intercept=%.4g R²=%.4f (n=%d)" f.slope f.intercept
    f.r2 f.n
