(** One-line ASCII sparklines for time series in terminal reports. *)

(** [render ?width values] maps the series onto a fixed character ramp
    (space = minimum, '@' = maximum). If [width] is given and smaller
    than the series, values are bucket-averaged down to [width]
    characters. Empty input yields the empty string. *)
val render : ?width:int -> float array -> string

(** [render_ints ?width values] — integer convenience wrapper. *)
val render_ints : ?width:int -> int array -> string

(** [scale_line ~lo ~hi] renders a caption like ["1 .. 4096"] for the
    sparkline's range. *)
val scale_line : lo:float -> hi:float -> string
