(** Ordinary least squares on one predictor, plus the log-transform fits
    the scaling experiments report.

    E1 fits [cover = a + b·log n] to exhibit Theorem 1's O(log n); E7 fits
    [log cover = a + b·log n] to recover the grid exponent 1/d. *)

type fit = {
  intercept : float;
  slope : float;
  r2 : float;  (** coefficient of determination *)
  residual_std : float;  (** std dev of residuals *)
  n : int;
}

(** [ols xs ys] fits [y = intercept + slope·x]; requires two distinct
    [xs]. *)
val ols : float array -> float array -> fit

(** [semilog xs ys] fits [y = intercept + slope·ln x]; xs must be
    positive. *)
val semilog : float array -> float array -> fit

(** [loglog xs ys] fits [ln y = intercept + slope·ln x] — [slope] is the
    power-law exponent; xs, ys must be positive. *)
val loglog : float array -> float array -> fit

(** [predict fit x] evaluates the fitted line at [x] (in the transformed
    space for {!semilog}/{!loglog} — callers transform their query). *)
val predict : fit -> float -> float

(** [pp] prints slope, intercept and R². *)
val pp : Format.formatter -> fit -> unit
