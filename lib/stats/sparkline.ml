let ramp = " .:-=+*#%@"

let bucketize width values =
  let n = Array.length values in
  if n <= width then values
  else
    Array.init width (fun b ->
        let lo = b * n / width and hi = max (((b + 1) * n / width) - 1) (b * n / width) in
        let acc = ref 0.0 in
        for i = lo to hi do
          acc := !acc +. values.(i)
        done;
        !acc /. Float.of_int (hi - lo + 1))

let render ?(width = 72) values =
  if Array.length values = 0 then ""
  else begin
    let values = bucketize width values in
    let lo = Array.fold_left Float.min infinity values in
    let hi = Array.fold_left Float.max neg_infinity values in
    let levels = String.length ramp - 1 in
    let char_of v =
      if hi = lo then ramp.[levels]
      else begin
        let idx = Float.to_int ((v -. lo) /. (hi -. lo) *. Float.of_int levels) in
        ramp.[max 0 (min levels idx)]
      end
    in
    String.init (Array.length values) (fun i -> char_of values.(i))
  end

let render_ints ?width values = render ?width (Array.map Float.of_int values)

let scale_line ~lo ~hi = Printf.sprintf "%g .. %g" lo hi
