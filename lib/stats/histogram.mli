(** Fixed-width histograms with ASCII rendering, for distribution shape
    checks (e.g. cover-time concentration) in reports and tests. *)

type t

(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins >= 1] equal bins.
    Observations outside the range are tallied in overflow counters. *)
val create : lo:float -> hi:float -> bins:int -> t

(** [add h x] tallies one observation. *)
val add : h:t -> float -> unit

(** [counts h] is the per-bin tally, length [bins]. *)
val counts : t -> int array

(** [underflow h] / [overflow h] count out-of-range observations. *)
val underflow : t -> int

val overflow : t -> int

(** [total h] counts all observations including out-of-range ones. *)
val total : t -> int

(** [bin_range h i] is the [i]-th bin's [lo, hi) interval. *)
val bin_range : t -> int -> float * float

(** [of_array ~bins xs] builds a histogram spanning the sample's range. *)
val of_array : bins:int -> float array -> t

(** [pp] renders one line per bin with a proportional bar. *)
val pp : Format.formatter -> t -> unit
