type interval = { lo : float; hi : float }

(* Acklam's rational approximation to the inverse standard normal CDF;
   absolute error below 1.15e-9 over (0, 1). *)
let z_quantile p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Ci.z_quantile: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5)
    |> fun num ->
    num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end

(* Hill (1970): expand the normal quantile into a Cornish-Fisher-style
   series in 1/df. Accurate to a few 1e-4 for df >= 3; exact limits used
   for df = 1, 2. *)
let t_quantile ~df p =
  if df < 1 then invalid_arg "Ci.t_quantile: df >= 1";
  if p <= 0.0 || p >= 1.0 then invalid_arg "Ci.t_quantile: p outside (0,1)";
  match df with
  | 1 ->
    (* Cauchy quantile. *)
    tan (Float.pi *. (p -. 0.5))
  | 2 ->
    let alpha = (2.0 *. p) -. 1.0 in
    alpha *. sqrt (2.0 /. (1.0 -. (alpha *. alpha)))
  | _ ->
    let z = z_quantile p in
    let n = Float.of_int df in
    let g1 = ((z ** 3.0) +. z) /. 4.0 in
    let g2 = ((5.0 *. (z ** 5.0)) +. (16.0 *. (z ** 3.0)) +. (3.0 *. z)) /. 96.0 in
    let g3 =
      ((3.0 *. (z ** 7.0)) +. (19.0 *. (z ** 5.0)) +. (17.0 *. (z ** 3.0)) -. (15.0 *. z))
      /. 384.0
    in
    z +. (g1 /. n) +. (g2 /. (n *. n)) +. (g3 /. (n *. n *. n))

let mean_ci ?(level = 0.95) s =
  if Summary.count s < 2 then invalid_arg "Ci.mean_ci: need at least two observations";
  let half = t_quantile ~df:(Summary.count s - 1) (1.0 -. ((1.0 -. level) /. 2.0)) in
  let m = Summary.mean s and se = Summary.std_error s in
  { lo = m -. (half *. se); hi = m +. (half *. se) }

let proportion_ci ?(level = 0.95) ~successes ~trials () =
  if trials <= 0 then invalid_arg "Ci.proportion_ci: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Ci.proportion_ci: successes outside [0, trials]";
  let z = z_quantile (1.0 -. ((1.0 -. level) /. 2.0)) in
  let n = Float.of_int trials in
  let p = Float.of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom in
  { lo = Float.max 0.0 (centre -. half); hi = Float.min 1.0 (centre +. half) }

let bootstrap ?(level = 0.95) ?(resamples = 1000) rng xs ~statistic =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Ci.bootstrap: empty sample";
  let stats =
    Array.init resamples (fun _ ->
        let sample = Array.init n (fun _ -> xs.(Prng.Rng.int rng n)) in
        statistic sample)
  in
  let alpha = (1.0 -. level) /. 2.0 in
  match Quantile.quantiles stats [ alpha; 1.0 -. alpha ] with
  | [ lo; hi ] -> { lo; hi }
  | _ -> assert false

let contains i x = i.lo <= x && x <= i.hi

let pp ppf i = Format.fprintf ppf "[%.4g, %.4g]" i.lo i.hi
