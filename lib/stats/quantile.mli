(** Exact sample quantiles (type-7 linear interpolation, the R default). *)

(** [quantile xs q] for [0 <= q <= 1]; raises on an empty array. Does not
    mutate [xs]. *)
val quantile : float array -> float -> float

(** [median xs] is [quantile xs 0.5]. *)
val median : float array -> float

(** [quantiles xs qs] evaluates several quantiles with one sort. *)
val quantiles : float array -> float list -> float list

(** [iqr xs] is the interquartile range. *)
val iqr : float array -> float
