type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_int t x = add t (Float.of_int x)

let count t = t.n

let require_nonempty t = if t.n = 0 then invalid_arg "Summary: empty accumulator"

let mean t = require_nonempty t; t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. Float.of_int (t.n - 1)

let stddev t = sqrt (variance t)

let std_error t =
  require_nonempty t;
  stddev t /. sqrt (Float.of_int t.n)

let min t = require_nonempty t; t.min
let max t = require_nonempty t; t.max

let merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2; min = b.min; max = b.max }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2; min = a.min; max = a.max }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. Float.of_int b.n /. Float.of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. Float.of_int a.n *. Float.of_int b.n /. Float.of_int n)
    in
    { n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
  end

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let pp ppf t =
  if t.n = 0 then Format.pp_print_string ppf "(empty)"
  else Format.fprintf ppf "%.4g ± %.2g (n=%d)" t.mean (stddev t) t.n
