let of_sorted sorted q =
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile: q outside [0,1]";
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile: empty sample";
  (* Type-7: h = (n - 1) q; interpolate between floor h and ceil h. *)
  let h = Float.of_int (n - 1) *. q in
  let lo = Float.to_int (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. Float.of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let sorted_copy xs =
  let s = Array.copy xs in
  Array.sort compare s;
  s

let quantile xs q = of_sorted (sorted_copy xs) q

let median xs = quantile xs 0.5

let quantiles xs qs =
  let s = sorted_copy xs in
  List.map (of_sorted s) qs

let iqr xs =
  match quantiles xs [ 0.25; 0.75 ] with
  | [ lo; hi ] -> hi -. lo
  | _ -> assert false
