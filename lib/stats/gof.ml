type verdict = Pass | Reject

type result = {
  test : string;
  statistic : float;
  df : int;
  p_value : float;
  alpha : float;
  verdict : verdict;
}

let passed r = r.verdict = Pass

let all_pass rs = List.for_all passed rs

let pp ppf r =
  Format.fprintf ppf "%s: stat=%g df=%d p=%g (%s at alpha=%g)" r.test r.statistic r.df
    r.p_value
    (match r.verdict with Pass -> "pass" | Reject -> "REJECT")
    r.alpha

let default_alpha = 1e-6

let make ~test ~statistic ~df ~p_value ~alpha =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg (test ^ ": alpha outside (0,1)");
  let verdict = if p_value < alpha then Reject else Pass in
  { test; statistic; df; p_value; alpha; verdict }

(* ---------- special functions ---------- *)

(* Lanczos approximation, g = 7, 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Gof.log_gamma: x > 0 required";
  if x < 0.5 then
    (* Reflection keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. Float.of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

(* Series representation of P(a, x), convergent for x < a + 1. *)
let gamma_p_series a x =
  let eps = 1e-15 in
  let ap = ref a in
  let del = ref (1.0 /. a) in
  let sum = ref !del in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ do
    incr iter;
    ap := !ap +. 1.0;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if Float.abs !del < Float.abs !sum *. eps || !iter > 10_000 then continue_ := false
  done;
  !sum *. exp (-.x +. (a *. log x) -. log_gamma a)

(* Continued fraction for Q(a, x) (modified Lentz), convergent for
   x >= a + 1; keeps relative accuracy deep in the tail. *)
let gamma_q_cf a x =
  let eps = 1e-15 and fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let continue_ = ref true in
  let i = ref 1 in
  while !continue_ do
    let an = -.Float.of_int !i *. (Float.of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps || !i > 10_000 then continue_ := false;
    incr i
  done;
  !h *. exp (-.x +. (a *. log x) -. log_gamma a)

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Gof.gamma_p: a > 0 required";
  if x < 0.0 then invalid_arg "Gof.gamma_p: x >= 0 required";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

let gamma_q a x =
  if a <= 0.0 then invalid_arg "Gof.gamma_q: a > 0 required";
  if x < 0.0 then invalid_arg "Gof.gamma_q: x >= 0 required";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_cf a x

let chi2_cdf ~df x =
  if df < 1 then invalid_arg "Gof.chi2_cdf: df >= 1 required";
  if x <= 0.0 then 0.0 else gamma_p (Float.of_int df /. 2.0) (x /. 2.0)

let chi2_sf ~df x =
  if df < 1 then invalid_arg "Gof.chi2_sf: df >= 1 required";
  if x <= 0.0 then 1.0 else gamma_q (Float.of_int df /. 2.0) (x /. 2.0)

(* erfc x = Q(1/2, x²) for x >= 0. *)
let normal_cdf x =
  let z = Float.abs x /. sqrt 2.0 in
  let half_erfc = 0.5 *. gamma_q 0.5 (z *. z) in
  if x >= 0.0 then 1.0 -. half_erfc else half_erfc

let kolmogorov_q lambda =
  if lambda <= 0.0 then 1.0
  else begin
    let acc = ref 0.0 in
    let sign = ref 1.0 in
    let j = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      let fj = Float.of_int !j in
      let term = !sign *. exp (-2.0 *. fj *. fj *. lambda *. lambda) in
      acc := !acc +. term;
      if Float.abs term < 1e-18 || !j > 200 then continue_ := false;
      sign := -. !sign;
      incr j
    done;
    Float.max 0.0 (Float.min 1.0 (2.0 *. !acc))
  end

let binomial_log_pmf ~n ~p k =
  if n < 0 then invalid_arg "Gof.binomial_log_pmf: n >= 0 required";
  if p < 0.0 || p > 1.0 then invalid_arg "Gof.binomial_log_pmf: p outside [0,1]";
  if k < 0 || k > n then neg_infinity
  else if p = 0.0 then if k = 0 then 0.0 else neg_infinity
  else if p = 1.0 then if k = n then 0.0 else neg_infinity
  else begin
    let fn = Float.of_int n and fk = Float.of_int k in
    log_gamma (fn +. 1.0) -. log_gamma (fk +. 1.0)
    -. log_gamma (fn -. fk +. 1.0)
    +. (fk *. log p)
    +. ((fn -. fk) *. log (1.0 -. p))
  end

(* ---------- tests ---------- *)

let pearson_chi2 ?(alpha = default_alpha) ?df ~observed ~expected () =
  let k = Array.length observed in
  if k <> Array.length expected then
    invalid_arg "Gof.pearson_chi2: observed/expected length mismatch";
  if k < 2 then invalid_arg "Gof.pearson_chi2: need at least two cells";
  let stat = ref 0.0 in
  for i = 0 to k - 1 do
    if expected.(i) <= 0.0 then
      invalid_arg "Gof.pearson_chi2: expected counts must be positive (pool sparse cells)";
    if observed.(i) < 0 then invalid_arg "Gof.pearson_chi2: negative observed count";
    let d = Float.of_int observed.(i) -. expected.(i) in
    stat := !stat +. (d *. d /. expected.(i))
  done;
  let df = match df with Some d -> d | None -> k - 1 in
  if df < 1 then invalid_arg "Gof.pearson_chi2: df >= 1 required";
  make ~test:"pearson-chi2" ~statistic:!stat ~df ~p_value:(chi2_sf ~df !stat) ~alpha

let pool_low_expected ?(min_expected = 5.0) ~observed ~expected () =
  let k = Array.length observed in
  if k <> Array.length expected then
    invalid_arg "Gof.pool_low_expected: observed/expected length mismatch";
  let keep = ref [] and pooled_o = ref 0 and pooled_e = ref 0.0 and n_pooled = ref 0 in
  for i = k - 1 downto 0 do
    if expected.(i) < min_expected then begin
      pooled_o := !pooled_o + observed.(i);
      pooled_e := !pooled_e +. expected.(i);
      incr n_pooled
    end
    else keep := (observed.(i), expected.(i)) :: !keep
  done;
  if !n_pooled <= 1 then (observed, expected)
  else begin
    let kept = !keep @ [ (!pooled_o, !pooled_e) ] in
    (Array.of_list (List.map fst kept), Array.of_list (List.map snd kept))
  end

let ks_p_value ~effective_n d =
  let en = sqrt effective_n in
  kolmogorov_q ((en +. 0.12 +. (0.11 /. en)) *. d)

let ks1 ?(alpha = default_alpha) ~cdf xs =
  let n = Array.length xs in
  if n < 1 then invalid_arg "Gof.ks1: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let fn = Float.of_int n in
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    let f = cdf sorted.(i) in
    if f < -1e-9 || f > 1.0 +. 1e-9 then invalid_arg "Gof.ks1: cdf outside [0,1]";
    let above = (Float.of_int (i + 1) /. fn) -. f in
    let below = f -. (Float.of_int i /. fn) in
    if above > !d then d := above;
    if below > !d then d := below
  done;
  make ~test:"ks-1sample" ~statistic:!d ~df:0 ~p_value:(ks_p_value ~effective_n:fn !d)
    ~alpha

let ks2 ?(alpha = default_alpha) xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 < 1 || n2 < 1 then invalid_arg "Gof.ks2: empty sample";
  let a = Array.copy xs and b = Array.copy ys in
  Array.sort compare a;
  Array.sort compare b;
  let fn1 = Float.of_int n1 and fn2 = Float.of_int n2 in
  let d = ref 0.0 in
  let i = ref 0 and j = ref 0 in
  while !i < n1 && !j < n2 do
    let x = a.(!i) and y = b.(!j) in
    if x <= y then incr i;
    if y <= x then incr j;
    let diff = Float.abs ((Float.of_int !i /. fn1) -. (Float.of_int !j /. fn2)) in
    if diff > !d then d := diff
  done;
  let effective_n = fn1 *. fn2 /. (fn1 +. fn2) in
  make ~test:"ks-2sample" ~statistic:!d ~df:0 ~p_value:(ks_p_value ~effective_n !d) ~alpha

let binomial_test ?(alpha = default_alpha) ~successes ~trials ~p () =
  if trials < 1 then invalid_arg "Gof.binomial_test: trials >= 1 required";
  if successes < 0 || successes > trials then
    invalid_arg "Gof.binomial_test: successes outside [0, trials]";
  if p < 0.0 || p > 1.0 then invalid_arg "Gof.binomial_test: p outside [0,1]";
  let p_value =
    if p = 0.0 then if successes = 0 then 1.0 else 0.0
    else if p = 1.0 then if successes = trials then 1.0 else 0.0
    else begin
      (* Exact two-sided: total mass of outcomes no more probable than
         the observed one (with a small tolerance against roundoff in
         the tie comparison). *)
      let lp_obs = binomial_log_pmf ~n:trials ~p successes in
      let threshold = lp_obs +. 1e-7 in
      let acc = ref 0.0 in
      for k = 0 to trials do
        let lp = binomial_log_pmf ~n:trials ~p k in
        if lp <= threshold then acc := !acc +. exp lp
      done;
      Float.min 1.0 !acc
    end
  in
  make ~test:"binomial-exact" ~statistic:(Float.of_int successes) ~df:0 ~p_value ~alpha

(* ---------- multiple testing ---------- *)

let bonferroni ~family_alpha ~m =
  if m < 1 then invalid_arg "Gof.bonferroni: m >= 1 required";
  if family_alpha <= 0.0 || family_alpha >= 1.0 then
    invalid_arg "Gof.bonferroni: family_alpha outside (0,1)";
  family_alpha /. Float.of_int m

let benjamini_hochberg ~q pvals =
  if q <= 0.0 || q >= 1.0 then invalid_arg "Gof.benjamini_hochberg: q outside (0,1)";
  let m = Array.length pvals in
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 then invalid_arg "Gof.benjamini_hochberg: p outside [0,1]")
    pvals;
  if m = 0 then [||]
  else begin
    let order = Array.init m (fun i -> i) in
    Array.sort (fun i j -> compare pvals.(i) pvals.(j)) order;
    (* Largest rank k (1-based) with p_(k) <= k q / m; reject ranks <= k. *)
    let cutoff = ref (-1) in
    for rank = 0 to m - 1 do
      if pvals.(order.(rank)) <= Float.of_int (rank + 1) *. q /. Float.of_int m then
        cutoff := rank
    done;
    let rejected = Array.make m false in
    for rank = 0 to !cutoff do
      rejected.(order.(rank)) <- true
    done;
    rejected
  end
