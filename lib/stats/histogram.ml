type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  if bins < 1 then invalid_arg "Histogram.create: bins >= 1";
  if not (hi > lo) then invalid_arg "Histogram.create: need hi > lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. Float.of_int bins;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
  }

let add ~h x =
  if x < h.lo then h.underflow <- h.underflow + 1
  else if x >= h.hi then h.overflow <- h.overflow + 1
  else begin
    let bin = Float.to_int ((x -. h.lo) /. h.width) in
    let bin = Stdlib.min bin (Array.length h.counts - 1) in
    h.counts.(bin) <- h.counts.(bin) + 1
  end

let counts h = Array.copy h.counts
let underflow h = h.underflow
let overflow h = h.overflow

let total h = h.underflow + h.overflow + Array.fold_left ( + ) 0 h.counts

let bin_range h i =
  if i < 0 || i >= Array.length h.counts then invalid_arg "Histogram.bin_range";
  (h.lo +. (Float.of_int i *. h.width), h.lo +. (Float.of_int (i + 1) *. h.width))

let of_array ~bins xs =
  if Array.length xs = 0 then invalid_arg "Histogram.of_array: empty sample";
  let lo = Array.fold_left Float.min infinity xs in
  let hi = Array.fold_left Float.max neg_infinity xs in
  let hi = if hi > lo then hi +. ((hi -. lo) *. 1e-9) else lo +. 1.0 in
  let h = create ~lo ~hi ~bins in
  Array.iter (add ~h) xs;
  h

let pp ppf h =
  let peak = Array.fold_left Stdlib.max 1 h.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_range h i in
      let bar = String.make (c * 40 / peak) '#' in
      Format.fprintf ppf "[%10.3g, %10.3g) %6d %s@." lo hi c bar)
    h.counts;
  if h.underflow > 0 then Format.fprintf ppf "underflow: %d@." h.underflow;
  if h.overflow > 0 then Format.fprintf ppf "overflow: %d@." h.overflow
