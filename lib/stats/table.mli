(** Aligned ASCII tables — the output format of every experiment report. *)

type align = Left | Right

type t

(** [create headers] starts a table with the given column headers
    (non-empty). Columns default to right alignment. *)
val create : ?aligns:align list -> string list -> t

(** [add_row t cells] appends a row; the cell count must match the header
    count. *)
val add_row : t -> string list -> unit

(** [add_rule t] appends a horizontal separator at this position. *)
val add_rule : t -> unit

(** [rows t] is the number of data rows so far. *)
val rows : t -> int

(** [render t] lays the table out with padded columns and a header rule. *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit
