(** Confidence intervals for experiment reports.

    Normal and Student-t intervals use closed-form quantile approximations
    (Acklam's inverse normal, Hill's t approximation) — accurate to ~1e-4,
    far below Monte-Carlo noise. A percentile bootstrap is provided for
    statistics without a CLT handle. *)

type interval = { lo : float; hi : float }

(** [z_quantile p] is the standard normal quantile, [0 < p < 1]. *)
val z_quantile : float -> float

(** [t_quantile ~df p] is the Student-t quantile with [df >= 1] degrees of
    freedom. *)
val t_quantile : df:int -> float -> float

(** [mean_ci ?level s] is the t-interval for the mean of the summarised
    sample (default [level = 0.95]); requires at least two observations. *)
val mean_ci : ?level:float -> Summary.t -> interval

(** [proportion_ci ?level ~successes ~trials ()] is the Wilson score
    interval for a binomial proportion. *)
val proportion_ci : ?level:float -> successes:int -> trials:int -> unit -> interval

(** [bootstrap ?level ?resamples rng xs ~statistic] is the percentile
    bootstrap interval for [statistic] over [xs] (default 1000
    resamples). *)
val bootstrap :
  ?level:float ->
  ?resamples:int ->
  Prng.Rng.t ->
  float array ->
  statistic:(float array -> float) ->
  interval

(** [contains i x] tests membership. *)
val contains : interval -> float -> bool

(** [pp] prints as [[lo, hi]]. *)
val pp : Format.formatter -> interval -> unit
