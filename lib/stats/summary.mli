(** Streaming summary statistics (Welford's algorithm): numerically stable
    mean/variance in one pass, plus extrema. The accumulator every
    experiment uses for its per-configuration trial results. *)

type t

(** [create ()] is an empty accumulator. *)
val create : unit -> t

(** [add t x] folds one observation in. *)
val add : t -> float -> unit

(** [add_int t x] folds an integer observation in. *)
val add_int : t -> int -> unit

(** [count t] is the number of observations. *)
val count : t -> int

(** [mean t] is the sample mean; raises [Invalid_argument] when empty. *)
val mean : t -> float

(** [variance t] is the unbiased sample variance (0 for fewer than two
    observations). *)
val variance : t -> float

(** [stddev t] is [sqrt (variance t)]. *)
val stddev : t -> float

(** [std_error t] is [stddev t /. sqrt (count t)]. *)
val std_error : t -> float

(** [min t] / [max t]; raise when empty. *)
val min : t -> float

val max : t -> float

(** [merge a b] is a fresh accumulator equivalent to having seen both
    streams (Chan's parallel combination). *)
val merge : t -> t -> t

(** [of_array xs] summarises an array in one call. *)
val of_array : float array -> t

(** [pp] prints [mean ± stddev (n=..)]. *)
val pp : Format.formatter -> t -> unit
