(** Goodness-of-fit tests for the statistical conformance suite.

    Every stochastic kernel in this repository (the COBRA/BIPS engines,
    the epidemic processes, the PRNG samplers) is cross-validated against
    an exact distribution in [test/conformance]; this module provides the
    tests those checks are built on. Each test returns a typed {!result}
    carrying the statistic, the p-value and the verdict at a caller-chosen
    significance level, so suites can both gate on {!passed} and log the
    evidence.

    P-values are computed from closed-form or well-converged series:
    chi-square tail probabilities via the regularised incomplete gamma
    function (continued fraction in the far tail, so p-values near 1e-12
    are still accurate), Kolmogorov-Smirnov via the asymptotic Kolmogorov
    series with the Stephens small-sample correction, and the binomial
    test by exact enumeration of the probability mass function. *)

(** [Reject] iff [p_value < alpha]. *)
type verdict = Pass | Reject

type result = {
  test : string;  (** test family, e.g. ["pearson-chi2"] *)
  statistic : float;
  df : int;  (** degrees of freedom; [0] where not applicable *)
  p_value : float;
  alpha : float;  (** the significance level the verdict was taken at *)
  verdict : verdict;
}

(** [passed r] is [r.verdict = Pass]. *)
val passed : result -> bool

(** [all_pass rs] — no result rejected. *)
val all_pass : result list -> bool

(** [pp] prints ["pearson-chi2: stat=... df=... p=... (pass at alpha=...)"]. *)
val pp : Format.formatter -> result -> unit

(** {1 Special functions} (exposed for reuse and direct testing) *)

(** [log_gamma x] is [ln Γ(x)] for [x > 0] (Lanczos approximation,
    relative error below 1e-10). *)
val log_gamma : float -> float

(** [gamma_p a x] is the regularised lower incomplete gamma function
    [P(a, x) = γ(a, x) / Γ(a)]; requires [a > 0], [x >= 0]. *)
val gamma_p : float -> float -> float

(** [gamma_q a x = 1 - gamma_p a x], computed directly by continued
    fraction for large [x] so tiny tail probabilities keep relative
    accuracy. *)
val gamma_q : float -> float -> float

(** [chi2_cdf ~df x] is [P(X <= x)] for a chi-square variable with
    [df >= 1] degrees of freedom. *)
val chi2_cdf : df:int -> float -> float

(** [chi2_sf ~df x] is the survival function [P(X > x)] — the Pearson
    test's p-value. *)
val chi2_sf : df:int -> float -> float

(** [normal_cdf x] is the standard normal CDF Φ(x), via the incomplete
    gamma identity [erfc x = Q(1/2, x²)]. *)
val normal_cdf : float -> float

(** [kolmogorov_q lambda] is the complementary CDF of the Kolmogorov
    distribution, [Q(λ) = 2 Σ_{j>=1} (-1)^{j-1} exp(-2 j² λ²)],
    clamped to [0, 1]. *)
val kolmogorov_q : float -> float

(** [binomial_log_pmf ~n ~p k] is [ln P(Bin(n, p) = k)]; [neg_infinity]
    for zero-probability outcomes. *)
val binomial_log_pmf : n:int -> p:float -> int -> float

(** {1 Tests}

    [alpha] defaults to 1e-6 — the conformance suite's family-wise level;
    callers running several tests divide it further with {!bonferroni}. *)

(** [pearson_chi2 ?alpha ?df ~observed ~expected] is Pearson's chi-square
    test of the observed counts against the expected counts (same length,
    at least two cells, every expected count positive — pool sparse cells
    first with {!pool_low_expected}). [df] defaults to [cells - 1]. *)
val pearson_chi2 :
  ?alpha:float -> ?df:int -> observed:int array -> expected:float array -> unit -> result

(** [pool_low_expected ?min_expected ~observed ~expected] merges every
    cell whose expected count is below [min_expected] (default 5.0) into
    one pooled tail cell appended last, returning the reduced arrays —
    the standard validity repair for chi-square on long-tailed supports.
    Arrays are returned unchanged when no cell is sparse; the pooled cell
    itself may still be sparse if the tail mass is tiny (callers keep it:
    a conservative cell only weakens the test slightly). *)
val pool_low_expected :
  ?min_expected:float ->
  observed:int array ->
  expected:float array ->
  unit ->
  int array * float array

(** [ks1 ?alpha ~cdf xs] is the one-sample Kolmogorov-Smirnov test of the
    sample against the continuous distribution with the given CDF.
    P-value from the asymptotic Kolmogorov distribution with the Stephens
    correction [(√n + 0.12 + 0.11/√n) · D] — good to a few percent for
    [n >= 40]. *)
val ks1 : ?alpha:float -> cdf:(float -> float) -> float array -> result

(** [ks2 ?alpha xs ys] is the two-sample Kolmogorov-Smirnov test. *)
val ks2 : ?alpha:float -> float array -> float array -> result

(** [binomial_test ?alpha ~successes ~trials ~p] is the exact two-sided
    binomial test (sum of all outcomes at most as probable as the one
    observed). O(trials). *)
val binomial_test : ?alpha:float -> successes:int -> trials:int -> p:float -> unit -> result

(** {1 Multiple testing} *)

(** [bonferroni ~family_alpha ~m] is the per-test level [family_alpha/m]
    controlling the family-wise error rate over [m >= 1] tests. *)
val bonferroni : family_alpha:float -> m:int -> float

(** [benjamini_hochberg ~q pvals] marks which hypotheses the
    Benjamini-Hochberg step-up procedure rejects at false-discovery rate
    [q]; the result is aligned with the input order. *)
val benjamini_hochberg : q:float -> float array -> bool array
