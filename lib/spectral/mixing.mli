(** Exact walk-distribution evolution and total-variation mixing.

    The walk distribution after [t] steps is [P^t e_start], computed by
    repeated matvec — no simulation error. On a connected non-bipartite
    regular graph the total-variation distance to uniform decays
    geometrically with ratio λ = max(|λ₂|, |λ_n|); the tests fit the decay
    and recover λ, closing the loop between the spectral estimates and
    actual chain behaviour. *)

(** [walk_distribution g ~steps ~start] is the exact distribution of the
    simple random walk after [steps] steps from [start] (length n,
    sums to 1). *)
val walk_distribution : Graph.Csr.t -> steps:int -> start:int -> float array

(** [tv_from_uniform dist] is [½ Σ |dist_i - 1/n|] ∈ [0, 1]. *)
val tv_from_uniform : float array -> float

(** [tv_trajectory g ~steps ~start] is the TV distance to uniform after
    0, 1, ..., steps steps. *)
val tv_trajectory : Graph.Csr.t -> steps:int -> start:int -> float array

(** [empirical_decay_rate g ~steps ~start] fits [log TV(t)] against [t]
    over the trajectory (dropping values below 1e-12) and returns
    [exp slope] — an estimate of λ. Requires at least two usable
    points. *)
val empirical_decay_rate : Graph.Csr.t -> steps:int -> start:int -> float
