(** Dense float-vector kernels backing the eigensolvers. All operations are
    over [float array]; size mismatches raise [Invalid_argument]. *)

(** [dot x y] is the inner product. *)
val dot : float array -> float array -> float

(** [norm2 x] is the Euclidean norm. *)
val norm2 : float array -> float

(** [scale x a] multiplies [x] by [a] in place. *)
val scale : float array -> float -> unit

(** [axpy ~a ~x ~y] performs [y <- a*x + y] in place. *)
val axpy : a:float -> x:float array -> y:float array -> unit

(** [normalize x] rescales [x] to unit norm in place; raises on the zero
    vector. *)
val normalize : float array -> unit

(** [project_out ~dir x] removes the component of [x] along the unit
    vector [dir], in place. *)
val project_out : dir:float array -> float array -> unit

(** [random rng n] is a uniform random vector on [-1, 1)^n. *)
val random : Prng.Rng.t -> int -> float array

(** [uniform_unit n] is the constant unit vector (1/sqrt n, ...), the walk
    matrix's top eigenvector on regular graphs. *)
val uniform_unit : int -> float array
