(* Sturm count: the number of negative values of the sequence
   d_1 = a_1 - x,  d_i = a_i - x - b_{i-1}^2 / d_{i-1}
   equals the number of eigenvalues below x. Zero pivots are nudged by a
   tiny epsilon, the standard safeguard. *)
let count_below ~diag ~off x =
  let m = Array.length diag in
  if Array.length off <> max 0 (m - 1) then
    invalid_arg "Tridiag: off-diagonal length must be m - 1";
  let tiny = 1e-300 in
  let count = ref 0 in
  let d = ref 1.0 in
  for i = 0 to m - 1 do
    let b2 = if i = 0 then 0.0 else off.(i - 1) *. off.(i - 1) in
    d := diag.(i) -. x -. (b2 /. !d);
    if Float.abs !d < tiny then d := -.tiny;
    if !d < 0.0 then incr count
  done;
  !count

let eigenvalues ~diag ~off =
  let m = Array.length diag in
  if m = 0 then [||]
  else begin
    (* Gershgorin interval containing the whole spectrum. *)
    let lo = ref infinity and hi = ref neg_infinity in
    for i = 0 to m - 1 do
      let radius =
        (if i > 0 then Float.abs off.(i - 1) else 0.0)
        +. if i < m - 1 then Float.abs off.(i) else 0.0
      in
      lo := Float.min !lo (diag.(i) -. radius);
      hi := Float.max !hi (diag.(i) +. radius)
    done;
    let kth k =
      (* Smallest x such that count_below x >= k + 1, by bisection. *)
      let a = ref !lo and b = ref (!hi +. 1e-12) in
      for _ = 0 to 200 do
        let mid = 0.5 *. (!a +. !b) in
        if count_below ~diag ~off mid > k then b := mid else a := mid
      done;
      0.5 *. (!a +. !b)
    in
    Array.init m kth
  end
