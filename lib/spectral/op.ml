type t = { n : int; apply : x:float array -> y:float array -> unit }

let walk_matrix g =
  let n = Graph.Csr.n_vertices g in
  let offsets = Graph.Csr.unsafe_offsets g in
  let adjacency = Graph.Csr.unsafe_adjacency g in
  let apply ~x ~y =
    if Array.length x <> n || Array.length y <> n then
      invalid_arg "Op.walk_matrix: size mismatch";
    for v = 0 to n - 1 do
      let lo = offsets.(v) and hi = offsets.(v + 1) in
      let acc = ref 0.0 in
      for i = lo to hi - 1 do
        acc := !acc +. Array.unsafe_get x (Array.unsafe_get adjacency i)
      done;
      y.(v) <- (if hi > lo then !acc /. Float.of_int (hi - lo) else 0.0)
    done
  in
  { n; apply }

let shift_scale op ~alpha ~beta =
  let apply ~x ~y =
    op.apply ~x ~y;
    for i = 0 to op.n - 1 do
      y.(i) <- (alpha *. y.(i)) +. (beta *. x.(i))
    done
  in
  { n = op.n; apply }

let apply op x =
  let y = Array.make op.n 0.0 in
  op.apply ~x ~y;
  y
