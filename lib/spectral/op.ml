type t = { n : int; apply : x:float array -> y:float array -> unit }

(* One inner loop per topology backend, selected once at operator
   construction: the heap path keeps its direct int-array loads, the
   off-heap path reads the int32 Bigarrays, and the implicit path
   enumerates neighbours arithmetically. The matvec is the entire cost of
   the eigensolvers, so the per-element dispatch a generic accessor would
   pay is hoisted out here. *)

let heap_apply g n ~x ~y =
  let offsets = Graph.Csr.unsafe_offsets g in
  let adjacency = Graph.Csr.unsafe_adjacency g in
  for v = 0 to n - 1 do
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    let acc = ref 0.0 in
    for i = lo to hi - 1 do
      acc := !acc +. Array.unsafe_get x (Array.unsafe_get adjacency i)
    done;
    y.(v) <- (if hi > lo then !acc /. Float.of_int (hi - lo) else 0.0)
  done

let big_apply g n ~x ~y =
  let offsets = Graph.Bigcsr.unsafe_offsets g in
  let adjacency = Graph.Bigcsr.unsafe_adjacency g in
  let get (a : Graph.Bigcsr.arr) i = Int32.to_int (Bigarray.Array1.unsafe_get a i) in
  for v = 0 to n - 1 do
    let lo = get offsets v and hi = get offsets (v + 1) in
    let acc = ref 0.0 in
    for i = lo to hi - 1 do
      acc := !acc +. Array.unsafe_get x (get adjacency i)
    done;
    y.(v) <- (if hi > lo then !acc /. Float.of_int (hi - lo) else 0.0)
  done

let implicit_apply g n ~x ~y =
  for v = 0 to n - 1 do
    let d = Graph.Implicit.degree g v in
    let acc = ref 0.0 in
    Graph.Implicit.iter g v ~f:(fun w -> acc := !acc +. Array.unsafe_get x w);
    y.(v) <- (if d > 0 then !acc /. Float.of_int d else 0.0)
  done

let walk_matrix view =
  let n = Graph.View.n_vertices view in
  let inner =
    match Graph.View.repr view with
    | Graph.View.Heap g -> heap_apply g n
    | Graph.View.Big g -> big_apply g n
    | Graph.View.Implicit g -> implicit_apply g n
  in
  let apply ~x ~y =
    if Array.length x <> n || Array.length y <> n then
      invalid_arg "Op.walk_matrix: size mismatch";
    inner ~x ~y
  in
  { n; apply }

let shift_scale op ~alpha ~beta =
  let apply ~x ~y =
    op.apply ~x ~y;
    for i = 0 to op.n - 1 do
      y.(i) <- (alpha *. y.(i)) +. (beta *. x.(i))
    done
  in
  { n = op.n; apply }

let apply op x =
  let y = Array.make op.n 0.0 in
  op.apply ~x ~y;
  y
