module Bitset = Dstruct.Bitset

let cut_and_volume g ~mem =
  (* (edges crossing, volume of S) where S = {v | mem v}. *)
  let cut = ref 0 and vol = ref 0 in
  for v = 0 to Graph.Csr.n_vertices g - 1 do
    if mem v then begin
      vol := !vol + Graph.Csr.degree g v;
      Graph.Csr.iter_neighbours g v ~f:(fun u -> if not (mem u) then incr cut)
    end
  done;
  (!cut, !vol)

let cut_conductance g subset =
  let n = Graph.Csr.n_vertices g in
  if Bitset.capacity subset <> n then invalid_arg "Cheeger: subset/graph size mismatch";
  let total_vol = 2 * Graph.Csr.n_edges g in
  let cut, vol = cut_and_volume g ~mem:(Bitset.mem subset) in
  let small = min vol (total_vol - vol) in
  if small = 0 then invalid_arg "Cheeger.cut_conductance: zero-volume side";
  Float.of_int cut /. Float.of_int small

let conductance_exact g =
  let n = Graph.Csr.n_vertices g in
  if n > 20 then invalid_arg "Cheeger.conductance_exact: at most 20 vertices";
  if Graph.Csr.n_edges g = 0 then invalid_arg "Cheeger.conductance_exact: no edges";
  let total_vol = 2 * Graph.Csr.n_edges g in
  let best = ref infinity in
  (* Fix vertex 0 outside S to halve the enumeration (φ is symmetric in
     S vs its complement). *)
  for mask = 1 to (1 lsl (n - 1)) - 1 do
    let mem v = v > 0 && mask land (1 lsl (v - 1)) <> 0 in
    let cut, vol = cut_and_volume g ~mem in
    if vol > 0 && vol <= total_vol / 2 then begin
      let phi = Float.of_int cut /. Float.of_int vol in
      if phi < !best then best := phi
    end
    else if vol > total_vol / 2 && total_vol - vol > 0 then begin
      let phi = Float.of_int cut /. Float.of_int (total_vol - vol) in
      if phi < !best then best := phi
    end
  done;
  !best

let cheeger_lower ~lambda_2 = (1.0 -. lambda_2) /. 2.0

let cheeger_upper ~lambda_2 = sqrt (2.0 *. (1.0 -. lambda_2))
