type result = { value : float; iterations : int; residual : float }

let require_regular g name =
  match Graph.View.regularity g with
  | Some r when r > 0 -> r
  | _ -> invalid_arg (name ^ ": requires a regular graph with positive degree")

let dominant ?(tol = 1e-9) ?(max_iter = 100_000) ?(deflate = []) rng op =
  let n = op.Op.n in
  if n = 0 then invalid_arg "Power.dominant: empty operator";
  let x = Vec.random rng n in
  List.iter (fun dir -> Vec.project_out ~dir x) deflate;
  (try Vec.normalize x
   with Invalid_argument _ ->
     (* The random vector was (numerically) inside the deflated span;
        perturb deterministically. *)
     x.(0) <- 1.0;
     List.iter (fun dir -> Vec.project_out ~dir x) deflate;
     Vec.normalize x);
  let y = Array.make n 0.0 in
  let rec iterate k prev =
    op.Op.apply ~x ~y;
    List.iter (fun dir -> Vec.project_out ~dir y) deflate;
    let value = Vec.dot x y in
    (* residual = || y - value * x ||, cheap since y is about to be reused *)
    let res = ref 0.0 in
    for i = 0 to n - 1 do
      let d = y.(i) -. (value *. x.(i)) in
      res := !res +. (d *. d)
    done;
    let residual = sqrt !res in
    let ny = Vec.norm2 y in
    if ny = 0.0 then { value = 0.0; iterations = k; residual = 0.0 }
    else begin
      Array.blit y 0 x 0 n;
      Vec.scale x (1.0 /. ny);
      if k >= max_iter || (k > 4 && Float.abs (value -. prev) <= tol && residual <= sqrt tol)
      then { value; iterations = k; residual }
      else iterate (k + 1) value
    end
  in
  iterate 1 infinity

let lambda_2 ?tol ?max_iter rng g =
  ignore (require_regular g "Power.lambda_2");
  let n = Graph.View.n_vertices g in
  let op = Op.shift_scale (Op.walk_matrix g) ~alpha:0.5 ~beta:0.5 in
  let r = dominant ?tol ?max_iter ~deflate:[ Vec.uniform_unit n ] rng op in
  (* Undo the affine map mu = (lambda + 1) / 2. *)
  { r with value = (2.0 *. r.value) -. 1.0 }

let lambda_min ?tol ?max_iter rng g =
  ignore (require_regular g "Power.lambda_min");
  let op = Op.shift_scale (Op.walk_matrix g) ~alpha:(-0.5) ~beta:0.5 in
  let r = dominant ?tol ?max_iter rng op in
  (* Undo mu = (1 - lambda) / 2. *)
  { r with value = 1.0 -. (2.0 *. r.value) }

let lambda_max ?tol ?max_iter rng g =
  let l2 = (lambda_2 ?tol ?max_iter rng g).value in
  let ln = (lambda_min ?tol ?max_iter rng g).value in
  Float.max (Float.abs l2) (Float.abs ln)
