let pi = 4.0 *. atan 1.0

let complete n =
  if n < 2 then invalid_arg "Closed_form.complete: n >= 2";
  1.0 /. Float.of_int (n - 1)

let cycle n =
  if n < 3 then invalid_arg "Closed_form.cycle: n >= 3";
  let best = ref 0.0 in
  for j = 1 to n - 1 do
    let v = Float.abs (cos (2.0 *. pi *. Float.of_int j /. Float.of_int n)) in
    if v > !best then best := v
  done;
  !best

let signed_hypercube d =
  if d < 1 then invalid_arg "Closed_form.hypercube: d >= 1";
  (1.0 -. (2.0 /. Float.of_int d), -1.0)

let hypercube d =
  let l2, ln = signed_hypercube d in
  Float.max (Float.abs l2) (Float.abs ln)

let folded_hypercube d =
  if d < 2 then invalid_arg "Closed_form.folded_hypercube: d >= 2";
  let best = ref 0.0 in
  for k = 1 to d do
    let v =
      Float.abs
        (Float.of_int (d - (2 * k)) +. (if k mod 2 = 0 then 1.0 else -1.0))
      /. Float.of_int (d + 1)
    in
    if v > !best then best := v
  done;
  !best

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Closed_form.complete_bipartite: parts >= 1";
  1.0

(* Eigenvalue j of the circulant adjacency: Σ_o 2cos(2π o j / n), except
   the antipodal offset (2o = n) contributes cos(π j) = (-1)^j once. *)
let circulant_eigen n offsets j =
  let r = ref 0 and acc = ref 0.0 in
  List.iter
    (fun o ->
      let angle = 2.0 *. pi *. Float.of_int (o * j) /. Float.of_int n in
      if 2 * o = n then begin
        acc := !acc +. cos angle;
        incr r
      end
      else begin
        acc := !acc +. (2.0 *. cos angle);
        r := !r + 2
      end)
    offsets;
  !acc /. Float.of_int !r

let signed_circulant n offsets =
  if offsets = [] then invalid_arg "Closed_form.circulant: empty offsets";
  let l2 = ref neg_infinity and ln = ref infinity in
  for j = 1 to n - 1 do
    let v = circulant_eigen n offsets j in
    if v > !l2 then l2 := v;
    if v < !ln then ln := v
  done;
  (!l2, !ln)

let circulant n offsets =
  let l2, ln = signed_circulant n offsets in
  Float.max (Float.abs l2) (Float.abs ln)

let torus dims =
  Array.iter
    (fun d -> if d < 3 then invalid_arg "Closed_form.torus: sides >= 3")
    dims;
  let k = Array.length dims in
  if k = 0 then invalid_arg "Closed_form.torus: empty dims";
  (* Factor eigenvalues: cycle C_d has cos(2π j / d). The torus walk
     matrix is the unweighted average of the factors' walk matrices (all
     factors are 2-regular), so its eigenvalues are averages over one
     index choice per factor. *)
  let n = Array.fold_left ( * ) 1 dims in
  let l2 = ref neg_infinity and ln = ref infinity in
  let idx = Array.make k 0 in
  for code = 0 to n - 1 do
    let rest = ref code in
    for i = 0 to k - 1 do
      idx.(i) <- !rest mod dims.(i);
      rest := !rest / dims.(i)
    done;
    if Array.exists (fun j -> j <> 0) idx then begin
      let acc = ref 0.0 in
      for i = 0 to k - 1 do
        acc := !acc +. cos (2.0 *. pi *. Float.of_int idx.(i) /. Float.of_int dims.(i))
      done;
      let v = !acc /. Float.of_int k in
      if v > !l2 then l2 := v;
      if v < !ln then ln := v
    end
  done;
  Float.max (Float.abs !l2) (Float.abs !ln)

let star n =
  if n < 2 then invalid_arg "Closed_form.star: n >= 2";
  1.0
