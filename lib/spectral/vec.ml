let check x y = if Array.length x <> Array.length y then invalid_arg "Vec: size mismatch"

let dot x y =
  check x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let scale x a =
  for i = 0 to Array.length x - 1 do
    x.(i) <- x.(i) *. a
  done

let axpy ~a ~x ~y =
  check x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let normalize x =
  let n = norm2 x in
  if n = 0.0 then invalid_arg "Vec.normalize: zero vector";
  scale x (1.0 /. n)

let project_out ~dir x =
  let c = dot dir x in
  axpy ~a:(-.c) ~x:dir ~y:x

let random rng n = Array.init n (fun _ -> Prng.Rng.float_range rng ~lo:(-1.0) ~hi:1.0)

let uniform_unit n =
  if n <= 0 then invalid_arg "Vec.uniform_unit: n must be positive";
  Array.make n (1.0 /. sqrt (Float.of_int n))
