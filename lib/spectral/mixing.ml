(* Forward evolution of a distribution: y(u) = Σ_{v ∈ N(u)} x(v)/deg(v)
   (i.e. x^T P). For regular graphs this coincides with the symmetric
   operator in {!Op}, but it is the correct action on any graph. *)
let forward_step g ~x ~y =
  let n = Graph.Csr.n_vertices g in
  Array.fill y 0 n 0.0;
  for v = 0 to n - 1 do
    let mass = x.(v) in
    if mass > 0.0 then begin
      let share = mass /. Float.of_int (Graph.Csr.degree g v) in
      Graph.Csr.iter_neighbours g v ~f:(fun u -> y.(u) <- y.(u) +. share)
    end
  done

let walk_distribution g ~steps ~start =
  let n = Graph.Csr.n_vertices g in
  if start < 0 || start >= n then invalid_arg "Mixing: start out of range";
  if steps < 0 then invalid_arg "Mixing: steps >= 0";
  let x = Array.make n 0.0 in
  x.(start) <- 1.0;
  let y = Array.make n 0.0 in
  let cur = ref x and nxt = ref y in
  for _ = 1 to steps do
    forward_step g ~x:!cur ~y:!nxt;
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp
  done;
  Array.copy !cur

let tv_from_uniform dist =
  let n = Array.length dist in
  if n = 0 then invalid_arg "Mixing.tv_from_uniform: empty distribution";
  let u = 1.0 /. Float.of_int n in
  0.5 *. Array.fold_left (fun acc p -> acc +. Float.abs (p -. u)) 0.0 dist

let tv_trajectory g ~steps ~start =
  let n = Graph.Csr.n_vertices g in
  if start < 0 || start >= n then invalid_arg "Mixing: start out of range";
  if steps < 0 then invalid_arg "Mixing: steps >= 0";
  (* TV is measured against uniform, the stationary law of regular
     graphs; forward evolution itself is generic. *)
  (match Graph.Csr.regularity g with
  | Some r when r > 0 -> ()
  | _ -> invalid_arg "Mixing.tv_trajectory: requires a regular graph");
  let x = Array.make n 0.0 in
  x.(start) <- 1.0;
  let y = Array.make n 0.0 in
  let cur = ref x and nxt = ref y in
  let out = Array.make (steps + 1) 0.0 in
  out.(0) <- tv_from_uniform !cur;
  for t = 1 to steps do
    forward_step g ~x:!cur ~y:!nxt;
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp;
    out.(t) <- tv_from_uniform !cur
  done;
  out

let empirical_decay_rate g ~steps ~start =
  let tv = tv_trajectory g ~steps ~start in
  let points =
    Array.to_list tv
    |> List.mapi (fun t v -> (Float.of_int t, v))
    |> List.filter (fun (_, v) -> v > 1e-12)
  in
  if List.length points < 2 then
    invalid_arg "Mixing.empirical_decay_rate: trajectory too short";
  (* least-squares slope of log TV vs t, inlined to keep this library
     independent of the stats toolkit *)
  let xs = List.map fst points in
  let ys = List.map (fun (_, v) -> log v) points in
  let n = Float.of_int (List.length points) in
  let mean l = List.fold_left ( +. ) 0.0 l /. n in
  let mx = mean xs and my = mean ys in
  let sxy =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let sxx = List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.0)) 0.0 xs in
  exp (sxy /. sxx)
