(** Known walk-matrix spectra for structured families — the oracles the
    numerical eigensolvers are tested against, and cheap λ sources for the
    experiment harness.

    All functions return λ = max(|λ₂|, |λ_n|), the quantity the paper's
    bounds use, unless stated otherwise. *)

(** [complete n] — K_n has walk eigenvalues {1, -1/(n-1)}, so
    λ = 1/(n-1); [n >= 2]. *)
val complete : int -> float

(** [cycle n] — C_n has eigenvalues cos(2πj/n); λ = 1 for even [n]
    (bipartite), else [cos(π/n)]... precisely [max_j>=1 |cos(2πj/n)|]. *)
val cycle : int -> float

(** [hypercube d] — Q_d has eigenvalues 1 - 2i/d; λ = 1 (bipartite) for
    [d >= 1]. [signed_hypercube] returns (λ₂, λ_n) = (1 - 2/d, -1). *)
val hypercube : int -> float

val signed_hypercube : int -> float * float

(** [folded_hypercube d] — FQ_d has walk eigenvalues
    [((d - 2k) + (-1)^k)/(d+1)] for k = 0..d; λ = (d-1)/(d+1); [d >= 2]. *)
val folded_hypercube : int -> float

(** [complete_bipartite] — K_{a,b} has eigenvalues {1, 0, -1}; λ = 1. *)
val complete_bipartite : int -> int -> float

(** [circulant n offsets] — eigenvalues are
    [(Σ_o w_o(j)) / r] for j = 0 .. n-1 where [w_o(j) = 2cos(2π o j / n)]
    (halved when 2o = n); computed by direct evaluation. *)
val circulant : int -> int list -> float

(** [signed_circulant n offsets] is (λ₂, λ_n) for the circulant. *)
val signed_circulant : int -> int list -> float * float

(** [torus dims] — the product of cycles has eigenvalues equal to averages
    of the factor eigenvalues (the walk matrix of a Cartesian product of
    regular graphs is the weighted average of the factors' walk matrices);
    computed by direct enumeration over the eigenvalue grid. Sides must be
    [>= 3] (so the torus is 2-regular in each dimension). Enumeration is
    O(Π dims), fine for experiment-sized tori. *)
val torus : int array -> float

(** [star n] — λ of the star's walk matrix is 1 (bipartite); exposed for
    completeness of the oracle set. *)
val star : int -> float
