(** Eigenvalues of symmetric tridiagonal matrices by Sturm-sequence
    bisection. Sizes here are Lanczos step counts (tens), so the O(m² log ε)
    cost is negligible and the method is unconditionally robust. *)

(** [eigenvalues ~diag ~off] returns all eigenvalues in increasing order of
    the symmetric tridiagonal matrix with diagonal [diag] (length m) and
    off-diagonal [off] (length m - 1). *)
val eigenvalues : diag:float array -> off:float array -> float array

(** [count_below ~diag ~off x] is the number of eigenvalues strictly below
    [x] (Sturm count). *)
val count_below : diag:float array -> off:float array -> float -> int
