(** Lanczos tridiagonalisation with full reorthogonalisation.

    An independent route to the walk-matrix spectrum, used to cross-check
    {!Power} (and vice versa): one Krylov sweep yields Ritz values
    approximating both the second-largest and the smallest eigenvalue. *)

type extremes = {
  lambda_2 : float;  (** largest eigenvalue below the trivial λ₁ = 1 *)
  lambda_min : float;  (** most negative eigenvalue λ_n *)
  ritz : float array;  (** all Ritz values, increasing *)
}

(** [run ?steps ?deflate rng op] performs at most [steps] Lanczos
    iterations (default [min (n-1) 100]) on the symmetric operator [op],
    re-orthogonalising against the whole basis and against the [deflate]
    vectors, and returns the Ritz values of the tridiagonal matrix. *)
val run :
  ?steps:int -> ?deflate:float array list -> Prng.Rng.t -> Op.t -> float array

(** [extremes ?steps rng g] estimates λ₂ and λ_n of the walk matrix of the
    connected regular graph [g] in one sweep (the constant eigenvector is
    deflated). *)
val extremes : ?steps:int -> Prng.Rng.t -> Graph.View.t -> extremes

(** [lambda_max ?steps rng g] is [max(|λ₂|, |λ_n|)] via {!extremes}. *)
val lambda_max : ?steps:int -> Prng.Rng.t -> Graph.View.t -> float
