(** Spectral gap and the paper's theory-bound arithmetic, shared by the
    experiment harness and the CLI. *)

(** How λ was obtained; carried along so experiment reports can say so. *)
type method_ = Power | Lanczos_method | Closed_form of string

type t = {
  lambda : float;  (** λ = max(|λ₂|, |λ_n|) *)
  gap : float;  (** 1 - λ *)
  method_ : method_;
}

(** [estimate ?steps rng g] computes λ for a connected regular graph by
    power iteration cross-checked against a Lanczos sweep; the two must
    agree within [5e-4] (else the tighter Lanczos value is used and a
    warning is logged). *)
val estimate : ?steps:int -> Prng.Rng.t -> Graph.View.t -> t

(** [of_lambda ?method_ lambda] wraps an externally known λ. *)
val of_lambda : ?method_:method_ -> float -> t

(** [theorem1_bound ~n t] is [log n / gap³] — the paper's T for Theorems 1
    and 2 (up to the hidden constant). *)
val theorem1_bound : n:int -> t -> float

(** [satisfies_gap_condition ~n t] checks the paper's premise
    [1 - λ >> sqrt (log n / n)]; returns the ratio
    [gap / sqrt (log n / n)] (values well above 1 satisfy it). *)
val satisfies_gap_condition : n:int -> t -> float

(** [growth_factor ~n t ~a] is Lemma 1's per-step expected growth lower
    bound [1 + (1 - λ²)(1 - a/n)] for an infected set of size [a]. *)
val growth_factor : n:int -> t -> a:int -> float

(** [mixing_time_upper ~n ?eps t] is the standard upper bound
    [ln(n/eps) / (1 - λ)] on the lazy-walk ε-mixing time (default
    [eps = 1e-2]) — context for how COBRA's O(log n / gap³) compares to
    single-walk mixing on the same graph. *)
val mixing_time_upper : n:int -> ?eps:float -> t -> float

(** [pp_method] and [pp] printers. *)
val pp_method : Format.formatter -> method_ -> unit

val pp : Format.formatter -> t -> unit
