(** Conductance and the Cheeger inequality.

    The paper's "expander" hypothesis is spectral (a gap [1 - λ₂]); the
    combinatorial counterpart is conductance
    [φ(G) = min_{0 < vol(S) <= vol(V)/2} e(S, S̄) / vol(S)], and the two
    are tied by Cheeger's inequality [(1 - λ₂)/2 <= φ <= sqrt(2 (1 - λ₂))].
    This module computes φ exactly on small graphs (exhaustive over
    subsets) — used by the tests to certify both the eigensolvers and the
    generators' expansion claims. *)

(** [conductance_exact g] is φ(G) by exhaustion over all 2^n vertex
    subsets; [n <= 20] enforced, and the graph must have at least one
    edge. O(2^n · n · avg-degree). *)
val conductance_exact : Graph.Csr.t -> float

(** [cut_conductance g subset] is [e(S, S̄) / min(vol S, vol S̄)] for a
    specific subset — the objective [conductance_exact] minimises.
    Raises if the subset or its complement is empty or has zero volume. *)
val cut_conductance : Graph.Csr.t -> Dstruct.Bitset.t -> float

(** [cheeger_lower ~lambda_2] is [(1 - λ₂) / 2], a lower bound on φ. *)
val cheeger_lower : lambda_2:float -> float

(** [cheeger_upper ~lambda_2] is [sqrt (2 (1 - λ₂))], an upper bound on
    φ. *)
val cheeger_upper : lambda_2:float -> float
