type extremes = { lambda_2 : float; lambda_min : float; ritz : float array }

let run ?steps ?(deflate = []) rng op =
  let n = op.Op.n in
  if n = 0 then invalid_arg "Lanczos.run: empty operator";
  let steps = match steps with Some s -> max 1 s | None -> min (max 1 (n - 1)) 100 in
  let q0 = Vec.random rng n in
  List.iter (fun dir -> Vec.project_out ~dir q0) deflate;
  Vec.normalize q0;
  let basis = ref [ q0 ] in
  let alpha = ref [] and beta = ref [] in
  let w = Array.make n 0.0 in
  let rec go j q q_prev b_prev =
    op.Op.apply ~x:q ~y:w;
    let a = Vec.dot q w in
    alpha := a :: !alpha;
    if j < steps then begin
      (* w <- w - a q - b_prev q_prev, then full reorthogonalisation. *)
      Vec.axpy ~a:(-.a) ~x:q ~y:w;
      (match q_prev with
      | Some qp -> Vec.axpy ~a:(-.b_prev) ~x:qp ~y:w
      | None -> ());
      List.iter (fun dir -> Vec.project_out ~dir w) deflate;
      List.iter (fun v -> Vec.project_out ~dir:v w) !basis;
      let b = Vec.norm2 w in
      if b < 1e-12 then ()
      else begin
        let q_next = Array.map (fun x -> x /. b) w in
        beta := b :: !beta;
        basis := q_next :: !basis;
        go (j + 1) q_next (Some q) b
      end
    end
  in
  go 1 q0 None 0.0;
  let diag = Array.of_list (List.rev !alpha) in
  let off = Array.of_list (List.rev !beta) in
  Tridiag.eigenvalues ~diag ~off

let extremes ?steps rng g =
  (match Graph.View.regularity g with
  | Some r when r > 0 -> ()
  | _ -> invalid_arg "Lanczos.extremes: requires a regular graph");
  let n = Graph.View.n_vertices g in
  let op = Op.walk_matrix g in
  let ritz = run ?steps ~deflate:[ Vec.uniform_unit n ] rng op in
  let m = Array.length ritz in
  if m = 0 then invalid_arg "Lanczos.extremes: no Ritz values";
  { lambda_2 = ritz.(m - 1); lambda_min = ritz.(0); ritz }

let lambda_max ?steps rng g =
  let e = extremes ?steps rng g in
  Float.max (Float.abs e.lambda_2) (Float.abs e.lambda_min)
