(** Deflated power iteration for the walk-matrix spectrum of regular
    graphs.

    The walk matrix [P] of a connected r-regular graph is symmetric with
    eigenvalues [1 = λ₁ > λ₂ >= ... >= λ_n >= -1]. We recover:

    - λ₂ as the dominant eigenvalue of [(P + I)/2] after deflating the
      known top eigenvector (the constant vector) — the affine map makes
      the target spectrum non-negative so the dominant-modulus eigenvalue
      is the dominant-value one;
    - λ_n from the dominant eigenvalue of [(I - P)/2], whose spectrum is
      [(1 - λ_i)/2 ∈ [0, 1]] with the largest value attained at λ_n.

    [lambda_max = max(|λ₂|, |λ_n|)] is the paper's λ. *)

type result = {
  value : float;  (** eigenvalue estimate (Rayleigh quotient) *)
  iterations : int;  (** matvecs spent *)
  residual : float;  (** ‖M x − value·x‖₂ at termination *)
}

(** [dominant ?tol ?max_iter ?deflate rng op] estimates the dominant
    eigenvalue of the symmetric operator [op], deflating the given unit
    vectors from every iterate. Defaults: [tol = 1e-9], scaled by spectral
    radius; [max_iter = 100_000]. *)
val dominant :
  ?tol:float ->
  ?max_iter:int ->
  ?deflate:float array list ->
  Prng.Rng.t ->
  Op.t ->
  result

(** [lambda_2 ?tol ?max_iter rng g] estimates λ₂ of the walk matrix of the
    connected regular graph [g]. Raises [Invalid_argument] if [g] is not
    regular. *)
val lambda_2 : ?tol:float -> ?max_iter:int -> Prng.Rng.t -> Graph.View.t -> result

(** [lambda_min ?tol ?max_iter rng g] estimates λ_n (the most negative
    eigenvalue). *)
val lambda_min : ?tol:float -> ?max_iter:int -> Prng.Rng.t -> Graph.View.t -> result

(** [lambda_max ?tol ?max_iter rng g] is [max(|λ₂|, |λ_n|)] — the paper's
    λ. *)
val lambda_max : ?tol:float -> ?max_iter:int -> Prng.Rng.t -> Graph.View.t -> float
