(** Matrix-free linear operators on graph vertex space.

    The eigensolvers only need [y <- M x]; operators are closures over the
    CSR arrays, so no matrix is ever materialised. *)

type t = { n : int; apply : x:float array -> y:float array -> unit }

(** [walk_matrix g] is the simple-random-walk transition matrix
    [P = D^{-1} A]. Symmetric exactly when [g] is regular (the setting of
    the paper); the symmetric eigensolvers check this. *)
val walk_matrix : Graph.View.t -> t

(** [shift_scale op ~alpha ~beta] is the operator [alpha*M + beta*I]; its
    spectrum is the affine image of [M]'s. Used to map the walk spectrum
    into [0, 1] so that power iteration targets λ₂ or λ_n specifically. *)
val shift_scale : t -> alpha:float -> beta:float -> t

(** [apply op x] allocates and returns [M x]. *)
val apply : t -> float array -> float array
