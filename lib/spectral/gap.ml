let log_src = Logs.Src.create "spectral.gap" ~doc:"Spectral gap estimation"

module Log = (val Logs.src_log log_src : Logs.LOG)

type method_ = Power | Lanczos_method | Closed_form of string

type t = { lambda : float; gap : float; method_ : method_ }

let of_lambda ?(method_ = Closed_form "given") lambda =
  { lambda; gap = 1.0 -. lambda; method_ }

let estimate ?steps rng g =
  let from_power = Power.lambda_max rng g in
  let from_lanczos = Lanczos.lambda_max ?steps rng g in
  if Float.abs (from_power -. from_lanczos) > 5e-4 then begin
    Log.warn (fun m ->
        m "power iteration (%.6f) and Lanczos (%.6f) disagree; using Lanczos"
          from_power from_lanczos);
    { lambda = from_lanczos; gap = 1.0 -. from_lanczos; method_ = Lanczos_method }
  end
  else { lambda = from_power; gap = 1.0 -. from_power; method_ = Power }

let theorem1_bound ~n t =
  if n < 2 then invalid_arg "Gap.theorem1_bound: n >= 2";
  if t.gap <= 0.0 then infinity
  else log (Float.of_int n) /. (t.gap ** 3.0)

let satisfies_gap_condition ~n t =
  if n < 2 then invalid_arg "Gap.satisfies_gap_condition: n >= 2";
  t.gap /. sqrt (log (Float.of_int n) /. Float.of_int n)

let growth_factor ~n t ~a =
  1.0 +. ((1.0 -. (t.lambda *. t.lambda)) *. (1.0 -. (Float.of_int a /. Float.of_int n)))

let mixing_time_upper ~n ?(eps = 1e-2) t =
  if n < 2 then invalid_arg "Gap.mixing_time_upper: n >= 2";
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Gap.mixing_time_upper: eps in (0,1)";
  if t.gap <= 0.0 then infinity else log (Float.of_int n /. eps) /. t.gap

let pp_method ppf = function
  | Power -> Format.pp_print_string ppf "power-iteration"
  | Lanczos_method -> Format.pp_print_string ppf "lanczos"
  | Closed_form s -> Format.fprintf ppf "closed-form(%s)" s

let pp ppf t =
  Format.fprintf ppf "lambda=%.6f gap=%.6f (%a)" t.lambda t.gap pp_method t.method_
