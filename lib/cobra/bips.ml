module Bitset = Dstruct.Bitset
module Intvec = Dstruct.Intvec

type t = {
  graph : Graph.View.t;
  branching : Branching.t;
  mutable source : int;
  mutable infected : Bitset.t; (* A_t *)
  mutable next : Bitset.t; (* A_{t+1} under construction *)
  mutable count : int;
  mutable round : int;
}

let check_source g v =
  if v < 0 || v >= Graph.View.n_vertices g then
    invalid_arg "Bips: source out of range"

let create g ~branching ~source =
  let n = Graph.View.n_vertices g in
  if n = 0 then invalid_arg "Bips.create: empty graph";
  check_source g source;
  let infected = Bitset.create n in
  Bitset.add infected source;
  {
    graph = g;
    branching;
    source;
    infected;
    next = Bitset.create n;
    count = 1;
    round = 0;
  }

let reset p ~source =
  check_source p.graph source;
  Bitset.clear p.infected;
  Bitset.clear p.next;
  Bitset.add p.infected source;
  p.source <- source;
  p.count <- 1;
  p.round <- 0

let graph p = p.graph
let branching p = p.branching
let source p = p.source
let round p = p.round
let infected p u = Bitset.mem p.infected u
let infected_count p = p.count
let infected_set p = Array.of_list (Bitset.to_list p.infected)
let is_saturated p = p.count = Graph.View.n_vertices p.graph

let step p rng =
  let g = p.graph in
  let n = Graph.View.n_vertices g in
  Bitset.clear p.next;
  let count = ref 0 in
  (* [u] scans [0 .. n-1] and [w] comes from the adjacency array, so the
     unchecked bitset operations are in range by construction. *)
  for u = 0 to n - 1 do
    if u = p.source then begin
      Bitset.unsafe_add p.next u;
      incr count
    end
    else begin
      let hit = ref false in
      let check w = if Bitset.unsafe_mem p.infected w then hit := true in
      ignore (Branching.iter_picks p.branching rng g u ~f:check);
      if !hit then begin
        Bitset.unsafe_add p.next u;
        incr count
      end
    end
  done;
  let old = p.infected in
  p.infected <- p.next;
  p.next <- old;
  p.count <- !count;
  p.round <- p.round + 1

let default_cap g = 10_000 + (100 * Graph.View.n_vertices g)

let infection_time ?cap g ~branching ~source rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let p = create g ~branching ~source in
  let rec go () =
    if is_saturated p then Some p.round
    else if p.round >= cap then None
    else begin
      step p rng;
      go ()
    end
  in
  go ()

let size_trajectory ?cap g ~branching ~source rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let p = create g ~branching ~source in
  let sizes = Intvec.create () in
  Intvec.push sizes p.count;
  while (not (is_saturated p)) && p.round < cap do
    step p rng;
    Intvec.push sizes p.count
  done;
  Intvec.to_array sizes
