type comparison = {
  t : int;
  cobra_surviving : int;
  cobra_trials : int;
  bips_absent : int;
  bips_trials : int;
}

let cobra_survival_estimate ?(trials = 1000) g ~branching ~start ~target ~t rng =
  if trials < 1 then invalid_arg "Duality: trials >= 1";
  if t < 0 then invalid_arg "Duality: t >= 0";
  let surviving = ref 0 in
  let p = Process.create g ~branching ~start:[ start ] in
  for _ = 1 to trials do
    Process.reset p ~start:[ start ];
    (* Run exactly t rounds or stop early once the target is hit. *)
    while (not (Process.visited p target)) && Process.round p < t do
      Process.step p rng
    done;
    if not (Process.visited p target) then incr surviving
  done;
  (!surviving, trials)

let bips_absent_estimate ?(trials = 1000) g ~branching ~source ~vertex ~t rng =
  if trials < 1 then invalid_arg "Duality: trials >= 1";
  if t < 0 then invalid_arg "Duality: t >= 0";
  let absent = ref 0 in
  let p = Bips.create g ~branching ~source in
  for _ = 1 to trials do
    Bips.reset p ~source;
    for _ = 1 to t do
      Bips.step p rng
    done;
    if not (Bips.infected p vertex) then incr absent
  done;
  (!absent, trials)

let compare_at ?trials g ~branching ~u ~v ~t rng =
  let cobra_surviving, cobra_trials =
    cobra_survival_estimate ?trials g ~branching ~start:u ~target:v ~t rng
  in
  let bips_absent, bips_trials =
    bips_absent_estimate ?trials g ~branching ~source:v ~vertex:u ~t rng
  in
  { t; cobra_surviving; cobra_trials; bips_absent; bips_trials }

let estimated_rates c =
  ( Float.of_int c.cobra_surviving /. Float.of_int c.cobra_trials,
    Float.of_int c.bips_absent /. Float.of_int c.bips_trials )
