(** Monte-Carlo estimation of the two sides of Theorem 4's duality

    [P̂(Hit_u(v) > t | C_0 = {u}) = P(u ∉ A_t | A_0 = {v})]

    on graphs too large for {!Exact}. Each side is estimated by independent
    trials; the pair of estimates (with trial counts, for the caller's
    confidence intervals) quantifies how closely the identity holds
    empirically — experiment E4. *)

type comparison = {
  t : int;  (** horizon compared at *)
  cobra_surviving : int;  (** trials in which the target was NOT hit by t *)
  cobra_trials : int;
  bips_absent : int;  (** trials in which u was outside A_t *)
  bips_trials : int;
}

(** [cobra_survival_estimate ?trials g ~branching ~start ~target ~t rng] counts
    trials (default 1000) in which a COBRA walk from [start] has not hit
    [target] after [t] rounds. Returns [(surviving, trials)]. *)
val cobra_survival_estimate :
  ?trials:int ->
  Graph.View.t ->
  branching:Branching.t ->
  start:int ->
  target:int ->
  t:int ->
  Prng.Rng.t ->
  int * int

(** [bips_absent_estimate ?trials g ~branching ~source ~vertex ~t rng]
    counts trials in which [vertex ∉ A_t] for a BIPS run with the given
    source. Returns [(absent, trials)]. *)
val bips_absent_estimate :
  ?trials:int ->
  Graph.View.t ->
  branching:Branching.t ->
  source:int ->
  vertex:int ->
  t:int ->
  Prng.Rng.t ->
  int * int

(** [compare_at ?trials g ~branching ~u ~v ~t rng] estimates both sides of
    the duality: COBRA started at [u] hitting [v], BIPS sourced at [v]
    infecting [u]. *)
val compare_at :
  ?trials:int ->
  Graph.View.t ->
  branching:Branching.t ->
  u:int ->
  v:int ->
  t:int ->
  Prng.Rng.t ->
  comparison

(** [estimated_rates c] is [(cobra_rate, bips_rate)] — the two empirical
    probabilities. *)
val estimated_rates : comparison -> float * float
