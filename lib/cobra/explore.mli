(** The unvisited-edge-preferring walk of Berenbrink–Cooper–Friedetzky,
    "Random walks which prefer unvisited edges: exploring high girth
    even degree expanders in linear time" (see PAPERS.md) — the
    linear-time expander-exploration baseline against COBRA cover.

    A single walker keeps a visited mark per {e edge}. At each step it
    looks at its incident edges: if any are unvisited it moves along one
    of those chosen uniformly (one [Rng.int] draw over the unvisited
    slots, in ascending adjacency order), otherwise it moves to a
    uniform random neighbour (one {!Graph.View.random_neighbour} draw).
    Traversing an edge marks it in both directions. On high-girth
    even-degree expanders this covers all vertices in O(n) steps, versus
    Θ(n log n) for the simple walk.

    Ascending adjacency order is a {!Graph.View} backend contract, so
    the unvisited-slot indexing — and hence the full RNG stream — is
    bit-identical across heap/bigarray/implicit backends. The exact
    small-graph oracle is [Exact.explore_position_dist] /
    [Exact.explore_cover_survival] (a DP over (vertex, visited-edge-set)
    states). *)

type t

(** [create g ~start] places the walker; rejects out-of-range [start]. *)
val create : Graph.View.t -> start:int -> t

(** [step t rng] plays one move: uniform among unvisited incident edges
    when one exists, else uniform among all neighbours. *)
val step : t -> Prng.Rng.t -> unit

(** [position t] — the walker's current vertex. *)
val position : t -> int

(** [visited_count t] — vertices visited so far (the start counts). *)
val visited_count : t -> int

(** [edges_traversed t] — distinct (undirected) edges traversed. *)
val edges_traversed : t -> int

(** [round t] — completed steps. *)
val round : t -> int

(** [is_covered t] — every vertex visited at least once. *)
val is_covered : t -> bool

(** [default_cap g] — default round cap for {!cover_time}; matches the
    simple walk's generous cap (the unvisited-edge walk is never slower
    in expectation on the graphs we study). *)
val default_cap : Graph.View.t -> int

(** [cover_time ?cap g ~start rng] runs to vertex cover and returns the
    number of steps; [None] if [cap] steps pass. *)
val cover_time : ?cap:int -> Graph.View.t -> start:int -> Prng.Rng.t -> int option
