(** Coalescing random walks with voting — the {e coalescing} half of the
    coalescing-branching walk.

    [m] walkers start on distinct vertices; each round every occupied
    vertex (a {e cluster} of walkers) moves to one uniformly random
    neighbour, and clusters landing on the same vertex merge for good.
    Identifying each cluster with an opinion makes this the classical
    coalescing-time = consensus-time correspondence of
    Cooper–Elsässer–Ono–Radzik, "Coalescing random walks and voting on
    connected graphs" (see PAPERS.md): consensus is reached exactly when
    one cluster remains.

    As a set-valued chain this is precisely COBRA with branching
    [Fixed 1] — each occupied vertex makes a single pick and the next
    occupied set is the union — so {!Cobra.Exact}'s COBRA engine at
    [k = 1] is its exact oracle ([Exact.coalescing_step_dist],
    [Exact.coalescing_cluster_dist]). Clusters move in increasing vertex
    order, one {!Graph.View.unsafe_random_neighbour} draw each, which
    keeps the stream identical across every topology backend.

    Parity caveat: the chain is synchronous — every cluster moves every
    round — so on a bipartite graph (even cycles, hypercubes) two
    clusters seeded in different colour classes can never occupy the
    same vertex and consensus is unreachable; {!consensus_time} then
    runs to its cap and returns [None]. Use non-bipartite graphs (odd
    cycles, cliques) or same-parity starts when consensus matters. *)

type t

(** [create g ~walkers ~start] places [walkers >= 1] clusters on the
    distinct vertices [(start + i) mod n] for [i = 0 .. walkers - 1];
    rejects [walkers > n] and out-of-range [start]. *)
val create : Graph.View.t -> walkers:int -> start:int -> t

(** [step t rng] plays one round: each occupied vertex, in increasing
    order, draws one uniform neighbour; the new occupied set is the
    union of the draws. *)
val step : t -> Prng.Rng.t -> unit

(** [clusters t] — number of surviving clusters (occupied vertices). *)
val clusters : t -> int

(** [mem t v] — is vertex [v] occupied by a cluster? *)
val mem : t -> int -> bool

(** [walkers t] — the initial cluster count. *)
val walkers : t -> int

(** [merged t] is [walkers t - clusters t]. *)
val merged : t -> int

(** [round t] — completed rounds. *)
val round : t -> int

(** [is_consensus t] — one cluster left (true immediately when
    [walkers = 1]). *)
val is_consensus : t -> bool

(** [default_cap g] — the round cap {!consensus_time} applies by
    default; coalescing can be as slow as meeting times, so it scales
    like the random-walk cap. *)
val default_cap : Graph.View.t -> int

(** [consensus_time ?cap g ~walkers ~start rng] runs to consensus and
    returns the round it was reached; [None] if [cap] rounds pass. *)
val consensus_time :
  ?cap:int -> Graph.View.t -> walkers:int -> start:int -> Prng.Rng.t -> int option
