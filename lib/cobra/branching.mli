(** Branching factors for COBRA and BIPS.

    The paper's main theorems use a fixed branching factor [k = 2] (each
    active vertex pushes to two neighbours, chosen independently with
    replacement). Theorem 3 extends the cover-time bound to fractional
    expected branching [1 + ρ]: one push always, a second with probability
    ρ. Both are instances of this type; a process parameterised by
    [Branching.t] covers every statement in the paper.

    [Distinct k] is this repository's ablation of the paper's
    with-replacement choice: [min k (deg v)] neighbours sampled {e without}
    replacement. Theorem 4's duality proof only needs COBRA's pushes and
    BIPS's contacts to draw from the same per-vertex neighbour-set
    distribution, so it holds verbatim for this variant too — checked
    exactly in the tests and measured in experiment E15. *)

type t =
  | Fixed of int  (** exactly [k >= 1] picks per active vertex per round,
                      uniformly with replacement — the paper's model *)
  | One_plus of float
      (** one pick, plus an extra pick with probability [ρ ∈ (0, 1]] —
          Theorem 3's expected branching factor [1 + ρ] *)
  | Distinct of int
      (** [min k (deg v)] distinct neighbours, uniformly without
          replacement — the sampling-scheme ablation *)

(** [fixed k] is [Fixed k]; requires [k >= 1]. *)
val fixed : int -> t

(** [one_plus rho] is [One_plus rho]; requires [0 < rho <= 1]. *)
val one_plus : float -> t

(** [distinct k] is [Distinct k]; requires [k >= 1]. *)
val distinct : int -> t

(** [cobra_k2] is the paper's headline process, [Fixed 2]. *)
val cobra_k2 : t

(** [expected t] is the nominal expected number of picks per vertex per
    round ([Distinct k] reports [k]; the realised count is capped at the
    vertex degree). *)
val expected : t -> float

(** [max_picks t] is the largest possible number of picks in one round. *)
val max_picks : t -> int

(** [draws t rng] samples the number of picks for one vertex this round
    (for [Distinct k] this is the nominal [k]; callers use {!iter_picks}
    which applies the degree cap). *)
val draws : t -> Prng.Rng.t -> int

(** [iter_picks t rng g v ~f] draws this round's neighbour picks for
    vertex [v] and applies [f] to each — the single sampling routine every
    process engine uses, so all of them agree on each scheme's meaning.
    Returns the number of picks made. *)
val iter_picks : t -> Prng.Rng.t -> Graph.View.t -> int -> f:(int -> unit) -> int

(** [pick_count_distribution t] lists [(count, probability)] pairs of the
    nominal pick count — used by the exact small-graph engine (which
    applies [Distinct]'s degree cap itself). *)
val pick_count_distribution : t -> (int * float) list

(** [infection_probability t p] is the probability that a vertex whose
    picks each independently land in the infected set with probability [p]
    gets infected this round: [1 - (1-p)^k] for [Fixed k],
    [1 - (1-p)(1-ρp)] for [One_plus ρ] (Corollary 1 of the paper).
    Raises [Invalid_argument] for [Distinct] — without replacement the
    probability depends on the integer counts; use
    {!infection_probability_counts}. *)
val infection_probability : t -> float -> float

(** [infection_probability_counts t ~degree ~infected] is the exact
    probability that a vertex of the given [degree], [infected] of whose
    neighbours are infected, gets infected this round — defined for every
    branching ([Distinct k] uses the hypergeometric complement
    [1 - C(degree-infected, k') / C(degree, k')] with
    [k' = min k degree]). *)
val infection_probability_counts : t -> degree:int -> infected:int -> float

(** [pp] prints ["k=2"], ["1+rho (rho=0.25)"] or ["k=2 distinct"]. *)
val pp : Format.formatter -> t -> unit

(** [to_string] is [pp] to a string. *)
val to_string : t -> string

(** [of_string s] parses the CLI argument syntax: [k=<int>] or a bare
    [<int>] for {!Fixed}, [1+<rho>] for {!One_plus} (rho in (0, 1]),
    [distinct=<int>] for {!Distinct}. Case-insensitive; surrounding
    whitespace ignored. *)
val of_string : string -> (t, string) result

(** [to_arg t] is the canonical {!of_string}-parseable form ([to_string]'s
    ["1+rho (rho=0.5)"] is for display only); [of_string (to_arg t) = Ok t]
    for every valid [t]. *)
val to_arg : t -> string
