module Bitset = Dstruct.Bitset

let check g v =
  if v < 0 || v >= Graph.View.n_vertices g then invalid_arg "Rwalk: vertex out of range"

let default_cap g =
  let n = Graph.View.n_vertices g in
  (100 * n * n) + 10_000

(* The walk positions stay in range by construction ([start] is checked
   on entry, every later position is an adjacency entry), so the loops
   below use the unchecked CSR/bitset accessors. *)

let cover_time ?cap g ~start rng =
  check g start;
  let n = Graph.View.n_vertices g in
  let cap = match cap with Some c -> c | None -> default_cap g in
  let seen = Bitset.create n in
  Bitset.add seen start;
  let rec go pos steps remaining =
    if remaining = 0 then Some steps
    else if steps >= cap then None
    else begin
      let next = Graph.View.unsafe_random_neighbour g rng pos in
      let remaining =
        if Bitset.unsafe_mem seen next then remaining
        else begin
          Bitset.unsafe_add seen next;
          remaining - 1
        end
      in
      go next (steps + 1) remaining
    end
  in
  go start 0 (n - 1)

let hitting_time ?cap g ~start ~target rng =
  check g start;
  check g target;
  let cap = match cap with Some c -> c | None -> default_cap g in
  let rec go pos steps =
    if pos = target then Some steps
    else if steps >= cap then None
    else go (Graph.View.unsafe_random_neighbour g rng pos) (steps + 1)
  in
  go start 0

let multi_cover_time ?cap g ~walkers ~start rng =
  check g start;
  if walkers < 1 then invalid_arg "Rwalk.multi_cover_time: walkers >= 1";
  let n = Graph.View.n_vertices g in
  let cap = match cap with Some c -> c | None -> default_cap g in
  let seen = Bitset.create n in
  Bitset.add seen start;
  let positions = Array.make walkers start in
  let remaining = ref (n - 1) in
  let rounds = ref 0 in
  while !remaining > 0 && !rounds < cap do
    for w = 0 to walkers - 1 do
      let next = Graph.View.unsafe_random_neighbour g rng positions.(w) in
      positions.(w) <- next;
      if not (Bitset.unsafe_mem seen next) then begin
        Bitset.unsafe_add seen next;
        decr remaining
      end
    done;
    incr rounds
  done;
  if !remaining = 0 then Some !rounds else None

let positions ?(steps = 1000) g ~start rng =
  check g start;
  if steps < 0 then invalid_arg "Rwalk.positions: steps >= 0";
  let out = Array.make (steps + 1) start in
  for i = 1 to steps do
    out.(i) <- Graph.View.unsafe_random_neighbour g rng out.(i - 1)
  done;
  out
