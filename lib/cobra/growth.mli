(** Lemma 1's expected-growth machinery for the BIPS process.

    For an infected set [A] (containing the source [v]) the conditional
    expectation has the closed form

    [E(|A_{t+1}| | A_t = A) = 1 + Σ_{u ≠ v} P_inf(b, d_A(u) / deg u)]

    where [P_inf] is {!Branching.infection_probability}. Lemma 1 (and
    Corollary 1) lower-bound this by [|A| (1 + c (1 - λ²)(1 - |A|/n))]
    with [c = 1] for branching k ≥ 2 and [c = ρ] for expected branching
    1 + ρ. This module computes both sides exactly and collects empirical
    transition samples — experiment E9. *)

(** [expected_next_size g ~branching ~source ~infected] evaluates the
    closed-form conditional expectation. [infected] must contain
    [source]. *)
val expected_next_size :
  Graph.View.t -> branching:Branching.t -> source:int -> infected:Dstruct.Bitset.t -> float

(** [lemma1_bound ~n ~lambda ~branching ~a] is the lemma's lower bound for
    an infected set of size [a] on an n-vertex regular graph with second
    eigenvalue [lambda]:
    [a · (1 + c(b) · (1 - λ²) · (1 - a/n))], with
    [c(Fixed k) = 1] for [k >= 2], [c(Fixed 1) = 0] (a random walk does
    not grow), and [c(One_plus ρ) = ρ]. *)
val lemma1_bound : n:int -> lambda:float -> branching:Branching.t -> a:int -> float

(** [transition_samples ?cap g ~branching ~source ~trials rng] pools
    [(|A_t|, |A_{t+1}|)] pairs from [trials] BIPS runs to saturation — the
    raw data behind the measured-growth report. *)
val transition_samples :
  ?cap:int ->
  Graph.View.t ->
  branching:Branching.t ->
  source:int ->
  trials:int ->
  Prng.Rng.t ->
  (int * int) array

(** [random_infected_set rng g ~source ~size] draws a uniform infected set
    of the given size containing [source] — for property tests of the
    bound over arbitrary sets. *)
val random_infected_set :
  Prng.Rng.t -> Graph.View.t -> source:int -> size:int -> Dstruct.Bitset.t
