module Bitset = Dstruct.Bitset

(* The visited-edge table is indexed by directed adjacency slots: slot
   [offsets.(u) + j] is the j-th neighbour of u in ascending adjacency
   order (a Graph.View contract on every backend).  Traversing the
   undirected edge {u,w} marks both its slots, so "unvisited incident
   edge" is a scan of u's slot range. *)
type t = {
  g : Graph.View.t;
  offsets : int array;
  visited_slots : Bitset.t;
  visited : Bitset.t;
  mutable position : int;
  mutable visited_count : int;
  mutable edges : int;
  mutable round : int;
}

let create g ~start =
  let n = Graph.View.n_vertices g in
  if start < 0 || start >= n then invalid_arg "Explore.create: start out of range";
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + Graph.View.degree g u
  done;
  let visited = Bitset.create n in
  Bitset.add visited start;
  {
    g;
    offsets;
    visited_slots = Bitset.create offsets.(n);
    visited;
    position = start;
    visited_count = 1;
    edges = 0;
    round = 0;
  }

(* Reverse slot of (u, j-th neighbour w): the index of u in w's ascending
   adjacency list. *)
let reverse_slot t w u =
  let d = Graph.View.degree t.g w in
  let rec find j =
    if j >= d then invalid_arg "Explore: adjacency is not symmetric"
    else if Graph.View.nth_neighbour t.g w j = u then j
    else find (j + 1)
  in
  t.offsets.(w) + find 0

let move_along t ~slot ~target =
  Bitset.add t.visited_slots slot;
  Bitset.add t.visited_slots (reverse_slot t target t.position);
  t.edges <- t.edges + 1;
  t.position <- target

let step t rng =
  let u = t.position in
  let base = t.offsets.(u) in
  let d = Graph.View.degree t.g u in
  let unvisited = ref 0 in
  for j = 0 to d - 1 do
    if not (Bitset.mem t.visited_slots (base + j)) then incr unvisited
  done;
  if !unvisited > 0 then begin
    (* Uniform among unvisited slots, in ascending adjacency order. *)
    let r = Prng.Rng.int rng !unvisited in
    let seen = ref 0 and chosen = ref (-1) in
    for j = 0 to d - 1 do
      if !chosen < 0 && not (Bitset.mem t.visited_slots (base + j)) then begin
        if !seen = r then chosen := j else incr seen
      end
    done;
    let j = !chosen in
    move_along t ~slot:(base + j) ~target:(Graph.View.nth_neighbour t.g u j)
  end
  else t.position <- Graph.View.random_neighbour t.g rng u;
  if not (Bitset.mem t.visited t.position) then begin
    Bitset.add t.visited t.position;
    t.visited_count <- t.visited_count + 1
  end;
  t.round <- t.round + 1

let position t = t.position
let visited_count t = t.visited_count
let edges_traversed t = t.edges
let round t = t.round
let is_covered t = t.visited_count = Graph.View.n_vertices t.g

let default_cap g =
  let n = Graph.View.n_vertices g in
  (100 * n * n) + 10_000

let cover_time ?cap g ~start rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let t = create g ~start in
  while (not (is_covered t)) && round t < cap do
    step t rng
  done;
  if is_covered t then Some (round t) else None
