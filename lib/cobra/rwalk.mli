(** The simple random walk — COBRA's [k = 1] degenerate case and the
    baseline for experiment E8. Its cover time is Ω(n log n) on every
    graph, against COBRA's O(log n) on expanders. *)

(** [cover_time ?cap g ~start rng] is the number of steps a single walk
    needs to visit every vertex, or [None] if [cap] steps pass first
    (default [100 * n^2 + 10_000], comfortably above the O(n^2·log n)
    worst case for small n; pass an explicit cap for large graphs). *)
val cover_time : ?cap:int -> Graph.View.t -> start:int -> Prng.Rng.t -> int option

(** [hitting_time ?cap g ~start ~target rng] is the first step at which
    the walk reaches [target]. *)
val hitting_time :
  ?cap:int -> Graph.View.t -> start:int -> target:int -> Prng.Rng.t -> int option

(** [positions ?steps g ~start rng] runs [steps] steps and returns the
    trajectory including the start (length [steps + 1]). *)
val positions : ?steps:int -> Graph.View.t -> start:int -> Prng.Rng.t -> int array

(** [multi_cover_time ?cap g ~walkers ~start rng] runs [walkers >= 1]
    independent simple random walks from [start] in synchronous rounds
    and returns the number of rounds until their union has visited every
    vertex. This is the "many random walks" baseline of Alon et al.
    (cited as [1] in the paper): independent walkers speed cover up by at
    most a factor ~[walkers], whereas COBRA's *dependent* branching
    reaches O(log n). *)
val multi_cover_time :
  ?cap:int -> Graph.View.t -> walkers:int -> start:int -> Prng.Rng.t -> int option
