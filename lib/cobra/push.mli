(** Classical rumour-spreading baselines for the transmission-budget
    comparison (experiment E11).

    In the {e push} protocol every informed vertex pushes to one random
    neighbour {e every} round, forever — so late rounds waste transmissions
    on an almost-fully-informed graph. COBRA instead silences vertices that
    are not re-activated. {e Flooding} sends to all neighbours each round:
    fastest possible rounds, maximal transmissions. *)

type outcome = {
  rounds : int;  (** rounds until all vertices informed *)
  transmissions : int;  (** total messages sent over all rounds *)
}

(** [push ?cap g ~start rng] runs the push protocol until everyone is
    informed; [None] if [cap] rounds pass (default [10_000 + 100 * n]). *)
val push : ?cap:int -> Graph.View.t -> start:int -> Prng.Rng.t -> outcome option

(** [pull ?cap g ~start rng] — each round every {e uninformed} vertex
    calls one random neighbour and copies the rumour if the callee knows
    it (Fountoulakis–Panagiotou, "Rumor Spreading on Random Regular
    Graphs and Expanders"; see PAPERS.md).  Only uninformed vertices
    draw, in increasing vertex order. *)
val pull : ?cap:int -> Graph.View.t -> start:int -> Prng.Rng.t -> outcome option

(** [push_pull ?cap g ~start rng] — each round every vertex contacts one
    random neighbour; information flows both ways across the contact
    (Fountoulakis–Panagiotou; see PAPERS.md).  All [n] vertices draw, in
    increasing vertex order. *)
val push_pull : ?cap:int -> Graph.View.t -> start:int -> Prng.Rng.t -> outcome option

(** [flood g ~start] — deterministic flooding; rounds equal the start
    vertex's eccentricity. *)
val flood : Graph.View.t -> start:int -> outcome
