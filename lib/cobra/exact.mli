(** Exact distributions of the COBRA and BIPS set-valued Markov chains on
    small graphs, by dynamic programming over the 2^n subsets.

    This module is the repository's precision anchor: Theorem 4's duality

    [P(Hit_C(v) > t) = P(C ∩ A_t = ∅ | A_0 = {v})]

    is verified here to floating-point accuracy rather than statistically.
    Subsets are encoded as bit masks, so graphs are limited to
    {!max_vertices} vertices; the cost per step is roughly
    O(4^n) for BIPS and O(reachable masks × branching support) for COBRA.

    The COBRA chain: from active set [C], each member picks its branching
    number of uniform neighbours; the next state is the union. Its
    per-vertex pick-set distributions convolve (by subset union) into the
    next-state distribution. For hitting times the target is made
    absorbing — mass entering a set containing the target leaves the
    "alive" distribution.

    The BIPS chain: given [A], each vertex [u ≠ source] is infected next
    round independently with probability
    [Branching.infection_probability b (d_A(u)/deg u)], and the source is
    always infected — so each row of the transition kernel is a product
    measure, enumerated directly. *)

(** Largest vertex count accepted (16: dense 2^n arrays stay small). *)
val max_vertices : int

(** A COBRA transition table shared across queries: the next-state
    distribution of an active set does not depend on the hitting target,
    so the (expensive) union-convolutions are memoised once per graph and
    branching and reused by every [hit_survival] call. *)
module Cobra_engine : sig
  type t

  (** [create g ~branching] prepares per-vertex pick distributions and an
      empty transition memo. *)
  val create : Graph.Csr.t -> branching:Branching.t -> t

  (** [hit_survival e ~start ~target ~t_max] — as {!cobra_hit_survival},
      sharing [e]'s memo. *)
  val hit_survival : t -> start:int list -> target:int -> t_max:int -> float array
end

(** [cobra_hit_survival g ~branching ~start ~target ~t_max] returns
    [s] with [s.(t) = P(Hit_start(target) > t | C_0 = start)] for
    [t = 0 .. t_max]. [start] must be non-empty; [s.(0) = 0] iff [target]
    is in [start]. One-shot form of {!Cobra_engine.hit_survival}. *)
val cobra_hit_survival :
  Graph.Csr.t ->
  branching:Branching.t ->
  start:int list ->
  target:int ->
  t_max:int ->
  float array

(** [cover_survival g ~branching ~start ~t_max] returns [s] with
    [s.(t) = P(cov > t | C_0 = start)] where [cov] is the first round at
    which every vertex has been active at least once (the start set
    counts as visited at t = 0). Tracks the joint (frontier, visited)
    chain — ≲ 3^n states — so keep [n] below ~12. *)
val cover_survival :
  Graph.Csr.t -> branching:Branching.t -> start:int list -> t_max:int -> float array

(** [expected_cover_time g ~branching ~start] sums the survival series
    [Σ_{t>=0} P(cov > t)] until the tail is below 1e-12 (the chain covers
    geometrically, so this terminates fast on connected graphs); raises
    [Failure] if 10^6 steps do not get there. *)
val expected_cover_time :
  Graph.Csr.t -> branching:Branching.t -> start:int list -> float

(** [bips_avoid g ~branching ~source ~avoid ~t_max] returns [s] with
    [s.(t) = P(avoid ∩ A_t = ∅ | A_0 = {source})] for the given set of
    vertices to avoid — the right-hand side of Theorem 4. *)
val bips_avoid :
  Graph.Csr.t ->
  branching:Branching.t ->
  source:int ->
  avoid:int list ->
  t_max:int ->
  float array

(** [bips_unsaturated g ~branching ~source ~t_max] returns
    [s.(t) = P(A_t ≠ V)] — the quantity Theorem 2 bounds. *)
val bips_unsaturated :
  Graph.Csr.t -> branching:Branching.t -> source:int -> t_max:int -> float array

(** [bips_expected_size g ~branching ~source ~t_max] returns
    [e.(t) = E|A_t|] — compared against Lemma 1's compounded lower bound
    in tests. *)
val bips_expected_size :
  Graph.Csr.t -> branching:Branching.t -> source:int -> t_max:int -> float array

(** [duality_gap g ~branching ~t_max] computes
    [max over u, v, t <= t_max of
     |P(Hit_u(v) > t) - P(u ∉ A_t | A_0 = v)|] — zero (to numerical
    precision) by Theorem 4. O(n² · t_max · 4^n): keep n at ~8. *)
val duality_gap : Graph.Csr.t -> branching:Branching.t -> t_max:int -> float
