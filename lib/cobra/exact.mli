(** Exact distributions of the COBRA and BIPS set-valued Markov chains on
    small graphs, by dynamic programming over the 2^n subsets.

    This module is the repository's precision anchor: Theorem 4's duality

    [P(Hit_C(v) > t) = P(C ∩ A_t = ∅ | A_0 = {v})]

    is verified here to floating-point accuracy rather than statistically.
    Subsets are encoded as bit masks, so graphs are limited to
    {!max_vertices} vertices; the cost per step is roughly
    O(4^n) for BIPS and O(reachable masks × branching support) for COBRA.

    The COBRA chain: from active set [C], each member picks its branching
    number of uniform neighbours; the next state is the union. Its
    per-vertex pick-set distributions convolve (by subset union) into the
    next-state distribution. For hitting times the target is made
    absorbing — mass entering a set containing the target leaves the
    "alive" distribution.

    The BIPS chain: given [A], each vertex [u ≠ source] is infected next
    round independently with probability
    [Branching.infection_probability b (d_A(u)/deg u)], and the source is
    always infected — so each row of the transition kernel is a product
    measure, enumerated directly. *)

(** Largest vertex count accepted (16: dense 2^n arrays stay small). *)
val max_vertices : int

(** A COBRA transition table shared across queries: the next-state
    distribution of an active set does not depend on the hitting target,
    so the (expensive) union-convolutions are memoised once per graph and
    branching and reused by every [hit_survival] call. *)
module Cobra_engine : sig
  type t

  (** [create g ~branching] prepares per-vertex pick distributions and an
      empty transition memo. *)
  val create : Graph.Csr.t -> branching:Branching.t -> t

  (** [hit_survival e ~start ~target ~t_max] — as {!cobra_hit_survival},
      sharing [e]'s memo. *)
  val hit_survival : t -> start:int list -> target:int -> t_max:int -> float array
end

(** [cobra_hit_survival g ~branching ~start ~target ~t_max] returns
    [s] with [s.(t) = P(Hit_start(target) > t | C_0 = start)] for
    [t = 0 .. t_max]. [start] must be non-empty; [s.(0) = 0] iff [target]
    is in [start]. One-shot form of {!Cobra_engine.hit_survival}. *)
val cobra_hit_survival :
  Graph.Csr.t ->
  branching:Branching.t ->
  start:int list ->
  target:int ->
  t_max:int ->
  float array

(** [cover_survival g ~branching ~start ~t_max] returns [s] with
    [s.(t) = P(cov > t | C_0 = start)] where [cov] is the first round at
    which every vertex has been active at least once (the start set
    counts as visited at t = 0). Tracks the joint (frontier, visited)
    chain — ≲ 3^n states — so keep [n] below ~12. *)
val cover_survival :
  Graph.Csr.t -> branching:Branching.t -> start:int list -> t_max:int -> float array

(** [expected_cover_time g ~branching ~start] sums the survival series
    [Σ_{t>=0} P(cov > t)] until the tail is below 1e-12 (the chain covers
    geometrically, so this terminates fast on connected graphs); raises
    [Failure] if 10^6 steps do not get there. *)
val expected_cover_time :
  Graph.Csr.t -> branching:Branching.t -> start:int list -> float

(** [bips_avoid g ~branching ~source ~avoid ~t_max] returns [s] with
    [s.(t) = P(avoid ∩ A_t = ∅ | A_0 = {source})] for the given set of
    vertices to avoid — the right-hand side of Theorem 4. *)
val bips_avoid :
  Graph.Csr.t ->
  branching:Branching.t ->
  source:int ->
  avoid:int list ->
  t_max:int ->
  float array

(** [bips_unsaturated g ~branching ~source ~t_max] returns
    [s.(t) = P(A_t ≠ V)] — the quantity Theorem 2 bounds. *)
val bips_unsaturated :
  Graph.Csr.t -> branching:Branching.t -> source:int -> t_max:int -> float array

(** [bips_expected_size g ~branching ~source ~t_max] returns
    [e.(t) = E|A_t|] — compared against Lemma 1's compounded lower bound
    in tests. *)
val bips_expected_size :
  Graph.Csr.t -> branching:Branching.t -> source:int -> t_max:int -> float array

(** [duality_gap g ~branching ~t_max] computes
    [max over u, v, t <= t_max of
     |P(Hit_u(v) > t) - P(u ∉ A_t | A_0 = v)|] — zero (to numerical
    precision) by Theorem 4. O(n² · t_max · 4^n): keep n at ~8. *)
val duality_gap : Graph.Csr.t -> branching:Branching.t -> t_max:int -> float

(** {1 Distribution-level oracle exports}

    These functions export the exact next-state distributions and
    occupancy marginals that [test/conformance] cross-validates the
    sampling kernels against. Distributions over vertex sets are
    association lists [(mask, probability)] of the non-zero entries,
    sorted by mask — deterministic, so chi-square cells line up between
    oracle and sampler. *)

(** [mask_of_vertices ~n vs] encodes a vertex list as a bit mask;
    rejects out-of-range or duplicate vertices and [n > max_vertices]. *)
val mask_of_vertices : n:int -> int list -> int

(** [vertices_of_mask mask] decodes a bit mask into its sorted vertex
    list. *)
val vertices_of_mask : int -> int list

(** [cobra_step_dist g ~branching ~active] is the exact distribution of
    the next COBRA active set given the current (non-empty) one. *)
val cobra_step_dist :
  Graph.Csr.t -> branching:Branching.t -> active:int list -> (int * float) list

(** [cobra_occupancy g ~branching ~start ~t_max] returns [occ] with
    [occ.(t).(v) = P(v ∈ C_t | C_0 = start)] for [t = 0 .. t_max]. *)
val cobra_occupancy :
  Graph.Csr.t ->
  branching:Branching.t ->
  start:int list ->
  t_max:int ->
  float array array

(** [bips_step_dist g ~branching ~source ~infected] is the exact
    distribution of the next BIPS infected set — a product measure with
    the source pinned to infected. *)
val bips_step_dist :
  Graph.Csr.t ->
  branching:Branching.t ->
  source:int ->
  infected:int list ->
  (int * float) list

(** [bips_occupancy g ~branching ~source ~t_max] returns [occ] with
    [occ.(t).(v) = P(v ∈ A_t | A_0 = {source})]. *)
val bips_occupancy :
  Graph.Csr.t -> branching:Branching.t -> source:int -> t_max:int -> float array array

(** [push_cover_survival g ~start ~t_max] returns [s] with
    [s.(t) = P(broadcast incomplete after t rounds)] for the push
    protocol started at [start] — the monotone single-pick COBRA chain
    {!Cobra.Push} samples. *)
val push_cover_survival : Graph.Csr.t -> start:int -> t_max:int -> float array

(** [coalescing_step_dist g ~active] is the exact distribution of the
    next occupied set of the coalescing walks ({!Cobra.Coalesce}) given
    the current one — the COBRA chain at branching [Fixed 1]. *)
val coalescing_step_dist : Graph.Csr.t -> active:int list -> (int * float) list

(** [coalescing_cluster_dist g ~start ~t_max] is the exact distribution
    of the {e number of clusters} after [t_max] rounds of coalescing
    walks started on the occupied set [start], as a sorted
    [(count, probability)] list. *)
val coalescing_cluster_dist :
  Graph.Csr.t -> start:int list -> t_max:int -> (int * float) list

(** [coalescing_consensus_survival g ~start ~t_max] returns [s] with
    [s.(t) = P(more than one cluster after t rounds)] — the consensus
    (= coalescence) time's survival function. *)
val coalescing_consensus_survival :
  Graph.Csr.t -> start:int list -> t_max:int -> float array

(** [explore_position_dist g ~start ~t] is the exact distribution of the
    unvisited-edge-preferring walker's ({!Cobra.Explore}) position after
    [t] steps, by DP over (vertex, visited-edge-set) states; the graph
    must have at most 16 edges. Sorted [(vertex, probability)] list. *)
val explore_position_dist : Graph.Csr.t -> start:int -> t:int -> (int * float) list

(** [explore_cover_survival g ~start ~t_max] returns [s] with
    [s.(t) = P(some vertex unvisited after t steps)] for the
    unvisited-edge-preferring walk. *)
val explore_cover_survival : Graph.Csr.t -> start:int -> t_max:int -> float array

(** [pull_step_dist g ~infected] is the exact one-round transition of
    the pull protocol ({!Cobra.Push.pull}): members stay informed and
    each uninformed vertex joins independently with probability
    [d_I(u) / deg u]. Product measure, sorted association list. *)
val pull_step_dist : Graph.Csr.t -> infected:int list -> (int * float) list

(** [pull_cover_survival g ~start ~t_max] returns [s] with
    [s.(t) = P(broadcast incomplete after t rounds)] for pull. *)
val pull_cover_survival : Graph.Csr.t -> start:int -> t_max:int -> float array

(** [push_pull_step_dist g ~infected] is the exact one-round transition
    of push-pull ({!Cobra.Push.push_pull}), by enumeration of all joint
    contact vectors (every vertex calls one uniform neighbour;
    information crosses each contact both ways). O(Π deg): small graphs
    only. *)
val push_pull_step_dist : Graph.Csr.t -> infected:int list -> (int * float) list

(** [push_pull_cover_survival g ~start ~t_max] returns [s] with
    [s.(t) = P(broadcast incomplete after t rounds)] for push-pull. *)
val push_pull_cover_survival : Graph.Csr.t -> start:int -> t_max:int -> float array

(** [sis_step_dist g ~contacts ~recovery ~persistent ~infected] is the
    exact one-round transition of {!Epidemic.Sis}: recovery first (each
    infected vertex stays with probability [1 - recovery]), then every
    vertex currently susceptible is exposed against the {e previous}
    infected set, catching with
    [Branching.infection_probability_counts contacts]; a [persistent]
    vertex is always infected next round. Product measure, exported as a
    sorted association list. *)
val sis_step_dist :
  Graph.Csr.t ->
  contacts:Branching.t ->
  recovery:float ->
  persistent:int option ->
  infected:int list ->
  (int * float) list

(** [sis_extinct_series g ~contacts ~recovery ~start ~t_max] returns [e]
    with [e.(t) = P(no vertex infected after t rounds)] for the SIS chain
    without a persistent seed (the empty set is absorbing). *)
val sis_extinct_series :
  Graph.Csr.t ->
  contacts:Branching.t ->
  recovery:float ->
  start:int list ->
  t_max:int ->
  float array

(** [seir_step_dist g ~contacts ~infectious ~susceptible] is the exact
    distribution of the {e newly-exposed} set after one round of
    {!Epidemic.Seir}: each vertex in [susceptible] catches against the
    [infectious] snapshot with
    [Branching.infection_probability_counts contacts], independently —
    timer transitions are deterministic and contribute no randomness.
    Product measure over the susceptibles, exported as a sorted
    association list of (mask, probability); vertices outside
    [susceptible] never appear in a mask. The two sets must be
    disjoint and [infectious] non-empty. *)
val seir_step_dist :
  Graph.Csr.t ->
  contacts:Branching.t ->
  infectious:int list ->
  susceptible:int list ->
  (int * float) list

(** [seir_attack_dist g ~contacts ~latent_rounds ~infectious_rounds
    ~start] is the exact distribution of the attack count: [a.(k)] is
    the probability that exactly [k] vertices were ever infected (index
    cases included) when the SEIR chain absorbs. [start] vertices begin
    infectious with a full timer, like [Epidemic.Seir.create]. Computed
    by sparse evolution over mixed-radix per-vertex states (timers are
    not bits, so the dense SIS representation does not apply); the chain
    absorbs deterministically within [n * (latent + infectious)]
    rounds. Requires the per-vertex state space to fit 62 bits —
    comfortable for every [<= 16]-vertex fixture with small timers. *)
val seir_attack_dist :
  Graph.Csr.t ->
  contacts:Branching.t ->
  latent_rounds:int ->
  infectious_rounds:int ->
  start:int list ->
  float array

(** [seir_extinct_series g ~contacts ~latent_rounds ~infectious_rounds
    ~start ~t_max] returns [e] with [e.(t) = P(no Exposed or Infectious
    vertex after t rounds)]. Monotone in [t]; reaches 1.0 once every
    epidemic path has burnt out. *)
val seir_extinct_series :
  Graph.Csr.t ->
  contacts:Branching.t ->
  latent_rounds:int ->
  infectious_rounds:int ->
  start:int list ->
  t_max:int ->
  float array

(** [contact_absorption g ~infection_rate ~start] is the probability
    that the continuous-time contact process (infection rate
    [infection_rate] per infected neighbour, recovery rate 1) exposes
    every vertex at least once before dying out — the chance
    {!Epidemic.Contact.run} returns [Fully_exposed] rather than
    [Died_out]. Computed on the jump chain over (infected, ever-infected)
    pairs by value iteration to 1e-13. *)
val contact_absorption : Graph.Csr.t -> infection_rate:float -> start:int list -> float
