type t = Fixed of int | One_plus of float | Distinct of int

let fixed k =
  if k < 1 then invalid_arg "Branching.fixed: k >= 1 required";
  Fixed k

let one_plus rho =
  if rho <= 0.0 || rho > 1.0 then invalid_arg "Branching.one_plus: rho in (0, 1]";
  One_plus rho

let distinct k =
  if k < 1 then invalid_arg "Branching.distinct: k >= 1 required";
  Distinct k

let cobra_k2 = Fixed 2

let expected = function
  | Fixed k | Distinct k -> Float.of_int k
  | One_plus rho -> 1.0 +. rho

let max_picks = function Fixed k | Distinct k -> k | One_plus _ -> 2

let draws t rng =
  match t with
  | Fixed k | Distinct k -> k
  | One_plus rho -> if Prng.Rng.bernoulli rng rho then 2 else 1

let iter_picks t rng g v ~f =
  (* One range check per call; the per-pick reads then use the unchecked
     CSR accessors (every pick stays inside [v]'s adjacency slice). This
     is the innermost loop of [Process.step] and [Bips.step]. *)
  if v < 0 || v >= Graph.Csr.n_vertices g then
    invalid_arg "Branching.iter_picks: vertex out of range";
  let deg = Graph.Csr.unsafe_degree g v in
  if deg = 0 then invalid_arg "Branching.iter_picks: isolated vertex";
  match t with
  | Fixed _ | One_plus _ ->
    let picks = draws t rng in
    for _ = 1 to picks do
      f (Graph.Csr.unsafe_random_neighbour g rng v)
    done;
    picks
  | Distinct k ->
    let k = min k deg in
    if k = deg then begin
      Graph.Csr.unsafe_iter_neighbours g v ~f;
      deg
    end
    else begin
      let picked = Prng.Sample.without_replacement rng ~k ~n:deg in
      Array.iter (fun i -> f (Graph.Csr.unsafe_nth_neighbour g v i)) picked;
      k
    end

let pick_count_distribution = function
  | Fixed k | Distinct k -> [ (k, 1.0) ]
  | One_plus rho -> [ (1, 1.0 -. rho); (2, rho) ]

let infection_probability t p =
  match t with
  | Fixed k -> 1.0 -. ((1.0 -. p) ** Float.of_int k)
  | One_plus rho -> 1.0 -. ((1.0 -. p) *. (1.0 -. (rho *. p)))
  | Distinct _ ->
    invalid_arg
      "Branching.infection_probability: Distinct needs integer counts; use \
       infection_probability_counts"

(* C(n, k) as a float, for the small n this repository's exact paths use. *)
let choose n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 0 to k - 1 do
      acc := !acc *. Float.of_int (n - i) /. Float.of_int (i + 1)
    done;
    !acc
  end

let infection_probability_counts t ~degree ~infected =
  if degree < 1 then invalid_arg "Branching: degree >= 1";
  if infected < 0 || infected > degree then
    invalid_arg "Branching: infected outside [0, degree]";
  match t with
  | Fixed _ | One_plus _ ->
    infection_probability t (Float.of_int infected /. Float.of_int degree)
  | Distinct k ->
    let k = min k degree in
    1.0 -. (choose (degree - infected) k /. choose degree k)

let pp ppf = function
  | Fixed k -> Format.fprintf ppf "k=%d" k
  | One_plus rho -> Format.fprintf ppf "1+rho (rho=%g)" rho
  | Distinct k -> Format.fprintf ppf "k=%d distinct" k

let to_string t = Format.asprintf "%a" pp t
