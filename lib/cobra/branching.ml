type t = Fixed of int | One_plus of float | Distinct of int

let fixed k =
  if k < 1 then invalid_arg "Branching.fixed: k >= 1 required";
  Fixed k

let one_plus rho =
  if rho <= 0.0 || rho > 1.0 then invalid_arg "Branching.one_plus: rho in (0, 1]";
  One_plus rho

let distinct k =
  if k < 1 then invalid_arg "Branching.distinct: k >= 1 required";
  Distinct k

let cobra_k2 = Fixed 2

let expected = function
  | Fixed k | Distinct k -> Float.of_int k
  | One_plus rho -> 1.0 +. rho

let max_picks = function Fixed k | Distinct k -> k | One_plus _ -> 2

let draws t rng =
  match t with
  | Fixed k | Distinct k -> k
  | One_plus rho -> if Prng.Rng.bernoulli rng rho then 2 else 1

let iter_picks t rng g v ~f =
  (* One range check per call; the per-pick reads then use the unchecked
     CSR accessors (every pick stays inside [v]'s adjacency slice). This
     is the innermost loop of [Process.step] and [Bips.step]. *)
  if v < 0 || v >= Graph.View.n_vertices g then
    invalid_arg "Branching.iter_picks: vertex out of range";
  let deg = Graph.View.unsafe_degree g v in
  if deg = 0 then invalid_arg "Branching.iter_picks: isolated vertex";
  match t with
  | Fixed _ | One_plus _ ->
    let picks = draws t rng in
    for _ = 1 to picks do
      f (Graph.View.unsafe_random_neighbour g rng v)
    done;
    picks
  | Distinct k ->
    let k = min k deg in
    if k = deg then begin
      Graph.View.unsafe_iter_neighbours g v ~f;
      deg
    end
    else begin
      let picked = Prng.Sample.without_replacement rng ~k ~n:deg in
      Array.iter (fun i -> f (Graph.View.unsafe_nth_neighbour g v i)) picked;
      k
    end

let pick_count_distribution = function
  | Fixed k | Distinct k -> [ (k, 1.0) ]
  | One_plus rho -> [ (1, 1.0 -. rho); (2, rho) ]

let infection_probability t p =
  match t with
  | Fixed k -> 1.0 -. ((1.0 -. p) ** Float.of_int k)
  | One_plus rho -> 1.0 -. ((1.0 -. p) *. (1.0 -. (rho *. p)))
  | Distinct _ ->
    invalid_arg
      "Branching.infection_probability: Distinct needs integer counts; use \
       infection_probability_counts"

(* C(n, k) as a float, for the small n this repository's exact paths use. *)
let choose n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 0 to k - 1 do
      acc := !acc *. Float.of_int (n - i) /. Float.of_int (i + 1)
    done;
    !acc
  end

let infection_probability_counts t ~degree ~infected =
  if degree < 1 then invalid_arg "Branching: degree >= 1";
  if infected < 0 || infected > degree then
    invalid_arg "Branching: infected outside [0, degree]";
  match t with
  | Fixed _ | One_plus _ ->
    infection_probability t (Float.of_int infected /. Float.of_int degree)
  | Distinct k ->
    let k = min k degree in
    1.0 -. (choose (degree - infected) k /. choose degree k)

let pp ppf = function
  | Fixed k -> Format.fprintf ppf "k=%d" k
  | One_plus rho -> Format.fprintf ppf "1+rho (rho=%g)" rho
  | Distinct k -> Format.fprintf ppf "k=%d distinct" k

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  let fixed_res k =
    if k >= 1 then Ok (Fixed k) else Error "branching factor k must be >= 1"
  in
  let after prefix =
    let p = String.length prefix in
    String.sub s p (String.length s - p)
  in
  if String.length s > 2 && String.sub s 0 2 = "k=" then
    match int_of_string_opt (after "k=") with
    | Some k -> fixed_res k
    | None -> Error "expected k=<int>"
  else if String.length s > 2 && String.sub s 0 2 = "1+" then
    match float_of_string_opt (after "1+") with
    | Some rho when rho > 0.0 && rho <= 1.0 -> Ok (One_plus rho)
    | Some _ -> Error "rho must lie in (0, 1]"
    | None -> Error "expected 1+<rho>"
  else if String.length s > 9 && String.sub s 0 9 = "distinct=" then
    match int_of_string_opt (after "distinct=") with
    | Some k when k >= 1 -> Ok (Distinct k)
    | _ -> Error "expected distinct=<int >= 1>"
  else
    match int_of_string_opt s with
    | Some k -> fixed_res k
    | None -> Error "branching: use k=<int>, <int>, 1+<rho>, or distinct=<int>"

(* Shortest float literal that round-trips, so to_arg/of_string compose to
   the identity for every representable rho. *)
let float_arg x =
  let s = Printf.sprintf "%g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let to_arg = function
  | Fixed k -> Printf.sprintf "k=%d" k
  | One_plus rho -> "1+" ^ float_arg rho
  | Distinct k -> Printf.sprintf "distinct=%d" k
