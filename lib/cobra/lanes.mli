(** Bit-sliced Monte-Carlo driver: 64 independent replicas per machine
    word.

    A {e batch} runs up to 64 trials of a kernel at once, one replica
    per bit-lane: lane [j] holds trial [j]'s state in lane [j] of the
    {!Dstruct.Lanemat} occupancy matrices and draws from trial [j]'s
    own stream (the caller seeds {!Prng.Lanes} with the scalar engine's
    derived trial seeds). One pass over the CSR therefore advances all
    64 trials by one synchronous round.

    Equality with the scalar engine is {e distributional} per lane, not
    draw-for-draw: sliced steppers consume raw bit planes where the
    scalar engine consumes floats and wide-word rejection, share
    rejection rounds across lanes, and skip draws that no live lane can
    observe. Per-lane marginals and cross-lane independence are exact
    (the conformance suite checks both against the closed-form
    oracles); results are exactly deterministic in the seeds.

    Completed lanes are frozen in place — their state stops evolving
    just as the scalar driver stops stepping a finished trial — and
    lanes beyond a short batch's [n_active] are masked out of every
    reduction, so phantom replicas never reach any statistic. *)

(** One live batch: [step] plays one synchronous round for the lanes in
    the live mask, [done_mask] reads the per-lane completion mask of
    the current state as [(lo, hi)] cells, and [observe] reads one
    lane's final kernel-specific observables (the driver prepends
    ["rounds"]). [state] exposes the occupancy matrix the process's
    exact oracle speaks about — BIPS/SIS: the current infected set,
    COBRA: the frontier, push: the informed set — so the conformance
    suite can read every lane's set directly. *)
type instance = {
  step : live_lo:int -> live_hi:int -> unit;
  done_mask : unit -> int * int;
  observe : lane:int -> (string * float) list;
  state : unit -> Dstruct.Lanemat.t;
}

(** A sliced kernel: the lane-engine counterpart of {!Kernel.t}.
    [supports] says whether these params have a sliced stepper (e.g.
    [Distinct] branching does not); callers fall back to the scalar
    engine when it is [false]. *)
type t = {
  name : string;
  default_cap : Graph.View.t -> int;
  supports : Kernel.params -> bool;
  create : Graph.View.t -> Kernel.params -> Prng.Lanes.t -> instance;
}

(** [run_batch t g params gen ~n_active] drives one batch of
    [n_active <= 64] trials to per-lane completion or the round cap
    ([params.cap], default [t.default_cap g]) and returns one
    {!Kernel.outcome} per trial, lane [j] first. Censored lanes report
    [rounds = cap] and [completed = false], like the scalar
    {!Kernel.run}. *)
val run_batch :
  t -> Graph.View.t -> Kernel.params -> Prng.Lanes.t -> n_active:int ->
  Kernel.outcome array

(** COBRA cover, sliced. Observes ["rounds"; "visited"; "frontier"] —
    per-lane transmission counting would cost a popcount per scatter,
    so unlike the scalar kernel it does not report ["transmissions"]. *)
val cobra : t

(** BIPS saturation, sliced. Observes ["rounds"; "infected"]. *)
val bips : t

(** Push rumour spreading, sliced. Observes ["rounds"; "informed"]
    (no ["transmissions"], as for {!cobra}). *)
val push : t

(** The sliced kernels living in this library; [Epidemic.Lanes] adds
    [sis]. *)
val all : t list

val find : string -> t option

(** {1 Sliced-pick toolkit}

    The word-parallel neighbour-pick primitives the steppers above are
    built from, exported so sliced steppers in downstream libraries
    ([Epidemic.Lanes]) reuse them. A [picker] owns the per-graph
    scratch (index bit-planes, mux-gather tree); mask-producing calls
    leave their result in the [lo]/[hi] accessors. *)
module Slice : sig
  type picker

  (** [picker g branching] prepares sliced branching picks on [g];
      raises [Invalid_argument] for [Distinct] branching (use
      {!supported} to pre-test). *)
  val picker : Graph.View.t -> Branching.t -> picker

  (** [single_picker g] prepares plain one-uniform-neighbour picks
      (the push protocol's rule). *)
  val single_picker : Graph.View.t -> picker

  val supported : Branching.t -> bool

  val lo : picker -> int

  val hi : picker -> int

  (** [nb_or p members ~v] ORs [members]'s cells over [v]'s
      neighbourhood into [lo]/[hi]: bit [j] set iff some neighbour of
      [v] is occupied in lane [j]. Draw-free — the pre-test behind
      every skip decision. *)
  val nb_or : picker -> Dstruct.Lanemat.t -> v:int -> unit

  (** [nb_or_and p members ~v] is {!nb_or} fused with the matching AND:
      [lo]/[hi] get the OR and the returned [(and_lo, and_hi)] pair has
      bit [j] set iff {e every} neighbour of [v] is occupied in lane
      [j]. AND-lanes hit deterministically and OR-free lanes miss
      deterministically, so a stepper only needs a {!hit} draw when
      some live lane sits strictly in between — the skip that keeps
      saturated neighbourhoods from burning pick draws. *)
  val nb_or_and : picker -> Dstruct.Lanemat.t -> v:int -> int * int

  (** [hit p gen members ~v] draws one full branching round of picks
      from [v]'s neighbourhood for every lane at once; bit [j] of
      [lo]/[hi] is set iff at least one of lane [j]'s picks lands in
      [members] — the BIPS / SIS exposure rule. *)
  val hit : picker -> Prng.Lanes.t -> Dstruct.Lanemat.t -> v:int -> unit

  (** [scatter p gen ~v ~base_lo ~base_hi ~into] draws one full
      branching round of picks from [v] and, for every lane in [base],
      adds that lane to the chosen neighbours' rows of [into] — the
      COBRA / push transmission rule. *)
  val scatter :
    picker -> Prng.Lanes.t -> v:int -> base_lo:int -> base_hi:int ->
    into:Dstruct.Lanemat.t -> unit
end
