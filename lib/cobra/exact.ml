let max_vertices = 16

let check_size g name =
  let n = Graph.Csr.n_vertices g in
  if n = 0 then invalid_arg (name ^ ": empty graph");
  if n > max_vertices then
    invalid_arg (Printf.sprintf "%s: at most %d vertices (got %d)" name max_vertices n);
  n

let check_vertex g name v =
  if v < 0 || v >= Graph.Csr.n_vertices g then invalid_arg (name ^ ": vertex out of range")

(* Distribution over the subsets a single vertex's picks can form. With
   replacement: start from the empty set and fold in one uniform
   neighbour k times, mixing over the branching's pick-count
   distribution. Without replacement ([Distinct k]): uniform over the
   C(deg, min k deg) neighbour subsets of that size. Returned as an
   association list (mask, probability). *)
let pick_set_dist g branching v =
  let d = Graph.Csr.degree g v in
  if d = 0 then invalid_arg "Exact: isolated vertex";
  match branching with
  | Branching.Distinct k ->
    let k = min k d in
    let neighbours = Graph.Csr.neighbours g v in
    (* Enumerate all k-subsets of the neighbour list. *)
    let subsets = ref [] in
    let rec go idx chosen mask =
      if chosen = k then subsets := mask :: !subsets
      else if d - idx >= k - chosen then begin
        go (idx + 1) (chosen + 1) (mask lor (1 lsl neighbours.(idx)));
        go (idx + 1) chosen mask
      end
    in
    go 0 0 0;
    let total = Float.of_int (List.length !subsets) in
    List.map (fun mask -> (mask, 1.0 /. total)) !subsets
  | Branching.Fixed _ | Branching.One_plus _ ->
    let unit = 1.0 /. Float.of_int d in
    let one_round dist =
      let acc = Hashtbl.create 16 in
      Hashtbl.iter
        (fun mask p ->
          Graph.Csr.iter_neighbours g v ~f:(fun w ->
              let mask' = mask lor (1 lsl w) in
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc mask') in
              Hashtbl.replace acc mask' (prev +. (p *. unit))))
        dist;
      acc
    in
    let dist_for_picks k =
      let dist = Hashtbl.create 1 in
      Hashtbl.replace dist 0 1.0;
      let cur = ref dist in
      for _ = 1 to k do
        cur := one_round !cur
      done;
      !cur
    in
    let mixed = Hashtbl.create 16 in
    List.iter
      (fun (k, pk) ->
        Hashtbl.iter
          (fun mask p ->
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt mixed mask) in
            Hashtbl.replace mixed mask (prev +. (pk *. p)))
          (dist_for_picks k))
      (Branching.pick_count_distribution branching);
    Hashtbl.fold (fun mask p acc -> (mask, p) :: acc) mixed []

(* Next-state distribution of the COBRA chain from active set [mask]:
   union-convolution of the members' pick-set distributions. *)
let cobra_next_dist g per_vertex mask =
  let dist = ref [ (0, 1.0) ] in
  let n = Graph.Csr.n_vertices g in
  for v = 0 to n - 1 do
    if mask land (1 lsl v) <> 0 then begin
      let acc = Hashtbl.create 64 in
      List.iter
        (fun (m1, p1) ->
          List.iter
            (fun (m2, p2) ->
              let m = m1 lor m2 in
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc m) in
              Hashtbl.replace acc m (prev +. (p1 *. p2)))
            per_vertex.(v))
        !dist;
      dist := Hashtbl.fold (fun m p l -> (m, p) :: l) acc []
    end
  done;
  !dist

let mask_of_list name n vs =
  List.fold_left
    (fun acc v ->
      if v < 0 || v >= n then invalid_arg (name ^ ": vertex out of range");
      acc lor (1 lsl v))
    0 vs

let mask_of_vertices ~n vs =
  if n < 1 || n > max_vertices then invalid_arg "Exact.mask_of_vertices: bad n";
  mask_of_list "Exact.mask_of_vertices" n vs

let vertices_of_mask mask =
  if mask < 0 then invalid_arg "Exact.vertices_of_mask: negative mask";
  let rec go v acc =
    if 1 lsl v > mask then List.rev acc
    else go (v + 1) (if mask land (1 lsl v) <> 0 then v :: acc else acc)
  in
  go 0 []

(* Sorted-by-mask association list of the non-zero entries — the
   deterministic export format of every *_step_dist below. *)
let sorted_dist entries =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (List.filter (fun (_, p) -> p > 0.0) entries)

module Cobra_engine = struct
  (* Memoised transitions as parallel arrays (masks, probs) for cache- and
     allocation-friendly evolution; distributions over active sets are
     dense float arrays of length 2^n. *)
  type transition = { masks : int array; probs : float array }

  type t = {
    g : Graph.Csr.t;
    n : int;
    per_vertex : (int * float) list array;
    next_memo : transition option array; (* indexed by active-set mask *)
  }

  let create g ~branching =
    let n = check_size g "Exact.Cobra_engine.create" in
    {
      g;
      n;
      per_vertex = Array.init n (fun v -> pick_set_dist g branching v);
      next_memo = Array.make (1 lsl n) None;
    }

  let next_of e mask =
    match e.next_memo.(mask) with
    | Some tr -> tr
    | None ->
      let entries = cobra_next_dist e.g e.per_vertex mask in
      let tr =
        {
          masks = Array.of_list (List.map fst entries);
          probs = Array.of_list (List.map snd entries);
        }
      in
      e.next_memo.(mask) <- Some tr;
      tr

  let hit_survival e ~start ~target ~t_max =
    check_vertex e.g "Exact.hit_survival" target;
    if start = [] then invalid_arg "Exact.hit_survival: empty start";
    if t_max < 0 then invalid_arg "Exact.hit_survival: t_max >= 0";
    let start_mask = mask_of_list "Exact.hit_survival" e.n start in
    let target_bit = 1 lsl target in
    let survival = Array.make (t_max + 1) 0.0 in
    if start_mask land target_bit <> 0 then survival (* all zeros: hit at t = 0 *)
    else begin
      (* alive: distribution over active sets that have never contained
         the target; mass entering a target-containing set is dropped. *)
      let size = 1 lsl e.n in
      let alive = ref (Array.make size 0.0) in
      let next = ref (Array.make size 0.0) in
      !alive.(start_mask) <- 1.0;
      survival.(0) <- 1.0;
      for t = 1 to t_max do
        Array.fill !next 0 size 0.0;
        let total = ref 0.0 in
        for mask = 0 to size - 1 do
          let p = !alive.(mask) in
          if p > 0.0 then begin
            let tr = next_of e mask in
            for i = 0 to Array.length tr.masks - 1 do
              let mask' = tr.masks.(i) in
              if mask' land target_bit = 0 then begin
                let q = p *. tr.probs.(i) in
                !next.(mask') <- !next.(mask') +. q;
                total := !total +. q
              end
            done
          end
        done;
        let tmp = !alive in
        alive := !next;
        next := tmp;
        survival.(t) <- !total
      done;
      survival
    end
end

let cobra_hit_survival g ~branching ~start ~target ~t_max =
  let e = Cobra_engine.create g ~branching in
  Cobra_engine.hit_survival e ~start ~target ~t_max

(* Cover time needs the joint (frontier, visited) chain: the next frontier
   depends only on the current one, and visited accumulates. States are
   keyed as [frontier lor (visited lsl n)]; mass whose visited set becomes
   full is absorbed. *)
let cover_survival g ~branching ~start ~t_max =
  let n = check_size g "Exact.cover_survival" in
  if start = [] then invalid_arg "Exact.cover_survival: empty start";
  if t_max < 0 then invalid_arg "Exact.cover_survival: t_max >= 0";
  let start_mask = mask_of_list "Exact.cover_survival" n start in
  let full = (1 lsl n) - 1 in
  let engine = Cobra_engine.create g ~branching in
  let survival = Array.make (t_max + 1) 0.0 in
  if start_mask = full then survival
  else begin
    let alive = ref (Hashtbl.create 16) in
    Hashtbl.replace !alive (start_mask lor (start_mask lsl n)) 1.0;
    survival.(0) <- 1.0;
    for t = 1 to t_max do
      let next = Hashtbl.create 64 in
      let total = ref 0.0 in
      Hashtbl.iter
        (fun key p ->
          let frontier = key land full in
          let visited = key lsr n in
          let tr = Cobra_engine.next_of engine frontier in
          for i = 0 to Array.length tr.Cobra_engine.masks - 1 do
            let frontier' = tr.Cobra_engine.masks.(i) in
            let visited' = visited lor frontier' in
            if visited' <> full then begin
              let q = p *. tr.Cobra_engine.probs.(i) in
              let key' = frontier' lor (visited' lsl n) in
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt next key') in
              Hashtbl.replace next key' (prev +. q);
              total := !total +. q
            end
          done)
        !alive;
      alive := next;
      survival.(t) <- !total
    done;
    survival
  end

let expected_cover_time g ~branching ~start =
  let n = check_size g "Exact.expected_cover_time" in
  if start = [] then invalid_arg "Exact.expected_cover_time: empty start";
  let start_mask = mask_of_list "Exact.expected_cover_time" n start in
  let full = (1 lsl n) - 1 in
  if start_mask = full then 0.0
  else begin
    let engine = Cobra_engine.create g ~branching in
    let alive = ref (Hashtbl.create 16) in
    Hashtbl.replace !alive (start_mask lor (start_mask lsl n)) 1.0;
    (* E[cov] = Σ_{t >= 0} P(cov > t); iterate until the tail is dust. *)
    let acc = ref 1.0 (* t = 0 term: start <> full *) in
    let mass = ref 1.0 in
    let steps = ref 0 in
    while !mass > 1e-12 && !steps < 1_000_000 do
      let next = Hashtbl.create 64 in
      let total = ref 0.0 in
      Hashtbl.iter
        (fun key p ->
          let frontier = key land full in
          let visited = key lsr n in
          let tr = Cobra_engine.next_of engine frontier in
          for i = 0 to Array.length tr.Cobra_engine.masks - 1 do
            let frontier' = tr.Cobra_engine.masks.(i) in
            let visited' = visited lor frontier' in
            if visited' <> full then begin
              let q = p *. tr.Cobra_engine.probs.(i) in
              let key' = frontier' lor (visited' lsl n) in
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt next key') in
              Hashtbl.replace next key' (prev +. q)
            end
          done)
        !alive;
      Hashtbl.iter (fun _ p -> total := !total +. p) next;
      alive := next;
      mass := !total;
      acc := !acc +. !total;
      incr steps
    done;
    if !mass > 1e-12 then failwith "Exact.expected_cover_time: did not converge";
    !acc
  end

(* One BIPS step on a dense distribution over subsets. For each source
   state A we enumerate target states by expanding the per-vertex
   independent infection probabilities, branching over the two outcomes of
   each non-source vertex. Probability-zero branches are pruned, which
   keeps the recursion near the reachable support. *)
let bips_step g branching ~source dist =
  let n = Graph.Csr.n_vertices g in
  let size = 1 lsl n in
  let next = Array.make size 0.0 in
  let p_infected = Array.make n 0.0 in
  for a = 0 to size - 1 do
    let pa = dist.(a) in
    if pa > 0.0 then begin
      (* Per-vertex infection probabilities given A = a. *)
      for u = 0 to n - 1 do
        if u = source then p_infected.(u) <- 1.0
        else begin
          let deg = Graph.Csr.degree g u in
          let hits =
            Graph.Csr.fold_neighbours g u ~init:0 ~f:(fun acc w ->
                if a land (1 lsl w) <> 0 then acc + 1 else acc)
          in
          p_infected.(u) <-
            Branching.infection_probability_counts branching ~degree:deg
              ~infected:hits
        end
      done;
      let rec expand u mask p =
        if p = 0.0 then ()
        else if u = n then next.(mask) <- next.(mask) +. p
        else begin
          expand (u + 1) (mask lor (1 lsl u)) (p *. p_infected.(u));
          expand (u + 1) mask (p *. (1.0 -. p_infected.(u)))
        end
      in
      expand 0 0 pa
    end
  done;
  next

let bips_series g ~branching ~source ~t_max ~measure name =
  let n = check_size g name in
  check_vertex g name source;
  if t_max < 0 then invalid_arg (name ^ ": t_max >= 0");
  let size = 1 lsl n in
  let dist = Array.make size 0.0 in
  dist.(1 lsl source) <- 1.0;
  let out = Array.make (t_max + 1) 0.0 in
  out.(0) <- measure dist;
  let cur = ref dist in
  for t = 1 to t_max do
    cur := bips_step g branching ~source !cur;
    out.(t) <- measure !cur
  done;
  out

let bips_avoid g ~branching ~source ~avoid ~t_max =
  let n = Graph.Csr.n_vertices g in
  let avoid_mask = mask_of_list "Exact.bips_avoid" n avoid in
  let measure dist =
    let acc = ref 0.0 in
    Array.iteri (fun a p -> if a land avoid_mask = 0 then acc := !acc +. p) dist;
    !acc
  in
  bips_series g ~branching ~source ~t_max ~measure "Exact.bips_avoid"

let bips_unsaturated g ~branching ~source ~t_max =
  let n = Graph.Csr.n_vertices g in
  let full = (1 lsl n) - 1 in
  let measure dist = 1.0 -. dist.(full) in
  bips_series g ~branching ~source ~t_max ~measure "Exact.bips_unsaturated"

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go mask 0

let bips_expected_size g ~branching ~source ~t_max =
  let measure dist =
    let acc = ref 0.0 in
    Array.iteri (fun a p -> acc := !acc +. (p *. Float.of_int (popcount a))) dist;
    !acc
  in
  bips_series g ~branching ~source ~t_max ~measure "Exact.bips_expected_size"

let duality_gap g ~branching ~t_max =
  let n = check_size g "Exact.duality_gap" in
  let engine = Cobra_engine.create g ~branching in
  let worst = ref 0.0 in
  for v = 0 to n - 1 do
    (* One BIPS evolution per source v serves every u. *)
    let size = 1 lsl n in
    let dist = Array.make size 0.0 in
    dist.(1 lsl v) <- 1.0;
    let absent = Array.make_matrix (t_max + 1) n 0.0 in
    let record t d =
      for u = 0 to n - 1 do
        let acc = ref 0.0 in
        Array.iteri (fun a p -> if a land (1 lsl u) = 0 then acc := !acc +. p) d;
        absent.(t).(u) <- !acc
      done
    in
    record 0 dist;
    let cur = ref dist in
    for t = 1 to t_max do
      cur := bips_step g branching ~source:v !cur;
      record t !cur
    done;
    for u = 0 to n - 1 do
      let survival = Cobra_engine.hit_survival engine ~start:[ u ] ~target:v ~t_max in
      for t = 0 to t_max do
        let gap = Float.abs (survival.(t) -. absent.(t).(u)) in
        if gap > !worst then worst := gap
      done
    done
  done;
  !worst

(* ---------- distribution-level oracle exports (conformance suite) ---------- *)

let cobra_step_dist g ~branching ~active =
  let n = check_size g "Exact.cobra_step_dist" in
  if active = [] then invalid_arg "Exact.cobra_step_dist: empty active set";
  let mask = mask_of_list "Exact.cobra_step_dist" n active in
  (* Pick distributions only for members: non-members may be isolated. *)
  let per_vertex =
    Array.init n (fun v ->
        if mask land (1 lsl v) <> 0 then pick_set_dist g branching v else [])
  in
  sorted_dist (cobra_next_dist g per_vertex mask)

let cobra_occupancy g ~branching ~start ~t_max =
  let n = check_size g "Exact.cobra_occupancy" in
  if start = [] then invalid_arg "Exact.cobra_occupancy: empty start";
  if t_max < 0 then invalid_arg "Exact.cobra_occupancy: t_max >= 0";
  let start_mask = mask_of_list "Exact.cobra_occupancy" n start in
  let engine = Cobra_engine.create g ~branching in
  let size = 1 lsl n in
  let dist = Array.make size 0.0 in
  dist.(start_mask) <- 1.0;
  let occ = Array.make_matrix (t_max + 1) n 0.0 in
  let record t d =
    for mask = 0 to size - 1 do
      let p = d.(mask) in
      if p > 0.0 then
        for v = 0 to n - 1 do
          if mask land (1 lsl v) <> 0 then occ.(t).(v) <- occ.(t).(v) +. p
        done
    done
  in
  record 0 dist;
  let cur = ref dist and next = ref (Array.make size 0.0) in
  for t = 1 to t_max do
    Array.fill !next 0 size 0.0;
    for mask = 0 to size - 1 do
      let p = !cur.(mask) in
      if p > 0.0 then begin
        let tr = Cobra_engine.next_of engine mask in
        for i = 0 to Array.length tr.Cobra_engine.masks - 1 do
          let m' = tr.Cobra_engine.masks.(i) in
          !next.(m') <- !next.(m') +. (p *. tr.Cobra_engine.probs.(i))
        done
      end
    done;
    let tmp = !cur in
    cur := !next;
    next := tmp;
    record t !cur
  done;
  occ

let bips_step_dist g ~branching ~source ~infected =
  let n = check_size g "Exact.bips_step_dist" in
  check_vertex g "Exact.bips_step_dist" source;
  if infected = [] then invalid_arg "Exact.bips_step_dist: empty infected set";
  let mask = mask_of_list "Exact.bips_step_dist" n infected in
  let dist = Array.make (1 lsl n) 0.0 in
  dist.(mask) <- 1.0;
  let next = bips_step g branching ~source dist in
  sorted_dist (Array.to_list (Array.mapi (fun m p -> (m, p)) next))

let bips_occupancy g ~branching ~source ~t_max =
  let n = check_size g "Exact.bips_occupancy" in
  check_vertex g "Exact.bips_occupancy" source;
  if t_max < 0 then invalid_arg "Exact.bips_occupancy: t_max >= 0";
  let size = 1 lsl n in
  let dist = Array.make size 0.0 in
  dist.(1 lsl source) <- 1.0;
  let occ = Array.make_matrix (t_max + 1) n 0.0 in
  let record t d =
    for mask = 0 to size - 1 do
      let p = d.(mask) in
      if p > 0.0 then
        for v = 0 to n - 1 do
          if mask land (1 lsl v) <> 0 then occ.(t).(v) <- occ.(t).(v) +. p
        done
    done
  in
  record 0 dist;
  let cur = ref dist in
  for t = 1 to t_max do
    cur := bips_step g branching ~source !cur;
    record t !cur
  done;
  occ

(* The push protocol is monotone COBRA with a single pick: informed
   vertices stay informed and each sends to one uniform neighbour. *)
let push_cover_survival g ~start ~t_max =
  let n = check_size g "Exact.push_cover_survival" in
  if t_max < 0 then invalid_arg "Exact.push_cover_survival: t_max >= 0";
  check_vertex g "Exact.push_cover_survival" start;
  let start_mask = 1 lsl start in
  let full = (1 lsl n) - 1 in
  let survival = Array.make (t_max + 1) 0.0 in
  if start_mask = full then survival
  else begin
    let per_vertex = Array.init n (fun v -> pick_set_dist g (Branching.Fixed 1) v) in
    let alive = ref (Hashtbl.create 16) in
    Hashtbl.replace !alive start_mask 1.0;
    survival.(0) <- 1.0;
    for t = 1 to t_max do
      let next = Hashtbl.create 64 in
      let total = ref 0.0 in
      Hashtbl.iter
        (fun mask p ->
          List.iter
            (fun (picks, q) ->
              let mask' = mask lor picks in
              if mask' <> full then begin
                let pq = p *. q in
                let prev = Option.value ~default:0.0 (Hashtbl.find_opt next mask') in
                Hashtbl.replace next mask' (prev +. pq);
                total := !total +. pq
              end)
            (cobra_next_dist g per_vertex mask))
        !alive;
      alive := next;
      survival.(t) <- !total
    done;
    survival
  end

(* Expand a product measure over vertex inclusion: branch on each
   vertex's in/out probability, pruning probability-zero branches. *)
let expand_product n p_next ~weight ~add =
  let rec go u mask p =
    if p = 0.0 then ()
    else if u = n then add mask p
    else begin
      go (u + 1) (mask lor (1 lsl u)) (p *. p_next.(u));
      go (u + 1) mask (p *. (1.0 -. p_next.(u)))
    end
  in
  go 0 0 weight

(* ---------- coalescing walks: the COBRA chain at Fixed 1 ---------- *)

(* Each cluster makes a single pick and the next occupied set is the
   union of the picks — exactly COBRA with branching [Fixed 1], so the
   memoised COBRA engine is the oracle. *)
let coalescing_step_dist g ~active =
  cobra_step_dist g ~branching:(Branching.Fixed 1) ~active

let coalescing_evolve g ~start ~t_max ~record name =
  let n = check_size g name in
  if start = [] then invalid_arg (name ^ ": empty start");
  if t_max < 0 then invalid_arg (name ^ ": t_max >= 0");
  let mask = mask_of_list name n start in
  let engine = Cobra_engine.create g ~branching:(Branching.Fixed 1) in
  let size = 1 lsl n in
  let dist = Array.make size 0.0 in
  dist.(mask) <- 1.0;
  record 0 dist;
  let cur = ref dist and next = ref (Array.make size 0.0) in
  for t = 1 to t_max do
    Array.fill !next 0 size 0.0;
    for m = 0 to size - 1 do
      let p = !cur.(m) in
      if p > 0.0 then begin
        let tr = Cobra_engine.next_of engine m in
        for i = 0 to Array.length tr.Cobra_engine.masks - 1 do
          let m' = tr.Cobra_engine.masks.(i) in
          !next.(m') <- !next.(m') +. (p *. tr.Cobra_engine.probs.(i))
        done
      end
    done;
    let tmp = !cur in
    cur := !next;
    next := tmp;
    record t !cur
  done

let coalescing_cluster_dist g ~start ~t_max =
  let out = ref [||] in
  coalescing_evolve g ~start ~t_max "Exact.coalescing_cluster_dist"
    ~record:(fun t dist ->
      if t = t_max then begin
        let counts = Array.make (List.length start + 1) 0.0 in
        Array.iteri
          (fun m p -> if p > 0.0 then counts.(popcount m) <- counts.(popcount m) +. p)
          dist;
        out := counts
      end);
  sorted_dist (Array.to_list (Array.mapi (fun c p -> (c, p)) !out))

let coalescing_consensus_survival g ~start ~t_max =
  let survival = Array.make (t_max + 1) 0.0 in
  coalescing_evolve g ~start ~t_max "Exact.coalescing_consensus_survival"
    ~record:(fun t dist ->
      let acc = ref 0.0 in
      Array.iteri (fun m p -> if popcount m > 1 then acc := !acc +. p) dist;
      survival.(t) <- !acc);
  survival

(* ---------- unvisited-edge-preferring walk (DP over edge subsets) ---------- *)

(* Undirected edges get ids in the order their lower endpoint's adjacency
   is scanned; [incident.(u)] pairs each neighbour with its edge bit. The
   walk's unvisited-slot draw is uniform over the unvisited incident
   edges in ascending adjacency order, which is exactly this edge set. *)
let explore_max_edges = 16

let explore_incidence g name =
  let n = check_size g name in
  let ids = Hashtbl.create 32 in
  let count = ref 0 in
  for u = 0 to n - 1 do
    Graph.Csr.iter_neighbours g u ~f:(fun w ->
        if u < w then begin
          Hashtbl.replace ids (u, w) !count;
          incr count
        end)
  done;
  if !count > explore_max_edges then
    invalid_arg
      (Printf.sprintf "%s: at most %d edges (got %d)" name explore_max_edges !count);
  let incident =
    Array.init n (fun u ->
        let acc = ref [] in
        Graph.Csr.iter_neighbours g u ~f:(fun w ->
            let key = if u < w then (u, w) else (w, u) in
            acc := (w, 1 lsl Hashtbl.find ids key) :: !acc);
        Array.of_list (List.rev !acc))
  in
  (n, incident)

(* Iterate the successor distribution of state (position u, visited-edge
   mask): uniform over unvisited incident edges if any (setting the edge
   bit), else uniform over all neighbours (mask unchanged). *)
let explore_next incident u mask ~f =
  let inc = incident.(u) in
  let d = Array.length inc in
  if d = 0 then invalid_arg "Exact: isolated vertex";
  let k = ref 0 in
  Array.iter (fun (_, bit) -> if mask land bit = 0 then incr k) inc;
  if !k > 0 then begin
    let q = 1.0 /. Float.of_int !k in
    Array.iter
      (fun (w, bit) -> if mask land bit = 0 then f w (mask lor bit) q)
      inc
  end
  else begin
    let q = 1.0 /. Float.of_int d in
    Array.iter (fun (w, _) -> f w mask q) inc
  end

let explore_evolve g ~start ~t_max ~record name =
  let n, incident = explore_incidence g name in
  check_vertex g name start;
  if t_max < 0 then invalid_arg (name ^ ": t_max >= 0");
  let cur = ref (Hashtbl.create 16) in
  Hashtbl.replace !cur (start, 0) 1.0;
  record 0 !cur;
  for t = 1 to t_max do
    let next = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (u, mask) p ->
        explore_next incident u mask ~f:(fun w mask' q ->
            let key = (w, mask') in
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt next key) in
            Hashtbl.replace next key (prev +. (p *. q))))
      !cur;
    cur := next;
    record t !cur
  done;
  n

let explore_position_dist g ~start ~t =
  let out = ref [] in
  let (_ : int) =
    explore_evolve g ~start ~t_max:t "Exact.explore_position_dist"
      ~record:(fun t' dist ->
        if t' = t then begin
          let pos = Hashtbl.create 16 in
          Hashtbl.iter
            (fun (u, _) p ->
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt pos u) in
              Hashtbl.replace pos u (prev +. p))
            dist;
          out := Hashtbl.fold (fun u p acc -> (u, p) :: acc) pos []
        end)
  in
  sorted_dist !out

(* A vertex has been visited iff it is the start or an endpoint of a
   traversed edge (when every incident edge is visited the walker moves
   along an already-traversed edge), so cover is readable off the edge
   mask alone. *)
let explore_cover_survival g ~start ~t_max =
  let n = Graph.Csr.n_vertices g in
  let full = (1 lsl n) - 1 in
  (* Endpoint masks in edge-id order (the order [explore_incidence]
     assigns: lower endpoint ascending, adjacency ascending). *)
  let endpoint_masks =
    let acc = ref [] in
    for u = 0 to n - 1 do
      Graph.Csr.iter_neighbours g u ~f:(fun w ->
          if u < w then acc := ((1 lsl u) lor (1 lsl w)) :: !acc)
    done;
    Array.of_list (List.rev !acc)
  in
  let visited_cache = Hashtbl.create 64 in
  let visited_of mask =
    match Hashtbl.find_opt visited_cache mask with
    | Some v -> v
    | None ->
      let v = ref (1 lsl start) in
      Array.iteri
        (fun e em -> if mask land (1 lsl e) <> 0 then v := !v lor em)
        endpoint_masks;
      Hashtbl.replace visited_cache mask !v;
      !v
  in
  let survival = Array.make (t_max + 1) 0.0 in
  let (_ : int) =
    explore_evolve g ~start ~t_max "Exact.explore_cover_survival"
      ~record:(fun t dist ->
        let acc = ref 0.0 in
        Hashtbl.iter
          (fun (_, mask) p -> if visited_of mask <> full then acc := !acc +. p)
          dist;
        survival.(t) <- !acc)
  in
  survival

(* ---------- pull and push-pull rumour spreading ---------- *)

(* One pull round is a product measure: members stay informed and each
   uninformed vertex joins independently with probability
   d_I(u) / deg(u) (its call hits an informed neighbour). *)
let pull_next_probabilities g mask =
  let n = Graph.Csr.n_vertices g in
  Array.init n (fun u ->
      if mask land (1 lsl u) <> 0 then 1.0
      else begin
        let deg = Graph.Csr.degree g u in
        if deg = 0 then invalid_arg "Exact: isolated vertex";
        let hits =
          Graph.Csr.fold_neighbours g u ~init:0 ~f:(fun acc w ->
              if mask land (1 lsl w) <> 0 then acc + 1 else acc)
        in
        Float.of_int hits /. Float.of_int deg
      end)

let pull_step_dist g ~infected =
  let n = check_size g "Exact.pull_step_dist" in
  if infected = [] then invalid_arg "Exact.pull_step_dist: empty infected set";
  let mask = mask_of_list "Exact.pull_step_dist" n infected in
  let p_next = pull_next_probabilities g mask in
  let out = Array.make (1 lsl n) 0.0 in
  expand_product n p_next ~weight:1.0 ~add:(fun m p -> out.(m) <- out.(m) +. p);
  sorted_dist (Array.to_list (Array.mapi (fun m p -> (m, p)) out))

(* One push-pull round by brute force over joint contact vectors: every
   vertex picks one uniform neighbour; information crosses each contact
   both ways against the previous informed set, matching
   [Push.push_pull]'s synchronous apply. *)
let push_pull_next g mask ~add =
  let n = Graph.Csr.n_vertices g in
  let rec go u acc p =
    if p = 0.0 then ()
    else if u = n then add acc p
    else begin
      let deg = Graph.Csr.degree g u in
      if deg = 0 then invalid_arg "Exact: isolated vertex";
      let q = p /. Float.of_int deg in
      let iu = mask land (1 lsl u) <> 0 in
      Graph.Csr.iter_neighbours g u ~f:(fun w ->
          let iw = mask land (1 lsl w) <> 0 in
          let acc' =
            if iu && not iw then acc lor (1 lsl w)
            else if iw && not iu then acc lor (1 lsl u)
            else acc
          in
          go (u + 1) acc' q)
    end
  in
  go 0 mask 1.0

let push_pull_step_dist g ~infected =
  let n = check_size g "Exact.push_pull_step_dist" in
  if infected = [] then invalid_arg "Exact.push_pull_step_dist: empty infected set";
  let mask = mask_of_list "Exact.push_pull_step_dist" n infected in
  let out = Array.make (1 lsl n) 0.0 in
  push_pull_next g mask ~add:(fun m p -> out.(m) <- out.(m) +. p);
  sorted_dist (Array.to_list (Array.mapi (fun m p -> (m, p)) out))

(* Monotone informed-set chains for the rumour protocols: evolve a sparse
   distribution over informed sets, dropping mass the moment it reaches
   the full set. [step_of mask] returns the one-round successor
   distribution of [mask] (memoised: the chains revisit masks often). *)
let informed_survival name g ~start ~t_max ~step_of =
  let n = check_size g name in
  check_vertex g name start;
  if t_max < 0 then invalid_arg (name ^ ": t_max >= 0");
  let start_mask = 1 lsl start in
  let full = (1 lsl n) - 1 in
  let survival = Array.make (t_max + 1) 0.0 in
  if start_mask = full then survival
  else begin
    let memo = Hashtbl.create 64 in
    let step mask =
      match Hashtbl.find_opt memo mask with
      | Some d -> d
      | None ->
        let d = step_of mask in
        Hashtbl.replace memo mask d;
        d
    in
    let alive = ref (Hashtbl.create 16) in
    Hashtbl.replace !alive start_mask 1.0;
    survival.(0) <- 1.0;
    for t = 1 to t_max do
      let next = Hashtbl.create 64 in
      let total = ref 0.0 in
      Hashtbl.iter
        (fun mask p ->
          List.iter
            (fun (mask', q) ->
              if mask' <> full then begin
                let pq = p *. q in
                let prev = Option.value ~default:0.0 (Hashtbl.find_opt next mask') in
                Hashtbl.replace next mask' (prev +. pq);
                total := !total +. pq
              end)
            (step mask))
        !alive;
      alive := next;
      survival.(t) <- !total
    done;
    survival
  end

let pull_cover_survival g ~start ~t_max =
  let n = Graph.Csr.n_vertices g in
  informed_survival "Exact.pull_cover_survival" g ~start ~t_max ~step_of:(fun mask ->
      let p_next = pull_next_probabilities g mask in
      let acc = ref [] in
      expand_product n p_next ~weight:1.0 ~add:(fun m p -> acc := (m, p) :: !acc);
      !acc)

let push_pull_cover_survival g ~start ~t_max =
  informed_survival "Exact.push_pull_cover_survival" g ~start ~t_max
    ~step_of:(fun mask ->
      let acc = Hashtbl.create 32 in
      push_pull_next g mask ~add:(fun m p ->
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc m) in
          Hashtbl.replace acc m (prev +. p));
      Hashtbl.fold (fun m p l -> (m, p) :: l) acc [])

(* One SIS round as a product measure: given the previous infected set
   [A], vertex [u] is infected next round with probability 1 if
   persistent, and otherwise with

     stays + (1 - stays) * p_hit,   stays = [u ∈ A](1 - recovery)

   where p_hit is the chance that [u]'s contact picks hit [A] — matching
   [Epidemic.Sis.step]'s order (recovery first, then exposure of every
   currently-susceptible vertex against the previous infected set). *)
let sis_next_probabilities g ~contacts ~recovery ~persistent mask =
  let n = Graph.Csr.n_vertices g in
  Array.init n (fun u ->
      if persistent = Some u then 1.0
      else begin
        let deg = Graph.Csr.degree g u in
        let hits =
          Graph.Csr.fold_neighbours g u ~init:0 ~f:(fun acc w ->
              if mask land (1 lsl w) <> 0 then acc + 1 else acc)
        in
        let p_hit = Branching.infection_probability_counts contacts ~degree:deg ~infected:hits in
        let stays = if mask land (1 lsl u) <> 0 then 1.0 -. recovery else 0.0 in
        stays +. ((1.0 -. stays) *. p_hit)
      end)

let sis_validate name g ~recovery ~persistent =
  let n = check_size g name in
  if recovery < 0.0 || recovery > 1.0 then invalid_arg (name ^ ": recovery outside [0, 1]");
  Option.iter (fun v -> check_vertex g name v) persistent;
  n

let sis_step_dist g ~contacts ~recovery ~persistent ~infected =
  let n = sis_validate "Exact.sis_step_dist" g ~recovery ~persistent in
  if infected = [] && persistent = None then
    invalid_arg "Exact.sis_step_dist: nobody infected";
  let mask =
    mask_of_list "Exact.sis_step_dist" n infected
    lor (match persistent with Some v -> 1 lsl v | None -> 0)
  in
  let p_next = sis_next_probabilities g ~contacts ~recovery ~persistent mask in
  let out = Array.make (1 lsl n) 0.0 in
  expand_product n p_next ~weight:1.0 ~add:(fun m p -> out.(m) <- out.(m) +. p);
  sorted_dist (Array.to_list (Array.mapi (fun m p -> (m, p)) out))

let sis_extinct_series g ~contacts ~recovery ~start ~t_max =
  let n = sis_validate "Exact.sis_extinct_series" g ~recovery ~persistent:None in
  if start = [] then invalid_arg "Exact.sis_extinct_series: empty start";
  if t_max < 0 then invalid_arg "Exact.sis_extinct_series: t_max >= 0";
  let start_mask = mask_of_list "Exact.sis_extinct_series" n start in
  let size = 1 lsl n in
  let dist = Array.make size 0.0 in
  dist.(start_mask) <- 1.0;
  let out = Array.make (t_max + 1) 0.0 in
  out.(0) <- dist.(0);
  let cur = ref dist and next = ref (Array.make size 0.0) in
  for t = 1 to t_max do
    Array.fill !next 0 size 0.0;
    (* The empty set is absorbing: every p_next is 0 there, so mass at 0
       flows straight back to 0 through the same product expansion. *)
    for mask = 0 to size - 1 do
      let p = !cur.(mask) in
      if p > 0.0 then begin
        let p_next = sis_next_probabilities g ~contacts ~recovery ~persistent:None mask in
        let nx = !next in
        expand_product n p_next ~weight:p ~add:(fun m q -> nx.(m) <- nx.(m) +. q)
      end
    done;
    let tmp = !cur in
    cur := !next;
    next := tmp;
    out.(t) <- !cur.(0)
  done;
  out

(* --- The SEIR oracle. ---------------------------------------------------

   One SEIR round factors exactly like the SIS round: timer transitions
   (E->I, I->R) are deterministic, and the only randomness is each still-
   susceptible vertex's contact draw against the infectious set
   snapshotted at the start of the round — so the newly-exposed set is a
   product measure over the susceptibles, mirroring
   [Epidemic.Seir.step]'s order (timers first, then exposure of every
   susceptible against the snapshot). *)

let seir_exposure_probabilities g ~contacts ~inf_mask ~sus_mask =
  let n = Graph.Csr.n_vertices g in
  Array.init n (fun u ->
      if sus_mask land (1 lsl u) = 0 then 0.0
      else begin
        let deg = Graph.Csr.degree g u in
        let hits =
          Graph.Csr.fold_neighbours g u ~init:0 ~f:(fun acc w ->
              if inf_mask land (1 lsl w) <> 0 then acc + 1 else acc)
        in
        Branching.infection_probability_counts contacts ~degree:deg ~infected:hits
      end)

let seir_validate name ~latent_rounds ~infectious_rounds =
  if latent_rounds < 0 then invalid_arg (name ^ ": latent_rounds >= 0");
  if infectious_rounds < 1 then invalid_arg (name ^ ": infectious_rounds >= 1")

let seir_step_dist g ~contacts ~infectious ~susceptible =
  let name = "Exact.seir_step_dist" in
  let n = check_size g name in
  let inf_mask = mask_of_list name n infectious in
  let sus_mask = mask_of_list name n susceptible in
  if inf_mask = 0 then invalid_arg (name ^ ": nobody infectious");
  if inf_mask land sus_mask <> 0 then
    invalid_arg (name ^ ": infectious and susceptible overlap");
  let p_next = seir_exposure_probabilities g ~contacts ~inf_mask ~sus_mask in
  let out = Array.make (1 lsl n) 0.0 in
  expand_product n p_next ~weight:1.0 ~add:(fun m p -> out.(m) <- out.(m) +. p);
  sorted_dist (Array.to_list (Array.mapi (fun m p -> (m, p)) out))

(* Dense evolution is hopeless for SEIR (the per-vertex state is not a
   bit), so the chain runs over a sparse table of mixed-radix states:
   vertex [v] contributes [code * base^v] with

     code 0                      = Susceptible
     code t, 1 <= t <= L         = Exposed, t latent rounds remaining
     code L + t, 1 <= t <= J     = Infectious, t rounds remaining
     code L + J + 1              = Recovered

   (L = latent_rounds, J = infectious_rounds). Timers are monotone and
   each vertex is infected at most once, so the chain absorbs — no
   Exposed or Infectious vertex left — within n(L + J) rounds
   deterministically; [seir_evolve] steps the table, moving absorbed
   mass into the per-attack-count accumulator, and is shared by the
   attack-rate and extinction exports. *)
let seir_evolve g ~contacts ~latent_rounds ~infectious_rounds ~start ~on_round =
  let name = "Exact.seir" in
  let n = check_size g name in
  seir_validate name ~latent_rounds ~infectious_rounds;
  if start = [] then invalid_arg (name ^ ": empty start");
  let start_mask = mask_of_list name n start in
  let base = latent_rounds + infectious_rounds + 2 in
  if float_of_int n *. log (float_of_int base) > 42.0 then
    invalid_arg (name ^ ": state space exceeds 62 bits (shrink the timers)");
  let pow = Array.make n 1 in
  for v = 1 to n - 1 do
    pow.(v) <- pow.(v - 1) * base
  done;
  let code state v = state / pow.(v) mod base in
  let r_code = latent_rounds + infectious_rounds + 1 in
  let i_full = latent_rounds + infectious_rounds in
  let expose_code = if latent_rounds > 0 then latent_rounds else i_full in
  let init = ref 0 in
  for v = 0 to n - 1 do
    if start_mask land (1 lsl v) <> 0 then init := !init + (i_full * pow.(v))
  done;
  let attack = Array.make (n + 1) 0.0 in
  let absorbed = ref 0.0 in
  let absorb state q =
    let sus = ref 0 in
    for v = 0 to n - 1 do
      if code state v = 0 then incr sus
    done;
    attack.(n - !sus) <- attack.(n - !sus) +. q;
    absorbed := !absorbed +. q
  in
  let live = ref (Hashtbl.create 16) in
  Hashtbl.replace !live !init 1.0;
  let max_rounds = (n * (latent_rounds + infectious_rounds)) + 1 in
  let t = ref 0 in
  let continue = ref (on_round ~t:0 ~absorbed:!absorbed) in
  while !continue && Hashtbl.length !live > 0 do
    if !t > max_rounds then failwith (name ^ ": chain failed to absorb");
    let next = Hashtbl.create 64 in
    Hashtbl.iter
      (fun state p ->
        let inf_mask = ref 0 and sus_mask = ref 0 in
        let advanced = ref 0 in
        for v = 0 to n - 1 do
          let c = code state v in
          let c' =
            if c = 0 then begin
              sus_mask := !sus_mask lor (1 lsl v);
              0
            end
            else if c <= latent_rounds then
              if c = 1 then i_full else c - 1
            else if c <= i_full then begin
              inf_mask := !inf_mask lor (1 lsl v);
              if c = latent_rounds + 1 then r_code else c - 1
            end
            else r_code
          in
          advanced := !advanced + (c' * pow.(v))
        done;
        let p_next =
          seir_exposure_probabilities g ~contacts ~inf_mask:!inf_mask
            ~sus_mask:!sus_mask
        in
        expand_product n p_next ~weight:p ~add:(fun m q ->
            let st = ref !advanced in
            for v = 0 to n - 1 do
              if m land (1 lsl v) <> 0 then st := !st + (expose_code * pow.(v))
            done;
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt next !st) in
            Hashtbl.replace next !st (prev +. q)))
      !live;
    let next_live = Hashtbl.create 64 in
    Hashtbl.iter
      (fun state q ->
        let dead = ref true in
        for v = 0 to n - 1 do
          let c = code state v in
          if c <> 0 && c <> r_code then dead := false
        done;
        if !dead then absorb state q else Hashtbl.replace next_live state q)
      next;
    live := next_live;
    incr t;
    continue := on_round ~t:!t ~absorbed:!absorbed
  done;
  attack

let seir_attack_dist g ~contacts ~latent_rounds ~infectious_rounds ~start =
  seir_evolve g ~contacts ~latent_rounds ~infectious_rounds ~start
    ~on_round:(fun ~t:_ ~absorbed:_ -> true)

let seir_extinct_series g ~contacts ~latent_rounds ~infectious_rounds ~start
    ~t_max =
  if t_max < 0 then invalid_arg "Exact.seir_extinct_series: t_max >= 0";
  let out = Array.make (t_max + 1) 0.0 in
  let _attack =
    seir_evolve g ~contacts ~latent_rounds ~infectious_rounds ~start
      ~on_round:(fun ~t ~absorbed ->
        if t <= t_max then out.(t) <- absorbed;
        t < t_max)
  in
  (* If the chain absorbed before [t_max], extinction stays at the full
     absorbed mass from there on. *)
  for t = 1 to t_max do
    if out.(t) < out.(t - 1) then out.(t) <- out.(t - 1)
  done;
  out

(* Absorption probabilities of the continuous-time contact process
   (infection rate [lambda] per directed contact edge, recovery rate 1),
   over the jump chain on (infected, ever-infected) pairs. "Fully
   exposed" absorbs the moment every vertex has been infected at least
   once — exactly when [Epidemic.Contact.run] declares [Fully_exposed] —
   and extinction absorbs with value 0. Transmissions to
   already-infected neighbours are self-loops and drop out of the
   absorption equations. Solved by value iteration (the jump chain
   absorbs geometrically on connected graphs). *)
let contact_absorption g ~infection_rate ~start =
  let n = check_size g "Exact.contact_absorption" in
  if infection_rate < 0.0 then invalid_arg "Exact.contact_absorption: infection_rate >= 0";
  if start = [] then invalid_arg "Exact.contact_absorption: empty start";
  let start_mask = mask_of_list "Exact.contact_absorption" n start in
  let full = (1 lsl n) - 1 in
  if start_mask = full then 1.0
  else begin
    let key inf ever = inf lor (ever lsl n) in
    (* Enumerate live states reachable from the start. *)
    let states = Hashtbl.create 64 in
    let frontier = Queue.create () in
    let visit inf ever =
      let k = key inf ever in
      if not (Hashtbl.mem states k) then begin
        Hashtbl.replace states k 0.0;
        Queue.add (inf, ever) frontier
      end
    in
    visit start_mask start_mask;
    let transitions = Hashtbl.create 64 in
    while not (Queue.is_empty frontier) do
      let inf, ever = Queue.pop frontier in
      let outs = ref [] in
      let total = ref 0.0 in
      for v = 0 to n - 1 do
        if inf land (1 lsl v) <> 0 then begin
          (* recovery of v at rate 1 *)
          let inf' = inf land lnot (1 lsl v) in
          outs := (1.0, inf', ever) :: !outs;
          total := !total +. 1.0
        end
        else begin
          (* infection of susceptible v at rate lambda per infected
             neighbour *)
          let hits =
            Graph.Csr.fold_neighbours g v ~init:0 ~f:(fun acc w ->
                if inf land (1 lsl w) <> 0 then acc + 1 else acc)
          in
          if hits > 0 && infection_rate > 0.0 then begin
            let rate = infection_rate *. Float.of_int hits in
            outs := (rate, inf lor (1 lsl v), ever lor (1 lsl v)) :: !outs;
            total := !total +. rate
          end
        end
      done;
      List.iter
        (fun (_, inf', ever') -> if inf' <> 0 && ever' <> full then visit inf' ever')
        !outs;
      Hashtbl.replace transitions (key inf ever) (!total, !outs)
    done;
    (* Value iteration for h(s) = P(fully exposed | s). *)
    let value inf' ever' =
      if ever' = full then 1.0
      else if inf' = 0 then 0.0
      else Option.value ~default:0.0 (Hashtbl.find_opt states (key inf' ever'))
    in
    let delta = ref 1.0 and sweeps = ref 0 in
    while !delta > 1e-13 && !sweeps < 1_000_000 do
      delta := 0.0;
      Hashtbl.iter
        (fun k (total, outs) ->
          let acc =
            List.fold_left
              (fun acc (rate, inf', ever') -> acc +. (rate *. value inf' ever'))
              0.0 outs
          in
          let h = acc /. total in
          let prev = Hashtbl.find states k in
          if Float.abs (h -. prev) > !delta then delta := Float.abs (h -. prev);
          Hashtbl.replace states k h)
        transitions;
      incr sweeps
    done;
    if !delta > 1e-13 then failwith "Exact.contact_absorption: did not converge";
    Hashtbl.find states (key start_mask start_mask)
  end
