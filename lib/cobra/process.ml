module Bitset = Dstruct.Bitset
module Intvec = Dstruct.Intvec

type t = {
  graph : Graph.View.t;
  branching : Branching.t;
  mutable frontier : Intvec.t; (* members of C_t, no duplicates *)
  mutable next : Intvec.t; (* scratch for C_{t+1} *)
  mutable in_frontier : Bitset.t; (* membership for [frontier]: O(1) [active] *)
  mutable in_next : Bitset.t; (* membership for [next]; swapped with [in_frontier] *)
  visited : Bitset.t;
  mutable visited_count : int;
  mutable round : int;
  mutable transmissions : int;
}

let check_start g start =
  if start = [] then invalid_arg "Process: empty start set";
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.View.n_vertices g then
        invalid_arg "Process: start vertex out of range")
    start

let load_start p start =
  check_start p.graph start;
  Intvec.clear p.frontier;
  Intvec.clear p.next;
  Bitset.clear p.in_frontier;
  Bitset.clear p.in_next;
  Bitset.clear p.visited;
  p.visited_count <- 0;
  p.round <- 0;
  p.transmissions <- 0;
  List.iter
    (fun v ->
      if not (Bitset.mem p.visited v) then begin
        Bitset.add p.visited v;
        p.visited_count <- p.visited_count + 1;
        Bitset.add p.in_frontier v;
        Intvec.push p.frontier v
      end)
    start

let create g ~branching ~start =
  let n = Graph.View.n_vertices g in
  if n = 0 then invalid_arg "Process.create: empty graph";
  let p =
    {
      graph = g;
      branching;
      frontier = Intvec.create ~capacity:64 ();
      next = Intvec.create ~capacity:64 ();
      in_frontier = Bitset.create n;
      in_next = Bitset.create n;
      visited = Bitset.create n;
      visited_count = 0;
      round = 0;
      transmissions = 0;
    }
  in
  load_start p start;
  p

let reset p ~start = load_start p start

let graph p = p.graph
let branching p = p.branching
let round p = p.round
let frontier_size p = Intvec.length p.frontier
let frontier p = Intvec.to_array p.frontier
(* O(1): [in_frontier] mirrors [frontier] at all times (the bitsets are
   swapped along with the vectors at the end of each round). *)
let active p v =
  (* Out-of-range vertices are simply not members, as before. *)
  v >= 0 && v < Graph.View.n_vertices p.graph && Bitset.unsafe_mem p.in_frontier v

let visited p v = Bitset.mem p.visited v
let visited_count p = p.visited_count
let is_covered p = p.visited_count = Graph.View.n_vertices p.graph
let transmissions p = p.transmissions

let step p rng =
  let g = p.graph in
  (* [w] comes from the adjacency array, so it is in range by
     construction: the unchecked bitset operations are safe. *)
  let push_pick w =
    if not (Bitset.unsafe_mem p.in_next w) then begin
      Bitset.unsafe_add p.in_next w;
      Intvec.push p.next w;
      if not (Bitset.unsafe_mem p.visited w) then begin
        Bitset.unsafe_add p.visited w;
        p.visited_count <- p.visited_count + 1
      end
    end
  in
  Intvec.iter
    (fun v ->
      let picks = Branching.iter_picks p.branching rng g v ~f:push_pick in
      p.transmissions <- p.transmissions + picks)
    p.frontier;
  (* Clear the outgoing frontier's membership bits: member-wise while the
     frontier is sparse, whole-array fill once it holds more members than
     words (past that point the word fill writes less memory). Both paths
     leave the bitset empty and draw nothing from [rng]. Then swap both
     the vectors and their membership bitsets, keeping [active] O(1). *)
  let nw = (Graph.View.n_vertices g + Bitset.word_size - 1) / Bitset.word_size in
  if Intvec.length p.frontier <= nw then
    Intvec.iter (fun v -> Bitset.unsafe_remove p.in_frontier v) p.frontier
  else Bitset.clear p.in_frontier;
  let old = p.frontier in
  p.frontier <- p.next;
  p.next <- old;
  Intvec.clear p.next;
  let old_bits = p.in_frontier in
  p.in_frontier <- p.in_next;
  p.in_next <- old_bits;
  p.round <- p.round + 1

let default_cap g = 10_000 + (100 * Graph.View.n_vertices g)

let cover_time ?cap g ~branching ~start rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let p = create g ~branching ~start:[ start ] in
  let rec go () =
    if is_covered p then Some p.round
    else if p.round >= cap then None
    else begin
      step p rng;
      go ()
    end
  in
  go ()

let hitting_time ?cap g ~branching ~start ~target rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let p = create g ~branching ~start:[ start ] in
  let rec go () =
    if visited p target then Some p.round
    else if p.round >= cap then None
    else begin
      step p rng;
      go ()
    end
  in
  go ()

let first_visit_times ?cap g ~branching ~start rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let n = Graph.View.n_vertices g in
  let p = create g ~branching ~start:[ start ] in
  let first = Array.make n (-1) in
  first.(start) <- 0;
  while (not (is_covered p)) && p.round < cap do
    step p rng;
    Intvec.iter (fun v -> if first.(v) < 0 then first.(v) <- p.round) p.frontier
  done;
  first

let frontier_trajectory ?cap g ~branching ~start rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let p = create g ~branching ~start:[ start ] in
  let sizes = Intvec.create () in
  Intvec.push sizes (frontier_size p);
  while (not (is_covered p)) && p.round < cap do
    step p rng;
    Intvec.push sizes (frontier_size p)
  done;
  Intvec.to_array sizes
