(** The unified stochastic-process interface.

    Every process this repository studies — COBRA, BIPS, the simple
    random walk, the push/pull/push-pull protocols, coalescing walks
    with voting, the unvisited-edge-preferring walk, and (in
    [Epidemic.Kernels]) SIS, the contact process, the herd model and
    the SEIR process — is driveable through one
    signature: [create] builds mutable round-based state, [step] plays
    one round against an explicit stream, [is_complete] tests the
    process's own absorption condition, and [observe] reads named
    numeric observables of the current state. One driver loop
    ({!run}) therefore serves every process; the sweep subsystem
    ([Simkit.Campaign] + the [sweep] CLI) and the single-shot CLI
    subcommands both build on it.

    The contract that makes kernel-driven execution interchangeable
    with the historical per-process loops ([Process.cover_time],
    [Bips.infection_time], [Epidemic.Sis.run], ...): a kernel's [step]
    consumes {e exactly} the randomness of one round of the process it
    wraps, and {!run}'s loop — step while not complete and under the
    cap — performs the same sequence of [step] calls as those loops.
    [test/sweep] pins this stream-for-stream equivalence for all twelve
    kernels, and [test/cli]'s golden transcripts pin the resulting CLI
    output byte-for-byte. *)

(** The union of the knobs the processes understand. Each kernel reads
    the fields relevant to it and ignores the rest; {!default_params}
    matches the CLI defaults. *)
type params = {
  branching : Branching.t;  (** COBRA/BIPS branching; SIS/herd contacts *)
  start : int;  (** start vertex / source / index case *)
  walkers : int;  (** random walk: number of independent walkers *)
  rate : float;  (** contact process: per-edge infection rate *)
  horizon : float;  (** contact process: simulated-time horizon *)
  recovery : float;  (** SIS: per-round recovery probability *)
  persistent : bool;
      (** SIS/contact: never-recovering source; herd: PI animal *)
  infectious_rounds : int;  (** herd/seir: infectious-window duration *)
  immune_rounds : int;  (** herd: post-infection immunity duration *)
  latent_rounds : int;  (** seir: Exposed duration before infectiousness *)
  cap : int option;
      (** round cap for {!run}; [None] selects the kernel's default *)
}

val default_params : params

(** Mutable process state behind first-class functions. [step] plays one
    round (one walk move for the random walk; the whole event-driven run
    for the continuous-time contact process, which has no round
    structure). [rounds] counts completed [step]s for the cap. *)
type instance = {
  step : Prng.Rng.t -> unit;
  is_complete : unit -> bool;
  rounds : unit -> int;
  observe : unit -> (string * float) list;
}

(** A process kernel: a named constructor of instances. *)
type t = {
  name : string;  (** CLI / grid identifier, e.g. ["cobra"] *)
  doc : string;  (** one-line description *)
  default_cap : Graph.View.t -> int;
      (** the cap {!run} applies when [params.cap = None]; matches the
          wrapped process's historical default *)
  create : Graph.View.t -> params -> instance;
}

(** The result of driving an instance to completion or the cap. *)
type outcome = {
  completed : bool;  (** [is_complete] held when the loop stopped *)
  rounds : int;  (** rounds played *)
  observations : (string * float) list;  (** final [observe] *)
}

(** [run t g params rng] creates an instance and steps it until
    [is_complete] or [params.cap] (default [t.default_cap g]) rounds.
    The loop is the exact shape of the historical one-shot drivers, so
    for equal input streams the results coincide bit-for-bit. *)
val run : t -> Graph.View.t -> params -> Prng.Rng.t -> outcome

(** [observation o key] looks a named observable up in [o]. *)
val observation : outcome -> string -> float option

(** {1 Kernel instances}

    Observables: every kernel reports ["rounds"]; coverage-style kernels
    also report ["visited"]; see each kernel's doc string for the rest.
    [Epidemic.Kernels] adds [sis], [contact], [herd] and [seir]. *)

(** COBRA cover: complete when every vertex has been active at least
    once. Observes ["rounds"; "visited"; "frontier"; "transmissions"]. *)
val cobra : t

(** BIPS: complete at saturation [A_t = V]. Observes
    ["rounds"; "infected"]. *)
val bips : t

(** Simple random walk(s) from [start] ([params.walkers] independent
    walkers; 1 reproduces [Rwalk.cover_time], more reproduces
    [Rwalk.multi_cover_time]): complete at cover. Observes
    ["rounds"; "visited"]. *)
val rwalk : t

(** Push rumour spreading: complete when everyone is informed. Observes
    ["rounds"; "informed"; "transmissions"]. *)
val push : t

(** Pull rumour spreading ([Push.pull];
    Fountoulakis–Panagiotou, see PAPERS.md): each round every uninformed
    vertex calls one random neighbour and copies the rumour if the
    callee knows it. Complete when everyone is informed. Observes
    ["rounds"; "informed"; "transmissions"]. *)
val pull : t

(** Push-pull rumour spreading ([Push.push_pull];
    Fountoulakis–Panagiotou, see PAPERS.md): each round every vertex
    contacts one random neighbour and information crosses the contact
    both ways. Complete when everyone is informed. Observes
    ["rounds"; "informed"; "transmissions"]. *)
val push_pull : t

(** Coalescing random walks with voting ({!Coalesce};
    Cooper–Elsässer–Ono–Radzik, see PAPERS.md): [params.walkers]
    clusters starting at [(start + i) mod n] merge on meeting. Complete
    at consensus (one cluster). Observes
    ["rounds"; "clusters"; "walkers"; "merged"]. *)
val coalesce : t

(** Unvisited-edge-preferring walk ({!Explore};
    Berenbrink–Cooper–Friedetzky, see PAPERS.md): a single walker from
    [start] that prefers unvisited incident edges. Complete at vertex
    cover. Observes ["rounds"; "visited"; "edges"]. *)
val explore : t
