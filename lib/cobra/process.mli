(** The COBRA (COalescing-BRAnching) random walk.

    State: a set [C_t] of active vertices. One round: every [v ∈ C_t]
    independently picks its branching factor's number of neighbours,
    uniformly with replacement; [C_{t+1}] is the union of all picks
    (coalescing: duplicates merge). Active vertices that are not picked
    fall silent — the frontier does not accumulate.

    Definitions follow the paper: [hit(v)] is the first [t >= 0] with
    [v ∈ C_t] (so every start vertex has hitting time 0), and the cover
    time is the first [t] at which every vertex has been active at least
    once, i.e. [max_v hit(v)]. *)

type t

(** [create g ~branching ~start] initialises with [C_0 = start]
    (deduplicated, non-empty, in range). *)
val create : Graph.View.t -> branching:Branching.t -> start:int list -> t

(** [graph p], [branching p] recover the configuration. *)
val graph : t -> Graph.View.t

val branching : t -> Branching.t

(** [round p] is the number of completed rounds [t]. *)
val round : t -> int

(** [frontier_size p] is [|C_t|]. *)
val frontier_size : t -> int

(** [frontier p] is a fresh array of [C_t]'s members (unspecified order). *)
val frontier : t -> int array

(** [active p v] tests [v ∈ C_t]. *)
val active : t -> int -> bool

(** [visited p v] tests whether [v] has ever been active. *)
val visited : t -> int -> bool

(** [visited_count p] counts vertices visited so far. *)
val visited_count : t -> int

(** [is_covered p] is [visited_count p = n]. *)
val is_covered : t -> bool

(** [step p rng] plays one round. The frontier never becomes empty: every
    active vertex makes at least one pick. *)
val step : t -> Prng.Rng.t -> unit

(** [reset p ~start] rewinds to round 0 with a new start set, reusing the
    allocated buffers. *)
val reset : t -> start:int list -> unit

(** {1 One-shot measurements} *)

(** [cover_time ?cap g ~branching ~start rng] runs until covered and
    returns the number of rounds, or [None] if [cap] rounds (default
    [10_000 + 100 * n]) pass first. *)
val cover_time :
  ?cap:int -> Graph.View.t -> branching:Branching.t -> start:int -> Prng.Rng.t -> int option

(** [hitting_time ?cap g ~branching ~start ~target rng] is the first round
    at which [target] becomes active (0 if [target = start]), or [None] on
    cap. *)
val hitting_time :
  ?cap:int ->
  Graph.View.t ->
  branching:Branching.t ->
  start:int ->
  target:int ->
  Prng.Rng.t ->
  int option

(** [frontier_trajectory ?cap g ~branching ~start rng] runs to cover (or
    cap) and returns [|C_t|] for [t = 0, 1, ...] — the growth curves of
    the E9-style reports. *)
val frontier_trajectory :
  ?cap:int ->
  Graph.View.t ->
  branching:Branching.t ->
  start:int ->
  Prng.Rng.t ->
  int array

(** [first_visit_times ?cap g ~branching ~start rng] runs to cover (or
    [cap]) and returns the first round at which each vertex became
    active; [start] gets 0, never-visited vertices (cap hit) get [-1].
    Since information travels one hop per round, the value at [v] is at
    least the BFS distance from [start] — the deterministic lower bound
    the E13 experiment exhibits. *)
val first_visit_times :
  ?cap:int -> Graph.View.t -> branching:Branching.t -> start:int -> Prng.Rng.t -> int array

(** [transmissions p] is the total number of pushes performed so far —
    the "limited transmission" budget the paper's introduction motivates
    (each active vertex transmits at most [max_picks] times per round). *)
val transmissions : t -> int
