(* Bit-sliced Monte-Carlo driver: 64 independent replicas advance in the
   bit-lanes of each word, so one pass over the CSR plays one round of
   all 64 trials of a kernel at once.

   Lane discipline. Lane [j] of a batch is trial [j]: its randomness
   comes from trial [j]'s own stream ([Prng.Lanes] is seeded with the
   scalar engine's derived trial seeds), its state lives in lane [j] of
   the {!Dstruct.Lanemat} occupancy matrices, and its outcome is read
   back independently of every other lane. Equality with the scalar
   engine is distributional per lane, not draw-for-draw: sliced steppers
   consume bit planes where the scalar engine consumes floats and
   62-bit rejection, share rejection rounds across lanes, and skip
   draws no live lane can observe (each skipped draw is fresh
   randomness independent of the skip condition, so per-lane marginals
   and cross-lane independence are preserved — the conformance suite
   checks both).

   Completion is per lane. A lane that completes (saturates, covers,
   goes extinct, ...) is {e frozen}: the steppers blend
   [next = (computed AND live) OR (current AND NOT live)], so a finished
   lane's state stops evolving exactly as the scalar driver stops
   stepping a finished trial — final observations match. Lanes beyond
   [n_active] (a batch running fewer than 64 trials) are never live and
   are masked out of every reduction, so phantom replicas cannot leak
   into any statistic. *)

module Lanemat = Dstruct.Lanemat

let full = 0xFFFFFFFF
let fi = float_of_int

(* Trailing-zero count of a 32-bit cell, for walking set lane bits. *)
let ctz x =
  let x = (x land -x) - 1 in
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0x3F
let round_cap g = 10_000 + (100 * Graph.View.n_vertices g)

type instance = {
  step : live_lo:int -> live_hi:int -> unit;
  done_mask : unit -> int * int;
  observe : lane:int -> (string * float) list;
  state : unit -> Lanemat.t;
}

type t = {
  name : string;
  default_cap : Graph.View.t -> int;
  supports : Kernel.params -> bool;
  create : Graph.View.t -> Kernel.params -> Prng.Lanes.t -> instance;
}

(* ------------------------------------------------------------------ *)
(* Sliced neighbour picks                                              *)

module Slice = struct
  type picker = {
    graph : Graph.View.t;
    branching : Branching.t option; (* None: single uniform pick (push) *)
    lp : int array; (* index bit-planes of the last draw, lo block *)
    hp : int array;
    glo : int array; (* mux-gather scratch, one cell per padded index *)
    ghi : int array;
    mutable lo : int; (* result cells of the last mask-producing call *)
    mutable hi : int;
  }

  let supported = function
    | Branching.Fixed _ | Branching.One_plus _ -> true
    (* Sliced sampling without replacement is not worth the lane
       machinery; [Distinct] batches fall back to the scalar engine. *)
    | Branching.Distinct _ -> false

  let make graph branching =
    (match branching with
    | Some b when not (supported b) ->
      invalid_arg "Lanes: Distinct branching has no sliced stepper"
    | _ -> ());
    let nbits_max = Prng.Lanes.bits_for (max 1 (Graph.View.max_degree graph)) in
    {
      graph;
      branching;
      lp = Array.make (max 1 nbits_max) 0;
      hp = Array.make (max 1 nbits_max) 0;
      glo = Array.make (1 lsl nbits_max) 0;
      ghi = Array.make (1 lsl nbits_max) 0;
      lo = 0;
      hi = 0;
    }

  let picker graph branching = make graph (Some branching)
  let single_picker graph = make graph None
  let lo p = p.lo
  let hi p = p.hi

  (* OR of [members]'s cells over [v]'s neighbourhood, into [lo]/[hi]:
     bit [j] set iff some neighbour of [v] is occupied in lane [j]. The
     draw-free pre-test behind every skip decision. *)
  let nb_or p members ~v =
    let g = p.graph in
    let deg = Graph.View.unsafe_degree g v in
    let acc_lo = ref 0 and acc_hi = ref 0 in
    for d = 0 to deg - 1 do
      let w = Graph.View.unsafe_nth_neighbour g v d in
      acc_lo := !acc_lo lor Lanemat.unsafe_lo members w;
      acc_hi := !acc_hi lor Lanemat.unsafe_hi members w
    done;
    p.lo <- !acc_lo;
    p.hi <- !acc_hi

  (* Fused OR and AND over [v]'s neighbourhood: [lo]/[hi] get the OR,
     the returned pair is the AND. A lane where the AND holds has every
     neighbour occupied, so any pick hits — deterministically, no draw
     needed; a lane where the OR fails cannot hit. The draw is only
     required for lanes strictly in between, which is what lets the
     steppers skip whole pick rounds once neighbourhoods saturate. *)
  let nb_or_and p members ~v =
    let g = p.graph in
    let deg = Graph.View.unsafe_degree g v in
    let or_lo = ref 0 and or_hi = ref 0 in
    let and_lo = ref full and and_hi = ref full in
    for d = 0 to deg - 1 do
      let w = Graph.View.unsafe_nth_neighbour g v d in
      let mlo = Lanemat.unsafe_lo members w in
      let mhi = Lanemat.unsafe_hi members w in
      or_lo := !or_lo lor mlo;
      or_hi := !or_hi lor mhi;
      and_lo := !and_lo land mlo;
      and_hi := !and_hi land mhi
    done;
    p.lo <- !or_lo;
    p.hi <- !or_hi;
    (!and_lo, !and_hi)

  (* Mux-gather: with the index bit-planes of one uniform pick in
     [lp]/[hp] and the scratch arrays holding one cell per padded
     index, fold the tree in half once per bit (LSB first); cell 0 ends
     up holding, in lane [j], the scratch value of lane [j]'s chosen
     index. *)
  let mux p ~nbits =
    let width = ref (1 lsl nbits) in
    for b = 0 to nbits - 1 do
      let pl = p.lp.(b) and ph = p.hp.(b) in
      width := !width lsr 1;
      for i = 0 to !width - 1 do
        p.glo.(i) <-
          (p.glo.(2 * i) land lnot pl) lor (p.glo.((2 * i) + 1) land pl);
        p.ghi.(i) <-
          (p.ghi.(2 * i) land lnot ph) lor (p.ghi.((2 * i) + 1) land ph)
      done
    done

  (* One uniform pick for every lane at once: bit [j] of the result is
     lane [j]'s chosen neighbour's membership in [members]. *)
  let pick_member p gen members ~v ~deg ~nbits =
    let g = p.graph in
    Prng.Lanes.uniform_planes gen ~bound:deg ~nbits ~lo:p.lp ~hi:p.hp;
    for d = 0 to deg - 1 do
      let w = Graph.View.unsafe_nth_neighbour g v d in
      p.glo.(d) <- Lanemat.unsafe_lo members w;
      p.ghi.(d) <- Lanemat.unsafe_hi members w
    done;
    (* Rejection guarantees every lane's index is < deg, so the padding
       cells are never selected; zero keeps the fold cheap. *)
    for d = deg to (1 lsl nbits) - 1 do
      p.glo.(d) <- 0;
      p.ghi.(d) <- 0
    done;
    mux p ~nbits

  (* Per-lane hit mask of one full branching draw: bit [j] set iff at
     least one of lane [j]'s picks from [v]'s neighbourhood lands in
     [members] — the sliced core of the BIPS / SIS exposure rule. *)
  let hit p gen members ~v =
    let deg = Graph.View.unsafe_degree p.graph v in
    if deg = 0 then invalid_arg "Lanes: isolated vertex";
    let nbits = Prng.Lanes.bits_for deg in
    match p.branching with
    | None | Some (Branching.Fixed 1) ->
      pick_member p gen members ~v ~deg ~nbits;
      p.lo <- p.glo.(0);
      p.hi <- p.ghi.(0)
    | Some (Branching.Fixed k) ->
      let acc_lo = ref 0 and acc_hi = ref 0 in
      for _ = 1 to k do
        pick_member p gen members ~v ~deg ~nbits;
        acc_lo := !acc_lo lor p.glo.(0);
        acc_hi := !acc_hi lor p.ghi.(0)
      done;
      p.lo <- !acc_lo;
      p.hi <- !acc_hi
    | Some (Branching.One_plus rho) ->
      Prng.Lanes.bernoulli gen rho;
      let two_lo = Prng.Lanes.lo gen and two_hi = Prng.Lanes.hi gen in
      pick_member p gen members ~v ~deg ~nbits;
      let acc_lo = ref p.glo.(0) and acc_hi = ref p.ghi.(0) in
      (* The second pick exists only in the lanes whose 1+rho coin came
         up 2; draw it once for all of them, skip it when none did. *)
      if two_lo lor two_hi <> 0 then begin
        pick_member p gen members ~v ~deg ~nbits;
        acc_lo := !acc_lo lor (p.glo.(0) land two_lo);
        acc_hi := !acc_hi lor (p.ghi.(0) land two_hi)
      end;
      p.lo <- !acc_lo;
      p.hi <- !acc_hi
    | Some (Branching.Distinct _) ->
      invalid_arg "Lanes: Distinct branching has no sliced stepper"

  (* One uniform pick scattered forward: for every lane [j] in [base],
     lane [j]'s chosen neighbour of [v] gains lane [j] in [into]. The
     equality-to-constant comparator narrows [base] one index bit-plane
     at a time, so the cost is [deg * nbits] words. *)
  let scatter_one p gen ~v ~base_lo ~base_hi ~into =
    let g = p.graph in
    let deg = Graph.View.unsafe_degree g v in
    if deg = 0 then invalid_arg "Lanes: isolated vertex";
    let nbits = Prng.Lanes.bits_for deg in
    Prng.Lanes.uniform_planes gen ~bound:deg ~nbits ~lo:p.lp ~hi:p.hp;
    for d = 0 to deg - 1 do
      let eq_lo = ref base_lo and eq_hi = ref base_hi in
      for b = 0 to nbits - 1 do
        if (d lsr b) land 1 = 1 then begin
          eq_lo := !eq_lo land p.lp.(b);
          eq_hi := !eq_hi land p.hp.(b)
        end
        else begin
          eq_lo := !eq_lo land lnot p.lp.(b);
          eq_hi := !eq_hi land lnot p.hp.(b)
        end
      done;
      if !eq_lo lor !eq_hi <> 0 then begin
        let w = Graph.View.unsafe_nth_neighbour g v d in
        Lanemat.unsafe_set_lo into w (Lanemat.unsafe_lo into w lor !eq_lo);
        Lanemat.unsafe_set_hi into w (Lanemat.unsafe_hi into w lor !eq_hi)
      end
    done

  (* One full branching draw scattered forward (COBRA's per-frontier
     transmissions): [base] lanes each push to [draws] chosen
     neighbours. *)
  let scatter p gen ~v ~base_lo ~base_hi ~into =
    match p.branching with
    | None | Some (Branching.Fixed 1) ->
      scatter_one p gen ~v ~base_lo ~base_hi ~into
    | Some (Branching.Fixed k) ->
      for _ = 1 to k do
        scatter_one p gen ~v ~base_lo ~base_hi ~into
      done
    | Some (Branching.One_plus rho) ->
      Prng.Lanes.bernoulli gen rho;
      let two_lo = Prng.Lanes.lo gen land base_lo in
      let two_hi = Prng.Lanes.hi gen land base_hi in
      scatter_one p gen ~v ~base_lo ~base_hi ~into;
      if two_lo lor two_hi <> 0 then
        scatter_one p gen ~v ~base_lo:two_lo ~base_hi:two_hi ~into
    | Some (Branching.Distinct _) ->
      invalid_arg "Lanes: Distinct branching has no sliced stepper"
end

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)

let run_batch t g params gen ~n_active =
  if n_active < 1 || n_active > Lanemat.lanes then
    invalid_arg "Lanes.run_batch: n_active outside [1, 64]";
  let cap =
    match params.Kernel.cap with Some c -> c | None -> t.default_cap g
  in
  let active_lo, active_hi = Lanemat.lane_mask n_active in
  let inst = t.create g params gen in
  let finish = Array.make Lanemat.lanes (-1) in
  let done_lo = ref 0 and done_hi = ref 0 in
  let record r =
    let dlo, dhi = inst.done_mask () in
    let new_lo = ref (dlo land active_lo land lnot !done_lo) in
    let new_hi = ref (dhi land active_hi land lnot !done_hi) in
    done_lo := !done_lo lor !new_lo;
    done_hi := !done_hi lor !new_hi;
    while !new_lo <> 0 do
      let bit = !new_lo land - !new_lo in
      finish.(ctz bit) <- r;
      new_lo := !new_lo land lnot bit
    done;
    while !new_hi <> 0 do
      let bit = !new_hi land - !new_hi in
      finish.(32 + ctz bit) <- r;
      new_hi := !new_hi land lnot bit
    done
  in
  record 0;
  let r = ref 0 in
  while (!done_lo <> active_lo || !done_hi <> active_hi) && !r < cap do
    inst.step
      ~live_lo:(active_lo land lnot !done_lo)
      ~live_hi:(active_hi land lnot !done_hi);
    incr r;
    record !r
  done;
  Array.init n_active (fun j ->
      let completed = finish.(j) >= 0 in
      let rounds = if completed then finish.(j) else cap in
      {
        Kernel.completed;
        rounds;
        observations = ("rounds", fi rounds) :: inst.observe ~lane:j;
      })

(* ------------------------------------------------------------------ *)
(* Sliced steppers                                                     *)

let check_start g start =
  if start < 0 || start >= Graph.View.n_vertices g then
    invalid_arg "Lanes: start out of range"

(* BIPS, sliced: every vertex redraws its infection each round from the
   previous infected set — per lane, [u] is infected at [t+1] iff some
   of its branching picks hits [A_t] (the source never recovers). The
   per-vertex neighbourhood OR gates the pick draws: a vertex with no
   infected neighbour in any live lane cannot be hit, so its picks are
   skipped wholesale. *)
let bips =
  {
    name = "bips";
    default_cap = round_cap;
    supports = (fun p -> Slice.supported p.Kernel.branching);
    create =
      (fun g params gen ->
        check_start g params.Kernel.start;
        let n = Graph.View.n_vertices g in
        let source = params.Kernel.start in
        let cur = ref (Lanemat.create n) and nxt = ref (Lanemat.create n) in
        Lanemat.unsafe_set_lo !cur source full;
        Lanemat.unsafe_set_hi !cur source full;
        let picker = Slice.picker g params.Kernel.branching in
        let sat = ref (Lanemat.fold_and !cur) in
        let counts = ref None in
        {
          step =
            (fun ~live_lo ~live_hi ->
              let sat_lo = ref full and sat_hi = ref full in
              for u = 0 to n - 1 do
                let hit_lo = ref full and hit_hi = ref full in
                if u <> source then begin
                  (* A lane with no infected neighbour misses for sure;
                     one with every neighbour infected hits for sure.
                     Only lanes strictly in between need the pick draw,
                     so once neighbourhoods saturate whole rounds of
                     draws are elided (distribution unchanged: skipped
                     draws are fresh bits with a deterministic outcome). *)
                  let and_lo, and_hi = Slice.nb_or_and picker !cur ~v:u in
                  if
                    (Slice.lo picker land lnot and_lo land live_lo)
                    lor (Slice.hi picker land lnot and_hi land live_hi)
                    = 0
                  then begin
                    hit_lo := and_lo;
                    hit_hi := and_hi
                  end
                  else begin
                    Slice.hit picker gen !cur ~v:u;
                    hit_lo := Slice.lo picker;
                    hit_hi := Slice.hi picker
                  end
                end;
                let old_lo = Lanemat.unsafe_lo !cur u in
                let old_hi = Lanemat.unsafe_hi !cur u in
                let new_lo = (!hit_lo land live_lo) lor (old_lo land lnot live_lo) in
                let new_hi = (!hit_hi land live_hi) lor (old_hi land lnot live_hi) in
                Lanemat.unsafe_set_lo !nxt u new_lo;
                Lanemat.unsafe_set_hi !nxt u new_hi;
                sat_lo := !sat_lo land new_lo;
                sat_hi := !sat_hi land new_hi
              done;
              let old = !cur in
              cur := !nxt;
              nxt := old;
              sat := (!sat_lo, !sat_hi);
              counts := None);
          done_mask = (fun () -> !sat);
          observe =
            (fun ~lane ->
              let c =
                match !counts with
                | Some c -> c
                | None ->
                  let c = Lanemat.counts !cur in
                  counts := Some c;
                  c
              in
              [ ("infected", fi c.(lane)) ]);
          state = (fun () -> !cur);
        });
  }

(* COBRA, sliced: the frontier matrix carries each lane's active set;
   every (vertex, lane) pair in a live frontier scatters its branching
   picks into the next frontier, the visited matrix accumulates, and a
   lane completes at cover. Frozen lanes keep their frontier verbatim
   so late observations match the scalar engine's stop-at-completion.
   Per-lane transmission counting would cost a popcount per scatter, so
   the lanes engine does not report ["transmissions"]. *)
let cobra =
  {
    name = "cobra";
    default_cap = round_cap;
    supports = (fun p -> Slice.supported p.Kernel.branching);
    create =
      (fun g params gen ->
        check_start g params.Kernel.start;
        let n = Graph.View.n_vertices g in
        let start = params.Kernel.start in
        let frontier = ref (Lanemat.create n) and nxt = ref (Lanemat.create n) in
        let visited = Lanemat.create n in
        Lanemat.unsafe_set_lo !frontier start full;
        Lanemat.unsafe_set_hi !frontier start full;
        Lanemat.unsafe_set_lo visited start full;
        Lanemat.unsafe_set_hi visited start full;
        let picker = Slice.picker g params.Kernel.branching in
        let cover = ref (Lanemat.fold_and visited) in
        let vcounts = ref None and fcounts = ref None in
        {
          step =
            (fun ~live_lo ~live_hi ->
              Lanemat.clear !nxt;
              for v = 0 to n - 1 do
                let base_lo = Lanemat.unsafe_lo !frontier v land live_lo in
                let base_hi = Lanemat.unsafe_hi !frontier v land live_hi in
                if base_lo lor base_hi <> 0 then
                  Slice.scatter picker gen ~v ~base_lo ~base_hi ~into:!nxt
              done;
              let cov_lo = ref full and cov_hi = ref full in
              for v = 0 to n - 1 do
                (* Frozen lanes keep their frontier; live lanes take the
                   scattered picks. Visited absorbs the new frontier
                   (frozen rows are already subsets of visited). *)
                let f_lo =
                  (Lanemat.unsafe_lo !nxt v land live_lo)
                  lor (Lanemat.unsafe_lo !frontier v land lnot live_lo)
                in
                let f_hi =
                  (Lanemat.unsafe_hi !nxt v land live_hi)
                  lor (Lanemat.unsafe_hi !frontier v land lnot live_hi)
                in
                Lanemat.unsafe_set_lo !nxt v f_lo;
                Lanemat.unsafe_set_hi !nxt v f_hi;
                let vis_lo = Lanemat.unsafe_lo visited v lor f_lo in
                let vis_hi = Lanemat.unsafe_hi visited v lor f_hi in
                Lanemat.unsafe_set_lo visited v vis_lo;
                Lanemat.unsafe_set_hi visited v vis_hi;
                cov_lo := !cov_lo land vis_lo;
                cov_hi := !cov_hi land vis_hi
              done;
              let old = !frontier in
              frontier := !nxt;
              nxt := old;
              cover := (!cov_lo, !cov_hi);
              vcounts := None;
              fcounts := None);
          done_mask = (fun () -> !cover);
          observe =
            (fun ~lane ->
              let v =
                match !vcounts with
                | Some c -> c
                | None ->
                  let c = Lanemat.counts visited in
                  vcounts := Some c;
                  c
              and f =
                match !fcounts with
                | Some c -> c
                | None ->
                  let c = Lanemat.counts !frontier in
                  fcounts := Some c;
                  c
              in
              [ ("visited", fi v.(lane)); ("frontier", fi f.(lane)) ]);
          state = (fun () -> !frontier);
        });
  }

(* Push, sliced: each informed (vertex, lane) pushes to one uniform
   neighbour per round; informed only grows, and a lane completes when
   its informed column fills. As with COBRA, per-lane transmission
   counts are not reported. *)
let push =
  {
    name = "push";
    default_cap = round_cap;
    supports = (fun _ -> true);
    create =
      (fun g params gen ->
        check_start g params.Kernel.start;
        let n = Graph.View.n_vertices g in
        let start = params.Kernel.start in
        let informed = Lanemat.create n in
        let newly = Lanemat.create n in
        Lanemat.unsafe_set_lo informed start full;
        Lanemat.unsafe_set_hi informed start full;
        let picker = Slice.single_picker g in
        let fullm = ref (Lanemat.fold_and informed) in
        let counts = ref None in
        {
          step =
            (fun ~live_lo ~live_hi ->
              Lanemat.clear newly;
              for u = 0 to n - 1 do
                let base_lo = Lanemat.unsafe_lo informed u land live_lo in
                let base_hi = Lanemat.unsafe_hi informed u land live_hi in
                if base_lo lor base_hi <> 0 then
                  Slice.scatter picker gen ~v:u ~base_lo ~base_hi ~into:newly
              done;
              let all_lo = ref full and all_hi = ref full in
              for u = 0 to n - 1 do
                let i_lo =
                  Lanemat.unsafe_lo informed u
                  lor (Lanemat.unsafe_lo newly u land live_lo)
                in
                let i_hi =
                  Lanemat.unsafe_hi informed u
                  lor (Lanemat.unsafe_hi newly u land live_hi)
                in
                Lanemat.unsafe_set_lo informed u i_lo;
                Lanemat.unsafe_set_hi informed u i_hi;
                all_lo := !all_lo land i_lo;
                all_hi := !all_hi land i_hi
              done;
              fullm := (!all_lo, !all_hi);
              counts := None);
          done_mask = (fun () -> !fullm);
          observe =
            (fun ~lane ->
              let c =
                match !counts with
                | Some c -> c
                | None ->
                  let c = Lanemat.counts informed in
                  counts := Some c;
                  c
              in
              [ ("informed", fi c.(lane)) ]);
          state = (fun () -> informed);
        });
  }

let all = [ cobra; bips; push ]
let find name = List.find_opt (fun t -> t.name = name) all
