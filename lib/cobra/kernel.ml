module Bitset = Dstruct.Bitset

type params = {
  branching : Branching.t;
  start : int;
  walkers : int;
  rate : float;
  horizon : float;
  recovery : float;
  persistent : bool;
  infectious_rounds : int;
  immune_rounds : int;
  latent_rounds : int;
  cap : int option;
}

let default_params =
  {
    branching = Branching.cobra_k2;
    start = 0;
    walkers = 1;
    rate = 0.5;
    horizon = 200.0;
    recovery = 0.3;
    persistent = false;
    infectious_rounds = 2;
    immune_rounds = 8;
    latent_rounds = 1;
    cap = None;
  }

type instance = {
  step : Prng.Rng.t -> unit;
  is_complete : unit -> bool;
  rounds : unit -> int;
  observe : unit -> (string * float) list;
}

type t = {
  name : string;
  doc : string;
  default_cap : Graph.View.t -> int;
  create : Graph.View.t -> params -> instance;
}

type outcome = {
  completed : bool;
  rounds : int;
  observations : (string * float) list;
}

(* The loop shape of every historical one-shot driver: test completion
   before each step, stop at the cap. For equal streams this performs the
   identical sequence of per-round draws. *)
let run t g params rng =
  let cap = match params.cap with Some c -> c | None -> t.default_cap g in
  let i = t.create g params in
  while (not (i.is_complete ())) && i.rounds () < cap do
    i.step rng
  done;
  { completed = i.is_complete (); rounds = i.rounds (); observations = i.observe () }

let observation o key = List.assoc_opt key o.observations

let fi = float_of_int

let round_cap g = 10_000 + (100 * Graph.View.n_vertices g)

let cobra =
  {
    name = "cobra";
    doc = "COBRA coalescing-branching walk, run to cover";
    default_cap = round_cap;
    create =
      (fun g params ->
        let p = Process.create g ~branching:params.branching ~start:[ params.start ] in
        {
          step = (fun rng -> Process.step p rng);
          is_complete = (fun () -> Process.is_covered p);
          rounds = (fun () -> Process.round p);
          observe =
            (fun () ->
              [
                ("rounds", fi (Process.round p));
                ("visited", fi (Process.visited_count p));
                ("frontier", fi (Process.frontier_size p));
                ("transmissions", fi (Process.transmissions p));
              ]);
        });
  }

let bips =
  {
    name = "bips";
    doc = "BIPS persistent-source epidemic, run to saturation";
    default_cap = round_cap;
    create =
      (fun g params ->
        let p = Bips.create g ~branching:params.branching ~source:params.start in
        {
          step = (fun rng -> Bips.step p rng);
          is_complete = (fun () -> Bips.is_saturated p);
          rounds = (fun () -> Bips.round p);
          observe =
            (fun () ->
              [
                ("rounds", fi (Bips.round p));
                ("infected", fi (Bips.infected_count p));
              ]);
        });
  }

(* Stepwise re-implementation of [Rwalk.cover_time] / [multi_cover_time]:
   one step draws one uniform neighbour per walker, exactly the draws of
   the one-shot loops. *)
let rwalk =
  {
    name = "rwalk";
    doc = "independent simple random walk(s), run to cover";
    default_cap =
      (fun g ->
        let n = Graph.View.n_vertices g in
        (100 * n * n) + 10_000);
    create =
      (fun g params ->
        let n = Graph.View.n_vertices g in
        if params.start < 0 || params.start >= n then
          invalid_arg "Kernel.rwalk: start out of range";
        if params.walkers < 1 then invalid_arg "Kernel.rwalk: walkers >= 1";
        let seen = Bitset.create n in
        Bitset.add seen params.start;
        let positions = Array.make params.walkers params.start in
        let remaining = ref (n - 1) in
        let rounds = ref 0 in
        {
          step =
            (fun rng ->
              for w = 0 to params.walkers - 1 do
                let next = Graph.View.unsafe_random_neighbour g rng positions.(w) in
                positions.(w) <- next;
                if not (Bitset.unsafe_mem seen next) then begin
                  Bitset.unsafe_add seen next;
                  decr remaining
                end
              done;
              incr rounds);
          is_complete = (fun () -> !remaining = 0);
          rounds = (fun () -> !rounds);
          observe =
            (fun () ->
              [ ("rounds", fi !rounds); ("visited", fi (n - !remaining)) ]);
        });
  }

(* Stepwise re-implementation of one [Push.push] round: same informed-set
   scan order (Bitset.iter is the increasing-order word scan, matching
   the library's loop), same checked neighbour draws, same synchronous
   apply. *)
let push =
  {
    name = "push";
    doc = "push rumour spreading, run to full information";
    default_cap = round_cap;
    create =
      (fun g params ->
        let n = Graph.View.n_vertices g in
        if params.start < 0 || params.start >= n then
          invalid_arg "Kernel.push: start out of range";
        let informed = Bitset.create n in
        Bitset.add informed params.start;
        let newly = Dstruct.Intvec.create ~capacity:64 () in
        let count = ref 1 and rounds = ref 0 and transmissions = ref 0 in
        {
          step =
            (fun rng ->
              Dstruct.Intvec.clear newly;
              Bitset.iter
                (fun u ->
                  incr transmissions;
                  let w = Graph.View.random_neighbour g rng u in
                  if not (Bitset.unsafe_mem informed w) then
                    Dstruct.Intvec.push newly w)
                informed;
              Dstruct.Intvec.iter
                (fun w ->
                  if not (Bitset.unsafe_mem informed w) then begin
                    Bitset.unsafe_add informed w;
                    incr count
                  end)
                newly;
              incr rounds);
          is_complete = (fun () -> !count = n);
          rounds = (fun () -> !rounds);
          observe =
            (fun () ->
              [
                ("rounds", fi !rounds);
                ("informed", fi !count);
                ("transmissions", fi !transmissions);
              ]);
        });
  }

(* Stepwise re-implementation of one [Push.pull] round: only uninformed
   vertices draw, in increasing vertex order, then synchronous apply. *)
let pull =
  {
    name = "pull";
    doc = "pull rumour spreading, run to full information";
    default_cap = round_cap;
    create =
      (fun g params ->
        let n = Graph.View.n_vertices g in
        if params.start < 0 || params.start >= n then
          invalid_arg "Kernel.pull: start out of range";
        let informed = Bitset.create n in
        Bitset.add informed params.start;
        let newly = Dstruct.Intvec.create ~capacity:64 () in
        let count = ref 1 and rounds = ref 0 and transmissions = ref 0 in
        {
          step =
            (fun rng ->
              Dstruct.Intvec.clear newly;
              for u = 0 to n - 1 do
                if not (Bitset.mem informed u) then begin
                  incr transmissions;
                  let w = Graph.View.random_neighbour g rng u in
                  if Bitset.unsafe_mem informed w then Dstruct.Intvec.push newly u
                end
              done;
              Dstruct.Intvec.iter
                (fun w ->
                  if not (Bitset.unsafe_mem informed w) then begin
                    Bitset.unsafe_add informed w;
                    incr count
                  end)
                newly;
              incr rounds);
          is_complete = (fun () -> !count = n);
          rounds = (fun () -> !rounds);
          observe =
            (fun () ->
              [
                ("rounds", fi !rounds);
                ("informed", fi !count);
                ("transmissions", fi !transmissions);
              ]);
        });
  }

(* Stepwise re-implementation of one [Push.push_pull] round: every vertex
   contacts one random neighbour in increasing order, information crosses
   the contact both ways, then synchronous apply (same list-prepend order
   as the library loop). *)
let push_pull =
  {
    name = "push-pull";
    doc = "push-pull rumour spreading, run to full information";
    default_cap = round_cap;
    create =
      (fun g params ->
        let n = Graph.View.n_vertices g in
        if params.start < 0 || params.start >= n then
          invalid_arg "Kernel.push_pull: start out of range";
        let informed = Bitset.create n in
        Bitset.add informed params.start;
        let count = ref 1 and rounds = ref 0 and transmissions = ref 0 in
        {
          step =
            (fun rng ->
              let newly = ref [] in
              for u = 0 to n - 1 do
                incr transmissions;
                let w = Graph.View.random_neighbour g rng u in
                let iu = Bitset.mem informed u and iw = Bitset.mem informed w in
                if iu && not iw then newly := w :: !newly
                else if iw && not iu then newly := u :: !newly
              done;
              List.iter
                (fun w ->
                  if not (Bitset.mem informed w) then begin
                    Bitset.add informed w;
                    incr count
                  end)
                !newly;
              incr rounds);
          is_complete = (fun () -> !count = n);
          rounds = (fun () -> !rounds);
          observe =
            (fun () ->
              [
                ("rounds", fi !rounds);
                ("informed", fi !count);
                ("transmissions", fi !transmissions);
              ]);
        });
  }

(* Thin wrapper over [Coalesce]: same module, same stream. *)
let coalesce =
  {
    name = "coalesce";
    doc = "coalescing random walks with voting, run to consensus";
    default_cap = Coalesce.default_cap;
    create =
      (fun g params ->
        let p = Coalesce.create g ~walkers:params.walkers ~start:params.start in
        {
          step = (fun rng -> Coalesce.step p rng);
          is_complete = (fun () -> Coalesce.is_consensus p);
          rounds = (fun () -> Coalesce.round p);
          observe =
            (fun () ->
              [
                ("rounds", fi (Coalesce.round p));
                ("clusters", fi (Coalesce.clusters p));
                ("walkers", fi (Coalesce.walkers p));
                ("merged", fi (Coalesce.merged p));
              ]);
        });
  }

(* Thin wrapper over [Explore]: same module, same stream. *)
let explore =
  {
    name = "explore";
    doc = "unvisited-edge-preferring walk, run to cover";
    default_cap = Explore.default_cap;
    create =
      (fun g params ->
        let p = Explore.create g ~start:params.start in
        {
          step = (fun rng -> Explore.step p rng);
          is_complete = (fun () -> Explore.is_covered p);
          rounds = (fun () -> Explore.round p);
          observe =
            (fun () ->
              [
                ("rounds", fi (Explore.round p));
                ("visited", fi (Explore.visited_count p));
                ("edges", fi (Explore.edges_traversed p));
              ]);
        });
  }
