module Bitset = Dstruct.Bitset

type t = {
  g : Graph.View.t;
  walkers : int;
  mutable occupied : Bitset.t;
  mutable scratch : Bitset.t;
  mutable clusters : int;
  mutable round : int;
}

let create g ~walkers ~start =
  let n = Graph.View.n_vertices g in
  if walkers < 1 then invalid_arg "Coalesce.create: walkers >= 1";
  if walkers > n then invalid_arg "Coalesce.create: more walkers than vertices";
  if start < 0 || start >= n then invalid_arg "Coalesce.create: start out of range";
  let occupied = Bitset.create n in
  for i = 0 to walkers - 1 do
    Bitset.add occupied ((start + i) mod n)
  done;
  { g; walkers; occupied; scratch = Bitset.create n; clusters = walkers; round = 0 }

(* One round: every occupied vertex, in increasing order (Bitset.iter is
   the increasing word scan), moves its cluster along one uniform
   neighbour draw; clusters landing together merge by the set union. *)
let step t rng =
  Bitset.clear t.scratch;
  let c = ref 0 in
  Bitset.iter
    (fun u ->
      let w = Graph.View.unsafe_random_neighbour t.g rng u in
      if not (Bitset.unsafe_mem t.scratch w) then begin
        Bitset.unsafe_add t.scratch w;
        incr c
      end)
    t.occupied;
  let old = t.occupied in
  t.occupied <- t.scratch;
  t.scratch <- old;
  t.clusters <- !c;
  t.round <- t.round + 1

let clusters t = t.clusters
let mem t v = Bitset.mem t.occupied v
let walkers t = t.walkers
let merged t = t.walkers - t.clusters
let round t = t.round
let is_consensus t = t.clusters = 1

(* Coalescing time is bounded by pairwise meeting times, which scale like
   the walk's cover time — reuse the random-walk kernel's generous cap. *)
let default_cap g =
  let n = Graph.View.n_vertices g in
  (100 * n * n) + 10_000

let consensus_time ?cap g ~walkers ~start rng =
  let cap = match cap with Some c -> c | None -> default_cap g in
  let t = create g ~walkers ~start in
  while (not (is_consensus t)) && round t < cap do
    step t rng
  done;
  if is_consensus t then Some (round t) else None
