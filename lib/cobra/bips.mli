(** BIPS — Biased Infection with Persistent Source (the paper's Section 1).

    A fixed source vertex [v] is permanently infected. In each round, every
    other vertex [u] independently picks its branching factor's number of
    neighbours, uniformly with replacement, and is infected in the next
    round iff at least one pick is currently infected. This is a discrete
    SIS-type epidemic; unlike the contact process it cannot die out, and by
    the paper's Theorem 4 it is the exact time-reversal dual of COBRA:

    [P(Hit_u(v) > t | C_0 = {u}) = P(u ∉ A_t | A_0 = {v})].

    Note the non-monotonicity: an infected vertex whose picks all miss the
    infected set recovers. The infection time is the first round at which
    [A_t = V]. *)

type t

(** [create g ~branching ~source] initialises with [A_0 = {source}]. *)
val create : Graph.View.t -> branching:Branching.t -> source:int -> t

(** [graph p], [branching p], [source p] recover the configuration. *)
val graph : t -> Graph.View.t

val branching : t -> Branching.t
val source : t -> int

(** [round p] is the number of completed rounds [t]. *)
val round : t -> int

(** [infected p u] tests [u ∈ A_t]. *)
val infected : t -> int -> bool

(** [infected_count p] is [|A_t|]. *)
val infected_count : t -> int

(** [infected_set p] is a fresh sorted array of [A_t]. *)
val infected_set : t -> int array

(** [is_saturated p] is [|A_t| = n]. *)
val is_saturated : t -> bool

(** [step p rng] plays one round: O(E(picks) · n) neighbour draws. *)
val step : t -> Prng.Rng.t -> unit

(** [reset p ~source] rewinds to round 0 with a new source. *)
val reset : t -> source:int -> unit

(** {1 One-shot measurements} *)

(** [infection_time ?cap g ~branching ~source rng] is the first round with
    [A_t = V], or [None] if [cap] rounds pass (default
    [10_000 + 100 * n]). *)
val infection_time :
  ?cap:int -> Graph.View.t -> branching:Branching.t -> source:int -> Prng.Rng.t -> int option

(** [size_trajectory ?cap g ~branching ~source rng] records [|A_t|] for
    [t = 0, 1, ...] until saturation (or cap) — Lemma 1's growth data. *)
val size_trajectory :
  ?cap:int -> Graph.View.t -> branching:Branching.t -> source:int -> Prng.Rng.t -> int array
