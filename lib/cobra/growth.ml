module Bitset = Dstruct.Bitset
module Intvec = Dstruct.Intvec

let expected_next_size g ~branching ~source ~infected =
  let n = Graph.View.n_vertices g in
  if Bitset.capacity infected <> n then invalid_arg "Growth: set/graph size mismatch";
  if not (Bitset.mem infected source) then
    invalid_arg "Growth.expected_next_size: infected must contain the source";
  let acc = ref 1.0 in
  for u = 0 to n - 1 do
    if u <> source then begin
      let deg = Graph.View.degree g u in
      let hits =
        Graph.View.fold_neighbours g u ~init:0 ~f:(fun c w ->
            if Bitset.mem infected w then c + 1 else c)
      in
      acc :=
        !acc
        +. Branching.infection_probability_counts branching ~degree:deg
             ~infected:hits
    end
  done;
  !acc

let growth_coefficient = function
  (* Distinct k >= 2 dominates Fixed k >= 2 pointwise (sampling without
     replacement can only increase the chance of touching the infected
     set), so Lemma 1's coefficient applies to it as well. *)
  | Branching.Fixed k | Branching.Distinct k -> if k >= 2 then 1.0 else 0.0
  | Branching.One_plus rho -> rho

let lemma1_bound ~n ~lambda ~branching ~a =
  if a < 1 || a > n then invalid_arg "Growth.lemma1_bound: a in [1, n]";
  let c = growth_coefficient branching in
  let fa = Float.of_int a and fn = Float.of_int n in
  fa *. (1.0 +. (c *. (1.0 -. (lambda *. lambda)) *. (1.0 -. (fa /. fn))))

let transition_samples ?cap g ~branching ~source ~trials rng =
  if trials < 1 then invalid_arg "Growth.transition_samples: trials >= 1";
  let froms = Intvec.create () and tos = Intvec.create () in
  for _ = 1 to trials do
    let sizes = Bips.size_trajectory ?cap g ~branching ~source rng in
    for t = 0 to Array.length sizes - 2 do
      Intvec.push froms sizes.(t);
      Intvec.push tos sizes.(t + 1)
    done
  done;
  let a = Intvec.to_array froms and b = Intvec.to_array tos in
  Array.init (Array.length a) (fun i -> (a.(i), b.(i)))

let random_infected_set rng g ~source ~size =
  let n = Graph.View.n_vertices g in
  if size < 1 || size > n then invalid_arg "Growth.random_infected_set: size in [1, n]";
  if source < 0 || source >= n then invalid_arg "Growth.random_infected_set: bad source";
  let set = Bitset.create n in
  Bitset.add set source;
  let remaining = ref (size - 1) in
  while !remaining > 0 do
    let v = Prng.Rng.int rng n in
    if not (Bitset.mem set v) then begin
      Bitset.add set v;
      decr remaining
    end
  done;
  set
