module Bitset = Dstruct.Bitset
module Intvec = Dstruct.Intvec

type outcome = { rounds : int; transmissions : int }

let check g v =
  if v < 0 || v >= Graph.View.n_vertices g then invalid_arg "Push: vertex out of range"

let default_cap g = 10_000 + (100 * Graph.View.n_vertices g)

let push ?cap g ~start rng =
  check g start;
  let n = Graph.View.n_vertices g in
  let cap = match cap with Some c -> c | None -> default_cap g in
  let informed = Bitset.create n in
  Bitset.add informed start;
  let newly = Intvec.create ~capacity:64 () in
  let count = ref 1 and rounds = ref 0 and transmissions = ref 0 in
  while !count < n && !rounds < cap do
    (* Collect this round's pushes against the current informed set, then
       apply: informing is synchronous, as in the COBRA round structure.
       [Bitset.iter] visits the informed vertices in increasing order —
       exactly the vertices the old [for u = 0 to n - 1] membership scan
       drew for, in the same order — but skips empty words, so early
       sparse rounds on a large universe no longer pay O(n). [w] comes
       from the adjacency array, hence the unchecked membership test. *)
    Intvec.clear newly;
    Bitset.iter
      (fun u ->
        incr transmissions;
        let w = Graph.View.random_neighbour g rng u in
        if not (Bitset.unsafe_mem informed w) then Intvec.push newly w)
      informed;
    Intvec.iter
      (fun w ->
        if not (Bitset.unsafe_mem informed w) then begin
          Bitset.unsafe_add informed w;
          incr count
        end)
      newly;
    incr rounds
  done;
  if !count = n then Some { rounds = !rounds; transmissions = !transmissions } else None

let pull ?cap g ~start rng =
  check g start;
  let n = Graph.View.n_vertices g in
  let cap = match cap with Some c -> c | None -> default_cap g in
  let informed = Bitset.create n in
  Bitset.add informed start;
  let newly = Intvec.create ~capacity:64 () in
  let count = ref 1 and rounds = ref 0 and transmissions = ref 0 in
  while !count < n && !rounds < cap do
    (* Every uninformed vertex calls one random neighbour and copies the
       rumour if the callee knows it; informed vertices stay silent, so
       only the uninformed side draws.  Synchronous apply, as in push. *)
    Intvec.clear newly;
    for u = 0 to n - 1 do
      if not (Bitset.mem informed u) then begin
        incr transmissions;
        let w = Graph.View.random_neighbour g rng u in
        if Bitset.unsafe_mem informed w then Intvec.push newly u
      end
    done;
    Intvec.iter
      (fun w ->
        if not (Bitset.unsafe_mem informed w) then begin
          Bitset.unsafe_add informed w;
          incr count
        end)
      newly;
    incr rounds
  done;
  if !count = n then Some { rounds = !rounds; transmissions = !transmissions } else None

let push_pull ?cap g ~start rng =
  check g start;
  let n = Graph.View.n_vertices g in
  let cap = match cap with Some c -> c | None -> default_cap g in
  let informed = Bitset.create n in
  Bitset.add informed start;
  let count = ref 1 and rounds = ref 0 and transmissions = ref 0 in
  while !count < n && !rounds < cap do
    let newly = ref [] in
    for u = 0 to n - 1 do
      incr transmissions;
      let w = Graph.View.random_neighbour g rng u in
      let iu = Bitset.mem informed u and iw = Bitset.mem informed w in
      if iu && not iw then newly := w :: !newly
      else if iw && not iu then newly := u :: !newly
    done;
    List.iter
      (fun w ->
        if not (Bitset.mem informed w) then begin
          Bitset.add informed w;
          incr count
        end)
      !newly;
    incr rounds
  done;
  if !count = n then Some { rounds = !rounds; transmissions = !transmissions } else None

let flood g ~start =
  check g start;
  let n = Graph.View.n_vertices g in
  let dist = Graph.View.bfs g start in
  let rounds = Array.fold_left Stdlib.max 0 dist in
  if Array.exists (fun d -> d < 0) dist then
    invalid_arg "Push.flood: graph is disconnected";
  (* Every informed vertex sends to all neighbours each round until the
     last round; vertex u is informed from round dist(u) on. *)
  let transmissions = ref 0 in
  for u = 0 to n - 1 do
    let active_rounds = rounds - dist.(u) in
    if active_rounds > 0 then
      transmissions := !transmissions + (active_rounds * Graph.View.degree g u)
  done;
  { rounds; transmissions = !transmissions }
