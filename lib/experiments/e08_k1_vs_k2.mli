(** E8 — branching is essential: k = 1 (a plain random walk) needs
    Ω(n log n) steps to cover, while k = 2 needs only O(log n) rounds. *)

val spec : Spec.t
