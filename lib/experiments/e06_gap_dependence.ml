module Scale = Simkit.Scale
module A = Simkit.Artifact

(* Circulants with consecutive offsets {1..m} give a regular family whose
   gap sweeps three orders of magnitude as m varies, with closed-form λ.
   Theorem 1's bound is cover <= c·log n/(1-λ)³; the measured dependence
   is reported as the fitted exponent of cover vs 1/(1-λ) (an upper bound
   of 3 allows anything below — measured values are typically ~1,
   i.e. the theorem's ceiling is loose but never violated). *)
let run ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:1025 ~standard:4097 ~full:8193 in
  let trials = Scale.pick scale ~quick:8 ~standard:25 ~full:30 in
  let ms = Scale.pick scale ~quick:[ 2; 4; 8; 16 ] ~standard:[ 2; 3; 4; 6; 8; 12; 16; 24; 32 ]
      ~full:[ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 ]
  in
  emit
    (A.context
       [ ("n (odd)", string_of_int n); ("family", "circulant {1..m}");
         ("branching", "k=2"); ("trials/m", string_of_int trials) ]);
  let table =
    A.Tab.create
      [ "m"; "r"; "lambda"; "1/gap"; "premise"; "cover (mean ± ci95)";
        "bound ln n/gap^3"; "cover/bound" ]
  in
  let premise_floor = sqrt (Common.ln n /. Float.of_int n) in
  let inv_gaps = ref [] and covers = ref [] in
  List.iter
    (fun m ->
      let offsets = List.init m (fun i -> i + 1) in
      let g = Graph.View.of_csr (Graph.Gen.circulant n offsets) in
      let lambda = Spectral.Closed_form.circulant n offsets in
      let gap = 1.0 -. lambda in
      let bound = Common.ln n /. (gap ** 3.0) in
      (* Out-of-premise members have an astronomically loose bound; cap
         the run at 50n rounds (well above any circulant's true cover
         time, which is at most ballistic, ~n/2m rounds). *)
      let cap = 200 + Float.to_int (Float.min (50.0 *. bound) (50.0 *. Float.of_int n)) in
      let summary, _ =
        Common.cover_summary ~cap g ~branching:Cobra.Branching.cobra_k2 ~start:0
          ~trials ~master ~tag:(Printf.sprintf "e06:%d" m)
      in
      let mean = Stats.Summary.mean summary in
      inv_gaps := (1.0 /. gap) :: !inv_gaps;
      covers := mean :: !covers;
      A.Tab.add_row table
        [
          A.int m;
          A.int (2 * m);
          A.floatf "%.5f" lambda;
          A.floatf "%.1f" (1.0 /. gap);
          A.str (Printf.sprintf "%.1fx" (gap /. premise_floor));
          A.summary summary;
          A.float bound;
          A.floatf "%.4f" (mean /. bound);
        ])
    ms;
  emit (A.Tab.event table);
  let xs = Array.of_list (List.rev !inv_gaps) in
  let ys = Array.of_list (List.rev !covers) in
  let fit = Stats.Regress.loglog xs ys in
  emit
    (A.fit_of_regress ~label:"cover ~ (1/gap)^b (theorem ceiling: b <= 3)"
       ~model:"loglog" fit);

  (* Part 2: families that *satisfy* the premise — random regular graphs
     whose constant gap is swept via the degree (lambda ~ 2 sqrt(r-1)/r).
     Here the bound is finite and the measured/bound ratio shows how much
     slack the cubic ceiling carries in its own regime. *)
  emit (A.section "in-premise families: random r-regular, lambda estimated numerically");
  let n2 = Scale.pick scale ~quick:1024 ~standard:4096 ~full:16384 in
  let table2 =
    A.Tab.create
      [ "r"; "lambda"; "1/gap"; "premise"; "cover (mean ± ci95)"; "bound"; "cover/bound" ]
  in
  let premise_floor2 = sqrt (Common.ln n2 /. Float.of_int n2) in
  let all_in_premise_below = ref true in
  List.iter
    (fun r ->
      let g = Common.expander ~master ~tag:"e06b" ~n:n2 ~r () in
      let gap_t =
        Spectral.Gap.estimate
          (Simkit.Seeds.tagged_rng ~master ~tag:(Printf.sprintf "e06b:spec:%d" r))
          g
      in
      let gap = gap_t.Spectral.Gap.gap in
      let bound = Common.ln n2 /. (gap ** 3.0) in
      let summary, _ =
        Common.cover_summary g ~branching:Cobra.Branching.cobra_k2 ~start:0 ~trials
          ~master ~tag:(Printf.sprintf "e06b:%d" r)
      in
      let mean = Stats.Summary.mean summary in
      if mean > bound then all_in_premise_below := false;
      A.Tab.add_row table2
        [
          A.int r;
          A.floatf "%.4f" gap_t.Spectral.Gap.lambda;
          A.floatf "%.2f" (1.0 /. gap);
          A.str (Printf.sprintf "%.1fx" (gap /. premise_floor2));
          A.summary summary;
          A.float bound;
          A.floatf "%.2e" (mean /. bound);
        ])
      [ 3; 4; 8; 16; 32 ];
  emit (A.Tab.event table2);
  (* Acceptance: measured cover never exceeds the theory bound shape times
     a modest constant, and the fitted exponent is below 3; in-premise
     rows sit strictly below their finite bound. *)
  let all_below =
    List.for_all2
      (fun inv_gap cover -> cover <= 5.0 *. Common.ln n *. (inv_gap ** 3.0))
      (List.rev !inv_gaps) (List.rev !covers)
  in
  emit
    (A.verdict
       ~pass:(all_below && !all_in_premise_below && fit.Stats.Regress.slope < 3.0)
       (Printf.sprintf
          "measured gap exponent %.2f <= 3; every in-premise graph covers \
           below its finite bound"
          fit.Stats.Regress.slope))

let spec =
  {
    Spec.id = "E6";
    slug = "gap-dependence";
    title = "Cover time vs spectral gap on circulant families";
    claim =
      "Theorems 1-2: cover/infection time <= O(log n / (1-lambda)^3) for \
       1-lambda >> sqrt(log n / n).";
    run;
  }
