(** E13 — information speed: COBRA hitting times against the two
    deterministic lower bounds (BFS distance; doubling), showing the
    O(log n) bound of Theorem 1 is asymptotically best possible. *)

val spec : Spec.t
