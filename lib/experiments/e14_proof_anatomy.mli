(** E14 — anatomy of the Theorem 2 proof: the three growth phases of
    BIPS (Lemmas 2, 3 and 4) measured against the paper's explicit
    constants. *)

val spec : Spec.t
