module Scale = Simkit.Scale
module A = Simkit.Artifact

(* COBRA spreads ballistically on lattices: the active set's boundary
   advances O(1) per round, so covering a d-dimensional torus takes
   ~ side/2 = n^(1/d)/2 rounds (Dutta et al. prove O~(n^(1/d))). The
   log-log regression of cover vs n should recover exponent ≈ 1/d per
   dimension — a sharp contrast with E1's logarithmic profile. *)
let families ~scale =
  let cycle_sides =
    Scale.pick ~quick:[ 128; 256; 512 ] ~standard:[ 256; 512; 1024; 2048; 4096 ]
      ~full:[ 1024; 2048; 4096; 8192 ] scale
  in
  let torus2_sides =
    Scale.pick ~quick:[ 8; 16; 24 ] ~standard:[ 16; 24; 32; 48; 64 ]
      ~full:[ 32; 48; 64; 96; 128; 192 ] scale
  in
  let torus3_sides =
    Scale.pick ~quick:[ 4; 6; 8 ] ~standard:[ 6; 8; 11; 16 ] ~full:[ 8; 11; 16; 23; 32 ] scale
  in
  [
    ("cycle (d=1)", 1, List.map (fun s -> [| s |]) cycle_sides);
    ("torus (d=2)", 2, List.map (fun s -> [| s; s |]) torus2_sides);
    ("torus (d=3)", 3, List.map (fun s -> [| s; s; s |]) torus3_sides);
  ]

let run ~emit ~scale ~master =
  let trials = Scale.pick scale ~quick:6 ~standard:15 ~full:25 in
  emit (A.context [ ("branching", "k=2"); ("trials/size", string_of_int trials) ]);
  let all_ok = ref true in
  List.iter
    (fun (name, d, dims_list) ->
      emit (A.section name);
      let table =
        A.Tab.create [ "n"; "side"; "cover (mean ± ci95)"; "cover/n^(1/d)" ]
      in
      let xs = ref [] and ys = ref [] in
      List.iter
        (fun dims ->
          let n = Array.fold_left ( * ) 1 dims in
          let g =
            Graph.View.of_csr
              (if d = 1 then Graph.Gen.cycle dims.(0) else Graph.Gen.torus dims)
          in
          let cap = 100 + (20 * dims.(0)) in
          let summary, _ =
            Common.cover_summary ~cap g ~branching:Cobra.Branching.cobra_k2 ~start:0
              ~trials ~master
              ~tag:(Printf.sprintf "e07:%d:%d" d dims.(0))
          in
          let mean = Stats.Summary.mean summary in
          xs := Float.of_int n :: !xs;
          ys := mean :: !ys;
          A.Tab.add_row table
            [
              A.int n;
              A.int dims.(0);
              A.summary summary;
              A.floatf "%.3f"
                (mean /. (Float.of_int n ** (1.0 /. Float.of_int d)));
            ])
        dims_list;
      emit (A.Tab.event table);
      let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
      let fit = Stats.Regress.loglog xs ys in
      let target = 1.0 /. Float.of_int d in
      emit
        (A.fit_of_regress
           ~label:(Printf.sprintf "%s: cover ~ n^b (theory b ~ %.3f, up to polylog)" name target)
           ~model:"loglog" fit);
      if Float.abs (fit.Stats.Regress.slope -. target) > 0.25 then all_ok := false)
    (families ~scale);
  emit
    (A.verdict ~pass:!all_ok
       "every lattice family's fitted exponent is within 0.25 of 1/d")

let spec =
  {
    Spec.id = "E7";
    slug = "grids";
    title = "Polynomial cover on d-dimensional tori (non-expanders)";
    claim =
      "Dutta et al. (cited comparison): on the d-dimensional grid the \
       COBRA cover time is O~(n^(1/d)) — polynomial, unlike expanders.";
    run;
  }
