module Scale = Simkit.Scale
module A = Simkit.Artifact

(* Two facts frame Theorem 1's optimality:
   (i)  information travels at most one hop per round, so
        Hit(v) >= dist(start, v) always;
   (ii) the active set at most doubles, so covering needs >= log2 n
        rounds — "the best possible asymptotic bound" (paper, Section 1).
   This experiment profiles first-visit times by BFS distance on an
   expander: the per-distance mean stays within a small additive band
   above the distance itself, and the overall cover time lands within a
   constant factor of log2 n. *)
let run ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:1024 ~standard:8192 ~full:65536 in
  let r = 3 in
  let trials = Scale.pick scale ~quick:10 ~standard:30 ~full:60 in
  let g = Common.expander ~master ~tag:"e13" ~n ~r () in
  let dist = Graph.View.bfs g 0 in
  emit
    (A.context
       [ ("graph", Printf.sprintf "random %d-regular, n=%d" r n);
         ("branching", "k=2"); ("trials", string_of_int trials) ]);
  (* Pool first-visit times per BFS distance over the trials. *)
  let max_dist = Array.fold_left Stdlib.max 0 dist in
  let per_dist = Array.init (max_dist + 1) (fun _ -> Stats.Summary.create ()) in
  let violations = ref 0 in
  let covers = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    let rng =
      Simkit.Seeds.trial_rng ~master ~salt:(Common.salt_of ~tag:"e13" + i)
    in
    let first = Cobra.Process.first_visit_times g ~branching:Cobra.Branching.cobra_k2 ~start:0 rng in
    let cover = ref 0 in
    Array.iteri
      (fun v t ->
        if t >= 0 then begin
          if t < dist.(v) then incr violations;
          if t > !cover then cover := t;
          Stats.Summary.add_int per_dist.(dist.(v)) t
        end)
      first;
    Stats.Summary.add_int covers !cover
  done;
  let table =
    A.Tab.create
      [ "BFS distance"; "vertices"; "hit time (mean ± ci95)"; "mean - distance" ]
  in
  Array.iteri
    (fun d s ->
      if Stats.Summary.count s > 0 then begin
        let vertices = Stats.Summary.count s / trials in
        A.Tab.add_row table
          [
            A.int d;
            A.int vertices;
            A.summary s;
            A.floatf "%.2f" (Stats.Summary.mean s -. Float.of_int d);
          ]
      end)
    per_dist;
  emit (A.Tab.event table);
  let mean_cover = Stats.Summary.mean covers in
  let log2n = log (Float.of_int n) /. log 2.0 in
  emit
    (A.notef
       "\ncover: %.1f rounds; information-theoretic floor log2 n = %.1f (ratio %.2f)"
       mean_cover log2n (mean_cover /. log2n));
  emit (A.metric ~name:"cover / log2 n" (mean_cover /. log2n));
  (* Acceptance: the distance lower bound is never violated (it is a
     theorem about the dynamics, so any violation is a bug), the
     per-distance excess stays bounded by c log n, and the cover lands
     within a small factor of the doubling floor. *)
  let excess_ok =
    Array.for_all
      (fun s ->
        Stats.Summary.count s = 0
        || Stats.Summary.mean s <= Float.of_int max_dist +. (3.0 *. Common.ln n))
      per_dist
  in
  emit
    (A.verdict
       ~pass:(!violations = 0 && excess_ok && mean_cover < 8.0 *. log2n)
       (Printf.sprintf
          "hit >= distance in all %d observations; cover %.1f within %.1fx of \
           the log2 n floor"
          (trials * n) mean_cover (mean_cover /. log2n)))

let spec =
  {
    Spec.id = "E13";
    slug = "information-speed";
    title = "Hitting times vs the distance and doubling lower bounds";
    claim =
      "Section 1: O(log n) is the best possible asymptotic cover bound \
       since the number of visited vertices at most doubles per round; \
       and information moves one hop per round, so hitting times dominate \
       BFS distances.";
    run;
  }
