let salt_of ~tag = Simkit.Seeds.salt_of_tag tag

let graph_rng ~master ~tag = Simkit.Seeds.tagged_rng ~master ~tag:("graph:" ^ tag)

let expander ?(backend = `Heap) ~master ~tag ~n ~r () =
  let rng = graph_rng ~master ~tag:(Printf.sprintf "%s:n=%d:r=%d" tag n r) in
  let g = Graph.Gen.random_regular rng ~n ~r in
  match (backend : Graph.View.backend) with
  | `Heap -> Graph.View.of_csr g
  | `Bigarray -> Graph.View.of_bigcsr (Graph.Bigcsr.of_csr g)
  | `Implicit ->
    invalid_arg "Common.expander: random regular graphs have no implicit form"

(* The [_par] runners are bit-for-bit identical to the sequential ones
   (each trial derives its own stream from [salt0 + i] and lands in slot
   [i]), so every experiment parallelises over COBRA_DOMAINS for free
   without changing a single reported number. *)
let cover_summary ?cap g ~branching ~start ~trials ~master ~tag =
  Simkit.Trial.summarize_int_par ~trials ~master ~salt0:(salt_of ~tag) (fun rng ->
      Cobra.Process.cover_time ?cap g ~branching ~start rng)

let infection_summary ?cap g ~branching ~source ~trials ~master ~tag =
  Simkit.Trial.summarize_int_par ~trials ~master ~salt0:(salt_of ~tag) (fun rng ->
      Cobra.Bips.infection_time ?cap g ~branching ~source rng)

let walk_cover_summary ?cap g ~start ~trials ~master ~tag =
  Simkit.Trial.summarize_int_par ~trials ~master ~salt0:(salt_of ~tag) (fun rng ->
      Cobra.Rwalk.cover_time ?cap g ~start rng)

let ln n = log (Float.of_int n)
