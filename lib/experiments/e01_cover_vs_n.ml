module Scale = Simkit.Scale
module A = Simkit.Artifact

(* Random 3-regular graphs are expanders w.h.p. (λ ≈ 2√2/3 ≈ 0.94, a
   constant), so Theorem 1 predicts cover time c·log n. The report fits
   cover = a·ln n + b and contrasts R² against a log² n model: under the
   paper's bound the linear-in-log fit should dominate and the per-n
   ratio cover/ln n should be flat, whereas cover/ln² n should fall. *)
let run ~emit ~scale ~master =
  let ns =
    Scale.pick scale
      ~quick:[ 256; 512; 1024; 2048 ]
      ~standard:[ 1024; 2048; 4096; 8192; 16384; 32768 ]
      ~full:[ 4096; 8192; 16384; 32768; 65536; 131072; 262144 ]
  in
  let trials = Scale.pick scale ~quick:10 ~standard:40 ~full:100 in
  let r = 3 in
  emit
    (A.context
       [ ("r", string_of_int r); ("branching", "k=2");
         ("trials/n", string_of_int trials) ]);
  let table =
    A.Tab.create
      [ "n"; "cover (mean ± ci95)"; "max"; "cover/ln n"; "cover/ln^2 n"; "censored" ]
  in
  let xs = ref [] and ys = ref [] in
  List.iter
    (fun n ->
      let g = Common.expander ~master ~tag:"e01" ~n ~r () in
      let summary, censored =
        Common.cover_summary g ~branching:Cobra.Branching.cobra_k2 ~start:0 ~trials
          ~master ~tag:(Printf.sprintf "e01:%d" n)
      in
      let mean = Stats.Summary.mean summary in
      xs := Float.of_int n :: !xs;
      ys := mean :: !ys;
      A.Tab.add_row table
        [
          A.int n;
          A.summary summary;
          A.float (Stats.Summary.max summary);
          A.floatf "%.3f" (mean /. Common.ln n);
          A.floatf "%.3f" (mean /. (Common.ln n ** 2.0));
          A.int censored;
        ])
    ns;
  emit (A.Tab.event table);
  let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
  let fit = Stats.Regress.semilog xs ys in
  emit (A.fit_of_regress ~label:"cover = a + b*ln n" ~model:"semilog" fit);
  let fit_sq =
    Stats.Regress.ols (Array.map (fun x -> log x ** 2.0) xs) ys
  in
  emit (A.fit_of_regress ~label:"cover = a + b*ln^2 n" ~model:"ols-ln2" fit_sq);
  (* Acceptance: the log-linear model explains the data and the
     normalised ratio is flat (last/first within 35%). *)
  let ratio_first = ys.(0) /. Common.ln (Float.to_int xs.(0)) in
  let last = Array.length ys - 1 in
  let ratio_last = ys.(last) /. Common.ln (Float.to_int xs.(last)) in
  let flat = Float.abs (ratio_last -. ratio_first) /. ratio_first < 0.35 in
  emit
    (A.verdict
       ~pass:(fit.Stats.Regress.r2 > 0.95 && flat)
       (Printf.sprintf
          "cover/ln n flat across %d..%d (%.2f -> %.2f), log-linear R²=%.3f"
          (Float.to_int xs.(0)) (Float.to_int xs.(last)) ratio_first ratio_last
          fit.Stats.Regress.r2))

let spec =
  {
    Spec.id = "E1";
    slug = "cover-vs-n";
    title = "COBRA cover time vs n on random 3-regular expanders";
    claim =
      "Theorem 1: COV(G) = O(log n) for regular expanders with constant \
       spectral gap, for branching factor k = 2 (previously O(log^2 n), \
       Dutta et al. SPAA'13).";
    run;
  }
