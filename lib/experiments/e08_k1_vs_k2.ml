module Scale = Simkit.Scale
module A = Simkit.Artifact

(* Three regimes on the same graphs: a single walk (COBRA with k = 1,
   Ω(n log n)); 16 *independent* walks (the multiple-random-walk model of
   Alon et al., the paper's reference [1] — speedup at most ~linear in
   the number of walkers); and COBRA k = 2, whose *branching* dependence
   reaches O(log n). *)
let walkers = 16

let run ~emit ~scale ~master =
  let ns =
    Scale.pick scale ~quick:[ 128; 256; 512 ] ~standard:[ 256; 512; 1024; 2048 ]
      ~full:[ 512; 1024; 2048; 4096; 8192 ]
  in
  let trials = Scale.pick scale ~quick:8 ~standard:20 ~full:50 in
  let r = 3 in
  emit
    (A.context
       [ ("r", string_of_int r); ("trials/n", string_of_int trials);
         ("independent walkers", string_of_int walkers) ]);
  let table =
    A.Tab.create
      [ "n"; "walk cover (k=1)"; "walk/(n ln n)"; "16 walks"; "COBRA cover (k=2)";
        "cobra/ln n"; "speedup" ]
  in
  let walk_ratios = ref [] and cobra_ratios = ref [] in
  List.iter
    (fun n ->
      let g = Common.expander ~master ~tag:"e08" ~n ~r () in
      let walk, _ =
        Common.walk_cover_summary g ~start:0 ~trials ~master
          ~tag:(Printf.sprintf "e08w:%d" n)
      in
      let multi, _ =
        Simkit.Trial.summarize_int ~trials ~master
          ~salt0:(Common.salt_of ~tag:(Printf.sprintf "e08m:%d" n))
          (fun rng -> Cobra.Rwalk.multi_cover_time g ~walkers ~start:0 rng)
      in
      let cobra, _ =
        Common.cover_summary g ~branching:Cobra.Branching.cobra_k2 ~start:0 ~trials
          ~master ~tag:(Printf.sprintf "e08c:%d" n)
      in
      let mw = Stats.Summary.mean walk and mc = Stats.Summary.mean cobra in
      let wr = mw /. (Float.of_int n *. Common.ln n) in
      let cr = mc /. Common.ln n in
      walk_ratios := wr :: !walk_ratios;
      cobra_ratios := cr :: !cobra_ratios;
      A.Tab.add_row table
        [
          A.int n;
          A.summary walk;
          A.floatf "%.3f" wr;
          A.summary multi;
          A.summary cobra;
          A.floatf "%.3f" cr;
          A.str (Printf.sprintf "%.0fx" (mw /. mc));
        ])
    ns;
  emit (A.Tab.event table);
  (* Acceptance: both normalised columns are flat — the walk really is
     Θ(n log n) and COBRA really is Θ(log n). *)
  let flat values =
    let v = Array.of_list values in
    let lo = Array.fold_left Float.min infinity v in
    let hi = Array.fold_left Float.max neg_infinity v in
    hi /. lo < 2.0
  in
  emit
    (A.verdict
       ~pass:(flat !walk_ratios && flat !cobra_ratios)
       "walk/(n ln n) and cobra/ln n are both flat across the size sweep")

let spec =
  {
    Spec.id = "E8";
    slug = "k1-vs-k2";
    title = "k = 1 (random walk) vs many independent walks vs k = 2 (COBRA)";
    claim =
      "Section 1: k = 1 is a simple random walk with cover time \
       Omega(n log n); even many independent walks [1] only help \
       linearly; branching factor 2 collapses cover to O(log n) on \
       expanders.";
    run;
  }
