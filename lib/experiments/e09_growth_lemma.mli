(** E9 — Lemma 1 / Corollary 1: the expected one-step growth of the BIPS
    infected set, exact formula vs the spectral lower bound vs
    simulation. *)

val spec : Spec.t
