module Scale = Simkit.Scale
module A = Simkit.Artifact

(* One fixed n; degree sweeps from 3 to n-1. Small degrees use random
   regular graphs; large ones use circulants with consecutive offsets
   (deterministic, non-bipartite, good gap) because the pairing model's
   repair loop is not worth running at r = n/2; r = n-1 is K_n. All are
   expanders, so Theorem 1 predicts a flat row of cover times. *)
let graph_for ~master ~n ~r =
  if r = n - 1 then Graph.View.of_csr (Graph.Gen.complete n)
  else if r <= 64 then Common.expander ~master ~tag:"e02" ~n ~r ()
  else begin
    assert (r mod 2 = 0);
    Graph.View.of_csr (Graph.Gen.circulant n (List.init (r / 2) (fun i -> i + 1)))
  end

let run ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:512 ~standard:4096 ~full:16384 in
  let trials = Scale.pick scale ~quick:10 ~standard:40 ~full:100 in
  let degrees =
    [ 3; 4; 8; 16; 32; 64 ] @ [ n / 8; n / 2; n - 1 ]
    |> List.sort_uniq compare
    |> List.filter (fun r -> r >= 3 && r < n)
  in
  emit
    (A.context
       [ ("n", string_of_int n); ("branching", "k=2");
         ("trials/r", string_of_int trials) ]);
  let table =
    A.Tab.create [ "r"; "family"; "cover (mean ± ci95)"; "cover/ln n"; "censored" ]
  in
  let means = ref [] in
  List.iter
    (fun r ->
      let family =
        if r = n - 1 then "complete"
        else if r <= 64 then "random-regular"
        else "circulant"
      in
      let g = graph_for ~master ~n ~r in
      let summary, censored =
        Common.cover_summary g ~branching:Cobra.Branching.cobra_k2 ~start:0 ~trials
          ~master ~tag:(Printf.sprintf "e02:%d" r)
      in
      let mean = Stats.Summary.mean summary in
      means := mean :: !means;
      A.Tab.add_row table
        [
          A.int r;
          A.str family;
          A.summary summary;
          A.floatf "%.3f" (mean /. Common.ln n);
          A.int censored;
        ])
    degrees;
  emit (A.Tab.event table);
  let means = Array.of_list !means in
  let lo = Array.fold_left Float.min infinity means in
  let hi = Array.fold_left Float.max neg_infinity means in
  emit (A.metric ~name:"cover-time spread (max/min)" (hi /. lo));
  (* Acceptance: the spread across five decades of degree stays within a
     small constant factor — nothing grows with r. (Sparse random graphs
     have a slightly larger λ, hence slightly larger constants.) *)
  emit
    (A.verdict ~pass:(hi /. lo < 3.0)
       (Printf.sprintf "cover-time spread across r: min=%.1f max=%.1f (ratio %.2f < 3)"
          lo hi (hi /. lo)))

let spec =
  {
    Spec.id = "E2";
    slug = "degree-independence";
    title = "Cover time is independent of the degree r";
    claim =
      "Theorem 1: the O(log n) bound holds for all 3 <= r <= n-1 and does \
       not depend on r.";
    run;
  }
