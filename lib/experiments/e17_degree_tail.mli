(** E17 — COBRA cover and BIPS duality off the expander regime: the
    measured cover-time blowup from random 4-regular through mild and
    heavy preferential-attachment degree tails at fixed n. *)

val spec : Spec.t
