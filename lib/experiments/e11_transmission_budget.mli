(** E11 — the transmission-budget motivation (Section 1): COBRA spreads as
    fast as push-style broadcast while sending far fewer total messages,
    because informed vertices fall silent until re-activated. *)

val spec : Spec.t
