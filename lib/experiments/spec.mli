(** A runnable experiment: identity, the paper claim it reproduces, and an
    entry point that emits its report — context, typed tables, fits,
    metrics and the PASS/FAIL verdict — as {!Simkit.Artifact} events
    through the caller's {!Simkit.Sink}. *)

type t = {
  id : string;  (** short stable id, e.g. ["E1"] *)
  slug : string;  (** kebab-case name, e.g. ["cover-vs-n"] *)
  title : string;
  claim : string;  (** the paper statement being validated *)
  run :
    emit:(Simkit.Artifact.event -> unit) ->
    scale:Simkit.Scale.t ->
    master:int ->
    unit;
}

(** [meta spec ~scale ~master] is the artifact identity/configuration
    record for one run (domain count read from the trial pool). *)
val meta : t -> scale:Simkit.Scale.t -> master:int -> Simkit.Artifact.meta

(** [run spec ~sink ~scale ~master] drives the experiment: announces the
    meta to the sink, streams every emitted event through it, and hands
    the completed artifact (with wall-clock timing) to [sink.finish]
    before returning it. *)
val run :
  t ->
  sink:Simkit.Sink.t ->
  scale:Simkit.Scale.t ->
  master:int ->
  Simkit.Artifact.t

(** [run_console spec ~scale ~master] is [run] with the console sink,
    discarding the artifact — the classic stdout behaviour. *)
val run_console : t -> scale:Simkit.Scale.t -> master:int -> unit
