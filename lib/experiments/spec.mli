(** A runnable experiment: identity, the paper claim it reproduces, and an
    entry point that prints its report (tables + PASS/FAIL verdict) to
    stdout. *)

type t = {
  id : string;  (** short stable id, e.g. ["E1"] *)
  slug : string;  (** kebab-case name, e.g. ["cover-vs-n"] *)
  title : string;
  claim : string;  (** the paper statement being validated *)
  run : scale:Simkit.Scale.t -> master:int -> unit;
}

(** [run_with_banner spec ~scale ~master] prints the banner, claim and
    scale context, then the experiment's own report. *)
val run_with_banner : t -> scale:Simkit.Scale.t -> master:int -> unit
