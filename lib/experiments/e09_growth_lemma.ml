module Scale = Simkit.Scale
module A = Simkit.Artifact
module B = Cobra.Branching

(* Part 1 (exhaustive): on the Petersen graph (λ = 2/3 exactly) evaluate
   the closed-form E(|A'| | A) for EVERY infected set A containing the
   source and verify Lemma 1's bound; report the tightest margin. *)
let exhaustive_part ~emit =
  let g = Graph.View.of_csr (Graph.Gen.petersen ()) in
  let n = Graph.View.n_vertices g in
  let lambda = 2.0 /. 3.0 in
  let worst = ref infinity and worst_a = ref 0 in
  let checked = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land 1 <> 0 (* source = 0 *) then begin
      let set = Dstruct.Bitset.create n in
      for v = 0 to n - 1 do
        if mask land (1 lsl v) <> 0 then Dstruct.Bitset.add set v
      done;
      let a = Dstruct.Bitset.cardinal set in
      let expected =
        Cobra.Growth.expected_next_size g ~branching:B.cobra_k2 ~source:0
          ~infected:set
      in
      let bound = Cobra.Growth.lemma1_bound ~n ~lambda ~branching:B.cobra_k2 ~a in
      let margin = expected -. bound in
      incr checked;
      if margin < !worst then begin
        worst := margin;
        worst_a := a
      end
    end
  done;
  emit
    (A.notef
       "exhaustive check on Petersen (lambda=2/3): %d infected sets, tightest \
        margin E - bound = %.6f (at |A|=%d)"
       !checked !worst !worst_a);
  emit (A.metric ~name:"exhaustive tightest margin (E - bound)" !worst);
  !worst

(* Part 2 (simulation): growth factors measured along BIPS trajectories on
   a random regular graph, bucketed by |A|/n, against the bound with the
   numerically estimated λ. *)
let trajectory_part ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:512 ~standard:4096 ~full:16384 in
  let r = 4 in
  let trials = Scale.pick scale ~quick:20 ~standard:60 ~full:200 in
  let g = Common.expander ~master ~tag:"e09" ~n ~r () in
  let gap =
    Spectral.Gap.estimate (Simkit.Seeds.tagged_rng ~master ~tag:"e09:spec") g
  in
  emit
    (A.notef "\ngraph: random %d-regular, n=%d, %s" r n
       (Format.asprintf "%a" Spectral.Gap.pp gap));
  let samples =
    Cobra.Growth.transition_samples g ~branching:B.cobra_k2 ~source:0 ~trials
      (Simkit.Seeds.tagged_rng ~master ~tag:"e09:traj")
  in
  let buckets = 10 in
  let sums = Array.init buckets (fun _ -> Stats.Summary.create ()) in
  Array.iter
    (fun (a, a') ->
      if a < n then begin
        let b = Stdlib.min (buckets - 1) (a * buckets / n) in
        Stats.Summary.add sums.(b) (Float.of_int a' /. Float.of_int a)
      end)
    samples;
  let table =
    A.Tab.create
      [ "|A|/n bucket"; "samples"; "measured growth"; "Lemma 1 bound"; "ok" ]
  in
  let all_ok = ref true in
  Array.iteri
    (fun b s ->
      if Stats.Summary.count s > 10 then begin
        let mid = (Float.of_int b +. 0.5) /. Float.of_int buckets in
        let a_mid = Float.to_int (mid *. Float.of_int n) in
        let bound_factor =
          Cobra.Growth.lemma1_bound ~n ~lambda:gap.Spectral.Gap.lambda
            ~branching:B.cobra_k2 ~a:(Stdlib.max 1 a_mid)
          /. Float.of_int (Stdlib.max 1 a_mid)
        in
        let measured = Stats.Summary.mean s in
        (* Allow two standard errors of slack: the lemma bounds the
           conditional mean, and we observe a noisy sample of it. *)
        let ok =
          measured +. (2.0 *. Stats.Summary.std_error s) >= bound_factor
        in
        all_ok := !all_ok && ok;
        A.Tab.add_row table
          [
            A.floatf "%.2f" mid;
            A.int (Stats.Summary.count s);
            A.floatf "%.4f" measured;
            A.floatf "%.4f" bound_factor;
            A.str (if ok then "yes" else "NO");
          ]
      end)
    sums;
  emit (A.Tab.event table);
  !all_ok

let run ~emit ~scale ~master =
  let worst = exhaustive_part ~emit in
  let traj_ok = trajectory_part ~emit ~scale ~master in
  emit
    (A.verdict
       ~pass:(worst >= -1e-9 && traj_ok)
       (Printf.sprintf
          "Lemma 1 bound respected: exhaustive margin %.4f >= 0, all \
           trajectory buckets above bound"
          worst))

let spec =
  {
    Spec.id = "E9";
    slug = "growth-lemma";
    title = "Lemma 1: expected growth of the BIPS infected set";
    claim =
      "Lemma 1: E(|A_{t+1}| | A_t = A) >= |A| (1 + (1-lambda^2)(1-|A|/n)) \
       for k = 2 (Corollary 1 scales the middle term by rho for 1+rho).";
    run;
  }
