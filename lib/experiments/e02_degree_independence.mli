(** E2 — degree independence (Theorem 1): the O(log n) cover bound holds
    for every degree 3 <= r <= n-1, with no r in the bound. *)

val spec : Spec.t
