(** E4 — Theorem 4's COBRA/BIPS duality: exactly on small graphs (DP over
    subsets), statistically on larger graphs (paired Monte-Carlo). *)

val spec : Spec.t
