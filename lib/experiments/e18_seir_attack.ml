module Scale = Simkit.Scale
module A = Simkit.Artifact
module K = Cobra.Kernel

(* The SEIR kernel on heavy-tailed contact graphs: one preferential
   attachment family at fixed n and m = 2, with the uniform-attachment
   probability sweeping the degree tail from heavy hubs (p = 0) to the
   uniform-attachment regime (p = 1). Each tail reports the epidemic
   headlines — attack rate, peak infectious load, generational R — from
   the same latent-2/infectious-2 process seeded at vertex 0. *)

let ps = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let run ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:256 ~standard:1024 ~full:4096 in
  let trials = Scale.pick scale ~quick:10 ~standard:25 ~full:60 in
  let params =
    { K.default_params with K.branching = Cobra.Branching.cobra_k2; start = 0;
      latent_rounds = 2; infectious_rounds = 2 }
  in
  emit
    (A.context
       [
         ("n", string_of_int n); ("trials", string_of_int trials);
         ("contacts", "k=2"); ("latent", "2"); ("infectious", "2");
       ]);
  let table =
    A.Tab.create
      [
        "prob_unbiased"; "max deg"; "attack rate"; "peak load / n"; "gen R";
        "rounds";
      ]
  in
  let rows =
    List.map
      (fun p ->
        let g =
          Graph.View.of_csr
            (Graph.Gen.barabasi_albert
               (Common.graph_rng ~master ~tag:(Printf.sprintf "e18:ba:%g" p))
               ~n ~m:2 ~prob_unbiased:p)
        in
        let attack = Stats.Summary.create ()
        and peak = Stats.Summary.create ()
        and gen_r = Stats.Summary.create ()
        and rounds = Stats.Summary.create () in
        let censored = ref 0 in
        let salt0 = Common.salt_of ~tag:(Printf.sprintf "e18:seir:%g" p) in
        for i = 0 to trials - 1 do
          let rng = Simkit.Seeds.trial_rng ~master ~salt:(salt0 + i) in
          let o = K.run Epidemic.Kernels.seir g params rng in
          if not o.K.completed then incr censored
          else begin
            let obs key =
              match K.observation o key with
              | Some v -> v
              | None -> 0.0
            in
            Stats.Summary.add attack (obs "attack");
            Stats.Summary.add peak (obs "peak" /. float_of_int n);
            Stats.Summary.add gen_r (obs "gen_r");
            Stats.Summary.add_int rounds o.K.rounds
          end
        done;
        A.Tab.add_row table
          [
            A.floatf "%.2f" p;
            A.int (Graph.View.max_degree g);
            A.summary attack;
            A.summary peak;
            A.summary gen_r;
            A.summary rounds;
          ];
        (p, attack, gen_r, !censored))
      ps
  in
  emit (A.Tab.event table);
  emit
    (A.note
       "p = 0 is pure preferential attachment (heavy hubs); p = 1 attaches \
        uniformly. Two contact picks per susceptible per round keep the \
        epidemic supercritical across the whole tail sweep.");
  (* Acceptance: the process always absorbs (no censoring — absorption
     is deterministic within n * (latent + infectious) rounds, so a
     censored trial is a kernel bug), the epidemic is supercritical on
     every tail (mean attack rate above one half), and the growth phase
     is visible in the generational R (mean above 1). *)
  let none_censored = List.for_all (fun (_, _, _, c) -> c = 0) rows in
  let supercritical =
    List.for_all (fun (_, a, _, _) -> Stats.Summary.mean a > 0.5) rows
  in
  let growth =
    List.for_all (fun (_, _, r, _) -> Stats.Summary.mean r > 1.0) rows
  in
  emit
    (A.verdict
       ~pass:(none_censored && supercritical && growth)
       (Printf.sprintf
          "SEIR absorbed in every trial%s; mean attack rate above 1/2 on \
           every degree tail%s; mean generational R above 1%s"
          (if none_censored then "" else " FAILED: censored trials")
          (if supercritical then "" else " FAILED: subcritical attack rate")
          (if growth then "" else " FAILED: no generational growth")))

let spec =
  {
    Spec.id = "E18";
    slug = "seir-attack";
    title = "SEIR attack rate, peak load and generational R across degree tails";
    claim =
      "On preferential-attachment contact graphs the discrete SEIR process \
       with two contact picks per round is supercritical across the whole \
       uniform-vs-preferential attachment sweep: attack rates stay \
       macroscopic, the peak infectious load and generational R shift \
       with the degree tail, and the fixed latency only stretches the \
       timeline, never the outcome.";
    run;
  }
