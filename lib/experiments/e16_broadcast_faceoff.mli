(** E16 — broadcast model face-off: rounds-to-cover for push, pull,
    push-pull (Fountoulakis–Panagiotou, see PAPERS.md) and COBRA k=2 on
    a random 4-regular expander and on hypercubes, all driven through
    the shared {!Cobra.Kernel} trial machinery. *)

val spec : Spec.t
