(** The experiment catalogue consumed by [bench/main.exe] and
    [cobra_cli exp]. *)

(** [all] lists every experiment in id order (E1 .. E16). *)
val all : Spec.t list

(** [id_range ()] is ["E1..E16"] — derived from {!all}, so CLI docs never
    go stale as experiments are added. *)
val id_range : unit -> string

(** [find key] looks an experiment up by id ("E4") or slug ("duality"),
    case-insensitively. *)
val find : string -> Spec.t option

(** [engine_preamble ()] prints the trial-engine/domain-count banner shown
    before console suite runs. *)
val engine_preamble : unit -> unit

(** [run_many specs ~sink ~scale ~master] runs the given experiments in
    order through one sink, returning their artifacts. *)
val run_many :
  Spec.t list ->
  sink:Simkit.Sink.t ->
  scale:Simkit.Scale.t ->
  master:int ->
  Simkit.Artifact.t list

(** [all_passed artifacts] — no experiment emitted a failing verdict; the
    [--check] gate. *)
val all_passed : Simkit.Artifact.t list -> bool

(** [run_all ~scale ~master] runs every experiment on the console sink
    with banners — the classic stdout suite. *)
val run_all : scale:Simkit.Scale.t -> master:int -> unit
