(** The experiment catalogue consumed by [bench/main.exe] and
    [cobra_cli exp]. *)

(** [all] lists every experiment in id order (E1 .. E11). *)
val all : Spec.t list

(** [find key] looks an experiment up by id ("E4") or slug ("duality"),
    case-insensitively. *)
val find : string -> Spec.t option

(** [run_all ~scale ~master] runs every experiment with banners. *)
val run_all : scale:Simkit.Scale.t -> master:int -> unit
