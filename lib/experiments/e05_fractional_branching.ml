module Scale = Simkit.Scale
module A = Simkit.Artifact

(* For each ρ we measure cover time at two sizes; Theorem 3 says each row
   is O(log n) with a constant depending on ρ (through Corollary 1 the
   growth rate scales with ρ, so cover·ρ should be roughly flat in ρ). The
   doubling check cover(n2)/cover(n1) ≈ ln n2 / ln n1 confirms logarithmic
   growth per ρ. *)
let run ~emit ~scale ~master =
  let n1, n2 =
    Scale.pick scale ~quick:(512, 2048) ~standard:(4096, 32768) ~full:(16384, 131072)
  in
  let trials = Scale.pick scale ~quick:10 ~standard:30 ~full:40 in
  let rhos = [ 0.05; 0.1; 0.2; 0.4; 0.7; 1.0 ] in
  let r = 3 in
  let g1 = Common.expander ~master ~tag:"e05" ~n:n1 ~r () in
  let g2 = Common.expander ~master ~tag:"e05" ~n:n2 ~r () in
  emit
    (A.context
       [ ("r", string_of_int r); ("n1", string_of_int n1); ("n2", string_of_int n2);
         ("trials", string_of_int trials) ]);
  let table =
    A.Tab.create
      [ "rho"; "cover(n1)"; "cover(n2)"; "ratio"; "ln n2/ln n1"; "rho*cover(n2)/ln n2" ]
  in
  let log_ratio = Common.ln n2 /. Common.ln n1 in
  let ok = ref true in
  List.iter
    (fun rho ->
      let branching = Cobra.Branching.one_plus rho in
      let s1, _ =
        Common.cover_summary g1 ~branching ~start:0 ~trials ~master
          ~tag:(Printf.sprintf "e05a:%g" rho)
      in
      let s2, _ =
        Common.cover_summary g2 ~branching ~start:0 ~trials ~master
          ~tag:(Printf.sprintf "e05b:%g" rho)
      in
      let m1 = Stats.Summary.mean s1 and m2 = Stats.Summary.mean s2 in
      let ratio = m2 /. m1 in
      (* Logarithmic growth: the n2/n1 cover ratio should track
         ln n2 / ln n1, far below the polynomial ratio (n2/n1)^eps. *)
      if ratio > 2.5 *. log_ratio then ok := false;
      A.Tab.add_row table
        [
          A.floatf "%.2f" rho;
          A.summary s1;
          A.summary s2;
          A.floatf "%.3f" ratio;
          A.floatf "%.3f" log_ratio;
          A.floatf "%.2f" (rho *. m2 /. Common.ln n2);
        ])
    rhos;
  emit (A.Tab.event table);
  emit
    (A.verdict ~pass:!ok
       "every rho's cover-time growth from n1 to n2 tracks ln n2/ln n1 (O(log n))")

let spec =
  {
    Spec.id = "E5";
    slug = "fractional-branching";
    title = "Fractional branching factor 1+rho (Theorem 3)";
    claim =
      "Theorem 3: for any constant rho > 0, the COBRA process with \
       branching factor 1+rho covers expanders in O(log n) rounds.";
    run;
  }
