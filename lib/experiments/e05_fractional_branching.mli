(** E5 — fractional branching 1+ρ (Theorem 3): any constant ρ > 0 gives
    O(log n) cover on expanders. *)

val spec : Spec.t
