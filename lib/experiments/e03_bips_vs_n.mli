(** E3 — BIPS infection time vs n (Theorem 2), side by side with COBRA
    cover times: the duality says both are of the same order. *)

val spec : Spec.t
