module Scale = Simkit.Scale
module A = Simkit.Artifact
module B = Cobra.Branching

(* Protocol accounting: a COBRA vertex transmits at most k times per round
   and only while active; a push vertex transmits every round once
   informed; flooding transmits on every edge every round. Total
   transmissions until cover tell the cost story the paper's introduction
   motivates. *)
let cobra_outcome g rng =
  let p = Cobra.Process.create g ~branching:B.cobra_k2 ~start:[ 0 ] in
  let cap = 10_000 + (100 * Graph.View.n_vertices g) in
  while (not (Cobra.Process.is_covered p)) && Cobra.Process.round p < cap do
    Cobra.Process.step p rng
  done;
  if Cobra.Process.is_covered p then
    Some (Cobra.Process.round p, Cobra.Process.transmissions p)
  else None

let summarise_pairs ~trials ~master ~tag f =
  let rounds = Stats.Summary.create () and tx = Stats.Summary.create () in
  let censored = ref 0 in
  for i = 0 to trials - 1 do
    let rng = Simkit.Seeds.trial_rng ~master ~salt:(Common.salt_of ~tag + i) in
    match f rng with
    | Some (r, t) ->
      Stats.Summary.add_int rounds r;
      Stats.Summary.add_int tx t
    | None -> incr censored
  done;
  (rounds, tx, !censored)

let run_graph ~emit ~name g ~trials ~master ~tag =
  emit (A.section (Printf.sprintf "%s (n=%d)" name (Graph.View.n_vertices g)));
  let table =
    A.Tab.create [ "protocol"; "rounds"; "transmissions"; "tx / n" ]
  in
  let n = Float.of_int (Graph.View.n_vertices g) in
  let add_protocol label rounds tx =
    A.Tab.add_row table
      [
        A.str label;
        A.summary rounds;
        A.float (Stats.Summary.mean tx);
        A.floatf "%.2f" (Stats.Summary.mean tx /. n);
      ]
  in
  let c_rounds, c_tx, _ =
    summarise_pairs ~trials ~master ~tag:(tag ^ ":cobra") (cobra_outcome g)
  in
  add_protocol "COBRA k=2" c_rounds c_tx;
  let p_rounds, p_tx, _ =
    summarise_pairs ~trials ~master ~tag:(tag ^ ":push") (fun rng ->
        Option.map
          (fun o -> (o.Cobra.Push.rounds, o.Cobra.Push.transmissions))
          (Cobra.Push.push g ~start:0 rng))
  in
  add_protocol "push" p_rounds p_tx;
  let pp_rounds, pp_tx, _ =
    summarise_pairs ~trials ~master ~tag:(tag ^ ":pushpull") (fun rng ->
        Option.map
          (fun o -> (o.Cobra.Push.rounds, o.Cobra.Push.transmissions))
          (Cobra.Push.push_pull g ~start:0 rng))
  in
  add_protocol "push-pull" pp_rounds pp_tx;
  let flood = Cobra.Push.flood g ~start:0 in
  A.Tab.add_row table
    [
      A.str "flooding";
      A.int flood.Cobra.Push.rounds;
      A.int flood.Cobra.Push.transmissions;
      A.floatf "%.2f" (Float.of_int flood.Cobra.Push.transmissions /. n);
    ];
  emit (A.Tab.event table);
  ( Stats.Summary.mean c_rounds, Stats.Summary.mean c_tx,
    Stats.Summary.mean p_rounds, Stats.Summary.mean p_tx )

let run ~emit ~scale ~master =
  let n_complete = Scale.pick scale ~quick:256 ~standard:1024 ~full:8192 in
  let n_sparse = Scale.pick scale ~quick:1024 ~standard:4096 ~full:32768 in
  let trials = Scale.pick scale ~quick:10 ~standard:25 ~full:60 in
  emit (A.context [ ("trials", string_of_int trials) ]);
  let cr1, ct1, pr1, pt1 =
    run_graph ~emit ~name:"complete graph" (Graph.View.of_csr (Graph.Gen.complete n_complete)) ~trials
      ~master ~tag:"e11:k"
  in
  let cr2, ct2, pr2, pt2 =
    run_graph ~emit ~name:"random 3-regular"
      (Common.expander ~master ~tag:"e11" ~n:n_sparse ~r:3 ())
      ~trials ~master ~tag:"e11:r"
  in
  (* Acceptance: COBRA matches push's round count up to a small factor
     and its total transmissions stay within a small factor too — while,
     by construction, no vertex ever transmits more than k = 2 times per
     round and inactive vertices transmit nothing (push keeps every
     informed vertex transmitting every round). *)
  let ok =
    cr1 < 4.0 *. pr1 && cr2 < 4.0 *. pr2 && ct1 < 3.0 *. pt1 && ct2 < 3.0 *. pt2
  in
  emit
    (A.verdict ~pass:ok
       (Printf.sprintf
          "COBRA rounds within 4x of push (%.0f vs %.0f; %.0f vs %.0f), total \
           transmissions within 3x (%.0f vs %.0f; %.0f vs %.0f), per-vertex \
           per-round budget <= 2 by construction"
          cr1 pr1 cr2 pr2 ct1 pt1 ct2 pt2))

let spec =
  {
    Spec.id = "E11";
    slug = "transmission-budget";
    title = "Rounds vs total transmissions: COBRA against push/flooding";
    claim =
      "Section 1: COBRA propagates fast while limiting transmissions per \
       vertex per round — unlike push, informed vertices stop \
       transmitting until reactivated.";
    run;
  }
