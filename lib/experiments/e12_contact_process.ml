module Scale = Simkit.Scale
module A = Simkit.Artifact
module Contact = Epidemic.Contact

(* Per-edge infection rate sweep across the phase transition (recovery
   rate 1; on r-regular graphs the transition sits near 1/(r-1)). For
   each rate: survival probability without a source, and the outcome with
   a persistent source. The paper's point: the discrete analogue BIPS has
   the persistent-source column's behaviour built in — it can never die. *)
let run ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:512 ~standard:2048 ~full:8192 in
  let r = 4 in
  let trials = Scale.pick scale ~quick:30 ~standard:80 ~full:100 in
  let horizon = Scale.pick scale ~quick:100.0 ~standard:150.0 ~full:250.0 in
  let rates = [ 0.05; 0.1; 0.2; 0.3; 0.5; 0.75; 1.0 ] in
  let g = Common.expander ~master ~tag:"e12" ~n ~r () in
  emit
    (A.context
       [
         ("graph", Printf.sprintf "random %d-regular, n=%d" r n);
         ("recovery rate", "1 (normalised)");
         ("critical point (tree heuristic)", Printf.sprintf "~1/(r-1) = %.2f" (1.0 /. Float.of_int (r - 1)));
         ("horizon", Printf.sprintf "%.0f time units" horizon);
         ("trials/rate", string_of_int trials);
       ]);
  let table =
    A.Tab.create
      [ "rate"; "survival (no source)"; "with persistent source"; "mean exposure time" ]
  in
  let subcritical_all_die = ref true and supercritical_source_exposes = ref true in
  List.iter
    (fun rate ->
      let rng = Simkit.Seeds.tagged_rng ~master ~tag:(Printf.sprintf "e12:%g" rate) in
      let survived, _ =
        Contact.survival_probability ~horizon ~trials g ~infection_rate:rate
          ~start:[ 0 ] rng
      in
      if rate <= 0.1 && survived > 0 then subcritical_all_die := false;
      let full = ref 0 and times = Stats.Summary.create () in
      let source_trials = max 10 (trials / 4) in
      for _ = 1 to source_trials do
        let res = Contact.run ~horizon g ~infection_rate:rate ~persistent:(Some 0) ~start:[] rng in
        match res.Contact.outcome with
        | Contact.Fully_exposed t ->
          incr full;
          Stats.Summary.add times t
        | Contact.Still_active _ -> ()
        | Contact.Died_out _ ->
          (* impossible with a persistent source *)
          supercritical_source_exposes := false
      done;
      if rate >= 0.5 && !full < source_trials then supercritical_source_exposes := false;
      A.Tab.add_row table
        [
          A.floatf "%.2f" rate;
          A.str (Printf.sprintf "%d/%d" survived trials);
          A.str (Printf.sprintf "%d/%d fully exposed" !full source_trials);
          (if Stats.Summary.count times > 0 then A.summary times else A.str "-");
        ])
    rates;
  emit (A.Tab.event table);
  emit
    (A.notef
       "\n(BIPS, the paper's discrete analogue with a built-in persistent source,\n\
       \ saturates this graph in ~%s rounds regardless of any rate parameter.)"
       (let s, _ =
          Common.infection_summary g ~branching:Cobra.Branching.cobra_k2 ~source:0
            ~trials:10 ~master ~tag:"e12:bips"
        in
        A.float_to_string (Stats.Summary.mean s)));
  emit
    (A.verdict
       ~pass:(!subcritical_all_die && !supercritical_source_exposes)
       "subcritical contact process always dies; the persistent source turns \
        supercritical runs into certain full exposure (and makes extinction \
        impossible at any rate)")

let spec =
  {
    Spec.id = "E12";
    slug = "contact-process";
    title = "The continuous-time contact process vs the persistent source";
    claim =
      "Section 1: COBRA is a discrete version of the contact process \
       (Harris 1974); a contact process can die out, whereas the \
       COBRA/BIPS one does not — the persistent source removes the \
       extinct phase.";
    run;
  }
