module Scale = Simkit.Scale
module A = Simkit.Artifact

(* The proof of Theorem 2 splits a BIPS run into three phases:
   - Lemma 2 (small sets): |A| grows from 1 to m within
     13m/(1-λ) + 24C·log n/(1-λ)² rounds w.h.p.;
   - Lemma 3 (middle): from K log n/(1-λ)² to 9n/10 within
     23 log n/(1-λ) rounds, by per-(23/(1-λ))-round doubling;
   - Lemma 4 (endgame): from 9n/10 to n within 8 log n/(1-λ) rounds.
   We time the corresponding segments of live trajectories and compare
   each against its lemma's explicit bound. The middle and endgame bounds
   have concrete constants with no slack parameters, so the comparison is
   sharp: every trial must finish inside them (they hold w.h.p. with
   failure probability n^-4, far below our trial counts). *)
let run ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:1024 ~standard:8192 ~full:65536 in
  let r = 4 in
  let trials = Scale.pick scale ~quick:20 ~standard:60 ~full:150 in
  let g = Common.expander ~master ~tag:"e14" ~n ~r () in
  let gap_t =
    Spectral.Gap.estimate (Simkit.Seeds.tagged_rng ~master ~tag:"e14:spec") g
  in
  let gap = gap_t.Spectral.Gap.gap in
  let ln_n = Common.ln n in
  emit
    (A.context
       [
         ("graph", Printf.sprintf "random %d-regular, n=%d" r n);
         ("lambda", Printf.sprintf "%.4f (gap %.4f)" gap_t.Spectral.Gap.lambda gap);
         ("trials", string_of_int trials);
         ("branching", "k=2");
       ]);
  let thresh_small = n / 10 and thresh_big = 9 * n / 10 in
  let p1 = Stats.Summary.create () in
  let p2 = Stats.Summary.create () in
  let p3 = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    let rng = Simkit.Seeds.trial_rng ~master ~salt:(Common.salt_of ~tag:"e14" + i) in
    let sizes =
      Cobra.Bips.size_trajectory g ~branching:Cobra.Branching.cobra_k2 ~source:0 rng
    in
    let first_at threshold =
      let t = ref (-1) in
      (try
         Array.iteri
           (fun i s ->
             if s >= threshold then begin
               t := i;
               raise Exit
             end)
           sizes
       with Exit -> ());
      !t
    in
    let t_small = first_at thresh_small in
    let t_big = first_at thresh_big in
    let t_full = Array.length sizes - 1 in
    if t_small < 0 || t_big < 0 then
      failwith "E14: trajectory never reached its thresholds";
    Stats.Summary.add_int p1 t_small;
    Stats.Summary.add_int p2 (t_big - t_small);
    Stats.Summary.add_int p3 (t_full - t_big)
  done;
  (* Lemma 2's bound for m = n/10 (C = 3 matches the paper's n^-3
     failure-probability target). *)
  let lemma2_bound =
    (13.0 *. Float.of_int thresh_small /. gap) +. (72.0 *. ln_n /. (gap ** 2.0))
  in
  let lemma3_bound = 23.0 *. ln_n /. gap in
  let lemma4_bound = 8.0 *. ln_n /. gap in
  let table =
    A.Tab.create
      [ "phase"; "range of |A|"; "rounds (mean ± ci95)"; "max"; "lemma bound"; "max/bound" ]
  in
  let row name range s bound =
    A.Tab.add_row table
      [
        A.str name;
        A.str range;
        A.summary s;
        A.float (Stats.Summary.max s);
        A.float bound;
        A.floatf "%.4f" (Stats.Summary.max s /. bound);
      ]
  in
  row "Lemma 2 (small sets)" (Printf.sprintf "1 -> n/10 (%d)" thresh_small) p1 lemma2_bound;
  row "Lemma 3 (growth)" (Printf.sprintf "n/10 -> 9n/10 (%d)" thresh_big) p2 lemma3_bound;
  row "Lemma 4 (endgame)" "9n/10 -> n" p3 lemma4_bound;
  emit (A.Tab.event table);
  let ok =
    Stats.Summary.max p1 <= lemma2_bound
    && Stats.Summary.max p2 <= lemma3_bound
    && Stats.Summary.max p3 <= lemma4_bound
  in
  emit
    (A.verdict ~pass:ok
       "every trial finishes each phase within its lemma's explicit w.h.p. bound")

let spec =
  {
    Spec.id = "E14";
    slug = "proof-anatomy";
    title = "The three BIPS growth phases vs Lemmas 2-4's explicit bounds";
    claim =
      "Lemmas 2-4: BIPS grows from 1 to m in 13m/(1-lambda) + \
       24C log n/(1-lambda)^2 rounds, doubles every 23/(1-lambda) rounds \
       up to 9n/10, and finishes within 8 log n/(1-lambda) more rounds, \
       each w.h.p.";
    run;
  }
