(** Helpers shared across the experiment modules: deterministic graph
    construction per (experiment, parameters), and the standard COBRA/BIPS
    trial measurements. *)

(** [graph_rng ~master ~tag] — the stream used to *construct* a workload
    graph; distinct from trial streams so adding trials never changes the
    graph. *)
val graph_rng : master:int -> tag:string -> Prng.Rng.t

(** [expander ?backend ~master ~tag ~n ~r ()] draws a connected random
    r-regular graph deterministically from [(master, tag, n, r)] and
    wraps it behind the requested topology backend (default heap;
    [`Bigarray] copies the edges off-heap; [`Implicit] is rejected —
    random graphs have no closed form). *)
val expander :
  ?backend:Graph.View.backend ->
  master:int ->
  tag:string ->
  n:int ->
  r:int ->
  unit ->
  Graph.View.t

(** [cover_summary ?cap g ~branching ~start ~trials ~master ~tag] runs
    COBRA cover-time trials; returns the summary and censored count. *)
val cover_summary :
  ?cap:int ->
  Graph.View.t ->
  branching:Cobra.Branching.t ->
  start:int ->
  trials:int ->
  master:int ->
  tag:string ->
  Stats.Summary.t * int

(** [infection_summary ?cap g ~branching ~source ~trials ~master ~tag] runs
    BIPS infection-time trials. *)
val infection_summary :
  ?cap:int ->
  Graph.View.t ->
  branching:Cobra.Branching.t ->
  source:int ->
  trials:int ->
  master:int ->
  tag:string ->
  Stats.Summary.t * int

(** [walk_cover_summary ?cap g ~start ~trials ~master ~tag] — simple
    random-walk cover times. *)
val walk_cover_summary :
  ?cap:int ->
  Graph.View.t ->
  start:int ->
  trials:int ->
  master:int ->
  tag:string ->
  Stats.Summary.t * int

(** [salt_of ~tag] hashes an arbitrary tag into a trial-salt base so each
    measurement series draws from its own region of seed space (alias of
    {!Simkit.Seeds.salt_of_tag}). *)
val salt_of : tag:string -> int

(** [ln] is natural log of an int, as float. *)
val ln : int -> float
