module Scale = Simkit.Scale
module A = Simkit.Artifact
module B = Cobra.Branching

(* The paper's model samples k neighbours WITH replacement — on an
   r-regular graph a pick duplicates an earlier one with probability
   ~ (k-1)/r, wasted transmissions that matter most at small r. This
   ablation replaces the scheme with k DISTINCT neighbours and asks two
   questions the paper's machinery answers:

   1. Does Theorem 4's duality survive? Yes — its proof only needs the
      per-vertex pick-set distributions of COBRA and BIPS to coincide,
      not any particular distribution. Checked exactly.
   2. What happens to the constants? Cover time improves by ~25% at
      r = 3 and the two schemes converge as r grows (duplicate
      probability 1/r vanishes). *)
let run ~emit ~scale ~master =
  (* Part 1: the duality is scheme-independent. *)
  let t_max = Scale.pick scale ~quick:6 ~standard:10 ~full:12 in
  emit (A.section "exact duality check for the distinct-sampling variant");
  let table1 = A.Tab.create [ "graph"; "branching"; "max |LHS - RHS|" ] in
  let worst = ref 0.0 in
  List.iter
    (fun (name, g, b) ->
      let gap = Cobra.Exact.duality_gap g ~branching:b ~t_max in
      if gap > !worst then worst := gap;
      A.Tab.add_row table1
        [ A.str name; A.str (B.to_string b); A.floatf "%.3e" gap ])
    [
      ("Petersen", Graph.Gen.petersen (), B.distinct 2);
      ("C_7", Graph.Gen.cycle 7, B.distinct 2);
      ("K_6", Graph.Gen.complete 6, B.distinct 3);
    ];
  emit (A.Tab.event table1);

  (* Part 2: cover-time constants, with vs without replacement, across
     degrees. *)
  let n = Scale.pick scale ~quick:1024 ~standard:8192 ~full:32768 in
  let trials = Scale.pick scale ~quick:10 ~standard:40 ~full:80 in
  emit
    (A.section
       (Printf.sprintf "cover times: with vs without replacement (n=%d, %d trials)" n
          trials));
  let table2 =
    A.Tab.create
      [ "r"; "k=2 with repl."; "k=2 distinct"; "distinct/with"; "dup prob ~1/r" ]
  in
  let ratios = ref [] in
  List.iter
    (fun r ->
      let g = Common.expander ~master ~tag:"e15" ~n ~r () in
      let with_repl, _ =
        Common.cover_summary g ~branching:B.cobra_k2 ~start:0 ~trials ~master
          ~tag:(Printf.sprintf "e15w:%d" r)
      in
      let without, _ =
        Common.cover_summary g ~branching:(B.distinct 2) ~start:0 ~trials ~master
          ~tag:(Printf.sprintf "e15d:%d" r)
      in
      let ratio = Stats.Summary.mean without /. Stats.Summary.mean with_repl in
      ratios := (r, ratio) :: !ratios;
      A.Tab.add_row table2
        [
          A.int r;
          A.summary with_repl;
          A.summary without;
          A.floatf "%.3f" ratio;
          A.floatf "%.3f" (1.0 /. Float.of_int r);
        ])
    [ 3; 4; 8; 16 ];
  emit (A.Tab.event table2);
  let ratio_at r = List.assoc r !ratios in
  (* Acceptance: duality exact; distinct never slower (it stochastically
     dominates); schemes converge at large r. *)
  let ok =
    !worst < 1e-9
    && ratio_at 3 < 1.0
    && ratio_at 16 > ratio_at 3
    && ratio_at 16 > 0.9
  in
  emit
    (A.verdict ~pass:ok
       (Printf.sprintf
          "duality gap %.1e for distinct sampling; cover ratio %.2f at r=3 \
           rising to %.2f at r=16 (schemes converge as the duplicate \
           probability 1/r vanishes)"
          !worst (ratio_at 3) (ratio_at 16)))

let spec =
  {
    Spec.id = "E15";
    slug = "sampling-ablation";
    title = "Ablation: k distinct neighbours vs the paper's with-replacement picks";
    claim =
      "Design ablation (ours, enabled by Theorem 4's proof structure): \
       the duality holds for any per-vertex pick-set distribution shared \
       by COBRA and BIPS, so sampling without replacement preserves every \
       result while improving the constant at small degree.";
    run;
  }
