(** E10 — the epidemic motivation (Section 1, reference [9]): a
    persistently infected animal drives a herd to full exposure, while a
    transient index case usually burns out. *)

val spec : Spec.t
