(** E12 — COBRA/BIPS vs the classical contact process (Section 1's
    framing): the continuous-time contact process can die out; the
    persistent source removes extinction, exactly as BIPS's does. *)

val spec : Spec.t
