(** E1 — COBRA cover time vs n on constant-degree expanders (Theorem 1):
    cover time grows as Θ(log n), improving the O(log² n) of Dutta et
    al. *)

val spec : Spec.t
