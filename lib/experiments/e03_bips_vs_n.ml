module Scale = Simkit.Scale
module A = Simkit.Artifact

let run ~emit ~scale ~master =
  let ns =
    Scale.pick scale
      ~quick:[ 256; 512; 1024; 2048 ]
      ~standard:[ 1024; 2048; 4096; 8192; 16384 ]
      ~full:[ 4096; 8192; 16384; 32768; 65536; 131072 ]
  in
  let trials = Scale.pick scale ~quick:10 ~standard:30 ~full:100 in
  let r = 3 in
  emit
    (A.context
       [ ("r", string_of_int r); ("branching", "k=2");
         ("trials/n", string_of_int trials) ]);
  let table =
    A.Tab.create
      [ "n"; "infec (mean ± ci95)"; "infec/ln n"; "cover (mean)"; "infec/cover" ]
  in
  let xs = ref [] and ys = ref [] in
  List.iter
    (fun n ->
      (* Same graphs as E1 (same construction tag) so the comparison is
         within one workload. *)
      let g = Common.expander ~master ~tag:"e01" ~n ~r () in
      let infec, _ =
        Common.infection_summary g ~branching:Cobra.Branching.cobra_k2 ~source:0
          ~trials ~master ~tag:(Printf.sprintf "e03i:%d" n)
      in
      let cover, _ =
        Common.cover_summary g ~branching:Cobra.Branching.cobra_k2 ~start:0 ~trials
          ~master ~tag:(Printf.sprintf "e03c:%d" n)
      in
      let mi = Stats.Summary.mean infec and mc = Stats.Summary.mean cover in
      xs := Float.of_int n :: !xs;
      ys := mi :: !ys;
      A.Tab.add_row table
        [
          A.int n;
          A.summary infec;
          A.floatf "%.3f" (mi /. Common.ln n);
          A.float mc;
          A.floatf "%.3f" (mi /. mc);
        ])
    ns;
  emit (A.Tab.event table);
  let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
  let fit = Stats.Regress.semilog xs ys in
  emit (A.fit_of_regress ~label:"infec = a + b*ln n" ~model:"semilog" fit);
  emit
    (A.verdict ~pass:(fit.Stats.Regress.r2 > 0.95)
       (Printf.sprintf "infection time is log-linear in n (R²=%.3f)"
          fit.Stats.Regress.r2))

let spec =
  {
    Spec.id = "E3";
    slug = "bips-vs-n";
    title = "BIPS infection time vs n, and its ratio to COBRA cover time";
    claim =
      "Theorem 2: infec(v) = O(log n / (1-lambda)^3) w.h.p.; by the \
       Theorem 4 duality it has the same order as the COBRA cover time.";
    run;
  }
