type t = {
  id : string;
  slug : string;
  title : string;
  claim : string;
  run : scale:Simkit.Scale.t -> master:int -> unit;
}

let run_with_banner t ~scale ~master =
  Simkit.Report.banner ~id:t.id ~title:t.title;
  Simkit.Report.claim t.claim;
  Simkit.Report.context
    [
      ("scale", Simkit.Scale.to_string scale);
      ("master seed", string_of_int master);
    ];
  t.run ~scale ~master
