module Artifact = Simkit.Artifact
module Sink = Simkit.Sink

type t = {
  id : string;
  slug : string;
  title : string;
  claim : string;
  run :
    emit:(Artifact.event -> unit) -> scale:Simkit.Scale.t -> master:int -> unit;
}

let meta t ~scale ~master =
  {
    Artifact.id = t.id;
    slug = t.slug;
    title = t.title;
    claim = t.claim;
    scale = Simkit.Scale.to_string scale;
    master;
    domains = Simkit.Pool.default_domains ();
  }

let run t ~sink ~scale ~master =
  let meta = meta t ~scale ~master in
  sink.Sink.start meta;
  let rev_events = ref [] in
  let emit e =
    rev_events := e :: !rev_events;
    sink.Sink.event e
  in
  let t0 = Unix.gettimeofday () in
  t.run ~emit ~scale ~master;
  let artifact =
    {
      Artifact.meta;
      events = List.rev !rev_events;
      elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  sink.Sink.finish artifact;
  artifact

let run_console t ~scale ~master =
  ignore (run t ~sink:(Sink.console ()) ~scale ~master)
