(** E7 — non-expanders (Dutta et al. comparison): on d-dimensional tori
    the cover time is polynomial, ~n^(1/d) up to polylog factors. *)

val spec : Spec.t
