module Scale = Simkit.Scale
module A = Simkit.Artifact
module B = Cobra.Branching

let exact_part ~emit ~t_max =
  let cases =
    [
      ("Petersen", Graph.Gen.petersen (), B.cobra_k2);
      ("K_7", Graph.Gen.complete 7, B.cobra_k2);
      ("C_9", Graph.Gen.cycle 9, B.cobra_k2);
      ("Q_3", Graph.Gen.hypercube 3, B.cobra_k2);
      ("circulant(9,{1,3})", Graph.Gen.circulant 9 [ 1; 3 ], B.cobra_k2);
      ("Petersen k=3", Graph.Gen.petersen (), B.fixed 3);
      ("Petersen 1+0.5", Graph.Gen.petersen (), B.one_plus 0.5);
      ("C_7 1+0.25", Graph.Gen.cycle 7, B.one_plus 0.25);
    ]
  in
  let table = A.Tab.create [ "graph"; "branching"; "max |LHS - RHS|, t<=T" ] in
  let worst = ref 0.0 in
  List.iter
    (fun (name, g, branching) ->
      let gap = Cobra.Exact.duality_gap g ~branching ~t_max in
      if gap > !worst then worst := gap;
      A.Tab.add_row table
        [ A.str name; A.str (B.to_string branching); A.floatf "%.3e" gap ])
    cases;
  emit (A.Tab.event table);
  emit (A.metric ~name:"exact duality gap (worst case)" !worst);
  !worst

let mc_part ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:100 ~standard:200 ~full:500 in
  let trials = Scale.pick scale ~quick:2000 ~standard:10000 ~full:50000 in
  let ts = Scale.pick scale ~quick:[ 3; 6 ] ~standard:[ 3; 8 ] ~full:[ 3; 8; 14 ] in
  let g = Common.expander ~master ~tag:"e04" ~n ~r:3 () in
  let rng = Simkit.Seeds.tagged_rng ~master ~tag:"e04:mc" in
  let table =
    A.Tab.create
      [ "t"; "u"; "v"; "P(Hit_u(v)>t) [COBRA]"; "P(u not in A_t) [BIPS]"; "CIs overlap" ]
  in
  let all_overlap = ref true in
  List.iter
    (fun t ->
      for _ = 1 to 2 do
        let u = Prng.Rng.int rng n in
        let v = Prng.Rng.int rng n in
        if u <> v then begin
          let c =
            Cobra.Duality.compare_at ~trials g ~branching:B.cobra_k2 ~u ~v ~t rng
          in
          let cobra_rate, bips_rate = Cobra.Duality.estimated_rates c in
          let ci_c =
            Stats.Ci.proportion_ci ~successes:c.Cobra.Duality.cobra_surviving
              ~trials:c.Cobra.Duality.cobra_trials ()
          in
          let ci_b =
            Stats.Ci.proportion_ci ~successes:c.Cobra.Duality.bips_absent
              ~trials:c.Cobra.Duality.bips_trials ()
          in
          let overlap =
            ci_c.Stats.Ci.lo <= ci_b.Stats.Ci.hi && ci_b.Stats.Ci.lo <= ci_c.Stats.Ci.hi
          in
          all_overlap := !all_overlap && overlap;
          A.Tab.add_row table
            [
              A.int t;
              A.int u;
              A.int v;
              A.floatf "%.4f" cobra_rate;
              A.floatf "%.4f" bips_rate;
              A.str (if overlap then "yes" else "NO");
            ]
        end
      done)
    ts;
  emit (A.Tab.event table);
  !all_overlap

let run ~emit ~scale ~master =
  let t_max = Scale.pick scale ~quick:8 ~standard:12 ~full:16 in
  emit (A.section "exact check (dynamic programming over subsets)");
  let worst = exact_part ~emit ~t_max in
  emit (A.section "Monte-Carlo check on a random 3-regular graph");
  let overlap = mc_part ~emit ~scale ~master in
  emit
    (A.verdict
       ~pass:(worst < 1e-9 && overlap)
       (Printf.sprintf
          "exact duality gap %.2e (< 1e-9); all Monte-Carlo 95%% CIs overlap: %b"
          worst overlap))

let spec =
  {
    Spec.id = "E4";
    slug = "duality";
    title = "COBRA-BIPS duality (Theorem 4)";
    claim =
      "Theorem 4: P(Hit_C(v) > t | C_0 = C) = P(C ∩ A_t = ∅ | A_0 = {v}) \
       for every connected regular graph, branching parameter, C and t.";
    run;
  }
