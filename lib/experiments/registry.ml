let all =
  [
    E01_cover_vs_n.spec;
    E02_degree_independence.spec;
    E03_bips_vs_n.spec;
    E04_duality.spec;
    E05_fractional_branching.spec;
    E06_gap_dependence.spec;
    E07_grids.spec;
    E08_k1_vs_k2.spec;
    E09_growth_lemma.spec;
    E10_herd_bvdv.spec;
    E11_transmission_budget.spec;
    E12_contact_process.spec;
    E13_information_speed.spec;
    E14_proof_anatomy.spec;
    E15_sampling_ablation.spec;
    E16_broadcast_faceoff.spec;
    E17_degree_tail.spec;
    E18_seir_attack.spec;
  ]

let id_range () =
  match all with
  | [] -> ""
  | first :: _ ->
    let last = List.nth all (List.length all - 1) in
    Printf.sprintf "%s..%s" first.Spec.id last.Spec.id

let find key =
  let key = String.lowercase_ascii (String.trim key) in
  List.find_opt
    (fun s ->
      String.lowercase_ascii s.Spec.id = key || String.lowercase_ascii s.Spec.slug = key)
    all

let engine_preamble () =
  Printf.printf "trial engine: %d domain(s) (set COBRA_DOMAINS to override; results are\n"
    (Simkit.Pool.default_domains ());
  print_endline "identical at any domain count — each trial owns stream salt0 + i)"

let run_many specs ~sink ~scale ~master =
  List.map (fun s -> Spec.run s ~sink ~scale ~master) specs

let all_passed artifacts = List.for_all Simkit.Artifact.passed artifacts

let run_all ~scale ~master =
  engine_preamble ();
  ignore (run_many all ~sink:(Simkit.Sink.console ()) ~scale ~master)
