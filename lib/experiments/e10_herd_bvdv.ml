module Scale = Simkit.Scale
module A = Simkit.Artifact
module B = Cobra.Branching

(* Herd structure: pens of animals in dense contact (cliques) arranged in
   a ring with one shared fence-line contact between neighbouring pens —
   Graph.Gen.ring_of_cliques. Disease parameters loosely follow the BVDV
   literature's shape: short transient infectiousness, longer immunity. *)
let params = { Epidemic.Herd.contacts = B.cobra_k2; infectious_rounds = 2; immune_rounds = 8 }

let run ~emit ~scale ~master =
  let pens, pen_size =
    Scale.pick scale ~quick:(6, 8) ~standard:(10, 12) ~full:(20, 20)
  in
  let trials = Scale.pick scale ~quick:30 ~standard:100 ~full:60 in
  let g = Graph.View.of_csr (Graph.Gen.ring_of_cliques ~cliques:pens ~clique_size:pen_size) in
  let n = Graph.View.n_vertices g in
  emit
    (A.context
       [
         ("herd", Printf.sprintf "%d pens x %d animals (n=%d)" pens pen_size n);
         ("infectious_rounds", string_of_int params.Epidemic.Herd.infectious_rounds);
         ("immune_rounds", string_of_int params.Epidemic.Herd.immune_rounds);
         ("trials", string_of_int trials);
       ]);
  let classify outcome =
    match outcome with
    | Epidemic.Herd.Herd_fully_exposed t -> `Full t
    | Epidemic.Herd.Infection_extinct t -> `Extinct t
    | Epidemic.Herd.No_resolution _ -> `Censored
  in
  let run_config ~tag ~pi ~index_cases =
    let full = Stats.Summary.create () in
    let extinct = Stats.Summary.create () in
    let full_count = ref 0 and extinct_count = ref 0 and censored = ref 0 in
    for i = 0 to trials - 1 do
      let rng = Simkit.Seeds.trial_rng ~master ~salt:(Common.salt_of ~tag + i) in
      match classify (Epidemic.Herd.run g params ~pi ~index_cases rng) with
      | `Full t ->
        incr full_count;
        Stats.Summary.add_int full t
      | `Extinct t ->
        incr extinct_count;
        Stats.Summary.add_int extinct t
      | `Censored -> incr censored
    done;
    (full, !full_count, extinct, !extinct_count, !censored)
  in
  let table =
    A.Tab.create
      [ "configuration"; "full exposure"; "mean rounds"; "extinct"; "mean rounds";
        "censored" ]
  in
  let cell s count = if count = 0 then A.str "-" else A.summary s in
  let fp, fpc, ep, epc, cp = run_config ~tag:"e10:pi" ~pi:[ 0 ] ~index_cases:[] in
  A.Tab.add_row table
    [
      A.str "1 PI animal";
      A.str (Printf.sprintf "%d/%d" fpc trials);
      cell fp fpc;
      A.str (Printf.sprintf "%d/%d" epc trials);
      cell ep epc;
      A.int cp;
    ];
  let ft, ftc, et, etc_, ct =
    run_config ~tag:"e10:ti" ~pi:[] ~index_cases:[ 0 ]
  in
  A.Tab.add_row table
    [
      A.str "1 transient case";
      A.str (Printf.sprintf "%d/%d" ftc trials);
      cell ft ftc;
      A.str (Printf.sprintf "%d/%d" etc_ trials);
      cell et etc_;
      A.int ct;
    ];
  emit (A.Tab.event table);
  (* BIPS abstraction on the same herd graph, for the structural analogy
     the paper draws: the persistent source makes full infection certain. *)
  let bips, _ =
    Common.infection_summary g ~branching:B.cobra_k2 ~source:0 ~trials ~master
      ~tag:"e10:bips"
  in
  emit
    (A.notef
       "\nBIPS on the same herd graph (pure abstraction): %s rounds to full infection"
       (A.summary_to_string (A.of_summary bips)));
  let pi_always_full = fpc = trials in
  let ti_sometimes_dies = etc_ > 0 in
  emit
    (A.verdict
       ~pass:(pi_always_full && ti_sometimes_dies)
       (Printf.sprintf
          "PI animal: %d/%d runs reach full exposure; transient index case \
           dies out in %d/%d runs"
          fpc trials etc_ trials))

let spec =
  {
    Spec.id = "E10";
    slug = "herd-bvdv";
    title = "BVDV-style herd epidemic with a persistently infected animal";
    claim =
      "Section 1 (ref [9]): a persistently infected individual introduced \
       into an infection-free herd eventually exposes the whole herd — \
       the phenomenon BIPS abstracts; without persistence the infection \
       can die out.";
    run;
  }
