(** E18 — SEIR epidemic headlines (attack rate, peak infectious load,
    generational R) on preferential-attachment contact graphs, swept
    across the uniform-attachment probability. *)

val spec : Spec.t
