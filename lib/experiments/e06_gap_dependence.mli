(** E6 — dependence of cover/infection time on the spectral gap 1-λ,
    against the theoretical ceiling log n / (1-λ)³. *)

val spec : Spec.t
