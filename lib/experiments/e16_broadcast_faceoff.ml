module Scale = Simkit.Scale
module A = Simkit.Artifact
module K = Cobra.Kernel

(* Four single-source broadcast models, one kernel API: push and
   push-pull (Karp et al.; Fountoulakis–Panagiotou), pull alone, and
   COBRA at k = 2 (rounds until the active set has covered V). Running
   all four through Cobra.Kernel keeps the trial seeding identical to
   the sweep subsystem's, so the face-off numbers here are reproducible
   cell-for-cell with `cobra_cli sweep`. *)
let protocols =
  [
    ("push", K.push, K.default_params);
    ("pull", K.pull, K.default_params);
    ("push-pull", K.push_pull, K.default_params);
    ("COBRA k=2", K.cobra, K.default_params);
  ]

let rounds_summary kernel g params ~trials ~master ~tag =
  let s = Stats.Summary.create () in
  let censored = ref 0 in
  let salt0 = Common.salt_of ~tag in
  for i = 0 to trials - 1 do
    let rng = Simkit.Seeds.trial_rng ~master ~salt:(salt0 + i) in
    let o = K.run kernel g params rng in
    if o.K.completed then Stats.Summary.add_int s o.K.rounds else incr censored
  done;
  (s, !censored)

let run_graph ~emit ~name g ~trials ~master ~tag =
  let n = Graph.View.n_vertices g in
  emit (A.section (Printf.sprintf "%s (n=%d)" name n));
  let table = A.Tab.create [ "protocol"; "rounds"; "rounds / log2 n" ] in
  let log2n = Common.ln n /. Float.log 2.0 in
  let means =
    List.map
      (fun (label, kernel, params) ->
        let s, censored =
          rounds_summary kernel g params ~trials ~master
            ~tag:(Printf.sprintf "%s:%s" tag label)
        in
        let m = Stats.Summary.mean s in
        A.Tab.add_row table
          [ A.str label; A.summary s; A.floatf "%.2f" (m /. log2n) ];
        (label, m, censored))
      protocols
  in
  emit (A.Tab.event table);
  means

let run ~emit ~scale ~master =
  let n_rr = Scale.pick scale ~quick:256 ~standard:1024 ~full:4096 in
  let dim = Scale.pick scale ~quick:8 ~standard:10 ~full:12 in
  let trials = Scale.pick scale ~quick:10 ~standard:25 ~full:60 in
  emit (A.context [ ("trials", string_of_int trials) ]);
  (* Sequenced lets: a list literal would emit the sections in
     right-to-left evaluation order. *)
  let rr =
    run_graph ~emit ~name:"random 4-regular"
      (Common.expander ~master ~tag:"e16" ~n:n_rr ~r:4 ())
      ~trials ~master ~tag:"e16:rr"
  in
  let q =
    run_graph ~emit
      ~name:(Printf.sprintf "hypercube Q%d" dim)
      (Graph.View.of_csr (Graph.Gen.hypercube dim))
      ~trials ~master ~tag:"e16:q"
  in
  let faceoff = [ rr; q ] in
  (* Acceptance: every protocol informs the whole graph in every trial,
     and the hybrid is a genuine hybrid — mean push-pull rounds never
     exceed the better of its two halves by more than one round. *)
  let none_censored =
    List.for_all (List.for_all (fun (_, _, c) -> c = 0)) faceoff
  in
  let mean_of label rows =
    let _, m, _ = List.find (fun (l, _, _) -> l = label) rows in
    m
  in
  let hybrid_wins =
    List.for_all
      (fun rows ->
        mean_of "push-pull" rows
        <= Float.min (mean_of "push" rows) (mean_of "pull" rows) +. 1.0)
      faceoff
  in
  emit
    (A.verdict
       ~pass:(none_censored && hybrid_wins)
       (Printf.sprintf
          "all four protocols covered every trial%s; push-pull within one \
           round of min(push, pull) on both graphs%s"
          (if none_censored then "" else " FAILED: some trials censored")
          (if hybrid_wins then "" else " FAILED: hybrid slower")))

let spec =
  {
    Spec.id = "E16";
    slug = "broadcast-faceoff";
    title = "Broadcast model face-off: push vs pull vs push-pull vs COBRA";
    claim =
      "Related-work positioning: on bounded-degree expanders all four \
       broadcast models cover in O(log n) rounds; the push-pull hybrid \
       dominates either half alone, and COBRA k=2 keeps pace while \
       bounding per-vertex transmissions.";
    run;
  }
