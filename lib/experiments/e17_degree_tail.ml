module Scale = Simkit.Scale
module A = Simkit.Artifact
module B = Cobra.Branching

(* COBRA off the expander regime: the PODC'16 analysis is for regular
   expanders, and Mitzenmacher–Rajaraman–Roche extend it to non-regular
   graphs. Here the degree tail fattens in three steps at fixed n —
   random 4-regular (the baseline every other experiment uses), then
   preferential attachment with half the picks uniform (mild tail), then
   pure preferential attachment (heavy hubs) — and each graph pays its
   measured cover-time blowup relative to the regular baseline, next to
   the dual BIPS saturation time on the same topology. *)

let ba_view ~master ~tag ~n ~prob_unbiased =
  Graph.View.of_csr
    (Graph.Gen.barabasi_albert
       (Common.graph_rng ~master ~tag)
       ~n ~m:2 ~prob_unbiased)

let run ~emit ~scale ~master =
  let n = Scale.pick scale ~quick:256 ~standard:1024 ~full:4096 in
  let trials = Scale.pick scale ~quick:10 ~standard:25 ~full:60 in
  emit (A.context [ ("n", string_of_int n); ("trials", string_of_int trials) ]);
  let graphs =
    [
      ("random 4-regular", Common.expander ~master ~tag:"e17" ~n ~r:4 ());
      ("BA m=2 p=0.5", ba_view ~master ~tag:"e17:ba-mild" ~n ~prob_unbiased:0.5);
      ("BA m=2 p=0", ba_view ~master ~tag:"e17:ba-hubs" ~n ~prob_unbiased:0.0);
    ]
  in
  let log2n = Common.ln n /. Float.log 2.0 in
  let table =
    A.Tab.create
      [
        "graph"; "max deg"; "cover rounds"; "cover / log2 n"; "blowup vs rr4";
        "bips rounds"; "bips / cover";
      ]
  in
  let baseline = ref None in
  let rows =
    List.map
      (fun (name, g) ->
        let cover, cover_censored =
          Common.cover_summary g ~branching:B.cobra_k2 ~start:0 ~trials ~master
            ~tag:(Printf.sprintf "e17:cover:%s" name)
        in
        let bips, bips_censored =
          Common.infection_summary g ~branching:B.cobra_k2 ~source:0 ~trials
            ~master
            ~tag:(Printf.sprintf "e17:bips:%s" name)
        in
        let cm = Stats.Summary.mean cover and bm = Stats.Summary.mean bips in
        if !baseline = None then baseline := Some cm;
        let blowup = cm /. Option.get !baseline in
        A.Tab.add_row table
          [
            A.str name;
            A.int (Graph.View.max_degree g);
            A.summary cover;
            A.floatf "%.2f" (cm /. log2n);
            A.floatf "%.2f" blowup;
            A.summary bips;
            A.floatf "%.2f" (bm /. cm);
          ];
        (name, g, cm, bm, cover_censored + bips_censored))
      graphs
  in
  emit (A.Tab.event table);
  emit
    (A.note
       "blowup vs rr4 is the measured cover-time degradation paid for the \
        fatter degree tail at the same n and k = 2.");
  (* Acceptance: every trial completed on every graph; the attachment
     graphs genuinely have the fat tail they are here to model (max
     degree beyond the regular baseline's 4); and the COBRA/BIPS duality
     keeps both sides of each graph within a factor 4 of each other. *)
  let none_censored = List.for_all (fun (_, _, _, _, c) -> c = 0) rows in
  let tails_fatten =
    List.for_all
      (fun (name, g, _, _, _) ->
        name = "random 4-regular" || Graph.View.max_degree g > 4)
      rows
  in
  let duality_tracks =
    List.for_all
      (fun (_, _, cm, bm, _) ->
        let r = bm /. cm in
        r >= 0.25 && r <= 4.0)
      rows
  in
  emit
    (A.verdict
       ~pass:(none_censored && tails_fatten && duality_tracks)
       (Printf.sprintf
          "every COBRA cover and BIPS saturation completed%s; attachment \
           graphs carry hubs beyond the 4-regular baseline%s; dual process \
           times within 4x of each other on every tail%s"
          (if none_censored then "" else " FAILED: censored trials")
          (if tails_fatten then "" else " FAILED: no fat tail")
          (if duality_tracks then "" else " FAILED: duality broken")))

let spec =
  {
    Spec.id = "E17";
    slug = "degree-tail";
    title = "Cover-time degradation off the expander regime (degree tails)";
    claim =
      "Fattening the degree tail at fixed n — random 4-regular to \
       preferential attachment with hubs — degrades COBRA k=2 cover time \
       by a measured constant-factor blowup, while the dual BIPS \
       saturation time tracks the cover time on every topology \
       (Mitzenmacher–Rajaraman–Roche non-regular extension).";
    run;
  }
