(** E15 — ablation of the paper's with-replacement sampling: the same
    processes with k distinct neighbours per round. The duality survives
    unchanged; the constants improve at small degree. *)

val spec : Spec.t
