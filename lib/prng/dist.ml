let bernoulli rng p = if Rng.bernoulli rng p then 1 else 0

let binomial_exact rng n p =
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng p then incr count
  done;
  !count

let rec normal_pair rng =
  (* Box–Muller, polar (Marsaglia) form: rejection inside the unit disc. *)
  let u = Rng.float_range rng ~lo:(-1.0) ~hi:1.0 in
  let v = Rng.float_range rng ~lo:(-1.0) ~hi:1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then normal_pair rng
  else
    let scale = sqrt (-2.0 *. log s /. s) in
    (u *. scale, v *. scale)

let normal rng ~mu ~sigma =
  let z, _ = normal_pair rng in
  mu +. (sigma *. z)

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n < 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Dist.binomial: p outside [0,1]";
  if p = 0.0 then 0
  else if p = 1.0 then n
  else if n <= 256 then binomial_exact rng n p
  else begin
    let mean = Float.of_int n *. p in
    let sd = sqrt (mean *. (1.0 -. p)) in
    if mean < 32.0 || Float.of_int n -. mean < 32.0 then binomial_exact rng n p
    else
      let z = normal rng ~mu:mean ~sigma:sd in
      let k = Float.to_int (Float.round z) in
      if k < 0 then 0 else if k > n then n else k
  end

let geometric rng p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p outside (0,1]";
  if p = 1.0 then 0
  else
    (* Inversion: floor(log U / log (1 - p)) failures before first success. *)
    let u = 1.0 -. Rng.float rng (* in (0, 1] *) in
    Float.to_int (Float.floor (log u /. log (1.0 -. p)))

let rec poisson rng lambda =
  if lambda < 0.0 then invalid_arg "Dist.poisson: negative lambda";
  if lambda = 0.0 then 0
  else if lambda > 30.0 then
    (* Poisson(a + b) = Poisson(a) + Poisson(b): halve until Knuth's
       product method is numerically safe. *)
    poisson rng (lambda /. 2.0) + poisson rng (lambda /. 2.0)
  else begin
    let threshold = exp (-.lambda) in
    let rec go k prod =
      let prod = prod *. Rng.float rng in
      if prod <= threshold then k else go (k + 1) prod
    in
    go 0 1.0
  end

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  -.log (1.0 -. Rng.float rng) /. rate

let categorical rng weights =
  let total = Array.fold_left (fun acc w ->
      if w < 0.0 then invalid_arg "Dist.categorical: negative weight";
      acc +. w)
      0.0 weights
  in
  if total <= 0.0 then invalid_arg "Dist.categorical: weights sum to zero";
  let x = Rng.float rng *. total in
  let rec go i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0
