(** Sampling from finite populations: shuffles, subsets, weighted draws.

    Uniformity of {!shuffle}, {!with_replacement}, {!without_replacement}
    and {!Alias} is verified statistically against the exact laws in
    [test/conformance]. *)

(** [shuffle rng a] permutes [a] uniformly in place (Fisher–Yates). *)
val shuffle : Rng.t -> 'a array -> unit

(** [with_replacement rng ~k ~n] draws [k] independent uniform indices from
    [0, n). Requires [k >= 0], [n > 0]. *)
val with_replacement : Rng.t -> k:int -> n:int -> int array

(** [without_replacement rng ~k ~n] draws a uniform [k]-subset of [0, n),
    in arbitrary order, by Floyd's algorithm: O(k) expected time and space.
    Requires [0 <= k <= n]. *)
val without_replacement : Rng.t -> k:int -> n:int -> int array

(** [choose rng a] picks a uniform element of the non-empty array [a]. *)
val choose : Rng.t -> 'a array -> 'a

(** [reservoir rng ~k seq] draws a uniform [k]-subset of an arbitrary-length
    sequence in one pass (Algorithm R). Returns fewer than [k] elements iff
    the sequence is shorter than [k]. *)
val reservoir : Rng.t -> k:int -> 'a Seq.t -> 'a array

(** Walker's alias method: O(m) preprocessing, O(1) weighted draws. *)
module Alias : sig
  type t

  (** [create weights] builds a table for the distribution proportional to
      [weights] (non-negative, positive sum). *)
  val create : float array -> t

  (** [draw table rng] draws an index with the table's probabilities. *)
  val draw : t -> Rng.t -> int

  (** [size table] is the number of categories. *)
  val size : t -> int
end
