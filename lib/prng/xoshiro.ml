type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* Reference SplitMix64 over Int64, used for seeding. *)
let sm64_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = sm64_next st in
  let s1 = sm64_next st in
  let s2 = sm64_next st in
  let s3 = sm64_next st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let next t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let jump_table =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.logand word (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3

let bits62 t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Xoshiro.int: bound must be positive";
  let rem = ((max_int mod bound) + 1) mod bound in
  let limit = max_int - rem in
  let rec draw () =
    let x = bits62 t in
    if x <= limit then x mod bound else draw ()
  in
  draw ()

let float t =
  Float.of_int (Int64.to_int (Int64.shift_right_logical (next t) 11))
  /. 9007199254740992.0

let bool t = Int64.logand (next t) 1L = 1L
