let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let with_replacement rng ~k ~n =
  if k < 0 then invalid_arg "Sample.with_replacement: k < 0";
  if n <= 0 then invalid_arg "Sample.with_replacement: n <= 0";
  Array.init k (fun _ -> Rng.int rng n)

let without_replacement rng ~k ~n =
  if k < 0 || k > n then invalid_arg "Sample.without_replacement: need 0 <= k <= n";
  (* Floyd's algorithm: for j = n-k .. n-1, insert a uniform element of
     [0, j]; on collision insert j itself. Each k-subset is equally likely. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let idx = ref 0 in
  for j = n - k to n - 1 do
    let x = Rng.int rng (j + 1) in
    let pick = if Hashtbl.mem seen x then j else x in
    Hashtbl.replace seen pick ();
    out.(!idx) <- pick;
    incr idx
  done;
  out

let choose rng a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Sample.choose: empty array";
  a.(Rng.int rng n)

let reservoir rng ~k seq =
  if k < 0 then invalid_arg "Sample.reservoir: k < 0";
  let buf = ref [||] in
  let count = ref 0 in
  Seq.iter
    (fun x ->
      if !count < k then begin
        if Array.length !buf = 0 && k > 0 then buf := Array.make k x;
        !buf.(!count) <- x
      end
      else begin
        let j = Rng.int rng (!count + 1) in
        if j < k then !buf.(j) <- x
      end;
      incr count)
    seq;
  if !count >= k then !buf else Array.sub !buf 0 !count

module Alias = struct
  type t = { prob : float array; alias : int array }

  let size t = Array.length t.prob

  let create weights =
    let m = Array.length weights in
    if m = 0 then invalid_arg "Alias.create: empty weights";
    let total =
      Array.fold_left
        (fun acc w ->
          if w < 0.0 then invalid_arg "Alias.create: negative weight";
          acc +. w)
        0.0 weights
    in
    if total <= 0.0 then invalid_arg "Alias.create: weights sum to zero";
    let scaled = Array.map (fun w -> w *. Float.of_int m /. total) weights in
    let prob = Array.make m 1.0 in
    let alias = Array.init m (fun i -> i) in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri
      (fun i p -> if p < 1.0 then Queue.add i small else Queue.add i large)
      scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      if scaled.(l) < 1.0 then Queue.add l small else Queue.add l large
    done;
    (* Entries still queued have probability 1 (up to rounding). *)
    { prob; alias }

  let draw t rng =
    let i = Rng.int rng (Array.length t.prob) in
    if Rng.float rng < t.prob.(i) then i else t.alias.(i)
end
