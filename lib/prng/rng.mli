(** The repository's random-stream abstraction.

    A [Rng.t] is a deterministic, splittable stream of randomness. Every
    stochastic function in the code base takes one explicitly — there is no
    hidden global state — so that any experiment is reproducible from its
    master seed. Trials obtain independent sub-streams with {!split}. *)

type t

(** [create seed] makes a stream from an integer seed. *)
val create : int -> t

(** [split t] derives an independent child stream, advancing [t]. *)
val split : t -> t

(** [copy t] duplicates the stream state. *)
val copy : t -> t

(** [int t bound] draws uniformly from [0, bound); [bound > 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] draws uniformly from [lo, hi] inclusive;
    requires [lo <= hi]. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t] draws uniformly from [0, 1). *)
val float : t -> float

(** [float_range t ~lo ~hi] draws uniformly from [lo, hi). *)
val float_range : t -> lo:float -> hi:float -> float

(** [bool t] draws a fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to [0, 1]). *)
val bernoulli : t -> float -> bool

(** [bits t] draws a uniform 62-bit non-negative integer. *)
val bits : t -> int
