(** Batched per-lane randomness for the bit-sliced Monte-Carlo engine.

    A [Lanes.t] carries 64 independent {!Splitmix} streams — one per
    replica lane, seeded by the caller with the {e same} derived seeds
    the scalar engine would give trials [0 .. 63] — and serves their
    output as 32-lane {e plane} words: bit [j] of a plane is one fresh
    fair bit of lane [j]'s own stream. Lanes 0..31 form the "lo" block,
    lanes 32..63 the "hi" block, matching {!Dstruct.Lanemat}'s row-cell
    split.

    Internally each block refills by drawing one 32-bit word per lane
    and transposing the 32x32 bit matrix in place, so a plane amortises
    to one Splitmix draw plus a few shifts. Stream identity with the
    scalar engine holds at the generator level (lane [j] consumes
    exactly trial [j]'s stream, in a fixed bit order); it does {e not}
    hold draw-for-draw, because the scalar engine interprets the same
    stream through floats and 62-bit rejection while the sliced
    primitives below consume raw bit planes (and may share rejection
    rounds across lanes, or skip draws no lane can observe). Results
    are distributionally equal per lane and exactly deterministic in
    the seed array.

    Mask-producing operations leave their result in the [lo]/[hi]
    accessors rather than allocating, for the steppers' inner loops. *)

type t

(** [create seeds] builds the 64 lane streams; [seeds] must have length
    exactly 64, [seeds.(j)] being lane [j]'s raw stream seed (the
    scalar engine's derived trial seed). *)
val create : int array -> t

(** [word t] draws one fresh plane: after the call, bit [j] of
    [lo t] (lanes 0..31) / [hi t] (lanes 32..63) is an independent fair
    bit of that lane's stream. *)
val word : t -> unit

(** [lo t] / [hi t] read the two 32-lane result cells of the last
    mask-producing call ([word], [bernoulli]). *)
val lo : t -> int

val hi : t -> int

(** [bernoulli t p] draws one Bernoulli([p]) indicator per lane into
    [lo]/[hi], by exact bitwise comparison of a fresh uniform against
    [p]'s binary expansion (floats are dyadic, so no rounding is
    involved; [p <= 0] and [p >= 1] consume no randomness). Expected
    cost ~2 planes independent of [p]. *)
val bernoulli : t -> float -> unit

(** [bits_for bound] is the smallest [b] with [2^b >= bound] — the
    number of planes {!uniform_planes} fills for that bound. *)
val bits_for : int -> int

(** [uniform_planes t ~bound ~nbits ~lo ~hi] draws one uniform index in
    [\[0, bound)] per lane, bit-plane encoded: after the call,
    [lo.(b)] (resp. [hi.(b)]) for [b = 0 .. nbits - 1] holds bit [b] of
    the lo-block (hi-block) lanes' indices, LSB first. [nbits] must be
    [bits_for bound] and the arrays at least that long. Non-power-of-two
    bounds use sliced rejection: fresh planes are spliced only into
    still-rejected lanes, so every lane's index is exactly uniform. *)
val uniform_planes :
  t -> bound:int -> nbits:int -> lo:int array -> hi:int array -> unit
