(* OCaml ints are 63-bit with silent wraparound, so all arithmetic below is
   mod 2^63. Constants are the SplitMix64 ones truncated to 63 bits; the
   finalizer remains a bijection on 63 bits because xor-shift-multiply by an
   odd constant is invertible at any word size. *)

type t = { mutable seed : int; gamma : int }

let golden = 0x1E3779B97F4A7C15 (* 2^63 golden-ratio increment, 63-bit *)
let mult_a = 0x3F58476D1CE4E5B9
let mult_b = 0x14D049BB133111EB

let mix z =
  let z = (z lxor (z lsr 30)) * mult_a in
  let z = (z lxor (z lsr 27)) * mult_b in
  z lxor (z lsr 31)

(* Second mixer (murmur3-style constants) used only to derive gammas, so
   that split streams do not share the output mixer's orbit structure. *)
let mix_gamma z =
  let z = (z lxor (z lsr 33)) * 0x7F51AFD7ED558CCD in
  let z = (z lxor (z lsr 33)) * 0x64DD9FE6AD7D6255 in
  (z lxor (z lsr 33)) lor 1

let create seed = { seed = mix (seed + golden); gamma = golden }

let copy t = { seed = t.seed; gamma = t.gamma }

let next_raw t =
  t.seed <- t.seed + t.gamma;
  t.seed

let next t = mix (next_raw t)

let split t =
  let seed = mix (next_raw t) in
  let gamma = mix_gamma (next_raw t) in
  { seed; gamma }

let bits62 t = next t land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* Rejection below the largest multiple of [bound] that fits in 62
       bits, to avoid modulo bias. *)
    let rem = ((max_int mod bound) + 1) mod bound in
    let limit = max_int - rem in
    let rec draw () =
      let x = bits62 t in
      if x <= limit then x mod bound else draw ()
    in
    draw ()
  end

let two_pow_53 = 9007199254740992.0

let float t = Float.of_int (bits62 t lsr 9) /. two_pow_53

let bool t = next t land 1 = 1
