type t = Splitmix.t

let create = Splitmix.create
let split = Splitmix.split
let copy = Splitmix.copy
let int = Splitmix.int
let float = Splitmix.float
let bool = Splitmix.bool
let bits = Splitmix.bits62

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + Splitmix.int t (hi - lo + 1)

let float_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.float_range: lo > hi";
  lo +. (Splitmix.float t *. (hi -. lo))

let bernoulli t p = if p <= 0.0 then false else if p >= 1.0 then true else Splitmix.float t < p
