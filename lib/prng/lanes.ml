(* Batched per-lane randomness for the bit-sliced engine: 64 independent
   Splitmix streams, one per replica lane, consumed 32 output bits at a
   time through an in-place 32x32 bit transpose.

   Lane j's randomness is drawn from {e exactly} the stream the scalar
   engine would create for trial j (same generator family, same seed):
   per refill, each of a block's 32 lanes contributes the low 32 bits of
   one [Splitmix.next] draw; the transpose turns those 32 rows into 32
   {e plane} words whose bit j is a fresh fair bit of lane j's stream.
   Plane p of refill r carries bit (31 - p) of draw r (MSB first), so
   the bits each lane consumes are a fixed enumeration of its own
   stream — stream identity
   with the scalar engine holds at the generator level, while the cost
   of one 32-lane random word amortises to a single Splitmix draw plus a
   few transpose operations.

   Where exact equality with the scalar engine is NOT guaranteed: the
   scalar engine interprets its draws differently (53-bit floats for
   Bernoulli, 62-bit rejection for bounded ints), and sliced steppers
   may consume a different number of bits (shared rejection rounds,
   skipped draws when no lane can be affected). Equality is therefore
   distributional per lane, not draw-for-draw; determinism in the seed
   array is exact. *)

type t = {
  states : Splitmix.t array; (* 64 per-lane streams; 0..31 lo, 32..63 hi *)
  planes : int array; (* 64 buffered plane words: lo block 0..31, hi 32..63 *)
  mutable pos : int; (* planes consumed from the current refill, 0..32 *)
  mutable lo : int; (* result cells of the last mask-producing call *)
  mutable hi : int;
}

let block = 32
let full = 0xFFFFFFFF

(* In-place 32x32 bit-matrix transpose (Hacker's Delight 7-3) over
   [a.(off) .. a.(off + 31)], each element a 32-bit row. *)
let transpose32 a off =
  let j = ref 16 and m = ref 0x0000FFFF in
  while !j <> 0 do
    let k = ref 0 in
    while !k < block do
      let i = off + !k in
      let t = (a.(i) lxor (a.(i + !j) lsr !j)) land !m in
      a.(i) <- a.(i) lxor t;
      a.(i + !j) <- a.(i + !j) lxor (t lsl !j);
      k := (!k + !j + 1) land lnot !j
    done;
    j := !j lsr 1;
    m := !m lxor (!m lsl !j)
  done

let create seeds =
  if Array.length seeds <> 2 * block then
    invalid_arg "Lanes.create: exactly 64 per-lane seeds required";
  {
    states = Array.map Splitmix.create seeds;
    planes = Array.make (2 * block) 0;
    pos = block; (* force a refill on first use *)
    lo = 0;
    hi = 0;
  }

(* The HD transpose numbers matrix columns from the most significant
   bit, so with lane [j]'s draw stored in row [block - 1 - j], plane [p]
   comes out with lane [j] at bit [j], serving bit [block - 1 - p] of
   each draw: lanes in natural order, each draw's bits consumed MSB
   first. *)
let refill t =
  for j = 0 to block - 1 do
    t.planes.(block - 1 - j) <- Splitmix.next t.states.(j) land full
  done;
  transpose32 t.planes 0;
  for j = 0 to block - 1 do
    t.planes.((2 * block) - 1 - j) <- Splitmix.next t.states.(block + j) land full
  done;
  transpose32 t.planes block;
  t.pos <- 0

(* One fresh plane: a fair random bit in every lane, in [lo]/[hi]. *)
let word t =
  if t.pos = block then refill t;
  t.lo <- t.planes.(t.pos);
  t.hi <- t.planes.(block + t.pos);
  t.pos <- t.pos + 1

let lo t = t.lo
let hi t = t.hi

(* Bernoulli(p) mask by bitwise comparison X < p over p's binary
   expansion, MSB first: at the first differing position, X < p iff the
   X-bit is 0 and the p-bit is 1. Floats are dyadic, so the comparison
   is exact; each plane halves the undecided lanes in expectation, so
   the expected cost is ~2 planes regardless of p. *)
let bernoulli t p =
  if p <= 0.0 then begin
    t.lo <- 0;
    t.hi <- 0
  end
  else if p >= 1.0 then begin
    t.lo <- full;
    t.hi <- full
  end
  else begin
    let res_lo = ref 0 and res_hi = ref 0 in
    let und_lo = ref full and und_hi = ref full in
    let q = ref p in
    while !und_lo lor !und_hi <> 0 && !q > 0.0 do
      q := !q *. 2.0;
      let bit = !q >= 1.0 in
      if bit then q := !q -. 1.0;
      word t;
      if bit then begin
        res_lo := !res_lo lor (!und_lo land lnot t.lo);
        res_hi := !res_hi lor (!und_hi land lnot t.hi);
        und_lo := !und_lo land t.lo;
        und_hi := !und_hi land t.hi
      end
      else begin
        und_lo := !und_lo land lnot t.lo;
        und_hi := !und_hi land lnot t.hi
      end
    done;
    (* p's bits exhausted: the still-undecided lanes have X >= p. *)
    t.lo <- !res_lo land full;
    t.hi <- !res_hi land full
  end

let bits_for bound =
  let rec go b = if 1 lsl b >= bound then b else go (b + 1) in
  go 0

(* Mask of lanes whose [nbits]-plane index is >= bound, i.e. > bound-1:
   scanning from the most significant plane, a lane exceeds the constant
   at the first position where its bit is 1 and the constant's is 0. *)
let ge_bound ~planes ~nbits ~bound =
  let c = bound - 1 in
  let gt = ref 0 and eq = ref full in
  for b = nbits - 1 downto 0 do
    let x = planes.(b) in
    if (c lsr b) land 1 = 1 then eq := !eq land x
    else begin
      gt := !gt lor (!eq land x);
      eq := !eq land lnot x
    end
  done;
  !gt

let uniform_planes t ~bound ~nbits ~lo:lp ~hi:hp =
  if bound < 1 then invalid_arg "Lanes.uniform_planes: bound must be positive";
  for b = 0 to nbits - 1 do
    word t;
    lp.(b) <- t.lo;
    hp.(b) <- t.hi
  done;
  if bound land (bound - 1) <> 0 then begin
    (* Sliced rejection for non-power-of-two bounds: redraw only into
       the rejected lanes (fresh planes are spliced in under the
       rejection mask), so accepted lanes keep their index. Both blocks
       share the redraw rounds; a block with no rejections simply
       discards its fresh bits — distributionally harmless. *)
    let rej_lo = ref (ge_bound ~planes:lp ~nbits ~bound) in
    let rej_hi = ref (ge_bound ~planes:hp ~nbits ~bound) in
    while !rej_lo lor !rej_hi <> 0 do
      for b = 0 to nbits - 1 do
        word t;
        lp.(b) <- (lp.(b) land lnot !rej_lo) lor (t.lo land !rej_lo);
        hp.(b) <- (hp.(b) land lnot !rej_hi) lor (t.hi land !rej_hi)
      done;
      rej_lo := ge_bound ~planes:lp ~nbits ~bound;
      rej_hi := ge_bound ~planes:hp ~nbits ~bound
    done
  end
