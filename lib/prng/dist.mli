(** Samplers for the standard distributions used by the simulators and the
    workload generators.

    Every sampler consumes randomness from an explicit {!Rng.t}. Each is
    cross-validated against its closed-form pmf/CDF (chi-square or
    Kolmogorov-Smirnov via [Stats.Gof]) in [test/conformance]. *)

(** [bernoulli rng p] is 1 with probability [p], else 0. *)
val bernoulli : Rng.t -> float -> int

(** [binomial rng ~n ~p] draws Binomial(n, p). Exact (sum of Bernoulli
    draws) for [n <= 256] or when [n*p] is small; otherwise a
    normal-approximation draw clamped to [0, n], adequate for the workload
    generation it serves. Requires [n >= 0] and [0 <= p <= 1]. *)
val binomial : Rng.t -> n:int -> p:float -> int

(** [geometric rng p] draws the number of failures before the first success
    of a Bernoulli(p) sequence (support {0, 1, ...}). Requires
    [0 < p <= 1]. *)
val geometric : Rng.t -> float -> int

(** [poisson rng lambda] draws Poisson(lambda), [lambda >= 0]. Exact:
    Knuth's product method, with recursive halving for large [lambda] using
    Poisson additivity. *)
val poisson : Rng.t -> float -> int

(** [exponential rng ~rate] draws Exp(rate), [rate > 0]. *)
val exponential : Rng.t -> rate:float -> float

(** [normal rng ~mu ~sigma] draws N(mu, sigma^2) by Box–Muller. *)
val normal : Rng.t -> mu:float -> sigma:float -> float

(** [categorical rng weights] draws an index with probability proportional
    to [weights.(i)]; weights must be non-negative with positive sum. Linear
    scan — build an {!Sample.Alias} table for repeated draws. *)
val categorical : Rng.t -> float array -> int
