(** SplitMix-style pseudo-random generator on native 63-bit integers.

    The state advances by a fixed odd increment (the "gamma") modulo 2^63 and
    outputs are produced by a bijective avalanche mixer, following the design
    of Steele, Lea & Flood's SplitMix64 adapted to OCaml's 63-bit native
    ints. The generator is {e splittable}: [split] deterministically derives
    a stream that is statistically independent of its parent, which gives
    every simulation trial its own reproducible randomness.

    This is the workhorse generator of the repository: allocation-free and a
    few ns per draw. {!Xoshiro} provides an independent 64-bit generator used
    to cross-check statistical behaviour in tests. *)

type t

(** [create seed] initialises a generator from an arbitrary integer seed. *)
val create : int -> t

(** [copy t] duplicates the state; the copy evolves independently. *)
val copy : t -> t

(** [split t] advances [t] and returns a fresh generator whose output stream
    is independent of the parent's subsequent outputs. *)
val split : t -> t

(** [next t] draws a full 63-bit pattern (may be negative when read as an
    OCaml [int]). *)
val next : t -> int

(** [bits62 t] draws a uniform integer in [0, 2^62). *)
val bits62 : t -> int

(** [int t bound] draws a uniform integer in [0, bound); [bound] must be
    positive. Unbiased via rejection sampling. *)
val int : t -> int -> int

(** [float t] draws a uniform float in [0, 1) with 53 random bits. *)
val float : t -> float

(** [bool t] draws a fair coin. *)
val bool : t -> bool
