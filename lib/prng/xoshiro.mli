(** Xoshiro256** (Blackman & Vigna), a 64-bit generator with period
    2^256 - 1, implemented over [Int64].

    Slower than {!Splitmix} (boxed 64-bit arithmetic) but bit-for-bit
    faithful to the reference implementation; the test-suite uses it as an
    independent source to cross-check {!Splitmix}'s statistical behaviour,
    and it is available to callers who want the stronger generator. *)

type t

(** [create seed] seeds the four state words from a SplitMix64 stream, as
    the reference implementation recommends. *)
val create : int -> t

(** [copy t] duplicates the state. *)
val copy : t -> t

(** [next t] draws the next raw 64-bit word. *)
val next : t -> int64

(** [jump t] advances [t] by 2^128 steps in place, yielding a block usable
    as an independent stream. *)
val jump : t -> unit

(** [int t bound] draws a uniform integer in [0, bound), [bound > 0]. *)
val int : t -> int -> int

(** [float t] draws a uniform float in [0, 1). *)
val float : t -> float

(** [bool t] draws a fair coin. *)
val bool : t -> bool
