(** Checkpointed sweep campaigns: run an addressed grid of cells with
    one durable JSON record per completed cell, so a killed campaign
    resumes by replaying only the missing cells.

    A {e cell} is the unit of work and of checkpointing: it has a stable
    [index] (its position in the expanded grid), a canonical [address]
    string, and a [run] function that must be a deterministic function
    of [(master, salt)]. The engine derives each cell's salt from its
    address alone ({!Cellid.salt}, never from execution order), so
    results are independent of scheduling, domain count, and of how many
    times the campaign was interrupted. Consequently the final
    [manifest.json] and every cell record of an interrupted-then-resumed
    campaign are {e byte-identical} to an uninterrupted run — the
    property [test/simkit] and [test/sweep] pin.

    The subsystem is three separable layers, reusable outside the batch
    [run] driver (the campaign daemon in [lib/serve] drives them
    directly):

    - {e identity} — {!Cellid}: canonical address + meta digest;
    - {e storage} — {!Cellstore}: the shared content-addressed result
      cache, plus this module's per-campaign checkpoint records;
    - {e execution} — {!plan} (classify checkpoints, initialise the
      grid), {!execute_cell} (run or cache-fetch one cell and write its
      record), {!finalize} (write the manifest once complete). {!run}
      is the batch composition of the three over the domain pool.

    On-disk layout under [config.dir]:
    - [grid.json] — the campaign identity (schema {!grid_schema}): name,
      master seed and the full cell list, each with its address {e and}
      its [meta] (which for sweep grids carries trial counts and base
      parameters). A resume refuses to run if any of it does not match,
      so changing e.g. [trials] cannot silently reuse stale checkpoints.
    - [cells/cell_NNNNN.json] — one checkpoint record per completed cell
      (schema {!cell_schema}) holding the cell's payload plus a content
      digest. Written atomically (temp file + rename), so a kill leaves
      either a complete record or none. Corrupt records — truncation,
      parse failure, digest mismatch — are detected on resume, reported
      through [config.progress], and re-run; they are never silently
      trusted or skipped.
    - [events.jsonl] — append-only observability stream (via
      {!Eventlog}: one atomic write per line, so concurrent tails never
      see a torn line): one {!event} per line. This is the only file
      containing wall-clock data; it is {e excluded} from the
      byte-identity guarantee.
    - [manifest.json] — written once every cell has a valid record
      (schema {!manifest_schema}): the cells in index order with their
      file names and digests. Deterministic and byte-stable.

    When [config.cache] is set, every executed cell first consults the
    content-addressed store under the key [(master, address, meta
    digest)]; a hit skips [cell.run] entirely (the payload is provably
    byte-identical by the determinism contract above) and a miss
    populates the store after running. The cache can be shared between
    campaigns, users and processes. *)

type cell = {
  index : int;  (** position in the expanded grid; must equal the list position *)
  address : string;  (** canonical, unique within the campaign *)
  meta : (string * Json.t) list;
      (** identity-bearing fields (e.g. trial count, base parameters):
          recorded in [grid.json] and in each cell record, digested into
          the cache key, and compared on resume — a checkpoint with
          different meta is rejected *)
  run : master:int -> salt:int -> Json.t;
      (** compute the payload; must be deterministic in [(master, salt)]
          and safe to call from any domain *)
}

(** Typed progress events. The engine emits these both to
    [config.progress] and (as JSON, via {!event_to_json}) to
    [events.jsonl]; string rendering happens only at the edges
    ({!event_to_string} in the CLI), so the daemon forwards structure
    instead of re-parsing lines. *)
type event =
  | Started of {
      name : string;
      total : int;  (** cells in the grid *)
      pending : int;  (** cells queued to execute this invocation *)
      reused : int;  (** valid checkpoints reused *)
      corrupted : int;  (** invalid checkpoints re-queued *)
    }
  | Cell_done of {
      index : int;
      address : string;
      cached : bool;  (** payload came from the content-addressed store *)
      done_ : int;  (** cells finished so far this invocation *)
      of_ : int;  (** cells being executed this invocation *)
      elapsed_s : float;
      cells_per_s : float;
      eta_s : float;
    }
  | Corrupt_rerun of {
      index : int;
      address : string;
      path : string;
      reason : string;
    }
  | Finished of {
      ran : int;
      cached : int;
      reused : int;
      corrupted : int;
      remaining : int;
      manifest : string option;
    }

(** [event_to_json e] is the [events.jsonl] line shape: an object whose
    ["event"] field is ["started"], ["cell"], ["corrupt"] or
    ["finished"]. *)
val event_to_json : event -> Json.t

(** [event_of_json doc] parses {!event_to_json}'s output back (used by
    the daemon client to render streamed events). *)
val event_of_json : Json.t -> (event, string) result

(** [event_to_string e] is the human one-line rendering the CLI
    prints. *)
val event_to_string : event -> string

type config = {
  dir : string;  (** checkpoint/output directory, created if needed *)
  master : int;  (** master seed, recorded in [grid.json] *)
  resume : bool;  (** allow continuing an initialised directory *)
  max_cells : int option;  (** run at most this many cells this invocation *)
  domains : int option;  (** pool size; [None] uses [Pool.default ()] *)
  cache : Cellstore.t option;
      (** shared content-addressed result cache; [None] always runs *)
  progress : event -> unit;  (** typed progress stream (see {!event}) *)
}

type report = {
  total : int;  (** cells in the grid *)
  ran : int;  (** cells actually executed (cache misses) this invocation *)
  cached : int;  (** cells satisfied from the result cache *)
  reused : int;  (** valid checkpoint records reused *)
  corrupted : int;  (** invalid records detected (and re-queued) *)
  remaining : int;  (** cells still missing after this invocation *)
  manifest : string option;  (** manifest path once the campaign completed *)
}

val grid_schema : string
val cell_schema : string
val manifest_schema : string

(** [cellid cell] is the cell's content-addressed identity,
    [Cellid.make ~address ~meta]. *)
val cellid : cell -> Cellid.t

(** [salt_of_address a] is the trial-salt base of the cell addressed [a]
    — a pure function of the address, shared with resumed runs
    (equal to [Cellid.salt] of any id with that address). *)
val salt_of_address : string -> int

(** A classified campaign: grid initialised (or identity-checked against
    the existing [grid.json]), every existing checkpoint validated. *)
type plan = {
  p_name : string;
  p_config : config;
  p_cells : cell list;  (** the full grid, index order *)
  p_pending : cell list;  (** cells without a valid record, index order *)
  p_reused : int;
  p_corrupt : (cell * string * string) list;
      (** invalid checkpoints: cell, record path, reason — these cells
          are also in [p_pending] *)
}

(** [plan config ~name ~cells] validates the cell list, initialises the
    campaign directory and classifies every cell. Pure of side effects
    beyond directory/grid creation: nothing is executed and no events
    are emitted. *)
val plan : config -> name:string -> cells:cell list -> (plan, string) result

(** [execute_cell plan cell] produces the cell's record: from the result
    cache when [config.cache] hits ([`Cached] — [cell.run] is not
    invoked), else by running the cell and populating the cache
    ([`Ran]). Writes [cells/cell_NNNNN.json] atomically either way.
    Safe to call from any domain; callers own scheduling and event
    emission. *)
val execute_cell : plan -> cell -> [ `Ran | `Cached ]

(** [remaining plan] counts cells still missing a record on disk. *)
val remaining : plan -> int

(** [finalize plan] writes [manifest.json] and returns its path iff no
    cell record is missing; [None] otherwise. *)
val finalize : plan -> string option

(** [run config ~name ~cells] executes the campaign: {!plan}, then the
    pending cells (truncated to [max_cells]) over the domain pool, then
    {!finalize} — emitting {!event}s to [config.progress] and
    [events.jsonl] throughout. Errors (cell list invariants, unreadable
    or mismatching [grid.json], refusing to reuse an initialised
    directory without [resume]) are returned as [Error _] without
    touching existing checkpoints. An exception raised by a cell aborts
    the campaign after the in-flight cells finish; completed records
    remain on disk for a later resume. *)
val run : config -> name:string -> cells:cell list -> (report, string) result
