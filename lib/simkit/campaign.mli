(** Checkpointed sweep campaigns: run an addressed grid of cells with
    one durable JSON record per completed cell, so a killed campaign
    resumes by replaying only the missing cells.

    A {e cell} is the unit of work and of checkpointing: it has a stable
    [index] (its position in the expanded grid), a canonical [address]
    string, and a [run] function that must be a deterministic function
    of [(master, salt)]. The engine derives each cell's salt from its
    address alone ([Seeds.salt_of_tag], never from execution order), so
    results are independent of scheduling, domain count, and of how many
    times the campaign was interrupted. Consequently the final
    [manifest.json] and every cell record of an interrupted-then-resumed
    campaign are {e byte-identical} to an uninterrupted run — the
    property [test/simkit] and [test/sweep] pin.

    On-disk layout under [config.dir]:
    - [grid.json] — the campaign identity (schema {!grid_schema}): name,
      master seed and the full cell list, each with its address {e and}
      its [meta] (which for sweep grids carries trial counts and base
      parameters). A resume refuses to run if any of it does not match,
      so changing e.g. [trials] cannot silently reuse stale checkpoints.
    - [cells/cell_NNNNN.json] — one checkpoint record per completed cell
      (schema {!cell_schema}) holding the cell's payload plus a content
      digest. Written atomically (temp file + rename), so a kill leaves
      either a complete record or none. Corrupt records — truncation,
      parse failure, digest mismatch — are detected on resume, reported
      through [config.progress], and re-run; they are never silently
      trusted or skipped.
    - [events.jsonl] — append-only observability stream: one record per
      completed cell with elapsed time, cells/sec and ETA. This is the
      only file containing wall-clock data; it is {e excluded} from the
      byte-identity guarantee.
    - [manifest.json] — written once every cell has a valid record
      (schema {!manifest_schema}): the cells in index order with their
      file names and digests. Deterministic and byte-stable. *)

type cell = {
  index : int;  (** position in the expanded grid; must equal the list position *)
  address : string;  (** canonical, unique within the campaign *)
  meta : (string * Json.t) list;
      (** identity-bearing fields (e.g. trial count, base parameters):
          recorded in [grid.json] and in each cell record, and compared
          on resume — a checkpoint with different meta is rejected *)
  run : master:int -> salt:int -> Json.t;
      (** compute the payload; must be deterministic in [(master, salt)]
          and safe to call from any domain *)
}

type config = {
  dir : string;  (** checkpoint/output directory, created if needed *)
  master : int;  (** master seed, recorded in [grid.json] *)
  resume : bool;  (** allow continuing an initialised directory *)
  max_cells : int option;  (** run at most this many cells this invocation *)
  domains : int option;  (** pool size; [None] uses [Pool.default ()] *)
  progress : string -> unit;
      (** live progress/diagnostic lines (already serialised by the
          engine; safe to print directly) *)
}

type report = {
  total : int;  (** cells in the grid *)
  ran : int;  (** cells executed by this invocation *)
  reused : int;  (** valid checkpoint records reused *)
  corrupted : int;  (** invalid records detected (and re-queued) *)
  remaining : int;  (** cells still missing after this invocation *)
  manifest : string option;  (** manifest path once the campaign completed *)
}

val grid_schema : string
val cell_schema : string
val manifest_schema : string

(** [salt_of_address a] is the trial-salt base of the cell addressed [a]
    — a pure function of the address, shared with resumed runs. *)
val salt_of_address : string -> int

(** [run config ~name ~cells] executes the campaign. Errors (cell list
    invariants, unreadable or mismatching [grid.json], refusing to reuse
    an initialised directory without [resume]) are returned as
    [Error _] without touching existing checkpoints. An exception raised
    by a cell aborts the campaign after the in-flight cells finish;
    completed records remain on disk for a later resume. *)
val run : config -> name:string -> cells:cell list -> (report, string) result
