type t = Quick | Standard | Full

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quick" -> Ok Quick
  | "standard" -> Ok Standard
  | "full" -> Ok Full
  | other -> Error (Printf.sprintf "unknown scale %S (quick|standard|full)" other)

let to_string = function Quick -> "quick" | Standard -> "standard" | Full -> "full"

let of_env ~default () =
  match Sys.getenv_opt "COBRA_SCALE" with
  | None -> default
  | Some s -> ( match of_string s with Ok t -> t | Error _ -> default)

let pick t ~quick ~standard ~full =
  match t with Quick -> quick | Standard -> standard | Full -> full

let pp ppf t = Format.pp_print_string ppf (to_string t)
