(** Minimal JSON document model, emitter and parser.

    The structured results pipeline ({!Artifact} / {!Sink}) serialises
    experiment artifacts as JSON so that verdicts, tables and fits can be
    machine-read, regression-diffed and gated in CI without external
    dependencies. The parser exists so the test suite (and [make check])
    can validate that every emitted document parses back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string ?pretty v] renders a document. [Float] values use the
    shortest decimal form that round-trips; NaN renders as [null] and the
    infinities as [±1e999] (out-of-range literals that parse back to
    infinities). *)
val to_string : ?pretty:bool -> t -> string

(** [escape_string s] is the quoted, escaped JSON form of [s]. *)
val escape_string : string -> string

(** [float_repr x] is the number token {!to_string} emits for [x]. *)
val float_repr : float -> string

(** [of_string s] parses a complete document; trailing non-whitespace is
    an error. Numbers without [./e/E] parse as [Int] when they fit. *)
val of_string : string -> (t, string) result

(** [of_file path] reads and parses [path]. *)
val of_file : string -> (t, string) result

(** [member key v] looks a field up in an [Obj] ([None] otherwise). *)
val member : string -> t -> t option

(** [to_list v] is the payload of a [List] ([None] otherwise). *)
val to_list : t -> t list option

(** [to_number v] widens [Int]/[Float] to float ([None] otherwise). *)
val to_number : t -> float option

(** [to_string_opt v] is the payload of a [String]. *)
val to_string_opt : t -> string option

(** [to_bool_opt v] is the payload of a [Bool]. *)
val to_bool_opt : t -> bool option
