(** Experiment sizing presets.

    Every experiment can run at three scales: [Quick] (seconds — used by
    [bench/main.exe] and CI), [Standard] (the default for
    [cobra_cli exp]), and [Full] (the EXPERIMENTS.md numbers). The scale
    only changes graph sizes and trial counts, never the experiment's
    logic. *)

type t = Quick | Standard | Full

(** [of_string s] parses ["quick" | "standard" | "full"] (case-insensitive). *)
val of_string : string -> (t, string) result

val to_string : t -> string

(** [of_env ~default ()] reads the [COBRA_SCALE] environment variable,
    falling back to [default] when unset or unparsable. *)
val of_env : default:t -> unit -> t

(** [pick t ~quick ~standard ~full] selects a per-scale value. *)
val pick : t -> quick:'a -> standard:'a -> full:'a -> 'a

val pp : Format.formatter -> t -> unit
