(** Pluggable destinations for {!Artifact} event streams.

    An experiment runner calls [start] with the artifact meta, [event]
    for each emitted event (in order, while the experiment runs — the
    console sink renders live), and [finish] once with the completed
    artifact (the file sinks write here). Sinks are stateless across
    experiments, so one sink instance serves a whole suite run. *)

type t = {
  start : Artifact.meta -> unit;
  event : Artifact.event -> unit;
  finish : Artifact.t -> unit;
}

(** Discards everything (the artifact record is still returned by the
    runner). *)
val null : t

(** Renders to stdout in the classic report format via {!Report}. *)
val console : unit -> t

(** Fans every call out to each sink in order. *)
val tee : t list -> t

(** Writes one self-describing JSON document per experiment,
    [DIR/<id>_<slug>.json], creating [DIR] if needed. *)
val json : dir:string -> t

(** Writes one CSV file per emitted table, [DIR/<id>_<slug>.tN.csv],
    with full-precision numeric fields (a [Summary] cell collapses to its
    mean; the JSON artifact keeps the full record). *)
val csv : dir:string -> t

(** The [schema] field of the run manifest. *)
val manifest_schema_version : string

(** [write_manifest ~dir artifacts] writes [DIR/manifest.json] — run
    seed/scale/domains plus per-experiment file, verdict and timing —
    and returns its path. *)
val write_manifest : dir:string -> Artifact.t list -> string
