(** A reusable fixed-size domain pool for embarrassingly parallel batches.

    The pool owns [domains - 1] worker domains (the caller participates as
    the final lane). A batch [run pool ~n f] evaluates [f i] for every
    [i = 0 .. n - 1] exactly once, distributing contiguous index chunks
    over the lanes with an atomic cursor. Because work is identified by
    index — not by arrival order — callers that write result [i] into slot
    [i] of a pre-allocated array obtain {e bit-for-bit deterministic}
    output regardless of the number of domains or the scheduling of
    chunks. This is the property {!Trial.collect_par} builds on.

    Exceptions raised by [f] do not deadlock the batch: the first one is
    captured, the remaining chunks are drained without running [f], and
    the exception is re-raised in the caller once every lane has
    finished. *)

type t

(** [create ~domains] spawns a pool with [domains] total lanes
    ([domains - 1] worker domains plus the caller). Raises
    [Invalid_argument] unless [domains >= 1]. [domains = 1] spawns no
    workers; [run] then degenerates to an exact sequential loop. *)
val create : domains:int -> t

(** [size pool] is the total number of lanes (including the caller). *)
val size : t -> int

(** [run pool ~n f] evaluates [f i] for [i = 0 .. n - 1], each exactly
    once, across the pool's lanes. Returns when every call has finished.
    Re-raises the first exception raised by any [f i] (after all lanes
    have stopped). [f] must be safe to call from any domain; distinct
    indices must not race on shared mutable state. *)
val run : t -> n:int -> (int -> unit) -> unit

(** [shutdown pool] joins the worker domains. The pool must not be used
    afterwards. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] with a transient pool, always
    shutting it down (even on exceptions). *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** [domains_of_string s] parses a domain count: a positive integer.
    Errors are human-readable (used to reject bad [COBRA_DOMAINS]
    values). *)
val domains_of_string : string -> (int, string) result

(** [default_domains ()] is the domain count selected by the
    [COBRA_DOMAINS] environment variable, defaulting to
    [Domain.recommended_domain_count ()]. Raises [Invalid_argument] with
    a clear message if the variable is set to garbage. *)
val default_domains : unit -> int

(** [default ()] is the lazily-created process-wide pool, sized by
    {!default_domains}. Shared by every [Trial.*_par] call that does not
    pass an explicit domain count. *)
val default : unit -> t
