(** First-class cell identity: canonical address + meta digest.

    A campaign cell is identified by two orthogonal strings:

    - its {e address} — the canonical position in the sweep grid
      (["g=<spec>;k=<kernel>;b=<branching>"] for sweep grids), which
      determines the cell's RNG salt and therefore {e which} streams the
      cell draws from; and
    - its {e meta digest} — the MD5 of the canonical JSON rendering of
      the cell's identity-bearing metadata (trial count, base kernel
      parameters, engine, backend …), which determines {e how} those
      streams are consumed.

    Together they are the cache key of the content-addressed result
    store ({!Cellstore}): two cells with equal [(address, meta digest)]
    under the same master seed are guaranteed — by the campaign engine's
    determinism contract — to produce byte-identical payloads, so a
    cached record is provably equal to a recompute.

    Historically both strings were built ad hoc inside [Campaign] and
    [Sweep.Grid]; this module is the single owner of their construction,
    printing and parsing, with round-trip guarantees pinned by QCheck
    tests in [test/simkit]. *)

type t

(** [meta_digest meta] is the 32-character lowercase hex MD5 of the
    canonical (non-pretty) JSON rendering of [Json.Obj meta]. Field
    order is significant: callers must build meta deterministically. *)
val meta_digest : (string * Json.t) list -> string

(** [make ~address ~meta] builds the identity of a cell. Raises
    [Invalid_argument] if [address] is empty. *)
val make : address:string -> meta:(string * Json.t) list -> t

(** [of_parts ~address ~digest] rebuilds an identity from an already
    computed digest (32 lowercase hex chars; errors otherwise). *)
val of_parts : address:string -> digest:string -> (t, string) result

val address : t -> string

(** [digest id] is the meta digest, 32 lowercase hex characters. *)
val digest : t -> string

(** [salt id] is the cell's trial-salt base: a pure function of the
    address alone (the historical [Campaign.salt_of_address] formula,
    [Seeds.salt_of_tag ("campaign:" ^ address)]), so existing
    checkpoints keep their salts. *)
val salt : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** [to_string id] is ["<digest>:<address>"] — the digest is fixed-width
    hex, so the encoding is unambiguous for every address. *)
val to_string : t -> string

(** [of_string s] parses {!to_string}'s output back; total inverse on
    its image ([of_string (to_string id) = Ok id] for every [id]). *)
val of_string : string -> (t, string) result

(** Canonical grid addresses are [";"]-joined [key=value] parts.
    [address_of_parts [(k1,v1); ...]] renders ["k1=v1;k2=v2;..."].
    Raises [Invalid_argument] when a key is empty or contains ['='],
    [';'] or newline, or a value contains [';'] or newline — the
    reserved separators. *)
val address_of_parts : (string * string) list -> string

(** [parts_of_address a] splits a canonical address back into its parts;
    inverse of {!address_of_parts} on valid part lists. Values keep any
    ['='] they contain (only the first one per part separates). *)
val parts_of_address : string -> ((string * string) list, string) result
