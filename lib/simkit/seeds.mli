(** Seed discipline: every random number in an experiment report is a pure
    function of one master seed, and every trial gets an independent
    stream regardless of evaluation order. *)

(** [master ~default ()] reads the [COBRA_SEED] environment variable
    (integer) or falls back to [default]. *)
val master : default:int -> unit -> int

(** [trial_rng ~master ~salt] derives a stream for trial [salt]; distinct
    salts give statistically independent streams. *)
val trial_rng : master:int -> salt:int -> Prng.Rng.t

(** [trial_seed ~master ~salt] is the raw derived seed behind
    [trial_rng] — [trial_rng ~master ~salt] is exactly
    [Prng.Rng.create (trial_seed ~master ~salt)]. The bit-sliced lane
    engine seeds lane [j] with [trial_seed ~salt:(salt0 + j)] so each
    lane consumes the very stream its scalar trial would. *)
val trial_seed : master:int -> salt:int -> int

(** [tagged_rng ~master ~tag] derives a stream from a string tag (e.g. an
    experiment id), so experiments never share streams even under the same
    master seed. *)
val tagged_rng : master:int -> tag:string -> Prng.Rng.t

(** [salt_of_tag tag] hashes a tag into a trial-salt base for
    [trial_rng ~salt:(salt_of_tag tag + i)]-style batches: bases of
    distinct tags are spaced far apart, so per-trial offsets from
    different series never collide (unlike ad-hoc arithmetic salts). *)
val salt_of_tag : string -> int
