(** Versioned benchmark result files and the regression comparator.

    [bench/main.exe --json] writes a [cobra.bench/1] document: a list of
    named rows, each a nanoseconds-per-run estimate. Rows are grouped
    into sections by the prefix before the first ['/'] in their name
    (["E1/cover-3reg-n1024"] is in section ["E1"]; a name without ['/']
    is its own section). [make bench-compare OLD=a.json NEW=b.json]
    diffs two such files section by section and fails CI when the median
    new/old ratio of any shared section exceeds the regression
    threshold, or when a section disappears. *)

(** One benchmark estimate: [ns] nanoseconds per run. *)
type row = { name : string; ns : float }

type t = { rows : row list }

(** ["cobra.bench/1"]. *)
val schema : string

(** Section key of a row name: the prefix before the first ['/'], or the
    whole name when there is none. *)
val section_of : string -> string

(** Versioned document: [{"schema": "cobra.bench/1", "rows": [{"name":
    ..., "ns": ...}, ...]}]. *)
val to_json : t -> Json.t

(** Accepts the versioned form and, for files written before the schema
    existed, the legacy flat object [{"bench-name": ns, ...}]. Unknown
    schemas and malformed rows are errors. *)
val of_json : Json.t -> (t, string) result

(** [write path t] saves the versioned document, pretty-printed. *)
val write : string -> t -> unit

(** [load path] reads and {!of_json}-decodes a file. *)
val load : string -> (t, string) result

(** Per-section comparison verdict. [ratios] maps each row name shared
    by both files to its new/old time ratio; [median_ratio] is the
    median of those (ratio > 1 means the new file is slower);
    [regressed] is [median_ratio > threshold]. Sections with no shared
    rows are reported in {!compare_result.missing_sections} instead. *)
type section_verdict = {
  section : string;
  ratios : (string * float) list;
  median_ratio : float;
  regressed : bool;
}

type compare_result = {
  sections : section_verdict list; (* shared sections, by name *)
  missing_sections : string list; (* in old, no shared rows in new *)
  threshold : float;
}

(** [compare ~old_ ~new_] diffs two files. [threshold] defaults to
    [1.25]: a section regresses when its median new/old ratio exceeds
    +25%. Rows with non-positive old time are skipped (no meaningful
    ratio). *)
val compare : ?threshold:float -> old_:t -> new_:t -> unit -> compare_result

(** Exit status for a comparison, as used by [bench/compare.exe]:
    [0] no regression; [1] at least one section regressed; [2] at least
    one section of the old file has no shared rows in the new file.
    (Parse and usage failures are exit [3], handled by the driver.)
    Regression takes precedence over missing sections. *)
val exit_code : compare_result -> int
