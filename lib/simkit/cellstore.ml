type t = {
  dir : string;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_puts : int Atomic.t;
  tmp_seq : int Atomic.t;
}

type stats = { hits : int; misses : int; puts : int }

let schema = "cobra.cellstore/1"

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  {
    dir;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_puts = Atomic.make 0;
    tmp_seq = Atomic.make 0;
  }

let dir store = store.dir

let key ~master id =
  Digest.to_hex
    (Digest.string (Printf.sprintf "%d\n%s" master (Cellid.to_string id)))

let path store ~master id =
  let k = key ~master id in
  Filename.concat (Filename.concat store.dir (String.sub k 0 2)) (k ^ ".json")

let payload_digest payload = Digest.to_hex (Digest.string (Json.to_string payload))

let record_doc ~master id payload =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("master", Json.Int master);
      ("address", Json.String (Cellid.address id));
      ("meta_digest", Json.String (Cellid.digest id));
      ("salt", Json.Int (Cellid.salt id));
      ("digest", Json.String (payload_digest payload));
      ("payload", payload);
    ]

(* Every identity field is re-checked on read: an MD5 key collision, a
   tampered record or torn bytes all degrade to a miss (and a recompute)
   rather than a wrong answer. *)
let validate ~master id doc =
  let str k = Option.bind (Json.member k doc) Json.to_string_opt in
  let int k = match Json.member k doc with Some (Json.Int i) -> Some i | _ -> None in
  str "schema" = Some schema
  && int "master" = Some master
  && str "address" = Some (Cellid.address id)
  && str "meta_digest" = Some (Cellid.digest id)
  && int "salt" = Some (Cellid.salt id)
  &&
  match (str "digest", Json.member "payload" doc) with
  | Some d, Some payload -> payload_digest payload = d
  | _ -> false

let find store ~master id =
  let p = path store ~master id in
  let result =
    if not (Sys.file_exists p) then None
    else
      match Json.of_file p with
      | Error _ -> None
      | Ok doc ->
        if validate ~master id doc then Json.member "payload" doc else None
  in
  (match result with
  | Some _ -> Atomic.incr store.n_hits
  | None -> Atomic.incr store.n_misses);
  result

let put store ~master id payload =
  let p = path store ~master id in
  mkdir_p (Filename.dirname p);
  (* Unique temp name per writer: concurrent puts of the same key never
     step on each other's half-written file, and rename is atomic. *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
      (Atomic.fetch_and_add store.tmp_seq 1)
  in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (record_doc ~master id payload));
      output_char oc '\n');
  Sys.rename tmp p;
  Atomic.incr store.n_puts

let stats store =
  {
    hits = Atomic.get store.n_hits;
    misses = Atomic.get store.n_misses;
    puts = Atomic.get store.n_puts;
  }

let entries store =
  let count = ref 0 in
  let shard d =
    let dir = Filename.concat store.dir d in
    if Sys.file_exists dir && Sys.is_directory dir then
      Array.iter
        (fun f -> if Filename.check_suffix f ".json" then incr count)
        (Sys.readdir dir)
  in
  if Sys.file_exists store.dir && Sys.is_directory store.dir then
    Array.iter shard (Sys.readdir store.dir);
  !count
