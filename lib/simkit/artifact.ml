type summary = {
  mean : float;
  ci_lo : float;
  ci_hi : float;
  stddev : float;
  min : float;
  max : float;
  count : int;
}

type cell =
  | Int of int
  | Float of { value : float; display : string option }
  | Str of string
  | Summary of summary

type table = { title : string option; columns : string list; rows : cell list list }

type fit = {
  label : string;
  model : string;
  slope : float;
  intercept : float;
  r2 : float;
}

type verdict = { pass : bool; detail : string }

type event =
  | Context of (string * string) list
  | Section of string
  | Note of string
  | Table of table
  | Fit of fit
  | Metric of { name : string; value : float }
  | Verdict of verdict

type meta = {
  id : string;
  slug : string;
  title : string;
  claim : string;
  scale : string;
  master : int;
  domains : int;
}

type t = { meta : meta; events : event list; elapsed_s : float }

(* ---------- cell constructors ---------- *)

let int i = Int i

let float v = Float { value = v; display = None }

let floatf fmt v = Float { value = v; display = Some (Printf.sprintf fmt v) }

let str s = Str s

let of_summary (s : Stats.Summary.t) =
  let mean = Stats.Summary.mean s in
  let ci_lo, ci_hi =
    if Stats.Summary.count s < 2 then (mean, mean)
    else begin
      let ci = Stats.Ci.mean_ci s in
      (ci.Stats.Ci.lo, ci.Stats.Ci.hi)
    end
  in
  {
    mean;
    ci_lo;
    ci_hi;
    stddev = Stats.Summary.stddev s;
    min = Stats.Summary.min s;
    max = Stats.Summary.max s;
    count = Stats.Summary.count s;
  }

let summary s = Summary (of_summary s)

(* ---------- event constructors ---------- *)

let context pairs = Context pairs

let section text = Section text

let note text = Note text

let notef fmt = Printf.ksprintf (fun s -> Note s) fmt

let fit_of_regress ~label ~model (f : Stats.Regress.fit) =
  Fit { label; model; slope = f.Stats.Regress.slope;
        intercept = f.Stats.Regress.intercept; r2 = f.Stats.Regress.r2 }

let metric ~name value = Metric { name; value }

let verdict ~pass detail = Verdict { pass; detail }

(* ---------- rendering primitives ---------- *)

let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let summary_to_string s =
  if s.count < 2 then float_to_string s.mean
  else begin
    let half = (s.ci_hi -. s.ci_lo) /. 2.0 in
    Printf.sprintf "%s ± %.2g" (float_to_string s.mean) half
  end

let cell_to_string = function
  | Int i -> string_of_int i
  | Float { display = Some s; _ } -> s
  | Float { value; display = None } -> float_to_string value
  | Str s -> s
  | Summary s -> summary_to_string s

(* Raw machine-readable form: full-precision values, mean for summaries. *)
let cell_to_raw_string = function
  | Int i -> string_of_int i
  | Float { value; _ } -> Json.float_repr value
  | Str s -> s
  | Summary s -> Json.float_repr s.mean

(* ---------- table builder ---------- *)

module Tab = struct
  type builder = {
    title : string option;
    columns : string list;
    mutable rev_rows : cell list list;
  }

  let create ?title columns =
    if columns = [] then invalid_arg "Artifact.Tab.create: no columns";
    { title; columns; rev_rows = [] }

  let add_row b cells =
    if List.length cells <> List.length b.columns then
      invalid_arg "Artifact.Tab.add_row: cell count mismatch";
    b.rev_rows <- cells :: b.rev_rows

  let rows b = List.length b.rev_rows

  let event b = Table { title = b.title; columns = b.columns; rows = List.rev b.rev_rows }
end

(* ---------- accessors ---------- *)

let tables t =
  List.filter_map (function Table tb -> Some tb | _ -> None) t.events

let verdicts t =
  List.filter_map (function Verdict v -> Some v | _ -> None) t.events

let passed t = List.for_all (fun v -> v.pass) (verdicts t)

let basename meta = Printf.sprintf "%s_%s" meta.id meta.slug

(* ---------- JSON serialisation ---------- *)

let schema_version = "cobra.experiment/1"

let summary_to_json s =
  Json.Obj
    [
      ("mean", Json.Float s.mean);
      ("ci_lo", Json.Float s.ci_lo);
      ("ci_hi", Json.Float s.ci_hi);
      ("stddev", Json.Float s.stddev);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("n", Json.Int s.count);
    ]

let cell_to_json = function
  | Int i -> Json.Int i
  | Float { value; _ } -> Json.Float value
  | Str s -> Json.String s
  | Summary s -> summary_to_json s

let event_to_json = function
  | Context pairs ->
    Json.Obj
      [
        ("type", Json.String "context");
        ("pairs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) pairs));
      ]
  | Section text -> Json.Obj [ ("type", Json.String "section"); ("text", Json.String text) ]
  | Note text -> Json.Obj [ ("type", Json.String "note"); ("text", Json.String text) ]
  | Table { title; columns; rows } ->
    Json.Obj
      [
        ("type", Json.String "table");
        ("title", match title with Some s -> Json.String s | None -> Json.Null);
        ("columns", Json.List (List.map (fun c -> Json.String c) columns));
        ( "rows",
          Json.List (List.map (fun row -> Json.List (List.map cell_to_json row)) rows)
        );
      ]
  | Fit { label; model; slope; intercept; r2 } ->
    Json.Obj
      [
        ("type", Json.String "fit");
        ("label", Json.String label);
        ("model", Json.String model);
        ("slope", Json.Float slope);
        ("intercept", Json.Float intercept);
        ("r2", Json.Float r2);
      ]
  | Metric { name; value } ->
    Json.Obj
      [
        ("type", Json.String "metric");
        ("name", Json.String name);
        ("value", Json.Float value);
      ]
  | Verdict { pass; detail } ->
    Json.Obj
      [
        ("type", Json.String "verdict");
        ("pass", Json.Bool pass);
        ("detail", Json.String detail);
      ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("id", Json.String t.meta.id);
      ("slug", Json.String t.meta.slug);
      ("title", Json.String t.meta.title);
      ("claim", Json.String t.meta.claim);
      ("scale", Json.String t.meta.scale);
      ("master_seed", Json.Int t.meta.master);
      ("domains", Json.Int t.meta.domains);
      ("elapsed_s", Json.Float t.elapsed_s);
      ("pass", Json.Bool (passed t));
      ("events", Json.List (List.map event_to_json t.events));
    ]
