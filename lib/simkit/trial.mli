(** Trial runners: repeat a stochastic measurement over independent
    streams and summarise. Capped runs ([None] results) are counted as
    censored rather than silently dropped into the statistics.

    Every runner comes in a sequential flavour and a [_par] flavour that
    fans the batch out over a {!Pool} of domains. The two are
    {e bit-for-bit identical}: trial [i] always draws from the stream
    [Seeds.trial_rng ~master ~salt:(salt0 + i)] and lands in slot [i], so
    the domain count (and chunk scheduling) cannot influence any result.
    [COBRA_DOMAINS] selects the default domain count; [COBRA_DOMAINS=1]
    is the exact sequential path. *)

type 'a censored = { values : 'a array; censored : int }

(** [collect ~trials ~master ~salt0 f] evaluates
    [f (trial_rng ~master ~salt:(salt0 + i))] for [i = 0 .. trials - 1]. *)
val collect : trials:int -> master:int -> salt0:int -> (Prng.Rng.t -> 'a) -> 'a array

(** [collect_censored ~trials ~master ~salt0 f] keeps the [Some] results
    and counts the [None]s. *)
val collect_censored :
  trials:int -> master:int -> salt0:int -> (Prng.Rng.t -> 'a option) -> 'a censored

(** [summarize_int ~trials ~master ~salt0 f] summarises an integer-valued
    censored measurement (e.g. a cover time) into a {!Stats.Summary.t};
    raises [Failure] if {e every} trial was censored. *)
val summarize_int :
  trials:int ->
  master:int ->
  salt0:int ->
  (Prng.Rng.t -> int option) ->
  Stats.Summary.t * int

(** [summarize_float] — as {!summarize_int} for float measurements. *)
val summarize_float :
  trials:int ->
  master:int ->
  salt0:int ->
  (Prng.Rng.t -> float option) ->
  Stats.Summary.t * int

(** {1 Parallel runners}

    [?domains] overrides the lane count for this call ([1] forces the
    plain sequential loop); when omitted the shared {!Pool.default} pool
    (sized by [COBRA_DOMAINS]) is used. [f] runs concurrently on several
    domains: it must not touch shared mutable state (the standard trial
    closures — build nothing, simulate on a shared {e immutable} graph,
    return a scalar — are safe as-is). *)

(** [collect_par] is {!collect}, distributed. Returns the identical
    array. *)
val collect_par :
  ?domains:int ->
  trials:int ->
  master:int ->
  salt0:int ->
  (Prng.Rng.t -> 'a) ->
  'a array

(** [collect_censored_par] is {!collect_censored}, distributed. *)
val collect_censored_par :
  ?domains:int ->
  trials:int ->
  master:int ->
  salt0:int ->
  (Prng.Rng.t -> 'a option) ->
  'a censored

(** [summarize_int_par] is {!summarize_int}, distributed. *)
val summarize_int_par :
  ?domains:int ->
  trials:int ->
  master:int ->
  salt0:int ->
  (Prng.Rng.t -> int option) ->
  Stats.Summary.t * int

(** [summarize_float_par] is {!summarize_float}, distributed. *)
val summarize_float_par :
  ?domains:int ->
  trials:int ->
  master:int ->
  salt0:int ->
  (Prng.Rng.t -> float option) ->
  Stats.Summary.t * int
