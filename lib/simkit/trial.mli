(** Trial runners: repeat a stochastic measurement over independent
    streams and summarise. Capped runs ([None] results) are counted as
    censored rather than silently dropped into the statistics. *)

type 'a censored = { values : 'a array; censored : int }

(** [collect ~trials ~master ~salt0 f] evaluates
    [f (trial_rng ~master ~salt:(salt0 + i))] for [i = 0 .. trials - 1]. *)
val collect : trials:int -> master:int -> salt0:int -> (Prng.Rng.t -> 'a) -> 'a array

(** [collect_censored ~trials ~master ~salt0 f] keeps the [Some] results
    and counts the [None]s. *)
val collect_censored :
  trials:int -> master:int -> salt0:int -> (Prng.Rng.t -> 'a option) -> 'a censored

(** [summarize_int ~trials ~master ~salt0 f] summarises an integer-valued
    censored measurement (e.g. a cover time) into a {!Stats.Summary.t};
    raises [Failure] if {e every} trial was censored. *)
val summarize_int :
  trials:int ->
  master:int ->
  salt0:int ->
  (Prng.Rng.t -> int option) ->
  Stats.Summary.t * int

(** [summarize_float] — as {!summarize_int} for float measurements. *)
val summarize_float :
  trials:int ->
  master:int ->
  salt0:int ->
  (Prng.Rng.t -> float option) ->
  Stats.Summary.t * int
