(** Minimal CSV emission (RFC-4180 quoting) so experiment rows can be
    post-processed outside OCaml. *)

(** [escape field] quotes a field when it contains commas, quotes or
    newlines. *)
val escape : string -> string

(** [to_string ~header rows] renders a CSV document. Every row must have
    the header's arity. *)
val to_string : header:string list -> string list list -> string

(** [write_file path ~header rows] writes the document to [path]. *)
val write_file : string -> header:string list -> string list list -> unit
