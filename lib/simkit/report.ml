let banner ~id ~title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s: %s\n%s\n" line id title line

let claim text = Printf.printf "paper claim: %s\n" text

let context pairs =
  List.iter (fun (k, v) -> Printf.printf "  %-18s = %s\n" k v) pairs;
  print_newline ()

let verdict ~pass text =
  Printf.printf "[%s] %s\n" (if pass then "PASS" else "FAIL") text

let float_cell x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let mean_ci_cell s =
  if Stats.Summary.count s < 2 then float_cell (Stats.Summary.mean s)
  else begin
    let ci = Stats.Ci.mean_ci s in
    let half = (ci.Stats.Ci.hi -. ci.Stats.Ci.lo) /. 2.0 in
    Printf.sprintf "%s ± %.2g" (float_cell (Stats.Summary.mean s)) half
  end
