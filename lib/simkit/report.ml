let banner ~id ~title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s: %s\n%s\n" line id title line

let claim text = Printf.printf "paper claim: %s\n" text

let context pairs =
  List.iter (fun (k, v) -> Printf.printf "  %-18s = %s\n" k v) pairs;
  print_newline ()

let verdict ~pass text =
  Printf.printf "[%s] %s\n" (if pass then "PASS" else "FAIL") text

let float_cell = Artifact.float_to_string

let mean_ci_cell s = Artifact.summary_to_string (Artifact.of_summary s)

let render_table (tb : Artifact.table) =
  Option.iter (fun title -> Printf.printf "-- %s --\n" title) tb.Artifact.title;
  let t = Stats.Table.create tb.Artifact.columns in
  List.iter
    (fun row -> Stats.Table.add_row t (List.map Artifact.cell_to_string row))
    tb.Artifact.rows;
  Stats.Table.print t

let render_event = function
  | Artifact.Context pairs -> context pairs
  | Artifact.Section text -> Printf.printf "-- %s --\n" text
  | Artifact.Note text -> print_endline text
  | Artifact.Table tb -> render_table tb
  | Artifact.Fit { label; slope; intercept; r2; _ } ->
    Printf.printf "\nfit %s: slope=%.4g intercept=%.4g R²=%.4f\n" label slope
      intercept r2
  | Artifact.Metric { name; value } ->
    Printf.printf "%s = %s\n" name (Artifact.float_to_string value)
  | Artifact.Verdict { pass; detail } -> verdict ~pass detail

let start (meta : Artifact.meta) =
  banner ~id:meta.Artifact.id ~title:meta.Artifact.title;
  claim meta.Artifact.claim;
  context
    [
      ("scale", meta.Artifact.scale);
      ("master seed", string_of_int meta.Artifact.master);
    ]
