type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emission ---------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr x =
  if Float.is_nan x then "null"
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x
  end

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  let rec emit indent v =
    let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
    let sep () = if pretty then Buffer.add_string buf "\n" in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      sep ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (indent + 1);
          emit (indent + 1) item)
        items;
      sep ();
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      sep ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (indent + 1);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if pretty then ": " else ":");
          emit (indent + 1) item)
        fields;
      sep ();
      pad indent;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let fail_at p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let skip_ws p =
  while
    p.pos < String.length p.src
    && (match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance p
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail_at p (Printf.sprintf "expected %c" c)

let parse_literal p lit value =
  if
    p.pos + String.length lit <= String.length p.src
    && String.sub p.src p.pos (String.length lit) = lit
  then begin
    p.pos <- p.pos + String.length lit;
    value
  end
  else fail_at p (Printf.sprintf "expected %s" lit)

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail_at p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
      | Some '"' -> Buffer.add_char buf '"'; advance p
      | Some '\\' -> Buffer.add_char buf '\\'; advance p
      | Some '/' -> Buffer.add_char buf '/'; advance p
      | Some 'n' -> Buffer.add_char buf '\n'; advance p
      | Some 't' -> Buffer.add_char buf '\t'; advance p
      | Some 'r' -> Buffer.add_char buf '\r'; advance p
      | Some 'b' -> Buffer.add_char buf '\b'; advance p
      | Some 'f' -> Buffer.add_char buf '\012'; advance p
      | Some 'u' ->
        advance p;
        if p.pos + 4 > String.length p.src then fail_at p "truncated \\u escape";
        let hex = String.sub p.src p.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail_at p "bad \\u escape"
        in
        p.pos <- p.pos + 4;
        (* Encode as UTF-8 (surrogate pairs are not recombined; the
           emitter only produces escapes below 0x20, so this is enough
           to round-trip our own documents and accept foreign ones). *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail_at p "bad escape");
      loop ()
    | Some c -> Buffer.add_char buf c; advance p; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c when is_num_char c -> true | _ -> false) do
    advance p
  done;
  let text = String.sub p.src start (p.pos - start) in
  if text = "" then fail_at p "expected a number";
  let is_integral =
    not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text)
  in
  if is_integral then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)
  else
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail_at p "malformed number"

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail_at p "unexpected end of input"
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws p;
        let key = parse_string_body p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        fields := (key, v) :: !fields;
        skip_ws p;
        match peek p with
        | Some ',' -> advance p; members ()
        | Some '}' -> advance p
        | _ -> fail_at p "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value p in
        items := v :: !items;
        skip_ws p;
        match peek p with
        | Some ',' -> advance p; elements ()
        | Some ']' -> advance p
        | _ -> fail_at p "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_body p)
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some 'n' -> parse_literal p "null" Null
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  try
    let v = parse_value p in
    skip_ws p;
    if p.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
    else Ok v
  with Parse_error msg -> Error msg

let of_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_number = function
  | Int i -> Some (Float.of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
