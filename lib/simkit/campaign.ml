type cell = {
  index : int;
  address : string;
  meta : (string * Json.t) list;
  run : master:int -> salt:int -> Json.t;
}

type config = {
  dir : string;
  master : int;
  resume : bool;
  max_cells : int option;
  domains : int option;
  progress : string -> unit;
}

type report = {
  total : int;
  ran : int;
  reused : int;
  corrupted : int;
  remaining : int;
  manifest : string option;
}

let grid_schema = "cobra.campaign-grid/2"
let cell_schema = "cobra.campaign-cell/1"
let manifest_schema = "cobra.campaign/1"

let salt_of_address a = Seeds.salt_of_tag ("campaign:" ^ a)

(* ---------- filesystem helpers ---------- *)

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

(* Temp file + rename: a kill leaves either no record or a complete one,
   never a half-written record masquerading as a checkpoint. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let cell_file_name index = Printf.sprintf "cell_%05d.json" index

let cell_rel_path index = Filename.concat "cells" (cell_file_name index)

(* ---------- record shapes ---------- *)

(* Each cell's [meta] is part of the campaign identity: addresses alone
   encode only the grid axes, so without the meta a resume after changing
   e.g. trial counts or base parameters would silently reuse stale
   checkpoints. *)
let grid_doc ~name ~master cells =
  Json.Obj
    [
      ("schema", Json.String grid_schema);
      ("campaign", Json.String name);
      ("master", Json.Int master);
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("index", Json.Int c.index);
                   ("address", Json.String c.address);
                   ("meta", Json.Obj c.meta);
                 ])
             cells) );
    ]

let payload_digest payload = Digest.to_hex (Digest.string (Json.to_string payload))

let cell_doc ~name ~master cell payload =
  Json.Obj
    [
      ("schema", Json.String cell_schema);
      ("campaign", Json.String name);
      ("master", Json.Int master);
      ("index", Json.Int cell.index);
      ("address", Json.String cell.address);
      ("salt", Json.Int (salt_of_address cell.address));
      ("meta", Json.Obj cell.meta);
      ("digest", Json.String (payload_digest payload));
      ("payload", payload);
    ]

(* ---------- checkpoint validation ---------- *)

(* A record is trusted only if every identity field matches the grid and
   the stored digest matches the payload re-rendered: truncation and
   parse corruption fail [of_file], content corruption fails the digest
   or a field comparison. *)
let validate_cell ~name ~master cell path =
  let field key doc = Json.member key doc in
  let check_string key expected doc =
    match Option.bind (field key doc) Json.to_string_opt with
    | Some s when s = expected -> Ok ()
    | Some s -> Error (Printf.sprintf "%s %S does not match expected %S" key s expected)
    | None -> Error (Printf.sprintf "missing %s" key)
  in
  let check_int key expected doc =
    match field key doc with
    | Some (Json.Int i) when i = expected -> Ok ()
    | Some (Json.Int i) ->
      Error (Printf.sprintf "%s %d does not match expected %d" key i expected)
    | _ -> Error (Printf.sprintf "missing %s" key)
  in
  let ( let* ) = Result.bind in
  match Json.of_file path with
  | Error msg -> Error msg
  | Ok doc ->
    let* () = check_string "schema" cell_schema doc in
    let* () = check_string "campaign" name doc in
    let* () = check_int "master" master doc in
    let* () = check_int "index" cell.index doc in
    let* () = check_string "address" cell.address doc in
    let* () = check_int "salt" (salt_of_address cell.address) doc in
    let* () =
      (* Structural comparison is sound because [Json.to_string]/[of_file]
         round-trip value-preservingly (floats keep their tag). *)
      match field "meta" doc with
      | Some m when m = Json.Obj cell.meta -> Ok ()
      | Some _ -> Error "meta does not match the expected cell meta"
      | None -> Error "missing meta"
    in
    (match (field "digest" doc, field "payload" doc) with
    | Some (Json.String digest), Some payload ->
      if payload_digest payload = digest then Ok ()
      else Error "payload digest mismatch"
    | _ -> Error "missing digest or payload")

(* ---------- the engine ---------- *)

let check_cells cells =
  let seen = Hashtbl.create 64 in
  let rec go i = function
    | [] -> Ok ()
    | c :: rest ->
      if c.index <> i then
        Error (Printf.sprintf "cell %d has index %d: indices must be positional" i c.index)
      else if c.address = "" then Error (Printf.sprintf "cell %d: empty address" i)
      else if Hashtbl.mem seen c.address then
        Error (Printf.sprintf "duplicate cell address %S" c.address)
      else begin
        Hashtbl.add seen c.address ();
        go (i + 1) rest
      end
  in
  go 0 cells

let load_or_init_grid config ~name ~cells =
  let path = Filename.concat config.dir "grid.json" in
  let desired = grid_doc ~name ~master:config.master cells in
  if Sys.file_exists path then
    if not config.resume then
      Error
        (Printf.sprintf
           "campaign directory %s is already initialised; pass --resume to \
            continue it or choose a fresh --out directory"
           config.dir)
    else
      match Json.of_file path with
      | Error msg -> Error (Printf.sprintf "unreadable %s: %s" path msg)
      | Ok existing ->
        if existing = desired then Ok ()
        else
          Error
            (Printf.sprintf
               "%s belongs to a different campaign (name, master seed, cell \
                grid or cell parameters differ); refusing to mix checkpoints"
               path)
  else begin
    write_atomic path (Json.to_string ~pretty:true desired ^ "\n");
    Ok ()
  end

let write_manifest config ~name cells =
  let entries =
    List.map
      (fun c ->
        let rel = cell_rel_path c.index in
        let digest = Digest.to_hex (Digest.file (Filename.concat config.dir rel)) in
        Json.Obj
          [
            ("index", Json.Int c.index);
            ("address", Json.String c.address);
            ("salt", Json.Int (salt_of_address c.address));
            ("file", Json.String rel);
            ("digest", Json.String digest);
          ])
      cells
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String manifest_schema);
        ("campaign", Json.String name);
        ("master", Json.Int config.master);
        ("cells", Json.List entries);
      ]
  in
  let path = Filename.concat config.dir "manifest.json" in
  write_atomic path (Json.to_string ~pretty:true doc ^ "\n");
  path

let run config ~name ~cells =
  match check_cells cells with
  | Error _ as e -> e
  | Ok () -> (
    mkdir_p config.dir;
    mkdir_p (Filename.concat config.dir "cells");
    match load_or_init_grid config ~name ~cells with
    | Error _ as e -> e
    | Ok () ->
      let total = List.length cells in
      (* Classify every cell: a valid checkpoint is reused, anything
         else (missing, or corrupt — which is reported, never silently
         skipped) queues for execution. *)
      let reused = ref 0 and corrupted = ref 0 in
      let pending =
        List.filter
          (fun c ->
            let path = Filename.concat config.dir (cell_rel_path c.index) in
            if not (Sys.file_exists path) then true
            else
              match validate_cell ~name ~master:config.master c path with
              | Ok () ->
                incr reused;
                false
              | Error reason ->
                incr corrupted;
                config.progress
                  (Printf.sprintf "corrupt checkpoint %s: %s — re-running cell %S"
                     path reason c.address);
                true)
          cells
      in
      let to_run =
        match config.max_cells with
        | None -> Array.of_list pending
        | Some m -> Array.of_list (List.filteri (fun i _ -> i < m) pending)
      in
      let n_run = Array.length to_run in
      let mutex = Mutex.create () in
      let events_path = Filename.concat config.dir "events.jsonl" in
      let events =
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 events_path
      in
      let t0 = Unix.gettimeofday () in
      let finished = ref 0 in
      let run_cell i =
        let c = to_run.(i) in
        let salt = salt_of_address c.address in
        let payload = c.run ~master:config.master ~salt in
        let doc = cell_doc ~name ~master:config.master c payload in
        write_atomic
          (Filename.concat config.dir (cell_rel_path c.index))
          (Json.to_string ~pretty:true doc ^ "\n");
        Mutex.lock mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock mutex)
          (fun () ->
            incr finished;
            let done_ = !finished in
            let elapsed = Unix.gettimeofday () -. t0 in
            let rate = if elapsed > 0.0 then float_of_int done_ /. elapsed else 0.0 in
            let eta =
              if rate > 0.0 then float_of_int (n_run - done_) /. rate else 0.0
            in
            config.progress
              (Printf.sprintf "[%d/%d] cell #%d %s (%.1f cells/s, elapsed %.1fs, eta %.1fs)"
                 done_ n_run c.index c.address rate elapsed eta);
            let event =
              Json.Obj
                [
                  ("event", Json.String "cell");
                  ("index", Json.Int c.index);
                  ("address", Json.String c.address);
                  ("done", Json.Int done_);
                  ("of", Json.Int n_run);
                  ("elapsed_s", Json.Float elapsed);
                  ("cells_per_s", Json.Float rate);
                  ("eta_s", Json.Float eta);
                ]
            in
            output_string events (Json.to_string event ^ "\n");
            flush events)
      in
      let outcome =
        Fun.protect
          ~finally:(fun () -> close_out events)
          (fun () ->
            try
              (match config.domains with
              | Some d -> Pool.with_pool ~domains:d (fun pool -> Pool.run pool ~n:n_run run_cell)
              | None -> Pool.run (Pool.default ()) ~n:n_run run_cell);
              Ok ()
            with exn ->
              Error
                (Printf.sprintf "cell execution failed: %s (completed cells are \
                                 checkpointed; re-run with --resume)"
                   (Printexc.to_string exn)))
      in
      match outcome with
      | Error _ as e -> e
      | Ok () ->
        let remaining = List.length pending - n_run in
        let manifest =
          if remaining = 0 then Some (write_manifest config ~name cells) else None
        in
        Ok
          {
            total;
            ran = n_run;
            reused = !reused;
            corrupted = !corrupted;
            remaining;
            manifest;
          })
