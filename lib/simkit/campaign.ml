type cell = {
  index : int;
  address : string;
  meta : (string * Json.t) list;
  run : master:int -> salt:int -> Json.t;
}

type event =
  | Started of {
      name : string;
      total : int;
      pending : int;
      reused : int;
      corrupted : int;
    }
  | Cell_done of {
      index : int;
      address : string;
      cached : bool;
      done_ : int;
      of_ : int;
      elapsed_s : float;
      cells_per_s : float;
      eta_s : float;
    }
  | Corrupt_rerun of {
      index : int;
      address : string;
      path : string;
      reason : string;
    }
  | Finished of {
      ran : int;
      cached : int;
      reused : int;
      corrupted : int;
      remaining : int;
      manifest : string option;
    }

type config = {
  dir : string;
  master : int;
  resume : bool;
  max_cells : int option;
  domains : int option;
  cache : Cellstore.t option;
  progress : event -> unit;
}

type report = {
  total : int;
  ran : int;
  cached : int;
  reused : int;
  corrupted : int;
  remaining : int;
  manifest : string option;
}

let grid_schema = "cobra.campaign-grid/2"
let cell_schema = "cobra.campaign-cell/1"
let manifest_schema = "cobra.campaign/1"

let cellid c = Cellid.make ~address:c.address ~meta:c.meta

let salt_of_address a = Seeds.salt_of_tag ("campaign:" ^ a)

(* ---------- events ---------- *)

let event_to_json = function
  | Started { name; total; pending; reused; corrupted } ->
    Json.Obj
      [
        ("event", Json.String "started");
        ("campaign", Json.String name);
        ("total", Json.Int total);
        ("pending", Json.Int pending);
        ("reused", Json.Int reused);
        ("corrupted", Json.Int corrupted);
      ]
  | Cell_done { index; address; cached; done_; of_; elapsed_s; cells_per_s; eta_s }
    ->
    Json.Obj
      [
        ("event", Json.String "cell");
        ("index", Json.Int index);
        ("address", Json.String address);
        ("cached", Json.Bool cached);
        ("done", Json.Int done_);
        ("of", Json.Int of_);
        ("elapsed_s", Json.Float elapsed_s);
        ("cells_per_s", Json.Float cells_per_s);
        ("eta_s", Json.Float eta_s);
      ]
  | Corrupt_rerun { index; address; path; reason } ->
    Json.Obj
      [
        ("event", Json.String "corrupt");
        ("index", Json.Int index);
        ("address", Json.String address);
        ("path", Json.String path);
        ("reason", Json.String reason);
      ]
  | Finished { ran; cached; reused; corrupted; remaining; manifest } ->
    Json.Obj
      [
        ("event", Json.String "finished");
        ("ran", Json.Int ran);
        ("cached", Json.Int cached);
        ("reused", Json.Int reused);
        ("corrupted", Json.Int corrupted);
        ("remaining", Json.Int remaining);
        ( "manifest",
          match manifest with Some p -> Json.String p | None -> Json.Null );
      ]

let event_of_json doc =
  let ( let* ) = Result.bind in
  let str k =
    match Option.bind (Json.member k doc) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "event: missing string field %S" k)
  in
  let int k =
    match Json.member k doc with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "event: missing int field %S" k)
  in
  let flt k =
    match Option.bind (Json.member k doc) Json.to_number with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "event: missing number field %S" k)
  in
  let* kind = str "event" in
  match kind with
  | "started" ->
    let* name = str "campaign" in
    let* total = int "total" in
    let* pending = int "pending" in
    let* reused = int "reused" in
    let* corrupted = int "corrupted" in
    Ok (Started { name; total; pending; reused; corrupted })
  | "cell" ->
    let* index = int "index" in
    let* address = str "address" in
    let cached = Json.member "cached" doc = Some (Json.Bool true) in
    let* done_ = int "done" in
    let* of_ = int "of" in
    let* elapsed_s = flt "elapsed_s" in
    let* cells_per_s = flt "cells_per_s" in
    let* eta_s = flt "eta_s" in
    Ok (Cell_done { index; address; cached; done_; of_; elapsed_s; cells_per_s; eta_s })
  | "corrupt" ->
    let* index = int "index" in
    let* address = str "address" in
    let* path = str "path" in
    let* reason = str "reason" in
    Ok (Corrupt_rerun { index; address; path; reason })
  | "finished" ->
    let* ran = int "ran" in
    let* cached = int "cached" in
    let* reused = int "reused" in
    let* corrupted = int "corrupted" in
    let* remaining = int "remaining" in
    let manifest =
      match Json.member "manifest" doc with
      | Some (Json.String p) -> Some p
      | _ -> None
    in
    Ok (Finished { ran; cached; reused; corrupted; remaining; manifest })
  | k -> Error (Printf.sprintf "event: unknown kind %S" k)

let event_to_string = function
  | Started { name; total; pending; reused; corrupted } ->
    Printf.sprintf "campaign %s: running %d of %d cells (%d reused, %d corrupt re-queued)"
      name pending total reused corrupted
  | Cell_done { index; address; cached; done_; of_; elapsed_s; cells_per_s; eta_s }
    ->
    Printf.sprintf "[%d/%d] cell #%d %s%s (%.1f cells/s, elapsed %.1fs, eta %.1fs)"
      done_ of_ index address
      (if cached then " [cached]" else "")
      cells_per_s elapsed_s eta_s
  | Corrupt_rerun { address; path; reason; _ } ->
    Printf.sprintf "corrupt checkpoint %s: %s — re-running cell %S" path reason
      address
  | Finished { ran; cached; reused; corrupted; remaining; manifest } ->
    Printf.sprintf
      "finished: %d ran, %d cached, %d reused, %d corrupt re-run, %d remaining%s"
      ran cached reused corrupted remaining
      (match manifest with Some p -> "; manifest " ^ p | None -> "")

(* ---------- filesystem helpers ---------- *)

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

(* Temp file + rename: a kill leaves either no record or a complete one,
   never a half-written record masquerading as a checkpoint. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let cell_file_name index = Printf.sprintf "cell_%05d.json" index

let cell_rel_path index = Filename.concat "cells" (cell_file_name index)

(* ---------- record shapes ---------- *)

(* Each cell's [meta] is part of the campaign identity: addresses alone
   encode only the grid axes, so without the meta a resume after changing
   e.g. trial counts or base parameters would silently reuse stale
   checkpoints. *)
let grid_doc ~name ~master cells =
  Json.Obj
    [
      ("schema", Json.String grid_schema);
      ("campaign", Json.String name);
      ("master", Json.Int master);
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("index", Json.Int c.index);
                   ("address", Json.String c.address);
                   ("meta", Json.Obj c.meta);
                 ])
             cells) );
    ]

let payload_digest payload = Digest.to_hex (Digest.string (Json.to_string payload))

let cell_doc ~name ~master cell payload =
  Json.Obj
    [
      ("schema", Json.String cell_schema);
      ("campaign", Json.String name);
      ("master", Json.Int master);
      ("index", Json.Int cell.index);
      ("address", Json.String cell.address);
      ("salt", Json.Int (salt_of_address cell.address));
      ("meta", Json.Obj cell.meta);
      ("digest", Json.String (payload_digest payload));
      ("payload", payload);
    ]

(* ---------- checkpoint validation ---------- *)

(* A record is trusted only if every identity field matches the grid and
   the stored digest matches the payload re-rendered: truncation and
   parse corruption fail [of_file], content corruption fails the digest
   or a field comparison. *)
let validate_cell ~name ~master cell path =
  let field key doc = Json.member key doc in
  let check_string key expected doc =
    match Option.bind (field key doc) Json.to_string_opt with
    | Some s when s = expected -> Ok ()
    | Some s -> Error (Printf.sprintf "%s %S does not match expected %S" key s expected)
    | None -> Error (Printf.sprintf "missing %s" key)
  in
  let check_int key expected doc =
    match field key doc with
    | Some (Json.Int i) when i = expected -> Ok ()
    | Some (Json.Int i) ->
      Error (Printf.sprintf "%s %d does not match expected %d" key i expected)
    | _ -> Error (Printf.sprintf "missing %s" key)
  in
  let ( let* ) = Result.bind in
  match Json.of_file path with
  | Error msg -> Error msg
  | Ok doc ->
    let* () = check_string "schema" cell_schema doc in
    let* () = check_string "campaign" name doc in
    let* () = check_int "master" master doc in
    let* () = check_int "index" cell.index doc in
    let* () = check_string "address" cell.address doc in
    let* () = check_int "salt" (salt_of_address cell.address) doc in
    let* () =
      (* Structural comparison is sound because [Json.to_string]/[of_file]
         round-trip value-preservingly (floats keep their tag). *)
      match field "meta" doc with
      | Some m when m = Json.Obj cell.meta -> Ok ()
      | Some _ -> Error "meta does not match the expected cell meta"
      | None -> Error "missing meta"
    in
    (match (field "digest" doc, field "payload" doc) with
    | Some (Json.String digest), Some payload ->
      if payload_digest payload = digest then Ok ()
      else Error "payload digest mismatch"
    | _ -> Error "missing digest or payload")

(* ---------- the plan / execute / finalize layers ---------- *)

type plan = {
  p_name : string;
  p_config : config;
  p_cells : cell list;
  p_pending : cell list;
  p_reused : int;
  p_corrupt : (cell * string * string) list;
}

let check_cells cells =
  let seen = Hashtbl.create 64 in
  let rec go i = function
    | [] -> Ok ()
    | c :: rest ->
      if c.index <> i then
        Error (Printf.sprintf "cell %d has index %d: indices must be positional" i c.index)
      else if c.address = "" then Error (Printf.sprintf "cell %d: empty address" i)
      else if Hashtbl.mem seen c.address then
        Error (Printf.sprintf "duplicate cell address %S" c.address)
      else begin
        Hashtbl.add seen c.address ();
        go (i + 1) rest
      end
  in
  go 0 cells

let load_or_init_grid config ~name ~cells =
  let path = Filename.concat config.dir "grid.json" in
  let desired = grid_doc ~name ~master:config.master cells in
  if Sys.file_exists path then
    if not config.resume then
      Error
        (Printf.sprintf
           "campaign directory %s is already initialised; pass --resume to \
            continue it or choose a fresh --out directory"
           config.dir)
    else
      match Json.of_file path with
      | Error msg -> Error (Printf.sprintf "unreadable %s: %s" path msg)
      | Ok existing ->
        if existing = desired then Ok ()
        else
          Error
            (Printf.sprintf
               "%s belongs to a different campaign (name, master seed, cell \
                grid or cell parameters differ); refusing to mix checkpoints"
               path)
  else begin
    write_atomic path (Json.to_string ~pretty:true desired ^ "\n");
    Ok ()
  end

let plan config ~name ~cells =
  match check_cells cells with
  | Error _ as e -> e
  | Ok () -> (
    mkdir_p config.dir;
    mkdir_p (Filename.concat config.dir "cells");
    match load_or_init_grid config ~name ~cells with
    | Error _ as e -> e
    | Ok () ->
      (* Classify every cell: a valid checkpoint is reused, anything
         else (missing, or corrupt — which is reported, never silently
         skipped) queues for execution. *)
      let reused = ref 0 and corrupt = ref [] in
      let pending =
        List.filter
          (fun c ->
            let path = Filename.concat config.dir (cell_rel_path c.index) in
            if not (Sys.file_exists path) then true
            else
              match validate_cell ~name ~master:config.master c path with
              | Ok () ->
                incr reused;
                false
              | Error reason ->
                corrupt := (c, path, reason) :: !corrupt;
                true)
          cells
      in
      Ok
        {
          p_name = name;
          p_config = config;
          p_cells = cells;
          p_pending = pending;
          p_reused = !reused;
          p_corrupt = List.rev !corrupt;
        })

let execute_cell plan cell =
  let config = plan.p_config in
  let id = cellid cell in
  let payload, provenance =
    match config.cache with
    | None -> (cell.run ~master:config.master ~salt:(Cellid.salt id), `Ran)
    | Some store -> (
      match Cellstore.find store ~master:config.master id with
      | Some payload -> (payload, `Cached)
      | None ->
        let payload = cell.run ~master:config.master ~salt:(Cellid.salt id) in
        Cellstore.put store ~master:config.master id payload;
        (payload, `Ran))
  in
  let doc = cell_doc ~name:plan.p_name ~master:config.master cell payload in
  write_atomic
    (Filename.concat config.dir (cell_rel_path cell.index))
    (Json.to_string ~pretty:true doc ^ "\n");
  provenance

let remaining plan =
  List.length
    (List.filter
       (fun c ->
         not (Sys.file_exists (Filename.concat plan.p_config.dir (cell_rel_path c.index))))
       plan.p_cells)

let write_manifest config ~name cells =
  let entries =
    List.map
      (fun c ->
        let rel = cell_rel_path c.index in
        let digest = Digest.to_hex (Digest.file (Filename.concat config.dir rel)) in
        Json.Obj
          [
            ("index", Json.Int c.index);
            ("address", Json.String c.address);
            ("salt", Json.Int (salt_of_address c.address));
            ("file", Json.String rel);
            ("digest", Json.String digest);
          ])
      cells
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String manifest_schema);
        ("campaign", Json.String name);
        ("master", Json.Int config.master);
        ("cells", Json.List entries);
      ]
  in
  let path = Filename.concat config.dir "manifest.json" in
  write_atomic path (Json.to_string ~pretty:true doc ^ "\n");
  path

let finalize plan =
  if remaining plan = 0 then
    Some (write_manifest plan.p_config ~name:plan.p_name plan.p_cells)
  else None

(* ---------- the batch driver ---------- *)

let run config ~name ~cells =
  match plan config ~name ~cells with
  | Error _ as e -> e
  | Ok p ->
    let total = List.length cells in
    let corrupted = List.length p.p_corrupt in
    let to_run =
      match config.max_cells with
      | None -> Array.of_list p.p_pending
      | Some m -> Array.of_list (List.filteri (fun i _ -> i < m) p.p_pending)
    in
    let n_run = Array.length to_run in
    let mutex = Mutex.create () in
    let events = Eventlog.open_ ~path:(Filename.concat config.dir "events.jsonl") in
    let emit e =
      Eventlog.append events (event_to_json e);
      config.progress e
    in
    emit
      (Started { name; total; pending = n_run; reused = p.p_reused; corrupted });
    List.iter
      (fun (c, path, reason) ->
        emit (Corrupt_rerun { index = c.index; address = c.address; path; reason }))
      p.p_corrupt;
    let t0 = Unix.gettimeofday () in
    let finished = ref 0 and ran = ref 0 and cached = ref 0 in
    let run_cell i =
      let c = to_run.(i) in
      let provenance = execute_cell p c in
      Mutex.lock mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock mutex)
        (fun () ->
          incr finished;
          (match provenance with `Ran -> incr ran | `Cached -> incr cached);
          let done_ = !finished in
          let elapsed = Unix.gettimeofday () -. t0 in
          let rate = if elapsed > 0.0 then float_of_int done_ /. elapsed else 0.0 in
          let eta =
            if rate > 0.0 then float_of_int (n_run - done_) /. rate else 0.0
          in
          emit
            (Cell_done
               {
                 index = c.index;
                 address = c.address;
                 cached = (provenance = `Cached);
                 done_;
                 of_ = n_run;
                 elapsed_s = elapsed;
                 cells_per_s = rate;
                 eta_s = eta;
               }))
    in
    let outcome =
      try
        (match config.domains with
        | Some d -> Pool.with_pool ~domains:d (fun pool -> Pool.run pool ~n:n_run run_cell)
        | None -> Pool.run (Pool.default ()) ~n:n_run run_cell);
        Ok ()
      with exn ->
        Error
          (Printf.sprintf "cell execution failed: %s (completed cells are \
                           checkpointed; re-run with --resume)"
             (Printexc.to_string exn))
    in
    (match outcome with
    | Error _ as e ->
      Eventlog.close events;
      e
    | Ok () ->
      let remaining = List.length p.p_pending - n_run in
      let manifest = if remaining = 0 then finalize p else None in
      let report =
        {
          total;
          ran = !ran;
          cached = !cached;
          reused = p.p_reused;
          corrupted;
          remaining;
          manifest;
        }
      in
      emit
        (Finished
           {
             ran = !ran;
             cached = !cached;
             reused = p.p_reused;
             corrupted;
             remaining;
             manifest;
           });
      Eventlog.close events;
      Ok report)
