let samples ?domains ~master ~tag ~trials sample =
  Trial.collect_par ?domains ~trials ~master ~salt0:(Seeds.salt_of_tag tag) sample

let validate_dist tag dist =
  if dist = [] then invalid_arg "Conformance: empty distribution";
  let total =
    List.fold_left
      (fun acc (_, p) ->
        if p <= 0.0 then
          invalid_arg
            (Printf.sprintf "Conformance (%s): non-positive probability in support" tag);
        acc +. p)
      0.0 dist
  in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg
      (Printf.sprintf "Conformance (%s): probabilities sum to %.12g, not 1" tag total)

let counts ?domains ~master ~tag ~trials ~dist ~equal ~describe ~sample () =
  validate_dist tag dist;
  let support = Array.of_list (List.map fst dist) in
  let observed = Array.make (Array.length support) 0 in
  let index_of x =
    let rec go i =
      if i = Array.length support then
        failwith
          (Printf.sprintf
             "Conformance (%s): sampled %s, which the oracle assigns probability 0" tag
             (describe x))
      else if equal support.(i) x then i
      else go (i + 1)
    in
    go 0
  in
  Array.iter
    (fun x ->
      let i = index_of x in
      observed.(i) <- observed.(i) + 1)
    (samples ?domains ~master ~tag ~trials sample);
  observed

let check ?domains ?min_expected ~alpha ~master ~tag ~trials ~dist ~equal ~describe
    ~sample () =
  let observed = counts ?domains ~master ~tag ~trials ~dist ~equal ~describe ~sample () in
  let expected =
    Array.of_list (List.map (fun (_, p) -> p *. Float.of_int trials) dist)
  in
  let observed, expected =
    Stats.Gof.pool_low_expected ?min_expected ~observed ~expected ()
  in
  Stats.Gof.pearson_chi2 ~alpha ~observed ~expected ()
