(** Typed experiment artifacts — the structured results pipeline.

    Every experiment emits a stream of typed {!event}s (context, tables
    with typed cells, fits, metrics, the PASS/FAIL verdict) instead of
    printing free text. A {!Sink} renders the stream (console) or
    persists it (JSON, CSV), and the completed {!t} record is returned to
    the caller so verdicts can be machine-checked ([cobra_cli exp
    --check]) and regression-diffed across runs. *)

(** Flattened summary statistics of one measurement series (mean with a
    95% t-interval, spread, extrema, sample count). *)
type summary = {
  mean : float;
  ci_lo : float;
  ci_hi : float;
  stddev : float;
  min : float;
  max : float;
  count : int;
}

(** A typed table cell. [Float]'s optional [display] preserves the
    experiment's chosen console formatting (e.g. ["%.3f"]) without losing
    the raw value for JSON/CSV. *)
type cell =
  | Int of int
  | Float of { value : float; display : string option }
  | Str of string
  | Summary of summary

type table = { title : string option; columns : string list; rows : cell list list }

(** A regression fit reported by an experiment ([model] names the
    transform: ["ols"], ["semilog"], ["loglog"]). *)
type fit = {
  label : string;
  model : string;
  slope : float;
  intercept : float;
  r2 : float;
}

type verdict = { pass : bool; detail : string }

type event =
  | Context of (string * string) list  (** key = value configuration block *)
  | Section of string  (** a sub-part heading within one experiment *)
  | Note of string  (** free-text commentary line(s) *)
  | Table of table
  | Fit of fit
  | Metric of { name : string; value : float }  (** one named scalar result *)
  | Verdict of verdict  (** the acceptance criterion; an experiment may emit several *)

(** Identity and run configuration, fixed before the experiment runs. *)
type meta = {
  id : string;
  slug : string;
  title : string;
  claim : string;
  scale : string;
  master : int;
  domains : int;
}

(** A completed artifact: meta, the events in emission order, wall-clock
    seconds. *)
type t = { meta : meta; events : event list; elapsed_s : float }

(** {1 Cell constructors} *)

val int : int -> cell

val float : float -> cell

(** [floatf fmt v] is a float cell rendered with [fmt] on the console
    (e.g. [floatf "%.3f" ratio]) while keeping the raw value. *)
val floatf : (float -> string, unit, string) format -> float -> cell

val str : string -> cell

(** [summary s] flattens a {!Stats.Summary.t} (with its 95% t-interval)
    into a [Summary] cell. *)
val summary : Stats.Summary.t -> cell

(** [of_summary s] is the flattened record itself. *)
val of_summary : Stats.Summary.t -> summary

(** {1 Event constructors} *)

val context : (string * string) list -> event

val section : string -> event

val note : string -> event

(** [notef fmt ...] is [note (Printf.sprintf fmt ...)]. *)
val notef : ('a, unit, string, event) format4 -> 'a

(** [fit_of_regress ~label ~model f] captures a {!Stats.Regress.fit}. *)
val fit_of_regress : label:string -> model:string -> Stats.Regress.fit -> event

val metric : name:string -> float -> event

val verdict : pass:bool -> string -> event

(** {1 Table builder} — mirrors the [Stats.Table] API so experiments port
    line-for-line, but accumulates typed cells. *)
module Tab : sig
  type builder

  val create : ?title:string -> string list -> builder

  (** [add_row b cells] appends a row; arity must match the columns. *)
  val add_row : builder -> cell list -> unit

  (** [rows b] is the number of rows added so far. *)
  val rows : builder -> int

  (** [event b] freezes the builder into a [Table] event. *)
  val event : builder -> event
end

(** {1 Rendering primitives} (shared by the console and CSV sinks) *)

(** [float_to_string x] — integral floats print bare, others with 4
    significant digits. *)
val float_to_string : float -> string

(** [summary_to_string s] is ["mean ± halfwidth"] (bare mean for a single
    observation). *)
val summary_to_string : summary -> string

(** [cell_to_string c] is the human-facing form ([display] wins for
    formatted floats). *)
val cell_to_string : cell -> string

(** [cell_to_raw_string c] is the machine-facing form: full-precision
    numbers; a [Summary] collapses to its mean. *)
val cell_to_raw_string : cell -> string

(** {1 Accessors} *)

val tables : t -> table list

val verdicts : t -> verdict list

(** [passed t] — no emitted verdict failed. *)
val passed : t -> bool

(** [basename meta] is ["<id>_<slug>"], the stem sinks name files by. *)
val basename : meta -> string

(** {1 JSON} *)

(** The [schema] field stamped on every artifact document. *)
val schema_version : string

val event_to_json : event -> Json.t

(** [to_json t] is the self-describing single-experiment document the
    JSON sink writes (see README for the schema). *)
val to_json : t -> Json.t
