(* Fixed-size domain pool with chunked work distribution.

   Batches are published to the workers as a closure plus an epoch
   counter; workers sleep on a condition variable between batches. Within
   a batch, lanes claim contiguous index chunks from an atomic cursor, so
   the only cross-domain traffic on the hot path is one fetch-and-add per
   chunk. Completion is tracked by counting finished items: every claimed
   chunk accounts for its full extent even when a trial raises, so the
   caller's wait below can never hang. *)

type batch = {
  total : int;
  work : int -> unit;
  cursor : int Atomic.t; (* next unclaimed index *)
  chunk : int;
  finished : int Atomic.t; (* items accounted for *)
  failure : exn option Atomic.t; (* first exception, re-raised by the caller *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  wake : Condition.t; (* workers: a new batch (or shutdown) is available *)
  done_ : Condition.t; (* caller: the current batch may have completed *)
  mutable batch : batch option;
  mutable epoch : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

(* Drain one batch: claim chunks until the cursor runs off the end. After
   a failure is recorded the remaining chunks are still claimed (keeping
   the finished count honest) but the user function is skipped. *)
let drain b ~signal =
  let continue = ref true in
  while !continue do
    let start = Atomic.fetch_and_add b.cursor b.chunk in
    if start >= b.total then continue := false
    else begin
      let stop = min b.total (start + b.chunk) in
      if Atomic.get b.failure = None then begin
        try
          for i = start to stop - 1 do
            b.work i
          done
        with e -> ignore (Atomic.compare_and_set b.failure None (Some e))
      end;
      let done_now = stop - start + Atomic.fetch_and_add b.finished (stop - start) in
      if done_now >= b.total then signal ()
    end
  done

let worker pool =
  let last_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stopping) && pool.epoch = !last_epoch do
      Condition.wait pool.wake pool.mutex
    done;
    if pool.stopping then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      last_epoch := pool.epoch;
      let b = Option.get pool.batch in
      Mutex.unlock pool.mutex;
      drain b ~signal:(fun () ->
          Mutex.lock pool.mutex;
          Condition.broadcast pool.done_;
          Mutex.unlock pool.mutex)
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains >= 1 required";
  let pool =
    {
      size = domains;
      mutex = Mutex.create ();
      wake = Condition.create ();
      done_ = Condition.create ();
      batch = None;
      epoch = 0;
      stopping = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.size

let run pool ~n f =
  if n < 0 then invalid_arg "Pool.run: n >= 0 required";
  if n > 0 then begin
    if pool.size = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      (* ~8 chunks per lane balances load without hammering the cursor. *)
      let chunk = max 1 (n / (pool.size * 8)) in
      let b =
        {
          total = n;
          work = f;
          cursor = Atomic.make 0;
          chunk;
          finished = Atomic.make 0;
          failure = Atomic.make None;
        }
      in
      Mutex.lock pool.mutex;
      pool.batch <- Some b;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.mutex;
      (* The caller is a lane too. *)
      drain b ~signal:(fun () ->
          Mutex.lock pool.mutex;
          Condition.broadcast pool.done_;
          Mutex.unlock pool.mutex);
      Mutex.lock pool.mutex;
      while Atomic.get b.finished < n do
        Condition.wait pool.done_ pool.mutex
      done;
      (* Leave the finished batch published: a worker that slept through
         it wakes, finds the cursor exhausted, and goes back to sleep. *)
      Mutex.unlock pool.mutex;
      match Atomic.get b.failure with None -> () | Some e -> raise e
    end
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let was_stopping = pool.stopping in
  pool.stopping <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  if not was_stopping then Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let domains_of_string s =
  match int_of_string_opt (String.trim s) with
  | Some d when d >= 1 -> Ok d
  | Some d -> Error (Printf.sprintf "domain count must be >= 1 (got %d)" d)
  | None -> Error (Printf.sprintf "expected a positive integer, got %S" s)

let default_domains () =
  match Sys.getenv_opt "COBRA_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match domains_of_string s with
    | Ok d -> d
    | Error msg -> invalid_arg ("COBRA_DOMAINS: " ^ msg))

let global = ref None

let default () =
  match !global with
  | Some pool -> pool
  | None ->
    let pool = create ~domains:(default_domains ()) in
    global := Some pool;
    pool
