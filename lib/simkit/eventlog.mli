(** Append-only JSONL event logs safe for concurrent tailing.

    Campaign progress streams ([events.jsonl]) are consumed while they
    are being written — by [cobra client watch] through the daemon's
    tail loop, or by any `tail -f`. That only works if a reader can
    never observe a torn line. This module pins the required discipline:
    the file is opened with [O_APPEND] and every event is written as
    {e one} [write(2)] of the complete ["<json>\n"] line
    ([Unix.single_write]), so concurrent readers see each line either
    absent or whole, and concurrent writers (even across processes)
    interleave at line granularity. [test/simkit]'s tail-while-writing
    test drives a reader against a live writer to pin the property. *)

type t

(** [open_ ~path] opens [path] for appending, creating it (and missing
    parent directories) if needed. *)
val open_ : path:string -> t

val path : t -> string

(** [append log doc] appends [doc] as one newline-terminated line in a
    single write. [doc] must not itself render a newline (JSON never
    does). *)
val append : t -> Json.t -> unit

val close : t -> unit

(** [with_log ~path f] runs [f] over a fresh log, always closing it. *)
val with_log : path:string -> (t -> 'a) -> 'a

(** [read_lines path] parses every complete (newline-terminated) line of
    [path] as JSON, in order — the reader side of the contract. A
    missing file is an empty list; an unparseable line is an error. *)
val read_lines : string -> (Json.t list, string) result
