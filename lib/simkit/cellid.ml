type t = { address : string; digest : string }

let digest_len = 32

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let meta_digest meta =
  Digest.to_hex (Digest.string (Json.to_string (Json.Obj meta)))

let make ~address ~meta =
  if address = "" then invalid_arg "Cellid.make: empty address";
  { address; digest = meta_digest meta }

let of_parts ~address ~digest =
  if address = "" then Error "empty address"
  else if String.length digest <> digest_len then
    Error
      (Printf.sprintf "meta digest must be %d hex characters (got %d)" digest_len
         (String.length digest))
  else if not (String.for_all is_hex digest) then
    Error (Printf.sprintf "meta digest %S is not lowercase hex" digest)
  else Ok { address; digest }

let address id = id.address
let digest id = id.digest
let salt id = Seeds.salt_of_tag ("campaign:" ^ id.address)
let equal a b = a.address = b.address && a.digest = b.digest

let compare a b =
  match String.compare a.address b.address with
  | 0 -> String.compare a.digest b.digest
  | c -> c

let to_string id = id.digest ^ ":" ^ id.address

let pp ppf id = Format.pp_print_string ppf (to_string id)

let of_string s =
  (* The digest is fixed-width, so the first ':' after it is the
     separator no matter what the address contains. *)
  if String.length s < digest_len + 2 then
    Error (Printf.sprintf "cell id %S too short (want <digest>:<address>)" s)
  else if s.[digest_len] <> ':' then
    Error (Printf.sprintf "cell id %S: expected ':' after the %d-char digest" s digest_len)
  else
    of_parts
      ~address:(String.sub s (digest_len + 1) (String.length s - digest_len - 1))
      ~digest:(String.sub s 0 digest_len)

let address_of_parts parts =
  if parts = [] then invalid_arg "Cellid.address_of_parts: no parts";
  String.concat ";"
    (List.map
       (fun (k, v) ->
         if k = "" then invalid_arg "Cellid.address_of_parts: empty key";
         String.iter
           (fun c ->
             if c = '=' || c = ';' || c = '\n' then
               invalid_arg
                 (Printf.sprintf "Cellid.address_of_parts: key %S contains %C" k c))
           k;
         String.iter
           (fun c ->
             if c = ';' || c = '\n' then
               invalid_arg
                 (Printf.sprintf "Cellid.address_of_parts: value %S contains %C" v c))
           v;
         k ^ "=" ^ v)
       parts)

let parts_of_address a =
  let fields = String.split_on_char ';' a in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
      match String.index_opt f '=' with
      | None -> Error (Printf.sprintf "address part %S: expected key=value" f)
      | Some 0 -> Error (Printf.sprintf "address part %S: empty key" f)
      | Some i ->
        go
          ((String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1)) :: acc)
          rest)
  in
  if a = "" then Error "empty address" else go [] fields
