let master ~default () =
  match Sys.getenv_opt "COBRA_SEED" with
  | None -> default
  | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> default)

(* Mix master and salt through one splitmix draw so that nearby (master,
   salt) pairs land far apart in state space. [trial_seed] exposes the
   derived raw seed itself so the lane engine can hand lane [j] exactly
   trial [j]'s stream. *)
let trial_seed ~master ~salt =
  let mixer = Prng.Splitmix.create master in
  Prng.Splitmix.next mixer lxor (salt * 0x2545F4914F6CDD1D)

let trial_rng ~master ~salt = Prng.Rng.create (trial_seed ~master ~salt)

let tagged_rng ~master ~tag =
  let hash = Hashtbl.hash (tag, 0x5EED) in
  trial_rng ~master ~salt:hash

(* Widely-spaced salt bases: the multiplier pushes consecutive trial
   indices of different tags apart, so [salt_of_tag a + i] and
   [salt_of_tag b + j] never collide for any realistic trial count
   (unlike e.g. [start * 131 + i], which wraps at 131 trials). *)
let salt_of_tag tag = Hashtbl.hash (tag, 0xC0B7A) * 65_599
