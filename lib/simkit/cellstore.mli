(** Content-addressed result cache for campaign cells.

    A store maps [(master seed, cell identity)] — where the identity is
    a {!Cellid.t}, i.e. [(canonical address, meta digest)] — to the
    cell's payload. Because a cell's payload is a pure function of
    [(master, salt)] and its salt is a pure function of the address,
    while the meta digest pins every other identity-bearing parameter
    (trials, base params, engine, backend), a stored payload is
    {e provably byte-identical} to what a recompute would produce. This
    is what makes the cache safe to share across users, campaigns and
    daemon restarts: a hit is never an approximation.

    Layout: one record per entry under [dir/<kk>/<key>.json] where
    [key] is the MD5 of [(master, cell id)] and [<kk>] its first two hex
    characters (a 256-way fan-out so directories stay small at millions
    of entries). Records (schema {!schema}) carry the full address, meta
    digest, salt and a payload digest; {!find} validates all of them, so
    a corrupt or colliding record is treated as a miss (reported through
    the miss counter) rather than trusted.

    Writes are atomic (unique temp file + rename): concurrent writers —
    multiple daemon worker threads, or a daemon and a batch sweep
    sharing the store — can race on the same key and the survivor is a
    complete record with the same bytes either way.

    Hit/miss/put counters are atomic and process-wide per store handle,
    suitable for daemon [stats] reporting. *)

type t

val schema : string
(** ["cobra.cellstore/1"] *)

(** [open_ ~dir] opens (creating if needed) the store rooted at [dir]. *)
val open_ : dir:string -> t

val dir : t -> string

(** [key ~master id] is the 32-hex-character store key. *)
val key : master:int -> Cellid.t -> string

(** [path store ~master id] is the record path for the entry. *)
val path : t -> master:int -> Cellid.t -> string

(** [find store ~master id] is the validated payload, or [None] on a
    miss (absent, unreadable, or failing any identity/digest check).
    Updates the hit/miss counters. *)
val find : t -> master:int -> Cellid.t -> Json.t option

(** [put store ~master id payload] writes the entry atomically,
    overwriting any previous record for the key. *)
val put : t -> master:int -> Cellid.t -> Json.t -> unit

type stats = {
  hits : int;  (** successful {!find}s *)
  misses : int;  (** failed {!find}s (absent or invalid) *)
  puts : int;  (** records written *)
}

val stats : t -> stats

(** [entries store] counts the records currently on disk (a directory
    walk; intended for observability, not hot paths). *)
val entries : t -> int
