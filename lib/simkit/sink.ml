type t = {
  start : Artifact.meta -> unit;
  event : Artifact.event -> unit;
  finish : Artifact.t -> unit;
}

let null =
  { start = (fun _ -> ()); event = (fun _ -> ()); finish = (fun _ -> ()) }

let console () =
  { start = Report.start; event = Report.render_event; finish = (fun _ -> ()) }

let tee sinks =
  {
    start = (fun meta -> List.iter (fun s -> s.start meta) sinks);
    event = (fun e -> List.iter (fun s -> s.event e) sinks);
    finish = (fun a -> List.iter (fun s -> s.finish a) sinks);
  }

(* Create [dir] (and its parents) if missing. *)
let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then ensure_dir parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Sink: %s exists and is not a directory" dir)

let write_text path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let json ~dir =
  {
    start = (fun _ -> ());
    event = (fun _ -> ());
    finish =
      (fun artifact ->
        ensure_dir dir;
        let path =
          Filename.concat dir (Artifact.basename artifact.Artifact.meta ^ ".json")
        in
        write_text path (Json.to_string ~pretty:true (Artifact.to_json artifact));
        Printf.printf "wrote %s\n" path);
  }

let csv ~dir =
  {
    start = (fun _ -> ());
    event = (fun _ -> ());
    finish =
      (fun artifact ->
        ensure_dir dir;
        let stem = Artifact.basename artifact.Artifact.meta in
        List.iteri
          (fun i (tb : Artifact.table) ->
            let path =
              Filename.concat dir (Printf.sprintf "%s.t%d.csv" stem (i + 1))
            in
            let rows =
              List.map
                (fun row -> List.map Artifact.cell_to_raw_string row)
                tb.Artifact.rows
            in
            Csvout.write_file path ~header:tb.Artifact.columns rows;
            Printf.printf "wrote %s\n" path)
          (Artifact.tables artifact));
  }

let manifest_schema_version = "cobra.run-manifest/1"

let write_manifest ~dir artifacts =
  ensure_dir dir;
  let experiments =
    List.map
      (fun (a : Artifact.t) ->
        Json.Obj
          [
            ("id", Json.String a.Artifact.meta.Artifact.id);
            ("slug", Json.String a.Artifact.meta.Artifact.slug);
            ("file", Json.String (Artifact.basename a.Artifact.meta ^ ".json"));
            ("pass", Json.Bool (Artifact.passed a));
            ("elapsed_s", Json.Float a.Artifact.elapsed_s);
          ])
      artifacts
  in
  let scale, master, domains =
    match artifacts with
    | a :: _ ->
      ( Json.String a.Artifact.meta.Artifact.scale,
        Json.Int a.Artifact.meta.Artifact.master,
        Json.Int a.Artifact.meta.Artifact.domains )
    | [] -> (Json.Null, Json.Null, Json.Null)
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String manifest_schema_version);
        ("scale", scale);
        ("master_seed", master);
        ("domains", domains);
        ("pass", Json.Bool (List.for_all Artifact.passed artifacts));
        ("experiments", Json.List experiments);
      ]
  in
  let path = Filename.concat dir "manifest.json" in
  write_text path (Json.to_string ~pretty:true doc);
  path
