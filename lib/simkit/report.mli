(** Report formatting shared by the experiment suite: banners, key-value
    context lines, and the paper-claim header each experiment prints above
    its table. *)

(** [banner ~id ~title] prints a separator line and the experiment
    heading. *)
val banner : id:string -> title:string -> unit

(** [claim text] prints the paper claim being reproduced, prefixed and
    wrapped. *)
val claim : string -> unit

(** [context pairs] prints [key = value] configuration lines. *)
val context : (string * string) list -> unit

(** [verdict ~pass text] prints a final PASS/FAIL-style line for the
    experiment's acceptance criterion. *)
val verdict : pass:bool -> string -> unit

(** [float_cell x] formats a float for a table cell (4 significant
    digits). *)
val float_cell : float -> string

(** [mean_ci_cell summary] formats ["mean ± half-width"] using a 95%
    t-interval (falls back to the bare mean for single observations). *)
val mean_ci_cell : Stats.Summary.t -> string
