(** The console renderer of the results pipeline: turns {!Artifact}
    events into the banner / claim / context / table / verdict text the
    experiment suite has always printed. The {!Sink.console} sink is a
    thin wrapper over this module; the cell formatters are also exported
    for ad-hoc CLI output. *)

(** [banner ~id ~title] prints a separator line and the experiment
    heading. *)
val banner : id:string -> title:string -> unit

(** [claim text] prints the paper claim being reproduced. *)
val claim : string -> unit

(** [context pairs] prints [key = value] configuration lines. *)
val context : (string * string) list -> unit

(** [verdict ~pass text] prints the final PASS/FAIL line. *)
val verdict : pass:bool -> string -> unit

(** [float_cell x] formats a float for a table cell (4 significant
    digits; integral values print bare). *)
val float_cell : float -> string

(** [mean_ci_cell summary] formats ["mean ± half-width"] using a 95%
    t-interval (falls back to the bare mean for single observations). *)
val mean_ci_cell : Stats.Summary.t -> string

(** [start meta] prints the banner, claim, and scale/seed context — the
    console sink's per-experiment preamble. *)
val start : Artifact.meta -> unit

(** [render_table tb] prints a typed table via {!Stats.Table} (preceded
    by its title, when present). *)
val render_table : Artifact.table -> unit

(** [render_event e] prints one artifact event in the classic report
    style. *)
val render_event : Artifact.event -> unit
