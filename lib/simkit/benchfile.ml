type row = { name : string; ns : float }
type t = { rows : row list }

let schema = "cobra.bench/1"

let section_of name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> name

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj [ ("name", Json.String r.name); ("ns", Json.Float r.ns) ])
             t.rows) );
    ]

let decode_row j =
  match
    ( Option.bind (Json.member "name" j) Json.to_string_opt,
      Option.bind (Json.member "ns" j) Json.to_number )
  with
  | Some name, Some ns -> Ok { name; ns }
  | _ -> Error "Benchfile: row must be {\"name\": string, \"ns\": number}"

let rec collect_rows acc = function
  | [] -> Ok (List.rev acc)
  | j :: rest -> (
    match decode_row j with
    | Ok r -> collect_rows (r :: acc) rest
    | Error _ as e -> e)

(* Legacy flat form: every member is "name": ns. Written by the harness
   before the schema existed; still accepted so old snapshots remain
   comparable. *)
let of_legacy fields =
  let rec go acc = function
    | [] -> Ok { rows = List.rev acc }
    | (name, v) :: rest -> (
      match Json.to_number v with
      | Some ns -> go ({ name; ns } :: acc) rest
      | None -> Error "Benchfile: legacy file member is not a number")
  in
  go [] fields

let of_json j =
  match j with
  | Json.Obj fields -> (
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema -> (
      match Option.bind (Json.member "rows" j) Json.to_list with
      | None -> Error "Benchfile: missing \"rows\" list"
      | Some rows -> (
        match collect_rows [] rows with
        | Ok rows -> Ok { rows }
        | Error _ as e -> e))
    | Some (Json.String s) -> Error (Printf.sprintf "Benchfile: unknown schema %S" s)
    | Some _ -> Error "Benchfile: \"schema\" must be a string"
    | None -> of_legacy fields)
  | _ -> Error "Benchfile: document must be an object"

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (to_json t));
      output_char oc '\n')

let load path = Result.bind (Json.of_file path) of_json

type section_verdict = {
  section : string;
  ratios : (string * float) list;
  median_ratio : float;
  regressed : bool;
}

type compare_result = {
  sections : section_verdict list;
  missing_sections : string list;
  threshold : float;
}

let median xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let k = Array.length a in
  if k = 0 then Float.nan
  else if k mod 2 = 1 then a.(k / 2)
  else (a.((k / 2) - 1) +. a.(k / 2)) /. 2.0

let compare ?(threshold = 1.25) ~old_ ~new_ () =
  let lookup_new = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace lookup_new r.name r.ns) new_.rows;
  (* Old-file section order, first appearance wins. *)
  let order = ref [] in
  let by_section = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let s = section_of r.name in
      if not (Hashtbl.mem by_section s) then begin
        Hashtbl.add by_section s (ref []);
        order := s :: !order
      end;
      let cell = Hashtbl.find by_section s in
      cell := r :: !cell)
    old_.rows;
  let sections = ref [] and missing = ref [] in
  List.iter
    (fun s ->
      let olds = List.rev !(Hashtbl.find by_section s) in
      let ratios =
        List.filter_map
          (fun r ->
            if r.ns <= 0.0 then None
            else
              match Hashtbl.find_opt lookup_new r.name with
              | Some ns_new -> Some (r.name, ns_new /. r.ns)
              | None -> None)
          olds
      in
      if ratios = [] then missing := s :: !missing
      else begin
        let m = median (List.map snd ratios) in
        sections :=
          { section = s; ratios; median_ratio = m; regressed = m > threshold }
          :: !sections
      end)
    (List.rev !order);
  {
    sections = List.rev !sections;
    missing_sections = List.rev !missing;
    threshold;
  }

let exit_code r =
  if List.exists (fun s -> s.regressed) r.sections then 1
  else if r.missing_sections <> [] then 2
  else 0
