type t = { path : string; fd : Unix.file_descr }

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let open_ ~path =
  mkdir_p (Filename.dirname path);
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  { path; fd }

let path log = log.path

let append log doc =
  let line = Bytes.unsafe_of_string (Json.to_string doc ^ "\n") in
  let len = Bytes.length line in
  (* One write(2) for the whole line: with O_APPEND this is the atomic
     unit concurrent readers and writers interleave at. A short write on
     a regular file only happens under ENOSPC-like conditions; finishing
     the line is then strictly better than dropping bytes. *)
  let written = Unix.single_write log.fd line 0 len in
  let rec finish off =
    if off < len then
      finish (off + Unix.single_write log.fd line off (len - off))
  in
  finish written

let close log = Unix.close log.fd

let with_log ~path f =
  let log = open_ ~path in
  Fun.protect ~finally:(fun () -> close log) (fun () -> f log)

let read_lines path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let rec go acc start =
      match String.index_from_opt content start '\n' with
      | None -> Ok (List.rev acc) (* trailing partial line: not yet committed *)
      | Some i -> (
        match Json.of_string (String.sub content start (i - start)) with
        | Ok doc -> go (doc :: acc) (i + 1)
        | Error e -> Error (Printf.sprintf "%s: bad event line: %s" path e))
    in
    go [] 0
  end
