(** Empirical-vs-exact distribution checks for the conformance suite.

    [test/conformance] validates every stochastic kernel by sampling it
    many times under the repository's seed discipline and comparing the
    empirical distribution against an exact oracle (usually
    [Cobra.Exact]) with a {!Stats.Gof} test. This module is the sampling
    half: it fans the draws over the domain pool with {!Trial.collect_par}
    (so results are bit-identical at any [COBRA_DOMAINS]), tabulates them
    against the oracle's support, and {e fails hard} on any draw outside
    that support — a sample landing in a zero-probability cell is a
    kernel bug that no chi-square p-value should be allowed to average
    away.

    Seed policy: each check derives its stream family from a unique
    string tag via {!Seeds.salt_of_tag}, so adding a check never shifts
    the draws of another and every verdict is reproducible from the
    master seed alone. *)

(** [samples ?domains ~master ~tag ~trials sample] draws
    [sample (Seeds.trial_rng ~master ~salt:(salt_of_tag tag + i))] for
    [i = 0 .. trials - 1] over the domain pool. Deterministic in
    [(master, tag, trials)]. *)
val samples :
  ?domains:int ->
  master:int ->
  tag:string ->
  trials:int ->
  (Prng.Rng.t -> 'a) ->
  'a array

(** [counts ?domains ~master ~tag ~trials ~dist ~equal ~describe ~sample ()]
    tabulates [trials] draws against the support of [dist] (an exact
    distribution as [(outcome, probability)] pairs, every probability
    positive and summing to 1 within 1e-9). Returns observed counts
    aligned with [dist]'s order.

    Raises [Failure] — naming the tag and the offending outcome via
    [describe] — if any draw is outside the support: the oracle assigns
    it probability zero, so one such draw already refutes the kernel. *)
val counts :
  ?domains:int ->
  master:int ->
  tag:string ->
  trials:int ->
  dist:('a * float) list ->
  equal:('a -> 'a -> bool) ->
  describe:('a -> string) ->
  sample:(Prng.Rng.t -> 'a) ->
  unit ->
  int array

(** [check ?domains ?min_expected ~alpha ~master ~tag ~trials ~dist
    ~equal ~describe ~sample ()] is the full pipeline: draw, tabulate
    ({!counts}), pool sparse cells ({!Stats.Gof.pool_low_expected} at
    [min_expected], default 5.0), and run Pearson's chi-square at
    [alpha]. *)
val check :
  ?domains:int ->
  ?min_expected:float ->
  alpha:float ->
  master:int ->
  tag:string ->
  trials:int ->
  dist:('a * float) list ->
  equal:('a -> 'a -> bool) ->
  describe:('a -> string) ->
  sample:(Prng.Rng.t -> 'a) ->
  unit ->
  Stats.Gof.result
