type 'a censored = { values : 'a array; censored : int }

let collect ~trials ~master ~salt0 f =
  if trials < 1 then invalid_arg "Trial.collect: trials >= 1";
  Array.init trials (fun i -> f (Seeds.trial_rng ~master ~salt:(salt0 + i)))

let values_of_censored raw =
  Array.of_list (List.filter_map Fun.id (Array.to_list raw))

let collect_censored ~trials ~master ~salt0 f =
  let raw = collect ~trials ~master ~salt0 f in
  let values = values_of_censored raw in
  { values; censored = trials - Array.length values }

let summary_of_values values censored conv =
  if Array.length values = 0 then failwith "Trial: every trial was censored";
  let s = Stats.Summary.create () in
  Array.iter (fun v -> Stats.Summary.add s (conv v)) values;
  (s, censored)

let summarize_with conv ~trials ~master ~salt0 f =
  let { values; censored } = collect_censored ~trials ~master ~salt0 f in
  summary_of_values values censored conv

let summarize_int ~trials ~master ~salt0 f =
  summarize_with Float.of_int ~trials ~master ~salt0 f

let summarize_float ~trials ~master ~salt0 f =
  summarize_with Fun.id ~trials ~master ~salt0 f

(* ---------- parallel variants ----------

   Trial [i] always draws from [Seeds.trial_rng ~master ~salt:(salt0 + i)]
   and writes into slot [i], so the result array is identical to the
   sequential one no matter how many domains execute the batch or how the
   scheduler interleaves them. *)

let run_indexed ?domains ~n f =
  match domains with
  | None -> Pool.run (Pool.default ()) ~n f
  | Some 1 ->
    for i = 0 to n - 1 do
      f i
    done
  | Some d -> Pool.with_pool ~domains:d (fun pool -> Pool.run pool ~n f)

let collect_par ?domains ~trials ~master ~salt0 f =
  if trials < 1 then invalid_arg "Trial.collect_par: trials >= 1";
  let out = Array.make trials None in
  run_indexed ?domains ~n:trials (fun i ->
      out.(i) <- Some (f (Seeds.trial_rng ~master ~salt:(salt0 + i))));
  Array.map
    (function Some v -> v | None -> assert false (* Pool.run ran every index *))
    out

let collect_censored_par ?domains ~trials ~master ~salt0 f =
  let raw = collect_par ?domains ~trials ~master ~salt0 f in
  let values = values_of_censored raw in
  { values; censored = trials - Array.length values }

let summarize_with_par conv ?domains ~trials ~master ~salt0 f =
  let { values; censored } = collect_censored_par ?domains ~trials ~master ~salt0 f in
  summary_of_values values censored conv

let summarize_int_par ?domains ~trials ~master ~salt0 f =
  summarize_with_par Float.of_int ?domains ~trials ~master ~salt0 f

let summarize_float_par ?domains ~trials ~master ~salt0 f =
  summarize_with_par Fun.id ?domains ~trials ~master ~salt0 f
