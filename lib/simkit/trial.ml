type 'a censored = { values : 'a array; censored : int }

let collect ~trials ~master ~salt0 f =
  if trials < 1 then invalid_arg "Trial.collect: trials >= 1";
  Array.init trials (fun i -> f (Seeds.trial_rng ~master ~salt:(salt0 + i)))

let collect_censored ~trials ~master ~salt0 f =
  let raw = collect ~trials ~master ~salt0 f in
  let values =
    Array.of_list (List.filter_map Fun.id (Array.to_list raw))
  in
  { values; censored = trials - Array.length values }

let summarize_with conv ~trials ~master ~salt0 f =
  let { values; censored } = collect_censored ~trials ~master ~salt0 f in
  if Array.length values = 0 then failwith "Trial: every trial was censored";
  let s = Stats.Summary.create () in
  Array.iter (fun v -> Stats.Summary.add s (conv v)) values;
  (s, censored)

let summarize_int ~trials ~master ~salt0 f =
  summarize_with Float.of_int ~trials ~master ~salt0 f

let summarize_float ~trials ~master ~salt0 f =
  summarize_with Fun.id ~trials ~master ~salt0 f
