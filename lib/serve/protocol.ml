module Json = Simkit.Json

let version = "cobra.rpc/1"

type submit = {
  client : string;
  grid : [ `Inline of string | `Doc of Json.t ];
  out : string;
  master : int;
  resume : bool;
}

type request =
  | Submit of submit
  | Status of { job : string }
  | Events of { job : string }
  | Cancel of { job : string }
  | Stats
  | Shutdown

type error_kind =
  | Bad_request
  | Unknown_job
  | Quota_exceeded
  | Busy
  | Grid_error
  | Server_error

let error_kind_to_string = function
  | Bad_request -> "bad-request"
  | Unknown_job -> "unknown-job"
  | Quota_exceeded -> "quota-exceeded"
  | Busy -> "busy"
  | Grid_error -> "grid-error"
  | Server_error -> "server-error"

let error_kind_of_string = function
  | "bad-request" -> Ok Bad_request
  | "unknown-job" -> Ok Unknown_job
  | "quota-exceeded" -> Ok Quota_exceeded
  | "busy" -> Ok Busy
  | "grid-error" -> Ok Grid_error
  | "server-error" -> Ok Server_error
  | s -> Error (Printf.sprintf "unknown error kind %S" s)

let request_to_json = function
  | Submit s ->
    let grid_field =
      match s.grid with
      | `Inline g -> ("grid", Json.String g)
      | `Doc d -> ("grid_json", d)
    in
    Json.Obj
      [
        ("op", Json.String "submit");
        ("client", Json.String s.client);
        ("out", Json.String s.out);
        ("master", Json.Int s.master);
        ("resume", Json.Bool s.resume);
        grid_field;
      ]
  | Status { job } -> Json.Obj [ ("op", Json.String "status"); ("job", Json.String job) ]
  | Events { job } -> Json.Obj [ ("op", Json.String "events"); ("job", Json.String job) ]
  | Cancel { job } -> Json.Obj [ ("op", Json.String "cancel"); ("job", Json.String job) ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let str_field doc k =
  match Option.bind (Json.member k doc) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" k)

let job_field doc = str_field doc "job"

let request_of_json doc =
  match doc with
  | Json.Obj _ -> (
    match str_field doc "op" with
    | Error e -> Error e
    | Ok "submit" ->
      let ( let* ) = Result.bind in
      let* client = str_field doc "client" in
      let* out = str_field doc "out" in
      let* master =
        match Json.member "master" doc with
        | Some (Json.Int m) -> Ok m
        | _ -> Error "missing or non-integer field \"master\""
      in
      let resume =
        match Option.bind (Json.member "resume" doc) Json.to_bool_opt with
        | Some b -> b
        | None -> false
      in
      let* grid =
        match (Json.member "grid" doc, Json.member "grid_json" doc) with
        | Some (Json.String g), None -> Ok (`Inline g)
        | None, Some d -> Ok (`Doc d)
        | Some _, Some _ -> Error "both \"grid\" and \"grid_json\" given"
        | _ -> Error "submit needs \"grid\" (inline string) or \"grid_json\""
      in
      Ok (Submit { client; grid; out; master; resume })
    | Ok "status" -> Result.map (fun job -> Status { job }) (job_field doc)
    | Ok "events" -> Result.map (fun job -> Events { job }) (job_field doc)
    | Ok "cancel" -> Result.map (fun job -> Cancel { job }) (job_field doc)
    | Ok "stats" -> Ok Stats
    | Ok "shutdown" -> Ok Shutdown
    | Ok op -> Error (Printf.sprintf "unknown op %S" op))
  | _ -> Error "request must be a JSON object"

let ok_response fields =
  Json.Obj (("rpc", Json.String version) :: ("ok", Json.Bool true) :: fields)

let error_response kind message =
  Json.Obj
    [
      ("rpc", Json.String version);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [
            ("kind", Json.String (error_kind_to_string kind));
            ("message", Json.String message);
          ] );
    ]

let is_response doc = Json.member "rpc" doc <> None

let response_error doc =
  match Option.bind (Json.member "ok" doc) Json.to_bool_opt with
  | Some true -> None
  | _ ->
    let err = Json.member "error" doc in
    let kind =
      match
        Option.bind err (fun e ->
            Option.bind (Json.member "kind" e) Json.to_string_opt)
      with
      | Some k -> (
        match error_kind_of_string k with Ok k -> k | Error _ -> Server_error)
      | None -> Server_error
    in
    let message =
      match
        Option.bind err (fun e ->
            Option.bind (Json.member "message" e) Json.to_string_opt)
      with
      | Some m -> m
      | None -> "malformed error response"
    in
    Some (kind, message)
