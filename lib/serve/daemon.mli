(** The campaign daemon: serves sweep submissions over a Unix-domain
    socket, multiplexing concurrent campaigns over one shared domain
    pool and one shared content-addressed result cache.

    Architecture (threads over one process):

    - the caller of {!run} becomes the accept loop; each connection is
      handled by its own thread speaking {!Protocol} (one request per
      connection);
    - a single {e scheduler} thread owns the domain pool. It drains
      cells round-robin across all running jobs in pool-sized batches,
      executing each batch in parallel via [Simkit.Pool] and
      {!Simkit.Campaign.execute_cell} — so every checkpoint record and
      the final manifest are byte-identical to what the batch
      [cobra sweep] path writes, and cells of a submission land
      incrementally (which is what makes kill-and-resume work at any
      point);
    - all bookkeeping lives behind one mutex; progress goes to each
      job's [events.jsonl] through [Simkit.Eventlog] (atomic line
      appends), which the [events] op tails.

    Admission control and quotas (typed refusals, see
    {!Protocol.error_kind}):

    - at most [max_jobs] campaigns run concurrently; up to
      [queue_depth] more wait in FIFO order; beyond that submissions
      are refused with [Busy];
    - a submission expanding to more than [max_cells_per_submit]
      pending cells is refused with [Quota_exceeded];
    - a client whose unfinished cells (across its queued and running
      jobs) would exceed [max_inflight_per_client] is refused with
      [Quota_exceeded];
    - two active jobs can never share an output directory — paths are
      canonicalized ([Unix.realpath]) before comparison, so two
      spellings of one directory count as the same ([Busy]).

    Because results are keyed content-addressed in the shared
    {!Simkit.Cellstore}, a resubmission of identical work (same master,
    addresses and meta) is served entirely from cache: zero cells
    recomputed, which the [stats] op exposes. *)

type config = {
  socket : string;  (** Unix-domain socket path; created on start *)
  cache : string option;  (** shared result-cache directory *)
  max_jobs : int;  (** campaigns running concurrently *)
  queue_depth : int;  (** additional campaigns allowed to wait *)
  max_cells_per_submit : int;  (** per-submission cell quota *)
  max_inflight_per_client : int;  (** per-client unfinished-cell quota *)
  domains : int option;  (** pool size; [None] uses [Pool.default_domains] *)
}

(** [default_config ~socket] — no cache, 2 concurrent jobs, queue of 8,
    10_000 cells per submission, 50_000 in flight per client, default
    domain count. *)
val default_config : socket:string -> config

(** [run config] starts the daemon and blocks until a [shutdown]
    request arrives (in-flight cells finish and are checkpointed;
    queued cells stay pending for a resubmission with [resume]).
    Returns [Error _] without serving if the socket path is already
    live or cannot be bound. *)
val run : config -> (unit, string) result
