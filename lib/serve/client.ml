module Json = Simkit.Json
module Campaign = Simkit.Campaign

let with_connection ~socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s (is the daemon running?)" socket
         (Unix.error_message e))
  | () ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () ->
        try close_out oc
        with _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
      (fun () -> f ic oc)

let send oc req =
  output_string oc (Json.to_string (Protocol.request_to_json req) ^ "\n");
  flush oc

let read_doc ic =
  match input_line ic with
  | exception End_of_file -> Error "connection closed before a response arrived"
  | line -> Json.of_string line

let check_response doc =
  match Protocol.response_error doc with
  | None -> Ok doc
  | Some (kind, msg) ->
    Error (Printf.sprintf "%s: %s" (Protocol.error_kind_to_string kind) msg)

let request ~socket req =
  with_connection ~socket (fun ic oc ->
      send oc req;
      Result.bind (read_doc ic) check_response)

let watch ~socket ~job on_event =
  with_connection ~socket (fun ic oc ->
      send oc (Protocol.Events { job });
      let rec go () =
        match read_doc ic with
        | Error _ as e -> e
        | Ok doc ->
          if Protocol.is_response doc then check_response doc
          else begin
            (match Campaign.event_of_json doc with
            | Ok e -> on_event e
            | Error _ -> ());
            go ()
          end
      in
      go ())

let submit ~socket s =
  match request ~socket (Protocol.Submit s) with
  | Error _ as e -> e
  | Ok doc -> (
    match Option.bind (Json.member "job" doc) Json.to_string_opt with
    | Some job -> Ok job
    | None -> Error "malformed submit response: no job id")
