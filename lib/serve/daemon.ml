module Json = Simkit.Json
module Campaign = Simkit.Campaign
module Cellstore = Simkit.Cellstore
module Eventlog = Simkit.Eventlog
module Pool = Simkit.Pool

type config = {
  socket : string;
  cache : string option;
  max_jobs : int;
  queue_depth : int;
  max_cells_per_submit : int;
  max_inflight_per_client : int;
  domains : int option;
}

let default_config ~socket =
  {
    socket;
    cache = None;
    max_jobs = 2;
    queue_depth = 8;
    max_cells_per_submit = 10_000;
    max_inflight_per_client = 50_000;
    domains = None;
  }

type job_state = Queued | Running | Done | Cancelled | Failed of string

type job = {
  id : string;
  client : string;
  name : string;
  dir : string;
  plan : Campaign.plan;
  total : int;
  of_ : int;  (* cells to execute this submission, [p_pending] at admission *)
  started_at : float;
  log : Eventlog.t;
  mutable queue : Campaign.cell list;  (* admitted, not yet dispatched *)
  mutable inflight : int;  (* dispatched to the pool, not yet finished *)
  mutable done_cells : int;
  mutable ran : int;
  mutable cached : int;
  mutable state : job_state;
  mutable cancelled : bool;  (* requested; takes effect when in-flight drains *)
  mutable manifest : string option;
  mutable error : string option;
}

(* A submission admitted but still planning (Campaign.plan runs with
   the lock released): holds its quota slot and output directory until
   the job registers or the plan fails. *)
type reservation = { r_client : string; r_dir : string; r_cells : int }

type t = {
  config : config;
  store : Cellstore.t option;
  pool : Pool.t;
  mu : Mutex.t;
  cond : Condition.t;
  jobs : (string, job) Hashtbl.t;
  mutable order : string list;  (* submission order: round-robin + stats *)
  mutable reserved : reservation list;
  mutable seq : int;
  mutable stop : bool;
}

let state_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

let terminal = function Done | Cancelled | Failed _ -> true | Queued | Running -> false

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let emit job event = Eventlog.append job.log (Campaign.event_to_json event)

(* ---------- bookkeeping (all under [t.mu]) ---------- *)

let active job = not (terminal job.state)

let iter_jobs t f =
  List.iter (fun id -> Option.iter f (Hashtbl.find_opt t.jobs id)) t.order

let count_jobs t p =
  let n = ref 0 in
  iter_jobs t (fun j -> if p j then incr n);
  !n

let client_inflight t client =
  let n = ref 0 in
  iter_jobs t (fun j ->
      if active j && j.client = client then
        n := !n + List.length j.queue + j.inflight);
  List.iter
    (fun r -> if r.r_client = client then n := !n + r.r_cells)
    t.reserved;
  !n

let job_fields job =
  [
    ("job", Json.String job.id);
    ("client", Json.String job.client);
    ("campaign", Json.String job.name);
    ("dir", Json.String job.dir);
    ("status", Json.String (state_string job.state));
    ("total", Json.Int job.total);
    ("pending", Json.Int job.of_);
    ("done", Json.Int job.done_cells);
    ("ran", Json.Int job.ran);
    ("cached", Json.Int job.cached);
    ("reused", Json.Int job.plan.Campaign.p_reused);
    ("corrupted", Json.Int (List.length job.plan.Campaign.p_corrupt));
    ("remaining", Json.Int (job.of_ - job.done_cells));
    ( "manifest",
      match job.manifest with Some p -> Json.String p | None -> Json.Null );
  ]
  @ match job.error with Some m -> [ ("error", Json.String m) ] | None -> []

(* Transition a job whose work has drained (or been cleared) to its
   terminal state, emit the Finished event and release its event log. *)
let maybe_finish job =
  if (not (terminal job.state)) && job.queue = [] && job.inflight = 0 then begin
    let remaining = Campaign.remaining job.plan in
    let manifest = if remaining = 0 then Campaign.finalize job.plan else None in
    job.manifest <- manifest;
    emit job
      (Campaign.Finished
         {
           ran = job.ran;
           cached = job.cached;
           reused = job.plan.Campaign.p_reused;
           corrupted = List.length job.plan.Campaign.p_corrupt;
           remaining;
           manifest;
         });
    job.state <-
      (match job.error with
      | Some m -> Failed m
      | None ->
        if manifest <> None then Done
        else if job.cancelled then Cancelled
        else Failed "campaign incomplete");
    Eventlog.close job.log
  end

(* ---------- the scheduler thread ---------- *)

let promote t =
  let slots = ref (t.config.max_jobs - count_jobs t (fun j -> j.state = Running)) in
  iter_jobs t (fun j ->
      if !slots > 0 && j.state = Queued then begin
        j.state <- Running;
        decr slots
      end)

(* One cell per running job per pass, repeating until the batch is full
   or every queue is dry: a long campaign cannot starve a short one. *)
let take_batch t limit =
  let acc = ref [] and count = ref 0 in
  let progressed = ref true in
  while !count < limit && !progressed do
    progressed := false;
    iter_jobs t (fun job ->
        if !count < limit && job.state = Running then
          match job.queue with
          | [] -> ()
          | c :: rest ->
            job.queue <- rest;
            job.inflight <- job.inflight + 1;
            acc := (job, c) :: !acc;
            incr count;
            progressed := true)
  done;
  Array.of_list (List.rev !acc)

let record job cell outcome =
  job.inflight <- job.inflight - 1;
  (match outcome with
  | Ok provenance ->
    job.done_cells <- job.done_cells + 1;
    (match provenance with
    | `Ran -> job.ran <- job.ran + 1
    | `Cached -> job.cached <- job.cached + 1);
    let elapsed = Unix.gettimeofday () -. job.started_at in
    let rate =
      if elapsed > 0.0 then float_of_int job.done_cells /. elapsed else 0.0
    in
    let eta =
      if rate > 0.0 then float_of_int (job.of_ - job.done_cells) /. rate else 0.0
    in
    emit job
      (Campaign.Cell_done
         {
           index = cell.Campaign.index;
           address = cell.Campaign.address;
           cached = (provenance = `Cached);
           done_ = job.done_cells;
           of_ = job.of_;
           elapsed_s = elapsed;
           cells_per_s = rate;
           eta_s = eta;
         })
  | Error msg ->
    (* A failing cell aborts its job (finished cells stay checkpointed
       for a later resume) without touching the other campaigns. *)
    job.error <- Some (Printf.sprintf "cell %S failed: %s" cell.Campaign.address msg);
    job.queue <- []);
  maybe_finish job

let scheduler t =
  let limit = max 1 (Pool.size t.pool) in
  Mutex.lock t.mu;
  let rec loop () =
    if t.stop then Mutex.unlock t.mu
    else begin
      promote t;
      let batch = take_batch t limit in
      if Array.length batch = 0 then begin
        Condition.wait t.cond t.mu;
        loop ()
      end
      else begin
        Mutex.unlock t.mu;
        let outcomes = Array.make (Array.length batch) (Error "not run") in
        Pool.run t.pool ~n:(Array.length batch) (fun i ->
            let job, cell = batch.(i) in
            outcomes.(i) <-
              (try Ok (Campaign.execute_cell job.plan cell)
               with exn -> Error (Printexc.to_string exn)));
        Mutex.lock t.mu;
        Array.iteri (fun i (job, cell) -> record job cell outcomes.(i)) batch;
        Condition.broadcast t.cond;
        loop ()
      end
    end
  in
  loop ()

(* ---------- request handling ---------- *)

let err kind fmt = Printf.ksprintf (fun m -> Error (kind, m)) fmt

let submit t (s : Protocol.submit) =
  let grid_result =
    match s.Protocol.grid with
    | `Inline g -> Sweep.Grid.of_inline g
    | `Doc d -> Sweep.Grid.of_json d
  in
  match grid_result with
  | Error msg -> err Protocol.Grid_error "%s" msg
  | Ok grid -> (
    let cells = Sweep.Grid.cells grid in
    let n_cells = List.length cells in
    if n_cells > t.config.max_cells_per_submit then
      err Protocol.Quota_exceeded
        "submission expands to %d cells; the per-submission quota is %d"
        n_cells t.config.max_cells_per_submit
    else begin
      (* Canonicalize the output directory so two spellings of one path
         ("out", "./out", "out/") cannot be admitted concurrently and
         race on the same checkpoints. *)
      mkdir_p s.Protocol.out;
      let dir =
        try Unix.realpath s.Protocol.out
        with Unix.Unix_error _ | Sys_error _ -> s.Protocol.out
      in
      let reservation =
        { r_client = s.Protocol.client; r_dir = dir; r_cells = n_cells }
      in
      Mutex.lock t.mu;
      let admitted =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.mu)
          (fun () ->
            if t.stop then err Protocol.Busy "daemon is shutting down"
            else if
              client_inflight t s.Protocol.client + n_cells
              > t.config.max_inflight_per_client
            then
              err Protocol.Quota_exceeded
                "client %S would have %d cells in flight; the quota is %d"
                s.Protocol.client
                (client_inflight t s.Protocol.client + n_cells)
                t.config.max_inflight_per_client
            else if
              count_jobs t active + List.length t.reserved
              >= t.config.max_jobs + t.config.queue_depth
            then
              err Protocol.Busy "%d campaigns already active (max %d running + %d queued)"
                (count_jobs t active + List.length t.reserved)
                t.config.max_jobs t.config.queue_depth
            else if
              count_jobs t (fun j -> active j && j.dir = dir) > 0
              || List.exists (fun r -> r.r_dir = dir) t.reserved
            then err Protocol.Busy "an active campaign already owns directory %s" dir
            else begin
              t.reserved <- reservation :: t.reserved;
              t.seq <- t.seq + 1;
              Ok (Printf.sprintf "job-%06d" t.seq)
            end)
      in
      let release () =
        t.reserved <- List.filter (fun r -> r != reservation) t.reserved
      in
      match admitted with
      | Error _ as e -> e
      | Ok id -> (
        let campaign_config =
          {
            Campaign.dir;
            master = s.Protocol.master;
            resume = s.Protocol.resume;
            max_cells = None;
            domains = Some 1;  (* unused: the daemon drives execute_cell itself *)
            cache = t.store;
            progress = ignore;
          }
        in
        (* Planning (stat + parse + digest of existing checkpoints) can
           take seconds on a large resume: run it with the lock released
           so the scheduler and other RPCs keep flowing. The reservation
           holds this submission's quota slot and directory meanwhile. *)
        let planned =
          try Campaign.plan campaign_config ~name:grid.Sweep.Grid.name ~cells
          with exn -> Error (Printexc.to_string exn)
        in
        match planned with
        | Error msg ->
          Mutex.lock t.mu;
          release ();
          Mutex.unlock t.mu;
          err Protocol.Grid_error "%s" msg
        | Ok plan ->
          let pending = plan.Campaign.p_pending in
          let job =
            {
              id;
              client = s.Protocol.client;
              name = grid.Sweep.Grid.name;
              dir;
              plan;
              total = n_cells;
              of_ = List.length pending;
              started_at = Unix.gettimeofday ();
              log = Eventlog.open_ ~path:(Filename.concat dir "events.jsonl");
              queue = pending;
              inflight = 0;
              done_cells = 0;
              ran = 0;
              cached = 0;
              state = Queued;
              cancelled = false;
              manifest = None;
              error = None;
            }
          in
          (* The job is not yet visible to any other thread, so the
             Started banner and — when nothing is pending — the finalize
             digest pass in [maybe_finish] also run without the lock. *)
          emit job
            (Campaign.Started
               {
                 name = job.name;
                 total = job.total;
                 pending = job.of_;
                 reused = plan.Campaign.p_reused;
                 corrupted = List.length plan.Campaign.p_corrupt;
               });
          List.iter
            (fun (c, path, reason) ->
              emit job
                (Campaign.Corrupt_rerun
                   {
                     index = c.Campaign.index;
                     address = c.Campaign.address;
                     path;
                     reason;
                   }))
            plan.Campaign.p_corrupt;
          maybe_finish job;  (* nothing pending: complete immediately *)
          Mutex.lock t.mu;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.mu)
            (fun () ->
              release ();
              if t.stop && not (terminal job.state) then begin
                (* The drain in [run] may already have passed: close the
                   job out here (checkpoints stay for a resubmission). *)
                job.cancelled <- true;
                job.queue <- [];
                maybe_finish job;
                err Protocol.Busy "daemon is shutting down"
              end
              else begin
                Hashtbl.replace t.jobs id job;
                t.order <- t.order @ [ id ];
                Condition.broadcast t.cond;
                Ok (Protocol.ok_response (job_fields job))
              end))
    end)

let with_job t id f =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> err Protocol.Unknown_job "no such job %S" id
      | Some job -> f job)

let status t id = with_job t id (fun job -> Ok (Protocol.ok_response (job_fields job)))

let cancel t id =
  let r =
    with_job t id (fun job ->
        if not (terminal job.state) then begin
          job.cancelled <- true;
          job.queue <- [];
          maybe_finish job
        end;
        Ok (Protocol.ok_response (job_fields job)))
  in
  Mutex.lock t.mu;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  r

let stats t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let jobs = ref [] in
      iter_jobs t (fun j -> jobs := Json.Obj (job_fields j) :: !jobs);
      let cache =
        match t.store with
        | None -> Json.Null
        | Some s ->
          let st = Cellstore.stats s in
          Json.Obj
            [
              ("dir", Json.String (Cellstore.dir s));
              ("hits", Json.Int st.Cellstore.hits);
              ("misses", Json.Int st.Cellstore.misses);
              ("puts", Json.Int st.Cellstore.puts);
              ("entries", Json.Int (Cellstore.entries s));
            ]
      in
      Ok
        (Protocol.ok_response
           [
             ("domains", Json.Int (Pool.size t.pool));
             ("max_jobs", Json.Int t.config.max_jobs);
             ("queue_depth", Json.Int t.config.queue_depth);
             ("max_cells_per_submit", Json.Int t.config.max_cells_per_submit);
             ("max_inflight_per_client", Json.Int t.config.max_inflight_per_client);
             ("running", Json.Int (count_jobs t (fun j -> j.state = Running)));
             ("queued", Json.Int (count_jobs t (fun j -> j.state = Queued)));
             ("jobs", Json.List (List.rev !jobs));
             ("cache", cache);
           ]))

(* ---------- connection handling ---------- *)

(* With SIGPIPE ignored (see [run]), a write to a disconnected client
   surfaces as [Sys_error] (EPIPE); raise [Client_gone] so streaming
   loops stop instead of tailing a peer that is no longer there. *)
exception Client_gone

let write_client oc s =
  try
    output_string oc s;
    flush oc
  with Sys_error _ -> raise Client_gone

let send oc doc = write_client oc (Json.to_string doc ^ "\n")

(* Forward the job's events.jsonl verbatim, tailing until the job is
   terminal and the file is drained. Torn lines are impossible by the
   Eventlog contract; a partial final line just waits for its newline. *)
let stream_events t oc id =
  match with_job t id (fun job -> Ok job.dir) with
  | Error (kind, msg) -> send oc (Protocol.error_response kind msg)
  | Ok dir ->
    let path = Filename.concat dir "events.jsonl" in
    let offset = ref 0 in
    let forward () =
      if not (Sys.file_exists path) then false
      else begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let size = in_channel_length ic in
            if size <= !offset then false
            else begin
              seek_in ic !offset;
              let chunk = really_input_string ic (size - !offset) in
              (* Forward only complete lines; a trailing fragment stays
                 for the next pass (it cannot happen with Eventlog
                 writers, but cheap to be safe). *)
              match String.rindex_opt chunk '\n' with
              | None -> false
              | Some last ->
                write_client oc (String.sub chunk 0 (last + 1));
                offset := !offset + last + 1;
                true
            end)
      end
    in
    let rec tail () =
      let term =
        match with_job t id (fun job -> Ok (terminal job.state)) with
        | Ok b -> b
        | Error _ -> true
      in
      let got = try forward () with Sys_error _ -> false in
      if term && not got then
        match with_job t id (fun job -> Ok (Protocol.ok_response (job_fields job))) with
        | Ok doc -> send oc doc
        | Error (kind, msg) -> send oc (Protocol.error_response kind msg)
      else begin
        if not got then Thread.delay 0.05;
        tail ()
      end
    in
    (try tail () with Client_gone -> ())

let handle t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () = try close_out oc with _ -> (try Unix.close fd with _ -> ()) in
  Fun.protect ~finally (fun () ->
      match input_line ic with
      | exception End_of_file -> ()
      | exception Sys_error _ -> ()
      | line -> (
        let req =
          match Json.of_string line with
          | Error e -> Error (Printf.sprintf "request is not JSON: %s" e)
          | Ok doc -> Protocol.request_of_json doc
        in
        match req with
        | Error msg -> send oc (Protocol.error_response Protocol.Bad_request msg)
        | Ok (Protocol.Events { job }) -> stream_events t oc job
        | Ok req ->
          let result =
            try
              match req with
              | Protocol.Submit s -> submit t s
              | Protocol.Status { job } -> status t job
              | Protocol.Cancel { job } -> cancel t job
              | Protocol.Stats -> stats t
              | Protocol.Shutdown ->
                Mutex.lock t.mu;
                t.stop <- true;
                Condition.broadcast t.cond;
                Mutex.unlock t.mu;
                Ok (Protocol.ok_response [ ("stopping", Json.Bool true) ])
              | Protocol.Events _ -> assert false
            with exn ->
              Error (Protocol.Server_error, Printexc.to_string exn)
          in
          (match result with
          | Ok doc -> send oc doc
          | Error (kind, msg) -> send oc (Protocol.error_response kind msg))))

(* ---------- lifecycle ---------- *)

let probe_socket path =
  if not (Sys.file_exists path) then Ok ()
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close fd;
      Error (Printf.sprintf "socket %s is already being served" path)
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
  end

(* A self-connection: wakes the accept loop after [t.stop] is set. *)
let poke path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let run config =
  (* Clients can vanish mid-reply (Ctrl-C during [client watch]);
     without this, the first write to the closed socket would
     SIGPIPE-kill the whole daemon — and every running campaign —
     instead of raising a catchable EPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match probe_socket config.socket with
  | Error _ as e -> e
  | Ok () -> (
    mkdir_p (Filename.dirname config.socket);
    let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind listener (Unix.ADDR_UNIX config.socket) with
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close listener;
      Error
        (Printf.sprintf "cannot bind %s: %s" config.socket (Unix.error_message e))
    | () ->
      Unix.listen listener 16;
      let domains =
        match config.domains with Some d -> d | None -> Pool.default_domains ()
      in
      let t =
        {
          config;
          store = Option.map (fun dir -> Cellstore.open_ ~dir) config.cache;
          pool = Pool.create ~domains;
          mu = Mutex.create ();
          cond = Condition.create ();
          jobs = Hashtbl.create 16;
          order = [];
          reserved = [];
          seq = 0;
          stop = false;
        }
      in
      let sched = Thread.create scheduler t in
      (* Handler threads prune themselves on exit, so the table only
         holds live connections — a long-lived daemon does not
         accumulate one dead thread per past request. *)
      let hmu = Mutex.create () in
      let handlers : (int, Thread.t) Hashtbl.t = Hashtbl.create 16 in
      let rec accept_loop () =
        match Unix.accept listener with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          ()  (* listener gone: fall through to the drain below *)
        | exception Unix.Unix_error (e, _, _) ->
          (* EMFILE, ECONNABORTED, ...: transient — back off and keep
             serving rather than tearing down every running campaign. *)
          Printf.eprintf "cobra serve: accept: %s\n%!" (Unix.error_message e);
          Thread.delay 0.1;
          accept_loop ()
        | fd, _ ->
          Mutex.lock t.mu;
          let stopping = t.stop in
          Mutex.unlock t.mu;
          if stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            (* [hmu] is held across creation, so the thread cannot
               outrun its own registration below. *)
            Mutex.lock hmu;
            let th =
              Thread.create
                (fun fd ->
                  Mutex.lock hmu;
                  Mutex.unlock hmu;
                  (try handle t fd with _ -> ());
                  Mutex.lock hmu;
                  Hashtbl.remove handlers (Thread.id (Thread.self ()));
                  Mutex.unlock hmu;
                  (* A shutdown request must also unblock this accept. *)
                  Mutex.lock t.mu;
                  let stop_now = t.stop in
                  Mutex.unlock t.mu;
                  if stop_now then poke config.socket)
                fd
            in
            Hashtbl.replace handlers (Thread.id th) th;
            Mutex.unlock hmu;
            accept_loop ()
          end
      in
      accept_loop ();
      (* Normally [t.stop] is already set (that is what ended the accept
         loop); setting it here too keeps the drain sound if the loop
         died on a fatal accept error instead. *)
      Mutex.lock t.mu;
      t.stop <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      (* Drain: the scheduler finishes its in-flight batch and exits;
         unfinished jobs are closed out as cancelled (their checkpoints
         stay on disk for a resubmission with resume). *)
      Thread.join sched;
      Mutex.lock t.mu;
      iter_jobs t (fun job ->
          if not (terminal job.state) then begin
            job.cancelled <- true;
            job.queue <- [];
            maybe_finish job
          end);
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      let live =
        Mutex.lock hmu;
        let l = Hashtbl.fold (fun _ th acc -> th :: acc) handlers [] in
        Mutex.unlock hmu;
        l
      in
      List.iter Thread.join live;
      Pool.shutdown t.pool;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
      Ok ())
