(** The [cobra.rpc/1] wire protocol of the campaign service.

    Transport: a Unix-domain stream socket carrying line-delimited JSON
    — every request and every response is one complete JSON object on
    one ['\n']-terminated line, UTF-8, no embedded newlines (the
    {!Simkit.Json} printer never emits one). A connection carries one
    request and its response(s); clients reconnect per call.

    {2 Requests}

    Every request is an object with an ["op"] field:

    - [{"op":"submit","client":C,"out":DIR,"master":M,"resume":B,
       "grid":INLINE}] — or ["grid_json":DOC] carrying a full
      [cobra.sweep-grid/1] document instead of the inline string.
      Submits a sweep campaign: the grid is expanded to cells, sharded
      across the daemon's domain pool, checkpointed under [DIR] exactly
      as the batch [cobra sweep] path would (byte-identical records and
      manifest).
    - [{"op":"status","job":J}] — one snapshot of the job.
    - [{"op":"events","job":J}] — streamed: the server replays the
      job's [events.jsonl] lines (see {!Simkit.Campaign.event_to_json})
      and keeps tailing until the job reaches a terminal state, then
      sends one ordinary response line. Event lines carry no ["rpc"]
      field — that is how clients tell them from the terminal response.
    - [{"op":"cancel","job":J}] — stop scheduling the job's remaining
      cells (in-flight cells finish and are checkpointed; the job can
      later be resubmitted with [resume]).
    - [{"op":"stats"}] — daemon-wide snapshot: jobs, quotas, cache
      hit/miss/put counters.
    - [{"op":"shutdown"}] — stop accepting work and exit once in-flight
      cells finish (documented extension beyond the five core ops).

    {2 Responses}

    Every response carries [{"rpc":"cobra.rpc/1","ok":true,...}] on
    success or [{"rpc":"cobra.rpc/1","ok":false,"error":{"kind":K,
    "message":S}}] on failure, where [K] is one of [bad-request],
    [unknown-job], [quota-exceeded], [busy], [grid-error],
    [server-error] (see {!error_kind}). *)

val version : string
(** ["cobra.rpc/1"] *)

type submit = {
  client : string;  (** quota accounting identity *)
  grid : [ `Inline of string | `Doc of Simkit.Json.t ];
  out : string;  (** campaign checkpoint/output directory *)
  master : int;  (** master seed *)
  resume : bool;  (** allow continuing an initialised directory *)
}

type request =
  | Submit of submit
  | Status of { job : string }
  | Events of { job : string }
  | Cancel of { job : string }
  | Stats
  | Shutdown

(** Typed refusals. [Quota_exceeded] and [Busy] are the admission
    control surface: per-client limits and daemon saturation
    respectively. *)
type error_kind =
  | Bad_request  (** malformed request line or missing field *)
  | Unknown_job  (** no such job id *)
  | Quota_exceeded  (** per-client cell or in-flight quota *)
  | Busy  (** daemon saturated, directory in use, or shutting down *)
  | Grid_error  (** grid failed to parse/validate, or plan was refused *)
  | Server_error  (** unexpected internal failure *)

val error_kind_to_string : error_kind -> string
val error_kind_of_string : string -> (error_kind, string) result

val request_to_json : request -> Simkit.Json.t

(** [request_of_json doc] parses a request line; inverse of
    {!request_to_json} on its image. *)
val request_of_json : Simkit.Json.t -> (request, string) result

(** [ok_response fields] is [{"rpc":version,"ok":true}] extended with
    [fields]. *)
val ok_response : (string * Simkit.Json.t) list -> Simkit.Json.t

val error_response : error_kind -> string -> Simkit.Json.t

(** [is_response doc] — does [doc] carry the ["rpc"] marker? Event
    lines streamed by the [events] op do not. *)
val is_response : Simkit.Json.t -> bool

(** [response_error doc] extracts the typed error of a failed response;
    [None] when [doc.ok] is [true]. *)
val response_error : Simkit.Json.t -> (error_kind * string) option
