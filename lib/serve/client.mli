(** Client side of the [cobra.rpc/1] campaign service.

    Each call opens one connection to the daemon's Unix socket, sends
    one request line and consumes the response. [Error _] covers both
    transport failures (cannot connect, truncated stream) and typed
    protocol refusals — the message embeds the error kind (e.g.
    ["quota-exceeded: ..."]); {!Protocol.response_error} is available to
    callers that need the kind programmatically from {!request}'s raw
    response. *)

(** [request ~socket req] performs one single-response call ([submit],
    [status], [cancel], [stats], [shutdown]) and returns the raw
    response document with [ok = true]. *)
val request :
  socket:string -> Protocol.request -> (Simkit.Json.t, string) result

(** [watch ~socket ~job on_event] streams the job's progress events
    (parsed with [Simkit.Campaign.event_of_json]) until the job reaches
    a terminal state, then returns the final status response. Events
    that fail to parse are skipped — the stream is observability, not
    the source of truth. *)
val watch :
  socket:string ->
  job:string ->
  (Simkit.Campaign.event -> unit) ->
  (Simkit.Json.t, string) result

(** Convenience wrapper: submit and return the job id. *)
val submit : socket:string -> Protocol.submit -> (string, string) result
