type t = {
  mutable prio : float array;
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0.0; data = Array.make capacity 0; len = 0 }

let size h = h.len
let is_empty h = h.len = 0

let ensure h needed =
  if needed > Array.length h.prio then begin
    let cap = ref (Array.length h.prio) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let prio = Array.make !cap 0.0 and data = Array.make !cap 0 in
    Array.blit h.prio 0 prio 0 h.len;
    Array.blit h.data 0 data 0 h.len;
    h.prio <- prio;
    h.data <- data
  end

let swap h i j =
  let p = h.prio.(i) and d = h.data.(i) in
  h.prio.(i) <- h.prio.(j);
  h.data.(i) <- h.data.(j);
  h.prio.(j) <- p;
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(i) < h.prio.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.len && h.prio.(left) < h.prio.(!smallest) then smallest := left;
  if right < h.len && h.prio.(right) < h.prio.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~priority ~payload =
  ensure h (h.len + 1);
  h.prio.(h.len) <- priority;
  h.data.(h.len) <- payload;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let min h = if h.len = 0 then None else Some (h.prio.(0), h.data.(0))

let pop h =
  if h.len = 0 then invalid_arg "Heap.pop: empty";
  let out = (h.prio.(0), h.data.(0)) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.prio.(0) <- h.prio.(h.len);
    h.data.(0) <- h.data.(h.len);
    sift_down h 0
  end;
  out

let clear h = h.len <- 0
