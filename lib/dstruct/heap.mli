(** Binary min-heaps keyed by float priorities, the event queue of the
    continuous-time simulators.

    Entries are (priority, payload) pairs; payloads are ints (vertex ids,
    event codes). No decrease-key: cancelled events are handled by the
    caller via lazy invalidation, which is both simpler and faster for
    epidemic workloads. *)

type t

(** [create ()] is an empty heap; [capacity] pre-allocates storage. *)
val create : ?capacity:int -> unit -> t

(** [size h] is the number of stored entries. *)
val size : t -> int

(** [is_empty h] is [size h = 0]. *)
val is_empty : t -> bool

(** [push h ~priority ~payload] inserts an entry. *)
val push : t -> priority:float -> payload:int -> unit

(** [min h] is the least-priority entry without removing it; [None] when
    empty. *)
val min : t -> (float * int) option

(** [pop h] removes and returns the least-priority entry; raises
    [Invalid_argument] when empty. Ties broken arbitrarily. *)
val pop : t -> float * int

(** [clear h] removes all entries without shrinking storage. *)
val clear : t -> unit
