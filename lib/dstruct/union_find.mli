(** Disjoint-set forests over [{0, ..., n - 1}] with union by rank and path
    halving. Used for incremental connectivity during graph generation. *)

type t

(** [create n] is the partition of [{0, ..., n-1}] into singletons. *)
val create : int -> t

(** [find u i] is the canonical representative of [i]'s class. *)
val find : t -> int -> int

(** [union u i j] merges the classes of [i] and [j]; returns [true] if they
    were previously distinct. *)
val union : t -> int -> int -> bool

(** [same u i j] tests whether [i] and [j] share a class. *)
val same : t -> int -> int -> bool

(** [count u] is the current number of classes. *)
val count : t -> int
