type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len
let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Intvec: index out of range"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x
let unsafe_get v i = Array.unsafe_get v.data i

let ensure v needed =
  if needed > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < needed do cap := !cap * 2 done;
    let data = Array.make !cap 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Intvec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do f v.data.(i) done

let fold f init v =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); len = Array.length a }

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let sort v =
  let a = to_array v in
  Array.sort compare a;
  Array.blit a 0 v.data 0 v.len

let swap v i j =
  check v i; check v j;
  let tmp = v.data.(i) in
  v.data.(i) <- v.data.(j);
  v.data.(j) <- tmp
