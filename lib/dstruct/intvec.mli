(** Growable arrays of unboxed integers.

    Amortised O(1) [push]; O(1) random access. Used as frontier buffers and
    edge accumulators throughout the simulation engines. *)

type t

(** [create ()] is an empty vector. [capacity] pre-allocates storage. *)
val create : ?capacity:int -> unit -> t

(** [length v] is the number of stored elements. *)
val length : t -> int

(** [is_empty v] is [length v = 0]. *)
val is_empty : t -> bool

(** [get v i] is the [i]-th element; raises [Invalid_argument] out of range. *)
val get : t -> int -> int

(** [set v i x] replaces the [i]-th element. *)
val set : t -> int -> int -> unit

(** [push v x] appends [x]. *)
val push : t -> int -> unit

(** [pop v] removes and returns the last element; raises
    [Invalid_argument] if empty. *)
val pop : t -> int

(** [clear v] resets the length to 0 without shrinking storage. *)
val clear : t -> unit

(** [iter f v] applies [f] to elements in index order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f init v] folds left over the elements. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [to_array v] is a fresh array of the elements. *)
val to_array : t -> int array

(** [of_array a] is a vector containing the elements of [a]. *)
val of_array : int array -> t

(** [to_list v] lists the elements in index order. *)
val to_list : t -> int list

(** [sort v] sorts in place in increasing order. *)
val sort : t -> unit

(** [swap v i j] exchanges two elements. *)
val swap : t -> int -> int -> unit

(** [unsafe_get v i] skips the bounds check (callers must guarantee
    [0 <= i < length v]). *)
val unsafe_get : t -> int -> int
