(** [n] x 64 lane-occupancy matrices for the bit-sliced Monte-Carlo
    engine.

    A [Lanemat.t] stores, for each vertex [0 .. n - 1], its membership
    in 64 independent replica {e lanes}: lane [j] of every row taken
    together is the occupancy set of replica [j]. Because OCaml ints
    carry 63 bits, a row is two 32-bit cells in one flat int array —
    cell [2v] holds lanes 0..31 (the "lo" block), cell [2v + 1] lanes
    32..63 (the "hi" block) — the same 32-bits-per-word packing as
    {!Bitset}. Whenever an operation passes or returns a pair of cells,
    the order is [(lo, hi)].

    Row-cell reads and writes are O(1); whole-matrix reductions
    (completion masks, per-lane counts) are single passes over [2n]
    words. *)

type t

(** [lanes] is the number of replica lanes per row ([64]). *)
val lanes : int

(** [create n] is the all-empty matrix on vertices [0 .. n - 1]. *)
val create : int -> t

(** [capacity m] is the vertex count [n]. *)
val capacity : t -> int

(** [mem m v ~lane] tests vertex [v]'s membership in [lane]. Checked:
    out-of-range [v] or [lane] raises [Invalid_argument]. *)
val mem : t -> int -> lane:int -> bool

(** [add m v ~lane] / [remove m v ~lane] set or clear one bit. *)
val add : t -> int -> lane:int -> unit

val remove : t -> int -> lane:int -> unit

(** [clear m] empties every lane. *)
val clear : t -> unit

(** [blit ~src ~dst] overwrites [dst] with [src]; equal capacities
    required. *)
val blit : src:t -> dst:t -> unit

(** {1 Check-free row-cell access}

    The sliced steppers' inner loops read and write whole 32-lane cells.
    [0 <= v < capacity] is the caller's obligation; writes keep only the
    low 32 bits of the given word. *)

val unsafe_lo : t -> int -> int

val unsafe_hi : t -> int -> int

val unsafe_set_lo : t -> int -> int -> unit

val unsafe_set_hi : t -> int -> int -> unit

(** {1 Reductions} *)

(** [fold_and m] is the per-lane AND over every row, as [(lo, hi)]:
    bit [j] is set iff every vertex is occupied in lane [j] (the
    saturation / cover completion mask). The empty universe is
    vacuously full. *)
val fold_and : t -> int * int

(** [fold_or m] is the per-lane OR over every row: bit [j] is set iff
    lane [j] occupies at least one vertex (its complement is the
    extinction mask). *)
val fold_or : t -> int * int

(** [count_lane m ~lane] is the number of vertices occupied in [lane]. *)
val count_lane : t -> lane:int -> int

(** [counts m] is all 64 per-lane occupancy counts in one pass,
    [counts.(j) = count_lane m ~lane:j]. *)
val counts : t -> int array

(** [lane_mask k] is the [(lo, hi)] cell pair with exactly the lowest
    [k] lane bits set, [0 <= k <= 64]: the live-lane mask of a batch
    running [k] trials, used to keep phantom lanes out of every
    reduction. *)
val lane_mask : int -> int * int

(** [of_rows rows] packs a [bool array array] of shape [n] x 64
    (row [v], lane [j]); {!to_rows} unpacks. The model interface for
    property tests. *)
val of_rows : bool array array -> t

val to_rows : t -> bool array array
