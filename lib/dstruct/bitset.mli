(** Fixed-capacity sets of small integers, backed by a packed bit array.

    A [Bitset.t] represents a subset of [{0, ..., capacity - 1}]. All
    single-element operations are O(1); whole-set operations are
    O(capacity / word_size). Indices outside [0 .. capacity - 1] raise
    [Invalid_argument]. *)

type t

(** [create n] is the empty subset of [{0, ..., n - 1}]. [n] must be
    non-negative. *)
val create : int -> t

(** [capacity s] is the universe size [n] given at creation. *)
val capacity : t -> int

(** [mem s i] tests membership of [i]. *)
val mem : t -> int -> bool

(** [add s i] inserts [i]. *)
val add : t -> int -> unit

(** [remove s i] deletes [i]. *)
val remove : t -> int -> unit

(** [unsafe_mem], [unsafe_add], [unsafe_remove]: check-free variants of
    {!mem}/{!add}/{!remove} for simulation inner loops. Identical results
    for [0 <= i < capacity]; out-of-range indices are undefined
    behaviour. *)
val unsafe_mem : t -> int -> bool

val unsafe_add : t -> int -> unit

val unsafe_remove : t -> int -> unit

(** [add_seq s xs] inserts every element of [xs]. *)
val add_seq : t -> int Seq.t -> unit

(** [clear s] removes every element. *)
val clear : t -> unit

(** [fill s] inserts every element of the universe. *)
val fill : t -> unit

(** [cardinal s] is the number of elements, computed by popcount in
    O(capacity / word_size). *)
val cardinal : t -> int

(** [is_empty s] is [cardinal s = 0], without computing the cardinal. *)
val is_empty : t -> bool

(** [is_full s] tests whether [s] contains its whole universe. *)
val is_full : t -> bool

(** [copy s] is a fresh set with the same elements. *)
val copy : t -> t

(** [blit ~src ~dst] overwrites [dst] with the contents of [src]. The two
    sets must have equal capacity. *)
val blit : src:t -> dst:t -> unit

(** [union_into ~src ~dst] adds every element of [src] to [dst]. Equal
    capacities required. *)
val union_into : src:t -> dst:t -> unit

(** [inter_into ~src ~dst] removes from [dst] the elements not in [src].
    Equal capacities required. *)
val inter_into : src:t -> dst:t -> unit

(** [diff_into ~src ~dst] removes from [dst] every element of [src]. *)
val diff_into : src:t -> dst:t -> unit

(** [equal a b] tests extensional equality (capacities must match, else
    [false]). *)
val equal : t -> t -> bool

(** [subset a b] tests whether every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [iter f s] applies [f] to each element in increasing order.
    Implemented as a word scan with trailing-zero extraction: zero words
    cost O(1), so a sparse set over a large universe iterates in
    O(capacity / word_size + cardinal) rather than O(capacity). *)
val iter : (int -> unit) -> t -> unit

(** [word_size] is the number of universe indices packed per word
    ([32]). Word [w] covers indices [w * word_size .. w * word_size +
    word_size - 1]; see {!iter_words}. *)
val word_size : int

(** [iter_words f s] applies [f w cell] to every packed word in index
    order (including zero words). Bit [b] of [cell] (for
    [0 <= b < word_size]) is set iff [w * word_size + b] is a member.
    This is the raw traversal primitive under {!iter}/{!fold}; callers
    can use it for word-parallel set algebra without going through
    per-element callbacks. *)
val iter_words : (int -> int -> unit) -> t -> unit

(** [next_member s i] is the smallest member [>= i], or [None] if no
    member of [s] is [>= i] (always [None] for [i >= capacity]).
    [i] must be non-negative. O(capacity / word_size) worst case, O(1)
    when a member is nearby. *)
val next_member : t -> int -> int option

(** [fold f s init] folds over elements in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [to_list s] lists the elements in increasing order. *)
val to_list : t -> int list

(** [of_list n xs] is the subset of [{0, ..., n-1}] containing [xs]. *)
val of_list : int -> int list -> t

(** [choose s] is the smallest element, or [None] if empty. *)
val choose : t -> int option

(** [pp] prints as [{e1, e2, ...}]. *)
val pp : Format.formatter -> t -> unit
