(* Packed bit array: 32 bits per int cell so that index arithmetic is two
   shifts/masks rather than a division. Cell [i lsr 5], bit [i land 31].
   The last cell's unused high bits are kept at zero by construction, which
   lets [cardinal], [equal], [subset] and [is_full] work cell-wise. *)

type t = { words : int array; n : int }

let bits = 32
let mask = bits - 1
let shift = 5

let words_for n = if n = 0 then 0 else ((n - 1) lsr shift) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (words_for n) 0; n }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of range"

let mem s i =
  check s i;
  s.words.(i lsr shift) land (1 lsl (i land mask)) <> 0

let add s i =
  check s i;
  let w = i lsr shift in
  s.words.(w) <- s.words.(w) lor (1 lsl (i land mask))

let remove s i =
  check s i;
  let w = i lsr shift in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i land mask))

(* Check-free variants for simulation inner loops; [0 <= i < n] is the
   caller's obligation. *)
let unsafe_mem s i =
  Array.unsafe_get s.words (i lsr shift) land (1 lsl (i land mask)) <> 0

let unsafe_add s i =
  let w = i lsr shift in
  Array.unsafe_set s.words w (Array.unsafe_get s.words w lor (1 lsl (i land mask)))

let unsafe_remove s i =
  let w = i lsr shift in
  Array.unsafe_set s.words w (Array.unsafe_get s.words w land lnot (1 lsl (i land mask)))

let add_seq s xs = Seq.iter (add s) xs

let clear s = Array.fill s.words 0 (Array.length s.words) 0

let fill s =
  let nw = Array.length s.words in
  if nw > 0 then begin
    Array.fill s.words 0 nw ((1 lsl bits) - 1);
    (* Zero the bits above [n - 1] in the last cell. *)
    let used = s.n - (nw - 1) * bits in
    s.words.(nw - 1) <- (1 lsl used) - 1
  end

let popcount x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0x3F

(* Trailing-zero count of a nonzero 32-bit cell: isolate the lowest set
   bit, turn it into a mask of everything below it, popcount the mask.
   Branch-free, and exact for cells up to 2^32 - 1. *)
let ctz x = popcount ((x land -x) - 1)

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

(* Early-exit word scan; no cardinal, no closure allocation. *)
let is_empty s =
  let words = s.words in
  let nw = Array.length words in
  let rec go w = w >= nw || (Array.unsafe_get words w = 0 && go (w + 1)) in
  go 0

let is_full s = cardinal s = s.n

let copy s = { words = Array.copy s.words; n = s.n }

let same_capacity a b op =
  if a.n <> b.n then invalid_arg ("Bitset." ^ op ^ ": capacity mismatch")

let blit ~src ~dst =
  same_capacity src dst "blit";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let union_into ~src ~dst =
  same_capacity src dst "union_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into ~src ~dst =
  same_capacity src dst "inter_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let diff_into ~src ~dst =
  same_capacity src dst "diff_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
  done

let equal a b = a.n = b.n && a.words = b.words

let subset a b =
  same_capacity a b "subset";
  let rec go w =
    w >= Array.length a.words
    || (a.words.(w) land lnot b.words.(w) = 0 && go (w + 1))
  in
  go 0

(* Word-scan traversal: zero cells cost one compare each; nonzero cells
   cost one trailing-zero scan per member (lowest set bit cleared with
   [cell land (cell - 1)]). Members are produced in increasing order —
   the same order as the old bit-by-bit loop — so traversal-driven RNG
   draw sequences are unchanged. Each cell is read once up front, as
   before, so mutation of other cells during iteration behaves
   identically. *)
let iter f s =
  let words = s.words in
  for w = 0 to Array.length words - 1 do
    let cell = ref (Array.unsafe_get words w) in
    if !cell <> 0 then begin
      let base = w lsl shift in
      while !cell <> 0 do
        f (base + ctz !cell);
        cell := !cell land (!cell - 1)
      done
    end
  done

let word_size = bits
let iter_words f s = Array.iteri f s.words

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let choose s =
  let words = s.words in
  let rec go w =
    if w >= Array.length words then None
    else begin
      let cell = Array.unsafe_get words w in
      if cell = 0 then go (w + 1) else Some ((w lsl shift) + ctz cell)
    end
  in
  go 0

let next_member s i =
  if i < 0 then invalid_arg "Bitset.next_member: negative index";
  if i >= s.n then None
  else begin
    let words = s.words in
    let rec go w cell =
      if cell <> 0 then Some ((w lsl shift) + ctz cell)
      else if w + 1 >= Array.length words then None
      else go (w + 1) (Array.unsafe_get words (w + 1))
    in
    let w0 = i lsr shift in
    (* Mask away the bits strictly below [i] in the first word. *)
    go w0 (Array.unsafe_get words w0 land lnot ((1 lsl (i land mask)) - 1))
  end

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (to_list s)
