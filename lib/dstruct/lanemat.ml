(* n x 64 lane-occupancy matrix for the bit-sliced Monte-Carlo engine:
   row [v] holds the membership of vertex [v] in 64 independent replica
   lanes. OCaml ints carry 63 bits, so a row is TWO 32-bit cells (the
   same 32-bits-per-int packing as Bitset): cell [2v] holds lanes
   0..31 ("lo"), cell [2v + 1] lanes 32..63 ("hi"). All whole-matrix
   reductions (completion masks, per-lane popcounts) are word scans. *)

type t = { cells : int array; n : int }

let lanes = 64
let block = 32
let cell_mask = 0xFFFFFFFF

let create n =
  if n < 0 then invalid_arg "Lanemat.create: negative capacity";
  { cells = Array.make (2 * n) 0; n }

let capacity m = m.n

let check m v =
  if v < 0 || v >= m.n then invalid_arg "Lanemat: vertex out of range"

let check_lane lane =
  if lane < 0 || lane >= lanes then invalid_arg "Lanemat: lane out of range"

(* Check-free row-cell accessors for the sliced steppers' inner loops;
   [0 <= v < capacity] is the caller's obligation. *)
let unsafe_lo m v = Array.unsafe_get m.cells (2 * v)
let unsafe_hi m v = Array.unsafe_get m.cells ((2 * v) + 1)
let unsafe_set_lo m v w = Array.unsafe_set m.cells (2 * v) (w land cell_mask)
let unsafe_set_hi m v w = Array.unsafe_set m.cells ((2 * v) + 1) (w land cell_mask)

let mem m v ~lane =
  check m v;
  check_lane lane;
  if lane < block then unsafe_lo m v land (1 lsl lane) <> 0
  else unsafe_hi m v land (1 lsl (lane - block)) <> 0

let add m v ~lane =
  check m v;
  check_lane lane;
  if lane < block then unsafe_set_lo m v (unsafe_lo m v lor (1 lsl lane))
  else unsafe_set_hi m v (unsafe_hi m v lor (1 lsl (lane - block)))

let remove m v ~lane =
  check m v;
  check_lane lane;
  if lane < block then unsafe_set_lo m v (unsafe_lo m v land lnot (1 lsl lane))
  else unsafe_set_hi m v (unsafe_hi m v land lnot (1 lsl (lane - block)))

let clear m = Array.fill m.cells 0 (Array.length m.cells) 0

let blit ~src ~dst =
  if src.n <> dst.n then invalid_arg "Lanemat.blit: capacity mismatch";
  Array.blit src.cells 0 dst.cells 0 (Array.length src.cells)

(* Completion masks: the per-lane AND (resp. OR) over every row. An
   empty universe is vacuously full (AND of nothing), matching
   [Bitset.is_full] on capacity 0. *)
let fold_and m =
  let lo = ref cell_mask and hi = ref cell_mask in
  for v = 0 to m.n - 1 do
    lo := !lo land unsafe_lo m v;
    hi := !hi land unsafe_hi m v
  done;
  (!lo, !hi)

let fold_or m =
  let lo = ref 0 and hi = ref 0 in
  for v = 0 to m.n - 1 do
    lo := !lo lor unsafe_lo m v;
    hi := !hi lor unsafe_hi m v
  done;
  (!lo, !hi)

(* Reuse Bitset's 32-bit SWAR popcount/ctz discipline. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0x3F

let ctz x = popcount ((x land -x) - 1)

let count_lane m ~lane =
  check_lane lane;
  let sel v = if lane < block then unsafe_lo m v else unsafe_hi m v in
  let bit = 1 lsl (lane land (block - 1)) in
  let c = ref 0 in
  for v = 0 to m.n - 1 do
    if sel v land bit <> 0 then incr c
  done;
  !c

(* All 64 per-lane popcounts in one pass: zero cells cost one compare,
   nonzero cells one trailing-zero scan per set lane bit. *)
let counts m =
  let out = Array.make lanes 0 in
  for v = 0 to m.n - 1 do
    let cell = ref (unsafe_lo m v) in
    while !cell <> 0 do
      let lane = ctz !cell in
      out.(lane) <- out.(lane) + 1;
      cell := !cell land (!cell - 1)
    done;
    let cell = ref (unsafe_hi m v) in
    while !cell <> 0 do
      let lane = block + ctz !cell in
      out.(lane) <- out.(lane) + 1;
      cell := !cell land (!cell - 1)
    done
  done;
  out

(* Mask with the lowest [k] lanes set, as (lo, hi) cells: the live-lane
   mask for a batch of [k] trials (phantom lanes stay out of every
   reduction). *)
let lane_mask k =
  if k < 0 || k > lanes then invalid_arg "Lanemat.lane_mask: k outside [0, 64]";
  if k >= lanes then (cell_mask, cell_mask)
  else if k >= block then (cell_mask, (1 lsl (k - block)) - 1)
  else ((1 lsl k) - 1, 0)

let of_rows rows =
  let n = Array.length rows in
  let m = create n in
  Array.iteri
    (fun v row ->
      if Array.length row <> lanes then
        invalid_arg "Lanemat.of_rows: row must have 64 lanes";
      Array.iteri (fun lane b -> if b then add m v ~lane) row)
    rows;
  m

let to_rows m =
  Array.init m.n (fun v -> Array.init lanes (fun lane -> mem m v ~lane))
