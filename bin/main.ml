(* cobra_cli — command-line front end for the COBRA/BIPS reproduction.

   Subcommands: exp (run experiments), sweep (checkpointed campaigns),
   cover, bips, walk, push, pull, coalesce, explore, duality, spectral,
   gen, herd, contact, exact. Every stochastic command takes --seed and
   prints enough configuration to be reproduced exactly.

   Shared flags/converters live in Cli_common; single-shot process
   measurement is routed through the Cobra.Kernel instances (the same
   engine the sweep subsystem drives), with test/cli pinning the output
   byte-for-byte against the historical per-process loops. *)

open Cmdliner
open Cli_common
module K = Cobra.Kernel

(* ---------- exp ---------- *)

let exp_cmd =
  let ids_t =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids or slugs.")
  in
  let scale_t =
    Arg.(
      value
      & opt scale_conv Simkit.Scale.Standard
      & info [ "scale" ] ~docv:"SCALE" ~doc:"quick | standard | full.")
  in
  let list_t =
    Arg.(value & flag & info [ "list" ] ~doc:"List available experiments and exit.")
  in
  let out_t =
    out_t ~default:"_results"
      ~doc:"Directory the json/csv formats write artifacts into."
  in
  let format_t =
    Arg.(
      value
      & opt (enum [ ("console", `Console); ("json", `Json); ("csv", `Csv) ]) `Console
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Result sink: console (human report), json (one artifact \
             document per experiment plus manifest.json), csv (one file \
             per table).")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit non-zero if any experiment's verdict fails (CI gate); \
             results are still written.")
  in
  let run ids scale list seed out format check =
    if list then begin
      List.iter
        (fun s ->
          Printf.printf "%-4s %-24s %s\n" s.Experiments.Spec.id
            s.Experiments.Spec.slug s.Experiments.Spec.title)
        Experiments.Registry.all;
      0
    end
    else begin
      let master = Simkit.Seeds.master ~default:seed () in
      let scale = Simkit.Scale.of_env ~default:scale () in
      let missing =
        List.filter (fun id -> Experiments.Registry.find id = None) ids
      in
      if missing <> [] then begin
        Printf.eprintf "unknown experiment(s): %s\n" (String.concat ", " missing);
        1
      end
      else begin
        let specs =
          match ids with
          | [] -> Experiments.Registry.all
          | ids -> List.map (fun id -> Option.get (Experiments.Registry.find id)) ids
        in
        let sink =
          match format with
          | `Console -> Simkit.Sink.console ()
          | `Json -> Simkit.Sink.json ~dir:out
          | `Csv -> Simkit.Sink.csv ~dir:out
        in
        if format = `Console && ids = [] then Experiments.Registry.engine_preamble ();
        let artifacts =
          Experiments.Registry.run_many specs ~sink ~scale ~master
        in
        if format = `Json then begin
          let path = Simkit.Sink.write_manifest ~dir:out artifacts in
          Printf.printf "wrote %s\n" path
        end;
        if check && not (Experiments.Registry.all_passed artifacts) then begin
          let failed =
            List.filter (fun a -> not (Simkit.Artifact.passed a)) artifacts
          in
          Printf.eprintf "check failed: %s\n"
            (String.concat ", "
               (List.map
                  (fun a -> a.Simkit.Artifact.meta.Simkit.Artifact.id)
                  failed));
          1
        end
        else 0
      end
    end
  in
  let doc =
    Printf.sprintf "Run reproduction experiments (%s)."
      (Experiments.Registry.id_range ())
  in
  Cmd.v (Cmd.info "exp" ~doc)
    Term.(const run $ ids_t $ scale_t $ list_t $ seed_t $ out_t $ format_t $ check_t)

(* ---------- sweep ---------- *)

let sweep_cmd =
  let grid_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "grid" ] ~docv:"FILE|INLINE"
          ~doc:
            "Parameter grid: a JSON grid file (schema cobra.sweep-grid/1) \
             or an inline description like \
             'graphs=cycle:12,complete:8;kernels=cobra,bips;branching=k=2;trials=5'.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Campaign checkpoint/output directory (default \
             _results/campaign-<name>).")
  in
  let resume_t =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue an interrupted campaign in --out: valid cell \
             checkpoints are reused, only missing cells run.")
  in
  let max_cells_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-cells" ] ~docv:"N"
          ~doc:"Run at most N cells this invocation, then stop (resumable).")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:"Domain-pool size for this campaign (default: COBRA_DOMAINS).")
  in
  let list_kernels_t =
    Arg.(value & flag & info [ "list-kernels" ] ~doc:"List sweepable kernels and exit.")
  in
  let cache_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache directory (shareable between \
             campaigns and with the serve daemon): cells whose \
             (master, address, meta) already have a cached payload are \
             not recomputed.")
  in
  let engine_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Trial execution engine: 'scalar' (one replica per trial, the \
             historical streams) or 'lanes' (bit-sliced, 64 replicas per \
             word for cobra/bips/push/sis; other kernels fall back to \
             scalar). Overrides the grid's engine= key; part of the \
             campaign identity, so resume with the same engine.")
  in
  let run grid out resume max_cells seed domains list_kernels engine cache =
    if list_kernels then begin
      List.iter
        (fun k -> Printf.printf "%-10s %s\n" k.K.name k.K.doc)
        Sweep.Kernels.all;
      0
    end
    else
      match grid with
      | None ->
        Printf.eprintf "sweep: --grid is required (or --list-kernels)\n";
        2
      | Some grid_arg -> (
        match Sweep.Grid.load grid_arg with
        | Error msg ->
          Printf.eprintf "sweep: %s\n" msg;
          2
        | Ok grid -> (
          let engine_override =
            match engine with
            | None -> Ok None
            | Some s -> Result.map Option.some (Sweep.Kernels.engine_of_string s)
          in
          match engine_override with
          | Error msg ->
            Printf.eprintf "sweep: %s\n" msg;
            2
          | Ok override -> (
          let grid =
            match override with
            | None -> grid
            | Some engine -> { grid with Sweep.Grid.engine }
          in
          let master = Simkit.Seeds.master ~default:seed () in
          let dir =
            match out with
            | Some d -> d
            | None -> "_results/campaign-" ^ grid.Sweep.Grid.name
          in
          let cells = Sweep.Grid.cells grid in
          Printf.printf
            "campaign %s: %d cells (%d graphs x %d kernels x %d branchings), \
             %d trials/cell, %s engine, master seed %d\n"
            grid.Sweep.Grid.name (List.length cells)
            (List.length grid.Sweep.Grid.graphs)
            (List.length grid.Sweep.Grid.kernels)
            (List.length grid.Sweep.Grid.branchings)
            grid.Sweep.Grid.trials
            (Sweep.Kernels.engine_to_string grid.Sweep.Grid.engine)
            master;
          let store =
            Option.map (fun dir -> Simkit.Cellstore.open_ ~dir) cache
          in
          let config =
            {
              Simkit.Campaign.dir;
              master;
              resume;
              max_cells;
              domains;
              cache = store;
              progress =
                (fun event ->
                  print_string (Simkit.Campaign.event_to_string event);
                  print_newline ();
                  flush stdout);
            }
          in
          match Simkit.Campaign.run config ~name:grid.Sweep.Grid.name ~cells with
          | Error msg ->
            Printf.eprintf "sweep: %s\n" msg;
            2
          | Ok r ->
            Printf.printf
              "cells: %d total, %d ran, %d cached, %d reused, %d corrupt re-run\n"
              r.Simkit.Campaign.total r.Simkit.Campaign.ran
              r.Simkit.Campaign.cached r.Simkit.Campaign.reused
              r.Simkit.Campaign.corrupted;
            (match store with
            | Some s ->
              let st = Simkit.Cellstore.stats s in
              Printf.printf "cache: %d hits, %d misses, %d puts (%s)\n"
                st.Simkit.Cellstore.hits st.Simkit.Cellstore.misses
                st.Simkit.Cellstore.puts (Simkit.Cellstore.dir s)
            | None -> ());
            (match r.Simkit.Campaign.manifest with
            | Some path ->
              Printf.printf "campaign complete: wrote %s\n" path;
              0
            | None ->
              Printf.printf
                "campaign incomplete: %d cells remaining — re-run with --resume\n"
                r.Simkit.Campaign.remaining;
              0))))
  in
  let doc =
    "Run a checkpointed sweep campaign over graph x kernel x branching grids."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ grid_t $ out_t $ resume_t $ max_cells_t $ seed_t $ domains_t
      $ list_kernels_t $ engine_t $ cache_t)

(* ---------- serve / client ---------- *)

let socket_t =
  Arg.(
    value
    & opt string "_results/cobra.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the campaign daemon listens on.")

let serve_cmd =
  let cache_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache shared by every campaign the \
             daemon runs (and with batch sweeps passing the same --cache).")
  in
  let max_jobs_t =
    Arg.(
      value & opt int 2
      & info [ "max-jobs" ] ~docv:"N" ~doc:"Campaigns running concurrently.")
  in
  let queue_depth_t =
    Arg.(
      value & opt int 8
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Additional campaigns allowed to wait; beyond this, submit is refused.")
  in
  let max_cells_t =
    Arg.(
      value & opt int 10_000
      & info [ "max-cells-per-submit" ] ~docv:"N"
          ~doc:"Largest grid (in cells) a single submission may expand to.")
  in
  let max_inflight_t =
    Arg.(
      value & opt int 50_000
      & info [ "max-inflight-per-client" ] ~docv:"N"
          ~doc:"Unfinished-cell quota per client across its active jobs.")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:"Domain-pool size shared by all campaigns (default: COBRA_DOMAINS).")
  in
  let run socket cache max_jobs queue_depth max_cells max_inflight domains =
    let config =
      {
        Serve.Daemon.socket;
        cache;
        max_jobs;
        queue_depth;
        max_cells_per_submit = max_cells;
        max_inflight_per_client = max_inflight;
        domains;
      }
    in
    Printf.printf "cobra serve: listening on %s (%s)\n%!" socket
      (match cache with
      | Some d -> "cache " ^ d
      | None -> "no result cache");
    match Serve.Daemon.run config with
    | Ok () ->
      Printf.printf "cobra serve: shut down\n";
      0
    | Error msg ->
      Printf.eprintf "serve: %s\n" msg;
      1
  in
  let doc = "Run the campaign daemon (protocol cobra.rpc/1 over a Unix socket)." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_t $ cache_t $ max_jobs_t $ queue_depth_t $ max_cells_t
      $ max_inflight_t $ domains_t)

let client_cmd =
  let job_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB") in
  let print_event e = Printf.printf "%s\n%!" (Simkit.Campaign.event_to_string e) in
  let print_status doc =
    let str k =
      Option.value ~default:"-"
        (Option.bind (Simkit.Json.member k doc) Simkit.Json.to_string_opt)
    in
    let int k =
      match Simkit.Json.member k doc with Some (Simkit.Json.Int i) -> i | _ -> 0
    in
    Printf.printf
      "%s %s (campaign %s, client %s): %d/%d done (%d ran, %d cached, %d \
       reused) -> %s\n"
      (str "job") (str "status") (str "campaign") (str "client") (int "done")
      (int "pending") (int "ran") (int "cached") (int "reused")
      (match Simkit.Json.member "manifest" doc with
      | Some (Simkit.Json.String p) -> p
      | _ -> str "dir")
  in
  let fail msg =
    Printf.eprintf "client: %s\n" msg;
    1
  in
  let submit_cmd =
    let grid_t =
      Arg.(
        required
        & opt (some string) None
        & info [ "grid" ] ~docv:"FILE|INLINE"
            ~doc:"Parameter grid, as for $(b,cobra sweep).")
    in
    let out_t =
      Arg.(
        required
        & opt (some string) None
        & info [ "out" ] ~docv:"DIR" ~doc:"Campaign output directory (daemon-side).")
    in
    let default_client =
      match (Sys.getenv_opt "USER", Sys.getenv_opt "LOGNAME") with
      | Some u, _ | None, Some u -> u
      | None, None -> "anonymous"
    in
    let client_t =
      Arg.(
        value & opt string default_client
        & info [ "client" ] ~docv:"NAME" ~doc:"Client identity for quota accounting.")
    in
    let resume_t =
      Arg.(value & flag & info [ "resume" ] ~doc:"Continue an interrupted campaign.")
    in
    let watch_t =
      Arg.(
        value & flag
        & info [ "watch" ] ~doc:"Stream progress events until the job finishes.")
    in
    let run socket grid out client resume watch seed =
      let master = Simkit.Seeds.master ~default:seed () in
      (* Mirror Sweep.Grid.load: an existing file that fails to parse is
         a user error to report, not an inline grid to forward. *)
      let grid_result =
        if Sys.file_exists grid then
          match Simkit.Json.of_file grid with
          | Ok doc -> Ok (`Doc doc)
          | Error e -> Error (Printf.sprintf "%s: %s" grid e)
        else Ok (`Inline grid)
      in
      match
        Result.bind grid_result (fun grid ->
            let s = { Serve.Protocol.client; grid; out; master; resume } in
            Serve.Client.request ~socket (Serve.Protocol.Submit s))
      with
      | Error msg -> fail msg
      | Ok doc ->
        print_status doc;
        if not watch then 0
        else (
          match
            Option.bind (Simkit.Json.member "job" doc) Simkit.Json.to_string_opt
          with
          | None -> fail "malformed submit response: no job id"
          | Some job -> (
            match Serve.Client.watch ~socket ~job print_event with
            | Error msg -> fail msg
            | Ok final ->
              print_status final;
              (match
                 Option.bind (Simkit.Json.member "status" final)
                   Simkit.Json.to_string_opt
               with
              | Some "done" -> 0
              | _ -> 1)))
    in
    Cmd.v (Cmd.info "submit" ~doc:"Submit a sweep grid to the daemon.")
      Term.(
        const run $ socket_t $ grid_t $ out_t $ client_t $ resume_t $ watch_t
        $ seed_t)
  in
  let status_cmd =
    let run socket job =
      match Serve.Client.request ~socket (Serve.Protocol.Status { job }) with
      | Error msg -> fail msg
      | Ok doc ->
        print_status doc;
        0
    in
    Cmd.v (Cmd.info "status" ~doc:"Print one status snapshot of a job.")
      Term.(const run $ socket_t $ job_t)
  in
  let watch_cmd =
    let run socket job =
      match Serve.Client.watch ~socket ~job print_event with
      | Error msg -> fail msg
      | Ok final ->
        print_status final;
        0
    in
    Cmd.v
      (Cmd.info "watch" ~doc:"Stream a job's progress events until it finishes.")
      Term.(const run $ socket_t $ job_t)
  in
  let cancel_cmd =
    let run socket job =
      match Serve.Client.request ~socket (Serve.Protocol.Cancel { job }) with
      | Error msg -> fail msg
      | Ok doc ->
        print_status doc;
        0
    in
    Cmd.v
      (Cmd.info "cancel"
         ~doc:"Stop scheduling a job's remaining cells (checkpoints are kept).")
      Term.(const run $ socket_t $ job_t)
  in
  let stats_cmd =
    let run socket =
      match Serve.Client.request ~socket Serve.Protocol.Stats with
      | Error msg -> fail msg
      | Ok doc ->
        print_string (Simkit.Json.to_string ~pretty:true doc);
        print_newline ();
        0
    in
    Cmd.v (Cmd.info "stats" ~doc:"Print the daemon-wide stats document.")
      Term.(const run $ socket_t)
  in
  let shutdown_cmd =
    let run socket =
      match Serve.Client.request ~socket Serve.Protocol.Shutdown with
      | Error msg -> fail msg
      | Ok _ ->
        Printf.printf "daemon stopping\n";
        0
    in
    Cmd.v (Cmd.info "shutdown" ~doc:"Ask the daemon to finish in-flight cells and exit.")
      Term.(const run $ socket_t)
  in
  let doc = "Talk to the campaign daemon (cobra.rpc/1)." in
  Cmd.group (Cmd.info "client" ~doc)
    [ submit_cmd; status_cmd; watch_cmd; cancel_cmd; stats_cmd; shutdown_cmd ]

(* ---------- cover ---------- *)

let cover_cmd =
  let scan_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "scan-starts" ] ~docv:"K"
          ~doc:
            "Instead of one start vertex, sample K distinct starts and report \
             per-start means plus the worst - an estimate of the paper's \
             COV(G) = max over start vertices.")
  in
  let run spec backend branching trials seed start cap csv scan =
    let g = build_graph spec ~backend ~seed in
    print_graph_line g spec;
    let params = { K.default_params with K.branching; start; cap } in
    (match scan with
    | None ->
      Printf.printf "COBRA cover time, branching %s, start %d, %d trials, seed %d\n"
        (Cobra.Branching.to_string branching)
        start trials seed;
      run_process_trials ?csv ~seed ~trials ~name:"cover time (rounds)"
        ~measure:(fun rng -> kernel_completion_time K.cobra g params rng)
        ()
    | Some k ->
      let n = Graph.View.n_vertices g in
      let k = min k n in
      let rng = Simkit.Seeds.tagged_rng ~master:seed ~tag:"cli:scan" in
      let starts = Prng.Sample.without_replacement rng ~k ~n in
      Printf.printf
        "COBRA cover time over %d sampled starts, branching %s, %d trials each\n" k
        (Cobra.Branching.to_string branching)
        trials;
      let worst = ref neg_infinity and worst_start = ref (-1) in
      Array.iter
        (fun start ->
          (* Each start gets its own hashed salt region: a linear scheme
             like [start * C + i] collides across starts once trials > C. *)
          let salt0 =
            Simkit.Seeds.salt_of_tag (Printf.sprintf "cli:scan:start=%d" start)
          in
          let params = { params with K.start } in
          let s = Stats.Summary.create () in
          for i = 0 to trials - 1 do
            let trial_rng =
              Simkit.Seeds.trial_rng ~master:seed ~salt:(salt0 + i)
            in
            match kernel_completion_time K.cobra g params trial_rng with
            | Some t -> Stats.Summary.add_int s t
            | None -> ()
          done;
          if Stats.Summary.count s > 0 then begin
            let m = Stats.Summary.mean s in
            Printf.printf "  start %6d: mean %.2f (max %.0f)\n" start m
              (Stats.Summary.max s);
            if m > !worst then begin
              worst := m;
              worst_start := start
            end
          end)
        starts;
      Printf.printf "worst sampled start: %d with mean %.2f (COV(G) estimate)\n"
        !worst_start !worst);
    0
  in
  let doc = "Measure COBRA cover times." in
  Cmd.v (Cmd.info "cover" ~doc)
    Term.(
      const run $ graph_t $ backend_t $ branching_t $ trials_t $ seed_t $ start_t
      $ cap_t $ csv_t $ scan_t)

(* ---------- bips ---------- *)

let bips_cmd =
  let source_t =
    Arg.(value & opt int 0 & info [ "source" ] ~docv:"V" ~doc:"Persistent source vertex.")
  in
  let run spec backend branching trials seed source cap csv =
    let g = build_graph spec ~backend ~seed in
    print_graph_line g spec;
    Printf.printf "BIPS infection time, branching %s, source %d, %d trials, seed %d\n"
      (Cobra.Branching.to_string branching)
      source trials seed;
    let params = { K.default_params with K.branching; start = source; cap } in
    run_process_trials ?csv ~seed ~trials ~name:"infection time (rounds)"
      ~measure:(fun rng -> kernel_completion_time K.bips g params rng)
      ();
    0
  in
  let doc = "Measure BIPS infection times." in
  Cmd.v (Cmd.info "bips" ~doc)
    Term.(
      const run $ graph_t $ backend_t $ branching_t $ trials_t $ seed_t $ source_t
      $ cap_t $ csv_t)

(* ---------- walk ---------- *)

let walk_cmd =
  let walkers_t =
    Arg.(
      value & opt int 1
      & info [ "walkers" ] ~docv:"N" ~doc:"Number of independent walkers (default 1).")
  in
  let run spec backend trials seed start cap walkers csv =
    let g = build_graph spec ~backend ~seed in
    print_graph_line g spec;
    Printf.printf "%d independent random walk(s), start %d, %d trials, seed %d\n"
      walkers start trials seed;
    let params = { K.default_params with K.start = start; walkers; cap } in
    run_process_trials ?csv ~seed ~trials ~name:"cover time (rounds)"
      ~measure:(fun rng -> kernel_completion_time K.rwalk g params rng)
      ();
    0
  in
  let doc = "Measure random-walk cover times (k=1 baseline; --walkers for many)." in
  Cmd.v (Cmd.info "walk" ~doc)
    Term.(
      const run $ graph_t $ backend_t $ trials_t $ seed_t $ start_t $ cap_t
      $ walkers_t $ csv_t)

(* ---------- push ---------- *)

let push_cmd =
  let protocol_t =
    Arg.(
      value
      & opt (enum [ ("push", `Push); ("push-pull", `Push_pull); ("flood", `Flood) ]) `Push
      & info [ "protocol" ] ~docv:"P" ~doc:"push | push-pull | flood.")
  in
  let run spec backend protocol trials seed cap =
    let g = build_graph spec ~backend ~seed in
    print_graph_line g spec;
    (match protocol with
    | `Flood ->
      let o = Cobra.Push.flood g ~start:0 in
      Printf.printf "flooding: rounds=%d transmissions=%d\n" o.Cobra.Push.rounds
        o.Cobra.Push.transmissions
    | `Push ->
      let params = { K.default_params with K.start = 0; cap } in
      let results =
        Simkit.Trial.collect_censored_par ~trials ~master:seed ~salt0:0 (fun rng ->
            let o = K.run K.push g params rng in
            if o.K.completed then
              Some (o.K.rounds, int_of_float (observation_exn o "transmissions"))
            else None)
      in
      summarize_trials "rounds"
        (Array.map (fun (r, _) -> Float.of_int r) results.Simkit.Trial.values)
        results.Simkit.Trial.censored;
      summarize_trials "transmissions"
        (Array.map (fun (_, t) -> Float.of_int t) results.Simkit.Trial.values)
        results.Simkit.Trial.censored
    | `Push_pull ->
      let results =
        Simkit.Trial.collect_censored_par ~trials ~master:seed ~salt0:0 (fun rng ->
            Option.map
              (fun o -> (o.Cobra.Push.rounds, o.Cobra.Push.transmissions))
              (Cobra.Push.push_pull ?cap g ~start:0 rng))
      in
      summarize_trials "rounds"
        (Array.map (fun (r, _) -> Float.of_int r) results.Simkit.Trial.values)
        results.Simkit.Trial.censored;
      summarize_trials "transmissions"
        (Array.map (fun (_, t) -> Float.of_int t) results.Simkit.Trial.values)
        results.Simkit.Trial.censored);
    0
  in
  let doc = "Run rumour-spreading baselines (push, push-pull, flooding)." in
  Cmd.v (Cmd.info "push" ~doc)
    Term.(const run $ graph_t $ backend_t $ protocol_t $ trials_t $ seed_t $ cap_t)

(* ---------- pull ---------- *)

let pull_cmd =
  let run spec backend trials seed cap =
    let g = build_graph spec ~backend ~seed in
    print_graph_line g spec;
    Printf.printf "pull rumour spreading, start 0, %d trials, seed %d\n" trials seed;
    let params = { K.default_params with K.start = 0; cap } in
    let results =
      Simkit.Trial.collect_censored_par ~trials ~master:seed ~salt0:0 (fun rng ->
          let o = K.run K.pull g params rng in
          if o.K.completed then
            Some (o.K.rounds, int_of_float (observation_exn o "transmissions"))
          else None)
    in
    summarize_trials "rounds"
      (Array.map (fun (r, _) -> Float.of_int r) results.Simkit.Trial.values)
      results.Simkit.Trial.censored;
    summarize_trials "transmissions"
      (Array.map (fun (_, t) -> Float.of_int t) results.Simkit.Trial.values)
      results.Simkit.Trial.censored;
    0
  in
  let doc = "Run pull rumour spreading (uninformed vertices query a neighbour)." in
  Cmd.v (Cmd.info "pull" ~doc)
    Term.(const run $ graph_t $ backend_t $ trials_t $ seed_t $ cap_t)

(* ---------- coalesce ---------- *)

let coalesce_cmd =
  let walkers_t =
    Arg.(
      value & opt int 2
      & info [ "walkers" ] ~docv:"N" ~doc:"Number of initial clusters (default 2).")
  in
  let run spec backend trials seed start cap walkers csv =
    let g = build_graph spec ~backend ~seed in
    print_graph_line g spec;
    Printf.printf
      "coalescing walks with voting, %d walkers, start %d, %d trials, seed %d\n"
      walkers start trials seed;
    let params = { K.default_params with K.start = start; walkers; cap } in
    run_process_trials ?csv ~seed ~trials ~name:"consensus time (rounds)"
      ~measure:(fun rng -> kernel_completion_time K.coalesce g params rng)
      ();
    0
  in
  let doc = "Measure coalescing-walk consensus times (voting)." in
  Cmd.v (Cmd.info "coalesce" ~doc)
    Term.(
      const run $ graph_t $ backend_t $ trials_t $ seed_t $ start_t $ cap_t
      $ walkers_t $ csv_t)

(* ---------- explore ---------- *)

let explore_cmd =
  let run spec backend trials seed start cap csv =
    let g = build_graph spec ~backend ~seed in
    print_graph_line g spec;
    Printf.printf "unvisited-edge-preferring walk, start %d, %d trials, seed %d\n"
      start trials seed;
    let params = { K.default_params with K.start = start; cap } in
    run_process_trials ?csv ~seed ~trials ~name:"cover time (rounds)"
      ~measure:(fun rng -> kernel_completion_time K.explore g params rng)
      ();
    0
  in
  let doc = "Measure cover times of the unvisited-edge-preferring walk." in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ graph_t $ backend_t $ trials_t $ seed_t $ start_t $ cap_t $ csv_t)

(* ---------- duality ---------- *)

let duality_cmd =
  let exact_t =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also compute both sides exactly (n <= 16).")
  in
  let run spec branching trials seed u v t exact =
    let g = build_graph spec ~seed in
    print_graph_line g spec;
    let rng = Simkit.Seeds.tagged_rng ~master:seed ~tag:"cli:duality" in
    let c = Cobra.Duality.compare_at ~trials g ~branching ~u ~v ~t rng in
    let cobra_rate, bips_rate = Cobra.Duality.estimated_rates c in
    Printf.printf
      "t=%d  P(Hit_%d(%d) > t) ~ %.4f (COBRA, %d trials)   P(%d not in A_t) ~ %.4f (BIPS, %d trials)\n"
      t u v cobra_rate c.Cobra.Duality.cobra_trials u bips_rate
      c.Cobra.Duality.bips_trials;
    if exact then begin
      if Graph.View.n_vertices g <= Cobra.Exact.max_vertices then begin
        let gc = Graph.View.to_csr g in
        let s = Cobra.Exact.cobra_hit_survival gc ~branching ~start:[ u ] ~target:v ~t_max:t in
        let a = Cobra.Exact.bips_avoid gc ~branching ~source:v ~avoid:[ u ] ~t_max:t in
        Printf.printf "exact: P(Hit > t) = %.6f   P(u not in A_t) = %.6f   |diff| = %.2e\n"
          s.(t) a.(t)
          (Float.abs (s.(t) -. a.(t)))
      end
      else
        Printf.printf "exact: skipped (graph larger than %d vertices)\n"
          Cobra.Exact.max_vertices
    end;
    0
  in
  let doc = "Estimate both sides of the Theorem 4 duality." in
  Cmd.v (Cmd.info "duality" ~doc)
    Term.(
      const run $ graph_t $ branching_t $ trials_t $ seed_t $ u_t $ v_t $ t_t ~default:5
      $ exact_t)

(* ---------- spectral ---------- *)

let spectral_cmd =
  let run spec backend seed =
    let g = build_graph spec ~backend ~seed in
    print_graph_line g spec;
    (match Graph.View.regularity g with
    | Some r when r > 0 ->
      let rng = Simkit.Seeds.tagged_rng ~master:seed ~tag:"cli:spectral" in
      let p2 = Spectral.Power.lambda_2 (Prng.Rng.split rng) g in
      let pn = Spectral.Power.lambda_min (Prng.Rng.split rng) g in
      let lz = Spectral.Lanczos.extremes (Prng.Rng.split rng) g in
      let gap = Spectral.Gap.estimate rng g in
      Printf.printf "power iteration : lambda_2 = %+.6f (%d iters)  lambda_n = %+.6f (%d iters)\n"
        p2.Spectral.Power.value p2.Spectral.Power.iterations pn.Spectral.Power.value
        pn.Spectral.Power.iterations;
      Printf.printf "lanczos         : lambda_2 = %+.6f  lambda_n = %+.6f\n"
        lz.Spectral.Lanczos.lambda_2 lz.Spectral.Lanczos.lambda_min;
      Printf.printf "%s\n" (Format.asprintf "%a" Spectral.Gap.pp gap);
      let n = Graph.View.n_vertices g in
      Printf.printf "theorem-1 scale log n / gap^3 = %.1f rounds; premise gap/sqrt(log n/n) = %.2f\n"
        (Spectral.Gap.theorem1_bound ~n gap)
        (Spectral.Gap.satisfies_gap_condition ~n gap)
    | _ ->
      Printf.printf "graph is not regular: degrees %d..%d (spectral bounds in the paper need regularity)\n"
        (Graph.View.min_degree g) (Graph.View.max_degree g));
    0
  in
  let doc = "Estimate the walk-matrix spectrum and the paper's gap quantities." in
  Cmd.v (Cmd.info "spectral" ~doc) Term.(const run $ graph_t $ backend_t $ seed_t)

(* ---------- gen ---------- *)

let gen_cmd =
  let format_t =
    Arg.(
      value
      & opt (enum [ ("edges", `Edges); ("dot", `Dot) ]) `Edges
      & info [ "format" ] ~docv:"FMT" ~doc:"edges | dot.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run spec seed format out =
    let g = Graph.View.to_csr (build_graph spec ~seed) in
    let payload =
      match format with
      | `Edges -> Graph.Io.to_edge_list g
      | `Dot -> Graph.Io.to_dot ~name:"cobra" g
    in
    (match out with
    | None -> print_string payload
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc payload));
    0
  in
  let doc = "Generate a graph and write it out." in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run $ graph_t $ seed_t $ format_t $ out_t)

(* ---------- herd ---------- *)

let herd_cmd =
  let pens_t = Arg.(value & opt int 10 & info [ "pens" ] ~docv:"N" ~doc:"Number of pens.") in
  let pen_size_t =
    Arg.(value & opt int 12 & info [ "pen-size" ] ~docv:"N" ~doc:"Animals per pen.")
  in
  let pi_t =
    Arg.(value & flag & info [ "pi" ] ~doc:"Introduce a persistently infected animal.")
  in
  let run pens pen_size pi trials seed =
    let g =
      Graph.View.of_csr (Graph.Gen.ring_of_cliques ~cliques:pens ~clique_size:pen_size)
    in
    Printf.printf "herd: %d pens x %d animals (%s)\n" pens pen_size
      (Format.asprintf "%a" Graph.View.pp g);
    let n = Graph.View.n_vertices g in
    let params =
      {
        K.default_params with
        K.branching = Cobra.Branching.cobra_k2;
        start = 0;
        persistent = pi;
        infectious_rounds = 2;
        immune_rounds = 8;
      }
    in
    (* Trial i draws from salt0 + i = i, exactly the salts the old
       sequential loop used, so the pool changes nothing but wall-clock. *)
    let outcomes =
      Simkit.Trial.collect_par ~trials ~master:seed ~salt0:0 (fun rng ->
          K.run Epidemic.Kernels.herd g params rng)
    in
    let full = ref 0 and extinct = ref 0 and rounds = Stats.Summary.create () in
    Array.iter
      (fun o ->
        if o.K.completed then begin
          if int_of_float (observation_exn o "ever") = n then begin
            incr full;
            Stats.Summary.add_int rounds o.K.rounds
          end
          else incr extinct
        end)
      outcomes;
    Printf.printf "full exposure: %d/%d   extinct: %d/%d\n" !full trials !extinct trials;
    if Stats.Summary.count rounds > 0 then
      Printf.printf "rounds to full exposure: %s\n"
        (Format.asprintf "%a" Stats.Summary.pp rounds);
    0
  in
  let doc = "Simulate the BVDV-style herd epidemic." in
  Cmd.v (Cmd.info "herd" ~doc)
    Term.(const run $ pens_t $ pen_size_t $ pi_t $ trials_t $ seed_t)

(* ---------- seir ---------- *)

let seir_cmd =
  let latent_t =
    Arg.(
      value & opt int 2
      & info [ "latent" ] ~docv:"L"
          ~doc:"Latent (exposed) rounds before turning infectious (0 skips Exposed).")
  in
  let infectious_t =
    Arg.(
      value & opt int 2
      & info [ "infectious" ] ~docv:"J" ~doc:"Infectious rounds before recovery.")
  in
  let run spec backend branching trials seed start latent infectious =
    if latent < 0 then begin
      Printf.eprintf "error: --latent must be >= 0\n";
      2
    end
    else if infectious < 1 then begin
      Printf.eprintf "error: --infectious must be >= 1\n";
      2
    end
    else begin
      let g = build_graph ~backend spec ~seed in
      print_graph_line g spec;
      let n = Graph.View.n_vertices g in
      Printf.printf "seir: contacts %s, latent %d, infectious %d, %d trials, seed %d\n"
        (Cobra.Branching.to_string branching)
        latent infectious trials seed;
      let params =
        {
          K.default_params with
          K.branching;
          start;
          latent_rounds = latent;
          infectious_rounds = infectious;
        }
      in
      (* Same salts (0 .. trials-1) as every other single-shot command. *)
      let outcomes =
        Simkit.Trial.collect_par ~trials ~master:seed ~salt0:0 (fun rng ->
            K.run Epidemic.Kernels.seir g params rng)
      in
      let attack = Stats.Summary.create ()
      and peak = Stats.Summary.create ()
      and gen_r = Stats.Summary.create ()
      and rounds = Stats.Summary.create () in
      let major = ref 0 in
      Array.iter
        (fun o ->
          let ever = observation_exn o "ever" in
          Stats.Summary.add attack (ever /. float_of_int n);
          Stats.Summary.add peak (observation_exn o "peak");
          Stats.Summary.add gen_r (observation_exn o "gen_r");
          Stats.Summary.add_int rounds o.K.rounds;
          if 2.0 *. ever >= float_of_int n then incr major)
        outcomes;
      Printf.printf "attack rate: %s\n" (Format.asprintf "%a" Stats.Summary.pp attack);
      Printf.printf "peak infectious: %s\n"
        (Format.asprintf "%a" Stats.Summary.pp peak);
      Printf.printf "generational R: %s\n"
        (Format.asprintf "%a" Stats.Summary.pp gen_r);
      Printf.printf "rounds to absorption: %s\n"
        (Format.asprintf "%a" Stats.Summary.pp rounds);
      Printf.printf "major outbreaks (attack >= 1/2): %d/%d\n" !major trials;
      0
    end
  in
  let doc = "Run the discrete SEIR epidemic (latent/infectious timers) to absorption." in
  Cmd.v (Cmd.info "seir" ~doc)
    Term.(
      const run $ graph_t $ backend_t $ branching_t $ trials_t $ seed_t $ start_t
      $ latent_t $ infectious_t)

(* ---------- exact ---------- *)

let exact_cmd =
  let run spec branching seed u v t =
    let gv = build_graph spec ~seed in
    print_graph_line gv spec;
    let g = Graph.View.to_csr gv in
    let n = Graph.Csr.n_vertices g in
    if n > Cobra.Exact.max_vertices then begin
      Printf.eprintf "error: exact computation needs at most %d vertices (got %d)\n"
        Cobra.Exact.max_vertices n;
      2
    end
    else begin
      Printf.printf "branching %s\n\n" (Cobra.Branching.to_string branching);
      let survival = Cobra.Exact.cobra_hit_survival g ~branching ~start:[ u ] ~target:v ~t_max:t in
      let absent = Cobra.Exact.bips_avoid g ~branching ~source:v ~avoid:[ u ] ~t_max:t in
      let cover = Cobra.Exact.cover_survival g ~branching ~start:[ u ] ~t_max:t in
      let unsat = Cobra.Exact.bips_unsaturated g ~branching ~source:v ~t_max:t in
      let esize = Cobra.Exact.bips_expected_size g ~branching ~source:v ~t_max:t in
      Printf.printf
        " t  P(Hit_%d(%d)>t)  P(%d not in A_t)  P(cov>t)  P(A_t<>V)  E|A_t|\n" u v u;
      for s = 0 to t do
        Printf.printf "%2d      %.6f         %.6f  %.6f   %.6f  %6.3f\n" s survival.(s)
          absent.(s) cover.(s) unsat.(s) esize.(s)
      done;
      Printf.printf "\nexact E[cover from %d] = %.6f rounds\n" u
        (Cobra.Exact.expected_cover_time g ~branching ~start:[ u ]);
      Printf.printf "Theorem 4 residual at t=%d: %.3e\n" t
        (Float.abs (survival.(t) -. absent.(t)));
      0
    end
  in
  let doc = "Exact distributions on small graphs (DP over subsets)." in
  Cmd.v (Cmd.info "exact" ~doc)
    Term.(const run $ graph_t $ branching_t $ seed_t $ u_t $ v_t $ t_t ~default:10)

(* ---------- contact ---------- *)

let contact_cmd =
  let rate_t =
    Arg.(
      value & opt float 0.5
      & info [ "rate" ] ~docv:"MU" ~doc:"Per-edge infection rate (recovery rate is 1).")
  in
  let horizon_t =
    Arg.(
      value & opt float 200.0
      & info [ "horizon" ] ~docv:"T" ~doc:"Simulated time horizon.")
  in
  let persistent_t =
    Arg.(
      value & flag
      & info [ "persistent" ] ~doc:"Make vertex 0 a persistent (never-recovering) source.")
  in
  let run spec trials seed rate horizon persistent =
    let g = build_graph spec ~seed in
    print_graph_line g spec;
    Printf.printf
      "contact process: rate %.3f, horizon %.0f, %s, %d trials, seed %d\n" rate horizon
      (if persistent then "persistent source at 0" else "transient seed at 0")
      trials seed;
    let params =
      { K.default_params with K.start = 0; rate; horizon; persistent }
    in
    (* Same salts (0 .. trials-1) as the old sequential loop. *)
    let outcomes =
      Simkit.Trial.collect_par ~trials ~master:seed ~salt0:0 (fun rng ->
          K.run Epidemic.Kernels.contact g params rng)
    in
    let died = ref 0 and full = ref 0 and active = ref 0 in
    let full_times = Stats.Summary.create () in
    Array.iter
      (fun o ->
        match observation_exn o "outcome" with
        | 0.0 -> incr died
        | 1.0 ->
          incr full;
          Stats.Summary.add full_times (observation_exn o "time")
        | _ -> incr active)
      outcomes;
    Printf.printf "died out: %d/%d   fully exposed: %d/%d   still active at horizon: %d/%d\n"
      !died trials !full trials !active trials;
    if Stats.Summary.count full_times > 0 then
      Printf.printf "time to full exposure: %s\n"
        (Format.asprintf "%a" Stats.Summary.pp full_times);
    0
  in
  let doc = "Run the continuous-time contact process (Harris 1974)." in
  Cmd.v (Cmd.info "contact" ~doc)
    Term.(const run $ graph_t $ trials_t $ seed_t $ rate_t $ horizon_t $ persistent_t)

(* ---------- main ---------- *)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let doc = "COBRA coalescing-branching walks and the dual BIPS epidemic" in
  let info = Cmd.info "cobra_cli" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            exp_cmd; sweep_cmd; serve_cmd; client_cmd; cover_cmd; bips_cmd; walk_cmd; push_cmd;
            pull_cmd; coalesce_cmd; explore_cmd; duality_cmd; spectral_cmd;
            gen_cmd; herd_cmd; seir_cmd; contact_cmd; exact_cmd;
          ]))
