(* Shared cmdliner vocabulary for every cobra_cli subcommand: one
   converter and one documented term per recurring option, so flags
   spell, parse and document identically across the whole CLI. *)

open Cmdliner

(* ---------- argument converters ---------- *)

let graph_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Graph.Spec.parse s) in
  let print ppf spec = Format.pp_print_string ppf (Graph.Spec.to_string spec) in
  Arg.conv (parse, print)

let backend_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Graph.View.backend_of_string s) in
  let print ppf b = Format.pp_print_string ppf (Graph.View.backend_to_string b) in
  Arg.conv (parse, print)

let branching_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Cobra.Branching.of_string s) in
  let print ppf b = Format.pp_print_string ppf (Cobra.Branching.to_arg b) in
  Arg.conv (parse, print)

let scale_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Simkit.Scale.of_string s) in
  Arg.conv (parse, Simkit.Scale.pp)

(* ---------- common terms ---------- *)

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let trials_t =
  Arg.(value & opt int 20 & info [ "trials" ] ~docv:"N" ~doc:"Number of trials.")

let graph_t =
  Arg.(
    required
    & opt (some graph_conv) None
    & info [ "g"; "graph" ] ~docv:"GRAPH" ~doc:("Graph description. " ^ Graph.Spec.syntax_help))

let backend_t =
  Arg.(
    value
    & opt backend_conv `Heap
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Topology backend: heap (materialised CSR, the default), bigarray \
           (off-heap int32 CSR; closed-form families stream in without heap \
           materialisation), or implicit (closed-form families only, O(1) \
           memory). All backends draw bit-identical RNG streams for the same \
           topology.")

let branching_t =
  Arg.(
    value
    & opt branching_conv Cobra.Branching.cobra_k2
    & info [ "b"; "branching" ] ~docv:"BRANCHING"
        ~doc:"Branching factor: k=<int>, 1+<rho>, or distinct=<int> (default k=2).")

let cap_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "cap" ] ~docv:"ROUNDS" ~doc:"Give up after this many rounds.")

let start_t =
  Arg.(value & opt int 0 & info [ "start" ] ~docv:"V" ~doc:"Start vertex.")

let u_t =
  Arg.(value & opt int 0 & info [ "u" ] ~docv:"U" ~doc:"COBRA start vertex.")

let v_t =
  Arg.(value & opt int 1 & info [ "v" ] ~docv:"V" ~doc:"Hitting target / BIPS source.")

let t_t ~default =
  Arg.(value & opt int default & info [ "t" ] ~docv:"T" ~doc:"Horizon (rounds).")

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the raw per-trial values as CSV.")

let out_t ~default ~doc =
  Arg.(value & opt string default & info [ "out" ] ~docv:"DIR" ~doc)

(* ---------- shared helpers ---------- *)

let build_graph ?(backend = `Heap) spec ~seed =
  let rng = Simkit.Seeds.tagged_rng ~master:seed ~tag:"cli:graph" in
  match Graph.Spec.build_view spec ~backend rng with
  | Ok g -> g
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2

let print_graph_line g spec =
  Printf.printf "graph %s: %s\n" (Graph.Spec.to_string spec)
    (Format.asprintf "%a" Graph.View.pp g)

let summarize_trials name values censored =
  let s = Stats.Summary.of_array values in
  Printf.printf "%s: mean=%.2f" name (Stats.Summary.mean s);
  if Stats.Summary.count s >= 2 then begin
    let ci = Stats.Ci.mean_ci s in
    Printf.printf " ci95=[%.2f, %.2f] sd=%.2f" ci.Stats.Ci.lo ci.Stats.Ci.hi
      (Stats.Summary.stddev s)
  end;
  Printf.printf " min=%.0f max=%.0f n=%d" (Stats.Summary.min s)
    (Stats.Summary.max s) (Stats.Summary.count s);
  if censored > 0 then Printf.printf " censored=%d" censored;
  print_newline ()

let write_trials_csv path values =
  let rows =
    Array.to_list
      (Array.mapi
         (fun i v ->
           [ string_of_int i; (match v with Some x -> string_of_int x | None -> "") ])
         values)
  in
  Simkit.Csvout.write_file path ~header:[ "trial"; "value" ] rows;
  Printf.printf "wrote %s\n" path

let run_process_trials ?csv ~seed ~trials ~measure ~name () =
  let raw =
    Simkit.Trial.collect_par ~trials ~master:seed ~salt0:0 (fun rng -> measure rng)
  in
  Option.iter (fun path -> write_trials_csv path raw) csv;
  let values = Array.of_list (List.filter_map Fun.id (Array.to_list raw)) in
  if Array.length values = 0 then print_endline "every trial hit the cap"
  else
    summarize_trials name
      (Array.map Float.of_int values)
      (trials - Array.length values)

(* ---------- kernel-driven measurement ---------- *)

(* The single-shot subcommands drive their process through
   [Cobra.Kernel.run]; for equal streams this is bit-for-bit the
   historical per-process loop (pinned by test/cli's golden
   transcripts). *)

let kernel_completion_time kernel g params rng =
  let o = Cobra.Kernel.run kernel g params rng in
  if o.Cobra.Kernel.completed then Some o.Cobra.Kernel.rounds else None

let observation_exn o key =
  match Cobra.Kernel.observation o key with
  | Some v -> v
  | None -> failwith ("kernel observation missing: " ^ key)
