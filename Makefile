# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check sweep-smoke sweep-smoke-bigarray serve-smoke bench \
	bench-standard bench-json bench-scale bench-scale-smoke bench-lanes \
	bench-lanes-smoke bench-compare examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# CI gate: build, tests, then the quick-scale experiment suite with
# machine-readable artifacts — non-zero exit iff any verdict fails.
# _results is removed first: stale artifacts from an earlier run must
# not be able to mask a missing-output bug in this one.
check:
	rm -rf _results
	dune build @all
	dune runtest
	dune exec bin/main.exe -- exp --scale quick --check --format json --out _results

# End-to-end crash/resume drill for the sweep subsystem: run a tiny
# campaign to completion, then the same campaign interrupted after 3
# cells and resumed, and require the manifest and every cell checkpoint
# to be byte-identical. Exercises the real CLI, not just the library.
SMOKE_GRID = name=smoke;graphs=cycle:12,complete:8,ba:24x2;kernels=cobra,bips,sis,seir;trials=3
sweep-smoke:
	rm -rf _results/smoke-a _results/smoke-b
	dune exec bin/main.exe -- sweep --grid '$(SMOKE_GRID)' --out _results/smoke-a --seed 5
	dune exec bin/main.exe -- sweep --grid '$(SMOKE_GRID)' --out _results/smoke-b --seed 5 --max-cells 3
	dune exec bin/main.exe -- sweep --grid '$(SMOKE_GRID)' --out _results/smoke-b --seed 5 --resume
	cmp _results/smoke-a/manifest.json _results/smoke-b/manifest.json
	for f in _results/smoke-a/cells/*.json; do \
	  cmp "$$f" "_results/smoke-b/cells/$$(basename $$f)" || exit 1; \
	done
	@echo "sweep-smoke: resumed campaign is byte-identical"

# The same drill through the off-heap Bigarray topology backend: the
# campaign meta carries backend=bigarray, the kill/resume must still be
# byte-identical, and — because the backend is part of the campaign
# identity — resuming those checkpoints under the default heap backend
# must refuse rather than silently mix representations.
SMOKE_GRID_BIG = $(SMOKE_GRID);backend=bigarray
sweep-smoke-bigarray:
	rm -rf _results/smoke-big-a _results/smoke-big-b
	dune exec bin/main.exe -- sweep --grid '$(SMOKE_GRID_BIG)' --out _results/smoke-big-a --seed 5
	dune exec bin/main.exe -- sweep --grid '$(SMOKE_GRID_BIG)' --out _results/smoke-big-b --seed 5 --max-cells 3
	dune exec bin/main.exe -- sweep --grid '$(SMOKE_GRID_BIG)' --out _results/smoke-big-b --seed 5 --resume
	cmp _results/smoke-big-a/manifest.json _results/smoke-big-b/manifest.json
	for f in _results/smoke-big-a/cells/*.json; do \
	  cmp "$$f" "_results/smoke-big-b/cells/$$(basename $$f)" || exit 1; \
	done
	! dune exec bin/main.exe -- sweep --grid '$(SMOKE_GRID)' --out _results/smoke-big-a --seed 5 --resume
	@echo "sweep-smoke-bigarray: bigarray campaign byte-identical; cross-backend resume refused"

# End-to-end drill for the campaign service: batch reference sweep,
# daemon killed with SIGKILL mid-campaign, restart + resume must be
# byte-identical to the batch artifacts, and a resubmission of the same
# work must be served 100% from the content-addressed result cache.
serve-smoke:
	sh scripts/serve_smoke.sh

# Quick-scale kernels + experiment tables (~30 s)
bench:
	dune exec bench/main.exe

# The EXPERIMENTS.md numbers (~10 min)
bench-standard:
	COBRA_SCALE=standard dune exec bench/main.exe

# Machine-readable kernel timings (a cobra.bench/1 file: benchmark name
# -> ns/run) for diffing perf across PRs; skips the experiment tables.
bench-json:
	dune exec bench/main.exe -- --kernels-only --json BENCH_$$(date +%Y-%m-%d).json

# Large-n scaling rows: generation + one full COBRA cover on random
# 4-regular and hypercube instances at n = 10^4, 10^5, 10^6 on the heap
# backend, then the backend rows — rr4 on off-heap Bigarray CSR
# (n = 10^7 full) and the implicit d = 24 hypercube with no materialised
# topology — with peak RSS reported. The smoke variant (n = 10^4,
# bigarray n = 10^4, implicit d = 14) is the CI gate.
bench-scale:
	dune exec bench/main.exe -- scale --json BENCH_$$(date +%Y-%m-%d).json

bench-scale-smoke:
	dune exec bench/main.exe -- scale --smoke --json BENCH_smoke.json

# Bit-sliced lane engine vs the scalar loop: the same 64-trial BIPS and
# SIS batches through both engines on random 4-regular and hypercube
# instances (n = 2^10, 2^14, 2^17; smoke keeps 2^10 only). Fails when
# the sliced speedup on the rr4 instances drops below the floor
# (8x full, 2x smoke); rows land in the "lanes/" section of the JSON.
bench-lanes:
	dune exec bench/main.exe -- lanes --json BENCH_lanes_$$(date +%Y-%m-%d).json

bench-lanes-smoke:
	dune exec bench/main.exe -- lanes --smoke --json BENCH_lanes_smoke.json

# Regression gate between two cobra.bench/1 files (legacy flat files are
# accepted too): fails when any section's median new/old time ratio
# exceeds +25%, or when a section disappears.
# Usage: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
bench-compare:
	@test -n "$(OLD)" -a -n "$(NEW)" || \
	  { echo "usage: make bench-compare OLD=old.json NEW=new.json"; exit 3; }
	dune exec bench/compare.exe -- $(OLD) $(NEW)

examples:
	dune exec examples/quickstart.exe
	dune exec examples/duality_check.exe
	dune exec examples/grid_scaling.exe
	dune exec examples/expander_zoo.exe
	dune exec examples/herd_outbreak.exe
	dune exec examples/broadcast_race.exe

clean:
	dune clean
