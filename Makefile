# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench bench-standard bench-json examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# CI gate: build, tests, then the quick-scale experiment suite with
# machine-readable artifacts — non-zero exit iff any verdict fails.
# _results is removed first: stale artifacts from an earlier run must
# not be able to mask a missing-output bug in this one.
check:
	rm -rf _results
	dune build @all
	dune runtest
	dune exec bin/main.exe -- exp --scale quick --check --format json --out _results

# Quick-scale kernels + experiment tables (~30 s)
bench:
	dune exec bench/main.exe

# The EXPERIMENTS.md numbers (~10 min)
bench-standard:
	COBRA_SCALE=standard dune exec bench/main.exe

# Machine-readable kernel timings (benchmark name -> ns/run) for diffing
# perf across PRs; skips the experiment tables.
bench-json:
	dune exec bench/main.exe -- --kernels-only --json BENCH_$$(date +%Y-%m-%d).json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/duality_check.exe
	dune exec examples/grid_scaling.exe
	dune exec examples/expander_zoo.exe
	dune exec examples/herd_outbreak.exe
	dune exec examples/broadcast_race.exe

clean:
	dune clean
