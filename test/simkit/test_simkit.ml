(* Tests for the simkit harness: scales, seed discipline, trial runners,
   CSV emission, report cells. *)

module Scale = Simkit.Scale
module Seeds = Simkit.Seeds
module Trial = Simkit.Trial
module Pool = Simkit.Pool
module Csvout = Simkit.Csvout
module Report = Simkit.Report
module Json = Simkit.Json
module Artifact = Simkit.Artifact
module Sink = Simkit.Sink

module Benchfile = Simkit.Benchfile

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Benchfile (cobra.bench/1) ---------- *)

let bench_rows =
  [
    { Benchfile.name = "E1/cover-3reg-n1024"; ns = 1234.5 };
    { Benchfile.name = "E1/other"; ns = 10.0 };
    { Benchfile.name = "scale/gen-rr4-n10000"; ns = 2.5e9 };
    { Benchfile.name = "flat-name"; ns = 7.0 };
  ]

let test_benchfile_roundtrip () =
  let t = { Benchfile.rows = bench_rows } in
  let path = Filename.temp_file "bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Benchfile.write path t;
      match Benchfile.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok t' ->
        check Alcotest.int "row count" (List.length t.rows) (List.length t'.rows);
        List.iter2
          (fun a b ->
            check Alcotest.string "name" a.Benchfile.name b.Benchfile.name;
            check (Alcotest.float 1e-9) "ns" a.Benchfile.ns b.Benchfile.ns)
          t.rows t'.rows)

let test_benchfile_legacy_and_errors () =
  let decode s =
    match Json.of_string s with
    | Ok j -> Benchfile.of_json j
    | Error e -> Error e
  in
  (match decode {|{"a/x": 10.0, "b/y": 20}|} with
  | Ok { rows = [ a; b ] } ->
    check Alcotest.string "legacy row 1" "a/x" a.Benchfile.name;
    check (Alcotest.float 0.0) "legacy int widens" 20.0 b.Benchfile.ns
  | _ -> Alcotest.fail "legacy flat file must decode");
  check Alcotest.bool "unknown schema rejected" true
    (Result.is_error (decode {|{"schema": "cobra.bench/9", "rows": []}|}));
  check Alcotest.bool "bad row rejected" true
    (Result.is_error (decode {|{"schema": "cobra.bench/1", "rows": [{"name": 3}]}|}));
  check Alcotest.bool "non-object rejected" true (Result.is_error (decode {|[1]|}));
  check Alcotest.string "section of slashed name" "E1"
    (Benchfile.section_of "E1/cover");
  check Alcotest.string "section of flat name" "flat" (Benchfile.section_of "flat")

let bench_of l = { Benchfile.rows = List.map (fun (name, ns) -> { Benchfile.name; ns }) l }

let test_benchfile_compare_verdicts () =
  let old_ = bench_of [ ("E1/a", 100.0); ("E1/b", 100.0); ("scale/x", 50.0) ] in
  (* 30% median regression in E1 must gate; scale improved. *)
  let regressed = bench_of [ ("E1/a", 130.0); ("E1/b", 130.0); ("scale/x", 40.0) ] in
  let r = Benchfile.compare ~old_ ~new_:regressed () in
  check Alcotest.int "regression exit code" 1 (Benchfile.exit_code r);
  (match r.Benchfile.sections with
  | [ e1; sc ] ->
    check Alcotest.bool "E1 regressed" true e1.Benchfile.regressed;
    check (Alcotest.float 1e-9) "E1 median" 1.3 e1.Benchfile.median_ratio;
    check Alcotest.bool "scale improved" false sc.Benchfile.regressed
  | _ -> Alcotest.fail "expected two sections");
  (* Within threshold: +20% is not a regression at the default +25%. *)
  let ok = bench_of [ ("E1/a", 120.0); ("E1/b", 120.0); ("scale/x", 50.0) ] in
  check Alcotest.int "ok exit code" 0
    (Benchfile.exit_code (Benchfile.compare ~old_ ~new_:ok ()));
  (* ...but gates under a tighter threshold. *)
  check Alcotest.int "tight threshold" 1
    (Benchfile.exit_code (Benchfile.compare ~threshold:1.1 ~old_ ~new_:ok ()));
  (* A section of OLD with no shared rows in NEW is exit 2. *)
  let missing = bench_of [ ("E1/a", 100.0); ("E1/b", 100.0) ] in
  let r = Benchfile.compare ~old_ ~new_:missing () in
  check Alcotest.int "missing exit code" 2 (Benchfile.exit_code r);
  check Alcotest.(list string) "missing sections" [ "scale" ]
    r.Benchfile.missing_sections;
  (* The median is robust: one outlier row does not gate a section. *)
  let old3 = bench_of [ ("E1/a", 100.0); ("E1/b", 100.0); ("E1/c", 100.0) ] in
  let outlier = bench_of [ ("E1/a", 500.0); ("E1/b", 100.0); ("E1/c", 100.0) ] in
  check Alcotest.int "median robust to one outlier" 0
    (Benchfile.exit_code (Benchfile.compare ~old_:old3 ~new_:outlier ()))

(* ---------- Scale ---------- *)

let test_scale_parse () =
  check Alcotest.bool "quick" true (Scale.of_string "quick" = Ok Scale.Quick);
  check Alcotest.bool "QUICK case" true (Scale.of_string " QUICK " = Ok Scale.Quick);
  check Alcotest.bool "standard" true (Scale.of_string "standard" = Ok Scale.Standard);
  check Alcotest.bool "full" true (Scale.of_string "full" = Ok Scale.Full);
  check Alcotest.bool "garbage" true (Result.is_error (Scale.of_string "medium"))

let test_scale_pick_roundtrip () =
  List.iter
    (fun s ->
      check Alcotest.bool "roundtrip" true (Scale.of_string (Scale.to_string s) = Ok s))
    [ Scale.Quick; Scale.Standard; Scale.Full ];
  check Alcotest.int "pick quick" 1 (Scale.pick Scale.Quick ~quick:1 ~standard:2 ~full:3);
  check Alcotest.int "pick full" 3 (Scale.pick Scale.Full ~quick:1 ~standard:2 ~full:3)

(* ---------- Seeds ---------- *)

let test_seed_streams_deterministic () =
  let a = Seeds.trial_rng ~master:5 ~salt:3 in
  let b = Seeds.trial_rng ~master:5 ~salt:3 in
  for _ = 1 to 20 do
    check Alcotest.int "same stream" (Prng.Rng.bits a) (Prng.Rng.bits b)
  done

let test_seed_streams_independent () =
  let a = Seeds.trial_rng ~master:5 ~salt:3 in
  let b = Seeds.trial_rng ~master:5 ~salt:4 in
  let c = Seeds.trial_rng ~master:6 ~salt:3 in
  let collisions = ref 0 in
  for _ = 1 to 100 do
    let va = Prng.Rng.bits a and vb = Prng.Rng.bits b and vc = Prng.Rng.bits c in
    if va = vb || va = vc || vb = vc then incr collisions
  done;
  check Alcotest.int "no collisions" 0 !collisions

let test_tagged_rng () =
  let a = Seeds.tagged_rng ~master:1 ~tag:"x" in
  let a' = Seeds.tagged_rng ~master:1 ~tag:"x" in
  let b = Seeds.tagged_rng ~master:1 ~tag:"y" in
  check Alcotest.int "same tag same stream" (Prng.Rng.bits a) (Prng.Rng.bits a');
  check Alcotest.bool "different tags differ" true (Prng.Rng.bits a <> Prng.Rng.bits b)

(* ---------- Trial ---------- *)

let test_collect_deterministic () =
  let f rng = Prng.Rng.int rng 1000 in
  let a = Trial.collect ~trials:10 ~master:7 ~salt0:0 f in
  let b = Trial.collect ~trials:10 ~master:7 ~salt0:0 f in
  check Alcotest.(array int) "reproducible" a b;
  let c = Trial.collect ~trials:10 ~master:8 ~salt0:0 f in
  check Alcotest.bool "different master differs" true (a <> c)

let test_collect_censored () =
  let f rng = if Prng.Rng.int rng 2 = 0 then Some 1.0 else None in
  let r = Trial.collect_censored ~trials:100 ~master:7 ~salt0:0 f in
  check Alcotest.int "values + censored = trials" 100
    (Array.length r.Trial.values + r.Trial.censored);
  check Alcotest.bool "some of each" true
    (Array.length r.Trial.values > 10 && r.Trial.censored > 10)

let test_summarize_int () =
  let s, censored =
    Trial.summarize_int ~trials:50 ~master:1 ~salt0:0 (fun rng ->
        Some (Prng.Rng.int rng 10))
  in
  check Alcotest.int "no censoring" 0 censored;
  check Alcotest.int "count" 50 (Stats.Summary.count s);
  check Alcotest.bool "mean in range" true
    (Stats.Summary.mean s >= 0.0 && Stats.Summary.mean s <= 9.0)

let test_summarize_all_censored () =
  Alcotest.check_raises "all censored" (Failure "Trial: every trial was censored")
    (fun () ->
      ignore (Trial.summarize_int ~trials:5 ~master:1 ~salt0:0 (fun _ -> None)))

(* ---------- Pool / parallel trials ---------- *)

(* The contract that makes parallel experiments trustworthy: collect_par
   must return the *identical* array for every (trials, domains)
   combination, because trial i draws from salt0 + i and lands in slot i
   regardless of which domain runs it. *)
let test_pool_collect_equivalence () =
  let f rng = Prng.Rng.int rng 1_000_000 in
  List.iter
    (fun trials ->
      let seq = Trial.collect ~trials ~master:11 ~salt0:77 f in
      List.iter
        (fun domains ->
          let par = Trial.collect_par ~domains ~trials ~master:11 ~salt0:77 f in
          check
            Alcotest.(array int)
            (Printf.sprintf "trials=%d domains=%d" trials domains)
            seq par)
        [ 1; 2; 4 ])
    [ 1; 7; 64 ]

let test_pool_censored_equivalence () =
  let f rng = if Prng.Rng.int rng 3 = 0 then None else Some (Prng.Rng.int rng 100) in
  let seq = Trial.collect_censored ~trials:64 ~master:3 ~salt0:9 f in
  List.iter
    (fun domains ->
      let par = Trial.collect_censored_par ~domains ~trials:64 ~master:3 ~salt0:9 f in
      check Alcotest.(array int) "values preserved" seq.Trial.values par.Trial.values;
      check Alcotest.int "censored count preserved" seq.Trial.censored
        par.Trial.censored)
    [ 1; 2; 4 ]

let test_pool_summarize_equivalence () =
  let f rng = Some (Prng.Rng.int rng 50) in
  let s_seq, c_seq = Trial.summarize_int ~trials:40 ~master:2 ~salt0:5 f in
  let s_par, c_par = Trial.summarize_int_par ~domains:4 ~trials:40 ~master:2 ~salt0:5 f in
  check Alcotest.int "censored" c_seq c_par;
  check Alcotest.int "count" (Stats.Summary.count s_seq) (Stats.Summary.count s_par);
  check (Alcotest.float 0.0) "mean bit-identical" (Stats.Summary.mean s_seq)
    (Stats.Summary.mean s_par)

let test_pool_exception_propagates () =
  (* Every trial raises: the batch must terminate (not deadlock) and
     re-raise in the caller. *)
  Alcotest.check_raises "all raise" (Failure "boom") (fun () ->
      ignore
        (Trial.collect_par ~domains:4 ~trials:64 ~master:1 ~salt0:0 (fun _ ->
             failwith "boom")));
  (* A single failing trial out of many: still propagated. *)
  let calls = Atomic.make 0 in
  Alcotest.check_raises "one raises" (Failure "trial 13") (fun () ->
      ignore
        (Trial.collect_par ~domains:4 ~trials:64 ~master:1 ~salt0:0 (fun rng ->
             if Atomic.fetch_and_add calls 1 = 13 then failwith "trial 13";
             Prng.Rng.int rng 10)))

let test_pool_reuse_and_edge_cases () =
  Pool.with_pool ~domains:3 (fun pool ->
      check Alcotest.int "size" 3 (Pool.size pool);
      (* Several batches through the same pool, including empty ones. *)
      Pool.run pool ~n:0 (fun _ -> Alcotest.fail "n=0 must run nothing");
      let a = Array.make 129 (-1) in
      Pool.run pool ~n:129 (fun i -> a.(i) <- i * i);
      Array.iteri (fun i v -> check Alcotest.int "first batch slot" (i * i) v) a;
      let b = Array.make 5 (-1) in
      Pool.run pool ~n:5 (fun i -> b.(i) <- i + 1);
      check Alcotest.(array int) "second batch" [| 1; 2; 3; 4; 5 |] b);
  Alcotest.check_raises "domains >= 1"
    (Invalid_argument "Pool.create: domains >= 1 required") (fun () ->
      ignore (Pool.create ~domains:0))

let test_cobra_domains_parsing () =
  check Alcotest.bool "4 ok" true (Pool.domains_of_string "4" = Ok 4);
  check Alcotest.bool "trimmed" true (Pool.domains_of_string " 2 " = Ok 2);
  check Alcotest.bool "1 ok" true (Pool.domains_of_string "1" = Ok 1);
  let rejected s =
    match Pool.domains_of_string s with
    | Ok _ -> Alcotest.failf "%S should be rejected" s
    | Error msg -> check Alcotest.bool "message nonempty" true (String.length msg > 0)
  in
  List.iter rejected [ "0"; "-3"; "abc"; ""; "2.5" ]

(* ---------- Csvout ---------- *)

let test_csv_escape () =
  check Alcotest.string "plain" "abc" (Csvout.escape "abc");
  check Alcotest.string "comma" "\"a,b\"" (Csvout.escape "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Csvout.escape "a\"b");
  check Alcotest.string "newline" "\"a\nb\"" (Csvout.escape "a\nb")

let test_csv_document () =
  let doc = Csvout.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "a,b"; "c" ] ] in
  check Alcotest.string "document" "x,y\n1,2\n\"a,b\",c\n" doc;
  Alcotest.check_raises "arity" (Invalid_argument "Csvout: row arity mismatch")
    (fun () -> ignore (Csvout.to_string ~header:[ "x" ] [ [ "1"; "2" ] ]))

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "cobra_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csvout.write_file path ~header:[ "a" ] [ [ "1" ]; [ "2" ] ];
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check Alcotest.string "file content" "a\n1\n2\n" content)

let csv_parse_roundtrip_prop =
  QCheck.Test.make ~name:"escaped fields never break row structure" ~count:200
    QCheck.(small_list (small_list printable_string))
    (fun rows ->
      QCheck.assume (rows <> [] && List.for_all (fun r -> List.length r = 2) rows);
      let doc = Csvout.to_string ~header:[ "a"; "b" ] rows in
      (* Count unquoted newlines = rows + header. *)
      let lines = ref 0 and in_quotes = ref false in
      String.iter
        (fun c ->
          if c = '"' then in_quotes := not !in_quotes
          else if c = '\n' && not !in_quotes then incr lines)
        doc;
      !lines = List.length rows + 1)

(* ---------- Seeds.salt_of_tag ---------- *)

(* The regression behind `cover --scan-starts`: the old linear scheme
   [start * 131 + i] collides as soon as trials exceed 131. The hashed
   per-tag salt bases must keep every (start, trial) stream distinct for
   realistic scan sizes. *)
let test_salt_of_tag_no_scan_collisions () =
  let trials = 1000 in
  let starts = [ 0; 1; 2; 17; 131; 4096; 999_999 ] in
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun start ->
      let salt0 = Seeds.salt_of_tag (Printf.sprintf "cli:scan:start=%d" start) in
      for i = 0 to trials - 1 do
        let salt = salt0 + i in
        (match Hashtbl.find_opt seen salt with
        | Some other ->
          Alcotest.failf "salt collision: start %d trial %d vs %s" start i other
        | None -> ());
        Hashtbl.add seen salt (Printf.sprintf "start %d trial %d" start i)
      done)
    starts;
  (* And the old scheme really was broken — document the bug it fixes. *)
  let old_scheme start i = (start * 131) + i in
  check Alcotest.int "old scheme collides at trials > 131" (old_scheme 0 131)
    (old_scheme 1 0)

let test_salt_of_tag_deterministic () =
  check Alcotest.int "stable across calls" (Seeds.salt_of_tag "x")
    (Seeds.salt_of_tag "x");
  check Alcotest.bool "distinct tags differ" true
    (Seeds.salt_of_tag "x" <> Seeds.salt_of_tag "y")

(* ---------- Json ---------- *)

let sample_doc =
  Json.Obj
    [
      ("schema", Json.String "test/1");
      ("n", Json.Int 42);
      ("x", Json.Float 3.25);
      ("ok", Json.Bool true);
      ("nothing", Json.Null);
      ( "rows",
        Json.List
          [
            Json.List [ Json.Int 1; Json.Float 0.5 ];
            Json.String "a \"quoted\"\nline";
          ] );
    ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample_doc) with
      | Ok v ->
        check Alcotest.bool
          (Printf.sprintf "pretty=%b structural equality" pretty)
          true (v = sample_doc)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ false; true ]

let test_json_float_repr () =
  check Alcotest.string "integral" "1.0" (Json.float_repr 1.0);
  check Alcotest.string "nan is null" "null" (Json.float_repr Float.nan);
  List.iter
    (fun x ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "%h round-trips" x)
        x
        (float_of_string (Json.float_repr x)))
    [ 0.1; 1.0 /. 3.0; 22.099999999999998; 1e-300; 6.02e23; infinity; neg_infinity ]

let test_json_parse_forms () =
  check Alcotest.bool "int token" true (Json.of_string "3" = Ok (Json.Int 3));
  check Alcotest.bool "float token" true (Json.of_string "3.5" = Ok (Json.Float 3.5));
  check Alcotest.bool "negative exponent" true
    (Json.of_string "-2e-3" = Ok (Json.Float (-0.002)));
  check Alcotest.bool "escapes" true
    (Json.of_string {|"a\t\"b\"A"|} = Ok (Json.String "a\t\"b\"A"));
  check Alcotest.bool "trailing garbage rejected" true
    (Result.is_error (Json.of_string "1 2"));
  check Alcotest.bool "unterminated rejected" true
    (Result.is_error (Json.of_string "[1, 2"));
  check Alcotest.bool "bad literal rejected" true
    (Result.is_error (Json.of_string "flase"))

let test_json_accessors () =
  check Alcotest.bool "member" true
    (Json.member "n" sample_doc = Some (Json.Int 42));
  check Alcotest.bool "member missing" true (Json.member "zz" sample_doc = None);
  check Alcotest.bool "to_number widens int" true
    (Json.to_number (Json.Int 7) = Some 7.0);
  check Alcotest.bool "to_bool" true (Json.to_bool_opt (Json.Bool true) = Some true)

let json_string_roundtrip_prop =
  QCheck.Test.make ~name:"json string escape round-trips" ~count:300
    QCheck.printable_string (fun s ->
      Json.of_string (Json.escape_string s) = Ok (Json.String s))

(* ---------- Artifact ---------- *)

let summary_of_array a = Artifact.of_summary (Stats.Summary.of_array a)

let test_artifact_cells () =
  check Alcotest.string "int" "7" (Artifact.cell_to_string (Artifact.int 7));
  check Alcotest.string "integral float" "42"
    (Artifact.cell_to_string (Artifact.float 42.0));
  check Alcotest.string "display wins" "3.142"
    (Artifact.cell_to_string (Artifact.floatf "%.3f" 3.14159));
  check Alcotest.string "raw keeps precision" "3.14159"
    (Artifact.cell_to_raw_string (Artifact.floatf "%.3f" 3.14159));
  let s = summary_of_array [| 10.0; 11.0; 9.0; 10.0 |] in
  check Alcotest.int "summary count" 4 s.Artifact.count;
  check (Alcotest.float 1e-9) "summary mean" 10.0 s.Artifact.mean;
  check Alcotest.bool "ci brackets mean" true
    (s.Artifact.ci_lo < 10.0 && 10.0 < s.Artifact.ci_hi)

let test_artifact_tab_arity () =
  let t = Artifact.Tab.create [ "a"; "b" ] in
  Artifact.Tab.add_row t [ Artifact.int 1; Artifact.int 2 ];
  check Alcotest.int "rows" 1 (Artifact.Tab.rows t);
  Alcotest.check_raises "arity enforced"
    (Invalid_argument "Artifact.Tab.add_row: cell count mismatch") (fun () ->
      Artifact.Tab.add_row t [ Artifact.int 1 ])

let dummy_meta =
  {
    Artifact.id = "T1";
    slug = "unit";
    title = "unit artifact";
    claim = "none";
    scale = "quick";
    master = 1;
    domains = 1;
  }

let artifact_with events = { Artifact.meta = dummy_meta; events; elapsed_s = 0.5 }

let test_artifact_passed () =
  check Alcotest.bool "no verdicts: vacuously passed" true
    (Artifact.passed (artifact_with [ Artifact.note "hi" ]));
  check Alcotest.bool "pass verdict" true
    (Artifact.passed (artifact_with [ Artifact.verdict ~pass:true "ok" ]));
  check Alcotest.bool "one failure fails" false
    (Artifact.passed
       (artifact_with
          [ Artifact.verdict ~pass:true "ok"; Artifact.verdict ~pass:false "bad" ]));
  check Alcotest.string "basename" "T1_unit" (Artifact.basename dummy_meta)

let test_artifact_json_doc () =
  let table = Artifact.Tab.create [ "n"; "cover" ] in
  Artifact.Tab.add_row table
    [ Artifact.int 256; Artifact.summary (Stats.Summary.of_array [| 1.0; 2.0 |]) ];
  let a =
    artifact_with
      [
        Artifact.context [ ("r", "3") ];
        Artifact.Tab.event table;
        Artifact.metric ~name:"spread" 1.25;
        Artifact.verdict ~pass:true "fine";
      ]
  in
  match Json.of_string (Json.to_string ~pretty:true (Artifact.to_json a)) with
  | Error e -> Alcotest.failf "artifact json does not parse: %s" e
  | Ok doc ->
    check Alcotest.bool "schema" true
      (Json.member "schema" doc = Some (Json.String Artifact.schema_version));
    check Alcotest.bool "pass" true
      (Json.member "pass" doc = Some (Json.Bool true));
    let events = Option.get (Json.to_list (Option.get (Json.member "events" doc))) in
    check Alcotest.int "all events serialised" 4 (List.length events);
    let types =
      List.map
        (fun e -> Option.get (Json.to_string_opt (Option.get (Json.member "type" e))))
        events
    in
    check
      Alcotest.(list string)
      "event types" [ "context"; "table"; "metric"; "verdict" ] types

(* ---------- Sink ---------- *)

let with_temp_dir ?(prefix = "cobra_sink") f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d" prefix (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let test_sink_json_writes_parseable_doc () =
  with_temp_dir (fun dir ->
      let a = artifact_with [ Artifact.verdict ~pass:false "deliberate" ] in
      let sink = Sink.json ~dir in
      sink.Sink.start a.Artifact.meta;
      List.iter sink.Sink.event a.Artifact.events;
      sink.Sink.finish a;
      let path = Filename.concat dir "T1_unit.json" in
      check Alcotest.bool "file exists" true (Sys.file_exists path);
      match Json.of_file path with
      | Error e -> Alcotest.failf "emitted file does not parse: %s" e
      | Ok doc ->
        check Alcotest.bool "failing verdict recorded" true
          (Json.member "pass" doc = Some (Json.Bool false)))

let test_sink_csv_writes_tables () =
  with_temp_dir (fun dir ->
      let table = Artifact.Tab.create [ "n"; "x" ] in
      Artifact.Tab.add_row table [ Artifact.int 1; Artifact.floatf "%.1f" 2.75 ];
      let a = artifact_with [ Artifact.Tab.event table ] in
      (Sink.csv ~dir).Sink.finish a;
      let path = Filename.concat dir "T1_unit.t1.csv" in
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check Alcotest.string "raw values, not display strings" "n,x\n1,2.75\n" content)

let test_sink_manifest () =
  with_temp_dir (fun dir ->
      let good = artifact_with [ Artifact.verdict ~pass:true "ok" ] in
      let bad = artifact_with [ Artifact.verdict ~pass:false "nope" ] in
      let path = Sink.write_manifest ~dir [ good; bad ] in
      match Json.of_file path with
      | Error e -> Alcotest.failf "manifest does not parse: %s" e
      | Ok doc ->
        check Alcotest.bool "suite pass is false" true
          (Json.member "pass" doc = Some (Json.Bool false));
        let exps =
          Option.get (Json.to_list (Option.get (Json.member "experiments" doc)))
        in
        check Alcotest.int "two entries" 2 (List.length exps))

(* ---------- Report ---------- *)

let test_report_cells () =
  check Alcotest.string "integral float" "42" (Report.float_cell 42.0);
  check Alcotest.string "fractional" "3.142" (Report.float_cell 3.14159);
  let s = Stats.Summary.of_array [| 10.0; 11.0; 9.0; 10.0 |] in
  let cell = Report.mean_ci_cell s in
  check Alcotest.bool "has plus-minus" true
    (String.length cell > 2 && String.contains cell '\xc2' || String.contains cell ' ')

(* ---------- campaign ---------- *)

(* Synthetic cells: payload is a pure function of (master, salt), with a
   side counter so tests can observe how many cells actually executed. *)
let synth_cells ?(executions = ref 0) n =
  List.init n (fun index ->
      {
        Simkit.Campaign.index;
        address = Printf.sprintf "cell=%d" index;
        meta = [ ("kind", Simkit.Json.String "synthetic") ];
        run =
          (fun ~master ~salt ->
            incr executions;
            Simkit.Json.Obj
              [
                ("index", Simkit.Json.Int index);
                ("value", Simkit.Json.Int ((master * 1_000_003) + salt));
              ]);
      })

let campaign_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "campaign_test_%d_%d" (Unix.getpid ()) !counter)

let campaign_config ?(resume = false) ?max_cells ?cache ?(progress = ignore) dir =
  { Simkit.Campaign.dir; master = 11; resume; max_cells; domains = Some 1; cache;
    progress }

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spew path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let replace_once haystack needle replacement =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i else go (i + 1)
  in
  match go 0 with
  | None -> haystack
  | Some i ->
    String.sub haystack 0 i ^ replacement
    ^ String.sub haystack (i + nn) (nh - i - nn)

let test_campaign_complete_run () =
  let dir = campaign_dir () in
  let executions = ref 0 in
  match
    Simkit.Campaign.run (campaign_config dir) ~name:"synth"
      ~cells:(synth_cells ~executions 4)
  with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check Alcotest.int "ran" 4 r.Simkit.Campaign.ran;
    check Alcotest.int "executed" 4 !executions;
    check Alcotest.int "remaining" 0 r.Simkit.Campaign.remaining;
    (match r.Simkit.Campaign.manifest with
    | None -> Alcotest.fail "expected a manifest"
    | Some path -> (
      match Simkit.Json.of_file path with
      | Error msg -> Alcotest.fail msg
      | Ok doc ->
        check
          Alcotest.(option string)
          "schema"
          (Some Simkit.Campaign.manifest_schema)
          (Option.bind (Simkit.Json.member "schema" doc) Simkit.Json.to_string_opt);
        let cells = Option.get (Simkit.Json.member "cells" doc) in
        check Alcotest.int "manifest cells" 4
          (List.length (Option.get (Simkit.Json.to_list cells)))));
    check Alcotest.bool "grid.json written" true
      (Sys.file_exists (Filename.concat dir "grid.json"))

let test_campaign_refuses_without_resume () =
  let dir = campaign_dir () in
  let cells = synth_cells 3 in
  (match Simkit.Campaign.run (campaign_config dir) ~name:"synth" ~cells with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match Simkit.Campaign.run (campaign_config dir) ~name:"synth" ~cells with
  | Ok _ -> Alcotest.fail "expected refusal to reuse an initialised dir"
  | Error msg -> check Alcotest.bool "error mentions --resume" true (contains msg "--resume")

let test_campaign_resume_reuses_all () =
  let dir = campaign_dir () in
  let executions = ref 0 in
  let cells = synth_cells ~executions 5 in
  (match Simkit.Campaign.run (campaign_config dir) ~name:"synth" ~cells with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let before = slurp (Filename.concat dir "manifest.json") in
  match Simkit.Campaign.run (campaign_config ~resume:true dir) ~name:"synth" ~cells with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check Alcotest.int "nothing re-ran" 0 r.Simkit.Campaign.ran;
    check Alcotest.int "all reused" 5 r.Simkit.Campaign.reused;
    check Alcotest.int "executions unchanged" 5 !executions;
    check Alcotest.string "manifest unchanged"
      before
      (slurp (Filename.concat dir "manifest.json"))

let test_campaign_max_cells_then_resume () =
  let dir_full = campaign_dir () and dir_part = campaign_dir () in
  let cells = synth_cells 6 in
  (match Simkit.Campaign.run (campaign_config dir_full) ~name:"synth" ~cells with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (match
     Simkit.Campaign.run (campaign_config ~max_cells:2 dir_part) ~name:"synth" ~cells
   with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check Alcotest.int "truncated" 2 r.Simkit.Campaign.ran;
    check Alcotest.int "remaining" 4 r.Simkit.Campaign.remaining;
    check Alcotest.bool "no manifest yet" true (r.Simkit.Campaign.manifest = None));
  match
    Simkit.Campaign.run (campaign_config ~resume:true dir_part) ~name:"synth" ~cells
  with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check Alcotest.int "finished the rest" 4 r.Simkit.Campaign.ran;
    check Alcotest.string "manifest byte-identical to uninterrupted"
      (slurp (Filename.concat dir_full "manifest.json"))
      (slurp (Filename.concat dir_part "manifest.json"));
    for i = 0 to 5 do
      let f = Printf.sprintf "cells/cell_%05d.json" i in
      check Alcotest.string ("cell byte-identical: " ^ f)
        (slurp (Filename.concat dir_full f))
        (slurp (Filename.concat dir_part f))
    done

let test_campaign_corrupt_checkpoint_rerun () =
  let dir = campaign_dir () in
  let cells = synth_cells 4 in
  (match Simkit.Campaign.run (campaign_config ~max_cells:3 dir) ~name:"synth" ~cells with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let victim = Filename.concat dir "cells/cell_00001.json" in
  let good = slurp victim in
  (* Flip the payload without updating the digest: must be detected. *)
  spew victim (replace_once good "\"value\"" "\"velue\"");
  let lines = ref [] in
  match
    Simkit.Campaign.run
      (campaign_config ~resume:true ~progress:(fun l -> lines := l :: !lines) dir)
      ~name:"synth" ~cells
  with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check Alcotest.int "corrupted detected" 1 r.Simkit.Campaign.corrupted;
    check Alcotest.int "reused the valid ones" 2 r.Simkit.Campaign.reused;
    check Alcotest.int "re-ran corrupt + missing" 2 r.Simkit.Campaign.ran;
    check Alcotest.bool "corruption reported" true
      (List.exists
         (function Simkit.Campaign.Corrupt_rerun _ -> true | _ -> false)
         !lines);
    check Alcotest.string "corrupt record re-written with original bytes" good
      (slurp victim)

(* The payload digest does not cover the meta block, so a tampered (or
   stale) meta must be caught by the field-for-field identity check. *)
let test_campaign_meta_mismatch_detected () =
  let dir = campaign_dir () in
  let cells = synth_cells 3 in
  (match Simkit.Campaign.run (campaign_config dir) ~name:"synth" ~cells with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let victim = Filename.concat dir "cells/cell_00001.json" in
  let good = slurp victim in
  spew victim (replace_once good "\"synthetic\"" "\"synthetiq\"");
  match Simkit.Campaign.run (campaign_config ~resume:true dir) ~name:"synth" ~cells with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check Alcotest.int "meta mismatch detected" 1 r.Simkit.Campaign.corrupted;
    check Alcotest.int "tampered cell re-ran" 1 r.Simkit.Campaign.ran;
    check Alcotest.string "record re-written with original bytes" good (slurp victim)

let test_campaign_rejects_bad_cells () =
  let dir = campaign_dir () in
  let bad_index =
    List.map
      (fun c -> { c with Simkit.Campaign.index = c.Simkit.Campaign.index + 1 })
      (synth_cells 2)
  in
  (match Simkit.Campaign.run (campaign_config dir) ~name:"synth" ~cells:bad_index with
  | Ok _ -> Alcotest.fail "expected non-positional indices to be rejected"
  | Error _ -> ());
  let dup =
    List.map (fun c -> { c with Simkit.Campaign.address = "same" }) (synth_cells 2)
  in
  match Simkit.Campaign.run (campaign_config dir) ~name:"synth" ~cells:dup with
  | Ok _ -> Alcotest.fail "expected duplicate addresses to be rejected"
  | Error _ -> ()

let test_campaign_salt_is_address_pure () =
  check Alcotest.int "same address, same salt"
    (Simkit.Campaign.salt_of_address "g=cycle:8;k=cobra;b=k=2")
    (Simkit.Campaign.salt_of_address "g=cycle:8;k=cobra;b=k=2");
  check Alcotest.bool "different address, different salt" true
    (Simkit.Campaign.salt_of_address "cell=0"
     <> Simkit.Campaign.salt_of_address "cell=1")

(* ---------- cellid ---------- *)

let meta_gen =
  QCheck.(
    small_list
      (pair
         (string_gen_of_size Gen.(1 -- 8) Gen.printable)
         (map (fun i -> Simkit.Json.Int i) small_int)))

let cellid_string_roundtrip_prop =
  QCheck.Test.make ~name:"cellid to_string/of_string round-trips" ~count:300
    QCheck.(pair (string_gen_of_size Gen.(1 -- 30) Gen.printable) meta_gen)
    (fun (address, meta) ->
      QCheck.assume (address <> "");
      let id = Simkit.Cellid.make ~address ~meta in
      match Simkit.Cellid.of_string (Simkit.Cellid.to_string id) with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok id' ->
        Simkit.Cellid.equal id id'
        && Simkit.Cellid.address id' = address
        && Simkit.Cellid.salt id' = Simkit.Campaign.salt_of_address address)

let address_part_gen =
  (* Keys exclude '=', ';', '\n'; values exclude ';', '\n'. *)
  QCheck.(
    pair
      (string_gen_of_size Gen.(1 -- 6)
         (Gen.oneofl [ 'a'; 'b'; 'g'; 'k'; '_'; '.'; '-' ]))
      (string_gen_of_size Gen.(0 -- 10)
         (Gen.oneofl [ 'x'; 'y'; '0'; '9'; ':'; ','; '='; ' ' ])))

let address_parts_roundtrip_prop =
  QCheck.Test.make ~name:"address parts round-trip" ~count:300
    QCheck.(list_of_size Gen.(1 -- 5) address_part_gen)
    (fun parts ->
      let a = Simkit.Cellid.address_of_parts parts in
      match Simkit.Cellid.parts_of_address a with
      | Error e -> QCheck.Test.fail_reportf "parse failed on %S: %s" a e
      | Ok parts' -> parts' = parts)

let test_cellid_validation () =
  (match Simkit.Cellid.of_parts ~address:"a" ~digest:"nothex" with
  | Ok _ -> Alcotest.fail "expected a bad digest to be rejected"
  | Error _ -> ());
  (match Simkit.Cellid.of_string "tooshort:a" with
  | Ok _ -> Alcotest.fail "expected a malformed encoding to be rejected"
  | Error _ -> ());
  (try
     ignore (Simkit.Cellid.address_of_parts [ ("k=ey", "v") ]);
     Alcotest.fail "expected '=' in key to be rejected"
   with Invalid_argument _ -> ());
  (try
     ignore (Simkit.Cellid.address_of_parts [ ("k", "a;b") ]);
     Alcotest.fail "expected ';' in value to be rejected"
   with Invalid_argument _ -> ());
  (* The sweep-grid address shape is preserved byte-for-byte. *)
  check Alcotest.string "sweep address shape" "g=cycle:12;k=cobra;b=k=2"
    (Simkit.Cellid.address_of_parts
       [ ("g", "cycle:12"); ("k", "cobra"); ("b", "k=2") ])

let test_cellid_meta_digest_sensitivity () =
  let meta = [ ("trials", Json.Int 3) ] in
  let id1 = Simkit.Cellid.make ~address:"a" ~meta in
  let id2 = Simkit.Cellid.make ~address:"a" ~meta:[ ("trials", Json.Int 4) ] in
  let id3 = Simkit.Cellid.make ~address:"a" ~meta in
  check Alcotest.bool "same meta, same digest" true (Simkit.Cellid.equal id1 id3);
  check Alcotest.bool "different meta, different digest" false
    (Simkit.Cellid.equal id1 id2);
  check Alcotest.int "salt ignores meta" (Simkit.Cellid.salt id1)
    (Simkit.Cellid.salt id2)

(* ---------- cellstore ---------- *)

let test_cellstore_put_find () =
  with_temp_dir ~prefix:"cellstore" (fun dir ->
      let store = Simkit.Cellstore.open_ ~dir in
      let id = Simkit.Cellid.make ~address:"cell=0" ~meta:[ ("t", Json.Int 1) ] in
      let payload = Json.Obj [ ("v", Json.Int 42) ] in
      check Alcotest.bool "empty store misses" true
        (Simkit.Cellstore.find store ~master:7 id = None);
      Simkit.Cellstore.put store ~master:7 id payload;
      check Alcotest.bool "hit returns the payload" true
        (Simkit.Cellstore.find store ~master:7 id = Some payload);
      check Alcotest.bool "different master misses" true
        (Simkit.Cellstore.find store ~master:8 id = None);
      let other =
        Simkit.Cellid.make ~address:"cell=0" ~meta:[ ("t", Json.Int 2) ]
      in
      check Alcotest.bool "different meta digest misses" true
        (Simkit.Cellstore.find store ~master:7 other = None);
      let st = Simkit.Cellstore.stats store in
      check Alcotest.int "hits" 1 st.Simkit.Cellstore.hits;
      check Alcotest.int "misses" 3 st.Simkit.Cellstore.misses;
      check Alcotest.int "puts" 1 st.Simkit.Cellstore.puts;
      check Alcotest.int "entries" 1 (Simkit.Cellstore.entries store))

let test_cellstore_corrupt_record_is_a_miss () =
  with_temp_dir ~prefix:"cellstore" (fun dir ->
      let store = Simkit.Cellstore.open_ ~dir in
      let id = Simkit.Cellid.make ~address:"cell=1" ~meta:[] in
      let payload = Json.Obj [ ("v", Json.Int 1) ] in
      Simkit.Cellstore.put store ~master:3 id payload;
      let path = Simkit.Cellstore.path store ~master:3 id in
      spew path (replace_once (slurp path) "\"v\"" "\"w\"");
      check Alcotest.bool "tampered record degrades to a miss" true
        (Simkit.Cellstore.find store ~master:3 id = None);
      spew path "not json at all";
      check Alcotest.bool "unparseable record degrades to a miss" true
        (Simkit.Cellstore.find store ~master:3 id = None))

(* ---------- campaign x cache ---------- *)

let test_campaign_second_run_is_all_cache_hits () =
  with_temp_dir ~prefix:"cellcache" (fun cache_dir ->
      let store = Simkit.Cellstore.open_ ~dir:cache_dir in
      let executions = ref 0 in
      let cells = synth_cells ~executions 5 in
      let dir1 = campaign_dir () and dir2 = campaign_dir () in
      (match
         Simkit.Campaign.run (campaign_config ~cache:store dir1) ~name:"synth"
           ~cells
       with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
        check Alcotest.int "first run executes everything" 5 r.Simkit.Campaign.ran;
        check Alcotest.int "first run has no cache hits" 0
          r.Simkit.Campaign.cached);
      check Alcotest.int "five executions so far" 5 !executions;
      (match
         Simkit.Campaign.run (campaign_config ~cache:store dir2) ~name:"synth"
           ~cells
       with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
        check Alcotest.int "second run executes nothing" 0 r.Simkit.Campaign.ran;
        check Alcotest.int "second run is 100% cache hits" 5
          r.Simkit.Campaign.cached;
        check Alcotest.bool "second run still completes" true
          (r.Simkit.Campaign.manifest <> None));
      check Alcotest.int "run was never invoked again" 5 !executions;
      (* Byte-identity of the cached path with the computed path. *)
      check Alcotest.string "manifests byte-identical"
        (slurp (Filename.concat dir1 "manifest.json"))
        (slurp (Filename.concat dir2 "manifest.json"));
      for i = 0 to 4 do
        let f = Printf.sprintf "cells/cell_%05d.json" i in
        check Alcotest.string ("cell byte-identical: " ^ f)
          (slurp (Filename.concat dir1 f))
          (slurp (Filename.concat dir2 f))
      done)

let test_campaign_cache_misses_on_different_identity () =
  with_temp_dir ~prefix:"cellcache" (fun cache_dir ->
      let store = Simkit.Cellstore.open_ ~dir:cache_dir in
      let executions = ref 0 in
      let run_with ~meta ~config_of_dir =
        let cells =
          List.map
            (fun c -> { c with Simkit.Campaign.meta })
            (synth_cells ~executions 3)
        in
        match
          Simkit.Campaign.run (config_of_dir (campaign_dir ())) ~name:"synth"
            ~cells
        with
        | Error msg -> Alcotest.fail msg
        | Ok r -> r
      in
      let meta1 = [ ("trials", Json.Int 3) ] in
      let meta2 = [ ("trials", Json.Int 4) ] in
      let _ = run_with ~meta:meta1 ~config_of_dir:(campaign_config ~cache:store) in
      check Alcotest.int "first run executed" 3 !executions;
      (* Same addresses, different meta: every cell must miss. *)
      let r = run_with ~meta:meta2 ~config_of_dir:(campaign_config ~cache:store) in
      check Alcotest.int "different meta re-executes" 3 r.Simkit.Campaign.ran;
      check Alcotest.int "no false hits" 0 r.Simkit.Campaign.cached;
      check Alcotest.int "six executions total" 6 !executions;
      (* Different master seed: also a miss. *)
      let cells = List.map (fun c -> { c with Simkit.Campaign.meta = meta1 })
          (synth_cells ~executions 3) in
      let config =
        { (campaign_config ~cache:store (campaign_dir ())) with
          Simkit.Campaign.master = 12 }
      in
      (match Simkit.Campaign.run config ~name:"synth" ~cells with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
        check Alcotest.int "different master re-executes" 3 r.Simkit.Campaign.ran);
      check Alcotest.int "nine executions total" 9 !executions)

(* ---------- campaign events ---------- *)

let event_samples =
  [
    Simkit.Campaign.Started
      { name = "s"; total = 6; pending = 4; reused = 1; corrupted = 1 };
    Simkit.Campaign.Cell_done
      {
        index = 2;
        address = "cell=2";
        cached = true;
        done_ = 3;
        of_ = 4;
        elapsed_s = 1.5;
        cells_per_s = 2.0;
        eta_s = 0.5;
      };
    Simkit.Campaign.Corrupt_rerun
      { index = 1; address = "cell=1"; path = "cells/cell_00001.json"; reason = "digest" };
    Simkit.Campaign.Finished
      { ran = 2; cached = 1; reused = 1; corrupted = 1; remaining = 0;
        manifest = Some "m.json" };
    Simkit.Campaign.Finished
      { ran = 0; cached = 0; reused = 0; corrupted = 0; remaining = 3;
        manifest = None };
  ]

let test_campaign_event_json_roundtrip () =
  List.iter
    (fun e ->
      match Simkit.Campaign.event_of_json (Simkit.Campaign.event_to_json e) with
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg
      | Ok e' ->
        check Alcotest.bool
          ("round-trips: " ^ Simkit.Campaign.event_to_string e)
          true (e = e'))
    event_samples

let test_campaign_events_jsonl_written () =
  let dir = campaign_dir () in
  let cells = synth_cells 3 in
  (match Simkit.Campaign.run (campaign_config dir) ~name:"synth" ~cells with
  | Error msg -> Alcotest.fail msg
  | Ok _ -> ());
  match Simkit.Eventlog.read_lines (Filename.concat dir "events.jsonl") with
  | Error msg -> Alcotest.fail msg
  | Ok lines ->
    let events = List.map Simkit.Campaign.event_of_json lines in
    check Alcotest.bool "every line parses as an event" true
      (List.for_all Result.is_ok events);
    (* started + one per cell + finished *)
    check Alcotest.int "line count" 5 (List.length lines);
    match (List.hd events, List.nth events 4) with
    | Ok (Simkit.Campaign.Started { total = 3; _ }),
      Ok (Simkit.Campaign.Finished { ran = 3; remaining = 0; _ }) ->
      ()
    | _ -> Alcotest.fail "unexpected event sequence"

(* ---------- eventlog ---------- *)

let test_eventlog_tail_while_writing () =
  with_temp_dir ~prefix:"eventlog" (fun dir ->
      let path = Filename.concat dir "events.jsonl" in
      let n = 500 in
      let stop = Atomic.make false in
      (* The reader hammers read_lines while the writer appends: the
         atomic-line contract means it must never see a torn line (a
         parse error) and must always see a prefix of the stream. *)
      let reader =
        Thread.create
          (fun () ->
            let max_seen = ref 0 in
            while not (Atomic.get stop) do
              (match Simkit.Eventlog.read_lines path with
              | Error msg -> Alcotest.failf "torn or bad line observed: %s" msg
              | Ok lines ->
                let k = List.length lines in
                if k < !max_seen then
                  Alcotest.failf "stream shrank: %d after %d" k !max_seen;
                max_seen := k;
                List.iteri
                  (fun i doc ->
                    match Json.member "i" doc with
                    | Some (Json.Int j) when j = i -> ()
                    | _ -> Alcotest.failf "line %d is not event %d" i i)
                  lines);
              Thread.yield ()
            done)
          ()
      in
      Simkit.Eventlog.with_log ~path (fun log ->
          for i = 0 to n - 1 do
            Simkit.Eventlog.append log
              (Json.Obj
                 [
                   ("i", Json.Int i);
                   ("pad", Json.String (String.make (i mod 97) 'x'));
                 ]);
            if i mod 50 = 0 then Thread.yield ()
          done);
      Atomic.set stop true;
      Thread.join reader;
      match Simkit.Eventlog.read_lines path with
      | Error msg -> Alcotest.fail msg
      | Ok lines -> check Alcotest.int "all lines present" n (List.length lines))

let () =
  Alcotest.run "simkit"
    [
      ( "scale",
        [
          Alcotest.test_case "parse" `Quick test_scale_parse;
          Alcotest.test_case "pick/roundtrip" `Quick test_scale_pick_roundtrip;
        ] );
      ( "benchfile",
        [
          Alcotest.test_case "round-trip" `Quick test_benchfile_roundtrip;
          Alcotest.test_case "legacy and errors" `Quick
            test_benchfile_legacy_and_errors;
          Alcotest.test_case "compare verdicts" `Quick
            test_benchfile_compare_verdicts;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "deterministic" `Quick test_seed_streams_deterministic;
          Alcotest.test_case "independent" `Quick test_seed_streams_independent;
          Alcotest.test_case "tagged" `Quick test_tagged_rng;
        ] );
      ( "trial",
        [
          Alcotest.test_case "collect deterministic" `Quick test_collect_deterministic;
          Alcotest.test_case "censored accounting" `Quick test_collect_censored;
          Alcotest.test_case "summarize" `Quick test_summarize_int;
          Alcotest.test_case "all censored" `Quick test_summarize_all_censored;
        ] );
      ( "pool",
        [
          Alcotest.test_case "collect_par = collect" `Quick test_pool_collect_equivalence;
          Alcotest.test_case "censoring preserved" `Quick test_pool_censored_equivalence;
          Alcotest.test_case "summaries identical" `Quick test_pool_summarize_equivalence;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_exception_propagates;
          Alcotest.test_case "reuse and edge cases" `Quick test_pool_reuse_and_edge_cases;
          Alcotest.test_case "COBRA_DOMAINS parsing" `Quick test_cobra_domains_parsing;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "document" `Quick test_csv_document;
          Alcotest.test_case "file roundtrip" `Quick test_csv_file_roundtrip;
          qtest csv_parse_roundtrip_prop;
        ] );
      ("report", [ Alcotest.test_case "cells" `Quick test_report_cells ]);
      ( "salt_of_tag",
        [
          Alcotest.test_case "scan-starts collision regression" `Quick
            test_salt_of_tag_no_scan_collisions;
          Alcotest.test_case "deterministic" `Quick test_salt_of_tag_deterministic;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float repr" `Quick test_json_float_repr;
          Alcotest.test_case "parse forms" `Quick test_json_parse_forms;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          qtest json_string_roundtrip_prop;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "cells" `Quick test_artifact_cells;
          Alcotest.test_case "tab arity" `Quick test_artifact_tab_arity;
          Alcotest.test_case "passed" `Quick test_artifact_passed;
          Alcotest.test_case "json document" `Quick test_artifact_json_doc;
        ] );
      ( "sink",
        [
          Alcotest.test_case "json file parses" `Quick test_sink_json_writes_parseable_doc;
          Alcotest.test_case "csv raw values" `Quick test_sink_csv_writes_tables;
          Alcotest.test_case "manifest" `Quick test_sink_manifest;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "complete run writes manifest" `Quick
            test_campaign_complete_run;
          Alcotest.test_case "refuses initialised dir without --resume" `Quick
            test_campaign_refuses_without_resume;
          Alcotest.test_case "resume reuses every checkpoint" `Quick
            test_campaign_resume_reuses_all;
          Alcotest.test_case "max-cells then resume is byte-identical" `Quick
            test_campaign_max_cells_then_resume;
          Alcotest.test_case "corrupt checkpoint detected and re-run" `Quick
            test_campaign_corrupt_checkpoint_rerun;
          Alcotest.test_case "tampered meta detected and re-run" `Quick
            test_campaign_meta_mismatch_detected;
          Alcotest.test_case "rejects malformed cell lists" `Quick
            test_campaign_rejects_bad_cells;
          Alcotest.test_case "salt is pure in the address" `Quick
            test_campaign_salt_is_address_pure;
          Alcotest.test_case "second run over a shared cache is all hits" `Quick
            test_campaign_second_run_is_all_cache_hits;
          Alcotest.test_case "cache misses on different identity" `Quick
            test_campaign_cache_misses_on_different_identity;
          Alcotest.test_case "event json round-trips" `Quick
            test_campaign_event_json_roundtrip;
          Alcotest.test_case "events.jsonl written" `Quick
            test_campaign_events_jsonl_written;
        ] );
      ( "cellid",
        [
          qtest cellid_string_roundtrip_prop;
          qtest address_parts_roundtrip_prop;
          Alcotest.test_case "validation" `Quick test_cellid_validation;
          Alcotest.test_case "meta digest sensitivity" `Quick
            test_cellid_meta_digest_sensitivity;
        ] );
      ( "cellstore",
        [
          Alcotest.test_case "put/find with identity checks" `Quick
            test_cellstore_put_find;
          Alcotest.test_case "corrupt record is a miss" `Quick
            test_cellstore_corrupt_record_is_a_miss;
        ] );
      ( "eventlog",
        [
          Alcotest.test_case "tail while writing sees no torn lines" `Quick
            test_eventlog_tail_while_writing;
        ] );
    ]
