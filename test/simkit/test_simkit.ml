(* Tests for the simkit harness: scales, seed discipline, trial runners,
   CSV emission, report cells. *)

module Scale = Simkit.Scale
module Seeds = Simkit.Seeds
module Trial = Simkit.Trial
module Pool = Simkit.Pool
module Csvout = Simkit.Csvout
module Report = Simkit.Report

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Scale ---------- *)

let test_scale_parse () =
  check Alcotest.bool "quick" true (Scale.of_string "quick" = Ok Scale.Quick);
  check Alcotest.bool "QUICK case" true (Scale.of_string " QUICK " = Ok Scale.Quick);
  check Alcotest.bool "standard" true (Scale.of_string "standard" = Ok Scale.Standard);
  check Alcotest.bool "full" true (Scale.of_string "full" = Ok Scale.Full);
  check Alcotest.bool "garbage" true (Result.is_error (Scale.of_string "medium"))

let test_scale_pick_roundtrip () =
  List.iter
    (fun s ->
      check Alcotest.bool "roundtrip" true (Scale.of_string (Scale.to_string s) = Ok s))
    [ Scale.Quick; Scale.Standard; Scale.Full ];
  check Alcotest.int "pick quick" 1 (Scale.pick Scale.Quick ~quick:1 ~standard:2 ~full:3);
  check Alcotest.int "pick full" 3 (Scale.pick Scale.Full ~quick:1 ~standard:2 ~full:3)

(* ---------- Seeds ---------- *)

let test_seed_streams_deterministic () =
  let a = Seeds.trial_rng ~master:5 ~salt:3 in
  let b = Seeds.trial_rng ~master:5 ~salt:3 in
  for _ = 1 to 20 do
    check Alcotest.int "same stream" (Prng.Rng.bits a) (Prng.Rng.bits b)
  done

let test_seed_streams_independent () =
  let a = Seeds.trial_rng ~master:5 ~salt:3 in
  let b = Seeds.trial_rng ~master:5 ~salt:4 in
  let c = Seeds.trial_rng ~master:6 ~salt:3 in
  let collisions = ref 0 in
  for _ = 1 to 100 do
    let va = Prng.Rng.bits a and vb = Prng.Rng.bits b and vc = Prng.Rng.bits c in
    if va = vb || va = vc || vb = vc then incr collisions
  done;
  check Alcotest.int "no collisions" 0 !collisions

let test_tagged_rng () =
  let a = Seeds.tagged_rng ~master:1 ~tag:"x" in
  let a' = Seeds.tagged_rng ~master:1 ~tag:"x" in
  let b = Seeds.tagged_rng ~master:1 ~tag:"y" in
  check Alcotest.int "same tag same stream" (Prng.Rng.bits a) (Prng.Rng.bits a');
  check Alcotest.bool "different tags differ" true (Prng.Rng.bits a <> Prng.Rng.bits b)

(* ---------- Trial ---------- *)

let test_collect_deterministic () =
  let f rng = Prng.Rng.int rng 1000 in
  let a = Trial.collect ~trials:10 ~master:7 ~salt0:0 f in
  let b = Trial.collect ~trials:10 ~master:7 ~salt0:0 f in
  check Alcotest.(array int) "reproducible" a b;
  let c = Trial.collect ~trials:10 ~master:8 ~salt0:0 f in
  check Alcotest.bool "different master differs" true (a <> c)

let test_collect_censored () =
  let f rng = if Prng.Rng.int rng 2 = 0 then Some 1.0 else None in
  let r = Trial.collect_censored ~trials:100 ~master:7 ~salt0:0 f in
  check Alcotest.int "values + censored = trials" 100
    (Array.length r.Trial.values + r.Trial.censored);
  check Alcotest.bool "some of each" true
    (Array.length r.Trial.values > 10 && r.Trial.censored > 10)

let test_summarize_int () =
  let s, censored =
    Trial.summarize_int ~trials:50 ~master:1 ~salt0:0 (fun rng ->
        Some (Prng.Rng.int rng 10))
  in
  check Alcotest.int "no censoring" 0 censored;
  check Alcotest.int "count" 50 (Stats.Summary.count s);
  check Alcotest.bool "mean in range" true
    (Stats.Summary.mean s >= 0.0 && Stats.Summary.mean s <= 9.0)

let test_summarize_all_censored () =
  Alcotest.check_raises "all censored" (Failure "Trial: every trial was censored")
    (fun () ->
      ignore (Trial.summarize_int ~trials:5 ~master:1 ~salt0:0 (fun _ -> None)))

(* ---------- Pool / parallel trials ---------- *)

(* The contract that makes parallel experiments trustworthy: collect_par
   must return the *identical* array for every (trials, domains)
   combination, because trial i draws from salt0 + i and lands in slot i
   regardless of which domain runs it. *)
let test_pool_collect_equivalence () =
  let f rng = Prng.Rng.int rng 1_000_000 in
  List.iter
    (fun trials ->
      let seq = Trial.collect ~trials ~master:11 ~salt0:77 f in
      List.iter
        (fun domains ->
          let par = Trial.collect_par ~domains ~trials ~master:11 ~salt0:77 f in
          check
            Alcotest.(array int)
            (Printf.sprintf "trials=%d domains=%d" trials domains)
            seq par)
        [ 1; 2; 4 ])
    [ 1; 7; 64 ]

let test_pool_censored_equivalence () =
  let f rng = if Prng.Rng.int rng 3 = 0 then None else Some (Prng.Rng.int rng 100) in
  let seq = Trial.collect_censored ~trials:64 ~master:3 ~salt0:9 f in
  List.iter
    (fun domains ->
      let par = Trial.collect_censored_par ~domains ~trials:64 ~master:3 ~salt0:9 f in
      check Alcotest.(array int) "values preserved" seq.Trial.values par.Trial.values;
      check Alcotest.int "censored count preserved" seq.Trial.censored
        par.Trial.censored)
    [ 1; 2; 4 ]

let test_pool_summarize_equivalence () =
  let f rng = Some (Prng.Rng.int rng 50) in
  let s_seq, c_seq = Trial.summarize_int ~trials:40 ~master:2 ~salt0:5 f in
  let s_par, c_par = Trial.summarize_int_par ~domains:4 ~trials:40 ~master:2 ~salt0:5 f in
  check Alcotest.int "censored" c_seq c_par;
  check Alcotest.int "count" (Stats.Summary.count s_seq) (Stats.Summary.count s_par);
  check (Alcotest.float 0.0) "mean bit-identical" (Stats.Summary.mean s_seq)
    (Stats.Summary.mean s_par)

let test_pool_exception_propagates () =
  (* Every trial raises: the batch must terminate (not deadlock) and
     re-raise in the caller. *)
  Alcotest.check_raises "all raise" (Failure "boom") (fun () ->
      ignore
        (Trial.collect_par ~domains:4 ~trials:64 ~master:1 ~salt0:0 (fun _ ->
             failwith "boom")));
  (* A single failing trial out of many: still propagated. *)
  let calls = Atomic.make 0 in
  Alcotest.check_raises "one raises" (Failure "trial 13") (fun () ->
      ignore
        (Trial.collect_par ~domains:4 ~trials:64 ~master:1 ~salt0:0 (fun rng ->
             if Atomic.fetch_and_add calls 1 = 13 then failwith "trial 13";
             Prng.Rng.int rng 10)))

let test_pool_reuse_and_edge_cases () =
  Pool.with_pool ~domains:3 (fun pool ->
      check Alcotest.int "size" 3 (Pool.size pool);
      (* Several batches through the same pool, including empty ones. *)
      Pool.run pool ~n:0 (fun _ -> Alcotest.fail "n=0 must run nothing");
      let a = Array.make 129 (-1) in
      Pool.run pool ~n:129 (fun i -> a.(i) <- i * i);
      Array.iteri (fun i v -> check Alcotest.int "first batch slot" (i * i) v) a;
      let b = Array.make 5 (-1) in
      Pool.run pool ~n:5 (fun i -> b.(i) <- i + 1);
      check Alcotest.(array int) "second batch" [| 1; 2; 3; 4; 5 |] b);
  Alcotest.check_raises "domains >= 1"
    (Invalid_argument "Pool.create: domains >= 1 required") (fun () ->
      ignore (Pool.create ~domains:0))

let test_cobra_domains_parsing () =
  check Alcotest.bool "4 ok" true (Pool.domains_of_string "4" = Ok 4);
  check Alcotest.bool "trimmed" true (Pool.domains_of_string " 2 " = Ok 2);
  check Alcotest.bool "1 ok" true (Pool.domains_of_string "1" = Ok 1);
  let rejected s =
    match Pool.domains_of_string s with
    | Ok _ -> Alcotest.failf "%S should be rejected" s
    | Error msg -> check Alcotest.bool "message nonempty" true (String.length msg > 0)
  in
  List.iter rejected [ "0"; "-3"; "abc"; ""; "2.5" ]

(* ---------- Csvout ---------- *)

let test_csv_escape () =
  check Alcotest.string "plain" "abc" (Csvout.escape "abc");
  check Alcotest.string "comma" "\"a,b\"" (Csvout.escape "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Csvout.escape "a\"b");
  check Alcotest.string "newline" "\"a\nb\"" (Csvout.escape "a\nb")

let test_csv_document () =
  let doc = Csvout.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "a,b"; "c" ] ] in
  check Alcotest.string "document" "x,y\n1,2\n\"a,b\",c\n" doc;
  Alcotest.check_raises "arity" (Invalid_argument "Csvout: row arity mismatch")
    (fun () -> ignore (Csvout.to_string ~header:[ "x" ] [ [ "1"; "2" ] ]))

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "cobra_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csvout.write_file path ~header:[ "a" ] [ [ "1" ]; [ "2" ] ];
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check Alcotest.string "file content" "a\n1\n2\n" content)

let csv_parse_roundtrip_prop =
  QCheck.Test.make ~name:"escaped fields never break row structure" ~count:200
    QCheck.(small_list (small_list printable_string))
    (fun rows ->
      QCheck.assume (rows <> [] && List.for_all (fun r -> List.length r = 2) rows);
      let doc = Csvout.to_string ~header:[ "a"; "b" ] rows in
      (* Count unquoted newlines = rows + header. *)
      let lines = ref 0 and in_quotes = ref false in
      String.iter
        (fun c ->
          if c = '"' then in_quotes := not !in_quotes
          else if c = '\n' && not !in_quotes then incr lines)
        doc;
      !lines = List.length rows + 1)

(* ---------- Report ---------- *)

let test_report_cells () =
  check Alcotest.string "integral float" "42" (Report.float_cell 42.0);
  check Alcotest.string "fractional" "3.142" (Report.float_cell 3.14159);
  let s = Stats.Summary.of_array [| 10.0; 11.0; 9.0; 10.0 |] in
  let cell = Report.mean_ci_cell s in
  check Alcotest.bool "has plus-minus" true
    (String.length cell > 2 && String.contains cell '\xc2' || String.contains cell ' ')

let () =
  Alcotest.run "simkit"
    [
      ( "scale",
        [
          Alcotest.test_case "parse" `Quick test_scale_parse;
          Alcotest.test_case "pick/roundtrip" `Quick test_scale_pick_roundtrip;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "deterministic" `Quick test_seed_streams_deterministic;
          Alcotest.test_case "independent" `Quick test_seed_streams_independent;
          Alcotest.test_case "tagged" `Quick test_tagged_rng;
        ] );
      ( "trial",
        [
          Alcotest.test_case "collect deterministic" `Quick test_collect_deterministic;
          Alcotest.test_case "censored accounting" `Quick test_collect_censored;
          Alcotest.test_case "summarize" `Quick test_summarize_int;
          Alcotest.test_case "all censored" `Quick test_summarize_all_censored;
        ] );
      ( "pool",
        [
          Alcotest.test_case "collect_par = collect" `Quick test_pool_collect_equivalence;
          Alcotest.test_case "censoring preserved" `Quick test_pool_censored_equivalence;
          Alcotest.test_case "summaries identical" `Quick test_pool_summarize_equivalence;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_exception_propagates;
          Alcotest.test_case "reuse and edge cases" `Quick test_pool_reuse_and_edge_cases;
          Alcotest.test_case "COBRA_DOMAINS parsing" `Quick test_cobra_domains_parsing;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "document" `Quick test_csv_document;
          Alcotest.test_case "file roundtrip" `Quick test_csv_file_roundtrip;
          qtest csv_parse_roundtrip_prop;
        ] );
      ("report", [ Alcotest.test_case "cells" `Quick test_report_cells ]);
    ]
