(* Tests for the simkit harness: scales, seed discipline, trial runners,
   CSV emission, report cells. *)

module Scale = Simkit.Scale
module Seeds = Simkit.Seeds
module Trial = Simkit.Trial
module Csvout = Simkit.Csvout
module Report = Simkit.Report

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Scale ---------- *)

let test_scale_parse () =
  check Alcotest.bool "quick" true (Scale.of_string "quick" = Ok Scale.Quick);
  check Alcotest.bool "QUICK case" true (Scale.of_string " QUICK " = Ok Scale.Quick);
  check Alcotest.bool "standard" true (Scale.of_string "standard" = Ok Scale.Standard);
  check Alcotest.bool "full" true (Scale.of_string "full" = Ok Scale.Full);
  check Alcotest.bool "garbage" true (Result.is_error (Scale.of_string "medium"))

let test_scale_pick_roundtrip () =
  List.iter
    (fun s ->
      check Alcotest.bool "roundtrip" true (Scale.of_string (Scale.to_string s) = Ok s))
    [ Scale.Quick; Scale.Standard; Scale.Full ];
  check Alcotest.int "pick quick" 1 (Scale.pick Scale.Quick ~quick:1 ~standard:2 ~full:3);
  check Alcotest.int "pick full" 3 (Scale.pick Scale.Full ~quick:1 ~standard:2 ~full:3)

(* ---------- Seeds ---------- *)

let test_seed_streams_deterministic () =
  let a = Seeds.trial_rng ~master:5 ~salt:3 in
  let b = Seeds.trial_rng ~master:5 ~salt:3 in
  for _ = 1 to 20 do
    check Alcotest.int "same stream" (Prng.Rng.bits a) (Prng.Rng.bits b)
  done

let test_seed_streams_independent () =
  let a = Seeds.trial_rng ~master:5 ~salt:3 in
  let b = Seeds.trial_rng ~master:5 ~salt:4 in
  let c = Seeds.trial_rng ~master:6 ~salt:3 in
  let collisions = ref 0 in
  for _ = 1 to 100 do
    let va = Prng.Rng.bits a and vb = Prng.Rng.bits b and vc = Prng.Rng.bits c in
    if va = vb || va = vc || vb = vc then incr collisions
  done;
  check Alcotest.int "no collisions" 0 !collisions

let test_tagged_rng () =
  let a = Seeds.tagged_rng ~master:1 ~tag:"x" in
  let a' = Seeds.tagged_rng ~master:1 ~tag:"x" in
  let b = Seeds.tagged_rng ~master:1 ~tag:"y" in
  check Alcotest.int "same tag same stream" (Prng.Rng.bits a) (Prng.Rng.bits a');
  check Alcotest.bool "different tags differ" true (Prng.Rng.bits a <> Prng.Rng.bits b)

(* ---------- Trial ---------- *)

let test_collect_deterministic () =
  let f rng = Prng.Rng.int rng 1000 in
  let a = Trial.collect ~trials:10 ~master:7 ~salt0:0 f in
  let b = Trial.collect ~trials:10 ~master:7 ~salt0:0 f in
  check Alcotest.(array int) "reproducible" a b;
  let c = Trial.collect ~trials:10 ~master:8 ~salt0:0 f in
  check Alcotest.bool "different master differs" true (a <> c)

let test_collect_censored () =
  let f rng = if Prng.Rng.int rng 2 = 0 then Some 1.0 else None in
  let r = Trial.collect_censored ~trials:100 ~master:7 ~salt0:0 f in
  check Alcotest.int "values + censored = trials" 100
    (Array.length r.Trial.values + r.Trial.censored);
  check Alcotest.bool "some of each" true
    (Array.length r.Trial.values > 10 && r.Trial.censored > 10)

let test_summarize_int () =
  let s, censored =
    Trial.summarize_int ~trials:50 ~master:1 ~salt0:0 (fun rng ->
        Some (Prng.Rng.int rng 10))
  in
  check Alcotest.int "no censoring" 0 censored;
  check Alcotest.int "count" 50 (Stats.Summary.count s);
  check Alcotest.bool "mean in range" true
    (Stats.Summary.mean s >= 0.0 && Stats.Summary.mean s <= 9.0)

let test_summarize_all_censored () =
  Alcotest.check_raises "all censored" (Failure "Trial: every trial was censored")
    (fun () ->
      ignore (Trial.summarize_int ~trials:5 ~master:1 ~salt0:0 (fun _ -> None)))

(* ---------- Csvout ---------- *)

let test_csv_escape () =
  check Alcotest.string "plain" "abc" (Csvout.escape "abc");
  check Alcotest.string "comma" "\"a,b\"" (Csvout.escape "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Csvout.escape "a\"b");
  check Alcotest.string "newline" "\"a\nb\"" (Csvout.escape "a\nb")

let test_csv_document () =
  let doc = Csvout.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "a,b"; "c" ] ] in
  check Alcotest.string "document" "x,y\n1,2\n\"a,b\",c\n" doc;
  Alcotest.check_raises "arity" (Invalid_argument "Csvout: row arity mismatch")
    (fun () -> ignore (Csvout.to_string ~header:[ "x" ] [ [ "1"; "2" ] ]))

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "cobra_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csvout.write_file path ~header:[ "a" ] [ [ "1" ]; [ "2" ] ];
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check Alcotest.string "file content" "a\n1\n2\n" content)

let csv_parse_roundtrip_prop =
  QCheck.Test.make ~name:"escaped fields never break row structure" ~count:200
    QCheck.(small_list (small_list printable_string))
    (fun rows ->
      QCheck.assume (rows <> [] && List.for_all (fun r -> List.length r = 2) rows);
      let doc = Csvout.to_string ~header:[ "a"; "b" ] rows in
      (* Count unquoted newlines = rows + header. *)
      let lines = ref 0 and in_quotes = ref false in
      String.iter
        (fun c ->
          if c = '"' then in_quotes := not !in_quotes
          else if c = '\n' && not !in_quotes then incr lines)
        doc;
      !lines = List.length rows + 1)

(* ---------- Report ---------- *)

let test_report_cells () =
  check Alcotest.string "integral float" "42" (Report.float_cell 42.0);
  check Alcotest.string "fractional" "3.142" (Report.float_cell 3.14159);
  let s = Stats.Summary.of_array [| 10.0; 11.0; 9.0; 10.0 |] in
  let cell = Report.mean_ci_cell s in
  check Alcotest.bool "has plus-minus" true
    (String.length cell > 2 && String.contains cell '\xc2' || String.contains cell ' ')

let () =
  Alcotest.run "simkit"
    [
      ( "scale",
        [
          Alcotest.test_case "parse" `Quick test_scale_parse;
          Alcotest.test_case "pick/roundtrip" `Quick test_scale_pick_roundtrip;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "deterministic" `Quick test_seed_streams_deterministic;
          Alcotest.test_case "independent" `Quick test_seed_streams_independent;
          Alcotest.test_case "tagged" `Quick test_tagged_rng;
        ] );
      ( "trial",
        [
          Alcotest.test_case "collect deterministic" `Quick test_collect_deterministic;
          Alcotest.test_case "censored accounting" `Quick test_collect_censored;
          Alcotest.test_case "summarize" `Quick test_summarize_int;
          Alcotest.test_case "all censored" `Quick test_summarize_all_censored;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "document" `Quick test_csv_document;
          Alcotest.test_case "file roundtrip" `Quick test_csv_file_roundtrip;
          qtest csv_parse_roundtrip_prop;
        ] );
      ("report", [ Alcotest.test_case "cells" `Quick test_report_cells ]);
    ]
