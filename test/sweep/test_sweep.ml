(* Tests for the sweep subsystem: the Cobra.Kernel instances must
   consume exactly the RNG streams of the historical one-shot drivers
   (so kernel-routed results are bit-for-bit the old results), grids
   must parse identically from JSON and inline forms, and checkpointed
   campaigns must resume to byte-identical artifacts. *)

module K = Cobra.Kernel
module B = Cobra.Branching
(* Kernels consume Graph.View; the bench-local reference loops below
   read the heap CSR back out of the view (free). *)
module GenC = Graph.Gen

module Gen = struct
  let v = Graph.View.of_csr
  let complete n = v (GenC.complete n)
  let cycle n = v (GenC.cycle n)
  let hypercube d = v (GenC.hypercube d)
  let ring_of_cliques ~cliques ~clique_size = v (GenC.ring_of_cliques ~cliques ~clique_size)
  let random_regular rng ~n ~r = v (GenC.random_regular rng ~n ~r)
end
module Rng = Prng.Rng
module Json = Simkit.Json

let check = Alcotest.check

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ---------- kernel/one-shot stream equivalence ----------

   Two independently created RNGs with the same seed produce the same
   stream; one feeds the kernel, one the historical driver. *)

let p0 = K.default_params

let test_cobra_stream () =
  let g = Gen.cycle 16 in
  for seed = 1 to 5 do
    let o = K.run K.cobra g p0 (Rng.create seed) in
    let expect = Cobra.Process.cover_time g ~branching:p0.K.branching ~start:0 (Rng.create seed) in
    check Alcotest.(option int) "cover time" expect
      (if o.K.completed then Some o.K.rounds else None)
  done

let test_bips_stream () =
  let g = Gen.complete 12 in
  for seed = 1 to 5 do
    let o = K.run K.bips g p0 (Rng.create seed) in
    let expect = Cobra.Bips.infection_time g ~branching:p0.K.branching ~source:0 (Rng.create seed) in
    check Alcotest.(option int) "infection time" expect
      (if o.K.completed then Some o.K.rounds else None)
  done

let test_rwalk_stream () =
  let g = Gen.cycle 10 in
  for seed = 1 to 5 do
    let o = K.run K.rwalk g p0 (Rng.create seed) in
    let expect = Cobra.Rwalk.cover_time g ~start:0 (Rng.create seed) in
    check Alcotest.(option int) "walk cover time" expect
      (if o.K.completed then Some o.K.rounds else None)
  done

let test_rwalk_multi_stream () =
  let g = Gen.cycle 12 in
  let params = { p0 with K.walkers = 3 } in
  for seed = 1 to 5 do
    let o = K.run K.rwalk g params (Rng.create seed) in
    let expect = Cobra.Rwalk.multi_cover_time g ~walkers:3 ~start:0 (Rng.create seed) in
    check Alcotest.(option int) "multi-walk cover time" expect
      (if o.K.completed then Some o.K.rounds else None)
  done

let test_push_stream () =
  let g = Gen.complete 15 in
  for seed = 1 to 5 do
    let o = K.run K.push g p0 (Rng.create seed) in
    match Cobra.Push.push g ~start:0 (Rng.create seed) with
    | None -> Alcotest.fail "one-shot push capped unexpectedly"
    | Some e ->
      check Alcotest.bool "completed" true o.K.completed;
      check Alcotest.int "rounds" e.Cobra.Push.rounds o.K.rounds;
      check (Alcotest.option (Alcotest.float 0.0)) "transmissions"
        (Some (float_of_int e.Cobra.Push.transmissions))
        (K.observation o "transmissions")
  done

let test_pull_stream () =
  let g = Gen.complete 15 in
  for seed = 1 to 5 do
    let o = K.run K.pull g p0 (Rng.create seed) in
    match Cobra.Push.pull g ~start:0 (Rng.create seed) with
    | None -> Alcotest.fail "one-shot pull capped unexpectedly"
    | Some e ->
      check Alcotest.bool "completed" true o.K.completed;
      check Alcotest.int "rounds" e.Cobra.Push.rounds o.K.rounds;
      check (Alcotest.option (Alcotest.float 0.0)) "transmissions"
        (Some (float_of_int e.Cobra.Push.transmissions))
        (K.observation o "transmissions")
  done

let test_push_pull_stream () =
  let g = Gen.cycle 14 in
  for seed = 1 to 5 do
    let o = K.run K.push_pull g p0 (Rng.create seed) in
    match Cobra.Push.push_pull g ~start:0 (Rng.create seed) with
    | None -> Alcotest.fail "one-shot push-pull capped unexpectedly"
    | Some e ->
      check Alcotest.bool "completed" true o.K.completed;
      check Alcotest.int "rounds" e.Cobra.Push.rounds o.K.rounds;
      check (Alcotest.option (Alcotest.float 0.0)) "transmissions"
        (Some (float_of_int e.Cobra.Push.transmissions))
        (K.observation o "transmissions")
  done

let test_coalesce_stream () =
  (* Non-bipartite so consensus is reachable: synchronous clusters in
     different colour classes of a bipartite graph can never meet. *)
  let g = Gen.complete 12 in
  let params = { p0 with K.walkers = 4 } in
  for seed = 1 to 5 do
    let o = K.run K.coalesce g params (Rng.create seed) in
    let expect = Cobra.Coalesce.consensus_time g ~walkers:4 ~start:0 (Rng.create seed) in
    check Alcotest.(option int) "consensus time" expect
      (if o.K.completed then Some o.K.rounds else None)
  done

let test_explore_stream () =
  let g = Gen.cycle 16 in
  for seed = 1 to 5 do
    let o = K.run K.explore g p0 (Rng.create seed) in
    let expect = Cobra.Explore.cover_time g ~start:0 (Rng.create seed) in
    check Alcotest.(option int) "explore cover time" expect
      (if o.K.completed then Some o.K.rounds else None)
  done

let test_sis_stream () =
  let g = Gen.complete 10 in
  let params = { p0 with K.recovery = 0.4 } in
  for seed = 1 to 8 do
    let o = K.run Epidemic.Kernels.sis g params (Rng.create seed) in
    let expect =
      Epidemic.Sis.run g
        { Epidemic.Sis.contacts = params.K.branching; recovery = params.K.recovery }
        ~persistent:None ~start:[ 0 ] (Rng.create seed)
    in
    match expect with
    | Epidemic.Sis.Extinct t ->
      check Alcotest.int "extinct round" t o.K.rounds;
      check (Alcotest.option (Alcotest.float 0.0)) "extinct flag" (Some 1.0)
        (K.observation o "extinct")
    | Epidemic.Sis.Everyone_infected_once t ->
      check Alcotest.int "saturation round" t o.K.rounds;
      check (Alcotest.option (Alcotest.float 0.0)) "ever" (Some 10.0)
        (K.observation o "ever")
    | Epidemic.Sis.Censored _ -> check Alcotest.bool "capped" false o.K.completed
  done

let test_contact_stream () =
  let g = Gen.complete 8 in
  let params = { p0 with K.rate = 1.5; horizon = 50.0 } in
  for seed = 1 to 8 do
    let o = K.run Epidemic.Kernels.contact g params (Rng.create seed) in
    let e =
      Epidemic.Contact.run ~horizon:50.0 g ~infection_rate:1.5 ~persistent:None
        ~start:[ 0 ] (Rng.create seed)
    in
    let code, time =
      match e.Epidemic.Contact.outcome with
      | Epidemic.Contact.Died_out t -> (0.0, t)
      | Epidemic.Contact.Fully_exposed t -> (1.0, t)
      | Epidemic.Contact.Still_active t -> (2.0, t)
    in
    check (Alcotest.option (Alcotest.float 0.0)) "outcome" (Some code)
      (K.observation o "outcome");
    check (Alcotest.option (Alcotest.float 1e-12)) "time" (Some time)
      (K.observation o "time");
    check (Alcotest.option (Alcotest.float 0.0)) "events"
      (Some (float_of_int e.Epidemic.Contact.events))
      (K.observation o "events")
  done

(* Regression: contact's single event-driven run used to leave [rounds]
   pinned at 1 with [is_complete] false on a [Still_active] outcome, so
   any caller-supplied cap > 1 (reachable from a sweep grid's [cap] key,
   which applies to every kernel) spun [K.run]'s loop forever. The
   kernel now counts step invocations, so the loop reaches the cap and
   reports the run as censored. *)
let test_contact_cap_terminates () =
  let g = Gen.complete 8 in
  (* Persistent source (can't die out), tiny rate and horizon: the run
     ends [Still_active] for this seed. *)
  let params =
    { p0 with K.rate = 0.01; horizon = 0.001; persistent = true; cap = Some 50 }
  in
  let o = K.run Epidemic.Kernels.contact g params (Rng.create 1) in
  check Alcotest.bool "censored, not complete" false o.K.completed;
  check Alcotest.int "rounds hit the cap" 50 o.K.rounds;
  check (Alcotest.option (Alcotest.float 0.0)) "still-active outcome" (Some 2.0)
    (K.observation o "outcome")

let test_herd_stream () =
  let g = Gen.ring_of_cliques ~cliques:3 ~clique_size:5 in
  List.iter
    (fun persistent ->
      let params = { p0 with K.persistent } in
      for seed = 1 to 8 do
        let o = K.run Epidemic.Kernels.herd g params (Rng.create seed) in
        let hp =
          { Epidemic.Herd.contacts = B.cobra_k2; infectious_rounds = 2; immune_rounds = 8 }
        in
        let pi = if persistent then [ 0 ] else [] in
        let index_cases = if persistent then [] else [ 0 ] in
        match Epidemic.Herd.run g hp ~pi ~index_cases (Rng.create seed) with
        | Epidemic.Herd.Herd_fully_exposed t ->
          check Alcotest.int "full-exposure round" t o.K.rounds;
          check (Alcotest.option (Alcotest.float 0.0)) "ever" (Some 15.0)
            (K.observation o "ever")
        | Epidemic.Herd.Infection_extinct t ->
          check Alcotest.int "extinction round" t o.K.rounds;
          check (Alcotest.option (Alcotest.float 0.0)) "extinct flag" (Some 1.0)
            (K.observation o "extinct")
        | Epidemic.Herd.No_resolution _ ->
          check Alcotest.bool "capped" false o.K.completed
      done)
    [ false; true ]

let test_seir_stream () =
  let g = Gen.ring_of_cliques ~cliques:3 ~clique_size:5 in
  let params = { p0 with K.latent_rounds = 2; infectious_rounds = 2 } in
  for seed = 1 to 8 do
    let o = K.run Epidemic.Kernels.seir g params (Rng.create seed) in
    let e =
      Epidemic.Seir.run g
        { Epidemic.Seir.contacts = params.K.branching; latent_rounds = 2;
          infectious_rounds = 2 }
        ~index_cases:[ 0 ] (Rng.create seed)
    in
    check Alcotest.int "rounds" e.Epidemic.Seir.rounds o.K.rounds;
    check Alcotest.bool "absorbed" true o.K.completed;
    check (Alcotest.option (Alcotest.float 0.0)) "ever"
      (Some (float_of_int e.Epidemic.Seir.ever))
      (K.observation o "ever");
    check (Alcotest.option (Alcotest.float 0.0)) "peak"
      (Some (float_of_int e.Epidemic.Seir.peak))
      (K.observation o "peak");
    check (Alcotest.option (Alcotest.float 0.0)) "gen_r"
      (Some e.Epidemic.Seir.gen_r)
      (K.observation o "gen_r")
  done

let test_registry_covers_all () =
  check Alcotest.(list string) "kernel names"
    [ "cobra"; "bips"; "rwalk"; "push"; "pull"; "push-pull"; "coalesce";
      "explore"; "sis"; "contact"; "herd"; "seir" ]
    (Sweep.Kernels.names ());
  List.iter
    (fun name ->
      match Sweep.Kernels.find name with
      | Some k -> check Alcotest.string "find returns the named kernel" name k.K.name
      | None -> Alcotest.fail ("kernel not found: " ^ name))
    (Sweep.Kernels.names ())

(* Unknown kernel names must fail with the full menu — the error is the
   registry's, so the grid parser and any future caller agree on it. *)
let test_find_res_unknown_lists_names () =
  (match Sweep.Kernels.find_res "cobra" with
  | Ok k -> check Alcotest.string "Ok on known name" "cobra" k.K.name
  | Error msg -> Alcotest.fail msg);
  (match Sweep.Kernels.find_res "nonesuch" with
  | Ok _ -> Alcotest.fail "expected Error for unknown kernel"
  | Error msg ->
    check Alcotest.bool ("names the bad kernel: " ^ msg) true
      (contains msg "nonesuch");
    List.iter
      (fun name ->
        check Alcotest.bool ("menu lists " ^ name) true (contains msg name))
      (Sweep.Kernels.names ()));
  (* The grid parser surfaces the same listing. *)
  match Sweep.Grid.of_inline "graphs=cycle:8;kernels=nonesuch" with
  | Ok _ -> Alcotest.fail "expected grid parse error"
  | Error msg ->
    List.iter
      (fun name ->
        check Alcotest.bool ("grid error lists " ^ name) true (contains msg name))
      [ "pull"; "push-pull"; "coalesce"; "explore" ]

(* ---------- word-scan stream identity ----------

   The word-parallel bitset rewrite promises to consume bit-for-bit the
   RNG streams of the pre-rewrite kernels. Each reference function below
   is a frozen copy of the pre-rewrite inner loop (bit-by-bit membership
   scans over 0..n-1, checked accessors). The live kernel and the
   reference run on independently created equal-seed streams; outcomes
   must match AND the two streams must sit at the same position
   afterwards (16 post-run draws compared), so a kernel that draws the
   same answer from a different number of draws still fails. *)

module Bitset = Dstruct.Bitset

let same_tail msg a b =
  for i = 1 to 16 do
    check Alcotest.int (Printf.sprintf "%s: post-run draw %d" msg i) (Rng.bits a)
      (Rng.bits b)
  done

(* Pre-rewrite Push.push: full 0..n-1 scan with per-vertex membership
   tests. *)
let push_reference ?cap g ~start rng =
  let g = Graph.View.to_csr g in
  let n = Graph.Csr.n_vertices g in
  let cap = match cap with Some c -> c | None -> 10_000 + (100 * n) in
  let informed = Bitset.create n in
  Bitset.add informed start;
  let count = ref 1 and rounds = ref 0 and transmissions = ref 0 in
  while !count < n && !rounds < cap do
    let newly = ref [] in
    for u = 0 to n - 1 do
      if Bitset.mem informed u then begin
        incr transmissions;
        let w = Graph.Csr.random_neighbour g rng u in
        if not (Bitset.mem informed w) then newly := w :: !newly
      end
    done;
    List.iter
      (fun w ->
        if not (Bitset.mem informed w) then begin
          Bitset.add informed w;
          incr count
        end)
      !newly;
    incr rounds
  done;
  if !count = n then Some (!rounds, !transmissions) else None

(* Pre-rewrite Sis.step loop, checked bitset operations throughout. *)
let sis_reference ?cap g ~contacts ~recovery ~persistent ~start rng =
  let n = Graph.View.n_vertices g in
  let cap = match cap with Some c -> c | None -> 10_000 + (100 * n) in
  let infected = Bitset.create n and ever = Bitset.create n in
  let seed_list = match persistent with Some v -> v :: start | None -> start in
  List.iter
    (fun v ->
      Bitset.add infected v;
      Bitset.add ever v)
    seed_list;
  let next = Bitset.create n in
  let infected = ref infected and next = ref next in
  let count = ref (Bitset.cardinal !infected) in
  let ever_count = ref !count in
  let round = ref 0 in
  while !count > 0 && !ever_count < n && !round < cap do
    Bitset.clear !next;
    let c = ref 0 in
    let infect u =
      Bitset.add !next u;
      incr c;
      if not (Bitset.mem ever u) then begin
        Bitset.add ever u;
        incr ever_count
      end
    in
    for u = 0 to n - 1 do
      if persistent = Some u then infect u
      else begin
        let stays = Bitset.mem !infected u && not (Rng.bernoulli rng recovery) in
        if stays then infect u
        else begin
          let hit = ref false in
          let chk w = if Bitset.mem !infected w then hit := true in
          ignore (B.iter_picks contacts rng g u ~f:chk);
          if !hit then infect u
        end
      end
    done;
    let old = !infected in
    infected := !next;
    next := old;
    count := !c;
    incr round
  done;
  (!round, !count, !ever_count)

(* Pre-rewrite Bips.step loop. *)
let bips_reference ?cap g ~branching ~source rng =
  let n = Graph.View.n_vertices g in
  let cap = match cap with Some c -> c | None -> 10_000 + (100 * n) in
  let infected = ref (Bitset.create n) and next = ref (Bitset.create n) in
  Bitset.add !infected source;
  let count = ref 1 and round = ref 0 in
  while !count < n && !round < cap do
    Bitset.clear !next;
    let c = ref 0 in
    for u = 0 to n - 1 do
      if u = source then begin
        Bitset.add !next u;
        incr c
      end
      else begin
        let hit = ref false in
        let chk w = if Bitset.mem !infected w then hit := true in
        ignore (B.iter_picks branching rng g u ~f:chk);
        if !hit then begin
          Bitset.add !next u;
          incr c
        end
      end
    done;
    let old = !infected in
    infected := !next;
    next := old;
    count := !c;
    incr round
  done;
  if !count = n then Some !round else None

let identity_graphs () =
  [
    ("cycle-33", Gen.cycle 33);
    ("q6", Gen.hypercube 6);
    ( "rr3-65",
      Gen.random_regular (Simkit.Seeds.tagged_rng ~master:7 ~tag:"ident:g")
        ~n:65 ~r:4 );
  ]

let test_push_stream_identity () =
  List.iter
    (fun (name, g) ->
      for seed = 1 to 4 do
        let ra = Rng.create seed and rb = Rng.create seed in
        let live = Cobra.Push.push g ~start:0 ra in
        let reference = push_reference g ~start:0 rb in
        let live =
          Option.map (fun o -> (o.Cobra.Push.rounds, o.Cobra.Push.transmissions)) live
        in
        check
          Alcotest.(option (pair int int))
          (name ^ ": push outcome") reference live;
        same_tail (name ^ ": push") ra rb
      done)
    (identity_graphs ())

let test_sis_stream_identity () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun persistent ->
          for seed = 1 to 4 do
            let ra = Rng.create seed and rb = Rng.create seed in
            let params = { Epidemic.Sis.contacts = B.cobra_k2; recovery = 0.5 } in
            let start = if persistent = None then [ 0 ] else [] in
            let outcome = Epidemic.Sis.run g params ~persistent ~start ra in
            let rounds, count, ever =
              sis_reference g ~contacts:B.cobra_k2 ~recovery:0.5 ~persistent ~start rb
            in
            (match outcome with
            | Epidemic.Sis.Extinct t ->
              check Alcotest.int (name ^ ": extinct round") rounds t;
              check Alcotest.int (name ^ ": extinct count") 0 count
            | Epidemic.Sis.Everyone_infected_once t ->
              check Alcotest.int (name ^ ": saturation round") rounds t;
              check Alcotest.int (name ^ ": ever") (Graph.View.n_vertices g) ever
            | Epidemic.Sis.Censored t -> check Alcotest.int (name ^ ": cap") rounds t);
            same_tail (name ^ ": sis") ra rb
          done)
        [ None; Some 0 ])
    (identity_graphs ())

let test_bips_stream_identity () =
  List.iter
    (fun (name, g) ->
      for seed = 1 to 4 do
        let ra = Rng.create seed and rb = Rng.create seed in
        let live = Cobra.Bips.infection_time g ~branching:B.cobra_k2 ~source:0 ra in
        let reference = bips_reference g ~branching:B.cobra_k2 ~source:0 rb in
        check Alcotest.(option int) (name ^ ": bips outcome") reference live;
        same_tail (name ^ ": bips") ra rb
      done)
    (identity_graphs ())

(* Process.step's frontier bookkeeping (hybrid member-wise/word-fill
   clear) must not touch the stream: cover under a copied RNG, then
   compare positions against an independent equal-seed stream advanced
   by the frontier-trajectory driver. *)
let test_cobra_stream_identity () =
  List.iter
    (fun (name, g) ->
      for seed = 1 to 4 do
        let ra = Rng.create seed and rb = Rng.create seed in
        let cover = Cobra.Process.cover_time g ~branching:B.cobra_k2 ~start:0 ra in
        let traj = Cobra.Process.frontier_trajectory g ~branching:B.cobra_k2 ~start:0 rb in
        (match cover with
        | Some t -> check Alcotest.int (name ^ ": rounds") (Array.length traj - 1) t
        | None -> ());
        same_tail (name ^ ": cobra") ra rb
      done)
    (identity_graphs ())

(* ---------- grid parsing ---------- *)

let addresses grid =
  List.map (fun c -> c.Simkit.Campaign.address) (Sweep.Grid.cells grid)

let test_grid_inline_json_agree () =
  let inline =
    "name=demo;graphs=cycle:12,complete:8;kernels=cobra,sis;branching=k=2,k=3;\
     trials=4;recovery=0.25"
  in
  let json =
    {|{"schema": "cobra.sweep-grid/1", "name": "demo",
       "graphs": ["cycle:12", "complete:8"], "kernels": ["cobra", "sis"],
       "branching": ["k=2", "k=3"], "trials": 4,
       "params": {"recovery": 0.25}}|}
  in
  match (Sweep.Grid.of_inline inline, Json.of_string json) with
  | Ok gi, Ok doc -> (
    match Sweep.Grid.of_json doc with
    | Ok gj ->
      check Alcotest.string "name" gi.Sweep.Grid.name gj.Sweep.Grid.name;
      check Alcotest.int "trials" gi.Sweep.Grid.trials gj.Sweep.Grid.trials;
      check (Alcotest.float 0.0) "recovery" gi.Sweep.Grid.base.K.recovery
        gj.Sweep.Grid.base.K.recovery;
      check Alcotest.(list string) "same cells" (addresses gi) (addresses gj);
      check Alcotest.int "cell count" 8 (List.length (addresses gi))
    | Error msg -> Alcotest.fail ("json grid: " ^ msg))
  | Error msg, _ -> Alcotest.fail ("inline grid: " ^ msg)
  | _, Error msg -> Alcotest.fail ("json parse: " ^ msg)

let test_grid_errors () =
  let fails s =
    match Sweep.Grid.of_inline s with
    | Ok _ -> Alcotest.fail ("expected a parse error: " ^ s)
    | Error _ -> ()
  in
  fails "kernels=cobra";                           (* no graphs *)
  fails "graphs=cycle:8";                          (* no kernels *)
  fails "graphs=cycle:8;kernels=nonesuch";         (* unknown kernel *)
  fails "graphs=cycle:8;kernels=cobra;trials=0";   (* trials < 1 *)
  fails "graphs=cycle:8;kernels=cobra;bogus=1";    (* unknown key *)
  fails "graphs=not-a-graph;kernels=cobra"         (* bad graph spec *)

let test_grid_addresses_unique () =
  match
    Sweep.Grid.of_inline
      "graphs=cycle:8,cycle:9,complete:5;kernels=cobra,bips,push;branching=k=2,k=3"
  with
  | Error msg -> Alcotest.fail msg
  | Ok grid ->
    let addrs = addresses grid in
    check Alcotest.int "18 cells" 18 (List.length addrs);
    check Alcotest.int "unique addresses" 18
      (List.length (List.sort_uniq compare addrs));
    List.iteri
      (fun i c -> check Alcotest.int "positional index" i c.Simkit.Campaign.index)
      (Sweep.Grid.cells grid)

(* A typo'd --grid file path must fail as a missing file, not fall
   through to the inline parser's "expected key=value" errors. *)
let test_load_missing_file () =
  let expect_missing s =
    match Sweep.Grid.load s with
    | Ok _ -> Alcotest.fail ("expected a missing-file error: " ^ s)
    | Error msg ->
      check Alcotest.bool ("mentions no such file: " ^ msg) true
        (contains msg "no such file")
  in
  expect_missing "/nonexistent/sweep.json";
  expect_missing "sweep.jsonn";
  (* Inline strings still load when they are not paths. *)
  match Sweep.Grid.load "graphs=cycle:8;kernels=cobra" with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("inline via load: " ^ msg)

let test_cell_payload_deterministic () =
  match Sweep.Grid.of_inline "graphs=cycle:12;kernels=cobra,sis;trials=3" with
  | Error msg -> Alcotest.fail msg
  | Ok grid ->
    List.iter
      (fun c ->
        let salt = Simkit.Campaign.salt_of_address c.Simkit.Campaign.address in
        let a = Json.to_string (c.Simkit.Campaign.run ~master:7 ~salt) in
        let b = Json.to_string (c.Simkit.Campaign.run ~master:7 ~salt) in
        check Alcotest.string "payload is pure in (master, salt)" a b;
        let other = Json.to_string (c.Simkit.Campaign.run ~master:8 ~salt) in
        check Alcotest.bool "payload depends on master" true (a <> other))
      (Sweep.Grid.cells grid)

(* ---------- lane engine ----------

   The bit-sliced engine promises: [`Scalar] through [run_trials] is
   draw-for-draw the historical per-trial loop; [`Lanes] returns one
   outcome per trial in trial order for every remainder mod 64, is
   deterministic in (master, salt0), agrees with scalar at full-batch
   granularity prefixes (batch 0 of trials=65 IS the trials=64 run),
   falls back to scalar for unsliced kernels/params, and matches scalar
   summary statistics within Monte-Carlo tolerance. *)

let outcome_t =
  Alcotest.testable
    (fun fmt o ->
      Format.fprintf fmt "{completed=%b; rounds=%d; %s}" o.K.completed o.K.rounds
        (String.concat "; "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) o.K.observations)))
    ( = )

let outcomes_t = Alcotest.list outcome_t

let lanes_kernels =
  [
    ("cobra", K.cobra, p0);
    ("bips", K.bips, p0);
    ("push", K.push, p0);
    ("sis", Epidemic.Kernels.sis, { p0 with K.recovery = 0.4 });
    ("sis-persistent", Epidemic.Kernels.sis,
     { p0 with K.recovery = 0.4; persistent = true });
    ("bips-1+rho", K.bips, { p0 with K.branching = B.one_plus 0.5 });
  ]

let test_run_trials_scalar_is_the_loop () =
  let g = Gen.hypercube 4 in
  List.iter
    (fun (name, k, params) ->
      let got =
        Sweep.Kernels.run_trials ~engine:`Scalar k g params ~trials:5 ~master:7
          ~salt0:12_345
      in
      let want =
        Array.init 5 (fun i ->
            K.run k g params (Simkit.Seeds.trial_rng ~master:7 ~salt:(12_345 + i)))
      in
      check outcomes_t (name ^ ": scalar run_trials = historical loop")
        (Array.to_list want) (Array.to_list got))
    lanes_kernels

let test_lanes_remainders_and_determinism () =
  let g = Gen.hypercube 4 in
  List.iter
    (fun (name, k, params) ->
      check Alcotest.bool (name ^ ": lanes-capable") true
        (Sweep.Kernels.lanes_capable k params);
      List.iter
        (fun trials ->
          let run () =
            Sweep.Kernels.run_trials ~engine:`Lanes k g params ~trials ~master:11
              ~salt0:777
          in
          let a = run () in
          check Alcotest.int
            (Printf.sprintf "%s: %d trials -> %d outcomes" name trials trials)
            trials (Array.length a);
          check outcomes_t
            (Printf.sprintf "%s: trials=%d deterministic" name trials)
            (Array.to_list a)
            (Array.to_list (run ())))
        [ 1; 63; 64; 65; 130 ])
    lanes_kernels

(* Full batches are identical across trial counts: lanes of batch b
   couple only through shared rejection rounds and skip decisions, both
   functions of the batch's own live mask, so batch 0 of a 65- or
   130-trial run replays the 64-trial run exactly. (No such promise for
   partial batches: a short live mask changes the skip decisions.) *)
let test_lanes_batch_prefix_identity () =
  let g = Gen.hypercube 4 in
  List.iter
    (fun (name, k, params) ->
      let at trials =
        Sweep.Kernels.run_trials ~engine:`Lanes k g params ~trials ~master:11
          ~salt0:777
      in
      let base = Array.to_list (at 64) in
      List.iter
        (fun trials ->
          let long = at trials in
          check outcomes_t
            (Printf.sprintf "%s: first 64 of trials=%d = trials=64" name trials)
            base
            (Array.to_list (Array.sub long 0 64)))
        [ 65; 130 ])
    lanes_kernels

let test_lanes_fallback_is_scalar () =
  let g = Gen.hypercube 4 in
  (* rwalk has no sliced stepper; Distinct branching has no sliced
     pick. Both must silently run the scalar loop. *)
  List.iter
    (fun (name, k, params) ->
      check Alcotest.bool (name ^ ": not lanes-capable") false
        (Sweep.Kernels.lanes_capable k params);
      let under engine =
        Sweep.Kernels.run_trials ~engine k g params ~trials:7 ~master:5 ~salt0:50
      in
      check outcomes_t (name ^ ": lanes falls back to scalar draws")
        (Array.to_list (under `Scalar))
        (Array.to_list (under `Lanes)))
    [
      ("rwalk", K.rwalk, p0);
      ("pull", K.pull, p0);
      ("push-pull", K.push_pull, p0);
      ("coalesce", K.coalesce, { p0 with K.walkers = 4 });
      ("explore", K.explore, p0);
      ("bips-distinct", K.bips, { p0 with K.branching = B.distinct 2 });
      ("sis-distinct", Epidemic.Kernels.sis,
       { p0 with K.recovery = 0.4; branching = B.distinct 2 });
      ("seir", Epidemic.Kernels.seir,
       { p0 with K.latent_rounds = 2; infectious_rounds = 2 });
    ]

(* Scalar and lanes draw the same per-trial distribution, so with 192
   common-random-number trials each the mean rounds must agree within a
   few standard errors. Deterministic in the fixed seeds. *)
let test_lanes_summary_matches_scalar () =
  let g = Gen.hypercube 5 in
  List.iter
    (fun (name, k, params) ->
      let trials = 192 in
      let rounds engine =
        let out =
          Sweep.Kernels.run_trials ~engine k g params ~trials ~master:3 ~salt0:9_000
        in
        Array.map (fun o -> float_of_int o.K.rounds) out
      in
      let stats a =
        let n = float_of_int (Array.length a) in
        let mean = Array.fold_left ( +. ) 0.0 a /. n in
        let var =
          Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
          /. (n -. 1.0)
        in
        (mean, var /. n)
      in
      let ms, vs = stats (rounds `Scalar) in
      let ml, vl = stats (rounds `Lanes) in
      let bound = (5.0 *. sqrt (vs +. vl)) +. 1e-9 in
      check Alcotest.bool
        (Printf.sprintf "%s: |%.3f - %.3f| <= %.3f" name ms ml bound)
        true
        (Float.abs (ms -. ml) <= bound))
    lanes_kernels

let test_grid_engine_parse () =
  let engine_of s =
    match Sweep.Grid.of_inline s with
    | Ok g -> Sweep.Kernels.engine_to_string g.Sweep.Grid.engine
    | Error msg -> Alcotest.fail msg
  in
  check Alcotest.string "inline default" "scalar"
    (engine_of "graphs=cycle:8;kernels=bips");
  check Alcotest.string "inline engine=lanes" "lanes"
    (engine_of "graphs=cycle:8;kernels=bips;engine=lanes");
  (match Sweep.Grid.of_inline "graphs=cycle:8;kernels=bips;engine=warp" with
  | Ok _ -> Alcotest.fail "expected unknown-engine error"
  | Error msg ->
    check Alcotest.bool ("mentions engine: " ^ msg) true (contains msg "engine"));
  match
    Json.of_string
      {|{"graphs": ["cycle:8"], "kernels": ["bips"], "engine": "lanes"}|}
  with
  | Error msg -> Alcotest.fail msg
  | Ok doc -> (
    match Sweep.Grid.of_json doc with
    | Ok g ->
      check Alcotest.string "json engine=lanes" "lanes"
        (Sweep.Kernels.engine_to_string g.Sweep.Grid.engine)
    | Error msg -> Alcotest.fail ("json grid: " ^ msg))

(* ---------- campaign resume equivalence (end to end) ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "sweep_test_%d_%d" (Unix.getpid ()) !counter)
    in
    dir

let run_campaign ~dir ~domains ~resume ?max_cells ?cache cells =
  Simkit.Campaign.run
    { Simkit.Campaign.dir; master = 9; resume; max_cells; domains = Some domains;
      cache; progress = ignore }
    ~name:"equiv" ~cells

let test_resume_byte_identical () =
  List.iter
    (fun domains ->
      match
        Sweep.Grid.of_inline
          "name=equiv;graphs=cycle:12,complete:8;kernels=cobra,bips,sis;trials=3"
      with
      | Error msg -> Alcotest.fail msg
      | Ok grid -> (
        let cells = Sweep.Grid.cells grid in
        let dir_a = fresh_dir () and dir_b = fresh_dir () in
        (* A: uninterrupted.  B: killed after 2 cells, then resumed. *)
        (match run_campaign ~dir:dir_a ~domains ~resume:false cells with
        | Ok r -> check Alcotest.int "A complete" 0 r.Simkit.Campaign.remaining
        | Error msg -> Alcotest.fail msg);
        (match run_campaign ~dir:dir_b ~domains ~resume:false ~max_cells:2 cells with
        | Ok r ->
          check Alcotest.int "B interrupted with cells left" 4
            r.Simkit.Campaign.remaining
        | Error msg -> Alcotest.fail msg);
        match run_campaign ~dir:dir_b ~domains ~resume:true cells with
        | Error msg -> Alcotest.fail msg
        | Ok r ->
          check Alcotest.int "B resumed to completion" 0 r.Simkit.Campaign.remaining;
          check Alcotest.int "B reused the checkpointed cells" 2
            r.Simkit.Campaign.reused;
          check Alcotest.string "manifest byte-identical"
            (read_file (Filename.concat dir_a "manifest.json"))
            (read_file (Filename.concat dir_b "manifest.json"));
          List.iter
            (fun c ->
              let f =
                Printf.sprintf "cells/cell_%05d.json" c.Simkit.Campaign.index
              in
              check Alcotest.string ("cell byte-identical: " ^ f)
                (read_file (Filename.concat dir_a f))
                (read_file (Filename.concat dir_b f)))
            cells))
    [ 1; 2 ]

(* The four newcomer kernels ride the same campaign machinery: an
   interrupted campaign over them resumes to byte-identical artifacts,
   and the artifacts are byte-identical across worker-domain counts. *)
let test_new_kernels_resume_byte_identical () =
  match
    Sweep.Grid.of_inline
      "name=equiv;graphs=cycle:15,complete:8;\
       kernels=pull,push-pull,coalesce,explore;walkers=3;trials=3"
  with
  | Error msg -> Alcotest.fail msg
  | Ok grid -> (
    let cells = Sweep.Grid.cells grid in
    let dir_a = fresh_dir () and dir_b = fresh_dir () and dir_c = fresh_dir () in
    (* A: uninterrupted, 1 domain.  B: killed after 2 cells, resumed.
       C: uninterrupted, 2 domains. *)
    (match run_campaign ~dir:dir_a ~domains:1 ~resume:false cells with
    | Ok r -> check Alcotest.int "A complete" 0 r.Simkit.Campaign.remaining
    | Error msg -> Alcotest.fail msg);
    (match run_campaign ~dir:dir_b ~domains:1 ~resume:false ~max_cells:2 cells with
    | Ok r ->
      check Alcotest.int "B interrupted with cells left" 6
        r.Simkit.Campaign.remaining
    | Error msg -> Alcotest.fail msg);
    (match run_campaign ~dir:dir_c ~domains:2 ~resume:false cells with
    | Ok r -> check Alcotest.int "C complete" 0 r.Simkit.Campaign.remaining
    | Error msg -> Alcotest.fail msg);
    match run_campaign ~dir:dir_b ~domains:1 ~resume:true cells with
    | Error msg -> Alcotest.fail msg
    | Ok r ->
      check Alcotest.int "B resumed to completion" 0 r.Simkit.Campaign.remaining;
      check Alcotest.int "B reused the checkpointed cells" 2
        r.Simkit.Campaign.reused;
      let compare_dirs tag other =
        check Alcotest.string (tag ^ ": manifest byte-identical")
          (read_file (Filename.concat dir_a "manifest.json"))
          (read_file (Filename.concat other "manifest.json"));
        List.iter
          (fun c ->
            let f =
              Printf.sprintf "cells/cell_%05d.json" c.Simkit.Campaign.index
            in
            check Alcotest.string (tag ^ ": cell byte-identical: " ^ f)
              (read_file (Filename.concat dir_a f))
              (read_file (Filename.concat other f)))
          cells
      in
      compare_dirs "resume" dir_b;
      compare_dirs "domains=2" dir_c)

(* The SEIR kernel on preferential-attachment graphs rides the same
   machinery: kernel=seir / graph=ba:... sweep cells (with the new
   latent_rounds grid key in the cell identity) checkpoint, resume to
   byte-identical artifacts, and agree byte-for-byte across
   worker-domain counts 1 and 2. *)
let test_seir_ba_resume_byte_identical () =
  match
    Sweep.Grid.of_inline
      "name=equiv;graphs=ba:24x2,ba:24x2x0.5;kernels=seir,sis;\
       latent_rounds=2;trials=3"
  with
  | Error msg -> Alcotest.fail msg
  | Ok grid -> (
    let cells = Sweep.Grid.cells grid in
    check Alcotest.int "grid spans both graphs and kernels" 4 (List.length cells);
    let dir_a = fresh_dir () and dir_b = fresh_dir () and dir_c = fresh_dir () in
    (* A: uninterrupted, 1 domain.  B: killed after 2 cells, resumed.
       C: uninterrupted, 2 domains. *)
    (match run_campaign ~dir:dir_a ~domains:1 ~resume:false cells with
    | Ok r -> check Alcotest.int "A complete" 0 r.Simkit.Campaign.remaining
    | Error msg -> Alcotest.fail msg);
    (match run_campaign ~dir:dir_b ~domains:1 ~resume:false ~max_cells:2 cells with
    | Ok r ->
      check Alcotest.int "B interrupted with cells left" 2
        r.Simkit.Campaign.remaining
    | Error msg -> Alcotest.fail msg);
    (match run_campaign ~dir:dir_c ~domains:2 ~resume:false cells with
    | Ok r -> check Alcotest.int "C complete" 0 r.Simkit.Campaign.remaining
    | Error msg -> Alcotest.fail msg);
    match run_campaign ~dir:dir_b ~domains:1 ~resume:true cells with
    | Error msg -> Alcotest.fail msg
    | Ok r ->
      check Alcotest.int "B resumed to completion" 0 r.Simkit.Campaign.remaining;
      check Alcotest.int "B reused the checkpointed cells" 2
        r.Simkit.Campaign.reused;
      let compare_dirs tag other =
        check Alcotest.string (tag ^ ": manifest byte-identical")
          (read_file (Filename.concat dir_a "manifest.json"))
          (read_file (Filename.concat other "manifest.json"));
        List.iter
          (fun c ->
            let f =
              Printf.sprintf "cells/cell_%05d.json" c.Simkit.Campaign.index
            in
            check Alcotest.string (tag ^ ": cell byte-identical: " ^ f)
              (read_file (Filename.concat dir_a f))
              (read_file (Filename.concat other f)))
          cells
      in
      compare_dirs "resume" dir_b;
      compare_dirs "domains=2" dir_c)

(* The content-addressed result cache: a second campaign over the same
   grid (fresh directory, shared store) must complete without running a
   single cell, and its artifacts must be byte-identical to the
   computed ones. A grid differing in trials must miss every entry. *)
let test_cache_second_campaign_all_hits () =
  let grid_of s =
    match Sweep.Grid.of_inline s with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  let base = "name=equiv;graphs=cycle:12,complete:8;kernels=cobra,sis" in
  let cells = Sweep.Grid.cells (grid_of (base ^ ";trials=3")) in
  let cache = fresh_dir () in
  let store = Simkit.Cellstore.open_ ~dir:cache in
  let dir_a = fresh_dir () and dir_b = fresh_dir () and dir_c = fresh_dir () in
  (match run_campaign ~dir:dir_a ~domains:1 ~resume:false ~cache:store cells with
  | Ok r ->
    check Alcotest.int "first run computes all cells" 4 r.Simkit.Campaign.ran;
    check Alcotest.int "first run has no hits" 0 r.Simkit.Campaign.cached
  | Error msg -> Alcotest.fail msg);
  (match run_campaign ~dir:dir_b ~domains:2 ~resume:false ~cache:store cells with
  | Ok r ->
    check Alcotest.int "second run computes nothing" 0 r.Simkit.Campaign.ran;
    check Alcotest.int "second run is 100% cache hits" 4 r.Simkit.Campaign.cached;
    check Alcotest.int "second run completes" 0 r.Simkit.Campaign.remaining
  | Error msg -> Alcotest.fail msg);
  check Alcotest.string "cached campaign manifest byte-identical"
    (read_file (Filename.concat dir_a "manifest.json"))
    (read_file (Filename.concat dir_b "manifest.json"));
  List.iter
    (fun c ->
      let f = Printf.sprintf "cells/cell_%05d.json" c.Simkit.Campaign.index in
      check Alcotest.string ("cached cell byte-identical: " ^ f)
        (read_file (Filename.concat dir_a f))
        (read_file (Filename.concat dir_b f)))
    cells;
  (* Changing trials changes the meta digest: every lookup must miss. *)
  let cells4 = Sweep.Grid.cells (grid_of (base ^ ";trials=4")) in
  match run_campaign ~dir:dir_c ~domains:1 ~resume:false ~cache:store cells4 with
  | Ok r ->
    check Alcotest.int "different trials recompute" 4 r.Simkit.Campaign.ran;
    check Alcotest.int "no false hits across trial counts" 0
      r.Simkit.Campaign.cached
  | Error msg -> Alcotest.fail msg

(* Regression: the campaign identity must cover trials and base
   parameters, which cell addresses alone don't encode — resuming after
   changing them must refuse, not silently reuse stale checkpoints. *)
let test_resume_refuses_changed_params () =
  let grid_of s =
    match Sweep.Grid.of_inline s with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  let base = "name=equiv;graphs=cycle:8;kernels=cobra,sis" in
  List.iter
    (fun changed ->
      let dir = fresh_dir () in
      (match
         run_campaign ~dir ~domains:1 ~resume:false
           (Sweep.Grid.cells (grid_of (base ^ ";trials=3")))
       with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg);
      match
        run_campaign ~dir ~domains:1 ~resume:true
          (Sweep.Grid.cells (grid_of (base ^ changed)))
      with
      | Ok _ -> Alcotest.fail ("expected refusal after changing " ^ changed)
      | Error msg ->
        check Alcotest.bool ("refusal explains the mismatch: " ^ msg) true
          (contains msg "different campaign"))
    [ ";trials=4"; ";trials=3;recovery=0.7" ]

(* A lanes campaign (trials=70: one full batch + a remainder, plus
   rwalk's scalar fallback in the mix) must resume mid-campaign to
   byte-identical artifacts, exactly like the scalar one above. *)
let test_lanes_resume_byte_identical () =
  List.iter
    (fun domains ->
      match
        Sweep.Grid.of_inline
          "name=equiv;engine=lanes;graphs=cycle:12,complete:8;\
           kernels=bips,sis,rwalk;trials=70"
      with
      | Error msg -> Alcotest.fail msg
      | Ok grid -> (
        let cells = Sweep.Grid.cells grid in
        let dir_a = fresh_dir () and dir_b = fresh_dir () in
        (match run_campaign ~dir:dir_a ~domains ~resume:false cells with
        | Ok r -> check Alcotest.int "A complete" 0 r.Simkit.Campaign.remaining
        | Error msg -> Alcotest.fail msg);
        (match run_campaign ~dir:dir_b ~domains ~resume:false ~max_cells:2 cells with
        | Ok r ->
          check Alcotest.int "B interrupted with cells left" 4
            r.Simkit.Campaign.remaining
        | Error msg -> Alcotest.fail msg);
        match run_campaign ~dir:dir_b ~domains ~resume:true cells with
        | Error msg -> Alcotest.fail msg
        | Ok r ->
          check Alcotest.int "B resumed to completion" 0 r.Simkit.Campaign.remaining;
          check Alcotest.int "B reused the checkpointed cells" 2
            r.Simkit.Campaign.reused;
          check Alcotest.string "manifest byte-identical"
            (read_file (Filename.concat dir_a "manifest.json"))
            (read_file (Filename.concat dir_b "manifest.json"));
          List.iter
            (fun c ->
              let f =
                Printf.sprintf "cells/cell_%05d.json" c.Simkit.Campaign.index
              in
              check Alcotest.string ("cell byte-identical: " ^ f)
                (read_file (Filename.concat dir_a f))
                (read_file (Filename.concat dir_b f)))
            cells))
    [ 1; 2 ]

(* The engine is part of the campaign identity: checkpoints written
   under one engine must refuse to resume under the other, in both
   directions (lanes results are not draw-for-draw scalar results, so
   silent reuse would mix streams). *)
let test_resume_refuses_changed_engine () =
  let base = "name=equiv;graphs=cycle:8;kernels=bips,sis;trials=66" in
  let grid_of s =
    match Sweep.Grid.of_inline s with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  List.iter
    (fun (first, second) ->
      let dir = fresh_dir () in
      (match
         run_campaign ~dir ~domains:1 ~resume:false
           (Sweep.Grid.cells (grid_of (base ^ first)))
       with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg);
      match
        run_campaign ~dir ~domains:1 ~resume:true
          (Sweep.Grid.cells (grid_of (base ^ second)))
      with
      | Ok _ ->
        Alcotest.fail
          (Printf.sprintf "expected refusal resuming %S under %S" first second)
      | Error msg ->
        check Alcotest.bool ("refusal explains the mismatch: " ^ msg) true
          (contains msg "different campaign"))
    [ (";engine=lanes", ""); ("", ";engine=lanes") ]

(* ---------- topology backends in the campaign identity ---------- *)

let test_grid_backend_parse () =
  let backend_of s =
    match Sweep.Grid.of_inline s with
    | Ok g -> Graph.View.backend_to_string g.Sweep.Grid.backend
    | Error msg -> Alcotest.fail msg
  in
  check Alcotest.string "inline default" "heap"
    (backend_of "graphs=cycle:8;kernels=bips");
  check Alcotest.string "inline backend=bigarray" "bigarray"
    (backend_of "graphs=cycle:8;kernels=bips;backend=bigarray");
  check Alcotest.string "inline backend=implicit" "implicit"
    (backend_of "graphs=cycle:8;kernels=bips;backend=implicit");
  (match Sweep.Grid.of_inline "graphs=cycle:8;kernels=bips;backend=gpu" with
  | Ok _ -> Alcotest.fail "expected unknown-backend error"
  | Error msg ->
    check Alcotest.bool ("mentions backend: " ^ msg) true (contains msg "backend"));
  match
    Json.of_string
      {|{"graphs": ["cycle:8"], "kernels": ["bips"], "backend": "bigarray"}|}
  with
  | Error msg -> Alcotest.fail msg
  | Ok doc -> (
    match Sweep.Grid.of_json doc with
    | Ok g ->
      check Alcotest.string "json backend=bigarray" "bigarray"
        (Graph.View.backend_to_string g.Sweep.Grid.backend)
    | Error msg -> Alcotest.fail ("json grid: " ^ msg))

(* backend=heap must be the omitted default in the campaign meta: a grid
   that spells it out resumes a campaign recorded without it (this is
   what keeps every pre-backend checkpoint on disk valid). *)
let test_backend_heap_meta_is_omitted () =
  let grid_of s =
    match Sweep.Grid.of_inline s with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  let base = "name=equiv;graphs=cycle:8;kernels=cobra,sis;trials=3" in
  let dir = fresh_dir () in
  (match
     run_campaign ~dir ~domains:1 ~resume:false (Sweep.Grid.cells (grid_of base))
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match
    run_campaign ~dir ~domains:1 ~resume:true
      (Sweep.Grid.cells (grid_of (base ^ ";backend=heap")))
  with
  | Ok r ->
    check Alcotest.int "explicit heap reuses every cell" 2 r.Simkit.Campaign.reused
  | Error msg -> Alcotest.fail ("backend=heap must not change the identity: " ^ msg)

(* A bigarray campaign resumes mid-run to byte-identical artifacts, and
   its cell payloads match the heap campaign's (same RNG streams through
   a different topology representation). The cells as a whole differ —
   by exactly the backend meta key that keeps the identities apart. *)
let test_bigarray_resume_byte_identical () =
  let grid_of s =
    match Sweep.Grid.of_inline s with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  let inline backend =
    "name=equiv;graphs=cycle:12,complete:8;kernels=cobra,bips,sis;trials=3"
    ^ backend
  in
  let cells_big = Sweep.Grid.cells (grid_of (inline ";backend=bigarray")) in
  let cells_heap = Sweep.Grid.cells (grid_of (inline "")) in
  let dir_a = fresh_dir () and dir_b = fresh_dir () and dir_h = fresh_dir () in
  (match run_campaign ~dir:dir_a ~domains:1 ~resume:false cells_big with
  | Ok r -> check Alcotest.int "A complete" 0 r.Simkit.Campaign.remaining
  | Error msg -> Alcotest.fail msg);
  (match run_campaign ~dir:dir_b ~domains:1 ~resume:false ~max_cells:2 cells_big with
  | Ok r ->
    check Alcotest.int "B interrupted with cells left" 4 r.Simkit.Campaign.remaining
  | Error msg -> Alcotest.fail msg);
  (match run_campaign ~dir:dir_b ~domains:1 ~resume:true cells_big with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check Alcotest.int "B resumed to completion" 0 r.Simkit.Campaign.remaining;
    check Alcotest.int "B reused the checkpointed cells" 2 r.Simkit.Campaign.reused;
    check Alcotest.string "manifest byte-identical"
      (read_file (Filename.concat dir_a "manifest.json"))
      (read_file (Filename.concat dir_b "manifest.json")));
  match run_campaign ~dir:dir_h ~domains:1 ~resume:false cells_heap with
  | Error msg -> Alcotest.fail msg
  | Ok _ ->
    let payload_of dir f =
      match Json.of_string (read_file (Filename.concat dir f)) with
      | Error msg -> Alcotest.fail (f ^ ": " ^ msg)
      | Ok (Json.Obj fields) -> Json.to_string (List.assoc "payload" fields)
      | Ok _ -> Alcotest.fail (f ^ ": cell is not an object")
    in
    List.iter
      (fun c ->
        let f = Printf.sprintf "cells/cell_%05d.json" c.Simkit.Campaign.index in
        check Alcotest.string ("payload identical across backends: " ^ f)
          (payload_of dir_h f) (payload_of dir_a f))
      cells_heap

(* Fixed-seed runs of every newcomer kernel are outcome-identical across
   the heap, bigarray, and implicit topology backends: all three views
   honour the ascending-neighbour contract, so the RNG stream — and
   hence every observation — cannot depend on the representation. *)
let test_new_kernels_backend_identity () =
  (* Two implicit-capable families; both non-bipartite (odd cycle) or
     complete, so coalesce reaches consensus rather than its cap. *)
  let specs = [ "complete:12"; "cycle:15" ] in
  let kernels =
    [
      ("pull", K.pull, p0);
      ("push-pull", K.push_pull, p0);
      ("coalesce", K.coalesce, { p0 with K.walkers = 4 });
      ("explore", K.explore, p0);
    ]
  in
  List.iter
    (fun spec_s ->
      let spec =
        match Graph.Spec.parse spec_s with
        | Ok s -> s
        | Error msg -> Alcotest.fail msg
      in
      let view backend =
        match Graph.Spec.build_view spec ~backend (Rng.create 99) with
        | Ok v -> v
        | Error msg -> Alcotest.fail msg
      in
      List.iter
        (fun (name, k, params) ->
          for seed = 1 to 3 do
            let run backend = K.run k (view backend) params (Rng.create seed) in
            let heap = run `Heap in
            check Alcotest.bool
              (Printf.sprintf "%s/%s: completed (seed %d)" spec_s name seed)
              true heap.K.completed;
            List.iter
              (fun (bname, backend) ->
                check outcome_t
                  (Printf.sprintf "%s/%s: heap = %s (seed %d)" spec_s name bname
                     seed)
                  heap (run backend))
              [ ("bigarray", `Bigarray); ("implicit", `Implicit) ]
          done)
        kernels)
    specs

(* The backend is part of the campaign identity: a checkpoint written
   under one backend refuses to resume under another, in both
   directions, even though the payloads would agree — a cross-backend
   divergence must never hide inside reused cells. *)
let test_resume_refuses_changed_backend () =
  let base = "name=equiv;graphs=cycle:8;kernels=bips,sis;trials=3" in
  let grid_of s =
    match Sweep.Grid.of_inline s with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  List.iter
    (fun (first, second) ->
      let dir = fresh_dir () in
      (match
         run_campaign ~dir ~domains:1 ~resume:false
           (Sweep.Grid.cells (grid_of (base ^ first)))
       with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg);
      match
        run_campaign ~dir ~domains:1 ~resume:true
          (Sweep.Grid.cells (grid_of (base ^ second)))
      with
      | Ok _ ->
        Alcotest.fail
          (Printf.sprintf "expected refusal resuming %S under %S" first second)
      | Error msg ->
        check Alcotest.bool ("refusal explains the mismatch: " ^ msg) true
          (contains msg "different campaign"))
    [
      (";backend=bigarray", "");
      ("", ";backend=bigarray");
      (";backend=bigarray", ";backend=implicit");
    ]

let () =
  Alcotest.run "sweep"
    [
      ( "kernel-stream-equivalence",
        [
          Alcotest.test_case "cobra" `Quick test_cobra_stream;
          Alcotest.test_case "bips" `Quick test_bips_stream;
          Alcotest.test_case "rwalk" `Quick test_rwalk_stream;
          Alcotest.test_case "rwalk multi" `Quick test_rwalk_multi_stream;
          Alcotest.test_case "push" `Quick test_push_stream;
          Alcotest.test_case "pull" `Quick test_pull_stream;
          Alcotest.test_case "push-pull" `Quick test_push_pull_stream;
          Alcotest.test_case "coalesce" `Quick test_coalesce_stream;
          Alcotest.test_case "explore" `Quick test_explore_stream;
          Alcotest.test_case "sis" `Quick test_sis_stream;
          Alcotest.test_case "contact" `Quick test_contact_stream;
          Alcotest.test_case "contact cap terminates" `Quick
            test_contact_cap_terminates;
          Alcotest.test_case "herd" `Quick test_herd_stream;
          Alcotest.test_case "seir" `Quick test_seir_stream;
          Alcotest.test_case "registry covers all" `Quick test_registry_covers_all;
          Alcotest.test_case "unknown kernel lists the menu" `Quick
            test_find_res_unknown_lists_names;
        ] );
      ( "word-scan-stream-identity",
        [
          Alcotest.test_case "push vs bit-by-bit reference" `Quick
            test_push_stream_identity;
          Alcotest.test_case "sis vs bit-by-bit reference" `Quick
            test_sis_stream_identity;
          Alcotest.test_case "bips vs bit-by-bit reference" `Quick
            test_bips_stream_identity;
          Alcotest.test_case "cobra trajectory vs cover stream" `Quick
            test_cobra_stream_identity;
        ] );
      ( "grid",
        [
          Alcotest.test_case "inline and json agree" `Quick test_grid_inline_json_agree;
          Alcotest.test_case "parse errors" `Quick test_grid_errors;
          Alcotest.test_case "addresses unique" `Quick test_grid_addresses_unique;
          Alcotest.test_case "load reports missing files" `Quick
            test_load_missing_file;
          Alcotest.test_case "cell payload deterministic" `Quick
            test_cell_payload_deterministic;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "resume is byte-identical (domains 1 and 2)" `Quick
            test_resume_byte_identical;
          Alcotest.test_case "new kernels resume byte-identical" `Quick
            test_new_kernels_resume_byte_identical;
          Alcotest.test_case "seir on ba graphs resumes byte-identical" `Quick
            test_seir_ba_resume_byte_identical;
          Alcotest.test_case "resume refuses changed trials/params" `Quick
            test_resume_refuses_changed_params;
          Alcotest.test_case "shared cache serves a second campaign" `Quick
            test_cache_second_campaign_all_hits;
          Alcotest.test_case "backend parses from inline and json" `Quick
            test_grid_backend_parse;
          Alcotest.test_case "backend=heap meta is omitted" `Quick
            test_backend_heap_meta_is_omitted;
          Alcotest.test_case "bigarray resume is byte-identical" `Quick
            test_bigarray_resume_byte_identical;
          Alcotest.test_case "new kernels identical across backends" `Quick
            test_new_kernels_backend_identity;
          Alcotest.test_case "resume refuses changed backend" `Quick
            test_resume_refuses_changed_backend;
        ] );
      ( "lane-engine",
        [
          Alcotest.test_case "scalar run_trials is the historical loop" `Quick
            test_run_trials_scalar_is_the_loop;
          Alcotest.test_case "trial counts mod 64 and determinism" `Quick
            test_lanes_remainders_and_determinism;
          Alcotest.test_case "full-batch prefix identity" `Quick
            test_lanes_batch_prefix_identity;
          Alcotest.test_case "unsliced kernels fall back to scalar" `Quick
            test_lanes_fallback_is_scalar;
          Alcotest.test_case "summary statistics match scalar" `Quick
            test_lanes_summary_matches_scalar;
          Alcotest.test_case "grid engine parsing" `Quick test_grid_engine_parse;
          Alcotest.test_case "lanes resume is byte-identical" `Quick
            test_lanes_resume_byte_identical;
          Alcotest.test_case "resume refuses changed engine" `Quick
            test_resume_refuses_changed_engine;
        ] );
    ]
