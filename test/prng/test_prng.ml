(* Tests for the prng library: generator determinism and splitting,
   distribution moments, sampling correctness. Statistical assertions use
   wide tolerances (many standard errors) so they are deterministic in
   practice under the fixed seeds. *)

module Rng = Prng.Rng
module Splitmix = Prng.Splitmix
module Xoshiro = Prng.Xoshiro
module Dist = Prng.Dist
module Sample = Prng.Sample

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let close ?(eps = 1e-9) msg a b =
  if Float.abs (a -. b) > eps then
    Alcotest.failf "%s: %.6f vs %.6f (eps %.2g)" msg a b eps

(* ---------- determinism & splitting ---------- *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix.create 42 and b = Splitmix.create 43 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Splitmix.next a = Splitmix.next b then incr same
  done;
  check Alcotest.int "different seeds differ" 0 !same

let test_splitmix_copy_independent () =
  let a = Splitmix.create 7 in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  check Alcotest.int "copy continues identically" (Splitmix.next a) (Splitmix.next b);
  ignore (Splitmix.next a);
  (* advancing a does not advance b *)
  let va = Splitmix.next a and vb = Splitmix.next b in
  check Alcotest.bool "diverged after unequal advances" true (va <> vb)

let test_split_streams_differ () =
  let parent = Splitmix.create 1 in
  let child1 = Splitmix.split parent in
  let child2 = Splitmix.split parent in
  let collisions = ref 0 in
  for _ = 1 to 256 do
    if Splitmix.next child1 = Splitmix.next child2 then incr collisions
  done;
  check Alcotest.int "split streams do not collide" 0 !collisions

let test_int_bounds () =
  let rng = Rng.create 9 in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let x = Rng.int rng bound in
      if x < 0 || x >= bound then Alcotest.failf "Rng.int out of [0,%d): %d" bound x
    done
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_float_unit_interval () =
  let rng = Rng.create 10 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "Rng.float out of [0,1): %f" x
  done

let test_int_in_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    if x < -5 || x > 5 then Alcotest.failf "int_in_range out of bounds: %d" x
  done;
  check Alcotest.int "degenerate range" 3 (Rng.int_in_range rng ~lo:3 ~hi:3)

let test_uniformity_chi2 () =
  (* 10 cells, 100k draws: chi-squared with 9 dof has mean 9, sd ~4.24;
     fail only beyond ~8 sd. *)
  let rng = Rng.create 12 in
  let cells = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let c = Rng.int rng 10 in
    cells.(c) <- cells.(c) + 1
  done;
  let expected = Float.of_int draws /. 10.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = Float.of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 cells
  in
  if chi2 > 45.0 then Alcotest.failf "chi-squared too large: %.1f" chi2

let test_int_edge_bounds () =
  let rng = Rng.create 13 in
  (* bound 1 always yields 0; power-of-two fast path stays in range *)
  for _ = 1 to 100 do
    check Alcotest.int "bound 1" 0 (Rng.int rng 1)
  done;
  for _ = 1 to 1000 do
    let x = Rng.int rng 1024 in
    if x < 0 || x >= 1024 then Alcotest.failf "pow2 bound out of range: %d" x;
    let y = Rng.int rng max_int in
    if y < 0 then Alcotest.fail "max bound negative"
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 14 in
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never" false (Rng.bernoulli rng 0.0);
    check Alcotest.bool "p=1 always" true (Rng.bernoulli rng 1.0);
    check Alcotest.bool "p<0 never" false (Rng.bernoulli rng (-3.0));
    check Alcotest.bool "p>1 always" true (Rng.bernoulli rng 7.0)
  done

(* ---------- xoshiro ---------- *)

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 5 and b = Xoshiro.create 5 in
  for _ = 1 to 50 do
    check Alcotest.bool "same" true (Int64.equal (Xoshiro.next a) (Xoshiro.next b))
  done

let test_xoshiro_jump_diverges () =
  let a = Xoshiro.create 5 in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  let collisions = ref 0 in
  for _ = 1 to 256 do
    if Int64.equal (Xoshiro.next a) (Xoshiro.next b) then incr collisions
  done;
  check Alcotest.int "jumped stream independent" 0 !collisions

let test_xoshiro_float_and_int () =
  let rng = Xoshiro.create 8 in
  for _ = 1 to 1000 do
    let f = Xoshiro.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "xoshiro float out of range: %f" f;
    let i = Xoshiro.int rng 17 in
    if i < 0 || i >= 17 then Alcotest.failf "xoshiro int out of range: %d" i
  done

(* Cross-check: the two generators agree on the mean of Uniform[0,1) to
   within many standard errors — a smoke test of both. *)
let test_generators_agree_on_mean () =
  let sm = Rng.create 123 and xo = Xoshiro.create 123 in
  let n = 200_000 in
  let mean f =
    let acc = ref 0.0 in
    for _ = 1 to n do acc := !acc +. f () done;
    !acc /. Float.of_int n
  in
  let m1 = mean (fun () -> Rng.float sm) in
  let m2 = mean (fun () -> Xoshiro.float xo) in
  (* sd of mean ~ 0.00065; allow 10 sd *)
  close ~eps:0.0065 "splitmix mean vs 0.5" m1 0.5;
  close ~eps:0.0065 "xoshiro mean vs 0.5" m2 0.5

(* ---------- distributions ---------- *)

let sample_mean_var n f =
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let x = f () in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let m = !acc /. Float.of_int n in
  (m, (!acc2 /. Float.of_int n) -. (m *. m))

let test_bernoulli_mean () =
  let rng = Rng.create 21 in
  let m, _ = sample_mean_var 50_000 (fun () -> Float.of_int (Dist.bernoulli rng 0.3)) in
  close ~eps:0.02 "bernoulli(0.3) mean" m 0.3

let test_binomial_moments () =
  let rng = Rng.create 22 in
  (* exact path (n <= 256) *)
  let m, v = sample_mean_var 20_000 (fun () -> Float.of_int (Dist.binomial rng ~n:40 ~p:0.25)) in
  close ~eps:0.2 "binomial(40,0.25) mean" m 10.0;
  close ~eps:0.8 "binomial(40,0.25) var" v 7.5;
  (* approximate path (n > 256, np large) *)
  let m2, _ = sample_mean_var 20_000 (fun () -> Float.of_int (Dist.binomial rng ~n:1000 ~p:0.5)) in
  close ~eps:2.0 "binomial(1000,0.5) mean" m2 500.0;
  check Alcotest.int "binomial p=0" 0 (Dist.binomial rng ~n:10 ~p:0.0);
  check Alcotest.int "binomial p=1" 10 (Dist.binomial rng ~n:10 ~p:1.0)

let test_geometric_moments () =
  let rng = Rng.create 23 in
  let p = 0.2 in
  let m, _ = sample_mean_var 50_000 (fun () -> Float.of_int (Dist.geometric rng p)) in
  (* failures before success: mean (1-p)/p = 4 *)
  close ~eps:0.15 "geometric(0.2) mean" m 4.0;
  check Alcotest.int "geometric(1)" 0 (Dist.geometric rng 1.0)

let test_poisson_moments () =
  let rng = Rng.create 24 in
  List.iter
    (fun lambda ->
      let m, v = sample_mean_var 30_000 (fun () -> Float.of_int (Dist.poisson rng lambda)) in
      close ~eps:(0.05 *. lambda +. 0.05) (Printf.sprintf "poisson(%g) mean" lambda) m lambda;
      close ~eps:(0.12 *. lambda +. 0.1) (Printf.sprintf "poisson(%g) var" lambda) v lambda)
    [ 0.5; 4.0; 60.0 ];
  check Alcotest.int "poisson(0)" 0 (Dist.poisson rng 0.0)

let test_exponential_mean () =
  let rng = Rng.create 25 in
  let m, _ = sample_mean_var 50_000 (fun () -> Dist.exponential rng ~rate:2.0) in
  close ~eps:0.02 "exp(2) mean" m 0.5

let test_normal_moments () =
  let rng = Rng.create 26 in
  let m, v = sample_mean_var 50_000 (fun () -> Dist.normal rng ~mu:3.0 ~sigma:2.0) in
  close ~eps:0.1 "normal mean" m 3.0;
  close ~eps:0.25 "normal var" v 4.0

let test_categorical () =
  let rng = Rng.create 27 in
  let weights = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Dist.categorical rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  check Alcotest.int "zero-weight category never drawn" 0 counts.(1);
  close ~eps:0.02 "category 0 rate" (Float.of_int counts.(0) /. 40_000.0) 0.25

(* ---------- sampling ---------- *)

let test_shuffle_is_permutation () =
  let rng = Rng.create 31 in
  let a = Array.init 100 Fun.id in
  Sample.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted

let test_shuffle_uniform_position () =
  (* Element 0's final position should be uniform: mean ~ (n-1)/2. *)
  let rng = Rng.create 32 in
  let n = 10 in
  let acc = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let a = Array.init n Fun.id in
    Sample.shuffle rng a;
    let pos = ref 0 in
    Array.iteri (fun i x -> if x = 0 then pos := i) a;
    acc := !acc + !pos
  done;
  close ~eps:0.1 "mean position of element 0"
    (Float.of_int !acc /. Float.of_int trials)
    4.5

let test_without_replacement () =
  let rng = Rng.create 33 in
  for _ = 1 to 200 do
    let k = 1 + Rng.int rng 20 in
    let n = k + Rng.int rng 50 in
    let s = Sample.without_replacement rng ~k ~n in
    check Alcotest.int "size" k (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 0 to k - 2 do
      if sorted.(i) = sorted.(i + 1) then Alcotest.fail "duplicate in sample"
    done;
    Array.iter (fun x -> if x < 0 || x >= n then Alcotest.fail "out of range") s
  done;
  check Alcotest.int "k = n returns everything" 10
    (Array.length (Sample.without_replacement rng ~k:10 ~n:10))

let test_without_replacement_uniform () =
  (* Each element appears in a k-of-n sample with probability k/n. *)
  let rng = Rng.create 34 in
  let n = 10 and k = 3 in
  let counts = Array.make n 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    Array.iter (fun x -> counts.(x) <- counts.(x) + 1)
      (Sample.without_replacement rng ~k ~n)
  done;
  Array.iteri
    (fun i c ->
      close ~eps:0.02
        (Printf.sprintf "inclusion probability of %d" i)
        (Float.of_int c /. Float.of_int trials)
        0.3)
    counts

let test_reservoir () =
  let rng = Rng.create 35 in
  let out = Sample.reservoir rng ~k:5 (Seq.init 100 Fun.id) in
  check Alcotest.int "k elements" 5 (Array.length out);
  let short = Sample.reservoir rng ~k:10 (Seq.init 4 Fun.id) in
  check Alcotest.int "short sequence" 4 (Array.length short)

let test_alias_matches_weights () =
  let rng = Rng.create 36 in
  let weights = [| 0.1; 0.4; 0.0; 0.5 |] in
  let t = Sample.Alias.create weights in
  check Alcotest.int "size" 4 (Sample.Alias.size t);
  let counts = Array.make 4 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let i = Sample.Alias.draw t rng in
    counts.(i) <- counts.(i) + 1
  done;
  check Alcotest.int "zero weight never drawn" 0 counts.(2);
  Array.iteri
    (fun i c ->
      close ~eps:0.01
        (Printf.sprintf "alias rate %d" i)
        (Float.of_int c /. Float.of_int trials)
        weights.(i))
    counts

let alias_vs_categorical_prop =
  QCheck.Test.make ~name:"alias table accepts any positive weights" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 8) (float_range 0.0 10.0))
    (fun ws ->
      QCheck.assume (List.exists (fun w -> w > 0.0) ws);
      let t = Sample.Alias.create (Array.of_list ws) in
      let rng = Rng.create 1 in
      let i = Sample.Alias.draw t rng in
      i >= 0 && i < List.length ws)

let rng_int_unbiased_prop =
  QCheck.Test.make ~name:"Rng.int stays in range for random bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_splitmix_copy_independent;
          Alcotest.test_case "split independence" `Quick test_split_streams_differ;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "float in [0,1)" `Quick test_float_unit_interval;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "uniformity (chi2)" `Quick test_uniformity_chi2;
          Alcotest.test_case "int edge bounds" `Quick test_int_edge_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          qtest rng_int_unbiased_prop;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "jump diverges" `Quick test_xoshiro_jump_diverges;
          Alcotest.test_case "float/int ranges" `Quick test_xoshiro_float_and_int;
          Alcotest.test_case "generators agree on mean" `Quick test_generators_agree_on_mean;
        ] );
      ( "dist",
        [
          Alcotest.test_case "bernoulli" `Quick test_bernoulli_mean;
          Alcotest.test_case "binomial" `Quick test_binomial_moments;
          Alcotest.test_case "geometric" `Quick test_geometric_moments;
          Alcotest.test_case "poisson" `Quick test_poisson_moments;
          Alcotest.test_case "exponential" `Quick test_exponential_mean;
          Alcotest.test_case "normal" `Quick test_normal_moments;
          Alcotest.test_case "categorical" `Quick test_categorical;
        ] );
      ( "sample",
        [
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle uniform" `Quick test_shuffle_uniform_position;
          Alcotest.test_case "without_replacement validity" `Quick test_without_replacement;
          Alcotest.test_case "without_replacement uniform" `Quick test_without_replacement_uniform;
          Alcotest.test_case "reservoir" `Quick test_reservoir;
          Alcotest.test_case "alias method" `Quick test_alias_matches_weights;
          qtest alias_vs_categorical_prop;
        ] );
    ]
