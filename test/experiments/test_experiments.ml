(* Tests for the experiment registry (identity hygiene and lookup) and
   the structured results pipeline: every sink must observe the same
   artifact for the same (spec, scale, seed), the emitted JSON must parse
   back with the console's numbers, and a failing verdict must fail the
   suite (the --check exit-code contract). The experiments themselves run
   end-to-end in the integration suite and in bench/main.exe. *)

module Registry = Experiments.Registry
module Spec = Experiments.Spec
module Artifact = Simkit.Artifact
module Sink = Simkit.Sink
module Json = Simkit.Json

let check = Alcotest.check

let test_count_and_order () =
  check Alcotest.int "eighteen experiments" 18 (List.length Registry.all);
  let ids = List.map (fun s -> s.Spec.id) Registry.all in
  check
    Alcotest.(list string)
    "id order"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18" ]
    ids

let test_unique_slugs () =
  let slugs = List.map (fun s -> s.Spec.slug) Registry.all in
  check Alcotest.int "slugs unique" (List.length slugs)
    (List.length (List.sort_uniq compare slugs))

let test_find_by_id_and_slug () =
  (match Registry.find "E4" with
  | Some s -> check Alcotest.string "by id" "duality" s.Spec.slug
  | None -> Alcotest.fail "E4 missing");
  (match Registry.find "duality" with
  | Some s -> check Alcotest.string "by slug" "E4" s.Spec.id
  | None -> Alcotest.fail "slug missing");
  (match Registry.find " e4 " with
  | Some _ -> ()
  | None -> Alcotest.fail "case/space insensitive lookup failed");
  check Alcotest.bool "unknown" true (Registry.find "E99" = None)

let test_metadata_nonempty () =
  List.iter
    (fun s ->
      if s.Spec.title = "" then Alcotest.failf "%s: empty title" s.Spec.id;
      if s.Spec.claim = "" then Alcotest.failf "%s: empty claim" s.Spec.id;
      if String.length s.Spec.claim < 30 then
        Alcotest.failf "%s: claim suspiciously short" s.Spec.id)
    Registry.all

let test_id_range_derived () =
  check Alcotest.string "derived from the registry" "E1..E18" (Registry.id_range ())

(* ---------- structured results pipeline ---------- *)

let e1 () = Option.get (Registry.find "E1")

let run_spec spec ~sink =
  Spec.run spec ~sink ~scale:Simkit.Scale.Quick ~master:1

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cobra_exp_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* The acceptance criterion for the sink refactor: the sink is a pure
   observer. Console and JSON runs of the same experiment at the same
   seed/scale must produce artifacts with identical meta and identical
   event streams (tables, fits, verdicts — every number). *)
let test_sinks_observe_identical_artifact () =
  with_temp_dir (fun dir ->
      let via_console = run_spec (e1 ()) ~sink:(Sink.console ()) in
      let via_json = run_spec (e1 ()) ~sink:(Sink.json ~dir) in
      check Alcotest.bool "meta identical" true
        (via_console.Artifact.meta = via_json.Artifact.meta);
      check Alcotest.int "same event count"
        (List.length via_console.Artifact.events)
        (List.length via_json.Artifact.events);
      check Alcotest.bool "event streams identical" true
        (via_console.Artifact.events = via_json.Artifact.events);
      check Alcotest.bool "verdict present and passing" true
        (Artifact.verdicts via_console <> [] && Artifact.passed via_console))

(* The emitted JSON document must parse back and carry the same numbers
   the console rendered (here: the first table's first summary mean). *)
let test_emitted_json_matches_artifact () =
  with_temp_dir (fun dir ->
      let artifact = run_spec (e1 ()) ~sink:(Sink.json ~dir) in
      let path =
        Filename.concat dir (Artifact.basename artifact.Artifact.meta ^ ".json")
      in
      match Json.of_file path with
      | Error e -> Alcotest.failf "emitted artifact does not parse: %s" e
      | Ok doc ->
        check Alcotest.bool "schema stamped" true
          (Json.member "schema" doc = Some (Json.String Artifact.schema_version));
        check Alcotest.bool "pass recorded" true
          (Json.member "pass" doc = Some (Json.Bool (Artifact.passed artifact)));
        let table =
          match Artifact.tables artifact with
          | t :: _ -> t
          | [] -> Alcotest.fail "E1 emitted no table"
        in
        let artifact_mean =
          match table.Artifact.rows with
          | (_ :: Artifact.Summary s :: _) :: _ -> s.Artifact.mean
          | _ -> Alcotest.fail "E1 row 0 col 1 is not a summary"
        in
        let json_mean =
          let events = Option.get (Json.to_list (Option.get (Json.member "events" doc))) in
          let table_ev =
            List.find
              (fun e -> Json.member "type" e = Some (Json.String "table"))
              events
          in
          match Json.to_list (Option.get (Json.member "rows" table_ev)) with
          | Some (row0 :: _) ->
            (match Json.to_list row0 with
            | Some (_ :: cell :: _) ->
              Option.get (Json.to_number (Option.get (Json.member "mean" cell)))
            | _ -> Alcotest.fail "row 0 shape")
          | _ -> Alcotest.fail "no rows in json table"
        in
        check (Alcotest.float 0.0) "mean survives serialisation bit-for-bit"
          artifact_mean json_mean)

(* Full-catalogue roundtrip: every registered experiment runs at quick
   scale through the json sink, every emitted document parses back,
   carries at least one verdict, and run_many preserves registry order —
   the order id_range () is derived from. *)
let test_full_registry_roundtrip () =
  with_temp_dir (fun dir ->
      let artifacts =
        Registry.run_many Registry.all ~sink:(Sink.json ~dir)
          ~scale:Simkit.Scale.Quick ~master:1
      in
      check Alcotest.int "one artifact per experiment" (List.length Registry.all)
        (List.length artifacts);
      List.iter2
        (fun spec artifact ->
          let id = artifact.Artifact.meta.Artifact.id in
          check Alcotest.string "run_many preserves registry order" spec.Spec.id id;
          (match Artifact.verdicts artifact with
          | [] -> Alcotest.failf "%s: no verdict emitted" id
          | _ -> ());
          let path = Filename.concat dir (Artifact.basename artifact.Artifact.meta ^ ".json") in
          if not (Sys.file_exists path) then
            Alcotest.failf "%s: sink wrote no file at %s" id path;
          match Json.of_file path with
          | Error e -> Alcotest.failf "%s: emitted json does not parse: %s" id e
          | Ok doc ->
            check Alcotest.bool
              (id ^ " json id matches")
              true
              (Json.member "id" doc = Some (Json.String id));
            let verdict_count =
              match Json.member "events" doc with
              | Some events ->
                List.length
                  (List.filter
                     (fun e -> Json.member "type" e = Some (Json.String "verdict"))
                     (Option.value ~default:[] (Json.to_list events)))
              | None -> 0
            in
            if verdict_count < 1 then
              Alcotest.failf "%s: parsed json carries no verdict" id)
        Registry.all artifacts;
      (* id_range is derived from the same order run_many just preserved. *)
      match (artifacts, List.rev artifacts) with
      | first :: _, last :: _ ->
        check Alcotest.string "id_range brackets the run"
          (Registry.id_range ())
          (first.Artifact.meta.Artifact.id ^ ".." ^ last.Artifact.meta.Artifact.id)
      | _ -> Alcotest.fail "no artifacts")

(* A deliberately failing verdict must fail the suite — this is the exact
   predicate `cobra_cli exp --check` maps to its exit code. *)
let failing_spec =
  {
    Spec.id = "EX";
    slug = "always-fails";
    title = "synthetic failing experiment";
    claim = "pins the --check exit-code mapping to Registry.all_passed";
    run =
      (fun ~emit ~scale:_ ~master:_ ->
        emit (Artifact.verdict ~pass:true "first criterion fine");
        emit (Artifact.verdict ~pass:false "deliberately failing criterion"));
  }

let test_failing_verdict_fails_suite () =
  let good = run_spec (e1 ()) ~sink:Sink.null in
  let bad = run_spec failing_spec ~sink:Sink.null in
  check Alcotest.bool "E1 alone passes" true (Registry.all_passed [ good ]);
  check Alcotest.bool "failing artifact not passed" false (Artifact.passed bad);
  check Alcotest.bool "one failure fails the suite" false
    (Registry.all_passed [ good; bad ])

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "count and order" `Quick test_count_and_order;
          Alcotest.test_case "unique slugs" `Quick test_unique_slugs;
          Alcotest.test_case "find" `Quick test_find_by_id_and_slug;
          Alcotest.test_case "metadata" `Quick test_metadata_nonempty;
          Alcotest.test_case "id range derived" `Quick test_id_range_derived;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "sinks observe identical artifact" `Slow
            test_sinks_observe_identical_artifact;
          Alcotest.test_case "emitted json matches artifact" `Slow
            test_emitted_json_matches_artifact;
          Alcotest.test_case "failing verdict fails suite" `Quick
            test_failing_verdict_fails_suite;
          Alcotest.test_case "full registry roundtrip" `Slow
            test_full_registry_roundtrip;
        ] );
    ]
