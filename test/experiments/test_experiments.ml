(* Tests for the experiment registry: identity hygiene and lookup. The
   experiments themselves run end-to-end in the integration suite and in
   bench/main.exe; here we verify the catalogue's contract. *)

module Registry = Experiments.Registry
module Spec = Experiments.Spec

let check = Alcotest.check

let test_count_and_order () =
  check Alcotest.int "fifteen experiments" 15 (List.length Registry.all);
  let ids = List.map (fun s -> s.Spec.id) Registry.all in
  check
    Alcotest.(list string)
    "id order"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13"; "E14"; "E15" ]
    ids

let test_unique_slugs () =
  let slugs = List.map (fun s -> s.Spec.slug) Registry.all in
  check Alcotest.int "slugs unique" (List.length slugs)
    (List.length (List.sort_uniq compare slugs))

let test_find_by_id_and_slug () =
  (match Registry.find "E4" with
  | Some s -> check Alcotest.string "by id" "duality" s.Spec.slug
  | None -> Alcotest.fail "E4 missing");
  (match Registry.find "duality" with
  | Some s -> check Alcotest.string "by slug" "E4" s.Spec.id
  | None -> Alcotest.fail "slug missing");
  (match Registry.find " e4 " with
  | Some _ -> ()
  | None -> Alcotest.fail "case/space insensitive lookup failed");
  check Alcotest.bool "unknown" true (Registry.find "E99" = None)

let test_metadata_nonempty () =
  List.iter
    (fun s ->
      if s.Spec.title = "" then Alcotest.failf "%s: empty title" s.Spec.id;
      if s.Spec.claim = "" then Alcotest.failf "%s: empty claim" s.Spec.id;
      if String.length s.Spec.claim < 30 then
        Alcotest.failf "%s: claim suspiciously short" s.Spec.id)
    Registry.all

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "count and order" `Quick test_count_and_order;
          Alcotest.test_case "unique slugs" `Quick test_unique_slugs;
          Alcotest.test_case "find" `Quick test_find_by_id_and_slug;
          Alcotest.test_case "metadata" `Quick test_metadata_nonempty;
        ] );
    ]
