(* Tests for the spectral library: vector kernels, operators, tridiagonal
   eigenvalues, power iteration and Lanczos against closed forms, and the
   gap/bound helpers. *)

module Vec = Spectral.Vec
module Op = Spectral.Op
module Tridiag = Spectral.Tridiag
module Power = Spectral.Power
module Lanczos = Spectral.Lanczos
module Closed_form = Spectral.Closed_form
module Gap = Spectral.Gap
(* Op/Power/Lanczos/Gap consume Graph.View; Mixing and the Cheeger
   helpers stay on heap CSR, so this shim builds views and [csr] peels
   them back (free for heap views). *)
module GenC = Graph.Gen

module Gen = struct
  let v = Graph.View.of_csr
  let complete n = v (GenC.complete n)
  let cycle n = v (GenC.cycle n)
  let star n = v (GenC.star n)
  let petersen () = v (GenC.petersen ())
  let hypercube d = v (GenC.hypercube d)
  let folded_hypercube d = v (GenC.folded_hypercube d)
  let complete_bipartite a b = v (GenC.complete_bipartite a b)
  let circulant n offs = v (GenC.circulant n offs)
  let torus dims = v (GenC.torus dims)
  let random_regular rng ~n ~r = v (GenC.random_regular rng ~n ~r)
end

let csr = Graph.View.to_csr
module Rng = Prng.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let close ?(eps = 1e-6) msg a b =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: %.8f vs %.8f" msg a b

(* ---------- Vec ---------- *)

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; -1.0; 0.5 |] in
  close "dot" 3.5 (Vec.dot x y);
  close "norm" (sqrt 14.0) (Vec.norm2 x);
  let z = Array.copy y in
  Vec.axpy ~a:2.0 ~x ~y:z;
  check Alcotest.(array (float 1e-9)) "axpy" [| 6.0; 3.0; 6.5 |] z;
  let w = Array.copy x in
  Vec.normalize w;
  close "normalized" 1.0 (Vec.norm2 w);
  let u = Vec.uniform_unit 4 in
  close "uniform unit norm" 1.0 (Vec.norm2 u);
  let v = [| 1.0; 1.0; 1.0; 5.0 |] in
  Vec.project_out ~dir:u v;
  close ~eps:1e-9 "projection removes component" 0.0 (Vec.dot u v)

let test_vec_errors () =
  Alcotest.check_raises "size mismatch" (Invalid_argument "Vec: size mismatch")
    (fun () -> ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "zero normalize" (Invalid_argument "Vec.normalize: zero vector")
    (fun () -> Vec.normalize [| 0.0; 0.0 |])

(* ---------- Op ---------- *)

let test_walk_matrix_stochastic () =
  (* P applied to the all-ones vector gives all-ones (row-stochastic). *)
  let g = Gen.petersen () in
  let op = Op.walk_matrix g in
  let ones = Array.make 10 1.0 in
  let y = Op.apply op ones in
  Array.iter (fun v -> close "P * 1 = 1" 1.0 v) y

let test_shift_scale () =
  let g = Gen.complete 4 in
  let op = Op.shift_scale (Op.walk_matrix g) ~alpha:2.0 ~beta:1.0 in
  let ones = Array.make 4 1.0 in
  let y = Op.apply op ones in
  (* 2*P*1 + 1*1 = 3 *)
  Array.iter (fun v -> close "affine spectrum map" 3.0 v) y

(* ---------- Tridiag ---------- *)

let test_tridiag_diagonal () =
  let eigs = Tridiag.eigenvalues ~diag:[| 3.0; 1.0; 2.0 |] ~off:[| 0.0; 0.0 |] in
  check Alcotest.(array (float 1e-9)) "diagonal eigenvalues" [| 1.0; 2.0; 3.0 |] eigs

let test_tridiag_known_2x2 () =
  (* [[a b][b c]]: eigenvalues ( (a+c) ± sqrt((a-c)^2+4b^2) ) / 2 *)
  let eigs = Tridiag.eigenvalues ~diag:[| 2.0; 0.0 |] ~off:[| 1.0 |] in
  close ~eps:1e-9 "small" (1.0 -. sqrt 2.0) eigs.(0);
  close ~eps:1e-9 "large" (1.0 +. sqrt 2.0) eigs.(1)

let test_tridiag_laplacian_path () =
  (* The path-graph adjacency (0 diag, 1 off) of size m has eigenvalues
     2 cos(pi k / (m+1)). *)
  let m = 7 in
  let eigs = Tridiag.eigenvalues ~diag:(Array.make m 0.0) ~off:(Array.make (m - 1) 1.0) in
  for k = 1 to m do
    let expected = 2.0 *. cos (Float.pi *. Float.of_int (m + 1 - k) /. Float.of_int (m + 1)) in
    close ~eps:1e-9 (Printf.sprintf "path eig %d" k) expected eigs.(k - 1)
  done

let test_sturm_count () =
  let diag = [| 0.0; 0.0; 0.0 |] and off = [| 1.0; 1.0 |] in
  (* eigenvalues -sqrt2, 0, sqrt2 *)
  check Alcotest.int "below -2" 0 (Tridiag.count_below ~diag ~off (-2.0));
  check Alcotest.int "below -1" 1 (Tridiag.count_below ~diag ~off (-1.0));
  check Alcotest.int "below 0.5" 2 (Tridiag.count_below ~diag ~off 0.5);
  check Alcotest.int "below 2" 3 (Tridiag.count_below ~diag ~off 2.0)

(* ---------- eigensolvers vs closed forms ---------- *)

let oracle_cases =
  [
    ("K_5", Gen.complete 5, Closed_form.complete 5);
    ("K_30", Gen.complete 30, Closed_form.complete 30);
    ("C_9", Gen.cycle 9, Closed_form.cycle 9);
    ("C_12", Gen.cycle 12, Closed_form.cycle 12);
    ("Q_3", Gen.hypercube 3, Closed_form.hypercube 3);
    ("Q_5", Gen.hypercube 5, Closed_form.hypercube 5);
    ("FQ_4", Gen.folded_hypercube 4, Closed_form.folded_hypercube 4);
    ("FQ_6", Gen.folded_hypercube 6, Closed_form.folded_hypercube 6);
    ("K_4,4", Gen.complete_bipartite 4 4, Closed_form.complete_bipartite 4 4);
    ("circ(20,{1,3})", Gen.circulant 20 [ 1; 3 ], Closed_form.circulant 20 [ 1; 3 ]);
    ("circ(15,{1,2,4})", Gen.circulant 15 [ 1; 2; 4 ], Closed_form.circulant 15 [ 1; 2; 4 ]);
    ("torus 5x7", Gen.torus [| 5; 7 |], Closed_form.torus [| 5; 7 |]);
    ("torus 3x3x3", Gen.torus [| 3; 3; 3 |], Closed_form.torus [| 3; 3; 3 |]);
    ("petersen", Gen.petersen (), 2.0 /. 3.0);
  ]

let test_power_vs_closed_forms () =
  let rng = Rng.create 71 in
  List.iter
    (fun (name, g, expected) ->
      let got = Power.lambda_max (Rng.split rng) g in
      close ~eps:1e-4 ("power " ^ name) expected got)
    oracle_cases

let test_lanczos_vs_closed_forms () =
  let rng = Rng.create 72 in
  List.iter
    (fun (name, g, expected) ->
      let got = Lanczos.lambda_max (Rng.split rng) g in
      close ~eps:1e-4 ("lanczos " ^ name) expected got)
    oracle_cases

let test_signed_eigenvalues () =
  let rng = Rng.create 73 in
  (* Petersen: lambda_2 = 1/3, lambda_n = -2/3. *)
  let g = Gen.petersen () in
  close ~eps:1e-6 "petersen l2" (1.0 /. 3.0) (Power.lambda_2 (Rng.split rng) g).Power.value;
  close ~eps:1e-6 "petersen ln" (-2.0 /. 3.0)
    (Power.lambda_min (Rng.split rng) g).Power.value;
  (* Complete: lambda_2 = lambda_n = -1/(n-1). *)
  let k6 = Gen.complete 6 in
  close ~eps:1e-6 "K6 ln" (-0.2) (Power.lambda_min (Rng.split rng) k6).Power.value;
  (* Bipartite: lambda_n = -1. *)
  let q3 = Gen.hypercube 3 in
  close ~eps:1e-6 "Q3 ln" (-1.0) (Power.lambda_min (Rng.split rng) q3).Power.value;
  let l2, ln = Closed_form.signed_hypercube 3 in
  close "Q3 closed l2" (1.0 /. 3.0) l2;
  close "Q3 closed ln" (-1.0) ln

let test_non_regular_rejected () =
  let rng = Rng.create 74 in
  let star = Gen.star 5 in
  Alcotest.check_raises "power requires regular"
    (Invalid_argument "Power.lambda_2: requires a regular graph with positive degree")
    (fun () -> ignore (Power.lambda_2 rng star));
  Alcotest.check_raises "lanczos requires regular"
    (Invalid_argument "Lanczos.extremes: requires a regular graph") (fun () ->
      ignore (Lanczos.extremes rng star))

let relabel_invariance_prop =
  QCheck.Test.make ~name:"lambda_max invariant under relabelling" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.random_regular rng ~n:24 ~r:4 in
      let perm = Array.init 24 Fun.id in
      Prng.Sample.shuffle rng perm;
      let g' = Graph.View.of_csr (Graph.Csr.relabel (csr g) perm) in
      let l = Power.lambda_max (Rng.split rng) g in
      let l' = Power.lambda_max (Rng.split rng) g' in
      Float.abs (l -. l') < 1e-5)

let power_lanczos_agree_prop =
  QCheck.Test.make ~name:"power and lanczos agree on random regular graphs" ~count:15
    QCheck.(pair (int_range 0 10_000) (int_range 3 6))
    (fun (seed, r) ->
      let rng = Rng.create seed in
      let g = Gen.random_regular rng ~n:40 ~r in
      let p = Power.lambda_max (Rng.split rng) g in
      let l = Lanczos.lambda_max (Rng.split rng) g in
      Float.abs (p -. l) < 5e-4)

(* ---------- closed forms ---------- *)

let test_closed_form_values () =
  close "K_11" 0.1 (Closed_form.complete 11);
  close "even cycle = 1" 1.0 (Closed_form.cycle 10);
  close ~eps:1e-9 "C_5" (cos (2.0 *. Float.pi /. 5.0) /. 1.0 |> Float.abs |> Float.max (Float.abs (cos (4.0 *. Float.pi /. 5.0))))
    (Closed_form.cycle 5);
  close "K_ab" 1.0 (Closed_form.complete_bipartite 3 7);
  close "star" 1.0 (Closed_form.star 5);
  close "Q_1 = K_2" 1.0 (Closed_form.hypercube 1)

(* ---------- gap helpers ---------- *)

let test_gap_estimate_and_bounds () =
  let rng = Rng.create 75 in
  let g = Gen.petersen () in
  let gap = Gap.estimate rng g in
  close ~eps:1e-4 "estimate lambda" (2.0 /. 3.0) gap.Gap.lambda;
  close ~eps:1e-4 "gap" (1.0 /. 3.0) gap.Gap.gap;
  let bound = Gap.theorem1_bound ~n:10 gap in
  close ~eps:0.01 "theorem1 bound" (log 10.0 /. ((1.0 /. 3.0) ** 3.0)) bound;
  let growth = Gap.growth_factor ~n:10 gap ~a:5 in
  close ~eps:1e-4 "growth factor" (1.0 +. ((1.0 -. (4.0 /. 9.0)) *. 0.5)) growth

let test_gap_of_lambda () =
  let gap = Gap.of_lambda 0.9 in
  close "gap" 0.1 gap.Gap.gap;
  check Alcotest.bool "bound finite" true (Float.is_finite (Gap.theorem1_bound ~n:100 gap));
  let degenerate = Gap.of_lambda 1.0 in
  check Alcotest.bool "bound infinite at lambda=1" true
    (Gap.theorem1_bound ~n:100 degenerate = infinity)

let test_mixing_time () =
  let gap = Gap.of_lambda 0.5 in
  close ~eps:1e-9 "mixing bound" (log (100.0 /. 0.01) /. 0.5)
    (Gap.mixing_time_upper ~n:100 gap);
  check Alcotest.bool "infinite at lambda 1" true
    (Gap.mixing_time_upper ~n:100 (Gap.of_lambda 1.0) = infinity);
  Alcotest.check_raises "eps range" (Invalid_argument "Gap.mixing_time_upper: eps in (0,1)")
    (fun () -> ignore (Gap.mixing_time_upper ~n:100 ~eps:2.0 gap))

let test_gap_condition () =
  (* For K_n the premise ratio grows like sqrt(n / log n). *)
  let g100 = Gap.of_lambda (Closed_form.complete 100) in
  let ratio = Gap.satisfies_gap_condition ~n:100 g100 in
  check Alcotest.bool "complete graph satisfies premise" true (ratio > 4.0)

(* ---------- Mixing ---------- *)

module Mixing = Spectral.Mixing

let test_walk_distribution_stochastic () =
  let g = Gen.petersen () in
  let d = Mixing.walk_distribution (csr g) ~steps:7 ~start:0 in
  let total = Array.fold_left ( +. ) 0.0 d in
  close ~eps:1e-12 "sums to 1" 1.0 total;
  Array.iter (fun p -> if p < 0.0 then Alcotest.fail "negative probability") d

let test_walk_distribution_one_step () =
  (* One step from the centre of a star: uniform on the leaves. *)
  let g = Gen.star 5 in
  let d = Mixing.walk_distribution (csr g) ~steps:1 ~start:0 in
  close "centre mass" 0.0 d.(0);
  for v = 1 to 4 do
    close "leaf mass" 0.25 d.(v)
  done

let test_tv_decay_matches_lambda () =
  (* TV decay rate on a non-bipartite regular graph recovers lambda. *)
  List.iter
    (fun (name, g, lambda) ->
      let rate = Mixing.empirical_decay_rate (csr g) ~steps:40 ~start:0 in
      close ~eps:0.02 (name ^ " decay vs lambda") lambda rate)
    [
      ("K_8", Gen.complete 8, Closed_form.complete 8);
      ("petersen", Gen.petersen (), 2.0 /. 3.0);
      ("C_9", Gen.cycle 9, Closed_form.cycle 9);
    ]

let test_tv_trajectory_monotone () =
  let g = Gen.petersen () in
  let tv = Mixing.tv_trajectory (csr g) ~steps:20 ~start:3 in
  close ~eps:1e-12 "starts at 1 - 1/n" 0.9 tv.(0);
  Array.iteri
    (fun i v -> if i > 0 && v > tv.(i - 1) +. 1e-12 then Alcotest.fail "TV increased")
    tv

let test_bipartite_never_mixes () =
  (* On a bipartite graph the parity oscillation keeps TV away from 0. *)
  let g = Gen.cycle 8 in
  let tv = Mixing.tv_trajectory (csr g) ~steps:60 ~start:0 in
  check Alcotest.bool "stuck at 1/2" true (tv.(60) > 0.49)

(* ---------- Cheeger ---------- *)

module Cheeger = Spectral.Cheeger

let test_conductance_known () =
  (* K_4: every cut of k vertices has conductance (k(4-k))/(3k) minimised
     at k=2: 4/6 = 2/3. *)
  close ~eps:1e-12 "K_4" (2.0 /. 3.0) (Cheeger.conductance_exact (csr (Gen.complete 4)));
  (* C_6: best cut is a half-arc: 2 crossing edges, volume 6 -> 1/3. *)
  close ~eps:1e-12 "C_6" (1.0 /. 3.0) (Cheeger.conductance_exact (csr (Gen.cycle 6)));
  (* Barbell: the bridge is the bottleneck: 1 / vol(one K_4 side).
     vol side = 4*3 + 1 (port gains bridge) = 13. *)
  close ~eps:1e-12 "barbell" (1.0 /. 13.0)
    (Cheeger.conductance_exact (GenC.barbell ~clique_size:4 ~path_len:0))

let test_cut_conductance () =
  let g = csr (Gen.cycle 8) in
  let s = Dstruct.Bitset.of_list 8 [ 0; 1; 2; 3 ] in
  close ~eps:1e-12 "half arc of C_8" 0.25 (Cheeger.cut_conductance g s);
  Alcotest.check_raises "empty side"
    (Invalid_argument "Cheeger.cut_conductance: zero-volume side") (fun () ->
      ignore (Cheeger.cut_conductance g (Dstruct.Bitset.create 8)))

let cheeger_inequality_prop =
  QCheck.Test.make ~name:"Cheeger inequality on random regular graphs" ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 3 5))
    (fun (seed, r) ->
      let rng = Rng.create seed in
      let n = 12 in
      let g = Gen.random_regular rng ~n ~r in
      let phi = Cheeger.conductance_exact (csr g) in
      let l2 = (Power.lambda_2 (Rng.split rng) g).Power.value in
      Cheeger.cheeger_lower ~lambda_2:l2 <= phi +. 1e-9
      && phi <= Cheeger.cheeger_upper ~lambda_2:l2 +. 1e-9)

let () =
  Alcotest.run "spectral"
    [
      ( "vec",
        [
          Alcotest.test_case "operations" `Quick test_vec_ops;
          Alcotest.test_case "errors" `Quick test_vec_errors;
        ] );
      ( "op",
        [
          Alcotest.test_case "walk matrix stochastic" `Quick test_walk_matrix_stochastic;
          Alcotest.test_case "shift/scale" `Quick test_shift_scale;
        ] );
      ( "tridiag",
        [
          Alcotest.test_case "diagonal" `Quick test_tridiag_diagonal;
          Alcotest.test_case "2x2" `Quick test_tridiag_known_2x2;
          Alcotest.test_case "path eigenvalues" `Quick test_tridiag_laplacian_path;
          Alcotest.test_case "sturm counts" `Quick test_sturm_count;
        ] );
      ( "eigensolvers",
        [
          Alcotest.test_case "power vs closed forms" `Quick test_power_vs_closed_forms;
          Alcotest.test_case "lanczos vs closed forms" `Quick test_lanczos_vs_closed_forms;
          Alcotest.test_case "signed extremes" `Quick test_signed_eigenvalues;
          Alcotest.test_case "non-regular rejected" `Quick test_non_regular_rejected;
          qtest relabel_invariance_prop;
          qtest power_lanczos_agree_prop;
        ] );
      ( "closed_form",
        [ Alcotest.test_case "special values" `Quick test_closed_form_values ] );
      ( "mixing",
        [
          Alcotest.test_case "distribution stochastic" `Quick test_walk_distribution_stochastic;
          Alcotest.test_case "one step from star centre" `Quick test_walk_distribution_one_step;
          Alcotest.test_case "TV decay recovers lambda" `Quick test_tv_decay_matches_lambda;
          Alcotest.test_case "TV monotone" `Quick test_tv_trajectory_monotone;
          Alcotest.test_case "bipartite never mixes" `Quick test_bipartite_never_mixes;
        ] );
      ( "cheeger",
        [
          Alcotest.test_case "known conductances" `Quick test_conductance_known;
          Alcotest.test_case "cut conductance" `Quick test_cut_conductance;
          qtest cheeger_inequality_prop;
        ] );
      ( "gap",
        [
          Alcotest.test_case "estimate and bounds" `Quick test_gap_estimate_and_bounds;
          Alcotest.test_case "of_lambda" `Quick test_gap_of_lambda;
          Alcotest.test_case "mixing time" `Quick test_mixing_time;
          Alcotest.test_case "premise ratio" `Quick test_gap_condition;
        ] );
    ]
